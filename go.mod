module bcmh

go 1.24
