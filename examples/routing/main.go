// Relay selection in a delay-tolerant network — the application Daly &
// Haahr [14] built on betweenness ratios, cited in the paper's
// introduction: nodes with high betweenness make good message relays.
//
// The example places nodes in the unit square (a random geometric
// graph standing in for radio contact ranges), picks relay nodes three
// ways — by MH-estimated betweenness, by degree, and at random — and
// simulates two-hop relay delivery of random messages through each
// relay set, reporting the delivery rates.
//
//	go run ./examples/routing
package main

import (
	"fmt"
	"log"

	"bcmh/internal/core"
	"bcmh/internal/graph"
	"bcmh/internal/rng"
	"bcmh/internal/stats"
)

const (
	nodes     = 400
	radius    = 0.09
	numRelays = 8
	messages  = 4000
)

func main() {
	r := rng.New(2024)
	raw, _ := graph.RandomGeometric(nodes, radius, r)
	g, mapping, err := core.Prepare(raw)
	if err != nil {
		log.Fatal(err)
	}
	if mapping != nil {
		fmt.Printf("largest component: %d of %d nodes\n", g.N(), raw.N())
	}
	fmt.Println("contact graph:", g)

	// --- Relay selection strategies.
	// (a) Betweenness via the MH sampler: estimate BC for the top-degree
	// candidate pool (estimating all n would be wasteful; high-BC nodes
	// in geometric graphs are found among well-connected ones).
	pool := topDegree(g, 40)
	scores := make([]float64, len(pool))
	for i, v := range pool {
		est, err := core.EstimateBC(g, v, core.Options{Steps: 4000, Seed: uint64(100 + v)})
		if err != nil {
			log.Fatal(err)
		}
		scores[i] = est.Value
	}
	relaysBC := make([]int, numRelays)
	for i, j := range stats.TopKIndices(scores, numRelays) {
		relaysBC[i] = pool[j]
	}

	// (b) Pure degree. (c) Random.
	relaysDeg := topDegree(g, numRelays)
	relaysRnd := r.SampleWithoutReplacement(g.N(), numRelays)

	// --- Delivery simulation. A message from s to t that is NOT
	// directly deliverable (t beyond `hops` hops of s) can still arrive
	// if some relay is within `hops` of both endpoints
	// (store-and-forward through one relay). Only those hard messages
	// are scored, so the number isolates the relays' contribution.
	const hops = 3
	fmt.Printf("\nrelay-assisted delivery of messages needing a relay (legs <= %d hops):\n", hops)
	fmt.Printf("%-28s %8s\n", "relay strategy", "delivery")
	for _, row := range []struct {
		name   string
		relays []int
	}{
		{"MH-estimated betweenness", relaysBC},
		{"highest degree", relaysDeg},
		{"random", relaysRnd},
	} {
		rate := relayedDeliveryRate(g, row.relays, hops, messages, rng.New(7))
		fmt.Printf("%-28s %7.1f%%\n", row.name, 100*rate)
	}
	fmt.Println("\nbetweenness-chosen relays should dominate random and at least match degree.")
}

func topDegree(g *graph.Graph, k int) []int {
	degs := make([]float64, g.N())
	for v := range degs {
		degs[v] = float64(g.Degree(v))
	}
	return stats.TopKIndices(degs, k)
}

func relayedDeliveryRate(g *graph.Graph, relays []int, hops, trials int, r *rng.RNG) float64 {
	// Precompute hop-limited reach of every relay.
	inReach := make([][]bool, len(relays))
	dist := make([]int, g.N())
	for i, relay := range relays {
		graph.BFSDistances(g, relay, dist)
		reach := make([]bool, g.N())
		for v, d := range dist {
			reach[v] = d >= 0 && d <= hops
		}
		inReach[i] = reach
	}
	delivered, hard := 0, 0
	for trial := 0; trial < trials; trial++ {
		s := r.Intn(g.N())
		t := r.Intn(g.N())
		if s == t {
			continue
		}
		graph.BFSDistances(g, s, dist)
		if dist[t] >= 0 && dist[t] <= hops {
			continue // directly deliverable: not scored
		}
		hard++
		for i := range relays {
			if inReach[i][s] && inReach[i][t] {
				delivered++
				break
			}
		}
	}
	if hard == 0 {
		return 1
	}
	return float64(delivered) / float64(hard)
}
