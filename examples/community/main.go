// Community detection on Zachary's karate club — the application the
// paper's introduction motivates via Girvan & Newman [19]: iteratively
// remove the highest-edge-betweenness edge until the graph splits, then
// compare the split against the club's real-world fission. The example
// also uses the joint-space MH sampler to rank candidate "core"
// vertices of each community by relative betweenness [34].
//
//	go run ./examples/community
package main

import (
	"fmt"
	"log"
	"sort"

	"bcmh/internal/brandes"
	"bcmh/internal/core"
	"bcmh/internal/graph"
)

func main() {
	g := graph.KarateClub()
	truth := graph.KarateGroundTruth()
	fmt.Println("Zachary's karate club:", g)

	// --- Girvan–Newman: remove max-edge-betweenness edges until the
	// graph first disconnects into two components.
	work := g
	removed := 0
	var comp []int
	for {
		var sizes []int
		comp, sizes = graph.ConnectedComponents(work)
		if len(sizes) > 1 {
			break
		}
		ebc, err := brandes.EdgeBC(work)
		if err != nil {
			log.Fatal(err)
		}
		var best [2]int
		bestVal := -1.0
		// Deterministic tie-break: lowest endpoint pair.
		keys := make([][2]int, 0, len(ebc))
		for k := range ebc {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool {
			if keys[a][0] != keys[b][0] {
				return keys[a][0] < keys[b][0]
			}
			return keys[a][1] < keys[b][1]
		})
		for _, k := range keys {
			if ebc[k] > bestVal {
				bestVal = ebc[k]
				best = k
			}
		}
		// Rebuild without the chosen edge.
		b := graph.NewBuilder(work.N())
		work.ForEachEdge(func(u, v int, w float64) {
			if u == best[0] && v == best[1] {
				return
			}
			b.AddWeightedEdge(u, v, w)
		})
		var err2 error
		work, err2 = b.Build()
		if err2 != nil {
			log.Fatal(err2)
		}
		removed++
		fmt.Printf("removed edge %v (ebc %.1f)\n", best, bestVal)
	}
	fmt.Printf("\ngraph split after removing %d edges\n", removed)

	// Score the split against the ground-truth factions.
	agree := 0
	// Component label of vertex 0 defines faction 0.
	label0 := comp[0]
	for v, c := range comp {
		pred := 1
		if c == label0 {
			pred = 0
		}
		if pred == truth[v] {
			agree++
		}
	}
	if agree < g.N()/2 { // labels flipped
		agree = g.N() - agree
	}
	fmt.Printf("ground-truth agreement: %d/%d vertices\n\n", agree, g.N())

	// --- Core-vertex ranking with the joint-space sampler: candidates
	// are the highest-degree vertices of each detected community; their
	// relative betweenness identifies the structural leaders (the
	// instructor, vertex 0, and the administrator, vertex 33).
	candidates := topDegreePerComponent(g, comp, label0, 3)
	fmt.Printf("core candidates (top degrees per community): %v\n", candidates)
	res, err := core.EstimateRelative(g, candidates, core.RelOptions{Steps: 80000, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	// Rank candidates by their estimated ratio against the first one.
	type scored struct {
		v     int
		ratio float64
	}
	list := make([]scored, len(candidates))
	for i, v := range candidates {
		list[i] = scored{v, res.RatioEst[i][0]}
	}
	sort.Slice(list, func(a, b int) bool { return list[a].ratio > list[b].ratio })
	fmt.Println("\nrelative betweenness ranking (vs first candidate):")
	exact, _ := core.ExactBC(g)
	for _, s := range list {
		fmt.Printf("  vertex %2d  ratio %6.3f   (exact BC %.4f)\n", s.v, s.ratio, exact[s.v])
	}
	fmt.Println("\nexpect vertices 0 and 33 (instructor & administrator) on top.")
}

// topDegreePerComponent returns the k highest-degree vertices from each
// of the two components.
func topDegreePerComponent(g *graph.Graph, comp []int, label0 int, k int) []int {
	var a, b []int
	for v := range comp {
		if comp[v] == label0 {
			a = append(a, v)
		} else {
			b = append(b, v)
		}
	}
	byDeg := func(s []int) {
		sort.Slice(s, func(i, j int) bool {
			if g.Degree(s[i]) != g.Degree(s[j]) {
				return g.Degree(s[i]) > g.Degree(s[j])
			}
			return s[i] < s[j]
		})
	}
	byDeg(a)
	byDeg(b)
	out := append(append([]int{}, a[:min(k, len(a))]...), b[:min(k, len(b))]...)
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
