// Quickstart: build a graph, estimate the betweenness of a vertex with
// the paper's Metropolis–Hastings sampler, and compare every estimator
// variant against the exact value.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bcmh/internal/core"
	"bcmh/internal/graph"
	"bcmh/internal/rng"
)

func main() {
	// A scale-free network: the regime where a few hub vertices carry
	// most shortest paths and per-vertex estimation pays off.
	g := graph.BarabasiAlbert(2000, 3, rng.New(42))
	fmt.Println("graph:", g)

	// Pick the highest-degree vertex as the interesting target.
	r := 0
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) > g.Degree(r) {
			r = v
		}
	}
	fmt.Printf("target: vertex %d (degree %d)\n\n", r, g.Degree(r))

	// Exact ground truth (parallel Brandes; O(nm), fine at this scale).
	exact, err := core.ExactBCOf(g, r)
	if err != nil {
		log.Fatal(err)
	}

	// The μ(r) anatomy behind Theorem 1: how concentrated the
	// dependency scores on r are, and what chain length Eq. 14 asks for.
	ms, err := core.Mu(g, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mu(r) = %.2f  (Eq.14 plans T = %d for eps=0.01, delta=0.1)\n",
		ms.Mu, minInt(core.DefaultMaxSteps, planFor(ms.Mu)))
	fmt.Printf("exact BC(r)      = %.6f\n", exact)
	fmt.Printf("chain-avg limit  = %.6f  (what the MH average converges to)\n\n", ms.ChainLimit)

	// Run the sampler once with a fixed budget; the result carries all
	// estimator variants computed on the same chain.
	est, err := core.EstimateBC(g, r, core.Options{Steps: 20000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	d := est.Diagnostics
	fmt.Printf("T = %d steps, acceptance %.2f, %d unique states, %d traversals (%d cache hits)\n",
		est.PlannedSteps, d.AcceptanceRate, d.UniqueStates, d.Evals, d.CacheHits)
	fmt.Printf("%-22s %10s %12s\n", "estimator", "estimate", "abs error")
	row := func(name string, v float64) {
		fmt.Printf("%-22s %10.6f %12.2e\n", name, v, abs(v-exact))
	}
	row("MH chain average", d.ChainAverage)
	row("MH Eq.7 literal", d.PaperEq7)
	row("proposal-side (free)", d.ProposalSide)
	row("harmonic corrected", d.Harmonic)

	// Multi-chain variant: 4 independent chains pooled, with a
	// between-chain spread diagnostic.
	multi, err := core.EstimateBC(g, r, core.Options{Steps: 5000, Chains: 4, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n4x5000-step chains pooled: %.6f (exact %.6f)\n", multi.Value, exact)
}

func planFor(mu float64) int {
	if mu <= 0 {
		return 0
	}
	// Eq. 14 with eps=0.01, delta=0.1: mu²/(2e-4)·ln 20.
	return int(mu * mu / (2 * 0.01 * 0.01) * 2.9957)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
