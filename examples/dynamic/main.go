// Dynamic graphs — the evolving-network setting the paper's cheap
// estimators are made for (and the follow-up adaptive-estimation work
// of Chehreghani et al. targets directly): when the graph changes, an
// MH re-estimate costs a few thousand traversals, not a rebuild of
// the world.
//
// The example builds a scale-free graph with a pendant ring community
// hanging off it, stands up an estimation engine, and then *rewires
// the hub* with a copy-on-write edit batch (graph.ApplyEdits +
// engine.SwapGraph): a few hub edges are deleted and replaced by
// periphery shortcuts. It prints how the hub's exact betweenness and
// its MH estimate move, and shows the engine's version-aware μ-cache
// at work — the ring vertex's cached profile survives the swap
// (provably unaffected, by the biconnected-component retention rule),
// while the hub's is invalidated and recomputed.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	"bcmh/internal/core"
	"bcmh/internal/engine"
	"bcmh/internal/graph"
	"bcmh/internal/mcmc"
	"bcmh/internal/rng"
)

const (
	baN     = 400 // scale-free core
	ringN   = 30  // pendant ring community
	steps   = 20000
	seed    = 7
	rewires = 3
)

func main() {
	// Scale-free core 0..baN-1 plus a ring baN..baN+ringN-1, attached
	// to vertex 0 by a single bridge — so the ring is its own
	// biconnected block, separated from the core by the articulation
	// vertex 0.
	r := rng.New(2026)
	ba := graph.BarabasiAlbert(baN, 3, r)
	b := graph.NewBuilder(baN + ringN)
	ba.ForEachEdge(func(u, v int, _ float64) { b.AddEdge(u, v) })
	for i := 0; i < ringN; i++ {
		b.AddEdge(baN+i, baN+(i+1)%ringN)
	}
	b.AddEdge(0, baN)
	g := b.MustBuild()
	fmt.Println("graph:", g)

	eng, err := engine.New(g)
	if err != nil {
		log.Fatal(err)
	}
	hub := 0
	for v := 1; v < baN; v++ {
		if g.Degree(v) > g.Degree(hub) {
			hub = v
		}
	}
	ringV := baN + ringN/2
	// Proposal-side estimator: unbiased for BC(r), so the estimate
	// tracks the exact value's magnitude, not just its direction (the
	// chain average carries a vertex-dependent asymptotic inflation).
	opts := core.Options{Steps: steps, Seed: seed, Estimator: mcmc.EstimatorProposalSide}

	// Before: estimate the hub, and warm μ entries for both the hub
	// and a ring vertex.
	estBefore, err := eng.Estimate(hub, opts)
	if err != nil {
		log.Fatal(err)
	}
	exactHubBefore, err := eng.ExactBCOf(hub)
	if err != nil {
		log.Fatal(err)
	}
	exactRingBefore, err := eng.ExactBCOf(ringV)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhub = vertex %d (degree %d), ring witness = vertex %d\n", hub, g.Degree(hub), ringV)
	fmt.Printf("before: exact BC(hub) = %.6f, MH estimate = %.6f (%d steps)\n",
		exactHubBefore, estBefore.Value, estBefore.PlannedSteps)

	// Rewire: drop a few hub edges (keeping the graph connected) and
	// route periphery shortcuts around it.
	var edits []graph.Edit
	cur := g
	for _, nb := range g.Neighbors(hub) {
		if len(edits) == rewires {
			break
		}
		trial, _, err := graph.ApplyEdits(cur, []graph.Edit{{Op: graph.EditRemove, U: hub, V: nb}})
		if err != nil || !graph.IsConnected(trial) {
			continue // that edge was load-bearing; keep it
		}
		edits = append(edits, graph.Edit{Op: graph.EditRemove, U: hub, V: nb})
		cur = trial
	}
	for added := 0; added < rewires; {
		u, v := r.Intn(baN), r.Intn(baN)
		if u == v || u == hub || v == hub || cur.HasEdge(u, v) {
			continue
		}
		edits = append(edits, graph.Edit{Op: graph.EditAdd, U: u, V: v})
		cur, _, err = graph.ApplyEdits(cur, []graph.Edit{{Op: graph.EditAdd, U: u, V: v}})
		if err != nil {
			log.Fatal(err)
		}
		added++
	}
	next, rep, err := graph.ApplyEdits(g, edits)
	if err != nil {
		log.Fatal(err)
	}
	swap, err := eng.SwapGraph(next, rep.Pairs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\napplied batch: -%d hub edges, +%d shortcuts -> version %d\n", rep.Removed, rep.Added, swap.Version)
	fmt.Printf("μ-cache across the swap: %d retained, %d invalidated (%d of %d vertices in the affected region)\n",
		swap.MuRetained, swap.MuInvalidated, swap.Affected, next.N())

	// After: re-estimate on the new version. The ring witness is
	// served from the retained entry — no new O(nm) computation.
	missesBefore := eng.Stats().MuMisses
	estAfter, err := eng.Estimate(hub, opts)
	if err != nil {
		log.Fatal(err)
	}
	exactHubAfter, err := eng.ExactBCOf(hub)
	if err != nil {
		log.Fatal(err)
	}
	exactRingAfter, err := eng.ExactBCOf(ringV)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter:  exact BC(hub) = %.6f, MH estimate = %.6f\n", exactHubAfter, estAfter.Value)
	fmt.Printf("\n%-24s %12s %12s %9s\n", "", "before", "after", "moved")
	row := func(name string, before, after float64) {
		fmt.Printf("%-24s %12.6f %12.6f %+8.1f%%\n", name, before, after, 100*(after-before)/before)
	}
	row("exact BC(hub)", exactHubBefore, exactHubAfter)
	row("MH estimate(hub)", estBefore.Value, estAfter.Value)
	row("exact BC(ring witness)", exactRingBefore, exactRingAfter)
	fmt.Printf("\nestimate tracks the exact move; the ring witness is untouched by construction\n")
	if exactRingAfter != exactRingBefore {
		log.Fatal("BUG: the ring witness moved — retention would be unsound")
	}
	if misses := eng.Stats().MuMisses; misses == missesBefore+1 {
		fmt.Printf("μ recomputations after the swap: 1 (the hub); the ring witness was a cache hit\n")
	} else {
		fmt.Printf("μ recomputations after the swap: %d\n", misses-missesBefore)
	}
}
