// Cascading-failure mitigation — the application of Agarwal et al. [1]
// cited in the paper's introduction: when protecting (or attacking) a
// network, the vertices that matter are the highest-betweenness ones,
// and ranking them must be cheap enough to redo after every failure.
//
// The example repeatedly removes the most central remaining vertex —
// chosen by MH-estimated betweenness vs. by degree vs. at random — and
// tracks how fast the largest connected component collapses. A steeper
// collapse means the chosen metric found the true structural choke
// points.
//
//	go run ./examples/cascade
package main

import (
	"fmt"
	"log"

	"bcmh/internal/core"
	"bcmh/internal/graph"
	"bcmh/internal/rng"
	"bcmh/internal/sampler"
)

const (
	blobs    = 6
	blobSize = 80
	removals = 8
)

// pearlsOnAString builds the topology where betweenness and degree
// disagree maximally: `blobs` dense random blobs chained through
// dedicated low-degree bridge vertices. Each bridge connects 3 members
// of the blob on either side — degree 6, far below the blob-internal
// hubs — yet carries every shortest path between its two sides.
func pearlsOnAString(r *rng.RNG) *graph.Graph {
	n := blobs*blobSize + (blobs - 1) // blobs + bridge vertices
	b := graph.NewBuilder(n)
	blobStart := func(i int) int { return i * blobSize }
	// Dense ER blobs (p = 0.15 keeps them internally well connected).
	for i := 0; i < blobs; i++ {
		base := blobStart(i)
		for u := 0; u < blobSize; u++ {
			for v := u + 1; v < blobSize; v++ {
				if r.Bernoulli(0.15) {
					b.AddEdge(base+u, base+v)
				}
			}
		}
	}
	// Bridge vertices: id blobs*blobSize + i joins blob i and blob i+1.
	for i := 0; i < blobs-1; i++ {
		bridge := blobs*blobSize + i
		for k := 0; k < 3; k++ {
			b.AddEdge(bridge, blobStart(i)+r.Intn(blobSize))
			b.AddEdge(bridge, blobStart(i+1)+r.Intn(blobSize))
		}
	}
	return b.MustBuild()
}

func main() {
	raw := pearlsOnAString(rng.New(11))
	base, _, err := core.Prepare(raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("network:", base, "(dense blobs chained by low-degree bridges)")
	fmt.Printf("\nremoving %d vertices, tracking largest-component share:\n\n", removals)
	fmt.Printf("%-10s %-26s %-16s %-10s\n", "round", "MH betweenness", "degree", "random")

	mh := newCascade(base)
	deg := newCascade(base)
	rnd := newCascade(base)
	rrand := rng.New(99)

	fmt.Printf("%-10d %-26.3f %-16.3f %-10.3f\n", 0, mh.share(), deg.share(), rnd.share())
	for round := 1; round <= removals; round++ {
		vMH, err := mh.pickByMHBetweenness(uint64(round))
		if err != nil {
			log.Fatal(err)
		}
		mh.remove(vMH)
		deg.remove(deg.pickByDegree())
		rnd.remove(rnd.pickRandom(rrand))
		fmt.Printf("%-10d %-26s %-16.3f %-10.3f\n", round,
			fmt.Sprintf("%.3f (removed %d)", mh.share(), vMH),
			deg.share(), rnd.share())
	}
	fmt.Println("\nthe MH-betweenness column should collapse fastest: it finds cut")
	fmt.Println("vertices that pure degree misses (hubs inside one region vs. bridges).")
}

type cascade struct {
	g     *graph.Graph
	alive []bool
	n0    int
}

func newCascade(g *graph.Graph) *cascade {
	alive := make([]bool, g.N())
	for i := range alive {
		alive[i] = true
	}
	return &cascade{g: g, alive: alive, n0: g.N()}
}

// share returns |largest component| / original n.
func (c *cascade) share() float64 {
	_, sizes := graph.ConnectedComponents(c.g)
	best := 0
	for _, s := range sizes {
		// Isolated removed vertices form size-1 components; they count
		// against the share automatically.
		if s > best {
			best = s
		}
	}
	return float64(best) / float64(c.n0)
}

func (c *cascade) remove(v int) {
	h, err := graph.RemoveVertex(c.g, v)
	if err != nil {
		log.Fatal(err)
	}
	c.g = h
	c.alive[v] = false
}

// pickByMHBetweenness finds the most central vertex in two stages, the
// workflow the paper's "one or a few vertices" setting motivates:
// a coarse unbiased screen over all vertices (a handful of uniform
// source samples — cheap, high variance) shortlists candidates, then
// the MH sampler refines each shortlisted vertex individually.
// Estimation runs on the largest component so the chain cannot stall
// in fragments.
func (c *cascade) pickByMHBetweenness(seed uint64) (int, error) {
	lc, mapping, err := graph.LargestComponent(c.g)
	if err != nil {
		return 0, err
	}
	us, err := sampler.NewUniformSource(lc, 0)
	if err != nil {
		return 0, err
	}
	coarse := us.EstimateAll(40, rng.New(seed*7919+1))
	pool := topKByScore(coarse, 8)
	bestV, bestScore := pool[0], -1.0
	for _, v := range pool {
		est, err := core.EstimateBC(lc, v, core.Options{Steps: 3000, Seed: seed*1000 + uint64(v)})
		if err != nil {
			return 0, err
		}
		if est.Value > bestScore {
			bestScore = est.Value
			bestV = v
		}
	}
	return mapping[bestV], nil
}

// topKByScore returns the indices of the k largest scores
// (deterministic tie-break on lower index).
func topKByScore(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k && i < len(idx); i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if scores[idx[j]] > scores[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

func (c *cascade) pickByDegree() int {
	best, bestDeg := 0, -1
	for v := 0; v < c.g.N(); v++ {
		if !c.alive[v] {
			continue
		}
		if d := c.g.Degree(v); d > bestDeg {
			bestDeg = d
			best = v
		}
	}
	return best
}

func (c *cascade) pickRandom(r *rng.RNG) int {
	for {
		v := r.Intn(c.g.N())
		if c.alive[v] && c.g.Degree(v) > 0 {
			return v
		}
	}
}

func topDegreeIn(g *graph.Graph, k int) []int {
	idx := make([]int, g.N())
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort: k is tiny.
	for i := 0; i < k && i < len(idx); i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if g.Degree(idx[j]) > g.Degree(idx[best]) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
