// Finding the top-k betweenness vertices — the use case of
// Riondato–Kornaropoulos [30] that the paper's introduction contrasts
// with single-vertex estimation. The example runs a two-stage pipeline:
//
//  1. a cheap coarse screen (uniform source sampling, every traversal
//     updates all vertices) shortlists candidates;
//  2. the adaptive empirical-Bernstein sampler certifies each
//     shortlisted vertex to ±ε, giving per-vertex guarantees the
//     coarse screen lacks.
//
// The result is compared against the exact top-k and against a pure RK
// path-sampling run at the same total traversal budget.
//
//	go run ./examples/topk
package main

import (
	"fmt"
	"log"
	"sort"

	"bcmh/internal/brandes"
	"bcmh/internal/graph"
	"bcmh/internal/rng"
	"bcmh/internal/sampler"
	"bcmh/internal/stats"
)

const (
	k            = 10
	coarseBudget = 1500
	eps          = 0.01
	delta        = 0.1
)

func main() {
	g := graph.BarabasiAlbert(3000, 3, rng.New(2026))
	fmt.Println("graph:", g)

	// Exact reference (affordable at this scale; the pipeline is for
	// when it is not).
	exactBC := brandes.BCParallel(g, 0)
	exactTop := stats.TopKIndices(exactBC, k)

	// --- Stage 1: coarse screen.
	us, err := sampler.NewUniformSource(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	coarse := us.EstimateAll(coarseBudget, rng.New(1))
	shortlist := stats.TopKIndices(coarse, 3*k) // 3x overprovision
	fmt.Printf("stage 1: %d traversals screened %d vertices -> shortlist of %d\n",
		coarseBudget, g.N(), len(shortlist))

	// --- Stage 2: certify each shortlisted vertex to ±eps.
	type cert struct {
		v       int
		est     float64
		samples int
	}
	var certified []cert
	totalStage2 := 0
	for _, v := range shortlist {
		a, err := sampler.NewAdaptive(g, v)
		if err != nil {
			log.Fatal(err)
		}
		res, err := a.Run(eps, delta, 0, 1<<20, rng.New(uint64(1000+v)))
		if err != nil {
			log.Fatal(err)
		}
		certified = append(certified, cert{v, res.Estimate, res.Samples})
		totalStage2 += res.Samples
	}
	sort.Slice(certified, func(a, b int) bool {
		if certified[a].est != certified[b].est {
			return certified[a].est > certified[b].est
		}
		return certified[a].v < certified[b].v
	})
	fmt.Printf("stage 2: %d certification traversals (mean %d per candidate)\n\n",
		totalStage2, totalStage2/len(shortlist))

	pipelineTop := make([]int, k)
	for i := 0; i < k; i++ {
		pipelineTop[i] = certified[i].v
	}

	// --- Competitor: plain RK with the same total budget.
	rk, err := sampler.NewRK(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	rkAll := rk.EstimateAll(coarseBudget+totalStage2, rng.New(3))
	rkTop := stats.TopKIndices(rkAll, k)

	fmt.Printf("%-28s %s\n", "method", "top-k overlap with exact")
	fmt.Printf("%-28s %d/%d\n", "screen+certify pipeline", overlap(pipelineTop, exactTop), k)
	fmt.Printf("%-28s %d/%d\n", "RK[30] same total budget", overlap(rkTop, exactTop), k)

	fmt.Println("\ncertified top-k (estimate vs exact):")
	for i := 0; i < k; i++ {
		c := certified[i]
		fmt.Printf("  %2d. vertex %4d  est %.5f  exact %.5f  (%d samples)\n",
			i+1, c.v, c.est, exactBC[c.v], c.samples)
	}
}

func overlap(a, b []int) int {
	set := map[int]bool{}
	for _, v := range a {
		set[v] = true
	}
	n := 0
	for _, v := range b {
		if set[v] {
			n++
		}
	}
	return n
}
