// Comparing centrality measures through one estimation stack — the
// measure-generic API (internal/measure) walkthrough. Betweenness,
// coverage, and k-path centrality all answer "how much traffic routes
// through r?", but they weight that traffic differently:
//
//   - bc counts the *fraction* of shortest s→t paths through r
//     (σ-ratio), so a vertex splitting flow with a twin gets half
//     credit;
//   - coverage counts an *indicator* — does at least one shortest
//     path pass through r? — so redundant shortest paths don't dilute
//     a vertex's score;
//   - kpath is bc restricted to pairs within distance k: a locality
//     lens that discounts long-range flow (k ≥ diameter recovers bc
//     exactly).
//
// The example computes all three exactly on the karate club, prints
// their top-5 side by side (they disagree in rank order!), then runs
// the shared MH chain once per measure on one vertex to show the same
// sampler estimating each of them.
//
//	go run ./examples/measures
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"bcmh/internal/core"
	"bcmh/internal/graph"
	"bcmh/internal/mcmc"
	"bcmh/internal/measure"
)

const topK = 5

// column computes the exact measure value of every vertex.
func column(g *graph.Graph, spec measure.Spec) []float64 {
	vals := make([]float64, g.N())
	for r := 0; r < g.N(); r++ {
		ms, err := measure.Stats(context.Background(), g, spec, r, nil)
		if err != nil {
			log.Fatal(err)
		}
		vals[r] = ms.BC
	}
	return vals
}

func topOf(vals []float64) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if vals[idx[a]] != vals[idx[b]] {
			return vals[idx[a]] > vals[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:topK]
}

func main() {
	g := graph.KarateClub()
	fmt.Println("graph:", g)

	specs := []measure.Spec{
		{Kind: measure.BC},
		{Kind: measure.Coverage},
		{Kind: measure.KPath, K: 2},
		{Kind: measure.KPath, K: measure.DefaultKPathK},
	}
	cols := make([][]float64, len(specs))
	tops := make([][]int, len(specs))
	for i, spec := range specs {
		cols[i] = column(g, spec)
		tops[i] = topOf(cols[i])
	}

	// Side-by-side top-5: same graph, four lenses.
	fmt.Printf("\n%-6s", "rank")
	for _, spec := range specs {
		fmt.Printf("  %-22s", spec.String())
	}
	fmt.Println()
	for row := 0; row < topK; row++ {
		fmt.Printf("%-6d", row+1)
		for i := range specs {
			v := tops[i][row]
			fmt.Printf("  v=%-3d %.4f%9s", v, cols[i][v], "")
		}
		fmt.Println()
	}

	// Where the lenses disagree: pairs whose relative order flips
	// between bc and coverage inside the top-5.
	fmt.Println("\norder flips (bc vs coverage, within the bc top-5):")
	flips := 0
	for i := 0; i < topK; i++ {
		for j := i + 1; j < topK; j++ {
			a, b := tops[0][i], tops[0][j]
			if cols[1][a] < cols[1][b] { // bc says a > b, coverage says b > a
				flips++
				fmt.Printf("  bc ranks v=%d (%.4f) above v=%d (%.4f); "+
					"coverage flips them (%.4f vs %.4f) — the indicator "+
					"statistic ignores how many shortest paths share the detour\n",
					a, cols[0][a], b, cols[0][b], cols[1][a], cols[1][b])
			}
		}
	}
	if flips == 0 {
		fmt.Println("  none on this graph")
	}

	// One sampler, every measure: the same MH chain estimates each
	// statistic by swapping the oracle. 20k steps, same seed, the
	// unbiased proposal-side estimator (the chain average carries an
	// asymptotic inflation — the T10 soundness finding).
	fmt.Println("\nestimating vertex 2 with the shared MH chain (20000 steps):")
	opts := core.Options{Steps: 20000, Seed: 11, Estimator: mcmc.EstimatorProposalSide}
	for i, spec := range specs {
		est, err := measure.Estimate(context.Background(), g, spec, 2, opts, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s estimate %.4f   exact %.4f\n", spec.String(), est.Value, cols[i][2])
	}

	// Adaptive stopping: let the chain decide when it has seen enough.
	fmt.Println("\nadaptive stopping (eps=0.05, delta=0.1) on vertex 2:")
	aopts := core.Options{Adaptive: true, Epsilon: 0.05, Delta: 0.1, Seed: 11, Estimator: mcmc.EstimatorProposalSide}
	est, err := measure.Estimate(context.Background(), g, measure.Spec{}, 2, aopts, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  bc estimate %.4f after %d steps (converged=%v, EB half-width %.4f)\n",
		est.Value, est.Diagnostics.StepsRun, est.Diagnostics.Converged, est.Diagnostics.EBHalfWidth)
}
