// Benchmarks for every reproduced table and figure: Benchmark<ID>
// exercises the computational kernel of experiment <ID> (see DESIGN.md
// §4 and EXPERIMENTS.md). Regenerate the actual tables with
// `go run ./cmd/bcbench -run all -scale full`.
package bcmh_test

import (
	"context"
	"io"
	"sync"
	"testing"

	"bcmh/internal/brandes"
	"bcmh/internal/core"
	"bcmh/internal/durable"
	"bcmh/internal/engine"
	"bcmh/internal/exp"
	"bcmh/internal/graph"
	"bcmh/internal/mcmc"
	"bcmh/internal/measure"
	"bcmh/internal/rank"
	"bcmh/internal/rng"
	"bcmh/internal/sampler"
	"bcmh/internal/sssp"
)

// fixtures are shared across benchmarks and built once.
var (
	fixOnce sync.Once
	fixBA   *graph.Graph // scale-free workload
	fixGrid *graph.Graph // high-diameter workload
	fixWBA  *graph.Graph // weighted variant
	fixTop  int          // top-degree vertex of fixBA
)

func fixtures() {
	fixOnce.Do(func() {
		fixBA = graph.BarabasiAlbert(2000, 3, rng.New(1))
		fixGrid = graph.Grid(40, 40)
		fixWBA = graph.WithUniformWeights(fixBA, 1, 10, rng.New(2))
		for v := 1; v < fixBA.N(); v++ {
			if fixBA.Degree(v) > fixBA.Degree(fixTop) {
				fixTop = v
			}
		}
	})
}

// BenchmarkT1Datasets measures building the full dataset registry
// (table T1's workload generation).
func BenchmarkT1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, d := range exp.Datasets() {
			g := d.Build(exp.Quick, 1)
			if g.N() == 0 {
				b.Fatal("empty dataset")
			}
		}
	}
}

// BenchmarkT2SingleVertex measures one 1024-step single-space MH chain
// (table T2's kernel: estimate one vertex at a fixed budget).
func BenchmarkT2SingleVertex(b *testing.B) {
	fixtures()
	r := rng.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcmc.EstimateBC(fixBA, fixTop, mcmc.DefaultConfig(1024), r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF1ErrorVsT measures one budget point of the F1 sweep: every
// estimator once at T=256.
func BenchmarkF1ErrorVsT(b *testing.B) {
	fixtures()
	r := rng.New(5)
	u, _ := sampler.NewUniformSource(fixBA, fixTop)
	d, _ := sampler.NewDistanceSource(fixBA, fixTop)
	k, _ := sampler.NewRK(fixBA, fixTop)
	kl, _ := sampler.NewKadabraLite(fixBA, fixTop)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcmc.EstimateBC(fixBA, fixTop, mcmc.DefaultConfig(256), r); err != nil {
			b.Fatal(err)
		}
		u.Estimate(256, r)
		d.Estimate(256, r)
		k.Estimate(256, r)
		kl.Estimate(256, r)
	}
}

// BenchmarkT3Mu measures the exact μ(r) computation (table T3's kernel,
// one O(nm) dependency column).
func BenchmarkT3Mu(b *testing.B) {
	fixtures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcmc.MuExact(fixBA, fixTop); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF2Coverage measures one coverage repetition (an 800-step
// chain on the star graph).
func BenchmarkF2Coverage(b *testing.B) {
	g := graph.Star(200)
	r := rng.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcmc.EstimateBC(g, 0, mcmc.DefaultConfig(800), r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT4Separator measures one μ evaluation on the Theorem-2
// separator family.
func BenchmarkT4Separator(b *testing.B) {
	g := graph.StarOfCliques(4, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcmc.MuExact(g, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT5JointRatios measures a 4096-step joint-space chain over
// |R| = 6 targets (table T5's kernel).
func BenchmarkT5JointRatios(b *testing.B) {
	fixtures()
	R := []int{fixTop}
	for v := 1; len(R) < 6; v++ {
		if v != fixTop {
			R = append(R, v)
		}
	}
	r := rng.New(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcmc.EstimateRelative(fixBA, R, mcmc.DefaultJointConfig(4096), r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF3RelativeScore measures the exact relative ground truth
// (|R| dependency columns), F3's expensive reference computation.
func BenchmarkF3RelativeScore(b *testing.B) {
	fixtures()
	R := []int{fixTop, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcmc.ExactRelative(fixBA, R); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT6Ranking measures ranking a 12-vertex candidate set with
// the uniform all-vertices estimator at budget 1024 (T6's cheapest
// competitive method).
func BenchmarkT6Ranking(b *testing.B) {
	fixtures()
	u, _ := sampler.NewUniformSource(fixBA, 0)
	r := rng.New(11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.EstimateAll(1024, r)
	}
}

// BenchmarkT7Runtime measures the exact-Brandes side of the crossover
// computation.
func BenchmarkT7Runtime(b *testing.B) {
	fixtures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		brandes.BCParallel(fixBA, 0)
	}
}

// BenchmarkT8Ablations measures the degree-proposal chain variant
// (the ablation with the most machinery on top of the default).
func BenchmarkT8Ablations(b *testing.B) {
	fixtures()
	cfg := mcmc.DefaultConfig(1024)
	cfg.DegreeProposal = true
	r := rng.New(13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcmc.EstimateBC(fixBA, fixTop, cfg, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT9Weighted measures a 1024-step chain on the weighted
// workload (Dijkstra SPDs in the oracle).
func BenchmarkT9Weighted(b *testing.B) {
	fixtures()
	r := rng.New(17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcmc.EstimateBC(fixWBA, fixTop, mcmc.DefaultConfig(1024), r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT10Bias measures the bias-decomposition kernel: one long
// chain (8192 steps) plus the exact chain-limit reference.
func BenchmarkT10Bias(b *testing.B) {
	fixtures()
	r := rng.New(19)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcmc.EstimateBC(fixGrid, 820, mcmc.DefaultConfig(8192), r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentT1EndToEnd runs the complete (cheap) T1 runner —
// a guard that the harness itself stays fast.
func BenchmarkExperimentT1EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := exp.RunT1(io.Discard, exp.Quick, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT11Stress measures one stress-chain estimation (table T11's
// kernel).
func BenchmarkT11Stress(b *testing.B) {
	fixtures()
	r := rng.New(23)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcmc.EstimateStress(fixBA, fixTop, 1024, r); err != nil {
			b.Fatal(err)
		}
	}
}

// batchTargets returns the 32-target batch workload the engine
// benchmarks share: 8 distinct vertices of fixBA (the top-degree hub
// plus 7 others), each requested 4 times — the repeated/overlapping
// traffic shape a multi-user deployment sees.
func batchTargets() []int {
	fixtures()
	distinct := []int{fixTop}
	for v := 0; len(distinct) < 8; v++ {
		if v != fixTop {
			distinct = append(distinct, v)
		}
	}
	targets := make([]int, 0, 32)
	for i := 0; i < 4; i++ {
		targets = append(targets, distinct...)
	}
	return targets
}

// batchBenchOpts is the per-target estimation request used by the
// batch benchmarks: planned steps (so the O(nm) μ derivation is part
// of the work) clamped low enough that chain time doesn't drown out
// the planning cost being amortized.
func batchBenchOpts() core.Options {
	return core.Options{Epsilon: 0.05, Delta: 0.1, MaxSteps: 2048}
}

// BenchmarkEngineBatch32 measures Engine.EstimateBatch over the
// 32-target overlapping workload with a cold engine per iteration:
// μ is derived once per distinct vertex (8 times) and duplicate
// targets are dispatched once, versus 32 full derivations in the
// sequential baseline below.
func BenchmarkEngineBatch32(b *testing.B) {
	targets := batchTargets()
	opts := engine.BatchOptions{Estimation: batchBenchOpts(), Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := engine.New(fixBA)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.EstimateBatch(targets, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineBatch32Weighted is BenchmarkEngineBatch32 on the
// weighted twin of the workload: the same 32 overlapping targets, with
// μ derivation and every chain step going through the weighted
// (Dijkstra identity) oracle route instead of the BFS one.
func BenchmarkEngineBatch32Weighted(b *testing.B) {
	targets := batchTargets()
	opts := engine.BatchOptions{Estimation: batchBenchOpts(), Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := engine.New(fixWBA)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.EstimateBatch(targets, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineBatch32Warm is the steady-state variant: one engine
// across iterations, so after the first batch every request is a
// result-cache hit — the serving regime the ROADMAP's multi-user
// traffic goal targets.
func BenchmarkEngineBatch32Warm(b *testing.B) {
	targets := batchTargets()
	eng, err := engine.New(fixBA)
	if err != nil {
		b.Fatal(err)
	}
	opts := engine.BatchOptions{Estimation: batchBenchOpts(), Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.EstimateBatch(targets, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSequentialBatch32 is the baseline the engine must beat: the
// same 32 targets and seeds through core.EstimateBC one at a time,
// which re-validates the graph and re-derives μ from scratch (O(nm))
// on every call and shares no buffers.
func BenchmarkSequentialBatch32(b *testing.B) {
	targets := batchTargets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range targets {
			opts := batchBenchOpts()
			opts.Seed = engine.SeedFor(1, r)
			if _, err := core.EstimateBC(fixBA, r, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// rankFixtures builds the whole-graph ranking workload: a 400-vertex
// scale-free graph small enough that the exact top-5 is known from
// TestProgressiveBeatsUniform (internal/rank), plus a shared pool so
// both allocation strategies reuse the same target snapshots.
var (
	rankOnce sync.Once
	rankBA   *graph.Graph
	rankPool *mcmc.BufferPool
)

func rankFixtures() {
	rankOnce.Do(func() {
		rankBA = graph.BarabasiAlbert(400, 3, rng.New(31))
		rankPool = mcmc.NewBufferPool(rankBA)
	})
}

// BenchmarkRankProgressiveTop5 measures one whole-graph progressive
// top-5 ranking (internal/rank defaults): short chains everywhere,
// then confidence-interval pruning reallocates the budget to the
// contenders. Recovers the exact top-5 set in ~560k MH steps.
func BenchmarkRankProgressiveTop5(b *testing.B) {
	rankFixtures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rank.Run(context.Background(), rankBA, rankPool, rank.Options{K: 5, Seed: 1}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRankUniformTop5 is the allocation baseline at matched
// accuracy: the cheapest uniform per-candidate budget that recovers
// the same exact top-5 set (2048 steps × 400 candidates = ~819k MH
// steps, per TestProgressiveBeatsUniform) — ~1.5x the progressive
// ranker's step count.
func BenchmarkRankUniformTop5(b *testing.B) {
	rankFixtures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rank.Uniform(context.Background(), rankBA, rankPool, 5, 2048, rank.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// editBatch builds the 64-edit mutation workload on fixBA: 32 edge
// removals (every 40th edge) and 32 chord insertions, deterministic.
func editBatch() []graph.Edit {
	fixtures()
	var edits []graph.Edit
	i := 0
	fixBA.ForEachEdge(func(u, v int, _ float64) {
		if i%40 == 0 && len(edits) < 32 {
			edits = append(edits, graph.Edit{Op: graph.EditRemove, U: u, V: v})
		}
		i++
	})
	r := rng.New(41)
	for len(edits) < 64 {
		u, v := r.Intn(fixBA.N()), r.Intn(fixBA.N())
		if u == v || fixBA.HasEdge(u, v) {
			continue
		}
		dup := false
		for _, e := range edits {
			if (e.U == u && e.V == v) || (e.U == v && e.V == u) {
				dup = true
				break
			}
		}
		if !dup {
			edits = append(edits, graph.Edit{Op: graph.EditAdd, U: u, V: v})
		}
	}
	return edits
}

// BenchmarkApplyEdits measures the copy-on-write CSR merge: one
// 64-edit batch (32 removals, 32 insertions) against the 2000-vertex
// scale-free workload — the dynamic-graph mutation kernel.
func BenchmarkApplyEdits(b *testing.B) {
	edits := editBatch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := graph.ApplyEdits(fixBA, edits); err != nil {
			b.Fatal(err)
		}
	}
}

// ringChain builds a chain of `rings` cycles of `size` vertices, each
// sharing one articulation vertex with the next — a block-rich
// topology where μ-cache retention across swaps actually retains.
func ringChain(rings, size int) *graph.Graph {
	n := rings*(size-1) + 1
	b := graph.NewBuilder(n)
	for r := 0; r < rings; r++ {
		base := r * (size - 1)
		for i := 0; i < size-1; i++ {
			b.AddEdge(base+i, base+i+1)
		}
		b.AddEdge(base+size-1, base) // close the cycle at the shared vertex
	}
	return b.MustBuild()
}

// BenchmarkSwapGraphWarm measures the full warm-engine mutation path:
// ApplyEdits (one chord toggled in the first ring) plus
// engine.SwapGraph with a μ-cache of 32 targets spread over a
// 50-ring chain — so every swap runs the biconnected-component
// retention analysis and carries ~31 of 32 entries across. This is
// the serving-path cost of one PATCH /graphs/{id}/edges.
func BenchmarkSwapGraphWarm(b *testing.B) {
	g := ringChain(50, 40)
	eng, err := engine.New(g)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := eng.MuStats(i * (g.N() / 32)); err != nil {
			b.Fatal(err)
		}
	}
	cur := eng.Graph()
	add := true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := graph.EditRemove
		if add {
			op = graph.EditAdd
		}
		next, rep, err := graph.ApplyEdits(cur, []graph.Edit{{Op: op, U: 1, V: 20}})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.SwapGraph(next, rep.Pairs); err != nil {
			b.Fatal(err)
		}
		cur = next
		add = !add
	}
}

// streamEditsBench is the shared body of BenchmarkStreamEdits: one
// single-edit batch per iteration (a chord toggled on and off) applied
// to a warm engine while a background goroutine keeps EstimateBatch
// traffic flowing — the serving regime a live mutation feed runs in.
// stream=true uses the delta-overlay fast path (ApplyEditsOverlay +
// StreamSwap), stream=false the full rebuild (ApplyEdits + SwapGraph).
func streamEditsBench(b *testing.B, stream bool) {
	fixtures()
	eng, err := engine.New(fixBA)
	if err != nil {
		b.Fatal(err)
	}
	// A deterministic non-edge to toggle.
	r := rng.New(43)
	var cu, cv int
	for {
		cu, cv = r.Intn(fixBA.N()), r.Intn(fixBA.N())
		if cu != cv && !fixBA.HasEdge(cu, cv) {
			break
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		opts := engine.BatchOptions{Estimation: core.Options{MaxSteps: 256}, Seed: 7}
		targets := []int{fixTop, 1, 2, 3}
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := eng.EstimateBatch(targets, opts); err != nil {
				return
			}
		}
	}()
	cur := eng.Graph()
	add := true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := graph.EditRemove
		if add {
			op = graph.EditAdd
		}
		edit := []graph.Edit{{Op: op, U: cu, V: cv}}
		var next *graph.Graph
		var rep *graph.EditReport
		if stream {
			next, rep, err = graph.ApplyEditsOverlay(cur, edit)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.StreamSwap(next, rep.Pairs); err != nil {
				b.Fatal(err)
			}
		} else {
			next, rep, err = graph.ApplyEdits(cur, edit)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.SwapGraph(next, rep.Pairs); err != nil {
				b.Fatal(err)
			}
		}
		cur = next
		add = !add
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}

// BenchmarkStreamEdits measures sustained single-edit mutation
// throughput on the 2000-vertex scale-free workload under concurrent
// estimation traffic: the overlay fast path versus the full-rebuild
// baseline it must beat by ≥10x (ISSUE acceptance).
func BenchmarkStreamEdits(b *testing.B) {
	b.Run("stream", func(b *testing.B) { streamEditsBench(b, true) })
	b.Run("rebuild", func(b *testing.B) { streamEditsBench(b, false) })
}

// BenchmarkOverlayBFS measures the traversal-side cost of serving from
// a delta overlay: one full BFS on the 2000-vertex workload, clean CSR
// versus the same graph carrying a 64-edit overlay (the acceptance
// bound is ≤10% overhead). The kernel is the reseatable arena BFS every
// estimator chain runs on.
func BenchmarkOverlayBFS(b *testing.B) {
	fixtures()
	over, _, err := graph.ApplyEditsOverlay(fixBA, editBatch())
	if err != nil {
		b.Fatal(err)
	}
	clean := over.Compact()
	run := func(b *testing.B, g *graph.Graph) {
		k := sssp.NewBFS(g)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k.Run(i % g.N())
		}
	}
	b.Run("clean", func(b *testing.B) { run(b, clean) })
	b.Run("overlay", func(b *testing.B) { run(b, over) })
}

// BenchmarkWALAppend measures the per-mutation durability overhead: one
// CRC32C-framed WAL record (a two-edit batch) encoded and appended,
// fsync deferred to the interval ticker exactly as in the server's
// default `-fsync interval` deployment. This is the extra cost PATCH
// /graphs/{id}/edges pays on a durable session over an in-memory one.
func BenchmarkWALAppend(b *testing.B) {
	mgr, err := durable.NewManager(durable.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	wal, err := mgr.Create("bench", graph.KarateClub(), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer wal.Close()
	edits := []graph.Edit{
		{Op: graph.EditAdd, U: 9, V: 25, W: 1},
		{Op: graph.EditRemove, U: 9, V: 25},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pre := uint64(i)
		if err := wal.Append(pre, pre+1, edits); err != nil {
			b.Fatal(err)
		}
	}
}

// measureFixtures returns the top-degree vertex of the 400-vertex
// ranking workload — the shared target of the measure benchmarks.
func measureHub() int {
	rankFixtures()
	hub := 0
	for v := 1; v < rankBA.N(); v++ {
		if rankBA.Degree(v) > rankBA.Degree(hub) {
			hub = v
		}
	}
	return hub
}

// BenchmarkEstimateCoverage measures a 1024-step coverage-centrality
// chain on the 400-vertex scale-free workload: the BFS-kernel measure
// path (target snapshot + per-state indicator scan) the /estimate
// route runs for measure=coverage.
func BenchmarkEstimateCoverage(b *testing.B) {
	hub := measureHub()
	spec := measure.Spec{Kind: measure.Coverage}
	opts := core.Options{Steps: 1024, Seed: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := measure.Estimate(context.Background(), rankBA, spec, hub, opts, rankPool); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRWBCSolve measures building one random-walk-betweenness
// target: deg(hub) Jacobi-preconditioned CG Laplacian solves plus the
// sorted absolute-deviation tables — the setup cost every rwbc
// estimate pays once per target.
func BenchmarkRWBCSolve(b *testing.B) {
	hub := measureHub()
	spec := measure.Spec{Kind: measure.RWBC}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := measure.NewTarget(context.Background(), rankBA, spec, hub, rankPool); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateAdaptive measures one adaptive (empirical-Bernstein)
// estimate at (0.05, 0.1) on the BA-400 hub — the run that stops at
// ~1k steps where the fixed Eq. 14 plan budgets ~17k (see
// TestAdaptiveMatchedAccuracyBA400 and the README "Adaptive stopping"
// numbers).
func BenchmarkEstimateAdaptive(b *testing.B) {
	hub := measureHub()
	opts := core.Options{Adaptive: true, Epsilon: 0.05, Delta: 0.1, Seed: 7, Estimator: mcmc.EstimatorProposalSide}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateBC(rankBA, hub, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT12Adaptive measures one adaptive certification run at a
// loose epsilon (table T12's kernel).
func BenchmarkT12Adaptive(b *testing.B) {
	fixtures()
	a, err := sampler.NewAdaptive(fixBA, fixTop)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(29)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Run(0.05, 0.1, 0, 1<<16, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBFSHybrid / BenchmarkBFSClassic pin the two traversal
// kernels against each other on both workload shapes: the scale-free
// graph where the direction-optimizing kernel's bottom-up levels and
// degree-ordered layout win, and the high-diameter grid whose narrow
// frontiers must never trigger them (the pair's grid numbers agreeing
// is the "no high-diameter regression" guard in CI's bench smoke).
func BenchmarkBFSHybrid(b *testing.B) {
	benchBFSKernel(b, sssp.NewBFS)
}

func BenchmarkBFSClassic(b *testing.B) {
	benchBFSKernel(b, sssp.NewBFSClassic)
}

func benchBFSKernel(b *testing.B, mk func(*graph.Graph) *sssp.BFS) {
	fixtures()
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{{"ba2000", fixBA}, {"grid40x40", fixGrid}} {
		b.Run(tc.name, func(b *testing.B) {
			k := mk(tc.g)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.Run(i % tc.g.N())
			}
		})
	}
}
