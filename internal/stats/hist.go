package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bin histogram over [Lo, Hi). Values outside the
// range are clamped into the first/last bin so no observation is lost
// (the experiments histogram dependency scores whose support is known
// only approximately in advance).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over
// [lo, hi). It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: NewHistogram with non-positive bins")
	}
	if hi <= lo {
		panic("stats: NewHistogram with hi <= lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	b := int(math.Floor((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts))))
	if b < 0 {
		b = 0
	}
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	h.Counts[b]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the share of observations in bin b.
func (h *Histogram) Fraction(b int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[b]) / float64(h.total)
}

// String renders a compact ASCII bar chart, one line per bin, suitable
// for experiment logs.
func (h *Histogram) String() string {
	var sb strings.Builder
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = c * 40 / maxCount
		}
		fmt.Fprintf(&sb, "[%10.4g,%10.4g) %7d %s\n",
			h.Lo+float64(i)*width, h.Lo+float64(i+1)*width, c,
			strings.Repeat("#", bar))
	}
	return sb.String()
}
