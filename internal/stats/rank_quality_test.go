package stats

// Hand-computed fixtures for the ranking-quality metrics in rank.go —
// the measures the top-k ranking subsystem (internal/rank) is judged
// by. Every expected value below is derived by hand in the comments,
// not by running the code.

import (
	"math"
	"testing"
)

func TestInversionsFixtures(t *testing.T) {
	cases := []struct {
		name string
		x, y []float64
		want int
	}{
		// Identical rankings: no discordant pair.
		{"identity", []float64{1, 2, 3, 4}, []float64{1, 2, 3, 4}, 0},
		// Fully reversed 3 elements: all C(3,2)=3 pairs discordant.
		{"reversed", []float64{1, 2, 3}, []float64{3, 2, 1}, 3},
		// x=[3,1,2], y=[1,2,3]: pairs (0,1) 3>1 vs 1<2 discordant,
		// (0,2) 3>2 vs 1<3 discordant, (1,2) 1<2 vs 2<3 concordant → 2.
		{"two", []float64{3, 1, 2}, []float64{1, 2, 3}, 2},
		// A tie on either side is neither concordant nor discordant:
		// x=[1,1,2] has dx=0 for (0,1), so only (0,2) and (1,2) can
		// count; both concordant with y=[2,1,3]? (0,2): 1<2 vs 2<3
		// concordant; (1,2): 1<2 vs 1<3 concordant → 0.
		{"ties", []float64{1, 1, 2}, []float64{2, 1, 3}, 0},
		// Scores, not ranks: only relative order matters.
		{"scores", []float64{0.9, 0.1, 0.5}, []float64{100, 3, 7}, 0},
		{"empty", nil, nil, 0},
	}
	for _, c := range cases {
		if got := Inversions(c.x, c.y); got != c.want {
			t.Errorf("%s: Inversions = %d, want %d", c.name, got, c.want)
		}
		// Symmetry: discordance is a property of the pair.
		if got := Inversions(c.y, c.x); got != c.want {
			t.Errorf("%s: Inversions reversed args = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestInversionsMatchesKendallDiscordance(t *testing.T) {
	// On tie-free data Kendall's τ = (C - D)/C(n,2); with n=4 and
	// x=[1,2,3,4], y=[2,1,4,3]: D = Inversions = 2 (pairs (0,1) and
	// (2,3)), C = 4, τ = (4-2)/6 = 1/3.
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 1, 4, 3}
	if got := Inversions(x, y); got != 2 {
		t.Fatalf("Inversions = %d, want 2", got)
	}
	if got := KendallTau(x, y); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("KendallTau = %v, want 1/3", got)
	}
}

func TestSpearmanHandComputed(t *testing.T) {
	// Tie-free: ranks equal the values. x=[1,2,3,4], y=[2,1,4,3];
	// deviations from the common mean 2.5 are (-1.5,-.5,.5,1.5) and
	// (-.5,-1.5,1.5,.5); Σxy = .75·4 = 3, Σx² = Σy² = 5 → ρ = 3/5.
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 1, 4, 3}
	if got := Spearman(x, y); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("Spearman = %v, want 0.6", got)
	}
	// Perfect monotone agreement through ties: both sides rank
	// [1, 2.5, 2.5, 4] → ρ = 1.
	xt := []float64{1, 2, 2, 3}
	yt := []float64{10, 20, 20, 30}
	if got := Spearman(xt, yt); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Spearman with ties = %v, want 1", got)
	}
	// Antitone: ρ = −1.
	rev := []float64{4, 3, 2, 1}
	if got := Spearman(x, rev); math.Abs(got+1) > 1e-12 {
		t.Fatalf("Spearman antitone = %v, want -1", got)
	}
}

func TestRanksAllTied(t *testing.T) {
	// Three-way tie spans rank positions 1..3 → everyone gets 2.
	r := Ranks([]float64{5, 5, 5})
	for i, v := range r {
		if v != 2 {
			t.Fatalf("rank[%d] = %v, want 2", i, v)
		}
	}
}

func TestInversionsLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	Inversions([]float64{1}, []float64{1, 2})
}
