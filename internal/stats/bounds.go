package stats

import "math"

// HoeffdingN returns the number of iid samples of a [0,1]-valued variable
// needed so that P[|mean - E| > eps] <= delta by Hoeffding's inequality:
// n >= ln(2/delta) / (2 eps²). This is the classical bound the uniform
// source sampler [2] obeys; the MH sampler's Eq. 14 differs by the μ(r)²
// factor.
func HoeffdingN(eps, delta float64) int {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		panic("stats: HoeffdingN requires eps > 0 and delta in (0,1)")
	}
	return int(math.Ceil(math.Log(2/delta) / (2 * eps * eps)))
}

// HoeffdingBound returns the Hoeffding tail bound 2 exp(-2 n eps²) for
// the mean of n iid samples of a [0,1]-valued variable.
func HoeffdingBound(n int, eps float64) float64 {
	return 2 * math.Exp(-2*float64(n)*eps*eps)
}

// MCMCBound evaluates the right-hand side of the paper's Inequality 12
// (the Łatuszyński–Miasojedow–Niemiro bound specialised by Theorem 1):
//
//	P[|est - BC(r)| > eps] <= 2 exp{ -(T/2) (2 eps / mu - 3/T)² }
//
// for a chain of T steps (n = T+1 samples), spread norm ||f||_sp = 1 and
// minorisation constant λ = 1/mu. When 2 eps / mu <= 3/T the bound is
// vacuous and 1 is returned (a probability bound never exceeds 1).
func MCMCBound(T int, eps, mu float64) float64 {
	if T <= 0 || eps <= 0 || mu <= 0 {
		panic("stats: MCMCBound requires positive T, eps, mu")
	}
	arg := 2*eps/mu - 3/float64(T)
	if arg <= 0 {
		return 1
	}
	b := 2 * math.Exp(-float64(T)/2*arg*arg)
	if b > 1 {
		return 1
	}
	return b
}

// MCMCSampleSize returns the chain length T prescribed by the paper's
// Eq. 14 (and identically Eq. 27 for the joint sampler):
//
//	T >= mu² / (2 eps²) · ln(2/delta)
//
// It ignores the 3/T slack term exactly as the paper does ("T is usually
// large enough so that we can approximate 3/T by 0").
func MCMCSampleSize(eps, delta, mu float64) int {
	if eps <= 0 || delta <= 0 || delta >= 1 || mu <= 0 {
		panic("stats: MCMCSampleSize requires eps > 0, delta in (0,1), mu > 0")
	}
	return int(math.Ceil(mu * mu / (2 * eps * eps) * math.Log(2/delta)))
}

// RKSampleSize returns the Riondato–Kornaropoulos [30] sample size for
// estimating all betweenness values within eps with probability 1-delta:
//
//	r >= (c/eps²) (floor(log2(VD-2)) + 1 + ln(1/delta))
//
// where VD is the vertex diameter (number of vertices on the longest
// shortest path) and c is the universal VC constant, 0.5 in their
// implementation.
func RKSampleSize(eps, delta float64, vertexDiameter int) int {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		panic("stats: RKSampleSize requires eps > 0 and delta in (0,1)")
	}
	vd := vertexDiameter
	if vd < 2 {
		vd = 2
	}
	var ld float64
	if vd > 2 {
		ld = math.Floor(math.Log2(float64(vd - 2)))
	}
	const c = 0.5
	return int(math.Ceil(c / (eps * eps) * (ld + 1 + math.Log(1/delta))))
}

// Autocorrelation returns the lag-k sample autocorrelation of xs.
// It returns 0 when the series is too short or has zero variance.
func Autocorrelation(xs []float64, k int) float64 {
	n := len(xs)
	if k < 0 || k >= n {
		return 0
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - m
		den += d * d
	}
	if den == 0 {
		return 0
	}
	for i := 0; i+k < n; i++ {
		num += (xs[i] - m) * (xs[i+k] - m)
	}
	return num / den
}

// ESSBatchMeans estimates the effective sample size of a (possibly
// autocorrelated) chain trace via the batch-means method with ~sqrt(n)
// batches: ESS = n · Var(xs)/ (b · Var(batch means)) clipped to [1, n].
// This is the standard cheap diagnostic for MCMC output.
func ESSBatchMeans(xs []float64) float64 {
	n := len(xs)
	if n < 4 {
		return float64(n)
	}
	b := int(math.Floor(math.Sqrt(float64(n)))) // batch size
	numBatches := n / b
	if numBatches < 2 {
		return float64(n)
	}
	means := make([]float64, numBatches)
	for i := 0; i < numBatches; i++ {
		means[i] = Mean(xs[i*b : (i+1)*b])
	}
	varAll := Variance(xs)
	varMeans := Variance(means)
	if varMeans == 0 {
		if varAll == 0 {
			return float64(n) // constant chain: every sample "effective"
		}
		return float64(n)
	}
	ess := float64(n) * varAll / (float64(b) * varMeans)
	if ess < 1 {
		return 1
	}
	if ess > float64(n) {
		return float64(n)
	}
	return ess
}

// EmpiricalCoverage returns the fraction of errs whose absolute value
// exceeds eps — the empirical counterpart of P[|est-BC| > eps] used to
// check Theorem 1 in experiment F2.
func EmpiricalCoverage(errs []float64, eps float64) float64 {
	if len(errs) == 0 {
		return 0
	}
	cnt := 0
	for _, e := range errs {
		if math.Abs(e) > eps {
			cnt++
		}
	}
	return float64(cnt) / float64(len(errs))
}
