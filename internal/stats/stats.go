// Package stats provides the statistical machinery used by the estimators
// and the experiment harness: streaming moment accumulators, quantiles,
// error metrics, rank correlations, concentration bounds (including the
// non-asymptotic MCMC Hoeffding bound the paper builds Theorem 1 on), and
// chain diagnostics such as autocorrelation and batch-means effective
// sample size.
package stats

import (
	"math"
	"sort"
)

// Welford is a streaming accumulator for count, mean, variance, min and
// max using Welford's numerically stable update. The zero value is ready
// to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// AddAll folds every value of xs into the accumulator.
func (w *Welford) AddAll(xs []float64) {
	for _, x := range xs {
		w.Add(x)
	}
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// PopVariance returns the population (biased) variance.
func (w *Welford) PopVariance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the unbiased sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// Merge combines another accumulator into w (parallel variant of
// Welford's update, Chan et al.).
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
func Variance(xs []float64) float64 {
	var w Welford
	w.AddAll(xs)
	return w.Variance()
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (q in [0,1]) of xs using linear
// interpolation between order statistics. It returns NaN on empty input
// and panics on q outside [0,1]. The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// MeanAbsError returns the mean of |est[i]-truth[i]|. The slices must be
// the same length; it panics otherwise.
func MeanAbsError(est, truth []float64) float64 {
	if len(est) != len(truth) {
		panic("stats: MeanAbsError length mismatch")
	}
	if len(est) == 0 {
		return 0
	}
	var s float64
	for i := range est {
		s += math.Abs(est[i] - truth[i])
	}
	return s / float64(len(est))
}

// MaxAbsError returns the maximum of |est[i]-truth[i]|.
func MaxAbsError(est, truth []float64) float64 {
	if len(est) != len(truth) {
		panic("stats: MaxAbsError length mismatch")
	}
	var m float64
	for i := range est {
		if d := math.Abs(est[i] - truth[i]); d > m {
			m = d
		}
	}
	return m
}

// RMSE returns the root-mean-square error between est and truth.
func RMSE(est, truth []float64) float64 {
	if len(est) != len(truth) {
		panic("stats: RMSE length mismatch")
	}
	if len(est) == 0 {
		return 0
	}
	var s float64
	for i := range est {
		d := est[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(est)))
}

// RelError returns |est-truth|/|truth|, or |est| when truth == 0 (so a
// correct zero estimate scores 0 rather than NaN).
func RelError(est, truth float64) float64 {
	if truth == 0 {
		return math.Abs(est)
	}
	return math.Abs(est-truth) / math.Abs(truth)
}

// Pearson returns the Pearson correlation coefficient of x and y.
// It returns 0 when either side has zero variance.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Pearson length mismatch")
	}
	n := len(x)
	if n == 0 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
