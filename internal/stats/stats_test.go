package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if !almostEq(w.Mean(), 5, 1e-12) {
		t.Fatalf("mean %v", w.Mean())
	}
	// Population variance of this classic dataset is 4.
	if !almostEq(w.PopVariance(), 4, 1e-12) {
		t.Fatalf("pop variance %v", w.PopVariance())
	}
	if !almostEq(w.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("variance %v", w.Variance())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, -3, 0.5}
	var whole Welford
	whole.AddAll(xs)
	var a, b Welford
	a.AddAll(xs[:5])
	b.AddAll(xs[5:])
	a.Merge(&b)
	if a.N() != whole.N() || !almostEq(a.Mean(), whole.Mean(), 1e-12) ||
		!almostEq(a.Variance(), whole.Variance(), 1e-9) ||
		a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merge mismatch: %+v vs %+v", a, whole)
	}
}

func TestWelfordMergeEmptySides(t *testing.T) {
	var a, b Welford
	b.Add(3)
	a.Merge(&b) // empty <- nonempty
	if a.N() != 1 || a.Mean() != 3 {
		t.Fatalf("merge into empty: %+v", a)
	}
	var c Welford
	a.Merge(&c) // nonempty <- empty
	if a.N() != 1 {
		t.Fatal("merge of empty changed accumulator")
	}
}

func TestWelfordMergeProperty(t *testing.T) {
	f := func(raw []float64, cut uint8) bool {
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			if math.Abs(v) > 1e12 {
				return true // avoid pathological float cancellation
			}
		}
		if len(raw) == 0 {
			return true
		}
		k := int(cut) % len(raw)
		var whole, a, b Welford
		whole.AddAll(raw)
		a.AddAll(raw[:k])
		b.AddAll(raw[k:])
		a.Merge(&b)
		scale := 1 + math.Abs(whole.Variance())
		return a.N() == whole.N() &&
			almostEq(a.Mean(), whole.Mean(), 1e-6*(1+math.Abs(whole.Mean()))) &&
			almostEq(a.Variance(), whole.Variance(), 1e-6*scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanVarianceSlices(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Fatalf("mean %v", Mean(xs))
	}
	if !almostEq(Variance(xs), 5.0/3.0, 1e-12) {
		t.Fatalf("variance %v", Variance(xs))
	}
	if Mean(nil) != 0 {
		t.Fatal("mean of empty should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 3 || Quantile(xs, 0.5) != 2 {
		t.Fatal("basic quantiles wrong")
	}
	if !almostEq(Quantile(xs, 0.25), 1.5, 1e-12) {
		t.Fatalf("interpolated quantile %v", Quantile(xs, 0.25))
	}
	// Input must be unmodified.
	if xs[0] != 3 {
		t.Fatal("Quantile mutated input")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
	if Median([]float64{5}) != 5 {
		t.Fatal("single-element median")
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("q>1 did not panic")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestErrorMetrics(t *testing.T) {
	est := []float64{1, 2, 3}
	truth := []float64{1, 1, 5}
	if !almostEq(MeanAbsError(est, truth), 1, 1e-12) {
		t.Fatalf("MAE %v", MeanAbsError(est, truth))
	}
	if MaxAbsError(est, truth) != 2 {
		t.Fatalf("MaxAE %v", MaxAbsError(est, truth))
	}
	if !almostEq(RMSE(est, truth), math.Sqrt(5.0/3.0), 1e-12) {
		t.Fatalf("RMSE %v", RMSE(est, truth))
	}
}

func TestRelError(t *testing.T) {
	if RelError(1.1, 1.0) > 0.100001 || RelError(1.1, 1.0) < 0.099999 {
		t.Fatal("RelError basic")
	}
	if RelError(0.25, 0) != 0.25 {
		t.Fatal("RelError with zero truth should return |est|")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if !almostEq(Pearson(x, x), 1, 1e-12) {
		t.Fatal("self correlation != 1")
	}
	neg := []float64{4, 3, 2, 1}
	if !almostEq(Pearson(x, neg), -1, 1e-12) {
		t.Fatal("reversed correlation != -1")
	}
	if Pearson(x, []float64{2, 2, 2, 2}) != 0 {
		t.Fatal("constant series should give 0")
	}
}

func TestRanks(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks %v want %v", r, want)
		}
	}
}

func TestSpearmanMonotone(t *testing.T) {
	x := []float64{1, 5, 2, 8, 3}
	y := []float64{2, 50, 4, 1000, 6} // monotone transform of x
	if !almostEq(Spearman(x, y), 1, 1e-12) {
		t.Fatalf("spearman %v", Spearman(x, y))
	}
}

func TestKendallTau(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if !almostEq(KendallTau(x, x), 1, 1e-12) {
		t.Fatal("tau(x,x) != 1")
	}
	rev := []float64{5, 4, 3, 2, 1}
	if !almostEq(KendallTau(x, rev), -1, 1e-12) {
		t.Fatal("tau reversed != -1")
	}
	// One swap in 4 elements: 5 concordant, 1 discordant → 4/6.
	if !almostEq(KendallTau([]float64{1, 2, 3, 4}, []float64{1, 3, 2, 4}), 4.0/6.0, 1e-12) {
		t.Fatal("tau single swap")
	}
	if KendallTau([]float64{1}, []float64{1}) != 0 {
		t.Fatal("tau on singleton should be 0")
	}
}

func TestKendallTauTies(t *testing.T) {
	// With ties τ-b is still within [-1, 1] and symmetric.
	x := []float64{1, 1, 2, 3}
	y := []float64{2, 2, 4, 4}
	a := KendallTau(x, y)
	b := KendallTau(y, x)
	if !almostEq(a, b, 1e-12) {
		t.Fatalf("tau not symmetric: %v vs %v", a, b)
	}
	if a < -1 || a > 1 {
		t.Fatalf("tau out of range: %v", a)
	}
}

func TestTopKOverlap(t *testing.T) {
	x := []float64{9, 8, 1, 2}
	y := []float64{9, 1, 8, 2}
	if got := TopKOverlap(x, y, 2); got != 0.5 {
		t.Fatalf("overlap %v", got)
	}
	if got := TopKOverlap(x, x, 3); got != 1 {
		t.Fatalf("self overlap %v", got)
	}
}

func TestHoeffdingN(t *testing.T) {
	n := HoeffdingN(0.01, 0.1)
	// ln(20)/(2·1e-4) ≈ 14979
	if n < 14000 || n > 16000 {
		t.Fatalf("HoeffdingN = %d", n)
	}
	// Monotonicity: tighter eps → more samples.
	if HoeffdingN(0.005, 0.1) <= n {
		t.Fatal("HoeffdingN not monotone in eps")
	}
}

func TestHoeffdingBound(t *testing.T) {
	if b := HoeffdingBound(0, 0.1); b != 2 {
		t.Fatalf("n=0 bound %v", b)
	}
	if HoeffdingBound(1000, 0.1) >= HoeffdingBound(100, 0.1) {
		t.Fatal("bound not decreasing in n")
	}
}

func TestMCMCBound(t *testing.T) {
	// Vacuous regime: T small enough that 2eps/mu <= 3/T.
	if MCMCBound(10, 0.01, 1) != 1 {
		t.Fatal("expected vacuous bound 1")
	}
	// Decreasing in T once informative.
	b1 := MCMCBound(100000, 0.01, 2)
	b2 := MCMCBound(400000, 0.01, 2)
	if b2 >= b1 {
		t.Fatalf("MCMC bound not decreasing: %v -> %v", b1, b2)
	}
	// Increasing in mu (worse concentration).
	if MCMCBound(100000, 0.01, 4) <= MCMCBound(100000, 0.01, 2) {
		t.Fatal("MCMC bound should grow with mu")
	}
	if b := MCMCBound(5, 10, 0.001); b > 1 {
		t.Fatal("bound must be capped at 1")
	}
}

func TestMCMCSampleSize(t *testing.T) {
	// mu=1 should match Hoeffding exactly (iid case).
	if MCMCSampleSize(0.01, 0.1, 1) != HoeffdingN(0.01, 0.1) {
		t.Fatal("mu=1 should reduce to Hoeffding")
	}
	// Quadratic in mu.
	a := MCMCSampleSize(0.01, 0.1, 1)
	b := MCMCSampleSize(0.01, 0.1, 2)
	if b < 4*a-4 || b > 4*a+4 {
		t.Fatalf("sample size not ~quadratic in mu: %d vs %d", a, b)
	}
}

func TestMCMCSampleSizeConsistentWithBound(t *testing.T) {
	// Plugging Eq.14's T back into the bound (ignoring the 3/T slack the
	// paper drops) should give approximately delta.
	eps, delta, mu := 0.02, 0.05, 3.0
	T := MCMCSampleSize(eps, delta, mu)
	got := MCMCBound(T, eps, mu)
	// The 3/T term makes the evaluated bound slightly larger than delta.
	if got < delta*0.8 || got > delta*2 {
		t.Fatalf("bound at Eq.14 T: got %v want ≈ %v", got, delta)
	}
}

func TestRKSampleSize(t *testing.T) {
	n := RKSampleSize(0.05, 0.1, 10)
	if n <= 0 {
		t.Fatalf("RK size %d", n)
	}
	// Larger diameter → at least as many samples.
	if RKSampleSize(0.05, 0.1, 100) < n {
		t.Fatal("RK size should grow with diameter")
	}
	// VD below 2 is clamped, not panicking.
	if RKSampleSize(0.05, 0.1, 1) <= 0 {
		t.Fatal("clamped diameter failed")
	}
}

func TestAutocorrelation(t *testing.T) {
	xs := []float64{1, -1, 1, -1, 1, -1, 1, -1}
	if !almostEq(Autocorrelation(xs, 0), 1, 1e-12) {
		t.Fatal("lag-0 autocorrelation != 1")
	}
	if Autocorrelation(xs, 1) >= 0 {
		t.Fatal("alternating series should have negative lag-1 autocorr")
	}
	if Autocorrelation([]float64{2, 2, 2}, 1) != 0 {
		t.Fatal("constant series autocorr should be 0")
	}
	if Autocorrelation(xs, 100) != 0 {
		t.Fatal("lag beyond length should be 0")
	}
}

func TestESSBatchMeans(t *testing.T) {
	// Strongly autocorrelated chain: long runs of the same value.
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = float64((i / 128) % 2)
	}
	ess := ESSBatchMeans(xs)
	if ess > 200 {
		t.Fatalf("sticky chain ESS too high: %v", ess)
	}
	// Alternating chain has negative autocorrelation → high ESS.
	alt := make([]float64, 1024)
	for i := range alt {
		alt[i] = float64(i % 2)
	}
	if ESSBatchMeans(alt) < 500 {
		t.Fatalf("alternating chain ESS too low: %v", ESSBatchMeans(alt))
	}
	if ESSBatchMeans([]float64{1, 2}) != 2 {
		t.Fatal("short series should return its length")
	}
}

func TestEmpiricalCoverage(t *testing.T) {
	errs := []float64{0.005, -0.02, 0.03, -0.001}
	if got := EmpiricalCoverage(errs, 0.01); got != 0.5 {
		t.Fatalf("coverage %v", got)
	}
	if EmpiricalCoverage(nil, 0.01) != 0 {
		t.Fatal("empty coverage should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0, 1.9, 2, 5, 9.9, -3, 42} {
		h.Add(v)
	}
	if h.Total() != 7 {
		t.Fatalf("total %d", h.Total())
	}
	// -3 clamps to bin 0, 42 clamps to bin 4.
	if h.Counts[0] != 3 { // 0, 1.9, -3
		t.Fatalf("bin0 %d", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.9, 42
		t.Fatalf("bin4 %d", h.Counts[4])
	}
	if !almostEq(h.Fraction(0), 3.0/7.0, 1e-12) {
		t.Fatalf("fraction %v", h.Fraction(0))
	}
	if h.String() == "" {
		t.Fatal("empty render")
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad histogram args did not panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestQuantileProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q0, q5, q1 := Quantile(xs, 0), Quantile(xs, 0.5), Quantile(xs, 1)
		return q0 <= q5 && q5 <= q1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWelfordAdd(b *testing.B) {
	var w Welford
	for i := 0; i < b.N; i++ {
		w.Add(float64(i % 97))
	}
}

func BenchmarkKendallTau64(b *testing.B) {
	x := make([]float64, 64)
	y := make([]float64, 64)
	for i := range x {
		x[i] = float64(i * i % 101)
		y[i] = float64(i * 7 % 101)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KendallTau(x, y)
	}
}
