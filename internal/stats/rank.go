package stats

import (
	"math"
	"sort"
)

// Ranks returns the 1-based fractional ranks of xs: ties receive the
// average of the rank positions they span (the convention Spearman's ρ
// expects). The input is not modified.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Positions i..j (0-based) share the average rank.
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Spearman returns Spearman's rank correlation ρ between x and y
// (Pearson correlation of the fractional ranks).
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Spearman length mismatch")
	}
	return Pearson(Ranks(x), Ranks(y))
}

// KendallTau returns Kendall's τ-b rank correlation between x and y,
// which corrects for ties on either side. O(n²); the rankings compared
// in the experiments have at most a few dozen entries.
func KendallTau(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: KendallTau length mismatch")
	}
	n := len(x)
	if n < 2 {
		return 0
	}
	var concordant, discordant float64
	var tiesX, tiesY float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := x[i] - x[j]
			dy := y[i] - y[j]
			switch {
			case dx == 0 && dy == 0:
				// Joint tie: contributes to neither denominator term.
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case dx*dy > 0:
				concordant++
			default:
				discordant++
			}
		}
	}
	denom := math.Sqrt((concordant + discordant + tiesX) * (concordant + discordant + tiesY))
	if denom == 0 {
		return 0
	}
	return (concordant - discordant) / denom
}

// Inversions counts the discordant index pairs between two score
// vectors: pairs (i, j) that x and y order oppositely (ties on either
// side discordant with nothing). Zero means y ranks exactly like x;
// n(n-1)/2 means the rankings are reversed. This is the raw count
// behind Kendall's τ numerator, useful on its own as an absolute
// ranking-error measure. O(n²).
func Inversions(x, y []float64) int {
	if len(x) != len(y) {
		panic("stats: Inversions length mismatch")
	}
	count := 0
	for i := 0; i < len(x); i++ {
		for j := i + 1; j < len(x); j++ {
			if (x[i]-x[j])*(y[i]-y[j]) < 0 {
				count++
			}
		}
	}
	return count
}

// TopKIndices returns the indices of the k largest values, best first
// (ties broken by lower index, keeping the selection deterministic).
// It panics when k is outside [0, len(v)]. This is the one top-k
// selection rule shared by the ranking metrics and front-ends.
func TopKIndices(v []float64, k int) []int {
	if k < 0 || k > len(v) {
		panic("stats: TopKIndices k out of range")
	}
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if v[idx[a]] != v[idx[b]] {
			return v[idx[a]] > v[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}

// TopKOverlap returns |topK(x) ∩ topK(y)| / k where topK selects the
// indices of the k largest values per TopKIndices. It panics if k
// exceeds the length.
func TopKOverlap(x, y []float64, k int) float64 {
	if len(x) != len(y) {
		panic("stats: TopKOverlap length mismatch")
	}
	if k <= 0 || k > len(x) {
		panic("stats: TopKOverlap k out of range")
	}
	top := func(v []float64) map[int]bool {
		set := make(map[int]bool, k)
		for _, i := range TopKIndices(v, k) {
			set[i] = true
		}
		return set
	}
	tx, ty := top(x), top(y)
	inter := 0
	for i := range tx {
		if ty[i] {
			inter++
		}
	}
	return float64(inter) / float64(k)
}
