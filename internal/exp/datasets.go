package exp

import (
	"fmt"
	"sort"

	"bcmh/internal/brandes"
	"bcmh/internal/graph"
	"bcmh/internal/rng"
)

// Dataset is a named graph workload. Build must return a connected
// undirected graph (generators that can disconnect are wrapped with
// largest-component extraction).
type Dataset struct {
	Name   string
	Family string // structural regime, for the T1 inventory
	Build  func(scale Scale, seed uint64) *graph.Graph
}

// Scale selects experiment size: Quick keeps every experiment under a
// few seconds for tests and smoke runs; Full is what EXPERIMENTS.md
// records.
type Scale int

const (
	// Quick is the test/smoke scale.
	Quick Scale = iota
	// Full is the EXPERIMENTS.md scale.
	Full
)

// String returns the scale label.
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

func (s Scale) pick(quick, full int) int {
	if s == Full {
		return full
	}
	return quick
}

func connected(g *graph.Graph) *graph.Graph {
	if graph.IsConnected(g) {
		return g
	}
	lc, _, err := graph.LargestComponent(g)
	if err != nil {
		panic(err)
	}
	return lc
}

// Datasets returns the standard workload registry. The families span
// the structural regimes the estimators' behaviour depends on (see
// DESIGN.md's substitutions table): scale-free (BA), homogeneous random
// (ER), small-world (WS), high-diameter lattice (grid), separator
// structure (barbell, star-of-cliques), community structure (planted
// partition), plus the real Zachary karate network.
func Datasets() []Dataset {
	return []Dataset{
		{
			Name: "karate", Family: "real social",
			Build: func(Scale, uint64) *graph.Graph { return graph.KarateClub() },
		},
		{
			Name: "ba", Family: "scale-free (Barabási–Albert)",
			Build: func(s Scale, seed uint64) *graph.Graph {
				return graph.BarabasiAlbert(s.pick(800, 2500), 3, rng.New(seed))
			},
		},
		{
			Name: "er", Family: "homogeneous random (Erdős–Rényi)",
			Build: func(s Scale, seed uint64) *graph.Graph {
				n := s.pick(800, 2500)
				return connected(graph.ErdosRenyiGNP(n, 8/float64(n-1), rng.New(seed)))
			},
		},
		{
			Name: "ws", Family: "small-world (Watts–Strogatz)",
			Build: func(s Scale, seed uint64) *graph.Graph {
				return connected(graph.WattsStrogatz(s.pick(800, 2000), 10, 0.1, rng.New(seed)))
			},
		},
		{
			Name: "grid", Family: "2-D lattice (road-like)",
			Build: func(s Scale, seed uint64) *graph.Graph {
				side := s.pick(20, 40)
				return graph.Grid(side, side)
			},
		},
		{
			Name: "barbell", Family: "separator (two cliques + path)",
			Build: func(s Scale, seed uint64) *graph.Graph {
				k := s.pick(60, 150)
				return graph.Barbell(k, k, 4)
			},
		},
		{
			Name: "cliquestar", Family: "separator (star of cliques)",
			Build: func(s Scale, seed uint64) *graph.Graph {
				return graph.StarOfCliques(4, s.pick(30, 80))
			},
		},
		{
			Name: "planted", Family: "community (planted partition)",
			Build: func(s Scale, seed uint64) *graph.Graph {
				per := s.pick(80, 160)
				return connected(graph.PlantedPartition(4, per, 24/float64(per), 0.002, rng.New(seed)))
			},
		},
	}
}

// DatasetByName finds a dataset in the registry.
func DatasetByName(name string) (Dataset, error) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("exp: unknown dataset %q", name)
}

// VertexClass identifies target vertices by exact-BC rank, the way the
// per-vertex experiments pick "important", "middling" and "peripheral"
// targets.
type VertexClass struct {
	Label  string
	Vertex int
	BC     float64
}

// PickTargets returns the top-ranked vertex, the vertex at the pXX
// rank positions requested (e.g. 0.5 → median rank), skipping
// zero-betweenness vertices for the lower picks when possible.
func PickTargets(g *graph.Graph, bc []float64, quantiles ...float64) []VertexClass {
	if bc == nil {
		bc = brandes.BCParallel(g, 0)
	}
	idx := make([]int, len(bc))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if bc[idx[a]] != bc[idx[b]] {
			return bc[idx[a]] > bc[idx[b]]
		}
		return idx[a] < idx[b]
	})
	out := []VertexClass{{Label: "top", Vertex: idx[0], BC: bc[idx[0]]}}
	for _, q := range quantiles {
		pos := int(q * float64(len(idx)-1))
		// Walk upward past zero-BC vertices so the sampler has a
		// meaningful target (zero targets short-circuit, see core).
		for pos > 0 && bc[idx[pos]] == 0 {
			pos--
		}
		out = append(out, VertexClass{
			Label:  fmt.Sprintf("p%02d", int(q*100)),
			Vertex: idx[pos],
			BC:     bc[idx[pos]],
		})
	}
	return out
}
