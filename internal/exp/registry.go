package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Runner regenerates one experiment's table or figure series.
type Runner func(w io.Writer, s Scale, seed uint64) error

// Experiment couples an id with its runner and a one-line description.
type Experiment struct {
	ID          string
	Description string
	Run         Runner
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"t1", "dataset inventory", RunT1},
		{"t2", "headline single-vertex accuracy at the Eq.14 budget", RunT2},
		{"f1", "error vs sample budget, all estimators", RunF1},
		{"t3", "mu(r) anatomy and bias floor", RunT3},
		{"f2", "empirical (eps,delta)-coverage vs Theorem 1 bound", RunF2},
		{"t4", "Theorem 2: separator mu scaling", RunT4},
		{"t5", "joint-space ratio accuracy (Eq.22)", RunT5},
		{"f3", "relative-score convergence and definition gap", RunF3},
		{"t6", "ranking quality at equal budget", RunT6},
		{"t7", "per-sample cost and Brandes crossover", RunT7},
		{"t8", "ablations (estimator, burn-in, proposal, cache)", RunT8},
		{"t9", "weighted graphs", RunT9},
		{"t10", "bias decomposition", RunT10},
		{"t11", "stress centrality via the MH chain (other-indices extension)", RunT11},
		{"t12", "adaptive empirical-Bernstein sampling vs fixed budgets", RunT12},
	}
}

// ByID returns the experiment with the given id (case-insensitive).
func ByID(id string) (Experiment, error) {
	id = strings.ToLower(strings.TrimSpace(id))
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q (have: %s)", id, strings.Join(ids, ", "))
}

// RunAll runs every experiment in order, stopping at the first error.
func RunAll(w io.Writer, s Scale, seed uint64) error {
	for _, e := range All() {
		if err := e.Run(w, s, seed); err != nil {
			return fmt.Errorf("exp: %s: %w", e.ID, err)
		}
	}
	return nil
}
