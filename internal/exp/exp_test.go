package exp

import (
	"strings"
	"testing"

	"bcmh/internal/graph"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("demo", "a", "longer-header", "c")
	tbl.Add(1, 2.5, "x")
	tbl.Add("wide-cell-value", 0.000123, "y")
	tbl.Note("footnote %d", 7)
	out := tbl.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "longer-header") || !strings.Contains(out, "wide-cell-value") {
		t.Fatalf("missing cells:\n%s", out)
	}
	if !strings.Contains(out, "note: footnote 7") {
		t.Fatalf("missing note:\n%s", out)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows %d", tbl.NumRows())
	}
	// Column alignment: header and row cells start at the same offset.
	lines := strings.Split(out, "\n")
	hdr := lines[1]
	row := lines[3]
	cIdx := strings.Index(hdr, "longer-header")
	if row[cIdx-2:cIdx] != "  " {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}

func TestTablePanicsOnArityMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity did not panic")
		}
	}()
	NewTable("x", "a", "b").Add(1)
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("t", "name", "value")
	tbl.Add("plain", 1.5)
	tbl.Add("needs,quoting", 2.0)
	tbl.Add(`has"quote`, 3.0)
	var sb strings.Builder
	if err := tbl.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	csv := sb.String()
	if !strings.HasPrefix(csv, "name,value\n") {
		t.Fatalf("csv header: %q", csv)
	}
	if !strings.Contains(csv, `"needs,quoting"`) || !strings.Contains(csv, `"has""quote"`) {
		t.Fatalf("csv escaping: %q", csv)
	}
}

func TestDatasetsBuildConnected(t *testing.T) {
	for _, d := range Datasets() {
		g := d.Build(Quick, 1)
		if g.N() < 2 {
			t.Fatalf("%s: too small", d.Name)
		}
		if !graph.IsConnected(g) {
			t.Fatalf("%s: not connected", d.Name)
		}
	}
}

func TestDatasetByName(t *testing.T) {
	if _, err := DatasetByName("ba"); err != nil {
		t.Fatal(err)
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestScalePick(t *testing.T) {
	if Quick.pick(1, 2) != 1 || Full.pick(1, 2) != 2 {
		t.Fatal("scale pick wrong")
	}
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Fatal("scale labels wrong")
	}
}

func TestPickTargets(t *testing.T) {
	g := graph.KarateClub()
	targets := PickTargets(g, nil, 0.5, 0.9)
	if len(targets) != 3 {
		t.Fatalf("targets %v", targets)
	}
	if targets[0].Label != "top" || targets[0].Vertex != 0 {
		t.Fatalf("top target %+v (karate top is vertex 0)", targets[0])
	}
	if targets[0].BC < targets[1].BC || targets[1].BC < targets[2].BC {
		t.Fatalf("targets not rank-ordered: %+v", targets)
	}
	for _, tt := range targets[1:] {
		if tt.BC <= 0 {
			t.Fatalf("picked zero-BC target %+v", tt)
		}
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("expected 15 experiments, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Description == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if _, err := ByID(strings.ToUpper(e.ID)); err != nil {
			t.Fatalf("ByID(%s): %v", e.ID, err)
		}
	}
	if _, err := ByID("zzz"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRunT1(t *testing.T) {
	var sb strings.Builder
	if err := RunT1(&sb, Quick, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, d := range Datasets() {
		if !strings.Contains(out, d.Name) {
			t.Fatalf("T1 missing dataset %s:\n%s", d.Name, out)
		}
	}
}

func TestRunT4TheoremTwoShape(t *testing.T) {
	if testing.Short() {
		t.Skip("T4 runner (~5s, minutes under -race) skipped in -short mode")
	}
	var sb strings.Builder
	if err := RunT4(&sb, Quick, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Theorem 2") {
		t.Fatal("T4 output malformed")
	}
}

// TestRunAllQuick smoke-runs every experiment at quick scale. This is
// the expensive integration test (≈1 minute); skipped under -short.
func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment suite skipped in -short mode")
	}
	var sb strings.Builder
	if err := RunAll(&sb, Quick, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, e := range All() {
		// Every experiment contributes at least one table header.
		if !strings.Contains(strings.ToLower(out), e.ID+":") {
			t.Fatalf("experiment %s produced no table", e.ID)
		}
	}
}
