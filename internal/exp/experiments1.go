package exp

import (
	"fmt"
	"io"
	"math"
	"time"

	"bcmh/internal/brandes"
	"bcmh/internal/graph"
	"bcmh/internal/mcmc"
	"bcmh/internal/rng"
	"bcmh/internal/sampler"
	"bcmh/internal/stats"
)

// epsDefault/deltaDefault are the (ε,δ) used wherever an experiment
// needs a concrete guarantee level.
const (
	epsDefault   = 0.01
	deltaDefault = 0.1
)

// RunT1 prints the dataset inventory (Table T1).
func RunT1(w io.Writer, s Scale, seed uint64) error {
	t := NewTable("T1: dataset inventory ("+s.String()+" scale)",
		"name", "family", "n", "m", "max-deg", "diam(approx)")
	r := rng.New(seed)
	for _, d := range Datasets() {
		g := d.Build(s, seed)
		t.Add(d.Name, d.Family, g.N(), g.M(), g.MaxDegree(),
			graph.ApproxDiameter(g, r.Split(d.Name), 2))
	}
	t.Note("diameters are double-sweep lower bounds (exact on trees)")
	_, err := t.WriteTo(w)
	return err
}

// t2Datasets are the graphs the headline single-vertex table uses.
var t2Datasets = []string{"karate", "ba", "er", "grid"}

// RunT2 prints the headline single-vertex accuracy table (T2): for
// vertices at several BC ranks, the MH estimates next to exact values,
// at the Eq. 14 budget (capped).
func RunT2(w io.Writer, s Scale, seed uint64) error {
	t := NewTable("T2: single-vertex MH estimation at the Eq.14 budget (capped)",
		"graph", "vertex", "rank", "exact-BC", "mu", "T", "chain-avg", "err",
		"harmonic", "err(h)", "accept", "ms")
	cap := s.pick(20000, 60000)
	for _, name := range t2Datasets {
		d, err := DatasetByName(name)
		if err != nil {
			return err
		}
		g := d.Build(s, seed)
		bc := brandes.BCParallel(g, 0)
		for _, tgt := range PickTargets(g, bc, 0.5, 0.9) {
			ms, err := mcmc.MuExact(g, tgt.Vertex)
			if err != nil {
				return err
			}
			steps := mcmc.PlanSteps(epsDefault, deltaDefault, math.Max(ms.Mu, 0.1))
			if steps > cap {
				steps = cap
			}
			start := time.Now()
			res, err := mcmc.EstimateBC(g, tgt.Vertex, mcmc.DefaultConfig(steps), rng.New(seed+uint64(tgt.Vertex)))
			if err != nil {
				return err
			}
			elapsed := time.Since(start)
			t.Add(name, tgt.Vertex, tgt.Label, tgt.BC, ms.Mu, steps,
				res.ChainAverage, math.Abs(res.ChainAverage-tgt.BC),
				res.Harmonic, math.Abs(res.Harmonic-tgt.BC),
				res.AcceptanceRate, float64(elapsed.Milliseconds()))
		}
	}
	t.Note("chain-avg is the paper's estimator (standard-MH counting); err is vs exact BC")
	t.Note("the err column includes the asymptotic bias E_pi[f]-BC — see T3/T10")
	_, err := t.WriteTo(w)
	return err
}

// f1Estimators enumerates the estimator series of figure F1.
var f1Estimators = []string{"mh-chain", "mh-harmonic", "proposal-side", "uniform[2]", "distance[13]", "RK[30]", "bb-BFS[7]"}

// RunF1 prints the error-vs-budget series (Figure F1) for every
// estimator on the scale-free and homogeneous workloads.
func RunF1(w io.Writer, s Scale, seed uint64) error {
	budgets := []int{32, 64, 128, 256, 512, 1024, 2048}
	if s == Full {
		budgets = append(budgets, 4096)
	}
	reps := s.pick(10, 20)
	for _, name := range []string{"ba", "er"} {
		d, err := DatasetByName(name)
		if err != nil {
			return err
		}
		g := d.Build(s, seed)
		bc := brandes.BCParallel(g, 0)
		tgt := PickTargets(g, bc, 0.5)[0] // top vertex
		headers := append([]string{"T"}, f1Estimators...)
		cells := make([]any, len(headers))
		t := NewTable(fmt.Sprintf("F1: mean abs error vs budget, %s, target=top vertex %d (exact BC %.4g, %d reps)",
			name, tgt.Vertex, tgt.BC, reps), headers...)
		for _, budget := range budgets {
			cells[0] = budget
			for i, est := range f1Estimators {
				cells[i+1] = meanAbsError(g, tgt.Vertex, tgt.BC, est, budget, reps, seed)
			}
			t.Add(cells...)
		}
		t.Note("mh-chain error flattens at the bias floor; unbiased estimators keep shrinking ~1/sqrt(T)")
		if _, err := t.WriteTo(w); err != nil {
			return err
		}
	}
	return nil
}

// meanAbsError runs one estimator `reps` times at the given budget and
// returns the mean |estimate − exact|.
func meanAbsError(g *graph.Graph, target int, exact float64, estimator string, budget, reps int, seed uint64) float64 {
	var acc stats.Welford
	for rep := 0; rep < reps; rep++ {
		r := rng.New(seed ^ (uint64(rep+1) * 0x9e3779b97f4a7c15))
		var est float64
		switch estimator {
		case "mh-chain", "mh-harmonic", "proposal-side":
			res, err := mcmc.EstimateBC(g, target, mcmc.DefaultConfig(budget), r)
			if err != nil {
				panic(err)
			}
			switch estimator {
			case "mh-chain":
				est = res.ChainAverage
			case "mh-harmonic":
				est = res.Harmonic
			default:
				est = res.ProposalSide
			}
		case "uniform[2]":
			u, err := sampler.NewUniformSource(g, target)
			if err != nil {
				panic(err)
			}
			est = u.Estimate(budget, r)
		case "distance[13]":
			ds, err := sampler.NewDistanceSource(g, target)
			if err != nil {
				panic(err)
			}
			est = ds.Estimate(budget, r)
		case "RK[30]":
			k, err := sampler.NewRK(g, target)
			if err != nil {
				panic(err)
			}
			est = k.Estimate(budget, r)
		case "bb-BFS[7]":
			k, err := sampler.NewKadabraLite(g, target)
			if err != nil {
				panic(err)
			}
			est = k.Estimate(budget, r)
		default:
			panic("exp: unknown estimator " + estimator)
		}
		acc.Add(math.Abs(est - exact))
	}
	return acc.Mean()
}

// RunT3 prints the μ(r) anatomy and bias-floor table (T3).
func RunT3(w io.Writer, s Scale, seed uint64) error {
	t := NewTable("T3: mu(r) anatomy and the chain-average bias floor",
		"graph", "vertex", "rank", "exact-BC", "mu", "T(eq14)", "chain-limit", "bias", "bias/BC")
	for _, name := range []string{"ba", "er", "grid", "ws"} {
		d, err := DatasetByName(name)
		if err != nil {
			return err
		}
		g := d.Build(s, seed)
		bc := brandes.BCParallel(g, 0)
		for _, tgt := range PickTargets(g, bc, 0.5, 0.9) {
			ms, err := mcmc.MuExact(g, tgt.Vertex)
			if err != nil {
				return err
			}
			relBias := math.NaN()
			if tgt.BC > 0 {
				relBias = ms.Bias / tgt.BC
			}
			t.Add(name, tgt.Vertex, tgt.Label, tgt.BC, ms.Mu,
				mcmc.PlanSteps(epsDefault, deltaDefault, math.Max(ms.Mu, 1e-9)),
				ms.ChainLimit, ms.Bias, relBias)
		}
	}
	t.Note("chain-limit = E_pi[f] = sum(delta^2)/((n-1)sum(delta)); bias = chain-limit - BC")
	t.Note("Eq.14's T guards deviation from chain-limit, NOT from BC (DESIGN.md 1.1)")
	_, err := t.WriteTo(w)
	return err
}

// RunF2 prints the empirical (ε,δ)-coverage curve against Theorem 1's
// bound (Figure F2).
func RunF2(w io.Writer, s Scale, seed uint64) error {
	reps := s.pick(60, 150)
	eps := 0.05
	// Star: δ constant on its support, μ ≈ 1 — the friendliest case,
	// where the bound is informative at small T.
	g := graph.Star(s.pick(60, 200))
	ms, err := mcmc.MuExact(g, 0)
	if err != nil {
		return err
	}
	t := NewTable(fmt.Sprintf("F2: empirical coverage vs Theorem-1 bound, star center (mu=%.3f, eps=%.2f, %d reps)",
		ms.Mu, eps, reps),
		"T", "bound(eq12)", "P[|err-vs-limit|>eps]", "P[|err-vs-BC|>eps]")
	for _, T := range []int{100, 200, 400, 800, 1600, 3200} {
		errsLimit := make([]float64, 0, reps)
		errsBC := make([]float64, 0, reps)
		for rep := 0; rep < reps; rep++ {
			r := rng.New(seed ^ (uint64(rep+13) * 0x9e3779b97f4a7c15))
			res, err := mcmc.EstimateBC(g, 0, mcmc.DefaultConfig(T), r)
			if err != nil {
				return err
			}
			errsLimit = append(errsLimit, res.ChainAverage-ms.ChainLimit)
			errsBC = append(errsBC, res.ChainAverage-ms.BC)
		}
		t.Add(T, mcmc.TheoremOneBound(T, eps, ms.Mu),
			stats.EmpiricalCoverage(errsLimit, eps),
			stats.EmpiricalCoverage(errsBC, eps))
	}
	t.Note("vs-limit coverage must stay below the bound (Theorem 1 as proved)")
	t.Note("vs-BC coverage exposes the bias: here limit-BC = BC/(n-1), small; see T3 for graphs where it is not")
	_, err = t.WriteTo(w)
	return err
}

// RunT4 prints the Theorem-2 separator scaling table (T4).
func RunT4(w io.Writer, s Scale, seed uint64) error {
	t := NewTable("T4: Theorem 2 — mu(r) vs n for balanced and unbalanced separators",
		"family", "n", "mu(balanced sep)", "mu(unbalanced hub)")
	sizes := []int{50, 100, 200, 400}
	if s == Full {
		sizes = append(sizes, 800)
	}
	for _, k := range sizes {
		// Balanced: star-of-cliques center (components all Θ(n)).
		gBal := graph.StarOfCliques(4, k)
		msBal, err := mcmc.MuExact(gBal, 0)
		if err != nil {
			return err
		}
		// Unbalanced: double-star hub with only 2 leaves of its own.
		gUnb := graph.DoubleStar(2, 4*k)
		msUnb, err := mcmc.MuExact(gUnb, 0)
		if err != nil {
			return err
		}
		t.Add("cliquestar/doublestar", gBal.N(), msBal.Mu, msUnb.Mu)
	}
	t.Note("balanced column stays O(1) (Theorem 2 bound 1+1/K=2 here); unbalanced grows with n")
	_, err := t.WriteTo(w)
	return err
}
