package exp

import (
	"fmt"
	"io"
	"math"
	"time"

	"bcmh/internal/brandes"
	"bcmh/internal/graph"
	"bcmh/internal/mcmc"
	"bcmh/internal/rng"
	"bcmh/internal/sampler"
	"bcmh/internal/stats"
)

// relTargets picks a spread of positive-BC vertices for the joint
// experiments.
func relTargets(g *graph.Graph, bc []float64, k int) []int {
	qs := make([]float64, 0, k-1)
	for i := 1; i < k; i++ {
		qs = append(qs, float64(i)/float64(2*k)) // top half of the ranking
	}
	classes := PickTargets(g, bc, qs...)
	out := make([]int, 0, k)
	seen := map[int]bool{}
	for _, c := range classes {
		if !seen[c.Vertex] && c.BC > 0 {
			seen[c.Vertex] = true
			out = append(out, c.Vertex)
		}
	}
	return out
}

// RunT5 prints the joint-space ratio accuracy table (T5): Eq. 22's
// BC(ri)/BC(rj) estimates against exact ratios as the budget grows.
func RunT5(w io.Writer, s Scale, seed uint64) error {
	d, err := DatasetByName("ba")
	if err != nil {
		return err
	}
	g := d.Build(s, seed)
	bc := brandes.BCParallel(g, 0)
	R := relTargets(g, bc, 6)
	gt, err := mcmc.ExactRelative(g, R)
	if err != nil {
		return err
	}
	budgets := []int{2000, 8000, 32000}
	if s == Full {
		budgets = append(budgets, 96000)
	}
	t := NewTable(fmt.Sprintf("T5: joint-space ratio estimation (Eq.22), ba, |R|=%d", len(R)),
		"T(joint)", "mean-rel-err(ratio)", "max-rel-err", "accept", "min|M(j)|")
	for _, budget := range budgets {
		res, err := mcmc.EstimateRelative(g, R, mcmc.DefaultJointConfig(budget), rng.New(seed+uint64(budget)))
		if err != nil {
			return err
		}
		var acc stats.Welford
		maxErr := 0.0
		for i := range R {
			for j := range R {
				if i == j || math.IsNaN(gt.Ratio[i][j]) {
					continue
				}
				re := math.Abs(res.RatioEst[i][j]-gt.Ratio[i][j]) / gt.Ratio[i][j]
				if math.IsNaN(re) {
					re = 1 // an undefined estimate counts as total error
				}
				acc.Add(re)
				if re > maxErr {
					maxErr = re
				}
			}
		}
		minM := res.MSize[0]
		for _, m := range res.MSize {
			if m < minM {
				minM = m
			}
		}
		t.Add(budget, acc.Mean(), maxErr, res.AcceptanceRate, minM)
	}
	t.Note("ratio error shrinks with T and has NO bias floor: Theorem 3 (Bennett identity) is exact")
	_, err = t.WriteTo(w)
	return err
}

// RunF3 prints the relative-score convergence series (Figure F3),
// exposing that the M(j) average converges to the weighted limit, not
// to Eq. 23's uniform average.
func RunF3(w io.Writer, s Scale, seed uint64) error {
	d, err := DatasetByName("ba")
	if err != nil {
		return err
	}
	g := d.Build(s, seed)
	bc := brandes.BCParallel(g, 0)
	R := relTargets(g, bc, 3)[:2]
	gt, err := mcmc.ExactRelative(g, R)
	if err != nil {
		return err
	}
	budgets := []int{1000, 4000, 16000, 64000}
	if s == Full {
		budgets = append(budgets, 192000)
	}
	t := NewTable(fmt.Sprintf("F3: relative-score convergence, ba, R={%d,%d}: weighted limit %.4g vs Eq.23 %.4g",
		R[0], R[1], gt.WeightedLimit[0][1], gt.Eq23[0][1]),
		"T(joint)", "|M(j)|", "RelScore(0,1)", "|.-weighted-limit|", "|.-Eq23|")
	for _, budget := range budgets {
		res, err := mcmc.EstimateRelative(g, R, mcmc.DefaultJointConfig(budget), rng.New(seed+uint64(budget)*3))
		if err != nil {
			return err
		}
		sc := res.RelScore[0][1]
		t.Add(budget, res.MSize[1], sc,
			math.Abs(sc-gt.WeightedLimit[0][1]), math.Abs(sc-gt.Eq23[0][1]))
	}
	t.Note("the estimator converges to the weighted limit; its distance to Eq.23 stalls at the definition gap")
	_, err = t.WriteTo(w)
	return err
}

// RunT6 prints the ranking-quality table (T6): how well each method
// orders a candidate set R at equal traversal budget.
func RunT6(w io.Writer, s Scale, seed uint64) error {
	t := NewTable("T6: ranking a candidate set R (|R|=12) at equal traversal budget",
		"graph", "budget", "method", "kendall-tau", "spearman", "top4-overlap")
	budget := s.pick(3000, 8000)
	reps := s.pick(3, 5)
	for _, name := range []string{"ba", "ws"} {
		d, err := DatasetByName(name)
		if err != nil {
			return err
		}
		g := d.Build(s, seed)
		bc := brandes.BCParallel(g, 0)
		R := relTargets(g, bc, 12)
		exactR := make([]float64, len(R))
		for i, v := range R {
			exactR[i] = bc[v]
		}
		type method struct {
			name string
			run  func(rep int) []float64
		}
		methods := []method{
			{"joint-MH(Eq.22)", func(rep int) []float64 {
				res, err := mcmc.EstimateRelative(g, R, mcmc.DefaultJointConfig(budget), rng.New(seed+uint64(rep)*17))
				if err != nil {
					panic(err)
				}
				// Score each candidate by its estimated ratio against
				// the reference with the largest sub-chain (most
				// reliable denominator).
				ref := 0
				for j := range res.MSize {
					if res.MSize[j] > res.MSize[ref] {
						ref = j
					}
				}
				out := make([]float64, len(R))
				for i := range R {
					out[i] = res.RatioEst[i][ref]
					if math.IsNaN(out[i]) {
						out[i] = 0
					}
				}
				return out
			}},
			{"uniform[2]-all", func(rep int) []float64 {
				u, err := sampler.NewUniformSource(g, 0)
				if err != nil {
					panic(err)
				}
				all := u.EstimateAll(budget, rng.New(seed+uint64(rep)*31))
				out := make([]float64, len(R))
				for i, v := range R {
					out[i] = all[v]
				}
				return out
			}},
			{"RK[30]-all", func(rep int) []float64 {
				k, err := sampler.NewRK(g, 0)
				if err != nil {
					panic(err)
				}
				all := k.EstimateAll(budget, rng.New(seed+uint64(rep)*43))
				out := make([]float64, len(R))
				for i, v := range R {
					out[i] = all[v]
				}
				return out
			}},
		}
		for _, m := range methods {
			var tau, rho, overlap stats.Welford
			for rep := 0; rep < reps; rep++ {
				scores := m.run(rep)
				tau.Add(stats.KendallTau(scores, exactR))
				rho.Add(stats.Spearman(scores, exactR))
				overlap.Add(stats.TopKOverlap(scores, exactR, 4))
			}
			t.Add(name, budget, m.name, tau.Mean(), rho.Mean(), overlap.Mean())
		}
	}
	t.Note("budget = traversals for source samplers, path samples for RK, joint steps for MH")
	_, err := t.WriteTo(w)
	return err
}

// RunT7 prints the runtime table (T7): per-sample cost scaling and the
// crossover against exact Brandes.
func RunT7(w io.Writer, s Scale, seed uint64) error {
	t := NewTable("T7: per-sample cost and crossover vs exact Brandes",
		"n", "m", "mh-us/step(cached)", "mh-us/step(nocache)", "uniform-us", "rk-us", "bbbfs-us",
		"brandes-ms", "crossover-samples")
	sizes := []int{1000, 2000, 4000}
	if s == Full {
		sizes = append(sizes, 8000)
	}
	for _, n := range sizes {
		g := graph.BarabasiAlbert(n, 3, rng.New(seed))
		target := 0
		for v := 1; v < g.N(); v++ {
			if g.Degree(v) > g.Degree(target) {
				target = v
			}
		}
		const steps = 400
		perStep := func(disableCache bool) float64 {
			cfg := mcmc.DefaultConfig(steps)
			cfg.DisableCache = disableCache
			start := time.Now()
			if _, err := mcmc.EstimateBC(g, target, cfg, rng.New(seed+1)); err != nil {
				panic(err)
			}
			return float64(time.Since(start).Microseconds()) / steps
		}
		mhCached := perStep(false)
		mhNoCache := perStep(true)
		u, err := sampler.NewUniformSource(g, target)
		if err != nil {
			return err
		}
		start := time.Now()
		u.Estimate(steps, rng.New(seed+2))
		uniformUS := float64(time.Since(start).Microseconds()) / steps
		k, err := sampler.NewRK(g, target)
		if err != nil {
			return err
		}
		start = time.Now()
		k.Estimate(steps, rng.New(seed+3))
		rkUS := float64(time.Since(start).Microseconds()) / steps
		kl, err := sampler.NewKadabraLite(g, target)
		if err != nil {
			return err
		}
		start = time.Now()
		kl.Estimate(steps, rng.New(seed+4))
		bbUS := float64(time.Since(start).Microseconds()) / steps
		start = time.Now()
		brandes.BC(g)
		brandesMS := float64(time.Since(start).Milliseconds())
		crossover := math.Inf(1)
		if mhNoCache > 0 {
			crossover = brandesMS * 1000 / mhNoCache
		}
		t.Add(g.N(), g.M(), mhCached, mhNoCache, uniformUS, rkUS, bbUS, brandesMS, crossover)
	}
	t.Note("per-sample cost is O(m) for every estimator; bb-BFS touches far fewer edges per sample")
	t.Note("crossover = samples the MH sampler can afford before exact Brandes is cheaper")
	_, err := t.WriteTo(w)
	return err
}

// RunT8 prints the ablation table (T8).
func RunT8(w io.Writer, s Scale, seed uint64) error {
	d, err := DatasetByName("ba")
	if err != nil {
		return err
	}
	g := d.Build(s, seed)
	bc := brandes.BCParallel(g, 0)
	tgt := PickTargets(g, bc)[0]
	steps := s.pick(4000, 12000)
	reps := s.pick(6, 12)
	t := NewTable(fmt.Sprintf("T8: ablations, ba, top vertex %d (exact BC %.4g), T=%d, %d reps",
		tgt.Vertex, tgt.BC, steps, reps),
		"variant", "mean-est", "mean-abs-err", "accept", "evals/step", "note")

	type variant struct {
		name string
		cfg  func() mcmc.Config
		get  func(res mcmc.Result) float64
		note string
	}
	base := func() mcmc.Config { return mcmc.DefaultConfig(steps) }
	variants := []variant{
		{"chain-avg (default)", base, func(r mcmc.Result) float64 { return r.ChainAverage }, "standard MH counting"},
		{"eq7-literal", base, func(r mcmc.Result) float64 { return r.PaperEq7 }, "accepted-only / (T+1)"},
		{"proposal-side", base, func(r mcmc.Result) float64 { return r.ProposalSide }, "free unbiased by-product"},
		{"harmonic", base, func(r mcmc.Result) float64 { return r.Harmonic }, "corrected, consistent for BC"},
		{"burn-in 10%", func() mcmc.Config {
			c := base()
			c.BurnIn = steps / 10
			return c
		}, func(r mcmc.Result) float64 { return r.ChainAverage }, "paper: unnecessary"},
		{"degree proposal", func() mcmc.Config {
			c := base()
			c.DegreeProposal = true
			return c
		}, func(r mcmc.Result) float64 { return r.ChainAverage }, "Hastings-corrected"},
		{"no cache", func() mcmc.Config {
			c := base()
			c.DisableCache = true
			return c
		}, func(r mcmc.Result) float64 { return r.ChainAverage }, "same estimate, more work"},
	}
	for _, v := range variants {
		var est, errAcc, accept, evals stats.Welford
		for rep := 0; rep < reps; rep++ {
			res, err := mcmc.EstimateBC(g, tgt.Vertex, v.cfg(), rng.New(seed^(uint64(rep+7)*0x9e3779b97f4a7c15)))
			if err != nil {
				return err
			}
			x := v.get(res)
			est.Add(x)
			errAcc.Add(math.Abs(x - tgt.BC))
			accept.Add(res.AcceptanceRate)
			evals.Add(float64(res.Evals) / float64(steps))
		}
		t.Add(v.name, est.Mean(), errAcc.Mean(), accept.Mean(), evals.Mean(), v.note)
	}
	_, err = t.WriteTo(w)
	return err
}

// RunT9 prints the weighted-graph table (T9).
func RunT9(w io.Writer, s Scale, seed uint64) error {
	side := s.pick(16, 26)
	base := graph.Grid(side, side)
	weighted := graph.WithUniformWeights(base, 1, 10, rng.New(seed))
	budget := s.pick(2000, 6000)
	reps := s.pick(5, 10)
	t := NewTable(fmt.Sprintf("T9: weighted graphs (grid %dx%d, U(1,10) weights), budget %d, %d reps",
		side, side, budget, reps),
		"graph", "estimator", "exact-BC", "mean-abs-err", "us/sample")
	for _, row := range []struct {
		label string
		g     *graph.Graph
	}{{"unweighted", base}, {"weighted", weighted}} {
		bc := brandes.BCParallel(row.g, 0)
		tgt := PickTargets(row.g, bc)[0]
		for _, est := range []string{"mh-chain", "mh-harmonic", "uniform[2]", "distance[13]"} {
			start := time.Now()
			mae := meanAbsError(row.g, tgt.Vertex, tgt.BC, est, budget, reps, seed)
			us := float64(time.Since(start).Microseconds()) / float64(budget*reps)
			t.Add(row.label, est, tgt.BC, mae, us)
		}
	}
	t.Note("weighted per-sample cost carries the Dijkstra log-factor; error behaviour is unchanged")
	_, err := t.WriteTo(w)
	return err
}

// RunT10 prints the bias-decomposition table (T10): measured long-chain
// averages against the exact chain limit and exact BC.
func RunT10(w io.Writer, s Scale, seed uint64) error {
	steps := s.pick(30000, 80000)
	t := NewTable(fmt.Sprintf("T10: bias decomposition (chains of T=%d)", steps),
		"graph", "vertex", "rank", "exact-BC", "chain-limit", "measured-avg",
		"|measured-limit|", "n/n+")
	for _, name := range []string{"ba", "grid", "cliquestar"} {
		d, err := DatasetByName(name)
		if err != nil {
			return err
		}
		g := d.Build(s, seed)
		bc := brandes.BCParallel(g, 0)
		for _, tgt := range PickTargets(g, bc, 0.5) {
			ms, err := mcmc.MuExact(g, tgt.Vertex)
			if err != nil {
				return err
			}
			res, err := mcmc.EstimateBC(g, tgt.Vertex, mcmc.DefaultConfig(steps), rng.New(seed+uint64(tgt.Vertex)*3))
			if err != nil {
				return err
			}
			nOverPos := math.NaN()
			if ms.PositiveStates > 0 {
				nOverPos = float64(g.N()) / float64(ms.PositiveStates)
			}
			t.Add(name, tgt.Vertex, tgt.Label, tgt.BC, ms.ChainLimit,
				res.ChainAverage, math.Abs(res.ChainAverage-ms.ChainLimit), nOverPos)
		}
	}
	t.Note("measured chain averages sit on the exact chain limit, validating the DESIGN.md 1.1 analysis")
	t.Note("n/n+ is the inherent inflation factor even when delta is constant on its support")
	_, err := t.WriteTo(w)
	return err
}
