// Package exp is the experiment harness: the dataset registry, the
// per-experiment runners that regenerate every table (T1–T10) and
// figure series (F1–F3) recorded in EXPERIMENTS.md, and fixed-width
// table rendering. cmd/bcbench is a thin CLI over this package;
// bench_test.go at the repository root carries a testing.B benchmark
// per experiment kernel.
package exp

import (
	"fmt"
	"io"
	"strings"
)

// Table renders fixed-width text tables with a title and optional notes
// — the format every experiment prints and EXPERIMENTS.md records.
type Table struct {
	Title   string
	Notes   []string
	headers []string
	rows    [][]string
	widths  []int
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	t := &Table{Title: title, headers: headers, widths: make([]int, len(headers))}
	for i, h := range headers {
		t.widths[i] = len(h)
	}
	return t
}

// Note appends a free-text footnote rendered under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Add appends a row; cells are formatted with %v except float64, which
// uses a compact %.4g (errors and estimates span orders of magnitude).
func (t *Table) Add(cells ...any) {
	if len(cells) != len(t.headers) {
		panic(fmt.Sprintf("exp: row has %d cells, table has %d columns", len(cells), len(t.headers)))
	}
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
		if len(row[i]) > t.widths[i] {
			t.widths[i] = len(row[i])
		}
	}
	t.rows = append(t.rows, row)
}

// WriteTo renders the table to w.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	sb.WriteString("== " + t.Title + " ==\n")
	for i, h := range t.headers {
		if i > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%-*s", t.widths[i], h)
	}
	sb.WriteByte('\n')
	for i := range t.headers {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", t.widths[i]))
	}
	sb.WriteByte('\n')
	for _, row := range t.rows {
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", t.widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	sb.WriteByte('\n')
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	if _, err := t.WriteTo(&sb); err != nil {
		panic(err) // strings.Builder cannot fail
	}
	return sb.String()
}

// CSV writes the table as comma-separated values (headers first).
func (t *Table) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.headers))
	for i, h := range t.headers {
		cells[i] = esc(h)
	}
	if _, err := io.WriteString(w, strings.Join(cells, ",")+"\n"); err != nil {
		return err
	}
	for _, row := range t.rows {
		for i, c := range row {
			cells[i] = esc(c)
		}
		if _, err := io.WriteString(w, strings.Join(cells, ",")+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }
