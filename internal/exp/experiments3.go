package exp

import (
	"io"
	"math"
	"strconv"
	"time"

	"bcmh/internal/brandes"
	"bcmh/internal/mcmc"
	"bcmh/internal/rng"
	"bcmh/internal/sampler"
	"bcmh/internal/stats"
)

// RunT11 prints the other-indices extension table (T11): the paper's
// conclusion proposes applying the MH technique to further
// shortest-path indices; this measures the stress-centrality chain
// against exact stress, next to the corrected estimators.
func RunT11(w io.Writer, s Scale, seed uint64) error {
	steps := s.pick(8000, 30000)
	t := NewTable("T11: stress-centrality via the MH chain (conclusion's other-indices extension)",
		"graph", "vertex", "rank", "exact-stress", "proposal-side", "rel-err", "harmonic", "rel-err(h)", "accept")
	for _, name := range []string{"karate", "ba", "grid"} {
		d, err := DatasetByName(name)
		if err != nil {
			return err
		}
		g := d.Build(s, seed)
		bc := brandes.BCParallel(g, 0)
		for _, tgt := range PickTargets(g, bc, 0.5) {
			exact := brandes.StressOfVertexExact(g, tgt.Vertex)
			res, err := mcmc.EstimateStress(g, tgt.Vertex, steps, rng.New(seed+uint64(tgt.Vertex)*7))
			if err != nil {
				return err
			}
			t.Add(name, tgt.Vertex, tgt.Label, exact,
				res.ProposalSide, stats.RelError(res.ProposalSide, exact),
				res.Harmonic, stats.RelError(res.Harmonic, exact),
				res.AcceptanceRate)
		}
	}
	t.Note("stress = raw ordered-pair shortest-path counts; same chain machinery, different dependency oracle")
	_, err := t.WriteTo(w)
	return err
}

// RunT12 prints the adaptive-sampling table (T12): the progressive
// empirical-Bernstein sampler (ABRA-style [31]) against the fixed
// Hoeffding and Eq. 14 budgets, at matched (ε,δ).
func RunT12(w io.Writer, s Scale, seed uint64) error {
	eps := 0.01
	delta := 0.1
	maxSamples := s.pick(60000, 200000)
	t := NewTable("T12: adaptive (empirical-Bernstein) sampling vs fixed budgets, eps=0.01 delta=0.1",
		"graph", "vertex", "rank", "exact-BC", "adaptive-samples", "certified", "abs-err",
		"hoeffding-T", "eq14-T(mu exact)", "wall-ms")
	for _, name := range []string{"ba", "grid"} {
		d, err := DatasetByName(name)
		if err != nil {
			return err
		}
		g := d.Build(s, seed)
		bc := brandes.BCParallel(g, 0)
		for _, tgt := range PickTargets(g, bc, 0.5) {
			a, err := sampler.NewAdaptive(g, tgt.Vertex)
			if err != nil {
				return err
			}
			start := time.Now()
			res, err := a.Run(eps, delta, 0, maxSamples, rng.New(seed+uint64(tgt.Vertex)*11))
			if err != nil {
				return err
			}
			elapsed := time.Since(start)
			ms, err := mcmc.MuExact(g, tgt.Vertex)
			if err != nil {
				return err
			}
			eq14 := "n/a"
			if ms.Mu > 0 {
				eq14 = strconv.Itoa(mcmc.PlanSteps(eps, delta, ms.Mu))
			}
			t.Add(name, tgt.Vertex, tgt.Label, tgt.BC,
				res.Samples, res.Certified, math.Abs(res.Estimate-tgt.BC),
				stats.HoeffdingN(eps, delta), eq14, float64(elapsed.Milliseconds()))
		}
	}
	t.Note("adaptive stops when the data certifies eps; variance-adaptive budgets undercut both fixed plans on easy targets")
	_, err := t.WriteTo(w)
	return err
}
