package mcmc

import (
	"context"
	"fmt"
	"math"

	"bcmh/internal/brandes"
	"bcmh/internal/graph"
	"bcmh/internal/stats"
)

// MuStats holds the exact concentration profile of the dependency
// column δ_·•(r) that Theorems 1 and 2 reason about.
type MuStats struct {
	// Mu is μ(r) = max_v δ_v•(r) / δ̄(r), the minorisation parameter of
	// Theorem 1 (Inequality 11, taken at its tightest value).
	Mu float64
	// MaxDep and MeanDep are max_v δ_v•(r) and δ̄(r) = Σδ/n.
	MaxDep, MeanDep float64
	// SumDep = Σ_v δ_v•(r) = n(n-1)·BC(r).
	SumDep float64
	// BC is the exact betweenness of r (Eq. 1 normalisation).
	BC float64
	// PositiveStates is n⁺ = |{v : δ_v•(r) > 0}|.
	PositiveStates int
	// ChainLimit is what the chain average actually converges to:
	// E_π[f] = Σ δ² / ((n-1)·Σ δ) (DESIGN.md §1.1); equals BC exactly
	// when δ is constant on its support covering all of V.
	ChainLimit float64
	// Bias = ChainLimit − BC, the estimator's asymptotic bias.
	Bias float64
}

// MuFromDeps computes MuStats from an exact dependency column (length
// n, e.g. from brandes.DependencyVector).
func MuFromDeps(deps []float64) MuStats {
	n := len(deps)
	var s MuStats
	if n < 2 {
		return s
	}
	var sum, sumSq float64
	for _, d := range deps {
		if d > s.MaxDep {
			s.MaxDep = d
		}
		if d > 0 {
			s.PositiveStates++
		}
		sum += d
		sumSq += d * d
	}
	s.SumDep = sum
	s.MeanDep = sum / float64(n)
	s.BC = sum / (float64(n) * float64(n-1))
	if s.MeanDep > 0 {
		s.Mu = s.MaxDep / s.MeanDep
	}
	if sum > 0 {
		s.ChainLimit = sumSq / (float64(n-1) * sum)
	}
	s.Bias = s.ChainLimit - s.BC
	return s
}

// MuExact computes MuStats for vertex r by exact O(nm) dependency
// evaluation — ground truth for experiments T3/T4/T10.
func MuExact(g *graph.Graph, r int) (MuStats, error) {
	return MuExactPooled(g, r, nil)
}

// MuExactPooled is MuExact sharing pool's per-target shortest-path
// snapshot cache: the target-side BFS the dependency column needs is
// the same one the chains' fast oracle reads, so a μ computation warms
// the cache for every subsequent estimation of the same vertex (and
// vice versa). A nil pool — or a graph on the Brandes route — computes
// standalone.
func MuExactPooled(g *graph.Graph, r int, pool *BufferPool) (MuStats, error) {
	return MuExactPooledContext(context.Background(), g, r, pool)
}

// MuExactPooledContext is MuExactPooled under a context: the O(nm)
// column computation polls ctx between source traversals and aborts
// with ctx's error, so a lifecycle-scoped μ derivation (e.g. one owned
// by an evicted serving session) stops within one traversal per worker.
func MuExactPooledContext(ctx context.Context, g *graph.Graph, r int, pool *BufferPool) (MuStats, error) {
	if r < 0 || r >= g.N() {
		return MuStats{}, fmt.Errorf("mcmc: MuExact target %d out of range", r)
	}
	if pool != nil {
		if ts := pool.targetSPD(g, r); ts != nil {
			deps, err := brandes.DependencyVectorWithTargetContext(ctx, g, ts, 0)
			if err != nil {
				return MuStats{}, err
			}
			return MuFromDeps(deps), nil
		}
		if ts := pool.weightedTargetSPD(g, r); ts != nil {
			deps, err := brandes.DependencyVectorWithWeightedTargetContext(ctx, g, ts, 0)
			if err != nil {
				return MuStats{}, err
			}
			return MuFromDeps(deps), nil
		}
	}
	deps, err := brandes.DependencyVectorParallelContext(ctx, g, r, 0)
	if err != nil {
		return MuStats{}, err
	}
	return MuFromDeps(deps), nil
}

// PlanSteps returns the chain length prescribed by Eq. 14 (and Eq. 27)
// for an (ε,δ)-guarantee given μ(r): T ≥ μ²/(2ε²)·ln(2/δ).
func PlanSteps(eps, delta, mu float64) int {
	return stats.MCMCSampleSize(eps, delta, mu)
}

// TheoremOneBound evaluates the right-hand side of Inequality 12 for a
// chain of T steps: the paper's tail-probability guarantee that
// experiment F2 compares against empirical coverage.
func TheoremOneBound(T int, eps, mu float64) float64 {
	return stats.MCMCBound(T, eps, mu)
}

// RelGroundTruth holds the exact quantities the joint-space estimates
// converge to, for a target set R (all matrices indexed by position in
// R; entry [i][j] relates R[i] to R[j]).
type RelGroundTruth struct {
	R []int
	// BC[i] is the exact betweenness of R[i].
	BC []float64
	// Ratio[i][j] = BC(ri)/BC(rj) (NaN if BC(rj) = 0).
	Ratio [][]float64
	// Eq23[i][j] is the paper's relative betweenness score as defined:
	// (1/n) Σ_v min{1, δ_v(ri)/δ_v(rj)} with ratio01 conventions.
	Eq23 [][]float64
	// WeightedLimit[i][j] = Σ_v min(δ_v(ri), δ_v(rj)) / Σ_v δ_v(rj):
	// the value the M(j) chain average actually converges to (the
	// Bennett numerator; DESIGN.md §1.1). Its [i][j]/[j][i] ratio is
	// exactly Ratio[i][j].
	WeightedLimit [][]float64
	// Mu[j] is μ(rj), governing Eq. 27's per-target sample size.
	Mu []float64
}

// ExactRelative computes RelGroundTruth by exact dependency columns:
// |R| × n traversals.
func ExactRelative(g *graph.Graph, R []int) (RelGroundTruth, error) {
	n := g.N()
	k := len(R)
	if k < 2 {
		return RelGroundTruth{}, fmt.Errorf("mcmc: ExactRelative needs >= 2 targets")
	}
	deps := make([][]float64, k) // deps[i][v] = δ_v•(R[i])
	gt := RelGroundTruth{
		R:             append([]int(nil), R...),
		BC:            make([]float64, k),
		Ratio:         make([][]float64, k),
		Eq23:          make([][]float64, k),
		WeightedLimit: make([][]float64, k),
		Mu:            make([]float64, k),
	}
	for i, r := range R {
		if r < 0 || r >= n {
			return RelGroundTruth{}, fmt.Errorf("mcmc: ExactRelative target %d out of range", r)
		}
		deps[i] = brandes.DependencyVector(g, r)
		ms := MuFromDeps(deps[i])
		gt.BC[i] = ms.BC
		gt.Mu[i] = ms.Mu
	}
	for i := 0; i < k; i++ {
		gt.Ratio[i] = make([]float64, k)
		gt.Eq23[i] = make([]float64, k)
		gt.WeightedLimit[i] = make([]float64, k)
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			var sumMin, sumJ, eq23 float64
			for v := 0; v < n; v++ {
				di, dj := deps[i][v], deps[j][v]
				if di < dj {
					sumMin += di
				} else {
					sumMin += dj
				}
				sumJ += dj
				eq23 += ratio01(di, dj)
			}
			gt.Eq23[i][j] = eq23 / float64(n)
			if sumJ > 0 {
				gt.WeightedLimit[i][j] = sumMin / sumJ
			}
			if gt.BC[j] > 0 {
				gt.Ratio[i][j] = gt.BC[i] / gt.BC[j]
			} else {
				gt.Ratio[i][j] = math.NaN()
			}
		}
	}
	return gt, nil
}
