package mcmc

import (
	"math"
	"testing"

	"bcmh/internal/brandes"
	"bcmh/internal/graph"
	"bcmh/internal/rng"
	"bcmh/internal/stats"
)

func TestOracleMatchesBrandes(t *testing.T) {
	g := graph.KarateClub()
	o, err := NewOracle(g, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	dep := brandes.DependencyVector(g, 0)
	for v := 0; v < g.N(); v++ {
		if got := o.Dep(v); math.Abs(got-dep[v]) > 1e-12 {
			t.Fatalf("oracle dep[%d] = %v want %v", v, got, dep[v])
		}
	}
	if o.Evals != g.N() {
		t.Fatalf("evals %d", o.Evals)
	}
	// Second pass: all hits.
	for v := 0; v < g.N(); v++ {
		o.Dep(v)
	}
	if o.Hits != g.N() || o.Evals != g.N() {
		t.Fatalf("cache not effective: evals=%d hits=%d", o.Evals, o.Hits)
	}
}

func TestOracleNoCache(t *testing.T) {
	g := graph.Path(5)
	o, _ := NewOracle(g, 2, false)
	o.Dep(0)
	o.Dep(0)
	if o.Evals != 2 || o.Hits != 0 {
		t.Fatalf("uncached oracle: evals=%d hits=%d", o.Evals, o.Hits)
	}
}

func TestOracleBadTarget(t *testing.T) {
	if _, err := NewOracle(graph.Path(3), 9, true); err == nil {
		t.Fatal("bad target accepted")
	}
}

func TestSetOracle(t *testing.T) {
	g := graph.KarateClub()
	R := []int{0, 2, 33}
	o, err := NewSetOracle(g, R, true)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 10; v++ {
		deps := o.Deps(v)
		for i, r := range R {
			single, _ := NewOracle(g, r, false)
			if math.Abs(deps[i]-single.Dep(v)) > 1e-12 {
				t.Fatalf("set oracle deps[%d] for v=%d mismatch", i, v)
			}
		}
	}
	if o.Evals != 10 {
		t.Fatalf("set oracle evals %d", o.Evals)
	}
	o.Deps(3)
	if o.Hits != 1 {
		t.Fatalf("set oracle cache hits %d", o.Hits)
	}
}

func TestSetOracleValidation(t *testing.T) {
	g := graph.Path(5)
	if _, err := NewSetOracle(g, nil, true); err == nil {
		t.Fatal("empty set accepted")
	}
	if _, err := NewSetOracle(g, []int{1, 1}, true); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := NewSetOracle(g, []int{1, 9}, true); err == nil {
		t.Fatal("out of range accepted")
	}
}

// chainLimitFor computes the exact value the chain average converges to
// (DESIGN.md §1.1), for bias-aware tolerance in convergence tests.
func chainLimitFor(g *graph.Graph, r int) (limit, exact float64) {
	ms, err := MuExact(g, r)
	if err != nil {
		panic(err)
	}
	return ms.ChainLimit, ms.BC
}

func TestEstimateBCConvergesToChainLimit(t *testing.T) {
	// The fundamental behaviour: the chain average converges to
	// E_π[f] = Σδ²/((n-1)Σδ). For the star center, δ is constant on its
	// support (every leaf), so the only bias left is the inherent
	// n/n⁺ inflation from the target's own zero-δ state: the uniform
	// average (Eq. 1's BC) includes it, the π-weighted chain average
	// cannot. limit = BC·n/(n-1) exactly here.
	n := 30
	g := graph.Star(n)
	res, err := EstimateBC(g, 0, DefaultConfig(4000), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	limit, exact := chainLimitFor(g, 0)
	wantLimit := exact * float64(n) / float64(n-1)
	if math.Abs(limit-wantLimit) > 1e-12 {
		t.Fatalf("star-center limit %v want BC·n/(n-1) = %v", limit, wantLimit)
	}
	if math.Abs(res.ChainAverage-limit) > 0.01 {
		t.Fatalf("chain average %v want %v", res.ChainAverage, limit)
	}
}

func TestEstimateBCCentralVertexAccuracy(t *testing.T) {
	// For a high-BC vertex in a scale-free graph (small μ), the paper's
	// estimator should land near the truth.
	g := graph.BarabasiAlbert(400, 3, rng.New(3))
	bc := brandes.BC(g)
	top := 0
	for v := range bc {
		if bc[v] > bc[top] {
			top = v
		}
	}
	res, err := EstimateBC(g, top, DefaultConfig(6000), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	limit, exact := chainLimitFor(g, top)
	// Chain average concentrates on its limit. (How far that limit sits
	// from exact BC is precisely what experiments T3/T10 measure — on
	// scale-free graphs it is visibly inflated even for the hub, one of
	// the soundness findings recorded in EXPERIMENTS.md.)
	if math.Abs(res.ChainAverage-limit) > 0.05*math.Max(limit, 0.02)+0.01 {
		t.Fatalf("chain avg %v vs limit %v", res.ChainAverage, limit)
	}
	if limit < exact {
		t.Fatalf("chain limit %v below exact %v: weighted mean must dominate uniform mean", limit, exact)
	}
}

func TestProposalSideUnbiased(t *testing.T) {
	// The proposal-side estimator is plain uniform source sampling:
	// mean over repetitions must approach exact BC.
	g := graph.KarateClub()
	exact := brandes.BC(g)
	r := rng.New(7)
	var acc stats.Welford
	for rep := 0; rep < 200; rep++ {
		res, err := EstimateBC(g, 33, DefaultConfig(40), r)
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(res.ProposalSide)
	}
	if math.Abs(acc.Mean()-exact[33]) > 4*acc.StdErr()+1e-9 {
		t.Fatalf("proposal-side bias: %v vs %v (stderr %v)", acc.Mean(), exact[33], acc.StdErr())
	}
}

func TestHarmonicEstimatorConsistent(t *testing.T) {
	// The harmonic correction should remove the chain-average bias even
	// for a peripheral vertex where the bias is visible.
	g := graph.Grid(10, 10)
	// Off-center vertex: biased chain limit.
	target := 1*10 + 1
	limit, exact := chainLimitFor(g, target)
	if math.Abs(limit-exact) < 1e-6 {
		t.Skip("target not biased enough to discriminate")
	}
	cfg := DefaultConfig(60000)
	res, err := EstimateBC(g, target, cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Harmonic-exact) > 0.15*exact+0.005 {
		t.Fatalf("harmonic %v want %v (chain limit %v)", res.Harmonic, exact, limit)
	}
	// And the chain average should be near its (biased) limit, i.e.
	// measurably off the exact value.
	if math.Abs(res.ChainAverage-limit) > 0.15*limit+0.005 {
		t.Fatalf("chain average %v should approach %v", res.ChainAverage, limit)
	}
}

func TestPaperEq7VsChainAverage(t *testing.T) {
	// Eq. 7 literal (accepted-only / (T+1)) differs from the standard
	// chain average when rejections occur; with acceptance rate < 1 it
	// underestimates the chain average.
	g := graph.Grid(8, 8)
	res, err := EstimateBC(g, 2, DefaultConfig(5000), rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if res.AcceptanceRate >= 0.999 {
		t.Skip("no rejections; estimators coincide")
	}
	if res.PaperEq7 > res.ChainAverage+1e-12 {
		t.Fatalf("eq7 %v should not exceed chain average %v", res.PaperEq7, res.ChainAverage)
	}
}

func TestEstimatorKindSelectsEstimate(t *testing.T) {
	g := graph.KarateClub()
	kinds := []EstimatorKind{EstimatorChainAverage, EstimatorPaperEq7, EstimatorProposalSide, EstimatorHarmonic}
	for _, k := range kinds {
		cfg := DefaultConfig(200)
		cfg.Estimator = k
		res, err := EstimateBC(g, 0, cfg, rng.New(17))
		if err != nil {
			t.Fatal(err)
		}
		var want float64
		switch k {
		case EstimatorChainAverage:
			want = res.ChainAverage
		case EstimatorPaperEq7:
			want = res.PaperEq7
		case EstimatorProposalSide:
			want = res.ProposalSide
		case EstimatorHarmonic:
			want = res.Harmonic
		}
		if res.Estimate != want {
			t.Fatalf("kind %v: Estimate %v != %v", k, res.Estimate, want)
		}
		if k.String() == "" {
			t.Fatal("empty kind label")
		}
	}
	if EstimatorKind(99).String() == "" {
		t.Fatal("unknown kind should still label")
	}
}

func TestZeroBCTarget(t *testing.T) {
	// A star leaf: every dependency is zero; all estimators must return
	// exactly 0 and the chain must keep moving (0/0 accepts).
	g := graph.Star(12)
	res, err := EstimateBC(g, 5, DefaultConfig(500), rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	if res.ChainAverage != 0 || res.PaperEq7 != 0 || res.ProposalSide != 0 || res.Harmonic != 0 {
		t.Fatalf("zero-BC target: %+v", res)
	}
	if res.AcceptanceRate != 1 {
		t.Fatalf("0/0 transitions should all accept, rate %v", res.AcceptanceRate)
	}
	if res.UniqueStates < 2 {
		t.Fatal("chain did not move across zero states")
	}
}

func TestDeterminism(t *testing.T) {
	g := graph.BarabasiAlbert(150, 2, rng.New(23))
	a, err := EstimateBC(g, 0, DefaultConfig(1000), rng.New(29))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := EstimateBC(g, 0, DefaultConfig(1000), rng.New(29))
	if a.Estimate != b.Estimate || a.AcceptanceRate != b.AcceptanceRate || a.UniqueStates != b.UniqueStates {
		t.Fatal("same seed produced different results")
	}
}

func TestInitStateIndependence(t *testing.T) {
	// Inequality 12 holds from any initial state: estimates from
	// different fixed starts converge to the same limit.
	g := graph.BarabasiAlbert(200, 3, rng.New(31))
	limit, _ := chainLimitFor(g, 0)
	for _, init := range []int{0, 57, 199} {
		cfg := DefaultConfig(20000)
		cfg.InitState = init
		res, err := EstimateBC(g, 0, cfg, rng.New(37))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.ChainAverage-limit) > 0.1*limit+0.01 {
			t.Fatalf("init %d: %v far from limit %v", init, res.ChainAverage, limit)
		}
	}
}

func TestBurnInReducesCountedStates(t *testing.T) {
	g := graph.KarateClub()
	cfg := DefaultConfig(100)
	cfg.BurnIn = 50
	res, err := EstimateBC(g, 0, cfg, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	_ = res // burn-in correctness is statistical; here we check validity only
	cfg.BurnIn = 101
	if _, err := EstimateBC(g, 0, cfg, rng.New(41)); err == nil {
		t.Fatal("burn-in beyond steps accepted")
	}
}

func TestDegreeProposalSameLimit(t *testing.T) {
	// Hastings-corrected degree proposal must preserve the stationary
	// distribution: chain average converges to the same limit.
	if testing.Short() {
		t.Skip("long-chain stationarity check (~1s, 5s under -race) skipped in -short mode")
	}
	g := graph.BarabasiAlbert(200, 3, rng.New(43))
	limit, _ := chainLimitFor(g, 0)
	cfg := DefaultConfig(30000)
	cfg.DegreeProposal = true
	res, err := EstimateBC(g, 0, cfg, rng.New(47))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ChainAverage-limit) > 0.1*limit+0.01 {
		t.Fatalf("degree-proposal chain avg %v far from limit %v", res.ChainAverage, limit)
	}
	// Its proposal-side estimate is importance-weighted and stays
	// unbiased: check roughly against exact BC.
	_, exact := chainLimitFor(g, 0)
	r := rng.New(53)
	var acc stats.Welford
	for rep := 0; rep < 60; rep++ {
		res, _ := EstimateBC(g, 0, cfg, r)
		acc.Add(res.ProposalSide)
	}
	if math.Abs(acc.Mean()-exact) > 5*acc.StdErr()+0.003 {
		t.Fatalf("weighted proposal-side bias: %v vs %v", acc.Mean(), exact)
	}
}

func TestTrace(t *testing.T) {
	g := graph.KarateClub()
	cfg := DefaultConfig(1000)
	cfg.TraceEvery = 100
	res, err := EstimateBC(g, 0, cfg, rng.New(59))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 10 {
		t.Fatalf("trace length %d", len(res.Trace))
	}
	if res.Trace[len(res.Trace)-1] != res.Estimate {
		t.Fatal("final trace point should equal the estimate")
	}
}

func TestCacheAblationSameResult(t *testing.T) {
	g := graph.KarateClub()
	on := DefaultConfig(500)
	off := DefaultConfig(500)
	off.DisableCache = true
	a, _ := EstimateBC(g, 0, on, rng.New(61))
	b, _ := EstimateBC(g, 0, off, rng.New(61))
	if a.Estimate != b.Estimate {
		t.Fatal("cache changed the estimate")
	}
	if b.Evals <= a.Evals {
		t.Fatalf("no-cache should evaluate more: %d vs %d", b.Evals, a.Evals)
	}
	if a.CacheHits == 0 {
		t.Fatal("cache never hit")
	}
}

func TestConfigValidation(t *testing.T) {
	g := graph.Path(5)
	if _, err := EstimateBC(g, 1, Config{Steps: 0}, rng.New(1)); err == nil {
		t.Fatal("zero steps accepted")
	}
	cfg := DefaultConfig(10)
	cfg.InitState = 99
	if _, err := EstimateBC(g, 1, cfg, rng.New(1)); err == nil {
		t.Fatal("bad init state accepted")
	}
	cfg = DefaultConfig(10)
	cfg.TraceEvery = -1
	if _, err := EstimateBC(g, 1, cfg, rng.New(1)); err == nil {
		t.Fatal("negative trace accepted")
	}
	if _, err := EstimateBC(g, 9, DefaultConfig(10), rng.New(1)); err == nil {
		t.Fatal("bad target accepted")
	}
	single := graph.NewBuilder(1).MustBuild()
	if _, err := EstimateBC(single, 0, DefaultConfig(10), rng.New(1)); err == nil {
		t.Fatal("n=1 graph accepted")
	}
}

func TestMuHat(t *testing.T) {
	g := graph.BarabasiAlbert(300, 3, rng.New(67))
	res, err := EstimateBC(g, 0, DefaultConfig(3000), rng.New(71))
	if err != nil {
		t.Fatal(err)
	}
	ms, _ := MuExact(g, 0)
	hat := res.MuHat()
	if hat <= 0 {
		t.Fatal("MuHat should be positive here")
	}
	// Empirical μ̂ is (approximately) a lower bound on true μ: the max
	// is under-observed, the mean is unbiased. Allow slack for mean
	// noise.
	if hat > ms.Mu*1.25 {
		t.Fatalf("MuHat %v exceeds exact mu %v", hat, ms.Mu)
	}
}

func TestAcceptanceRateReasonable(t *testing.T) {
	// With δ constant on its support (star center), the only rejections
	// come from proposing the single zero-δ state: acceptance ≈ 1-1/n.
	n := 40
	star := graph.Star(n)
	resStar, _ := EstimateBC(star, 0, DefaultConfig(4000), rng.New(73))
	if resStar.AcceptanceRate < 1-3.0/float64(n) {
		t.Fatalf("star acceptance %v, want ≈ 1-1/n", resStar.AcceptanceRate)
	}
	// A non-constant profile must reject sometimes.
	cyc := graph.Cycle(40)
	resCyc, _ := EstimateBC(cyc, 0, DefaultConfig(4000), rng.New(79))
	if resCyc.AcceptanceRate >= 1 {
		t.Fatal("cycle chain never rejected; dependency profile should be non-constant")
	}
}
