package mcmc

import (
	"context"
	"fmt"
	"math"
	"sync"

	"bcmh/internal/graph"
	"bcmh/internal/rng"
	"bcmh/internal/sssp"
)

// MultiResult aggregates independent chains run in parallel.
type MultiResult struct {
	// Combined pools every chain's states into one estimate per
	// estimator kind (equal weights: all chains run the same number of
	// steps).
	Combined Result
	// PerChain holds each chain's own Result, in chain order (results
	// are deterministic given the seed regardless of scheduling).
	PerChain []Result
	// BetweenChainStdDev is the standard deviation of the per-chain
	// primary estimates — a cheap convergence diagnostic (large values
	// mean chains disagree and T is too small).
	BetweenChainStdDev float64
}

// EstimateBCParallel runs `chains` independent single-space samplers
// with split RNG streams and pools them. Pooling chain averages of
// equal-length chains is again a chain average, so every guarantee
// stated for one chain of T steps applies to the pooled estimator with
// T' = chains·T steps (the chains are independent, which only helps).
// Deterministic given (seed, chains, cfg): chain i always consumes the
// stream seed.Split("chain-i").
func EstimateBCParallel(g *graph.Graph, r int, cfg Config, seed uint64, chains int) (MultiResult, error) {
	return EstimateBCParallelPooled(g, r, cfg, seed, chains, nil)
}

// EstimateBCParallelPooled is EstimateBCParallel with per-chain
// traversal buffers drawn from pool (nil allocates per chain). The
// estimates are bit-identical to the unpooled variant: buffer reuse
// changes where scratch memory lives, never what the chain computes.
func EstimateBCParallelPooled(g *graph.Graph, r int, cfg Config, seed uint64, chains int, pool *BufferPool) (MultiResult, error) {
	return EstimateBCParallelPooledContext(context.Background(), g, r, cfg, seed, chains, pool)
}

// EstimateBCParallelPooledContext is EstimateBCParallelPooled under a
// context: every chain's step loop polls ctx (see
// EstimateBCPooledContext), so one cancellation aborts all chains
// promptly instead of letting each run to its full step budget. A run
// that completes is bit-identical to the context-free variant.
func EstimateBCParallelPooledContext(ctx context.Context, g *graph.Graph, r int, cfg Config, seed uint64, chains int, pool *BufferPool) (MultiResult, error) {
	if chains <= 0 {
		return MultiResult{}, fmt.Errorf("mcmc: chains must be positive, got %d", chains)
	}
	n := g.N()
	if n < 2 {
		return MultiResult{}, fmt.Errorf("mcmc: graph too small (n=%d)", n)
	}
	if err := cfg.validate(n); err != nil {
		return MultiResult{}, err
	}
	if r < 0 || r >= n {
		return MultiResult{}, fmt.Errorf("mcmc: oracle target %d out of range", r)
	}
	// Target-side state is chain-independent and read-only: compute the
	// snapshot and the proposal table once, share them with every chain.
	var tspd *sssp.TargetSPD
	var wtspd *sssp.WeightedTargetSPD
	if pool != nil {
		tspd = pool.targetSPD(g, r)
		wtspd = pool.weightedTargetSPD(g, r)
	} else {
		switch routeFor(g) {
		case routeBFSIdentity:
			tspd = sssp.NewTargetSPD(sssp.NewBFS(g), r)
		case routeDijkstraIdentity:
			wtspd = sssp.NewWeightedTargetSPD(sssp.NewDijkstra(g), r)
		}
	}
	var degAlias *rng.Alias
	if cfg.DegreeProposal {
		if pool != nil {
			degAlias = pool.degreeAlias(g)
		} else {
			degAlias = degreeAliasFor(g)
		}
	}
	results := make([]Result, chains)
	errs := make([]error, chains)
	var wg sync.WaitGroup
	root := rng.New(seed)
	for i := 0; i < chains; i++ {
		// Split in loop order so streams don't depend on scheduling.
		chainRNG := root.Split(fmt.Sprintf("chain-%d", i))
		wg.Add(1)
		go func(i int, chainRNG *rng.RNG) {
			defer wg.Done()
			// Each chain gets its own buffers and oracle: traversal
			// kernels are not concurrency-safe, and separate memos keep
			// work accounting honest.
			var b *chainBuffers
			if pool != nil {
				b = pool.get(g)
				defer pool.put(b)
			} else {
				b = newChainBuffers(g)
			}
			oracle, err := newOracleBuffered(g, r, !cfg.DisableCache, b, tspd, wtspd, pool)
			if err != nil {
				errs[i] = err
				return
			}
			res, err := runSingleChain(ctx, g, oracle, cfg, chainRNG, b, degAlias)
			if err != nil {
				errs[i] = err
				return
			}
			res.Evals = oracle.Evals
			res.CacheHits = oracle.Hits
			results[i] = res
		}(i, chainRNG)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return MultiResult{}, err
		}
	}
	return combineChainResults(results, cfg), nil
}

// combineChainResults pools per-chain results with equal weights (all
// chains get the same step budget; pooling chain averages of
// equal-length chains is again a chain average). Shared by the BC and
// measure-generic parallel drivers.
func combineChainResults(results []Result, cfg Config) MultiResult {
	chains := len(results)
	var m MultiResult
	m.PerChain = results
	// Pool: equal-length chains → simple means; work sums; max of maxes.
	var sumVar float64
	var meanEst float64
	m.Combined.Converged = chains > 0
	for _, r := range results {
		m.Combined.ChainAverage += r.ChainAverage
		m.Combined.PaperEq7 += r.PaperEq7
		m.Combined.ProposalSide += r.ProposalSide
		m.Combined.Harmonic += r.Harmonic
		m.Combined.AcceptanceRate += r.AcceptanceRate
		m.Combined.MeanDepProposal += r.MeanDepProposal
		m.Combined.Evals += r.Evals
		m.Combined.CacheHits += r.CacheHits
		m.Combined.UniqueStates += r.UniqueStates // upper bound (chains may overlap)
		m.Combined.StepsRun += r.StepsRun         // total work across chains
		m.Combined.Converged = m.Combined.Converged && r.Converged
		if r.EBHalfWidth > m.Combined.EBHalfWidth {
			m.Combined.EBHalfWidth = r.EBHalfWidth // most pessimistic chain
		}
		if r.MaxDepSeen > m.Combined.MaxDepSeen {
			m.Combined.MaxDepSeen = r.MaxDepSeen
		}
		meanEst += r.Estimate
	}
	k := float64(chains)
	m.Combined.ChainAverage /= k
	m.Combined.PaperEq7 /= k
	m.Combined.ProposalSide /= k
	m.Combined.Harmonic /= k
	m.Combined.AcceptanceRate /= k
	m.Combined.MeanDepProposal /= k
	meanEst /= k
	for _, r := range results {
		d := r.Estimate - meanEst
		sumVar += d * d
	}
	if chains > 1 {
		m.BetweenChainStdDev = math.Sqrt(sumVar / float64(chains-1))
	}
	switch cfg.Estimator {
	case EstimatorChainAverage:
		m.Combined.Estimate = m.Combined.ChainAverage
	case EstimatorPaperEq7:
		m.Combined.Estimate = m.Combined.PaperEq7
	case EstimatorProposalSide:
		m.Combined.Estimate = m.Combined.ProposalSide
	case EstimatorHarmonic:
		m.Combined.Estimate = m.Combined.Harmonic
	}
	return m
}

// EstimateStatParallelPooledContext is the measure-generic analogue of
// EstimateBCParallelPooledContext: `chains` independent chains over
// per-chain statistic oracles built by newOracle (called once per
// chain, from that chain's goroutine — evaluation kernels are not
// concurrency-safe, so each chain needs its own; expensive per-target
// state should be computed once outside and shared by the closures).
// Chain i consumes the stream seed.Split("chain-i"), exactly like the
// BC driver, so a measure run is reproducible the same way. Under the
// adaptive stopping rule chains monitor their own streams and may stop
// at different step counts; Combined.StepsRun totals the actual work.
func EstimateStatParallelPooledContext(ctx context.Context, g *graph.Graph, newOracle func() (StatOracle, error), cfg Config, seed uint64, chains int, pool *BufferPool) (MultiResult, error) {
	if chains <= 0 {
		return MultiResult{}, fmt.Errorf("mcmc: chains must be positive, got %d", chains)
	}
	n := g.N()
	if n < 2 {
		return MultiResult{}, fmt.Errorf("mcmc: graph too small (n=%d)", n)
	}
	if err := cfg.validate(n); err != nil {
		return MultiResult{}, err
	}
	var degAlias *rng.Alias
	if cfg.DegreeProposal {
		if pool != nil {
			degAlias = pool.degreeAlias(g)
		} else {
			degAlias = degreeAliasFor(g)
		}
	}
	results := make([]Result, chains)
	errs := make([]error, chains)
	var wg sync.WaitGroup
	root := rng.New(seed)
	for i := 0; i < chains; i++ {
		chainRNG := root.Split(fmt.Sprintf("chain-%d", i))
		wg.Add(1)
		go func(i int, chainRNG *rng.RNG) {
			defer wg.Done()
			var b *chainBuffers
			if pool != nil {
				b = pool.get(g)
				defer pool.put(b)
			} else {
				b = newChainBuffers(g)
			}
			oracle, err := newOracle()
			if err != nil {
				errs[i] = err
				return
			}
			res, err := runSingleChain(ctx, g, oracle, cfg, chainRNG, b, degAlias)
			if err != nil {
				errs[i] = err
				return
			}
			res.Evals, res.CacheHits = oracle.Work()
			results[i] = res
		}(i, chainRNG)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return MultiResult{}, err
		}
	}
	return combineChainResults(results, cfg), nil
}
