package mcmc

import (
	"fmt"
	"math"

	"bcmh/internal/stats"
)

// Chain-output diagnostics. The paper's bounds prescribe T a priori
// from μ(r), but a practitioner rarely knows μ(r); these diagnostics
// assess convergence from the chain's own f-trace (collected with
// Config.CollectFTrace), the standard MCMC practice the paper's
// framework plugs into.

// Diagnostics summarises a chain's f-trace.
type Diagnostics struct {
	// N is the trace length.
	N int
	// Mean and Variance of the trace.
	Mean, Variance float64
	// ESS is the batch-means effective sample size: how many iid
	// samples the correlated trace is worth.
	ESS float64
	// Lag1Autocorr is the lag-1 autocorrelation (near 0 for
	// fast-mixing chains, near 1 for sticky ones).
	Lag1Autocorr float64
	// GewekeZ is the Geweke convergence z-score comparing the first
	// 10% of the trace against the last 50%; |z| > 2 suggests the
	// chain had not yet forgotten its initial state.
	GewekeZ float64
	// MCSE is the Monte-Carlo standard error of the trace mean,
	// Variance-over-ESS based.
	MCSE float64
}

// Diagnose computes Diagnostics from an f-trace. It returns an error
// for traces too short to diagnose (< 20 points).
func Diagnose(trace []float64) (Diagnostics, error) {
	n := len(trace)
	if n < 20 {
		return Diagnostics{}, fmt.Errorf("mcmc: trace too short to diagnose (%d < 20)", n)
	}
	var d Diagnostics
	d.N = n
	d.Mean = stats.Mean(trace)
	d.Variance = stats.Variance(trace)
	d.ESS = stats.ESSBatchMeans(trace)
	d.Lag1Autocorr = stats.Autocorrelation(trace, 1)
	d.GewekeZ = gewekeZ(trace)
	if d.ESS > 0 {
		d.MCSE = math.Sqrt(d.Variance / d.ESS)
	}
	return d, nil
}

// gewekeZ compares the means of the early (first 10%) and late (last
// 50%) trace segments, standardised by their batch-means variances.
func gewekeZ(trace []float64) float64 {
	n := len(trace)
	a := trace[:n/10]
	b := trace[n/2:]
	if len(a) < 2 || len(b) < 2 {
		return 0
	}
	varA := stats.Variance(a) / stats.ESSBatchMeans(a)
	varB := stats.Variance(b) / stats.ESSBatchMeans(b)
	denom := math.Sqrt(varA + varB)
	if denom == 0 {
		return 0
	}
	return (stats.Mean(a) - stats.Mean(b)) / denom
}
