package mcmc

import (
	"container/list"
	"sync"
	"sync/atomic"

	"bcmh/internal/graph"
	"bcmh/internal/rng"
	"bcmh/internal/sssp"
)

// targetSPDCacheSize bounds the per-pool LRU of target-side shortest
// path snapshots. Each entry is O(n) memory; 128 covers a large working
// set of distinct chain targets while keeping worst-case residency at
// 128·12 bytes per vertex.
const targetSPDCacheSize = 128

// aliasCacheSize bounds the per-version degree-proposal alias cache. A
// pool normally serves at most two versions at once (the current one
// plus stragglers on the previous snapshot), so a handful of entries
// is plenty; past the bound the cache is dropped wholesale rather than
// tracking LRU order for something this cheap to rebuild.
const aliasCacheSize = 8

// chainBuffers is one chain's worth of reusable state. Which traversal
// kernel it carries depends on the graph (see routeFor): unweighted
// undirected graphs get the specialized BFS kernel the identity oracle
// runs on; weighted undirected graphs get the specialized Dijkstra
// kernel; directed graphs get the general Computer plus the Brandes
// accumulation scratch. The memo and visited arrays are dense and
// epoch-stamped, so reuse across targets costs a counter bump instead
// of a map clear (or an O(n) zeroing).
//
// A buffer set remembers which graph its kernels are seated on (g).
// When the pool hands it to a chain running on a different snapshot of
// the same lineage, the kernels are reseated in O(overlay) instead of
// rebuilt (sssp.BFS.Reseat) — the mutation fast path's per-chain cost.
type chainBuffers struct {
	g *graph.Graph // the snapshot the kernels are currently seated on

	c     *sssp.Computer // Brandes route (directed graphs)
	delta []float64      // Brandes accumulation scratch
	bfs   *sssp.BFS      // BFS identity route (unweighted undirected)
	dij   *sssp.Dijkstra // Dijkstra identity route (weighted undirected)

	// Dependency memo: memoVal[v] is valid iff memoStamp[v] == memoEpoch.
	memoVal   []float64
	memoStamp []uint32
	memoEpoch uint32

	// Memo carry-over provenance: the target the memo was filled for
	// (-1: none) and the graph version its entries are valid from.
	// newOracleBuffered keeps the memo alive across version bumps when
	// the target's block was not affected in between (see the carry
	// rules there); otherwise the epoch bump discards it as before.
	memoTarget  int
	memoVersion uint64

	// Visited-state tracking for UniqueStates, same stamping scheme.
	visStamp []uint32
	visEpoch uint32
}

func newChainBuffers(g *graph.Graph) *chainBuffers {
	n := g.N()
	b := &chainBuffers{
		g:          g,
		memoVal:    make([]float64, n),
		memoStamp:  make([]uint32, n),
		visStamp:   make([]uint32, n),
		memoTarget: -1,
	}
	switch routeFor(g) {
	case routeBFSIdentity:
		b.bfs = sssp.NewBFS(g)
	case routeDijkstraIdentity:
		b.dij = sssp.NewDijkstra(g)
	default:
		b.c = sssp.NewComputer(g)
		b.delta = make([]float64, n)
	}
	return b
}

// bumpEpoch advances an epoch counter over a stamp array, clearing the
// stamps on the 2^32 wrap so a stale stamp can never collide with the
// fresh epoch. Shared by the chain-buffer memo/visited sets and the
// SetOracle memo.
func bumpEpoch(stamp []uint32, epoch uint32) uint32 {
	epoch++
	if epoch == 0 {
		clear(stamp)
		epoch = 1
	}
	return epoch
}

// nextMemoEpoch invalidates every memo entry in O(1) (O(n) once per
// 2^32 reuses, when the stamp counter wraps).
func (b *chainBuffers) nextMemoEpoch() uint32 {
	b.memoEpoch = bumpEpoch(b.memoStamp, b.memoEpoch)
	return b.memoEpoch
}

// nextVisEpoch invalidates the visited set, same scheme.
func (b *chainBuffers) nextVisEpoch() uint32 {
	b.visEpoch = bumpEpoch(b.visStamp, b.visEpoch)
	return b.visEpoch
}

// tspdEntry is one cached target snapshot — the kind matching the
// graph's identity route is set, the other stays nil; once deduplicates
// concurrent first requests to a single traversal.
type tspdEntry struct {
	once sync.Once
	spd  *sssp.TargetSPD
	wspd *sssp.WeightedTargetSPD
}

// tspdKey addresses one target snapshot of one graph version. Target
// snapshots are not invariant across versions even for targets outside
// the affected blocks (distances into an edited block change), so they
// are never carried: each version recomputes its own and old versions'
// entries keep serving in-flight estimates until they age out of the
// LRU.
type tspdKey struct {
	version uint64
	target  int
}

// BufferPool recycles chain buffers across estimation calls on one
// graph lineage and owns the caches every chain wants to share: the
// target-side shortest-path snapshots the identity oracle reads (one
// per distinct (version, target), LRU-bounded) and the
// degree-proposal alias tables (one per version in flight). Since the
// streaming fast path, one pool serves *all* snapshots of its lineage
// — methods take the snapshot being served, buffers reseat their
// kernels to it on checkout, and caches are keyed by version — so a
// mutation no longer rebuilds the pool. Safe for concurrent use; every
// buffer set it hands out is private to one chain until returned.
type BufferPool struct {
	g    *graph.Graph // creation-time snapshot (sizing; N is fixed per lineage)
	pool sync.Pool

	aliasMtx sync.Mutex
	aliases  map[uint64]*rng.Alias // degree alias per graph version

	tspdMtx   sync.Mutex
	tspdByKey map[tspdKey]*list.Element // values are *list.Element of tspdLRU
	tspdLRU   *list.List                // front = most recently used; values *tspdNode

	// lastAffected[v] is the version of the latest Advance whose
	// affected set contained v (0: never affected). Written by Advance
	// under the engine's swap lock, read atomically on the memo-carry
	// hot path, so chains running concurrently with a swap see either
	// bound — both safe: the check is conservative.
	lastAffected []uint64

	// carried counts memos continued across a version bump; discarded
	// counts memos a chain wanted to carry but had to drop because the
	// target's block was affected. Both are test/stats hooks proving
	// the carry-over actually happens.
	carried   atomic.Uint64
	discarded atomic.Uint64
}

type tspdNode struct {
	key tspdKey
	ent *tspdEntry
}

// NewBufferPool returns a pool of chain buffers for g's lineage.
// Buffers are sized to g at creation; do not share a pool across
// unrelated graphs (snapshots of one mutation lineage are exactly what
// it is for).
func NewBufferPool(g *graph.Graph) *BufferPool {
	p := &BufferPool{
		g:            g,
		aliases:      make(map[uint64]*rng.Alias, aliasCacheSize),
		tspdByKey:    make(map[tspdKey]*list.Element, targetSPDCacheSize),
		tspdLRU:      list.New(),
		lastAffected: make([]uint64, g.N()),
	}
	return p
}

// Advance records a swap to next whose affected-block vertex set is
// affected (nil = everything affected): chains that later check out
// buffers judge their memos against these marks. Call under the same
// lock that serializes swaps so versions advance monotonically.
func (p *BufferPool) Advance(next *graph.Graph, affected []bool) {
	v := next.Version()
	if affected == nil {
		for i := range p.lastAffected {
			atomic.StoreUint64(&p.lastAffected[i], v)
		}
		return
	}
	for i, a := range affected {
		if a {
			atomic.StoreUint64(&p.lastAffected[i], v)
		}
	}
}

// affectedAfter reports whether v's block was affected by any swap
// installed after version.
func (p *BufferPool) affectedAfter(v int, version uint64) bool {
	return atomic.LoadUint64(&p.lastAffected[v]) > version
}

// CarryStats returns how many chain memos were carried across version
// bumps and how many were discarded because the target's block was
// affected.
func (p *BufferPool) CarryStats() (carried, discarded uint64) {
	return p.carried.Load(), p.discarded.Load()
}

// get checks out a buffer set seated on g, reseating or rebuilding the
// kernels of a recycled set that last served another snapshot.
func (p *BufferPool) get(g *graph.Graph) *chainBuffers {
	b, _ := p.pool.Get().(*chainBuffers)
	switch {
	case b == nil:
		return newChainBuffers(g)
	case b.g == g:
		return b
	case b.bfs != nil:
		b.bfs.Reseat(g)
	case b.dij != nil:
		b.dij.Reseat(g)
	default:
		// Brandes route (directed): no edit path exists, so a snapshot
		// change cannot happen — but handle it by rebuilding.
		return newChainBuffers(g)
	}
	b.g = g
	return b
}

func (p *BufferPool) put(b *chainBuffers) { p.pool.Put(b) }

// tspdLookup returns the LRU entry for key, inserting (and evicting
// the oldest beyond capacity) under the pool lock. Snapshot builds run
// outside the lock, deduplicated by the entry's once.
func (p *BufferPool) tspdLookup(key tspdKey) *tspdEntry {
	p.tspdMtx.Lock()
	el, ok := p.tspdByKey[key]
	if ok {
		p.tspdLRU.MoveToFront(el)
	} else {
		el = p.tspdLRU.PushFront(&tspdNode{key: key, ent: &tspdEntry{}})
		p.tspdByKey[key] = el
		for p.tspdLRU.Len() > targetSPDCacheSize {
			oldest := p.tspdLRU.Back()
			p.tspdLRU.Remove(oldest)
			delete(p.tspdByKey, oldest.Value.(*tspdNode).key)
		}
	}
	ent := el.Value.(*tspdNode).ent
	p.tspdMtx.Unlock()
	return ent
}

// targetSPD returns the cached target-side snapshot of g for target,
// building it on first request (concurrent first requests share one
// build). It returns nil unless the graph takes the BFS identity route
// (weighted undirected graphs have their own snapshot kind, see
// weightedTargetSPD; directed graphs have no identity fast path).
func (p *BufferPool) targetSPD(g *graph.Graph, target int) *sssp.TargetSPD {
	if routeFor(g) != routeBFSIdentity {
		return nil
	}
	ent := p.tspdLookup(tspdKey{version: g.Version(), target: target})
	ent.once.Do(func() {
		ent.spd = sssp.NewTargetSPD(sssp.NewBFS(g), target)
	})
	return ent.spd
}

// TargetSnapshot is targetSPD exported for the measure oracles
// (internal/measure): coverage and k-path evaluations scan the same
// target-side distance snapshot the betweenness identity oracle reads,
// so sharing the pool's per-target LRU means a μ derivation, a BC
// chain, and a coverage chain on one target all pay for a single
// target-side BFS between them. Nil off the BFS identity route.
func (p *BufferPool) TargetSnapshot(g *graph.Graph, target int) *sssp.TargetSPD {
	return p.targetSPD(g, target)
}

// weightedTargetSPD is targetSPD's weighted counterpart: non-nil only
// on the Dijkstra identity route. Both snapshot kinds share one LRU (a
// graph is either weighted or not, so in practice every entry is the
// same kind).
func (p *BufferPool) weightedTargetSPD(g *graph.Graph, target int) *sssp.WeightedTargetSPD {
	if routeFor(g) != routeDijkstraIdentity {
		return nil
	}
	ent := p.tspdLookup(tspdKey{version: g.Version(), target: target})
	ent.once.Do(func() {
		ent.wspd = sssp.NewWeightedTargetSPD(sssp.NewDijkstra(g), target)
	})
	return ent.wspd
}

// degreeAlias returns the degree-proposal alias table for the snapshot
// g, built once per version. Before this cache the table was rebuilt
// from the full degree sequence on every DegreeProposal chain run.
func (p *BufferPool) degreeAlias(g *graph.Graph) *rng.Alias {
	p.aliasMtx.Lock()
	defer p.aliasMtx.Unlock()
	if a, ok := p.aliases[g.Version()]; ok {
		return a
	}
	if len(p.aliases) >= aliasCacheSize {
		clear(p.aliases)
	}
	a := degreeAliasFor(g)
	p.aliases[g.Version()] = a
	return a
}

// degreeAliasFor builds the degree-proportional proposal table for g.
func degreeAliasFor(g *graph.Graph) *rng.Alias {
	w := make([]float64, g.N())
	for v := range w {
		w[v] = float64(g.Degree(v))
	}
	return rng.NewAlias(w)
}
