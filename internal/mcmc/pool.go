package mcmc

import (
	"sync"

	"bcmh/internal/graph"
	"bcmh/internal/sssp"
)

// chainBuffers is one chain's worth of reusable traversal state: the
// sssp computer (BFS/Dijkstra buffers), the Brandes accumulation
// scratch, and the memo map the Oracle fills. The computer and scratch
// are target-independent; only the memo's contents are per-target, so
// they are cleared on reuse.
type chainBuffers struct {
	c     *sssp.Computer
	delta []float64
	memo  map[int]float64
}

// BufferPool recycles chain buffers across estimation calls on one
// graph. A chain run allocates O(n) state up front (computer, scratch,
// memo); under concurrent batch traffic that is the dominant allocation
// source, and the pool bounds it at one buffer set per simultaneously
// running chain. Safe for concurrent use; every buffer set it hands out
// is private to one chain until returned.
type BufferPool struct {
	g    *graph.Graph
	pool sync.Pool
}

// NewBufferPool returns a pool of chain buffers for g. Buffers are
// sized to g at creation; do not share a pool across graphs.
func NewBufferPool(g *graph.Graph) *BufferPool {
	p := &BufferPool{g: g}
	p.pool.New = func() any {
		return &chainBuffers{
			c:     sssp.NewComputer(g),
			delta: make([]float64, g.N()),
			memo:  make(map[int]float64),
		}
	}
	return p
}

func (p *BufferPool) get() *chainBuffers  { return p.pool.Get().(*chainBuffers) }
func (p *BufferPool) put(b *chainBuffers) { p.pool.Put(b) }
