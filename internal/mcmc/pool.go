package mcmc

import (
	"container/list"
	"sync"

	"bcmh/internal/graph"
	"bcmh/internal/rng"
	"bcmh/internal/sssp"
)

// targetSPDCacheSize bounds the per-pool LRU of target-side shortest
// path snapshots. Each entry is O(n) memory; 128 covers a large working
// set of distinct chain targets while keeping worst-case residency at
// 128·12 bytes per vertex.
const targetSPDCacheSize = 128

// chainBuffers is one chain's worth of reusable state. Which traversal
// kernel it carries depends on the graph: unweighted undirected graphs
// get the specialized BFS kernel the identity oracle runs on; weighted
// or directed graphs get the general Computer plus the Brandes
// accumulation scratch. The memo and visited arrays are dense and
// epoch-stamped, so reuse across targets costs a counter bump instead
// of a map clear (or an O(n) zeroing).
type chainBuffers struct {
	c     *sssp.Computer // Brandes route (weighted/directed graphs)
	delta []float64      // Brandes accumulation scratch
	bfs   *sssp.BFS      // identity route (unweighted undirected graphs)

	// Dependency memo: memoVal[v] is valid iff memoStamp[v] == memoEpoch.
	memoVal   []float64
	memoStamp []uint32
	memoEpoch uint32

	// Visited-state tracking for UniqueStates, same stamping scheme.
	visStamp []uint32
	visEpoch uint32
}

func newChainBuffers(g *graph.Graph) *chainBuffers {
	n := g.N()
	b := &chainBuffers{
		memoVal:   make([]float64, n),
		memoStamp: make([]uint32, n),
		visStamp:  make([]uint32, n),
	}
	if fastOracleGraph(g) {
		b.bfs = sssp.NewBFS(g)
	} else {
		b.c = sssp.NewComputer(g)
		b.delta = make([]float64, n)
	}
	return b
}

// nextMemoEpoch invalidates every memo entry in O(1) (O(n) once per
// 2^32 reuses, when the stamp counter wraps).
func (b *chainBuffers) nextMemoEpoch() uint32 {
	b.memoEpoch++
	if b.memoEpoch == 0 {
		clear(b.memoStamp)
		b.memoEpoch = 1
	}
	return b.memoEpoch
}

// nextVisEpoch invalidates the visited set, same scheme.
func (b *chainBuffers) nextVisEpoch() uint32 {
	b.visEpoch++
	if b.visEpoch == 0 {
		clear(b.visStamp)
		b.visEpoch = 1
	}
	return b.visEpoch
}

// tspdEntry is one cached target snapshot; once deduplicates concurrent
// first requests to a single BFS.
type tspdEntry struct {
	once sync.Once
	spd  *sssp.TargetSPD
}

// BufferPool recycles chain buffers across estimation calls on one
// graph and owns the per-graph caches every chain on that graph wants
// to share: the target-side shortest-path snapshots the identity oracle
// reads (one per distinct chain target, LRU-bounded) and the
// degree-proposal alias table (built once, on first use). Safe for
// concurrent use; every buffer set it hands out is private to one chain
// until returned.
type BufferPool struct {
	g    *graph.Graph
	pool sync.Pool

	aliasOnce sync.Once
	degAlias  *rng.Alias

	tspdMtx   sync.Mutex
	tspdByKey map[int]*list.Element // values are *list.Element of tspdLRU
	tspdLRU   *list.List            // front = most recently used; values *tspdNode
}

type tspdNode struct {
	target int
	ent    *tspdEntry
}

// NewBufferPool returns a pool of chain buffers for g. Buffers are
// sized to g at creation; do not share a pool across graphs.
func NewBufferPool(g *graph.Graph) *BufferPool {
	p := &BufferPool{
		g:         g,
		tspdByKey: make(map[int]*list.Element, targetSPDCacheSize),
		tspdLRU:   list.New(),
	}
	p.pool.New = func() any { return newChainBuffers(g) }
	return p
}

func (p *BufferPool) get() *chainBuffers  { return p.pool.Get().(*chainBuffers) }
func (p *BufferPool) put(b *chainBuffers) { p.pool.Put(b) }

// targetSPD returns the cached target-side snapshot for target, building
// it on first request (concurrent first requests share one build). It
// returns nil when the graph takes the Brandes route — weighted or
// directed graphs have no identity fast path.
func (p *BufferPool) targetSPD(target int) *sssp.TargetSPD {
	if !fastOracleGraph(p.g) {
		return nil
	}
	p.tspdMtx.Lock()
	el, ok := p.tspdByKey[target]
	if ok {
		p.tspdLRU.MoveToFront(el)
	} else {
		el = p.tspdLRU.PushFront(&tspdNode{target: target, ent: &tspdEntry{}})
		p.tspdByKey[target] = el
		for p.tspdLRU.Len() > targetSPDCacheSize {
			oldest := p.tspdLRU.Back()
			p.tspdLRU.Remove(oldest)
			delete(p.tspdByKey, oldest.Value.(*tspdNode).target)
		}
	}
	ent := el.Value.(*tspdNode).ent
	p.tspdMtx.Unlock()
	ent.once.Do(func() {
		ent.spd = sssp.NewTargetSPD(sssp.NewBFS(p.g), target)
	})
	return ent.spd
}

// degreeAlias returns the degree-proposal alias table for the pool's
// graph, built once per pool lifetime. Before this cache the table was
// rebuilt from the full degree sequence on every DegreeProposal chain
// run.
func (p *BufferPool) degreeAlias() *rng.Alias {
	p.aliasOnce.Do(func() {
		p.degAlias = degreeAliasFor(p.g)
	})
	return p.degAlias
}

// degreeAliasFor builds the degree-proportional proposal table for g.
func degreeAliasFor(g *graph.Graph) *rng.Alias {
	w := make([]float64, g.N())
	for v := range w {
		w[v] = float64(g.Degree(v))
	}
	return rng.NewAlias(w)
}
