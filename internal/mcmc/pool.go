package mcmc

import (
	"container/list"
	"sync"

	"bcmh/internal/graph"
	"bcmh/internal/rng"
	"bcmh/internal/sssp"
)

// targetSPDCacheSize bounds the per-pool LRU of target-side shortest
// path snapshots. Each entry is O(n) memory; 128 covers a large working
// set of distinct chain targets while keeping worst-case residency at
// 128·12 bytes per vertex.
const targetSPDCacheSize = 128

// chainBuffers is one chain's worth of reusable state. Which traversal
// kernel it carries depends on the graph (see routeFor): unweighted
// undirected graphs get the specialized BFS kernel the identity oracle
// runs on; weighted undirected graphs get the specialized Dijkstra
// kernel; directed graphs get the general Computer plus the Brandes
// accumulation scratch. The memo and visited arrays are dense and
// epoch-stamped, so reuse across targets costs a counter bump instead
// of a map clear (or an O(n) zeroing).
type chainBuffers struct {
	c     *sssp.Computer // Brandes route (directed graphs)
	delta []float64      // Brandes accumulation scratch
	bfs   *sssp.BFS      // BFS identity route (unweighted undirected)
	dij   *sssp.Dijkstra // Dijkstra identity route (weighted undirected)

	// Dependency memo: memoVal[v] is valid iff memoStamp[v] == memoEpoch.
	memoVal   []float64
	memoStamp []uint32
	memoEpoch uint32

	// Visited-state tracking for UniqueStates, same stamping scheme.
	visStamp []uint32
	visEpoch uint32
}

func newChainBuffers(g *graph.Graph) *chainBuffers {
	n := g.N()
	b := &chainBuffers{
		memoVal:   make([]float64, n),
		memoStamp: make([]uint32, n),
		visStamp:  make([]uint32, n),
	}
	switch routeFor(g) {
	case routeBFSIdentity:
		b.bfs = sssp.NewBFS(g)
	case routeDijkstraIdentity:
		b.dij = sssp.NewDijkstra(g)
	default:
		b.c = sssp.NewComputer(g)
		b.delta = make([]float64, n)
	}
	return b
}

// bumpEpoch advances an epoch counter over a stamp array, clearing the
// stamps on the 2^32 wrap so a stale stamp can never collide with the
// fresh epoch. Shared by the chain-buffer memo/visited sets and the
// SetOracle memo.
func bumpEpoch(stamp []uint32, epoch uint32) uint32 {
	epoch++
	if epoch == 0 {
		clear(stamp)
		epoch = 1
	}
	return epoch
}

// nextMemoEpoch invalidates every memo entry in O(1) (O(n) once per
// 2^32 reuses, when the stamp counter wraps).
func (b *chainBuffers) nextMemoEpoch() uint32 {
	b.memoEpoch = bumpEpoch(b.memoStamp, b.memoEpoch)
	return b.memoEpoch
}

// nextVisEpoch invalidates the visited set, same scheme.
func (b *chainBuffers) nextVisEpoch() uint32 {
	b.visEpoch = bumpEpoch(b.visStamp, b.visEpoch)
	return b.visEpoch
}

// tspdEntry is one cached target snapshot — the kind matching the
// graph's identity route is set, the other stays nil; once deduplicates
// concurrent first requests to a single traversal.
type tspdEntry struct {
	once sync.Once
	spd  *sssp.TargetSPD
	wspd *sssp.WeightedTargetSPD
}

// BufferPool recycles chain buffers across estimation calls on one
// graph and owns the per-graph caches every chain on that graph wants
// to share: the target-side shortest-path snapshots the identity oracle
// reads (one per distinct chain target, LRU-bounded) and the
// degree-proposal alias table (built once, on first use). Safe for
// concurrent use; every buffer set it hands out is private to one chain
// until returned.
type BufferPool struct {
	g    *graph.Graph
	pool sync.Pool

	aliasOnce sync.Once
	degAlias  *rng.Alias

	tspdMtx   sync.Mutex
	tspdByKey map[int]*list.Element // values are *list.Element of tspdLRU
	tspdLRU   *list.List            // front = most recently used; values *tspdNode
}

type tspdNode struct {
	target int
	ent    *tspdEntry
}

// NewBufferPool returns a pool of chain buffers for g. Buffers are
// sized to g at creation; do not share a pool across graphs.
func NewBufferPool(g *graph.Graph) *BufferPool {
	p := &BufferPool{
		g:         g,
		tspdByKey: make(map[int]*list.Element, targetSPDCacheSize),
		tspdLRU:   list.New(),
	}
	p.pool.New = func() any { return newChainBuffers(g) }
	return p
}

func (p *BufferPool) get() *chainBuffers  { return p.pool.Get().(*chainBuffers) }
func (p *BufferPool) put(b *chainBuffers) { p.pool.Put(b) }

// tspdLookup returns the LRU entry for target, inserting (and evicting
// the oldest beyond capacity) under the pool lock. Snapshot builds run
// outside the lock, deduplicated by the entry's once.
func (p *BufferPool) tspdLookup(target int) *tspdEntry {
	p.tspdMtx.Lock()
	el, ok := p.tspdByKey[target]
	if ok {
		p.tspdLRU.MoveToFront(el)
	} else {
		el = p.tspdLRU.PushFront(&tspdNode{target: target, ent: &tspdEntry{}})
		p.tspdByKey[target] = el
		for p.tspdLRU.Len() > targetSPDCacheSize {
			oldest := p.tspdLRU.Back()
			p.tspdLRU.Remove(oldest)
			delete(p.tspdByKey, oldest.Value.(*tspdNode).target)
		}
	}
	ent := el.Value.(*tspdNode).ent
	p.tspdMtx.Unlock()
	return ent
}

// targetSPD returns the cached target-side snapshot for target, building
// it on first request (concurrent first requests share one build). It
// returns nil unless the graph takes the BFS identity route (weighted
// undirected graphs have their own snapshot kind, see
// weightedTargetSPD; directed graphs have no identity fast path).
func (p *BufferPool) targetSPD(target int) *sssp.TargetSPD {
	if routeFor(p.g) != routeBFSIdentity {
		return nil
	}
	ent := p.tspdLookup(target)
	ent.once.Do(func() {
		ent.spd = sssp.NewTargetSPD(sssp.NewBFS(p.g), target)
	})
	return ent.spd
}

// weightedTargetSPD is targetSPD's weighted counterpart: non-nil only
// on the Dijkstra identity route. Both snapshot kinds share one LRU (a
// graph is either weighted or not, so in practice every entry is the
// same kind).
func (p *BufferPool) weightedTargetSPD(target int) *sssp.WeightedTargetSPD {
	if routeFor(p.g) != routeDijkstraIdentity {
		return nil
	}
	ent := p.tspdLookup(target)
	ent.once.Do(func() {
		ent.wspd = sssp.NewWeightedTargetSPD(sssp.NewDijkstra(p.g), target)
	})
	return ent.wspd
}

// degreeAlias returns the degree-proposal alias table for the pool's
// graph, built once per pool lifetime. Before this cache the table was
// rebuilt from the full degree sequence on every DegreeProposal chain
// run.
func (p *BufferPool) degreeAlias() *rng.Alias {
	p.aliasOnce.Do(func() {
		p.degAlias = degreeAliasFor(p.g)
	})
	return p.degAlias
}

// degreeAliasFor builds the degree-proportional proposal table for g.
func degreeAliasFor(g *graph.Graph) *rng.Alias {
	w := make([]float64, g.N())
	for v := range w {
		w[v] = float64(g.Degree(v))
	}
	return rng.NewAlias(w)
}
