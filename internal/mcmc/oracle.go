// Package mcmc implements the paper's contribution: the single-space
// Metropolis–Hastings sampler for estimating the betweenness score of
// one vertex (§4.2) and the joint-space sampler for estimating relative
// betweenness scores of a vertex set (§4.3), together with the μ(r)
// machinery of Theorems 1–2, the Eq. 14/27 sample-size planner, exact
// ground-truth helpers used by the experiments, and a multi-chain
// parallel driver.
//
// Estimator variants: beyond the paper's Eq. 7 the package computes, on
// the same chain, the standard MH chain average, the proposal-side
// unbiased estimate (free by-product of the acceptance tests), and a
// harmonic-mean corrected estimate that is consistent for BC(r) even
// when the chain-average limit is biased (see DESIGN.md §1.1). Every
// run reports all of them so the experiments can compare.
package mcmc

import (
	"fmt"

	"bcmh/internal/brandes"
	"bcmh/internal/graph"
	"bcmh/internal/sssp"
)

// Oracle evaluates δ_v•(target) — one Brandes traversal per distinct v —
// with optional memoisation. MH chains revisit states whenever a
// proposal is rejected, so the cache converts the dominant cost from
// O(steps · m) to O(unique-states · m).
type Oracle struct {
	g      *graph.Graph
	c      *sssp.Computer
	delta  []float64
	target int
	cache  map[int]float64
	// Evals counts traversals performed (cache misses); Hits counts
	// cache hits. Work accounting for experiments T7/T8d.
	Evals int
	Hits  int
}

// NewOracle returns an oracle for δ_·•(target) on g. When useCache is
// false every Dep call performs a traversal (ablation T8d).
func NewOracle(g *graph.Graph, target int, useCache bool) (*Oracle, error) {
	if target < 0 || target >= g.N() {
		return nil, fmt.Errorf("mcmc: oracle target %d out of range", target)
	}
	o := &Oracle{
		g:      g,
		c:      sssp.NewComputer(g),
		delta:  make([]float64, g.N()),
		target: target,
	}
	if useCache {
		o.cache = make(map[int]float64)
	}
	return o, nil
}

// newOracleBuffered wires an Oracle around recycled chain buffers
// instead of fresh allocations. The memo map may hold entries from a
// previous target and is cleared before use.
func newOracleBuffered(g *graph.Graph, target int, useCache bool, b *chainBuffers) (*Oracle, error) {
	if target < 0 || target >= g.N() {
		return nil, fmt.Errorf("mcmc: oracle target %d out of range", target)
	}
	o := &Oracle{
		g:      g,
		c:      b.c,
		delta:  b.delta,
		target: target,
	}
	if useCache {
		clear(b.memo)
		o.cache = b.memo
	}
	return o, nil
}

// Dep returns δ_v•(target).
func (o *Oracle) Dep(v int) float64 {
	if o.cache != nil {
		if d, ok := o.cache[v]; ok {
			o.Hits++
			return d
		}
	}
	o.Evals++
	d := brandes.DependencyOnTarget(o.c, o.delta, v, o.target)
	if o.cache != nil {
		o.cache[v] = d
	}
	return d
}

// Target returns the oracle's target vertex.
func (o *Oracle) Target() int { return o.target }

// SetOracle evaluates the vector (δ_v•(r))_{r ∈ R} for a fixed set R —
// a single traversal from v yields δ_v•(x) for every x, so the whole
// R-vector costs the same O(m) as a single entry. This is what makes
// the joint-space sampler's per-step cost independent of |R|.
type SetOracle struct {
	g       *graph.Graph
	c       *sssp.Computer
	delta   []float64
	targets []int
	cache   map[int][]float64
	Evals   int
	Hits    int
}

// NewSetOracle returns an oracle for the target set R (which must be
// non-empty, in range, and duplicate-free).
func NewSetOracle(g *graph.Graph, targets []int, useCache bool) (*SetOracle, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("mcmc: empty target set")
	}
	seen := make(map[int]bool, len(targets))
	for _, r := range targets {
		if r < 0 || r >= g.N() {
			return nil, fmt.Errorf("mcmc: set oracle target %d out of range", r)
		}
		if seen[r] {
			return nil, fmt.Errorf("mcmc: set oracle target %d repeated", r)
		}
		seen[r] = true
	}
	o := &SetOracle{
		g:       g,
		c:       sssp.NewComputer(g),
		delta:   make([]float64, g.N()),
		targets: append([]int(nil), targets...),
	}
	if useCache {
		o.cache = make(map[int][]float64)
	}
	return o, nil
}

// Deps returns the dependency vector of source v on every target,
// indexed as the targets slice passed to NewSetOracle. The returned
// slice is owned by the cache when caching is on; callers must not
// modify it.
func (o *SetOracle) Deps(v int) []float64 {
	if o.cache != nil {
		if d, ok := o.cache[v]; ok {
			o.Hits++
			return d
		}
	}
	o.Evals++
	spd := o.c.Run(v)
	brandes.Accumulate(o.g, spd, o.delta)
	out := make([]float64, len(o.targets))
	for i, r := range o.targets {
		out[i] = o.delta[r]
	}
	if o.cache != nil {
		o.cache[v] = out
	}
	return out
}

// Targets returns the oracle's target set (not a copy; do not modify).
func (o *SetOracle) Targets() []int { return o.targets }
