// Package mcmc implements the paper's contribution: the single-space
// Metropolis–Hastings sampler for estimating the betweenness score of
// one vertex (§4.2) and the joint-space sampler for estimating relative
// betweenness scores of a vertex set (§4.3), together with the μ(r)
// machinery of Theorems 1–2, the Eq. 14/27 sample-size planner, exact
// ground-truth helpers used by the experiments, and a multi-chain
// parallel driver.
//
// Estimator variants: beyond the paper's Eq. 7 the package computes, on
// the same chain, the standard MH chain average, the proposal-side
// unbiased estimate (free by-product of the acceptance tests), and a
// harmonic-mean corrected estimate that is consistent for BC(r) even
// when the chain-average limit is biased (see DESIGN.md §1.1). Every
// run reports all of them so the experiments can compare.
package mcmc

import (
	"fmt"
	"sync/atomic"

	"bcmh/internal/brandes"
	"bcmh/internal/graph"
	"bcmh/internal/sssp"
)

// oracleRoute names the dependency-evaluation strategy a graph gets.
// Both undirected kinds take a pair-dependency identity route (the
// identity needs σ_vr = σ_rv, i.e. symmetry); only directed graphs
// fall back to the reference Brandes evaluator.
type oracleRoute int

const (
	// routeBrandes: directed graphs — full traversal plus backward
	// accumulation per evaluation (brandes.DependencyOnTarget).
	routeBrandes oracleRoute = iota
	// routeBFSIdentity: unweighted undirected graphs — specialized BFS
	// kernel plus O(n) scan (brandes.DependencyOnTargetIdentity).
	routeBFSIdentity
	// routeDijkstraIdentity: weighted undirected graphs — specialized
	// Dijkstra kernel (bucket queue when the weight range allows, 4-ary
	// heap otherwise) plus O(n) scan
	// (brandes.DependencyOnTargetIdentityWeighted).
	routeDijkstraIdentity
)

// routeFor selects the evaluation route for g.
func routeFor(g *graph.Graph) oracleRoute {
	switch {
	case g.Directed():
		return routeBrandes
	case g.Weighted():
		return routeDijkstraIdentity
	default:
		return routeBFSIdentity
	}
}

// Oracle evaluates δ_v•(target) with optional memoisation. MH chains
// revisit states whenever a proposal is rejected, so the memo converts
// the dominant cost from O(steps) to O(unique-states) evaluations.
//
// Three evaluation routes sit behind the same interface, selected by
// the graph (see routeFor):
//
//   - BFS identity route (unweighted undirected): the target-side
//     shortest path snapshot is computed once per oracle — or shared
//     through the BufferPool's per-target cache — and each evaluation
//     is one specialized forward BFS from v plus an O(n) scan, via
//     brandes.DependencyOnTargetIdentity. No Brandes backward pass.
//   - Dijkstra identity route (weighted undirected): same shape with
//     the weighted kernel and snapshot, via
//     brandes.DependencyOnTargetIdentityWeighted.
//   - Brandes route (directed): each evaluation is a full traversal
//     plus backward accumulation, via the reference
//     brandes.DependencyOnTarget.
//
// The memo is a dense epoch-stamped array, not a map: at chain lengths
// in the thousands, map hashing on every step is measurable.
type Oracle struct {
	g      *graph.Graph
	target int

	// Brandes route state.
	c     *sssp.Computer
	delta []float64
	// BFS identity route state.
	bfs  *sssp.BFS
	tspd *sssp.TargetSPD
	// Dijkstra identity route state.
	dij   *sssp.Dijkstra
	wtspd *sssp.WeightedTargetSPD

	// Dense memo: memoVal[v] is valid iff memoStamp[v] == memoEpoch —
	// and, when the memo was carried across graph versions, iff v's
	// block has not been affected since memoVersion (the lastAffected
	// check below). A nil memoStamp disables memoisation (ablation T8d).
	memoVal   []float64
	memoStamp []uint32
	memoEpoch uint32

	// Carry-over validity: entries older than this oracle were computed
	// at graph version memoVersion; lastAffected (shared with the pool,
	// read atomically — swaps write it concurrently) tells whether a
	// vertex's block was edited after that. Nil lastAffected means the
	// memo never crosses versions and the stamp alone decides.
	memoVersion  uint64
	lastAffected []uint64

	// Evals counts dependency evaluations performed (memo misses); Hits
	// counts memo hits. Work accounting for experiments T7/T8d.
	Evals int
	Hits  int
}

// NewOracle returns an oracle for δ_·•(target) on g, auto-selecting the
// evaluation route. When useCache is false every Dep call performs a
// full evaluation (ablation T8d).
func NewOracle(g *graph.Graph, target int, useCache bool) (*Oracle, error) {
	return newOracleBuffered(g, target, useCache, newChainBuffers(g), nil, nil, nil)
}

// newOracleBuffered wires an Oracle around recycled chain buffers. The
// buffers may have served a previous target; bumping the memo epoch
// invalidates every stale entry in O(1). A non-nil tspd/wtspd supplies
// the target-side snapshot for the matching identity route (from the
// BufferPool's shared cache); nil makes the oracle compute its own.
//
// With a non-nil pool, the memo survives graph-version bumps when it is
// provably still exact: the buffers last served the same target, at a
// version at or before g's, and no swap since then affected the
// target's block (pool.lastAffected). δ_v(r) depends only on the blocks
// of the block-cut forest containing v and r — contributions from other
// blocks factor through the cut vertices and cancel in the identity
// formula — so entries at unaffected states stay valid; states whose
// block *was* edited are rejected individually by Dep's lastAffected
// check. Chains restarted on a new snapshot therefore keep their warm
// memos instead of re-evaluating every revisited state from scratch.
func newOracleBuffered(g *graph.Graph, target int, useCache bool, b *chainBuffers, tspd *sssp.TargetSPD, wtspd *sssp.WeightedTargetSPD, pool *BufferPool) (*Oracle, error) {
	if target < 0 || target >= g.N() {
		return nil, fmt.Errorf("mcmc: oracle target %d out of range", target)
	}
	o := &Oracle{
		g:      g,
		target: target,
		c:      b.c,
		delta:  b.delta,
		bfs:    b.bfs,
		dij:    b.dij,
	}
	if o.bfs != nil {
		if tspd == nil || tspd.Target != target {
			tspd = sssp.NewTargetSPD(o.bfs, target)
		}
		o.tspd = tspd
	}
	if o.dij != nil {
		if wtspd == nil || wtspd.Target != target {
			wtspd = sssp.NewWeightedTargetSPD(o.dij, target)
		}
		o.wtspd = wtspd
	}
	if useCache {
		o.memoVal = b.memoVal
		o.memoStamp = b.memoStamp
		// Only a strictly newer snapshot triggers a carry: same-version
		// reuse keeps the old bump-per-oracle behavior so Evals/Hits
		// stay deterministic regardless of buffer recycling order.
		crossVersion := pool != nil && b.memoTarget == target && b.memoVersion < g.Version()
		if crossVersion && !pool.affectedAfter(target, b.memoVersion) {
			// Carry: keep the epoch (existing entries stay stamped) and
			// judge each entry per state against lastAffected in Dep.
			// memoVersion must stay at the fill version — advancing it
			// would blind the per-state check to edits in between.
			o.memoEpoch = b.memoEpoch
			o.memoVersion = b.memoVersion
			o.lastAffected = pool.lastAffected
			pool.carried.Add(1)
		} else {
			if crossVersion {
				pool.discarded.Add(1)
			}
			// Fresh memo: every entry will be computed on g itself, so
			// the stamp alone decides validity (lastAffected stays nil).
			o.memoEpoch = b.nextMemoEpoch()
			b.memoTarget = target
			b.memoVersion = g.Version()
			o.memoVersion = b.memoVersion
		}
	}
	return o, nil
}

// newReferenceOracle forces the Brandes route regardless of graph kind —
// the baseline the equivalence tests hold the identity route to.
func newReferenceOracle(g *graph.Graph, target int, useCache bool) (*Oracle, error) {
	if target < 0 || target >= g.N() {
		return nil, fmt.Errorf("mcmc: oracle target %d out of range", target)
	}
	o := &Oracle{
		g:      g,
		target: target,
		c:      sssp.NewComputer(g),
		delta:  make([]float64, g.N()),
	}
	if useCache {
		o.memoVal = make([]float64, g.N())
		o.memoStamp = make([]uint32, g.N())
		o.memoEpoch = 1
	}
	return o, nil
}

// Dep returns δ_v•(target).
func (o *Oracle) Dep(v int) float64 {
	if o.memoStamp != nil && o.memoStamp[v] == o.memoEpoch &&
		(o.lastAffected == nil || atomic.LoadUint64(&o.lastAffected[v]) <= o.memoVersion) {
		o.Hits++
		return o.memoVal[v]
	}
	o.Evals++
	var d float64
	switch {
	case o.bfs != nil:
		o.bfs.Run(v)
		d = brandes.DependencyOnTargetIdentity(o.bfs, o.tspd, v)
	case o.dij != nil:
		o.dij.Run(v)
		d = brandes.DependencyOnTargetIdentityWeighted(o.dij, o.wtspd, v)
	default:
		d = brandes.DependencyOnTarget(o.c, o.delta, v, o.target)
	}
	if o.memoStamp != nil {
		o.memoStamp[v] = o.memoEpoch
		o.memoVal[v] = d
	}
	return d
}

// Target returns the oracle's target vertex.
func (o *Oracle) Target() int { return o.target }

// Work reports (evaluations, memo hits) — the StatOracle accounting
// surface the measure-generic chain loop reads.
func (o *Oracle) Work() (evals, hits int) { return o.Evals, o.Hits }

// SetOracle evaluates the vector (δ_v•(r))_{r ∈ R} for a fixed set R.
// On the Brandes route a single traversal from v yields δ_v•(x) for
// every x, so the whole R-vector costs the same O(m) as a single entry;
// on the identity routes one specialized BFS/Dijkstra from v feeds |R|
// O(n) scans against the per-target snapshots (one cached SPD per
// target in R, computed once at construction). Either way the
// joint-space sampler's per-step cost stays effectively independent of
// |R|.
type SetOracle struct {
	g       *graph.Graph
	targets []int

	// Brandes route state.
	c     *sssp.Computer
	delta []float64
	// BFS identity route state: one snapshot per target in R.
	bfs   *sssp.BFS
	tspds []*sssp.TargetSPD
	// Dijkstra identity route state, same shape.
	dij    *sssp.Dijkstra
	wtspds []*sssp.WeightedTargetSPD

	// Dense memo, flattened row-major: row v is
	// memoVal[v*len(targets) : (v+1)*len(targets)], valid iff
	// memoStamp[v] == memoEpoch — the same epoch tagging Oracle uses,
	// so Retarget invalidates every row in O(1) instead of trusting a
	// binary stamp that would survive a target-set change and serve
	// stale vectors. Nil memoStamp disables memoisation.
	memoVal   []float64
	memoStamp []uint32
	memoEpoch uint32

	Evals int
	Hits  int
}

// NewSetOracle returns an oracle for the target set R (which must be
// non-empty, in range, and duplicate-free).
func NewSetOracle(g *graph.Graph, targets []int, useCache bool) (*SetOracle, error) {
	o := &SetOracle{g: g}
	switch routeFor(g) {
	case routeBFSIdentity:
		o.bfs = sssp.NewBFS(g)
	case routeDijkstraIdentity:
		o.dij = sssp.NewDijkstra(g)
	default:
		o.c = sssp.NewComputer(g)
		o.delta = make([]float64, g.N())
	}
	if useCache {
		o.memoStamp = make([]uint32, g.N())
	}
	if err := o.Retarget(targets); err != nil {
		return nil, err
	}
	return o, nil
}

// Retarget repoints the oracle at a new target set, rebuilding the
// per-target snapshots and invalidating the whole memo by bumping its
// epoch. It is the reuse path for callers that run several joint-space
// estimations on one graph: buffers, kernels and the memo backing array
// are all recycled.
func (o *SetOracle) Retarget(targets []int) error {
	if len(targets) == 0 {
		return fmt.Errorf("mcmc: empty target set")
	}
	seen := make(map[int]bool, len(targets))
	for _, r := range targets {
		if r < 0 || r >= o.g.N() {
			return fmt.Errorf("mcmc: set oracle target %d out of range", r)
		}
		if seen[r] {
			return fmt.Errorf("mcmc: set oracle target %d repeated", r)
		}
		seen[r] = true
	}
	o.targets = append(o.targets[:0], targets...)
	switch {
	case o.bfs != nil:
		o.tspds = o.tspds[:0]
		for _, r := range o.targets {
			o.tspds = append(o.tspds, sssp.NewTargetSPD(o.bfs, r))
		}
	case o.dij != nil:
		o.wtspds = o.wtspds[:0]
		for _, r := range o.targets {
			o.wtspds = append(o.wtspds, sssp.NewWeightedTargetSPD(o.dij, r))
		}
	}
	if o.memoStamp != nil {
		if need := o.g.N() * len(o.targets); cap(o.memoVal) < need {
			o.memoVal = make([]float64, need)
		} else {
			o.memoVal = o.memoVal[:need]
		}
		o.memoEpoch = bumpEpoch(o.memoStamp, o.memoEpoch)
	}
	return nil
}

// Deps returns the dependency vector of source v on every target,
// indexed as the targets slice passed to NewSetOracle/Retarget. The
// returned slice is owned by the memo when caching is on; callers must
// not modify it (each source has its own row, so slices returned for
// different sources stay valid across calls — until the next Retarget).
func (o *SetOracle) Deps(v int) []float64 {
	k := len(o.targets)
	if o.memoStamp != nil && o.memoStamp[v] == o.memoEpoch {
		o.Hits++
		return o.memoVal[v*k : (v+1)*k : (v+1)*k]
	}
	o.Evals++
	var out []float64
	if o.memoStamp != nil {
		out = o.memoVal[v*k : (v+1)*k : (v+1)*k]
	} else {
		out = make([]float64, k)
	}
	switch {
	case o.bfs != nil:
		o.bfs.Run(v)
		for i, ts := range o.tspds {
			out[i] = brandes.DependencyOnTargetIdentity(o.bfs, ts, v)
		}
	case o.dij != nil:
		o.dij.Run(v)
		for i, ts := range o.wtspds {
			out[i] = brandes.DependencyOnTargetIdentityWeighted(o.dij, ts, v)
		}
	default:
		spd := o.c.Run(v)
		brandes.Accumulate(o.g, spd, o.delta)
		for i, r := range o.targets {
			out[i] = o.delta[r]
		}
	}
	if o.memoStamp != nil {
		o.memoStamp[v] = o.memoEpoch
	}
	return out
}

// Targets returns the oracle's target set (not a copy; do not modify).
func (o *SetOracle) Targets() []int { return o.targets }

// CarryTo moves the oracle to next — another snapshot of the same
// undirected lineage — reseating its traversal kernel (O(overlay) for
// overlay siblings, full rebuild otherwise) and recomputing the
// per-target snapshots. affected is the vertex set of the blocks the
// intervening edits touched (nil = treat everything as affected).
//
// The memo survives when no target lies in an affected block: rows at
// affected states are invalidated individually and the rest stay valid
// — δ_v(r) only depends on the blocks between v and r, so entries with
// both endpoints outside the affected region are unchanged. If any
// target is affected the whole memo is dropped (one epoch bump).
func (o *SetOracle) CarryTo(next *graph.Graph, affected []bool) {
	switch {
	case o.bfs != nil:
		o.bfs.Reseat(next)
	case o.dij != nil:
		o.dij.Reseat(next)
	default:
		o.c = sssp.NewComputer(next)
	}
	o.g = next
	switch {
	case o.bfs != nil:
		o.tspds = o.tspds[:0]
		for _, r := range o.targets {
			o.tspds = append(o.tspds, sssp.NewTargetSPD(o.bfs, r))
		}
	case o.dij != nil:
		o.wtspds = o.wtspds[:0]
		for _, r := range o.targets {
			o.wtspds = append(o.wtspds, sssp.NewWeightedTargetSPD(o.dij, r))
		}
	}
	if o.memoStamp == nil {
		return
	}
	drop := affected == nil
	for _, r := range o.targets {
		if drop {
			break
		}
		drop = affected[r]
	}
	if drop {
		o.memoEpoch = bumpEpoch(o.memoStamp, o.memoEpoch)
		return
	}
	// Stamp 0 is permanently invalid: epochs start at 1 and skip 0 on
	// wrap, so zeroing a row's stamp retires it without an epoch bump.
	for v, a := range affected {
		if a {
			o.memoStamp[v] = 0
		}
	}
}
