package mcmc

import (
	"math"
	"testing"

	"bcmh/internal/brandes"
	"bcmh/internal/graph"
	"bcmh/internal/rng"
	"bcmh/internal/stats"
)

func TestEstimateStressConverges(t *testing.T) {
	g := graph.KarateClub()
	exact := brandes.StressOfVertexExact(g, 0)
	res, err := EstimateStress(g, 0, 20000, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelError(res.ProposalSide, exact) > 0.15 {
		t.Fatalf("proposal-side stress %v exact %v", res.ProposalSide, exact)
	}
	if stats.RelError(res.Harmonic, exact) > 0.15 {
		t.Fatalf("harmonic stress %v exact %v", res.Harmonic, exact)
	}
	if res.AcceptanceRate <= 0 || res.AcceptanceRate > 1 {
		t.Fatalf("acceptance %v", res.AcceptanceRate)
	}
	if res.Evals == 0 || res.CacheHits == 0 {
		t.Fatalf("work accounting missing: %+v", res)
	}
}

func TestEstimateStressUnbiasedProposal(t *testing.T) {
	g := graph.Grid(6, 6)
	r := 2*6 + 3
	exact := brandes.StressOfVertexExact(g, r)
	rnd := rng.New(7)
	var acc stats.Welford
	for rep := 0; rep < 150; rep++ {
		res, err := EstimateStress(g, r, 30, rnd)
		if err != nil {
			t.Fatal(err)
		}
		acc.Add(res.ProposalSide)
	}
	if math.Abs(acc.Mean()-exact) > 4*acc.StdErr()+1e-9 {
		t.Fatalf("stress proposal-side bias: %v vs %v (stderr %v)", acc.Mean(), exact, acc.StdErr())
	}
}

func TestEstimateStressWeightedMeanDominates(t *testing.T) {
	// The chain's weighted mean must be ≥ the uniform mean Σδ/n, the
	// same dominance as the betweenness chain.
	g := graph.KarateClub()
	exact := brandes.StressOfVertexExact(g, 33)
	res, err := EstimateStress(g, 33, 20000, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	uniformMean := exact / float64(g.N())
	if res.ChainWeightedMean < uniformMean*0.9 {
		t.Fatalf("weighted mean %v should dominate uniform mean %v", res.ChainWeightedMean, uniformMean)
	}
}

func TestEstimateStressZeroTarget(t *testing.T) {
	// Star leaf: zero stress; estimates must be exactly 0.
	g := graph.Star(8)
	res, err := EstimateStress(g, 3, 500, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if res.ProposalSide != 0 || res.Harmonic != 0 || res.ChainWeightedMean != 0 {
		t.Fatalf("zero-stress target: %+v", res)
	}
}

func TestEstimateStressValidation(t *testing.T) {
	g := graph.Path(4)
	if _, err := EstimateStress(g, 9, 10, rng.New(1)); err == nil {
		t.Fatal("bad target accepted")
	}
	if _, err := EstimateStress(g, 1, 0, rng.New(1)); err == nil {
		t.Fatal("zero steps accepted")
	}
	single := graph.NewBuilder(1).MustBuild()
	if _, err := EstimateStress(single, 0, 10, rng.New(1)); err == nil {
		t.Fatal("tiny graph accepted")
	}
}
