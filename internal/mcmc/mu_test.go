package mcmc

import (
	"math"
	"testing"

	"bcmh/internal/graph"
	"bcmh/internal/rng"
	"bcmh/internal/stats"
)

func TestMuFromDepsStar(t *testing.T) {
	// Star center, n=10: δ = 8 on all 9 leaves, 0 at the center.
	// max = 8, mean = 72/10 = 7.2 → μ = 10/9.
	g := graph.Star(10)
	ms, err := MuExact(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ms.Mu-10.0/9.0) > 1e-12 {
		t.Fatalf("star μ %v want 10/9", ms.Mu)
	}
	if ms.MaxDep != 8 || ms.PositiveStates != 9 {
		t.Fatalf("star stats %+v", ms)
	}
	if math.Abs(ms.BC-8.0/10.0) > 1e-12 {
		t.Fatalf("star BC %v", ms.BC)
	}
	// Chain limit = BC·n/n⁺ here (constant δ on support).
	if math.Abs(ms.ChainLimit-ms.BC*10/9) > 1e-12 {
		t.Fatalf("star chain limit %v", ms.ChainLimit)
	}
	if ms.Bias <= 0 {
		t.Fatal("bias should be positive")
	}
}

func TestMuLeafIsZeroish(t *testing.T) {
	// Star leaf: all-zero column → μ = 0, BC = 0, limit = 0.
	ms, err := MuExact(graph.Star(8), 3)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Mu != 0 || ms.BC != 0 || ms.ChainLimit != 0 || ms.Bias != 0 {
		t.Fatalf("leaf stats %+v", ms)
	}
}

func TestMuSeparatorConstantTheorem2(t *testing.T) {
	// Theorem 2 regime: StarOfCliques center shatters the graph into l
	// equal components; μ(center) should stay bounded as n grows, and
	// the bound 1 + 1/K (K=1 for equal components → 2) should hold
	// asymptotically. A clique-interior vertex in a barbell has tiny
	// dependency mass by comparison.
	sizes := []int{10, 20, 40, 80}
	if testing.Short() {
		// The largest instances dominate the runtime; the asymptotic
		// claim is still exercised by the remaining growth sequence.
		sizes = sizes[:3]
	}
	var prev float64
	for _, size := range sizes {
		g := graph.StarOfCliques(4, size)
		ms, err := MuExact(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ms.Mu > 2.5 {
			t.Fatalf("separator μ %v exceeds Theorem 2 ballpark at size %d", ms.Mu, size)
		}
		prev = ms.Mu
	}
	_ = prev
	// Contrast: an *unbalanced* separator — the hub holding 2 leaves in
	// DoubleStar(2, k) — violates Theorem 2's Θ(n)-components premise,
	// and its μ must grow with n: its two leaves depend on it for
	// everything (δ ≈ n) while average dependency stays O(1).
	var muSmall, muLarge float64
	{
		ms, _ := MuExact(graph.DoubleStar(2, 50), 0)
		muSmall = ms.Mu
	}
	{
		big := 400
		if testing.Short() {
			big = 200 // μ grows ~linearly in n; half the size still doubles muSmall
		}
		ms, _ := MuExact(graph.DoubleStar(2, big), 0)
		muLarge = ms.Mu
	}
	if muLarge < 2*muSmall {
		t.Fatalf("unbalanced-separator μ should grow with n: %v -> %v", muSmall, muLarge)
	}
	// Balanced barbell path vertex stays small.
	sep, _ := MuExact(graph.Barbell(80, 80, 2), 80)
	if sep.Mu > 3 {
		t.Fatalf("balanced barbell separator μ %v", sep.Mu)
	}
}

func TestPlanStepsMatchesStats(t *testing.T) {
	if PlanSteps(0.01, 0.1, 2) != stats.MCMCSampleSize(0.01, 0.1, 2) {
		t.Fatal("PlanSteps should delegate to stats")
	}
	if TheoremOneBound(1000, 0.05, 2) != stats.MCMCBound(1000, 0.05, 2) {
		t.Fatal("TheoremOneBound should delegate to stats")
	}
}

func TestMuExactValidation(t *testing.T) {
	if _, err := MuExact(graph.Path(3), 9); err == nil {
		t.Fatal("bad target accepted")
	}
}

func TestMuFromDepsDegenerate(t *testing.T) {
	if ms := MuFromDeps(nil); ms.Mu != 0 {
		t.Fatal("empty deps should give zero stats")
	}
	if ms := MuFromDeps([]float64{5}); ms.Mu != 0 {
		t.Fatal("single-entry deps should give zero stats")
	}
}

func TestTheorem1CoverageEmpirical(t *testing.T) {
	// Mini version of experiment F2: with T from Eq. 14, the deviation
	// |est − E_π f| should exceed ε in at most ~δ of runs. (The bound
	// governs deviation from the chain's own limit; tested against
	// ChainLimit, with the understanding the paper conflates it with
	// BC.)
	g := graph.Star(40) // near-iid chain: bound is meaningful at small T
	ms, _ := MuExact(g, 0)
	eps, delta := 0.05, 0.2
	T := PlanSteps(eps, delta, ms.Mu)
	r := rng.New(23)
	errs := make([]float64, 0, 60)
	for rep := 0; rep < 60; rep++ {
		res, err := EstimateBC(g, 0, DefaultConfig(T), r)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, res.ChainAverage-ms.ChainLimit)
	}
	cov := stats.EmpiricalCoverage(errs, eps)
	if cov > delta {
		t.Fatalf("empirical violation rate %v exceeds δ=%v (T=%d)", cov, delta, T)
	}
}

func TestMultiChainPoolsCorrectly(t *testing.T) {
	g := graph.BarabasiAlbert(150, 2, rng.New(29))
	cfg := DefaultConfig(2000)
	m, err := EstimateBCParallel(g, 0, cfg, 31, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.PerChain) != 4 {
		t.Fatalf("per-chain results %d", len(m.PerChain))
	}
	// Combined chain average = mean of per-chain averages.
	var want float64
	for _, r := range m.PerChain {
		want += r.ChainAverage
	}
	want /= 4
	if math.Abs(m.Combined.ChainAverage-want) > 1e-12 {
		t.Fatalf("pooling wrong: %v vs %v", m.Combined.ChainAverage, want)
	}
	if m.BetweenChainStdDev <= 0 {
		t.Fatal("between-chain spread should be positive")
	}
	limit, _ := chainLimitFor(g, 0)
	if math.Abs(m.Combined.ChainAverage-limit) > 0.1*limit+0.01 {
		t.Fatalf("pooled estimate %v far from limit %v", m.Combined.ChainAverage, limit)
	}
}

func TestMultiChainDeterministic(t *testing.T) {
	g := graph.KarateClub()
	cfg := DefaultConfig(500)
	a, err := EstimateBCParallel(g, 0, cfg, 37, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := EstimateBCParallel(g, 0, cfg, 37, 3)
	if a.Combined.Estimate != b.Combined.Estimate {
		t.Fatal("parallel runs with same seed differ")
	}
	for i := range a.PerChain {
		if a.PerChain[i].Estimate != b.PerChain[i].Estimate {
			t.Fatalf("chain %d differs across runs", i)
		}
	}
}

func TestMultiChainValidation(t *testing.T) {
	g := graph.KarateClub()
	if _, err := EstimateBCParallel(g, 0, DefaultConfig(10), 1, 0); err == nil {
		t.Fatal("zero chains accepted")
	}
	if _, err := EstimateBCParallel(g, 0, Config{Steps: -1}, 1, 2); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestMultiChainEstimatorKinds(t *testing.T) {
	g := graph.KarateClub()
	for _, k := range []EstimatorKind{EstimatorChainAverage, EstimatorPaperEq7, EstimatorProposalSide, EstimatorHarmonic} {
		cfg := DefaultConfig(300)
		cfg.Estimator = k
		m, err := EstimateBCParallel(g, 0, cfg, 41, 2)
		if err != nil {
			t.Fatal(err)
		}
		var want float64
		switch k {
		case EstimatorChainAverage:
			want = m.Combined.ChainAverage
		case EstimatorPaperEq7:
			want = m.Combined.PaperEq7
		case EstimatorProposalSide:
			want = m.Combined.ProposalSide
		case EstimatorHarmonic:
			want = m.Combined.Harmonic
		}
		if m.Combined.Estimate != want {
			t.Fatalf("kind %v not selected in combined result", k)
		}
	}
}

func BenchmarkEstimateBCStep(b *testing.B) {
	g := graph.BarabasiAlbert(5000, 3, rng.New(1))
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One fresh 64-step chain per iteration: measures per-step cost
		// including realistic cache behaviour.
		if _, err := EstimateBC(g, 0, DefaultConfig(64), r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJointStep(b *testing.B) {
	g := graph.BarabasiAlbert(2000, 3, rng.New(1))
	R := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateRelative(g, R, DefaultJointConfig(64), r); err != nil {
			b.Fatal(err)
		}
	}
}
