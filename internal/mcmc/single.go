package mcmc

import (
	"context"
	"fmt"
	"math"

	"bcmh/internal/graph"
	"bcmh/internal/rng"
	"bcmh/internal/sssp"
)

// cancelCheckInterval is how many chain steps pass between context
// cancellation checks inside the step loop. Memo-hit steps cost a few
// nanoseconds, so checking every step would be measurable; the loop
// additionally checks after every full dependency evaluation (memo
// miss), whose BFS dwarfs the check, so the abort latency is bounded
// by max(256 memo-hit steps, one dependency evaluation).
const cancelCheckInterval = 256

// EstimatorKind selects which estimate a Result reports as its primary
// Estimate. All variants are computed on every run (they share the
// chain), so switching kinds re-reads the same Result fields.
type EstimatorKind int

const (
	// EstimatorChainAverage is the standard MH estimator: f averaged
	// over every chain state, a rejected step repeating the current
	// state. This is the estimator the bound of [23] actually concerns
	// and the default.
	EstimatorChainAverage EstimatorKind = iota
	// EstimatorPaperEq7 is the paper's Eq. 7 read literally: f summed
	// over the multiset of accepted states (initial state included)
	// and divided by T+1.
	EstimatorPaperEq7
	// EstimatorProposalSide averages f over the uniformly proposed
	// states — the acceptance test evaluates δ there anyway, so this
	// unbiased estimate (identical in distribution to the uniform
	// source sampler [2]) is free. See DESIGN.md §1.1.
	EstimatorProposalSide
	// EstimatorHarmonic is the corrected consistent estimator of BC(r):
	// with the chain stationary at π ∝ δ, E_π[1/δ] = n⁺/Σδ, and n⁺/n is
	// estimated from the proposal stream; then BC(r) = Σδ/(n(n-1)).
	// An extension beyond the paper, off by default.
	EstimatorHarmonic
)

// String returns the table label of the estimator kind.
func (k EstimatorKind) String() string {
	switch k {
	case EstimatorChainAverage:
		return "chain-avg"
	case EstimatorPaperEq7:
		return "eq7-literal"
	case EstimatorProposalSide:
		return "proposal-side"
	case EstimatorHarmonic:
		return "harmonic"
	default:
		return fmt.Sprintf("EstimatorKind(%d)", int(k))
	}
}

// Config parameterises the single-space sampler. The zero value is not
// valid: Steps must be positive. Defaults chosen by DefaultConfig match
// the paper (uniform proposal, no burn-in, chain-average estimator,
// memoised oracle).
type Config struct {
	// Steps is T, the number of MH iterations; the chain visits T+1
	// states (Eq. 7's normalisation).
	Steps int
	// BurnIn discards this many leading chain states from all chain
	// averages. The paper proves no burn-in is needed (Inequality 12
	// holds from any initial state); nonzero values exist for the
	// ablation T8c.
	BurnIn int
	// Estimator selects the primary estimate (see EstimatorKind).
	Estimator EstimatorKind
	// DegreeProposal proposes states proportionally to degree instead
	// of uniformly (ablation T8b). The proposal-side estimate is
	// importance-corrected accordingly; the chain's acceptance rule is
	// Hastings-corrected so the stationary distribution is unchanged.
	DegreeProposal bool
	// DisableCache turns off dependency memoisation (ablation T8d).
	DisableCache bool
	// InitState fixes the initial state; -1 (default) draws it
	// uniformly at random.
	InitState int
	// TraceEvery, when positive, records the running primary estimate
	// every TraceEvery steps into Result.Trace (experiment F1 series).
	TraceEvery int
	// CollectFTrace records the raw f(v_t) value of every counted chain
	// state into Result.FTrace, feeding the Diagnose convergence
	// diagnostics. One float64 per step of memory.
	CollectFTrace bool
	// CollectProposalTrace records the (importance-weighted) f value of
	// every proposed state into Result.ProposalFTrace — the sample
	// stream behind the ProposalSide estimator. Unlike the chain trace
	// these samples are iid (proposals are drawn independently), so
	// their mean is an unbiased estimate of BC(r) and plain √(Var/T)
	// standard errors apply; internal/rank's confidence intervals are
	// built on this stream. One float64 per step of memory.
	CollectProposalTrace bool
	// AdaptiveEps, when positive, arms the empirical-Bernstein stopping
	// rule (Audibert–Munos–Szepesvári / Maurer–Pontil style, per the
	// follow-up paper arXiv:1810.10094): the proposal-side sample
	// stream — iid, so concentration applies cleanly — is monitored at
	// geometrically spaced checkpoints, and the chain stops as soon as
	// the variance-adaptive half-width drops to AdaptiveEps, instead of
	// always running the μ-planned worst-case budget. Steps then acts
	// as the hard budget the rule may undercut. Zero (the default)
	// disables the rule; a disabled run is bit-identical to one built
	// before the rule existed — the monitor adds no RNG draws.
	AdaptiveEps float64
	// AdaptiveDelta is the failure probability the adaptive rule's
	// confidence sequence spends across its checkpoints (default 0.1;
	// only read when AdaptiveEps is positive).
	AdaptiveDelta float64
}

// DefaultConfig returns the paper-faithful configuration with the given
// number of steps.
func DefaultConfig(steps int) Config {
	return Config{Steps: steps, InitState: -1}
}

// Result carries every estimate and diagnostic from one run.
type Result struct {
	// Estimate is the estimator selected by Config.Estimator.
	Estimate float64
	// ChainAverage, PaperEq7, ProposalSide, Harmonic are the individual
	// estimator variants (always all computed).
	ChainAverage float64
	PaperEq7     float64
	ProposalSide float64
	Harmonic     float64

	// AcceptanceRate is accepted transitions / Steps.
	AcceptanceRate float64
	// UniqueStates is the number of distinct vertices the chain visited.
	UniqueStates int
	// Evals and CacheHits report oracle work (traversals vs memo hits).
	Evals     int
	CacheHits int
	// MaxDepSeen and MeanDepProposal support the empirical μ̂ lower
	// bound: max δ over every state evaluated, and the unbiased mean of
	// δ over uniform proposals. MuHat = MaxDepSeen/MeanDepProposal.
	MaxDepSeen      float64
	MeanDepProposal float64
	// Trace is the running primary estimate at every TraceEvery steps
	// (nil unless requested).
	Trace []float64
	// FTrace holds f(v_t) for every counted chain state (nil unless
	// Config.CollectFTrace was set); feed it to Diagnose.
	FTrace []float64
	// ProposalFTrace holds the importance-weighted f of every proposed
	// state (nil unless Config.CollectProposalTrace was set); its mean
	// is Result.ProposalSide.
	ProposalFTrace []float64

	// StepsRun is the number of MH iterations actually executed: equal
	// to Config.Steps unless the adaptive stopping rule fired first.
	StepsRun int
	// Converged reports whether the adaptive stopping rule fired before
	// the step budget ran out (always false when the rule is disabled).
	Converged bool
	// EBHalfWidth is the empirical-Bernstein half-width at the last
	// checkpoint evaluated (zero when the rule is disabled or no
	// checkpoint was reached).
	EBHalfWidth float64
}

// MuHat returns the empirical lower-bound estimate of μ(target):
// max observed dependency over the unbiased mean dependency. Zero when
// no dependency mass was seen.
func (r *Result) MuHat() float64 {
	if r.MeanDepProposal <= 0 {
		return 0
	}
	return r.MaxDepSeen / r.MeanDepProposal
}

func (c *Config) validate(n int) error {
	if c.Steps <= 0 {
		return fmt.Errorf("mcmc: Steps must be positive, got %d", c.Steps)
	}
	if c.BurnIn < 0 || c.BurnIn > c.Steps {
		return fmt.Errorf("mcmc: BurnIn %d out of [0, Steps=%d]", c.BurnIn, c.Steps)
	}
	if c.InitState >= n {
		return fmt.Errorf("mcmc: InitState %d out of range (n=%d)", c.InitState, n)
	}
	if c.TraceEvery < 0 {
		return fmt.Errorf("mcmc: TraceEvery must be non-negative")
	}
	if c.AdaptiveEps < 0 {
		return fmt.Errorf("mcmc: AdaptiveEps must be non-negative")
	}
	if c.AdaptiveDelta < 0 || c.AdaptiveDelta >= 1 {
		return fmt.Errorf("mcmc: AdaptiveDelta must be in [0,1)")
	}
	return nil
}

// StatOracle is the per-state statistic evaluator a chain runs
// against: Dep(v) returns the non-negative per-vertex score d_v (for
// betweenness, δ_v•(r)) that both the acceptance ratio and the
// estimators read, and Work reports the (evaluations, memo hits) pair
// for work accounting. The BC Oracle implements it natively; measure
// packages plug alternative centralities into the same chain loop by
// implementing this interface — every estimator variant, the adaptive
// stopping rule, and the μ̂ diagnostics carry over unchanged because
// they only ever see Dep values.
type StatOracle interface {
	Dep(v int) float64
	Work() (evals, hits int)
}

// adaptiveFirstCheck is the first empirical-Bernstein checkpoint;
// later checkpoints double (64, 128, 256, ...), so the monitor's cost
// is O(log T) half-width computations per chain.
const adaptiveFirstCheck = 64

// ebHalfWidth is the empirical-Bernstein half-width for t iid samples
// in [0, rng] with empirical variance v and per-checkpoint failure
// probability delta (Maurer–Pontil, Theorem 4 shape):
// sqrt(2·v·ln(3/δ)/t) + 3·rng·ln(3/δ)/t.
func ebHalfWidth(v float64, t int, rng, delta float64) float64 {
	if t <= 0 {
		return math.Inf(1)
	}
	l := math.Log(3 / delta)
	return math.Sqrt(2*v*l/float64(t)) + 3*rng*l/float64(t)
}

// EstimateBC runs the single-space Metropolis–Hastings sampler of §4.2
// to estimate the betweenness score of vertex r in the connected
// undirected graph g.
//
// The chain's state space is V(G); proposals are uniform (Eq. 6) or
// degree-weighted (Hastings-corrected); the move v→v' is accepted with
// probability min{1, δ_{v'}•(r)/δ_v•(r)}, so the stationary
// distribution is P_r[v] ∝ δ_v•(r) (Eq. 5, the optimal sampling
// distribution of [13]).
func EstimateBC(g *graph.Graph, r int, cfg Config, rnd *rng.RNG) (Result, error) {
	return EstimateBCPooled(g, r, cfg, rnd, nil)
}

// EstimateBCPooled is EstimateBC drawing the chain's traversal buffers
// from pool instead of allocating fresh ones — the entry point batch
// front-ends (internal/engine) use so concurrent chains stop paying
// O(n) allocations per run. A nil pool allocates as EstimateBC does.
func EstimateBCPooled(g *graph.Graph, r int, cfg Config, rnd *rng.RNG, pool *BufferPool) (Result, error) {
	return EstimateBCPooledContext(context.Background(), g, r, cfg, rnd, pool)
}

// EstimateBCPooledContext is EstimateBCPooled under a context: the chain
// step loop checks ctx every cancelCheckInterval steps and aborts with
// ctx's error when it is cancelled or past its deadline, so a
// disconnected client or an evicted serving session stops paying for
// traversals it no longer wants. A run that completes is bit-identical
// to EstimateBCPooled — the cancellation check reads the context, never
// the chain state.
func EstimateBCPooledContext(ctx context.Context, g *graph.Graph, r int, cfg Config, rnd *rng.RNG, pool *BufferPool) (Result, error) {
	n := g.N()
	if n < 2 {
		return Result{}, fmt.Errorf("mcmc: graph too small (n=%d)", n)
	}
	if err := cfg.validate(n); err != nil {
		return Result{}, err
	}
	if r < 0 || r >= n {
		// Checked before the pool lookup: building (and caching) a
		// target snapshot for an invalid vertex would panic mid-BFS.
		return Result{}, fmt.Errorf("mcmc: oracle target %d out of range", r)
	}
	var b *chainBuffers
	var tspd *sssp.TargetSPD
	var wtspd *sssp.WeightedTargetSPD
	if pool != nil {
		b = pool.get(g)
		defer pool.put(b)
		tspd = pool.targetSPD(g, r)
		wtspd = pool.weightedTargetSPD(g, r)
	} else {
		b = newChainBuffers(g)
	}
	oracle, err := newOracleBuffered(g, r, !cfg.DisableCache, b, tspd, wtspd, pool)
	if err != nil {
		return Result{}, err
	}
	var degAlias *rng.Alias
	if cfg.DegreeProposal {
		if pool != nil {
			degAlias = pool.degreeAlias(g)
		} else {
			degAlias = degreeAliasFor(g)
		}
	}
	res, err := runSingleChain(ctx, g, oracle, cfg, rnd, b, degAlias)
	res.Evals = oracle.Evals
	res.CacheHits = oracle.Hits
	return res, err
}

// EstimateStatPooled runs the same single-space MH chain against an
// arbitrary statistic oracle — the measure-generic entry point. The
// stationary distribution is ∝ oracle.Dep, and every estimator variant
// reads d/(n−1) exactly as the betweenness chain does, so a measure
// whose per-vertex statistic shares betweenness's normalisation (sum
// over vertices = n(n−1)·Value) reuses the whole estimator stack. The
// pool only supplies the visited-set scratch here (the oracle owns its
// own kernels and memo); nil allocates.
func EstimateStatPooled(g *graph.Graph, oracle StatOracle, cfg Config, rnd *rng.RNG, pool *BufferPool) (Result, error) {
	return EstimateStatPooledContext(context.Background(), g, oracle, cfg, rnd, pool)
}

// EstimateStatPooledContext is EstimateStatPooled under a context (the
// chain loop polls ctx exactly like EstimateBCPooledContext).
func EstimateStatPooledContext(ctx context.Context, g *graph.Graph, oracle StatOracle, cfg Config, rnd *rng.RNG, pool *BufferPool) (Result, error) {
	n := g.N()
	if n < 2 {
		return Result{}, fmt.Errorf("mcmc: graph too small (n=%d)", n)
	}
	if err := cfg.validate(n); err != nil {
		return Result{}, err
	}
	var b *chainBuffers
	if pool != nil {
		b = pool.get(g)
		defer pool.put(b)
	} else {
		b = newChainBuffers(g)
	}
	var degAlias *rng.Alias
	if cfg.DegreeProposal {
		if pool != nil {
			degAlias = pool.degreeAlias(g)
		} else {
			degAlias = degreeAliasFor(g)
		}
	}
	res, err := runSingleChain(ctx, g, oracle, cfg, rnd, b, degAlias)
	res.Evals, res.CacheHits = oracle.Work()
	return res, err
}

// f(v) = δ_v•(r)/(n-1): the paper's per-state statistic, ∈ [0,1).
func fOf(dep float64, n int) float64 { return dep / float64(n-1) }

// acceptMH returns whether to move given current and proposed
// dependency scores, with the zero-state conventions from DESIGN.md:
// δ'>0,δ=0 → accept (ratio ∞); δ'=0,δ>0 → reject (ratio 0);
// 0/0 → accept (the chain must escape zero-mass states).
func acceptMH(depCur, depNew, hastings float64, rnd *rng.RNG) bool {
	if depCur == 0 {
		return true
	}
	if depNew == 0 {
		return false
	}
	ratio := depNew / depCur * hastings
	if ratio >= 1 {
		return true
	}
	return rnd.Float64() < ratio
}

// runSingleChain is the core loop shared by EstimateBC and the
// multi-chain driver (which aggregates partial results itself). The
// chain's visited set lives in b's epoch-stamped array; degAlias, when
// non-nil, is the (possibly pool-cached) degree-proposal table for g
// (built locally when cfg.DegreeProposal is set and none was passed).
// The loop polls ctx every cancelCheckInterval steps; on cancellation
// it returns the partial Result (for work accounting) together with
// ctx's error.
func runSingleChain(ctx context.Context, g *graph.Graph, oracle StatOracle, cfg Config, rnd *rng.RNG, b *chainBuffers, degAlias *rng.Alias) (Result, error) {
	n := g.N()
	var res Result

	// A context that can never be cancelled (context.Background and
	// friends) has a nil Done channel; skip the per-step polling
	// entirely for those.
	cancellable := ctx.Done() != nil
	if cancellable {
		if err := ctx.Err(); err != nil {
			return res, err
		}
	}

	// Degree-weighted proposals (ablation T8b): g(v) = deg(v)/2m; the
	// Hastings factor for the acceptance of v→v' is g(v)/g(v') =
	// deg(v)/deg(v'). The fallback build keeps the proposal stream and
	// the Hastings correction consistent even if a caller forgets to
	// thread the cached table.
	if cfg.DegreeProposal && degAlias == nil {
		degAlias = degreeAliasFor(g)
	}
	propose := func() int {
		if degAlias != nil {
			return degAlias.Draw(rnd)
		}
		return rnd.Intn(n)
	}

	cur := cfg.InitState
	if cur < 0 {
		cur = rnd.Intn(n)
	}
	depCur := oracle.Dep(cur)
	res.MaxDepSeen = depCur

	visStamp, visEpoch := b.visStamp, b.nextVisEpoch()
	uniqueStates := 0
	visit := func(v int) {
		if visStamp[v] != visEpoch {
			visStamp[v] = visEpoch
			uniqueStates++
		}
	}
	visit(cur)

	// Accumulators. "Counted" sums skip the first BurnIn states.
	var (
		chainSum    float64 // Σ f over chain states (incl. repeats)
		chainStates int
		eq7Sum      float64 // Σ f over accepted states only
		propSum     float64 // Σ importance-weighted f over proposals
		propCount   int
		propPosFrac float64 // importance-weighted count of proposals with δ>0 (for n⁺/n)
		invSum      float64 // Σ 1/δ over chain states with δ>0
		invCount    int
		depPropSum  float64 // Σ δ over uniform-equivalent proposals
		accepted    int
	)
	// Adaptive stopping state. The monitored stream is the
	// importance-weighted proposal-side f values — iid draws, so the
	// empirical-Bernstein confidence sequence applies without any
	// mixing argument. Welford's recurrence keeps mean and variance in
	// O(1) per step; stepsRun only moves off cfg.Steps when the rule
	// fires, so a disabled run normalises exactly as before.
	adaptive := cfg.AdaptiveEps > 0
	adaptiveDelta := cfg.AdaptiveDelta
	if adaptiveDelta == 0 {
		adaptiveDelta = 0.1
	}
	var (
		welMean, welM2 float64
		fRange         = 1.0 // exact for uniform proposals: f ∈ [0,1)
		nextCheck      = adaptiveFirstCheck
		checkIdx       = 0
	)
	stepsRun := cfg.Steps

	countState := func(dep float64, stateIdx int) {
		if stateIdx < cfg.BurnIn {
			return
		}
		f := fOf(dep, n)
		chainSum += f
		chainStates++
		if cfg.CollectFTrace {
			res.FTrace = append(res.FTrace, f)
		}
		if dep > 0 {
			invSum += 1 / dep
			invCount++
		}
	}
	// State 0 is the initial state; Eq. 7's multiset includes it.
	countState(depCur, 0)
	eq7Sum += fOf(depCur, n)

	finish := func() {
		// Chain average over counted states.
		if chainStates > 0 {
			res.ChainAverage = chainSum / float64(chainStates)
		}
		// Eq. 7 literal: accepted-state sum over T+1 (T = the steps
		// actually run, which only differs from cfg.Steps when the
		// adaptive rule stopped early).
		res.PaperEq7 = eq7Sum / float64(stepsRun+1)
		if propCount > 0 {
			res.ProposalSide = propSum / float64(propCount)
		}
		// Harmonic correction: Σδ ≈ n·p⁺ / mean(1/δ);
		// BC = Σδ/(n(n-1)) ⇒ BC ≈ p⁺ / (mean(1/δ)·(n-1)).
		if invCount > 0 && propCount > 0 {
			pPos := propPosFrac / float64(propCount)
			meanInv := invSum / float64(invCount)
			if meanInv > 0 {
				res.Harmonic = pPos / (meanInv * float64(n-1))
			}
		}
		switch cfg.Estimator {
		case EstimatorChainAverage:
			res.Estimate = res.ChainAverage
		case EstimatorPaperEq7:
			res.Estimate = res.PaperEq7
		case EstimatorProposalSide:
			res.Estimate = res.ProposalSide
		case EstimatorHarmonic:
			res.Estimate = res.Harmonic
		}
	}

	evalsSeen, _ := oracle.Work()
	for t := 1; t <= cfg.Steps; t++ {
		if cancellable && t%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return res, err
			}
		}
		prop := propose()
		depNew := oracle.Dep(prop)
		// A memo miss just paid a full traversal; re-check the context
		// so a chain stuck in cold-cache evaluations (memo disabled, or
		// a large state space early in the run) aborts within one
		// evaluation instead of cancelCheckInterval of them.
		if cancellable {
			if evals, _ := oracle.Work(); evals != evalsSeen {
				evalsSeen = evals
				if err := ctx.Err(); err != nil {
					return res, err
				}
			}
		}
		if depNew > res.MaxDepSeen {
			res.MaxDepSeen = depNew
		}
		// Proposal-side statistics. With uniform proposals the weight
		// is 1; with degree proposals each draw is importance-weighted
		// by (1/n)/g(v') = 2m/(n·deg(v')).
		weight := 1.0
		if cfg.DegreeProposal {
			weight = 2 * float64(g.M()) / (float64(n) * float64(g.Degree(prop)))
		}
		propSum += weight * fOf(depNew, n)
		depPropSum += weight * depNew
		if cfg.CollectProposalTrace {
			res.ProposalFTrace = append(res.ProposalFTrace, weight*fOf(depNew, n))
		}
		if depNew > 0 {
			propPosFrac += weight
		}
		propCount++
		if adaptive {
			fw := weight * fOf(depNew, n)
			d := fw - welMean
			welMean += d / float64(propCount)
			welM2 += d * (fw - welMean)
			if fw > fRange {
				// Degree-weighted samples can exceed 1; widen the range
				// term to the observed maximum (a heuristic there — the
				// rule stays exact for the uniform proposal, where 1
				// bounds f outright).
				fRange = fw
			}
		}

		hastings := 1.0
		if cfg.DegreeProposal {
			hastings = float64(g.Degree(cur)) / float64(g.Degree(prop))
		}
		if acceptMH(depCur, depNew, hastings, rnd) {
			cur = prop
			depCur = depNew
			accepted++
			visit(cur)
			eq7Sum += fOf(depCur, n)
		}
		countState(depCur, t)
		if cfg.TraceEvery > 0 && t%cfg.TraceEvery == 0 {
			finish()
			res.Trace = append(res.Trace, res.Estimate)
		}
		if adaptive && (t == nextCheck || t == cfg.Steps) {
			// Union-bound spending across checkpoints: δ_i =
			// δ/((i+1)(i+2)) telescopes to δ over all i ≥ 0.
			deltaI := adaptiveDelta / float64((checkIdx+1)*(checkIdx+2))
			variance := welM2 / float64(propCount)
			res.EBHalfWidth = ebHalfWidth(variance, propCount, fRange, deltaI)
			checkIdx++
			nextCheck *= 2
			if res.EBHalfWidth <= cfg.AdaptiveEps {
				stepsRun = t
				res.Converged = true
				break
			}
		}
	}
	finish()
	res.StepsRun = stepsRun
	res.AcceptanceRate = float64(accepted) / float64(stepsRun)
	res.UniqueStates = uniqueStates
	if propCount > 0 {
		res.MeanDepProposal = depPropSum / float64(propCount)
	}
	return res, nil
}
