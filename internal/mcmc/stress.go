package mcmc

import (
	"fmt"

	"bcmh/internal/brandes"
	"bcmh/internal/graph"
	"bcmh/internal/rng"
	"bcmh/internal/sssp"
)

// Stress-index estimation — the paper's conclusion proposes that the
// MH technique generalises to other shortest-path indices; this file
// realises that for stress centrality. The chain is identical in shape
// to §4.2's (uniform proposals, acceptance min{1, δS_{v'}/δS_v}), with
// stationary distribution ∝ the stress dependency column, and the same
// estimator menu applies with stress scaling: Stress(r) = Σ_v δS_v(r).

// StressResult carries the stress-chain estimates, all targeting the
// raw ordered-pair count Stress(r).
type StressResult struct {
	// ProposalSide is the unbiased estimate n·mean(δS over uniform
	// proposals).
	ProposalSide float64
	// Harmonic is the corrected chain-based estimate
	// n⁺-hat / mean_π(1/δS).
	Harmonic float64
	// ChainWeightedMean is what the raw chain average converges to:
	// the δS-weighted mean Σδ²/Σδ — reported for the same bias analysis
	// as the betweenness chain (it does NOT estimate Stress(r)).
	ChainWeightedMean float64
	// AcceptanceRate and work accounting, as in Result.
	AcceptanceRate float64
	UniqueStates   int
	Evals          int
	CacheHits      int
}

// stressOracle memoises δS_v•(target) evaluations.
type stressOracle struct {
	g      *graph.Graph
	c      *sssp.Computer
	delta  []float64
	target int
	cache  map[int]float64
	evals  int
	hits   int
}

func (o *stressOracle) dep(v int) float64 {
	if d, ok := o.cache[v]; ok {
		o.hits++
		return d
	}
	o.evals++
	d := brandes.StressDependencyOnTarget(o.c, o.delta, v, o.target)
	o.cache[v] = d
	return d
}

// EstimateStress runs a single-space MH chain targeting
// P[v] ∝ δS_v•(r) and returns stress estimates for vertex r.
func EstimateStress(g *graph.Graph, r int, steps int, rnd *rng.RNG) (StressResult, error) {
	n := g.N()
	if n < 2 {
		return StressResult{}, fmt.Errorf("mcmc: graph too small (n=%d)", n)
	}
	if r < 0 || r >= n {
		return StressResult{}, fmt.Errorf("mcmc: stress target %d out of range", r)
	}
	if steps <= 0 {
		return StressResult{}, fmt.Errorf("mcmc: steps must be positive")
	}
	o := &stressOracle{
		g:      g,
		c:      sssp.NewComputer(g),
		delta:  make([]float64, n),
		target: r,
		cache:  make(map[int]float64),
	}
	cur := rnd.Intn(n)
	depCur := o.dep(cur)
	visited := map[int]bool{cur: true}
	var (
		chainSum, chainSq float64
		invSum            float64
		invCount          int
		propSum           float64
		propPos           int
		accepted          int
	)
	count := func(dep float64) {
		chainSum += dep
		chainSq += dep * dep
		if dep > 0 {
			invSum += 1 / dep
			invCount++
		}
	}
	count(depCur)
	for t := 1; t <= steps; t++ {
		prop := rnd.Intn(n)
		depNew := o.dep(prop)
		propSum += depNew
		if depNew > 0 {
			propPos++
		}
		if acceptMH(depCur, depNew, 1, rnd) {
			cur, depCur = prop, depNew
			accepted++
			visited[cur] = true
		}
		count(depCur)
	}
	var res StressResult
	res.ProposalSide = propSum / float64(steps) * float64(n)
	if invCount > 0 && steps > 0 {
		pPos := float64(propPos) / float64(steps)
		meanInv := invSum / float64(invCount)
		if meanInv > 0 {
			res.Harmonic = float64(n) * pPos / meanInv
		}
	}
	if chainSum > 0 {
		res.ChainWeightedMean = chainSq / chainSum
	}
	res.AcceptanceRate = float64(accepted) / float64(steps)
	res.UniqueStates = len(visited)
	res.Evals = o.evals
	res.CacheHits = o.hits
	return res, nil
}
