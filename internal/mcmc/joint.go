package mcmc

import (
	"fmt"
	"math"

	"bcmh/internal/graph"
	"bcmh/internal/rng"
)

// JointConfig parameterises the joint-space sampler of §4.3.
type JointConfig struct {
	// Steps is T, the number of MH iterations over the joint space
	// R × V(G); the chain visits T+1 states.
	Steps int
	// BurnIn discards this many leading chain states (paper: none
	// needed; ablation only).
	BurnIn int
	// DisableCache turns off dependency memoisation.
	DisableCache bool
	// InitR / InitV fix the initial state; -1 draws uniformly.
	InitR, InitV int
}

// DefaultJointConfig returns the paper-faithful configuration.
func DefaultJointConfig(steps int) JointConfig {
	return JointConfig{Steps: steps, InitR: -1, InitV: -1}
}

// JointResult carries the joint-space sampler's estimates.
//
// Index convention: everything is indexed by position in R as passed to
// EstimateRelative; RelScore[i][j] estimates the relative betweenness
// score of R[i] with respect to R[j].
type JointResult struct {
	R []int
	// MSize[j] = |M(j)|: chain states whose r-component is R[j]
	// (after burn-in, repeats included, as in Eq. 22).
	MSize []int
	// RelScore[i][j] = (1/|M(j)|) Σ_{s∈M(j)} min{1, δ_{s.v}(ri)/δ_{s.v}(rj)}
	// — the numerator of Eq. 22, the paper's estimate of BC_{rj}(ri)
	// (Eq. 23). NaN when M(j) is empty.
	RelScore [][]float64
	// RatioEst[i][j] = RelScore[i][j]/RelScore[j][i]: Eq. 22's estimate
	// of BC(ri)/BC(rj). NaN when undefined.
	RatioEst [][]float64
	// AcceptanceRate is accepted transitions / Steps.
	AcceptanceRate float64
	// UniqueStates counts distinct v-components visited.
	UniqueStates int
	// Evals / CacheHits: SetOracle work accounting.
	Evals     int
	CacheHits int
}

// ratio01 is min{1, x/y} with the zero conventions used throughout
// (see DESIGN.md): y = 0 saturates to 1 (including 0/0, so a chain
// stuck on a zero-mass state contributes symmetrically), x = 0, y > 0
// gives 0.
func ratio01(x, y float64) float64 {
	if y == 0 {
		return 1
	}
	if x >= y {
		return 1
	}
	return x / y
}

// EstimateRelative runs the joint-space Metropolis–Hastings sampler of
// §4.3 on states ⟨r, v⟩ ∈ R × V(G): both components are re-proposed
// uniformly each step and the move is accepted with probability
// min{1, δ_{v'}•(r')/δ_v•(r)} (Eq. 17), giving stationary distribution
// P[r,v] ∝ δ_v•(r) (Eq. 18). The per-r sub-chains then estimate
// relative betweenness scores (Eq. 22/23) and, via the Bennett-identity
// Theorem 3, betweenness ratios.
func EstimateRelative(g *graph.Graph, R []int, cfg JointConfig, rnd *rng.RNG) (JointResult, error) {
	n := g.N()
	k := len(R)
	if n < 2 {
		return JointResult{}, fmt.Errorf("mcmc: graph too small (n=%d)", n)
	}
	if k < 2 {
		return JointResult{}, fmt.Errorf("mcmc: target set needs >= 2 vertices, got %d", k)
	}
	if cfg.Steps <= 0 {
		return JointResult{}, fmt.Errorf("mcmc: Steps must be positive, got %d", cfg.Steps)
	}
	if cfg.BurnIn < 0 || cfg.BurnIn > cfg.Steps {
		return JointResult{}, fmt.Errorf("mcmc: BurnIn %d out of [0, Steps=%d]", cfg.BurnIn, cfg.Steps)
	}
	if cfg.InitR >= k || cfg.InitV >= n {
		return JointResult{}, fmt.Errorf("mcmc: initial state (%d,%d) out of range", cfg.InitR, cfg.InitV)
	}
	oracle, err := NewSetOracle(g, R, !cfg.DisableCache)
	if err != nil {
		return JointResult{}, err
	}

	res := JointResult{
		R:        append([]int(nil), R...),
		MSize:    make([]int, k),
		RelScore: make([][]float64, k),
		RatioEst: make([][]float64, k),
	}
	sums := make([][]float64, k) // sums[j][i] accumulates min-ratios over M(j)
	for i := 0; i < k; i++ {
		res.RelScore[i] = make([]float64, k)
		res.RatioEst[i] = make([]float64, k)
		sums[i] = make([]float64, k)
	}

	curR := cfg.InitR
	if curR < 0 {
		curR = rnd.Intn(k)
	}
	curV := cfg.InitV
	if curV < 0 {
		curV = rnd.Intn(n)
	}
	depsCur := oracle.Deps(curV)
	visited := map[int]bool{curV: true}

	// countState folds chain state (curR, curV) into M(curR)'s sums.
	countState := func(stateIdx int) {
		if stateIdx < cfg.BurnIn {
			return
		}
		j := curR
		dj := depsCur[j]
		res.MSize[j]++
		for i := 0; i < k; i++ {
			sums[j][i] += ratio01(depsCur[i], dj)
		}
	}
	countState(0)

	accepted := 0
	for t := 1; t <= cfg.Steps; t++ {
		propR := rnd.Intn(k)
		propV := rnd.Intn(n)
		depsNew := oracle.Deps(propV)
		if acceptMH(depsCur[curR], depsNew[propR], 1, rnd) {
			curR, curV = propR, propV
			depsCur = depsNew
			accepted++
			visited[curV] = true
		}
		countState(t)
	}

	for j := 0; j < k; j++ {
		for i := 0; i < k; i++ {
			if res.MSize[j] > 0 {
				res.RelScore[i][j] = sums[j][i] / float64(res.MSize[j])
			} else {
				res.RelScore[i][j] = math.NaN()
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			denom := res.RelScore[j][i]
			if res.MSize[i] == 0 || res.MSize[j] == 0 || denom == 0 {
				res.RatioEst[i][j] = math.NaN()
				continue
			}
			res.RatioEst[i][j] = res.RelScore[i][j] / denom
		}
	}
	res.AcceptanceRate = float64(accepted) / float64(cfg.Steps)
	res.UniqueStates = len(visited)
	res.Evals = oracle.Evals
	res.CacheHits = oracle.Hits
	return res, nil
}
