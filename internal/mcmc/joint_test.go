package mcmc

import (
	"math"
	"testing"

	"bcmh/internal/brandes"
	"bcmh/internal/graph"
	"bcmh/internal/rng"
)

func pickSpreadTargets(g *graph.Graph, k int) []int {
	bc := brandes.BC(g)
	type pair struct {
		v  int
		bc float64
	}
	ps := make([]pair, len(bc))
	for v, b := range bc {
		ps[v] = pair{v, b}
	}
	// Selection sort by descending BC (small n; simple and deterministic).
	for i := 0; i < len(ps); i++ {
		best := i
		for j := i + 1; j < len(ps); j++ {
			if ps[j].bc > ps[best].bc {
				best = j
			}
		}
		ps[i], ps[best] = ps[best], ps[i]
	}
	out := make([]int, 0, k)
	stride := len(ps) / (2 * k) // take from the top half, spread out
	if stride == 0 {
		stride = 1
	}
	for i := 0; len(out) < k && i < len(ps); i += stride {
		out = append(out, ps[i].v)
	}
	return out
}

func TestRatio01(t *testing.T) {
	cases := []struct{ x, y, want float64 }{
		{2, 4, 0.5},
		{4, 2, 1},
		{3, 3, 1},
		{0, 5, 0},
		{5, 0, 1},
		{0, 0, 1},
	}
	for _, c := range cases {
		if got := ratio01(c.x, c.y); got != c.want {
			t.Fatalf("ratio01(%v,%v) = %v want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestBennettIdentityExact(t *testing.T) {
	// Theorem 3's backbone: WeightedLimit[i][j]/WeightedLimit[j][i]
	// must equal BC(ri)/BC(rj) exactly (the Bennett acceptance-ratio
	// identity) — checked on exact ground truth.
	g := graph.KarateClub()
	R := []int{0, 2, 33, 8}
	gt, err := ExactRelative(g, R)
	if err != nil {
		t.Fatal(err)
	}
	for i := range R {
		for j := range R {
			if i == j {
				continue
			}
			got := gt.WeightedLimit[i][j] / gt.WeightedLimit[j][i]
			if math.Abs(got-gt.Ratio[i][j]) > 1e-10 {
				t.Fatalf("Bennett identity broken at (%d,%d): %v vs %v",
					i, j, got, gt.Ratio[i][j])
			}
		}
	}
}

func TestJointRatioConverges(t *testing.T) {
	// Eq. 22's estimate of BC(ri)/BC(rj) is consistent: the sound part
	// of the paper. Moderate budget, generous tolerance.
	g := graph.KarateClub()
	R := pickSpreadTargets(g, 4)
	gt, err := ExactRelative(g, R)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EstimateRelative(g, R, DefaultJointConfig(60000), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range R {
		for j := range R {
			if i == j || math.IsNaN(gt.Ratio[i][j]) {
				continue
			}
			got := res.RatioEst[i][j]
			if math.IsNaN(got) {
				t.Fatalf("ratio (%d,%d) NaN; MSize %v", i, j, res.MSize)
			}
			if math.Abs(got-gt.Ratio[i][j])/gt.Ratio[i][j] > 0.25 {
				t.Fatalf("ratio (%d,%d): est %v exact %v", i, j, got, gt.Ratio[i][j])
			}
		}
	}
}

func TestJointRelScoreConvergesToWeightedLimit(t *testing.T) {
	// The M(j) chain average converges to WeightedLimit, not to the
	// uniform-average Eq. 23 — the definition gap DESIGN.md §1.1 calls
	// out and experiment F3 charts.
	g := graph.KarateClub()
	R := []int{0, 33}
	gt, err := ExactRelative(g, R)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EstimateRelative(g, R, DefaultJointConfig(80000), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range R {
		for j := range R {
			if i == j {
				continue
			}
			if math.Abs(res.RelScore[i][j]-gt.WeightedLimit[i][j]) > 0.05 {
				t.Fatalf("RelScore(%d,%d) = %v, want weighted limit %v (Eq.23 uniform = %v)",
					i, j, res.RelScore[i][j], gt.WeightedLimit[i][j], gt.Eq23[i][j])
			}
		}
	}
}

func TestJointDiagonal(t *testing.T) {
	g := graph.KarateClub()
	R := []int{0, 2, 33}
	res, err := EstimateRelative(g, R, DefaultJointConfig(20000), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range R {
		// min{1, δ/δ} = 1 always: diagonal rel-scores are exactly 1,
		// diagonal ratios exactly 1.
		if math.Abs(res.RelScore[i][i]-1) > 1e-12 {
			t.Fatalf("diagonal rel score %v", res.RelScore[i][i])
		}
		if math.Abs(res.RatioEst[i][i]-1) > 1e-12 {
			t.Fatalf("diagonal ratio %v", res.RatioEst[i][i])
		}
	}
}

func TestJointMSizesSumToStates(t *testing.T) {
	g := graph.KarateClub()
	R := []int{0, 1, 2}
	cfg := DefaultJointConfig(5000)
	res, err := EstimateRelative(g, R, cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, m := range res.MSize {
		total += m
	}
	if total != cfg.Steps+1 {
		t.Fatalf("M sizes sum %d want %d", total, cfg.Steps+1)
	}
	// Higher-BC targets hold the chain longer: M-size ordering should
	// track BC ordering for well-separated targets.
	bc := brandes.BC(g)
	if bc[0] > bc[1] && bc[1] > bc[2] {
		if !(res.MSize[0] > res.MSize[2]) {
			t.Fatalf("M sizes %v don't reflect BC ordering", res.MSize)
		}
	}
}

func TestJointStationaryMarginal(t *testing.T) {
	// P[r,v] ∝ δ_v(r): the marginal over r should be ∝ Σ_v δ_v(r) =
	// BC(r)·n(n-1). Compare empirical M sizes against exact BC shares.
	g := graph.KarateClub()
	R := []int{0, 2, 33}
	gt, _ := ExactRelative(g, R)
	res, err := EstimateRelative(g, R, DefaultJointConfig(120000), rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	var bcSum float64
	for _, b := range gt.BC {
		bcSum += b
	}
	total := 0
	for _, m := range res.MSize {
		total += m
	}
	for i := range R {
		want := gt.BC[i] / bcSum
		got := float64(res.MSize[i]) / float64(total)
		if math.Abs(got-want) > 0.03 {
			t.Fatalf("marginal share of r%d: %v want %v", i, got, want)
		}
	}
}

func TestJointDeterminism(t *testing.T) {
	g := graph.KarateClub()
	R := []int{0, 33}
	a, err := EstimateRelative(g, R, DefaultJointConfig(2000), rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := EstimateRelative(g, R, DefaultJointConfig(2000), rng.New(17))
	if a.RelScore[0][1] != b.RelScore[0][1] || a.AcceptanceRate != b.AcceptanceRate {
		t.Fatal("joint sampler not deterministic")
	}
}

func TestJointValidation(t *testing.T) {
	g := graph.KarateClub()
	if _, err := EstimateRelative(g, []int{3}, DefaultJointConfig(10), rng.New(1)); err == nil {
		t.Fatal("singleton R accepted")
	}
	if _, err := EstimateRelative(g, []int{3, 4}, DefaultJointConfig(0), rng.New(1)); err == nil {
		t.Fatal("zero steps accepted")
	}
	if _, err := EstimateRelative(g, []int{3, 99}, DefaultJointConfig(10), rng.New(1)); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if _, err := EstimateRelative(g, []int{3, 3}, DefaultJointConfig(10), rng.New(1)); err == nil {
		t.Fatal("duplicate target accepted")
	}
	cfg := DefaultJointConfig(10)
	cfg.BurnIn = 11
	if _, err := EstimateRelative(g, []int{3, 4}, cfg, rng.New(1)); err == nil {
		t.Fatal("excess burn-in accepted")
	}
	cfg = DefaultJointConfig(10)
	cfg.InitR = 7
	if _, err := EstimateRelative(g, []int{3, 4}, cfg, rng.New(1)); err == nil {
		t.Fatal("bad InitR accepted")
	}
}

func TestJointZeroBCMembers(t *testing.T) {
	// A star leaf in R: its BC is 0, ratios against it are NaN-or-
	// saturated; the sampler must not crash and the center/leaf rel
	// score must behave: BC_leaf(center) ... M(leaf) will be tiny or
	// empty since δ(leaf)=0 everywhere.
	g := graph.Star(10)
	R := []int{0, 3} // center, leaf
	res, err := EstimateRelative(g, R, DefaultJointConfig(20000), rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	// Chain should spend essentially all its time on the center.
	if res.MSize[0] < 19000 {
		t.Fatalf("center M size %v; chain should concentrate there", res.MSize[0])
	}
	// RelScore[leaf][center] = E over M(center) of min{1, δ(leaf)/δ(center)} = 0.
	if res.RelScore[1][0] != 0 {
		t.Fatalf("leaf-vs-center rel score %v want 0", res.RelScore[1][0])
	}
}

func TestExactRelativeValidation(t *testing.T) {
	g := graph.Path(5)
	if _, err := ExactRelative(g, []int{1}); err == nil {
		t.Fatal("singleton accepted")
	}
	if _, err := ExactRelative(g, []int{1, 9}); err == nil {
		t.Fatal("out of range accepted")
	}
}

func TestExactRelativeEq23Properties(t *testing.T) {
	g := graph.KarateClub()
	R := []int{0, 2, 33}
	gt, err := ExactRelative(g, R)
	if err != nil {
		t.Fatal(err)
	}
	for i := range R {
		if gt.Eq23[i][i] != 1 {
			t.Fatalf("Eq23 diagonal %v", gt.Eq23[i][i])
		}
		for j := range R {
			if gt.Eq23[i][j] < 0 || gt.Eq23[i][j] > 1 {
				t.Fatalf("Eq23 out of [0,1]: %v", gt.Eq23[i][j])
			}
			if gt.WeightedLimit[i][j] < 0 || gt.WeightedLimit[i][j] > 1+1e-12 {
				t.Fatalf("weighted limit out of [0,1]: %v", gt.WeightedLimit[i][j])
			}
		}
	}
}
