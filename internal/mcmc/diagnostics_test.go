package mcmc

import (
	"math"
	"testing"

	"bcmh/internal/graph"
	"bcmh/internal/rng"
)

func TestFTraceCollection(t *testing.T) {
	g := graph.KarateClub()
	cfg := DefaultConfig(500)
	cfg.CollectFTrace = true
	res, err := EstimateBC(g, 0, cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FTrace) != 501 { // T+1 counted states, no burn-in
		t.Fatalf("trace length %d", len(res.FTrace))
	}
	// Trace mean must equal the chain average exactly.
	var sum float64
	for _, f := range res.FTrace {
		sum += f
	}
	if math.Abs(sum/501-res.ChainAverage) > 1e-12 {
		t.Fatalf("trace mean %v != chain average %v", sum/501, res.ChainAverage)
	}
	// Burn-in shortens the counted trace.
	cfg.BurnIn = 100
	res, _ = EstimateBC(g, 0, cfg, rng.New(3))
	if len(res.FTrace) != 401 {
		t.Fatalf("burn-in trace length %d", len(res.FTrace))
	}
}

func TestFTraceOffByDefault(t *testing.T) {
	g := graph.KarateClub()
	res, err := EstimateBC(g, 0, DefaultConfig(100), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.FTrace != nil {
		t.Fatal("f-trace collected without being requested")
	}
}

func TestDiagnose(t *testing.T) {
	g := graph.BarabasiAlbert(300, 3, rng.New(7))
	cfg := DefaultConfig(5000)
	cfg.CollectFTrace = true
	res, err := EstimateBC(g, 0, cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	d, err := Diagnose(res.FTrace)
	if err != nil {
		t.Fatal(err)
	}
	if d.N != 5001 {
		t.Fatalf("N %d", d.N)
	}
	if math.Abs(d.Mean-res.ChainAverage) > 1e-12 {
		t.Fatalf("diagnose mean %v vs %v", d.Mean, res.ChainAverage)
	}
	if d.ESS <= 0 || d.ESS > float64(d.N) {
		t.Fatalf("ESS %v out of range", d.ESS)
	}
	// MH chains with rejections have positive lag-1 autocorrelation.
	if d.Lag1Autocorr <= 0 {
		t.Fatalf("lag-1 autocorr %v, expected positive for an MH chain", d.Lag1Autocorr)
	}
	if d.MCSE <= 0 {
		t.Fatalf("MCSE %v", d.MCSE)
	}
	// A converged chain should pass Geweke most of the time; allow a
	// generous band since this is a single realisation.
	if math.Abs(d.GewekeZ) > 6 {
		t.Fatalf("Geweke z %v suspiciously large", d.GewekeZ)
	}
}

func TestDiagnoseShortTrace(t *testing.T) {
	if _, err := Diagnose(make([]float64, 5)); err == nil {
		t.Fatal("short trace accepted")
	}
}

func TestDiagnoseConstantTrace(t *testing.T) {
	trace := make([]float64, 100)
	for i := range trace {
		trace[i] = 0.5
	}
	d, err := Diagnose(trace)
	if err != nil {
		t.Fatal(err)
	}
	if d.Variance != 0 || d.GewekeZ != 0 || d.MCSE != 0 {
		t.Fatalf("constant trace diagnostics %+v", d)
	}
}
