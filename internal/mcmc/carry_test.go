package mcmc

import (
	"reflect"
	"testing"

	"bcmh/internal/graph"
	"bcmh/internal/rng"
)

// carryTestGraph builds the block-structured graph the carry pins run
// on: an 8-cycle (one biconnected block, vertices 0–7), a bridge 7–8,
// and a tail path 8–9–10–11–12 (each edge its own block). Every σ on
// it is a power of two — the 8-cycle contributes σ=2 for antipodal
// pairs, everything else is unique — so dependency values are exact
// dyadic rationals and the block-invariance theorem holds bit-for-bit
// in float64, not just as reals. The chord {8,12} closes the tail into
// an odd (5-)cycle, keeping every σ there at 1.
func carryTestGraph() *graph.Graph {
	b := graph.NewBuilder(13)
	for i := 0; i < 8; i++ {
		b.AddEdge(i, (i+1)%8)
	}
	for i := 8; i < 12; i++ {
		b.AddEdge(i-1, i)
	}
	b.AddEdge(11, 12)
	return b.MustBuild()
}

// TestChainCarryAcrossVersions is the acceptance pin for memo
// carry-over: a mutation confined to the tail blocks must leave chains
// targeting the cycle block running on their warm memos — zero
// discards, at least one carry, and estimates bit-identical to a run
// on the unmutated graph (δ_v(target) is invariant for every state
// when the target's block is untouched, and the graph's power-of-two
// σ values make that exact in floating point).
func TestChainCarryAcrossVersions(t *testing.T) {
	g := carryTestGraph()
	const target, seed = 2, 99
	cfg := DefaultConfig(400)

	ref, err := EstimateBCPooled(g, target, cfg, rng.New(seed), nil)
	if err != nil {
		t.Fatal(err)
	}

	pool := NewBufferPool(g)
	warm, err := EstimateBCPooled(g, target, cfg, rng.New(seed), pool)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, ref) {
		t.Fatal("pooled warm run differs from unpooled reference")
	}

	// Mutate only the tail: the affected blocks are the path edges from
	// the cut vertex 8 outward; the cycle (and the target) stay clean.
	edits := []graph.Edit{{Op: graph.EditAdd, U: 8, V: 12}}
	affected := graph.AffectedByEdits(g, [][2]int{{8, 12}})
	for v := 0; v <= 7; v++ {
		if affected[v] {
			t.Fatalf("cycle vertex %d should not be affected", v)
		}
	}
	if !affected[10] {
		t.Fatal("tail should be affected")
	}
	next, _, err := graph.ApplyEditsOverlay(g, edits)
	if err != nil {
		t.Fatal(err)
	}
	pool.Advance(next, affected)

	got, err := EstimateBCPooled(next, target, cfg, rng.New(seed), pool)
	if err != nil {
		t.Fatal(err)
	}
	// Whether a buffer survives the sync.Pool round trip is up to the
	// runtime (the race detector drops Puts at random), so only the
	// stable half is pinned here: a carry-eligible mutation must never
	// discard. The deterministic carried/discarded counts are pinned in
	// TestMemoCarryDecision below.
	if _, discarded := pool.CarryStats(); discarded != 0 {
		t.Fatalf("carry-eligible mutation discarded %d memos", discarded)
	}
	// Same trajectory, same estimates — only the work accounting may
	// differ (affected states are re-evaluated instead of memo-served).
	gotCmp, refCmp := got, ref
	gotCmp.Evals, gotCmp.CacheHits = 0, 0
	refCmp.Evals, refCmp.CacheHits = 0, 0
	if !reflect.DeepEqual(gotCmp, refCmp) {
		t.Fatalf("carried estimate differs from unmutated reference:\n%+v\nvs\n%+v", got, ref)
	}
	// Cross-check the float-exactness claim without carry in the mix: a
	// cold pool on the mutated graph must agree too.
	fresh, err := EstimateBCPooled(next, target, cfg, rng.New(seed), NewBufferPool(next))
	if err != nil {
		t.Fatal(err)
	}
	freshCmp := fresh
	freshCmp.Evals, freshCmp.CacheHits = 0, 0
	if !reflect.DeepEqual(freshCmp, refCmp) {
		t.Fatal("cold run on mutated graph differs from unmutated reference")
	}

	// Old snapshots stay serviceable from the same pool (backward
	// reseat): the estimate on g must still match the original.
	back, err := EstimateBCPooled(g, target, cfg, rng.New(seed), pool)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, ref) {
		t.Fatal("old-snapshot estimate after Advance differs from reference")
	}

	// A mutation touching the target's block must refuse the carry.
	edits2 := []graph.Edit{{Op: graph.EditAdd, U: 1, V: 4}}
	affected2 := graph.AffectedByEdits(next, [][2]int{{1, 4}})
	if !affected2[target] {
		t.Fatal("target should be affected by the cycle chord")
	}
	next2, _, err := graph.ApplyEditsOverlay(next, edits2)
	if err != nil {
		t.Fatal(err)
	}
	pool.Advance(next2, affected2)
	got2, err := EstimateBCPooled(next2, target, cfg, rng.New(seed), pool)
	if err != nil {
		t.Fatal(err)
	}
	fresh2, err := EstimateBCPooled(next2, target, cfg, rng.New(seed), NewBufferPool(next2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, fresh2) {
		t.Fatal("post-discard estimate differs from cold pool")
	}
}

// TestMemoCarryDecision drives the carry rules with an explicit buffer
// (no sync.Pool in the loop, so every count is deterministic): a
// version bump with the target's block clean carries the memo and
// serves unaffected states from it; affected states re-evaluate; a
// bump touching the target discards.
func TestMemoCarryDecision(t *testing.T) {
	g := carryTestGraph()
	const target = 2
	pool := NewBufferPool(g)
	b := newChainBuffers(g)
	o1, err := newOracleBuffered(g, target, true, b, nil, nil, pool)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, g.N())
	for v := 0; v < g.N(); v++ {
		want[v] = o1.Dep(v)
	}

	next, _, err := graph.ApplyEditsOverlay(g, []graph.Edit{{Op: graph.EditAdd, U: 8, V: 12}})
	if err != nil {
		t.Fatal(err)
	}
	affected := graph.AffectedByEdits(g, [][2]int{{8, 12}})
	pool.Advance(next, affected)
	// What pool.get(next) would do for a recycled buffer.
	b.bfs.Reseat(next)
	b.g = next

	o2, err := newOracleBuffered(next, target, true, b, nil, nil, pool)
	if err != nil {
		t.Fatal(err)
	}
	carried, discarded := pool.CarryStats()
	if carried != 1 || discarded != 0 {
		t.Fatalf("carried=%d discarded=%d, want 1/0", carried, discarded)
	}
	for v := 0; v < g.N(); v++ {
		if got := o2.Dep(v); got != want[v] {
			t.Fatalf("v=%d: carried dep %v, want %v", v, got, want[v])
		}
	}
	nAffected := 0
	for _, a := range affected {
		if a {
			nAffected++
		}
	}
	if o2.Evals != nAffected || o2.Hits != g.N()-nAffected {
		t.Fatalf("evals=%d hits=%d, want %d/%d (affected states re-evaluate, rest hit)",
			o2.Evals, o2.Hits, nAffected, g.N()-nAffected)
	}

	// A chord through the target's block must refuse the carry.
	next2, _, err := graph.ApplyEditsOverlay(next, []graph.Edit{{Op: graph.EditAdd, U: 1, V: 4}})
	if err != nil {
		t.Fatal(err)
	}
	affected2 := graph.AffectedByEdits(next, [][2]int{{1, 4}})
	pool.Advance(next2, affected2)
	b.bfs.Reseat(next2)
	b.g = next2
	o3, err := newOracleBuffered(next2, target, true, b, nil, nil, pool)
	if err != nil {
		t.Fatal(err)
	}
	if carried, discarded = pool.CarryStats(); carried != 1 || discarded != 1 {
		t.Fatalf("carried=%d discarded=%d, want 1/1", carried, discarded)
	}
	refO, err := NewOracle(next2.Compact(), target, false)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if got, ref := o3.Dep(v), refO.Dep(v); got != ref {
			t.Fatalf("v=%d after discard: dep %v, want %v", v, got, ref)
		}
	}
	if o3.Hits != 0 {
		t.Fatalf("discarded memo should not serve hits, got %d", o3.Hits)
	}
}

// TestSetOracleCarryTo pins the joint-space analog: CarryTo keeps the
// memo when no target's block is affected (invalidating only affected
// rows), and drops it wholesale otherwise.
func TestSetOracleCarryTo(t *testing.T) {
	g := carryTestGraph()
	o, err := NewSetOracle(g, []int{2, 5}, true)
	if err != nil {
		t.Fatal(err)
	}
	refDeps := func(h *graph.Graph, v int) []float64 {
		ro, err := NewSetOracle(h, []int{2, 5}, false)
		if err != nil {
			t.Fatal(err)
		}
		return ro.Deps(v)
	}
	for v := 0; v < g.N(); v++ {
		o.Deps(v)
	}
	evalsAll := o.Evals

	next, _, err := graph.ApplyEditsOverlay(g, []graph.Edit{{Op: graph.EditAdd, U: 8, V: 12}})
	if err != nil {
		t.Fatal(err)
	}
	affected := graph.AffectedByEdits(g, [][2]int{{8, 12}})
	o.CarryTo(next, affected)
	nAffected := 0
	for v := 0; v < g.N(); v++ {
		if affected[v] {
			nAffected++
		}
		got := o.Deps(v)
		want := refDeps(next, v)
		if !reflect.DeepEqual(append([]float64(nil), got...), want) {
			t.Fatalf("v=%d: deps %v vs fresh %v", v, got, want)
		}
	}
	if o.Evals != evalsAll+nAffected {
		t.Fatalf("carried set oracle re-evaluated %d states, want %d (the affected ones)",
			o.Evals-evalsAll, nAffected)
	}

	// Affecting a target drops everything: every state re-evaluates.
	next2, _, err := graph.ApplyEditsOverlay(next, []graph.Edit{{Op: graph.EditAdd, U: 1, V: 4}})
	if err != nil {
		t.Fatal(err)
	}
	evalsBefore := o.Evals
	o.CarryTo(next2, graph.AffectedByEdits(next, [][2]int{{1, 4}}))
	for v := 0; v < g.N(); v++ {
		got := o.Deps(v)
		want := refDeps(next2, v)
		if !reflect.DeepEqual(append([]float64(nil), got...), want) {
			t.Fatalf("v=%d after drop: deps %v vs fresh %v", v, got, want)
		}
	}
	if o.Evals != evalsBefore+g.N() {
		t.Fatalf("dropped memo should re-evaluate all %d states, got %d", g.N(), o.Evals-evalsBefore)
	}
}
