package mcmc

import (
	"context"
	"math"
	"reflect"
	"testing"

	"bcmh/internal/brandes"
	"bcmh/internal/graph"
	"bcmh/internal/rng"
	"bcmh/internal/sssp"
)

// equivGraphs spans the structural regimes the fast oracle must match
// the Brandes reference on: scale-free, homogeneous random (largest
// component), high-diameter grid, the degenerate star, and karate.
func equivGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	er := graph.ErdosRenyiGNP(90, 0.06, rng.New(41))
	lc, _, err := graph.LargestComponent(er)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"ba":     graph.BarabasiAlbert(150, 3, rng.New(40)),
		"er":     lc,
		"grid":   graph.Grid(9, 10),
		"star":   graph.Star(40),
		"karate": graph.KarateClub(),
	}
}

// equivGraphsWeighted is the weighted mirror of equivGraphs: the same
// structural regimes with positive float weights, spanning both
// Dijkstra kernel routes (narrow weight ranges take the calendar
// queue, the wide-range ER fixture forces the 4-ary heap).
func equivGraphsWeighted(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	er := graph.ErdosRenyiGNP(90, 0.06, rng.New(41))
	lc, _, err := graph.LargestComponent(er)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"wba":     graph.WithUniformWeights(graph.BarabasiAlbert(150, 3, rng.New(40)), 1, 10, rng.New(140)),
		"wer":     graph.WithUniformWeights(lc, 0.01, 10, rng.New(141)), // ratio > 64 → heap route
		"wgrid":   graph.WithUniformWeights(graph.Grid(9, 10), 1, 3, rng.New(142)),
		"wkarate": graph.WithUniformWeights(graph.KarateClub(), 1, 9, rng.New(143)),
	}
}

// TestFastOracleMatchesReference checks δ_v•(r) from the identity fast
// path against brandes.DependencyOnTarget for every vertex v, over
// several targets per graph, within 1e-9 relative tolerance (the two
// routes sum the same terms in different orders).
func TestFastOracleMatchesReference(t *testing.T) {
	for name, g := range equivGraphs(t) {
		if routeFor(g) != routeBFSIdentity {
			t.Fatalf("%s: test graph should take the BFS identity route", name)
		}
		n := g.N()
		c := sssp.NewComputer(g)
		scratch := make([]float64, n)
		targets := []int{0, 1, n / 2, n - 1}
		for _, r := range targets {
			fast, err := NewOracle(g, r, true)
			if err != nil {
				t.Fatal(err)
			}
			if fast.bfs == nil {
				t.Fatalf("%s: oracle took the Brandes route", name)
			}
			for v := 0; v < n; v++ {
				got := fast.Dep(v)
				want := brandes.DependencyOnTarget(c, scratch, v, r)
				if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("%s target %d: δ_%d = %v fast vs %v reference", name, r, v, got, want)
				}
			}
		}
	}
}

// TestWeightedFastOracleMatchesReference is the weighted analog: the
// Dijkstra identity route against the reference Brandes evaluator on
// weighted BA/ER/grid/karate, every vertex, several targets, ≤1e-9
// relative tolerance.
func TestWeightedFastOracleMatchesReference(t *testing.T) {
	for name, g := range equivGraphsWeighted(t) {
		if routeFor(g) != routeDijkstraIdentity {
			t.Fatalf("%s: test graph should take the Dijkstra identity route", name)
		}
		n := g.N()
		c := sssp.NewComputer(g)
		scratch := make([]float64, n)
		targets := []int{0, 1, n / 2, n - 1}
		for _, r := range targets {
			fast, err := NewOracle(g, r, true)
			if err != nil {
				t.Fatal(err)
			}
			if fast.dij == nil {
				t.Fatalf("%s: oracle missed the Dijkstra route", name)
			}
			for v := 0; v < n; v++ {
				got := fast.Dep(v)
				want := brandes.DependencyOnTarget(c, scratch, v, r)
				if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("%s target %d: δ_%d = %v fast vs %v reference", name, r, v, got, want)
				}
			}
		}
	}
}

// TestFastOracleMatchesDependencyVector cross-checks the column used by
// MuExact (DependencyVectorParallel's identity route) against per-vertex
// reference evaluations.
func TestFastOracleMatchesDependencyVector(t *testing.T) {
	g := graph.BarabasiAlbert(120, 2, rng.New(43))
	c := sssp.NewComputer(g)
	scratch := make([]float64, g.N())
	for _, r := range []int{0, 7, 119} {
		col := brandes.DependencyVector(g, r)
		for v := 0; v < g.N(); v++ {
			want := brandes.DependencyOnTarget(c, scratch, v, r)
			if math.Abs(col[v]-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("target %d: column[%d] = %v want %v", r, v, col[v], want)
			}
		}
	}
}

// TestSetOracleFastMatchesReference checks the joint-space oracle's
// identity routes (BFS and Dijkstra) against the Brandes accumulation
// route.
func TestSetOracleFastMatchesReference(t *testing.T) {
	gs := map[string]*graph.Graph{
		"unweighted": graph.BarabasiAlbert(100, 3, rng.New(47)),
		"weighted":   graph.WithUniformWeights(graph.BarabasiAlbert(100, 3, rng.New(47)), 1, 8, rng.New(48)),
	}
	for name, g := range gs {
		R := []int{0, 3, 17, 50, 99}
		fast, err := NewSetOracle(g, R, true)
		if err != nil {
			t.Fatal(err)
		}
		if fast.bfs == nil && fast.dij == nil {
			t.Fatalf("%s: set oracle took the Brandes route", name)
		}
		c := sssp.NewComputer(g)
		delta := make([]float64, g.N())
		for v := 0; v < g.N(); v++ {
			got := fast.Deps(v)
			spd := c.Run(v)
			brandes.Accumulate(g, spd, delta)
			for i, r := range R {
				if math.Abs(got[i]-delta[r]) > 1e-9*(1+math.Abs(delta[r])) {
					t.Fatalf("%s v=%d target %d: %v fast vs %v reference", name, v, r, got[i], delta[r])
				}
			}
		}
	}
}

// TestOracleRouteSelection pins the selection rule: unweighted
// undirected graphs take the BFS identity route, weighted undirected
// graphs the Dijkstra identity route, and only directed graphs fall
// back to Brandes.
func TestOracleRouteSelection(t *testing.T) {
	w := graph.WithUniformWeights(graph.KarateClub(), 1, 9, rng.New(51))
	o, err := NewOracle(w, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if o.dij == nil || o.bfs != nil {
		t.Fatal("weighted undirected graph must take the Dijkstra identity route")
	}
	b := graph.NewDirectedBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	dg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	od, err := NewOracle(dg, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if od.bfs != nil || od.dij != nil || od.c == nil {
		t.Fatal("directed graph must take the Brandes route")
	}
	so, err := NewSetOracle(w, []int{0, 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if so.dij == nil || so.bfs != nil {
		t.Fatal("weighted set oracle must take the Dijkstra identity route")
	}
	if len(so.wtspds) != 2 {
		t.Fatalf("weighted set oracle built %d snapshots, want 2", len(so.wtspds))
	}
}

// TestSetOracleRetargetInvalidatesMemo is the regression test for the
// stale-memo bug: the memo stamp used to be binary (set once, never
// reset), so a set oracle reused for a new target set would serve the
// previous set's dependency vectors. Retarget must invalidate every
// memoised row.
func TestSetOracleRetargetInvalidatesMemo(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"unweighted": graph.BarabasiAlbert(80, 3, rng.New(53)),
		"weighted":   graph.WithUniformWeights(graph.BarabasiAlbert(80, 3, rng.New(53)), 1, 6, rng.New(54)),
	} {
		R1 := []int{0, 5, 11}
		R2 := []int{2, 40, 79, 33}
		o, err := NewSetOracle(g, R1, true)
		if err != nil {
			t.Fatal(err)
		}
		// Memoise every row under R1, twice so hits are exercised.
		for v := 0; v < g.N(); v++ {
			o.Deps(v)
			o.Deps(v)
		}
		if o.Hits == 0 {
			t.Fatalf("%s: memo never hit under R1", name)
		}
		if err := o.Retarget(R2); err != nil {
			t.Fatal(err)
		}
		fresh, err := NewSetOracle(g, R2, true)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			got := o.Deps(v)
			want := fresh.Deps(v)
			if len(got) != len(R2) {
				t.Fatalf("%s v=%d: stale row length %d after Retarget", name, v, len(got))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s v=%d target %d: %v after Retarget vs %v fresh — stale memo served",
						name, v, R2[i], got[i], want[i])
				}
			}
		}
		// Retarget back to R1 must likewise not resurrect R1-era rows as
		// hits-without-eval: a full pass re-evaluates every row.
		evalsBefore := o.Evals
		if err := o.Retarget(R1); err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			o.Deps(v)
		}
		if o.Evals != evalsBefore+g.N() {
			t.Fatalf("%s: expected %d evals after second Retarget, got %d",
				name, evalsBefore+g.N(), o.Evals)
		}
	}
}

// TestSetOracleRetargetValidates pins Retarget's input contract.
func TestSetOracleRetargetValidates(t *testing.T) {
	g := graph.Path(10)
	o, err := NewSetOracle(g, []int{0, 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]int{{}, {-1}, {10}, {3, 3}} {
		if err := o.Retarget(bad); err == nil {
			t.Fatalf("Retarget(%v) accepted", bad)
		}
	}
	// A failed Retarget must leave the oracle usable on its old set.
	if got := o.Deps(5); len(got) != 2 {
		t.Fatalf("oracle broken after rejected Retarget: row length %d", len(got))
	}
}

// TestChainBitIdenticalWhereExact: on graphs whose dependency values
// both routes compute exactly (integer-valued sums — star and path),
// the full chain Result must be bit-identical between the fast oracle
// and the forced-Brandes reference, RNG stream and all.
func TestChainBitIdenticalWhereExact(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		r    int
	}{
		// Trees: shortest paths are unique, so every dependency is a sum
		// of ones — exact in any summation order. (Graphs with σ > 1,
		// karate or a grid, differ between the routes in the last ulp;
		// they belong to the 1e-9 tolerance test above.)
		{"star-center", graph.Star(60), 0},
		{"path-mid", graph.Path(50), 25},
		{"tree-internal", graph.KaryTree(40, 3), 1},
	}
	for _, tc := range cases {
		n := tc.g.N()
		fast, err := NewOracle(tc.g, tc.r, true)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := newReferenceOracle(tc.g, tc.r, true)
		if err != nil {
			t.Fatal(err)
		}
		// Precondition: both routes agree bit-for-bit on this graph —
		// otherwise the case can't promise chain identity and must be
		// dropped rather than silently weakened.
		for v := 0; v < n; v++ {
			if fast.Dep(v) != ref.Dep(v) {
				t.Fatalf("%s: routes differ at δ_%d: %v vs %v — case no longer exact",
					tc.name, v, fast.Dep(v), ref.Dep(v))
			}
		}
		cfg := DefaultConfig(600)
		cfg.TraceEvery = 100
		runWith := func(o *Oracle) Result {
			b := newChainBuffers(tc.g)
			res, err := runSingleChain(context.Background(), tc.g, o, cfg, rng.New(97), b, nil)
			if err != nil {
				t.Fatal(err)
			}
			res.Evals = o.Evals
			res.CacheHits = o.Hits
			return res
		}
		fastRes := runWith(fast)
		refRes := runWith(ref)
		// Oracles were warmed identically above, so even the work
		// counters must agree.
		if !reflect.DeepEqual(fastRes, refRes) {
			t.Fatalf("%s: chain results differ:\nfast %+v\nref  %+v", tc.name, fastRes, refRes)
		}
	}
}

// TestEstimateBCPooledMatchesUnpooled guards the engine's bit-identity
// contract across the new buffer plumbing: pooled and unpooled runs
// with one seed must agree exactly, on both oracle routes.
func TestEstimateBCPooledMatchesUnpooled(t *testing.T) {
	gs := map[string]*graph.Graph{
		"bfs-route":      graph.BarabasiAlbert(200, 3, rng.New(59)),
		"dijkstra-route": graph.WithUniformWeights(graph.BarabasiAlbert(200, 3, rng.New(59)), 1, 7, rng.New(60)),
	}
	for name, g := range gs {
		pool := NewBufferPool(g)
		cfg := DefaultConfig(400)
		for _, r := range []int{0, 5} {
			a, err := EstimateBCPooled(g, r, cfg, rng.New(71), pool)
			if err != nil {
				t.Fatal(err)
			}
			bres, err := EstimateBCPooled(g, r, cfg, rng.New(71), nil)
			if err != nil {
				t.Fatal(err)
			}
			// Run twice through the pool so buffer reuse (stale memo
			// epochs) is exercised too.
			c, err := EstimateBCPooled(g, r, cfg, rng.New(71), pool)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, bres) || !reflect.DeepEqual(a, c) {
				t.Fatalf("%s target %d: pooled/unpooled/reused results differ", name, r)
			}
		}
	}
}

// TestDegreeProposalAliasCached checks the pool builds the degree table
// once and the chain still matches the unpooled run bit-for-bit.
func TestDegreeProposalAliasCached(t *testing.T) {
	g := graph.BarabasiAlbert(150, 2, rng.New(61))
	pool := NewBufferPool(g)
	if pool.degreeAlias(g) != pool.degreeAlias(g) {
		t.Fatal("degree alias rebuilt on second use")
	}
	cfg := DefaultConfig(300)
	cfg.DegreeProposal = true
	a, err := EstimateBCPooled(g, 0, cfg, rng.New(83), pool)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateBCPooled(g, 0, cfg, rng.New(83), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("degree-proposal pooled run differs from unpooled")
	}
}

// TestPooledOutOfRangeTargetErrors: an invalid target must come back
// as an error (never a panic out of the snapshot build), pooled or not,
// single- or multi-chain.
func TestPooledOutOfRangeTargetErrors(t *testing.T) {
	g := graph.Path(10)
	pool := NewBufferPool(g)
	cfg := DefaultConfig(10)
	for _, r := range []int{-1, 10} {
		if _, err := EstimateBCPooled(g, r, cfg, rng.New(1), pool); err == nil {
			t.Fatalf("pooled target %d accepted", r)
		}
		if _, err := EstimateBCPooled(g, r, cfg, rng.New(1), nil); err == nil {
			t.Fatalf("unpooled target %d accepted", r)
		}
		if _, err := EstimateBCParallelPooled(g, r, cfg, 1, 2, pool); err == nil {
			t.Fatalf("parallel target %d accepted", r)
		}
	}
}

// TestTargetSPDCacheLRU exercises the pool's snapshot cache bound.
func TestTargetSPDCacheLRU(t *testing.T) {
	g := graph.BarabasiAlbert(260, 2, rng.New(67))
	pool := NewBufferPool(g)
	first := pool.targetSPD(g, 0)
	if first == nil || first.Target != 0 {
		t.Fatal("snapshot missing")
	}
	if pool.targetSPD(g, 0) != first {
		t.Fatal("snapshot not cached")
	}
	// Touch more targets than the cache holds; entry 0 must be evicted
	// and rebuilt (a different pointer), newer entries still cached.
	for r := 1; r <= targetSPDCacheSize+10; r++ {
		pool.targetSPD(g, r%g.N())
	}
	if pool.tspdLRU.Len() > targetSPDCacheSize {
		t.Fatalf("cache grew to %d", pool.tspdLRU.Len())
	}
	if pool.targetSPD(g, 0) == first {
		t.Fatal("evicted snapshot pointer resurrected")
	}
	// Each route serves only its own snapshot kind.
	if pool.weightedTargetSPD(g, 0) != nil {
		t.Fatal("unweighted pool returned a weighted snapshot")
	}
	w := graph.WithUniformWeights(g, 1, 3, rng.New(68))
	wpool := NewBufferPool(w)
	if wpool.targetSPD(w, 0) != nil {
		t.Fatal("weighted pool returned an unweighted snapshot")
	}
	wfirst := wpool.weightedTargetSPD(w, 0)
	if wfirst == nil || wfirst.Target != 0 {
		t.Fatal("weighted snapshot missing")
	}
	if wpool.weightedTargetSPD(w, 0) != wfirst {
		t.Fatal("weighted snapshot not cached")
	}
	// Same LRU bound and eviction behaviour as the unweighted kind.
	for r := 1; r <= targetSPDCacheSize+10; r++ {
		wpool.weightedTargetSPD(w, r%w.N())
	}
	if wpool.tspdLRU.Len() > targetSPDCacheSize {
		t.Fatalf("weighted cache grew to %d", wpool.tspdLRU.Len())
	}
	if wpool.weightedTargetSPD(w, 0) == wfirst {
		t.Fatal("evicted weighted snapshot pointer resurrected")
	}
}
