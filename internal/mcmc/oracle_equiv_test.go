package mcmc

import (
	"context"
	"math"
	"reflect"
	"testing"

	"bcmh/internal/brandes"
	"bcmh/internal/graph"
	"bcmh/internal/rng"
	"bcmh/internal/sssp"
)

// equivGraphs spans the structural regimes the fast oracle must match
// the Brandes reference on: scale-free, homogeneous random (largest
// component), high-diameter grid, the degenerate star, and karate.
func equivGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	er := graph.ErdosRenyiGNP(90, 0.06, rng.New(41))
	lc, _, err := graph.LargestComponent(er)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"ba":     graph.BarabasiAlbert(150, 3, rng.New(40)),
		"er":     lc,
		"grid":   graph.Grid(9, 10),
		"star":   graph.Star(40),
		"karate": graph.KarateClub(),
	}
}

// TestFastOracleMatchesReference checks δ_v•(r) from the identity fast
// path against brandes.DependencyOnTarget for every vertex v, over
// several targets per graph, within 1e-9 relative tolerance (the two
// routes sum the same terms in different orders).
func TestFastOracleMatchesReference(t *testing.T) {
	for name, g := range equivGraphs(t) {
		if !fastOracleGraph(g) {
			t.Fatalf("%s: test graph should take the fast route", name)
		}
		n := g.N()
		c := sssp.NewComputer(g)
		scratch := make([]float64, n)
		targets := []int{0, 1, n / 2, n - 1}
		for _, r := range targets {
			fast, err := NewOracle(g, r, true)
			if err != nil {
				t.Fatal(err)
			}
			if fast.bfs == nil {
				t.Fatalf("%s: oracle took the Brandes route", name)
			}
			for v := 0; v < n; v++ {
				got := fast.Dep(v)
				want := brandes.DependencyOnTarget(c, scratch, v, r)
				if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("%s target %d: δ_%d = %v fast vs %v reference", name, r, v, got, want)
				}
			}
		}
	}
}

// TestFastOracleMatchesDependencyVector cross-checks the column used by
// MuExact (DependencyVectorParallel's identity route) against per-vertex
// reference evaluations.
func TestFastOracleMatchesDependencyVector(t *testing.T) {
	g := graph.BarabasiAlbert(120, 2, rng.New(43))
	c := sssp.NewComputer(g)
	scratch := make([]float64, g.N())
	for _, r := range []int{0, 7, 119} {
		col := brandes.DependencyVector(g, r)
		for v := 0; v < g.N(); v++ {
			want := brandes.DependencyOnTarget(c, scratch, v, r)
			if math.Abs(col[v]-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("target %d: column[%d] = %v want %v", r, v, col[v], want)
			}
		}
	}
}

// TestSetOracleFastMatchesReference checks the joint-space oracle's
// identity route against the Brandes accumulation route.
func TestSetOracleFastMatchesReference(t *testing.T) {
	g := graph.BarabasiAlbert(100, 3, rng.New(47))
	R := []int{0, 3, 17, 50, 99}
	fast, err := NewSetOracle(g, R, true)
	if err != nil {
		t.Fatal(err)
	}
	if fast.bfs == nil {
		t.Fatal("set oracle took the Brandes route")
	}
	c := sssp.NewComputer(g)
	delta := make([]float64, g.N())
	for v := 0; v < g.N(); v++ {
		got := fast.Deps(v)
		spd := c.Run(v)
		brandes.Accumulate(g, spd, delta)
		for i, r := range R {
			if math.Abs(got[i]-delta[r]) > 1e-9*(1+math.Abs(delta[r])) {
				t.Fatalf("v=%d target %d: %v fast vs %v reference", v, r, got[i], delta[r])
			}
		}
	}
}

// TestWeightedAndDirectedRouteThroughBrandes pins the selection rule:
// only unweighted undirected graphs take the identity route.
func TestWeightedAndDirectedRouteThroughBrandes(t *testing.T) {
	w := graph.WithUniformWeights(graph.KarateClub(), 1, 9, rng.New(51))
	o, err := NewOracle(w, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if o.bfs != nil || o.c == nil {
		t.Fatal("weighted graph must take the Brandes route")
	}
	b := graph.NewDirectedBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	dg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	od, err := NewOracle(dg, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if od.bfs != nil {
		t.Fatal("directed graph must take the Brandes route")
	}
	so, err := NewSetOracle(w, []int{0, 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if so.bfs != nil {
		t.Fatal("weighted set oracle must take the Brandes route")
	}
}

// TestChainBitIdenticalWhereExact: on graphs whose dependency values
// both routes compute exactly (integer-valued sums — star and path),
// the full chain Result must be bit-identical between the fast oracle
// and the forced-Brandes reference, RNG stream and all.
func TestChainBitIdenticalWhereExact(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		r    int
	}{
		// Trees: shortest paths are unique, so every dependency is a sum
		// of ones — exact in any summation order. (Graphs with σ > 1,
		// karate or a grid, differ between the routes in the last ulp;
		// they belong to the 1e-9 tolerance test above.)
		{"star-center", graph.Star(60), 0},
		{"path-mid", graph.Path(50), 25},
		{"tree-internal", graph.KaryTree(40, 3), 1},
	}
	for _, tc := range cases {
		n := tc.g.N()
		fast, err := NewOracle(tc.g, tc.r, true)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := newReferenceOracle(tc.g, tc.r, true)
		if err != nil {
			t.Fatal(err)
		}
		// Precondition: both routes agree bit-for-bit on this graph —
		// otherwise the case can't promise chain identity and must be
		// dropped rather than silently weakened.
		for v := 0; v < n; v++ {
			if fast.Dep(v) != ref.Dep(v) {
				t.Fatalf("%s: routes differ at δ_%d: %v vs %v — case no longer exact",
					tc.name, v, fast.Dep(v), ref.Dep(v))
			}
		}
		cfg := DefaultConfig(600)
		cfg.TraceEvery = 100
		runWith := func(o *Oracle) Result {
			b := newChainBuffers(tc.g)
			res, err := runSingleChain(context.Background(), tc.g, o, cfg, rng.New(97), b, nil)
			if err != nil {
				t.Fatal(err)
			}
			res.Evals = o.Evals
			res.CacheHits = o.Hits
			return res
		}
		fastRes := runWith(fast)
		refRes := runWith(ref)
		// Oracles were warmed identically above, so even the work
		// counters must agree.
		if !reflect.DeepEqual(fastRes, refRes) {
			t.Fatalf("%s: chain results differ:\nfast %+v\nref  %+v", tc.name, fastRes, refRes)
		}
	}
}

// TestEstimateBCPooledMatchesUnpooled guards the engine's bit-identity
// contract across the new buffer plumbing: pooled and unpooled runs
// with one seed must agree exactly, on both oracle routes.
func TestEstimateBCPooledMatchesUnpooled(t *testing.T) {
	gs := map[string]*graph.Graph{
		"fast":    graph.BarabasiAlbert(200, 3, rng.New(59)),
		"brandes": graph.WithUniformWeights(graph.BarabasiAlbert(200, 3, rng.New(59)), 1, 7, rng.New(60)),
	}
	for name, g := range gs {
		pool := NewBufferPool(g)
		cfg := DefaultConfig(400)
		for _, r := range []int{0, 5} {
			a, err := EstimateBCPooled(g, r, cfg, rng.New(71), pool)
			if err != nil {
				t.Fatal(err)
			}
			bres, err := EstimateBCPooled(g, r, cfg, rng.New(71), nil)
			if err != nil {
				t.Fatal(err)
			}
			// Run twice through the pool so buffer reuse (stale memo
			// epochs) is exercised too.
			c, err := EstimateBCPooled(g, r, cfg, rng.New(71), pool)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, bres) || !reflect.DeepEqual(a, c) {
				t.Fatalf("%s target %d: pooled/unpooled/reused results differ", name, r)
			}
		}
	}
}

// TestDegreeProposalAliasCached checks the pool builds the degree table
// once and the chain still matches the unpooled run bit-for-bit.
func TestDegreeProposalAliasCached(t *testing.T) {
	g := graph.BarabasiAlbert(150, 2, rng.New(61))
	pool := NewBufferPool(g)
	if pool.degreeAlias() != pool.degreeAlias() {
		t.Fatal("degree alias rebuilt on second use")
	}
	cfg := DefaultConfig(300)
	cfg.DegreeProposal = true
	a, err := EstimateBCPooled(g, 0, cfg, rng.New(83), pool)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateBCPooled(g, 0, cfg, rng.New(83), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("degree-proposal pooled run differs from unpooled")
	}
}

// TestPooledOutOfRangeTargetErrors: an invalid target must come back
// as an error (never a panic out of the snapshot build), pooled or not,
// single- or multi-chain.
func TestPooledOutOfRangeTargetErrors(t *testing.T) {
	g := graph.Path(10)
	pool := NewBufferPool(g)
	cfg := DefaultConfig(10)
	for _, r := range []int{-1, 10} {
		if _, err := EstimateBCPooled(g, r, cfg, rng.New(1), pool); err == nil {
			t.Fatalf("pooled target %d accepted", r)
		}
		if _, err := EstimateBCPooled(g, r, cfg, rng.New(1), nil); err == nil {
			t.Fatalf("unpooled target %d accepted", r)
		}
		if _, err := EstimateBCParallelPooled(g, r, cfg, 1, 2, pool); err == nil {
			t.Fatalf("parallel target %d accepted", r)
		}
	}
}

// TestTargetSPDCacheLRU exercises the pool's snapshot cache bound.
func TestTargetSPDCacheLRU(t *testing.T) {
	g := graph.BarabasiAlbert(260, 2, rng.New(67))
	pool := NewBufferPool(g)
	first := pool.targetSPD(0)
	if first == nil || first.Target != 0 {
		t.Fatal("snapshot missing")
	}
	if pool.targetSPD(0) != first {
		t.Fatal("snapshot not cached")
	}
	// Touch more targets than the cache holds; entry 0 must be evicted
	// and rebuilt (a different pointer), newer entries still cached.
	for r := 1; r <= targetSPDCacheSize+10; r++ {
		pool.targetSPD(r % g.N())
	}
	if pool.tspdLRU.Len() > targetSPDCacheSize {
		t.Fatalf("cache grew to %d", pool.tspdLRU.Len())
	}
	if pool.targetSPD(0) == first {
		t.Fatal("evicted snapshot pointer resurrected")
	}
	// Weighted graphs have no snapshots.
	w := graph.WithUniformWeights(g, 1, 3, rng.New(68))
	if NewBufferPool(w).targetSPD(0) != nil {
		t.Fatal("weighted pool returned a snapshot")
	}
}
