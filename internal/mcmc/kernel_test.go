package mcmc

import (
	"math"
	"testing"
	"testing/quick"

	"bcmh/internal/brandes"
	"bcmh/internal/graph"
	"bcmh/internal/rng"
)

// TestKernelStationarity numerically verifies that the single-space MH
// kernel leaves P_r[v] ∝ δ_v•(r) invariant: with uniform proposals the
// transition matrix is
//
//	P(u→v) = (1/n)·a(u,v) for v≠u,  P(u→u) = 1 − Σ_{v≠u} P(u→v)
//
// with a(u,v) the acceptance probability (including the zero-state
// conventions). πP = π must hold exactly on the support of π.
func TestKernelStationarity(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Path(6),
		graph.Star(6),
		graph.Cycle(7),
		graph.KaryTree(7, 2),
		graph.Barbell(3, 3, 1),
	}
	for gi, g := range graphs {
		n := g.N()
		for r := 0; r < n; r++ {
			dep := brandes.DependencyVector(g, r)
			var sum float64
			for _, d := range dep {
				sum += d
			}
			if sum == 0 {
				continue // zero-BC target: π undefined, chain is a uniform walk
			}
			// Acceptance probability mirroring acceptMH.
			acc := func(du, dv float64) float64 {
				switch {
				case du == 0:
					return 1
				case dv == 0:
					return 0
				case dv >= du:
					return 1
				default:
					return dv / du
				}
			}
			// π P evaluated column-by-column.
			for v := 0; v < n; v++ {
				var inflow float64
				for u := 0; u < n; u++ {
					var pUV float64
					if u == v {
						stay := 1.0
						for w := 0; w < n; w++ {
							if w == u {
								continue
							}
							stay -= acc(dep[u], dep[w]) / float64(n)
						}
						pUV = stay
					} else {
						pUV = acc(dep[u], dep[v]) / float64(n)
					}
					inflow += dep[u] / sum * pUV
				}
				if math.Abs(inflow-dep[v]/sum) > 1e-12 {
					t.Fatalf("graph %d target %d: stationarity broken at state %d: inflow %v want %v",
						gi, r, v, inflow, dep[v]/sum)
				}
			}
		}
	}
}

// TestKernelStationarityProperty extends the check to random graphs.
func TestKernelStationarityProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%12) + 4
		g := graph.ErdosRenyiGNP(n, 0.4, rng.New(seed))
		lc, _, err := graph.LargestComponent(g)
		if err != nil || lc.N() < 3 {
			return true
		}
		n = lc.N()
		r := int(seed % uint64(n))
		dep := brandes.DependencyVector(lc, r)
		var sum float64
		for _, d := range dep {
			sum += d
		}
		if sum == 0 {
			return true
		}
		acc := func(du, dv float64) float64 {
			switch {
			case du == 0:
				return 1
			case dv == 0:
				return 0
			case dv >= du:
				return 1
			default:
				return dv / du
			}
		}
		for v := 0; v < n; v++ {
			var inflow float64
			for u := 0; u < n; u++ {
				var pUV float64
				if u == v {
					stay := 1.0
					for w := 0; w < n; w++ {
						if w != u {
							stay -= acc(dep[u], dep[w]) / float64(n)
						}
					}
					pUV = stay
				} else {
					pUV = acc(dep[u], dep[v]) / float64(n)
				}
				inflow += dep[u] / sum * pUV
			}
			if math.Abs(inflow-dep[v]/sum) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestEmpiricalStationaryDistribution runs a long chain on a small
// graph and compares the empirical state occupancy with π.
func TestEmpiricalStationaryDistribution(t *testing.T) {
	g := graph.KaryTree(7, 2)
	r := 0 // root: positive dependencies at internal vertices
	dep := brandes.DependencyVector(g, r)
	var sum float64
	for _, d := range dep {
		sum += d
	}
	oracle, err := NewOracle(g, r, true)
	if err != nil {
		t.Fatal(err)
	}
	// Run the chain manually to count state occupancy.
	rnd := rng.New(5)
	cur := rnd.Intn(g.N())
	depCur := oracle.Dep(cur)
	counts := make([]float64, g.N())
	const T = 400000
	for i := 0; i < T; i++ {
		prop := rnd.Intn(g.N())
		depNew := oracle.Dep(prop)
		if acceptMH(depCur, depNew, 1, rnd) {
			cur, depCur = prop, depNew
		}
		counts[cur]++
	}
	for v := 0; v < g.N(); v++ {
		want := dep[v] / sum
		got := counts[v] / T
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("occupancy of %d: %v want %v", v, got, want)
		}
	}
}

func TestExtendedRelativeExactBounds(t *testing.T) {
	g := graph.KarateClub()
	for _, pair := range [][2]int{{0, 33}, {2, 8}, {5, 31}} {
		v, err := ExtendedRelativeExact(g, pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if v < 0 || v > 1 {
			t.Fatalf("extended score out of [0,1]: %v", v)
		}
	}
	// Diagonal: every pair dependency equals itself → min ratio 1 for
	// all (v,t) pairs (0/0 → 1 by convention), so the score is 1.
	d, err := ExtendedRelativeExact(g, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Fatalf("diagonal extended score %v", d)
	}
}

func TestExtendedRelativeExactStar(t *testing.T) {
	// Star: center c vs leaf l. δ_vt(center) = 1 for every leaf pair
	// (v,t); δ_vt(leaf) = 0 for all pairs. The score of leaf-vs-center
	// counts min{1, 0/1} = 0 on the (n-1)(n-2) leaf pairs and
	// min{1, 0/0} = 1 on pairs involving the center (2(n-1) ordered
	// pairs): BC_c(l) = 2(n-1)/(n(n-1)) = 2/n.
	n := 8
	g := graph.Star(n)
	got, err := ExtendedRelativeExact(g, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 / float64(n)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("leaf-vs-center extended score %v want %v", got, want)
	}
	// Center vs leaf: min{1, 1/0}=1 on leaf pairs and 1 on center pairs
	// → exactly 1.
	got, err = ExtendedRelativeExact(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("center-vs-leaf extended score %v want 1", got)
	}
}

func TestExtendedRelativePathHandComputed(t *testing.T) {
	// P4 (0-1-2-3): by symmetry the extended score of 1 vs 2 equals
	// that of 2 vs 1. Pair dependencies: vertex 1 is interior to
	// (0,2),(0,3),(2,0),(3,0) with δ=1; vertex 2 to (0,3),(1,3),(3,0),(3,1).
	// For (ri=1, rj=2): per (v,t) min-ratio = 1 where δ(2)=0 (by the
	// 0/0→1 and x/0→1 conventions) except where δ(2)=1 and δ(1)=0:
	// pairs (1,3),(3,1) give 0; pairs (0,3),(3,0) give 1/1=1. All other
	// ordered pairs have δ(2)=0 → ratio 1. Total = 12 pairs - 2 zeros
	// = 10 → score 10/12.
	g := graph.Path(4)
	got, err := ExtendedRelativeExact(g, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10.0/12.0) > 1e-12 {
		t.Fatalf("P4 extended score %v want %v", got, 10.0/12.0)
	}
	sym, _ := ExtendedRelativeExact(g, 2, 1)
	if math.Abs(sym-got) > 1e-12 {
		t.Fatalf("P4 symmetry broken: %v vs %v", sym, got)
	}
}

func TestExtendedRelativeValidation(t *testing.T) {
	g := graph.Path(4)
	if _, err := ExtendedRelativeExact(g, -1, 2); err == nil {
		t.Fatal("bad ri accepted")
	}
	if _, err := ExtendedRelativeExact(g, 1, 9); err == nil {
		t.Fatal("bad rj accepted")
	}
}
