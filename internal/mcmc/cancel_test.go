package mcmc

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"bcmh/internal/graph"
	"bcmh/internal/rng"
)

// cancelTestGraph is big enough that an uncacheable chain pays a real
// BFS per step: 100k steps × O(m) traversals would run for minutes,
// so a cancelled run finishing in (generous) single-digit seconds
// demonstrates the abort actually cut the loop short.
func cancelTestGraph(t testing.TB) *graph.Graph {
	t.Helper()
	return graph.BarabasiAlbert(3000, 3, rng.New(17))
}

// hugeChainConfig disables memoisation so every step costs a full
// dependency evaluation — the worst case the cancellation check exists
// for.
func hugeChainConfig() Config {
	cfg := DefaultConfig(100_000)
	cfg.DisableCache = true
	return cfg
}

func TestEstimateBCContextCancelledBeforeStart(t *testing.T) {
	g := graph.KarateClub()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EstimateBCPooledContext(ctx, g, 0, DefaultConfig(1000), rng.New(1), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled single chain: err = %v, want context.Canceled", err)
	}
	if _, err := EstimateBCParallelPooledContext(ctx, g, 0, DefaultConfig(1000), 1, 4, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled parallel chains: err = %v, want context.Canceled", err)
	}
}

func TestEstimateBCContextAbortsSingleChainPromptly(t *testing.T) {
	g := cancelTestGraph(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := EstimateBCPooledContext(ctx, g, 0, hugeChainConfig(), rng.New(7), nil)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// The uncancelled run is minutes of BFS work; anything in seconds
	// proves the loop aborted. Generous bound for slow CI machines.
	if elapsed > 10*time.Second {
		t.Fatalf("cancelled chain ran for %v", elapsed)
	}
}

func TestEstimateBCContextAbortsParallelChainsPromptly(t *testing.T) {
	g := cancelTestGraph(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := EstimateBCParallelPooledContext(ctx, g, 0, hugeChainConfig(), 9, 4, NewBufferPool(g))
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancelled parallel run took %v", elapsed)
	}
}

func TestContextVariantsAreBitIdenticalWhenUncancelled(t *testing.T) {
	// The cancellation check must never perturb the chain: a context
	// that never fires yields exactly the context-free result.
	g := graph.KarateClub()
	cfg := DefaultConfig(2000)
	want, err := EstimateBCPooled(g, 0, cfg, rng.New(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	got, err := EstimateBCPooledContext(ctx, g, 0, cfg, rng.New(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("context-threaded run differs:\ngot  %+v\nwant %+v", got, want)
	}

	wantMulti, err := EstimateBCParallelPooled(g, 0, cfg, 5, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	gotMulti, err := EstimateBCParallelPooledContext(ctx, g, 0, cfg, 5, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotMulti.Combined, wantMulti.Combined) {
		t.Fatalf("parallel context-threaded run differs:\ngot  %+v\nwant %+v", gotMulti.Combined, wantMulti.Combined)
	}
}
