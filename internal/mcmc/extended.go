package mcmc

import (
	"fmt"
	"math"

	"bcmh/internal/graph"
	"bcmh/internal/sssp"
)

// Extended relative betweenness — the paper's footnote 2 in §4.3:
//
//	BC_rj(ri) = 1/(n(n-1)) Σ_v Σ_{t≠v} min{1, δ_vt(ri)/δ_vt(rj)}
//
// where δ_vt(r) = σ_vt(r)/σ_vt is the pair dependency. Compared to
// Eq. 23's source-level scores this compares the two candidates' share
// of every individual (v,t) geodesic bundle, which distinguishes
// vertices that Eq. 23's aggregated δ_v• scores cannot.
//
// The pair dependency factors over the SPDs of ri and rj:
// σ_vt(r) = σ_vr · σ_rt when d(v,r) + d(r,t) = d(v,t), else 0 — so one
// traversal from each of ri, rj plus one per source v suffices:
// O(n(m+n)) total for unweighted graphs.

// ExtendedRelativeExact computes the footnote-2 extended relative
// betweenness score of ri with respect to rj, exactly.
func ExtendedRelativeExact(g *graph.Graph, ri, rj int) (float64, error) {
	n := g.N()
	if ri < 0 || ri >= n || rj < 0 || rj >= n {
		return 0, fmt.Errorf("mcmc: extended relative target out of range")
	}
	if n < 2 {
		return 0, fmt.Errorf("mcmc: graph too small (n=%d)", n)
	}
	c := sssp.NewComputer(g)
	spdI := c.Run(ri).Clone()
	spdJ := c.Run(rj).Clone()
	var total float64
	for v := 0; v < n; v++ {
		spdV := c.Run(v)
		for t := 0; t < n; t++ {
			if t == v || spdV.Sigma[t] == 0 {
				continue
			}
			di := pairDependency(spdV, spdI, v, t, ri)
			dj := pairDependency(spdV, spdJ, v, t, rj)
			total += ratio01(di, dj)
		}
	}
	return total / (float64(n) * float64(n-1)), nil
}

// pairDependency returns δ_vt(r) = σ_vt(r)/σ_vt given the SPD rooted at
// v (for σ_vt and d(v,·)) and the SPD rooted at r (for σ_rt and
// d(r,t)). Undirected graphs: σ_vr read from spdR's row at v
// (σ_rv = σ_vr) keeps everything to the two precomputed traversals.
func pairDependency(spdV, spdR *sssp.SPD, v, t, r int) float64 {
	if r == v || r == t {
		return 0 // interior vertices only, as in Eq. 1
	}
	dvr := spdR.Dist[v] // d(r,v) = d(v,r)
	drt := spdR.Dist[t]
	dvt := spdV.Dist[t]
	if dvr == sssp.Unreachable || drt == sssp.Unreachable || dvt == sssp.Unreachable {
		return 0
	}
	const eps = 1e-9
	if math.Abs(dvr+drt-dvt) > eps*(1+math.Abs(dvt)) {
		return 0
	}
	return spdR.Sigma[v] * spdR.Sigma[t] / spdV.Sigma[t]
}
