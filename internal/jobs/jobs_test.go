package jobs

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// waitTerminal blocks until the job is terminal (with a deadline) and
// returns its final info.
func waitTerminal(t *testing.T, j *Job) Info {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s never reached a terminal state", j.ID())
	}
	return j.Info()
}

func TestJobLifecycle(t *testing.T) {
	m := NewManager(Config{})
	exited := make(chan struct{})
	j, err := m.Start(context.Background(), "g1", nil, func(ctx context.Context, report func(any)) (any, error) {
		report("halfway")
		return 42, nil
	}, func() { close(exited) })
	if err != nil {
		t.Fatal(err)
	}
	info := waitTerminal(t, j)
	if info.Status != StatusDone || info.Result != 42 || info.Owner != "g1" {
		t.Fatalf("unexpected final info: %+v", info)
	}
	if info.Finished == nil || info.Error != "" {
		t.Fatalf("terminal bookkeeping wrong: %+v", info)
	}
	select {
	case <-exited:
	case <-time.After(time.Second):
		t.Fatal("onExit never ran")
	}
	// Still retrievable after completion.
	got, err := m.Get(j.ID())
	if err != nil || got != j {
		t.Fatalf("Get after completion: %v %v", got, err)
	}
}

func TestJobProgressSnapshot(t *testing.T) {
	m := NewManager(Config{})
	reported := make(chan struct{})
	release := make(chan struct{})
	j, err := m.Start(context.Background(), "g", nil, func(ctx context.Context, report func(any)) (any, error) {
		report("round 1")
		close(reported)
		<-release
		return nil, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-reported
	if info := j.Info(); info.Status != StatusRunning || info.Progress != "round 1" {
		t.Fatalf("mid-run info: %+v", info)
	}
	close(release)
	waitTerminal(t, j)
}

func TestJobCancel(t *testing.T) {
	m := NewManager(Config{})
	j, err := m.Start(context.Background(), "g", nil, func(ctx context.Context, report func(any)) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	info := waitTerminal(t, j)
	if info.Status != StatusCancelled {
		t.Fatalf("status %q, want cancelled", info.Status)
	}
	if info.Error != ErrCancelled.Error() {
		t.Fatalf("error %q, want the ErrCancelled cause", info.Error)
	}
}

// TestJobDiesWithParent pins the session-coupling contract: cancelling
// the parent context (the store does this when a session is deleted)
// terminates the job with the parent's cause recorded.
func TestJobDiesWithParent(t *testing.T) {
	m := NewManager(Config{})
	sessionErr := errors.New("session closed")
	parent, die := context.WithCancelCause(context.Background())
	j, err := m.Start(parent, "g", nil, func(ctx context.Context, report func(any)) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	die(sessionErr)
	info := waitTerminal(t, j)
	if info.Status != StatusCancelled || info.Error != sessionErr.Error() {
		t.Fatalf("want cancelled with the session cause, got %+v", info)
	}
}

func TestJobFailure(t *testing.T) {
	m := NewManager(Config{})
	boom := errors.New("boom")
	j, err := m.Start(context.Background(), "g", nil, func(ctx context.Context, report func(any)) (any, error) {
		return nil, boom
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	info := waitTerminal(t, j)
	if info.Status != StatusFailed || info.Error != "boom" {
		t.Fatalf("want failed/boom, got %+v", info)
	}
}

func TestJobConcurrencyBound(t *testing.T) {
	m := NewManager(Config{MaxRunning: 2})
	release := make(chan struct{})
	blocker := func(ctx context.Context, report func(any)) (any, error) {
		<-release
		return nil, nil
	}
	j1, err := m.Start(context.Background(), "g", nil, blocker, nil)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.Start(context.Background(), "g", nil, blocker, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(context.Background(), "g", nil, blocker, nil); !errors.Is(err, ErrTooMany) {
		t.Fatalf("third job: want ErrTooMany, got %v", err)
	}
	close(release)
	waitTerminal(t, j1)
	waitTerminal(t, j2)
	// Capacity is back.
	j4, err := m.Start(context.Background(), "g", nil, func(ctx context.Context, report func(any)) (any, error) {
		return nil, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j4)
}

func TestJobRetentionEviction(t *testing.T) {
	m := NewManager(Config{MaxRunning: 1, MaxTracked: 3})
	var ids []string
	for i := 0; i < 5; i++ {
		j, err := m.Start(context.Background(), fmt.Sprintf("g%d", i), nil,
			func(ctx context.Context, report func(any)) (any, error) { return i, nil }, nil)
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j)
		ids = append(ids, j.ID())
	}
	if n := m.Len(); n > 3 {
		t.Fatalf("tracked %d jobs, cap 3", n)
	}
	// The newest job always survives.
	if _, err := m.Get(ids[len(ids)-1]); err != nil {
		t.Fatalf("newest job evicted: %v", err)
	}
	if _, err := m.Get("doesnotexist0000"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestManagerClose(t *testing.T) {
	m := NewManager(Config{})
	j, err := m.Start(context.Background(), "g", nil, func(ctx context.Context, report func(any)) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	info := waitTerminal(t, j)
	if info.Status != StatusCancelled || info.Error != ErrClosed.Error() {
		t.Fatalf("want cancelled with ErrClosed cause, got %+v", info)
	}
	if _, err := m.Start(context.Background(), "g", nil,
		func(ctx context.Context, report func(any)) (any, error) { return nil, nil }, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Start after Close: want ErrClosed, got %v", err)
	}
}

func TestJobList(t *testing.T) {
	m := NewManager(Config{MaxRunning: 4})
	for i := 0; i < 3; i++ {
		j, err := m.Start(context.Background(), fmt.Sprintf("g%d", i), nil,
			func(ctx context.Context, report func(any)) (any, error) { return nil, nil }, nil)
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, j)
	}
	list := m.List()
	if len(list) != 3 {
		t.Fatalf("list length %d", len(list))
	}
	// Newest first.
	if list[0].Owner != "g2" || list[2].Owner != "g0" {
		t.Fatalf("list order: %+v", list)
	}
}

func TestJobMetaIsRecorded(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	meta := map[string]any{"graph_version": uint64(3), "on_mutate": "cancel"}
	j, err := m.Start(context.Background(), "g", meta, func(ctx context.Context, report func(any)) (any, error) {
		return nil, nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	got, ok := j.Info().Meta.(map[string]any)
	if !ok {
		t.Fatalf("meta = %#v, want the map passed at Start", j.Info().Meta)
	}
	if got["graph_version"] != uint64(3) || got["on_mutate"] != "cancel" {
		t.Fatalf("meta = %#v", got)
	}
}
