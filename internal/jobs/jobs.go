// Package jobs is the async-job surface of the serving stack: a small
// manager for long-running computations (minutes-scale whole-graph
// rankings, where holding an HTTP request open is the wrong shape)
// that gives each one an id, a live progress snapshot, a retained
// result, and prompt cancellation.
//
// A job runs in its own goroutine under a context derived from the
// parent the caller supplies — internal/store passes the graph
// session's lifecycle context, so deleting (or evicting) a session
// cancels every job running on it exactly like it aborts in-flight
// estimates. Cancel fires the same context with ErrCancelled as the
// cause; either way the job's Runner observes a cancelled context and
// returns, and the manager records the terminal status.
//
// The manager bounds concurrent executions (ErrTooMany when the bound
// is hit — callers map it to 429) and retains a bounded number of
// terminal job records for result pickup, evicting the oldest finished
// ones first.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sync"
	"time"
)

// Status is a job's lifecycle state.
type Status string

const (
	// StatusRunning: the Runner has been started and has not returned.
	StatusRunning Status = "running"
	// StatusDone: the Runner returned a result.
	StatusDone Status = "done"
	// StatusFailed: the Runner returned a non-cancellation error.
	StatusFailed Status = "failed"
	// StatusCancelled: the Runner aborted on a cancelled context —
	// explicit Cancel, or the parent (session) context dying.
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool { return s != StatusRunning }

// Sentinel errors; the HTTP layer maps each to a pinned status code.
var (
	// ErrNotFound: no job with the requested id (404).
	ErrNotFound = errors.New("jobs: job not found")
	// ErrTooMany: the manager is at its concurrent-execution bound (429).
	ErrTooMany = errors.New("jobs: too many concurrent jobs")
	// ErrClosed: the manager has shut down (503).
	ErrClosed = errors.New("jobs: manager closed")
	// ErrCancelled is the cancellation cause Cancel installs on the
	// job's context.
	ErrCancelled = errors.New("jobs: job cancelled")
)

// Defaults for the zero Config.
const (
	// DefaultMaxRunning bounds concurrently executing jobs.
	DefaultMaxRunning = 4
	// DefaultMaxTracked bounds retained job records (running ones are
	// never evicted; terminal ones go oldest-first).
	DefaultMaxTracked = 64
)

// Config tunes a Manager.
type Config struct {
	// MaxRunning bounds concurrently executing jobs. Zero means
	// DefaultMaxRunning.
	MaxRunning int
	// MaxTracked bounds retained job records. Zero means
	// DefaultMaxTracked; it is raised to MaxRunning if set lower.
	MaxTracked int
}

func (c Config) withDefaults() Config {
	if c.MaxRunning <= 0 {
		c.MaxRunning = DefaultMaxRunning
	}
	if c.MaxTracked <= 0 {
		c.MaxTracked = DefaultMaxTracked
	}
	if c.MaxTracked < c.MaxRunning {
		c.MaxTracked = c.MaxRunning
	}
	return c
}

// Runner is one job's computation. It must honour ctx (return promptly
// once cancelled) and may call report at any time to publish a progress
// snapshot — the latest snapshot is what Get returns while the job
// runs. The returned result is retained on success.
type Runner func(ctx context.Context, report func(progress any)) (result any, err error)

// Manager owns a set of jobs. Safe for concurrent use.
type Manager struct {
	cfg Config

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string // insertion order, for oldest-first eviction
	running int
	closed  bool
}

// NewManager returns an empty manager.
func NewManager(cfg Config) *Manager {
	return &Manager{cfg: cfg.withDefaults(), jobs: make(map[string]*Job)}
}

// Job is one tracked computation. All methods are safe for concurrent
// use.
type Job struct {
	id      string
	owner   string
	meta    any
	created time.Time
	cancel  context.CancelCauseFunc
	done    chan struct{}

	mu       sync.Mutex
	status   Status
	progress any
	result   any
	err      error
	finished time.Time
}

// ID returns the job id.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Info is a point-in-time job description, JSON-shaped for the HTTP
// layer. Progress carries the Runner's latest report while running;
// Result carries the returned value once done; Meta is the immutable
// tag the caller attached at Start (the store records the graph
// version the job started on and its on_mutate policy there).
type Info struct {
	ID       string     `json:"id"`
	Owner    string     `json:"owner,omitempty"`
	Meta     any        `json:"meta,omitempty"`
	Status   Status     `json:"status"`
	Created  time.Time  `json:"created"`
	Finished *time.Time `json:"finished,omitempty"`
	Progress any        `json:"progress,omitempty"`
	Result   any        `json:"result,omitempty"`
	Error    string     `json:"error,omitempty"`
}

// Info snapshots the job.
func (j *Job) Info() Info {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := Info{
		ID:       j.id,
		Owner:    j.owner,
		Meta:     j.meta,
		Status:   j.status,
		Created:  j.created,
		Progress: j.progress,
		Result:   j.result,
	}
	if j.status.Terminal() {
		t := j.finished
		info.Finished = &t
	}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	return info
}

// newID returns a fresh 16-hex-char random job id.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("jobs: crypto/rand failed: " + err.Error()) // no sane fallback
	}
	return hex.EncodeToString(b[:])
}

// Start launches run as a new job under a context derived from parent:
// cancelling parent (e.g. the graph session dying) or calling Cancel
// aborts it. owner is an opaque tag recorded in Info (the session id);
// meta is an immutable caller-shaped annotation recorded alongside it
// (nil for none — the store stamps the graph version a ranking started
// on and its mutation policy). onExit, when non-nil, runs after the
// job reaches its terminal state — the store uses it to release the
// session's in-flight reservation. Start fails with ErrTooMany at the
// concurrent-execution bound and ErrClosed after Close.
func (m *Manager) Start(parent context.Context, owner string, meta any, run Runner, onExit func()) (*Job, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	if m.running >= m.cfg.MaxRunning {
		m.mu.Unlock()
		return nil, ErrTooMany
	}
	id := newID()
	for _, taken := m.jobs[id]; taken; _, taken = m.jobs[id] {
		id = newID()
	}
	ctx, cancel := context.WithCancelCause(parent)
	j := &Job{
		id:      id,
		owner:   owner,
		meta:    meta,
		created: time.Now(),
		cancel:  cancel,
		done:    make(chan struct{}),
		status:  StatusRunning,
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.running++
	m.evictLocked()
	m.mu.Unlock()

	go func() {
		result, err := run(ctx, j.report)
		j.finalize(result, err, ctx)
		cancel(context.Canceled) // release the context resources
		m.mu.Lock()
		m.running--
		m.mu.Unlock()
		close(j.done)
		if onExit != nil {
			onExit()
		}
	}()
	return j, nil
}

// report publishes a progress snapshot (dropped once terminal, so a
// racing report cannot overwrite a final state's last progress).
func (j *Job) report(p any) {
	j.mu.Lock()
	if j.status == StatusRunning {
		j.progress = p
	}
	j.mu.Unlock()
}

// finalize records the Runner's outcome. A cancellation error is
// surfaced as StatusCancelled with the context's cause (ErrCancelled,
// or e.g. the store's session-closed sentinel) as the recorded error.
func (j *Job) finalize(result any, err error, ctx context.Context) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.status = StatusDone
		j.result = result
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.status = StatusCancelled
		if cause := context.Cause(ctx); cause != nil && !errors.Is(cause, context.Canceled) {
			err = cause
		}
		j.err = err
	default:
		j.status = StatusFailed
		j.err = err
	}
}

// Get returns the job named id.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Cancel requests cancellation of the job named id. It returns as soon
// as the job's context is cancelled; the status flips to terminal when
// the Runner observes the cancellation (promptly, by contract). Already
// terminal jobs are left untouched.
func (m *Manager) Cancel(id string) (*Job, error) {
	j, err := m.Get(id)
	if err != nil {
		return nil, err
	}
	j.cancel(ErrCancelled)
	return j, nil
}

// List snapshots every tracked job, newest first.
func (m *Manager) List() []Info {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, id := range m.order {
		if j, ok := m.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	m.mu.Unlock()
	out := make([]Info, len(jobs))
	for i, j := range jobs {
		out[len(jobs)-1-i] = j.Info()
	}
	return out
}

// Len returns the number of tracked jobs.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.jobs)
}

// evictLocked drops the oldest terminal jobs while over MaxTracked.
// Caller holds m.mu.
func (m *Manager) evictLocked() {
	if len(m.jobs) <= m.cfg.MaxTracked {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		j, ok := m.jobs[id]
		if !ok {
			continue
		}
		if len(m.jobs) > m.cfg.MaxTracked && j.terminal() {
			delete(m.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

func (j *Job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status.Terminal()
}

// Close cancels every job (with ErrClosed as the cause) and rejects
// further Starts. Idempotent; it does not wait for runners to exit.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		j.cancel(ErrClosed)
	}
}
