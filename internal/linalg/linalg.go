// Package linalg is the sparse linear-algebra kernel behind
// random-walk (current-flow) betweenness: a deterministic
// Jacobi-preconditioned conjugate-gradient solver for graph-Laplacian
// systems L·x = b on connected undirected graphs.
//
// The Laplacian of a connected graph is symmetric positive
// semi-definite with nullspace span{1}, so L·x = b is solvable exactly
// when b ⊥ 1 and the solution is unique up to a constant. The solver
// pins both sides down by projecting onto the sum-zero subspace: b is
// recentred before iterating and the returned x satisfies Σx = 0 —
// the same normalisation the dense pseudo-inverse L⁺ gives, which is
// what the current-flow formulas downstream difference away anyway.
//
// Determinism: fixed iteration order, no randomness, no concurrency —
// two solves of the same system return bit-identical vectors, which
// the engine's result caches and the measure-generic estimation API
// rely on.
package linalg

import (
	"fmt"
	"math"

	"bcmh/internal/graph"
)

// DefaultTol is the default relative-residual convergence threshold
// ‖b−Lx‖ ≤ Tol·‖b‖. 1e-13 keeps the downstream current-flow columns
// within 1e-9 of a dense direct solve on the graph sizes the exact
// cross-checks cover.
const DefaultTol = 1e-13

// Laplacian is an operator view of a graph's combinatorial Laplacian:
// (L·x)_v = deg(v)·x_v − Σ_{u∼v} x_u. It never materialises the
// matrix; Apply streams the CSR once. Edge weights are ignored — the
// repo's weights are shortest-path distances, not conductances, so the
// random-walk kernel treats every edge as unit conductance.
type Laplacian struct {
	g   *graph.Graph
	deg []float64 // diagonal (degrees), the Jacobi preconditioner
}

// NewLaplacian builds the Laplacian operator of g, which must be
// undirected (the Laplacian of a directed graph is not symmetric and
// CG does not apply).
func NewLaplacian(g *graph.Graph) (*Laplacian, error) {
	if g == nil {
		return nil, fmt.Errorf("linalg: nil graph")
	}
	if g.Directed() {
		return nil, fmt.Errorf("linalg: Laplacian requires an undirected graph")
	}
	n := g.N()
	deg := make([]float64, n)
	for v := 0; v < n; v++ {
		deg[v] = float64(g.Degree(v))
	}
	return &Laplacian{g: g, deg: deg}, nil
}

// N returns the operator's dimension.
func (l *Laplacian) N() int { return l.g.N() }

// Degree returns deg(v), the diagonal entry L_vv.
func (l *Laplacian) Degree(v int) float64 { return l.deg[v] }

// Apply computes out = L·x.
func (l *Laplacian) Apply(x, out []float64) {
	for v := 0; v < l.g.N(); v++ {
		s := l.deg[v] * x[v]
		for _, u := range l.g.Neighbors(v) {
			s -= x[u]
		}
		out[v] = s
	}
}

// Solver solves L·x = b by preconditioned conjugate gradients, holding
// its scratch vectors so repeated solves on one graph (the deg(r)+1
// solves one random-walk column needs) allocate nothing. Not safe for
// concurrent use; clone one per goroutine.
type Solver struct {
	l *Laplacian

	// Tol is the relative-residual threshold (DefaultTol when zero).
	Tol float64
	// MaxIter caps CG iterations (10·n+100 when zero — far beyond the
	// O(√κ) iterations a connected graph needs at these tolerances).
	MaxIter int
	// Iters reports the iteration count of the last Solve.
	Iters int

	r, z, p, ap []float64
}

// NewSolver returns a solver over l with default tolerances.
func NewSolver(l *Laplacian) *Solver {
	n := l.N()
	return &Solver{
		l:  l,
		r:  make([]float64, n),
		z:  make([]float64, n),
		p:  make([]float64, n),
		ap: make([]float64, n),
	}
}

// Solve solves L·x = b, overwriting x with the sum-zero solution. b is
// recentred onto the Laplacian's range internally (b itself is not
// modified); callers passing b ⊥ 1 — every current-flow right-hand
// side e_s − e_t is — get the exact system they wrote. x's incoming
// content seeds the iteration (zeros are always a valid start).
func (s *Solver) Solve(b, x []float64) error {
	n := s.l.N()
	if len(b) != n || len(x) != n {
		return fmt.Errorf("linalg: Solve dimension mismatch (n=%d, len(b)=%d, len(x)=%d)", n, len(b), len(x))
	}
	tol := s.Tol
	if tol <= 0 {
		tol = DefaultTol
	}
	maxIter := s.MaxIter
	if maxIter <= 0 {
		maxIter = 10*n + 100
	}

	// Project b onto range(L) = 1⊥ and measure it there: a component
	// along 1 is unreachable and would stall the residual forever.
	var bMean float64
	for _, v := range b {
		bMean += v
	}
	bMean /= float64(n)
	var bNorm float64
	for i := 0; i < n; i++ {
		d := b[i] - bMean
		bNorm += d * d
	}
	bNorm = math.Sqrt(bNorm)
	if bNorm == 0 {
		for i := range x {
			x[i] = 0
		}
		s.Iters = 0
		return nil
	}
	threshold := tol * bNorm

	center(x)
	s.l.Apply(x, s.ap)
	for i := 0; i < n; i++ {
		s.r[i] = (b[i] - bMean) - s.ap[i]
	}

	var rz float64
	for i := 0; i < n; i++ {
		s.z[i] = s.r[i] / s.l.deg[i] // Jacobi: M⁻¹ = diag(deg)⁻¹
		rz += s.r[i] * s.z[i]
		s.p[i] = s.z[i]
	}

	for iter := 1; iter <= maxIter; iter++ {
		s.l.Apply(s.p, s.ap)
		var pap float64
		for i := 0; i < n; i++ {
			pap += s.p[i] * s.ap[i]
		}
		if pap <= 0 {
			// p drifted into the nullspace by rounding; recentre and
			// bail if nothing is left.
			center(s.p)
			s.l.Apply(s.p, s.ap)
			pap = 0
			for i := 0; i < n; i++ {
				pap += s.p[i] * s.ap[i]
			}
			if pap <= 0 {
				return fmt.Errorf("linalg: CG broke down at iteration %d (search direction in nullspace)", iter)
			}
		}
		alpha := rz / pap
		var rNorm float64
		for i := 0; i < n; i++ {
			x[i] += alpha * s.p[i]
			s.r[i] -= alpha * s.ap[i]
			rNorm += s.r[i] * s.r[i]
		}
		if math.Sqrt(rNorm) <= threshold {
			s.Iters = iter
			center(x)
			return nil
		}
		var rzNext float64
		for i := 0; i < n; i++ {
			s.z[i] = s.r[i] / s.l.deg[i]
			rzNext += s.r[i] * s.z[i]
		}
		beta := rzNext / rz
		rz = rzNext
		for i := 0; i < n; i++ {
			s.p[i] = s.z[i] + beta*s.p[i]
		}
	}
	return fmt.Errorf("linalg: CG failed to converge within %d iterations (relative tolerance %g)", maxIter, tol)
}

// center subtracts the mean, projecting v onto the sum-zero subspace.
func center(v []float64) {
	var mean float64
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	for i := range v {
		v[i] -= mean
	}
}
