package linalg

import (
	"math"
	"testing"

	"bcmh/internal/graph"
	"bcmh/internal/rng"
)

// denseSolve solves L·x = b (b ⊥ 1) by Gaussian elimination on the
// grounded Laplacian (vertex 0's row and column struck out), then
// recentres to the sum-zero representative — the direct reference the
// CG kernel is held to.
func denseSolve(t *testing.T, g *graph.Graph, b []float64) []float64 {
	t.Helper()
	n := g.N()
	m := n - 1 // grounded system size; unknowns are vertices 1..n-1
	a := make([][]float64, m)
	for i := 0; i < m; i++ {
		a[i] = make([]float64, m+1)
		v := i + 1
		a[i][i] = float64(g.Degree(v))
		for _, u := range g.Neighbors(v) {
			if u != 0 {
				a[i][u-1] -= 1
			}
		}
		a[i][m] = b[v]
	}
	for col := 0; col < m; col++ {
		pivot := col
		for row := col + 1; row < m; row++ {
			if math.Abs(a[row][col]) > math.Abs(a[pivot][col]) {
				pivot = row
			}
		}
		a[col], a[pivot] = a[pivot], a[col]
		if a[col][col] == 0 {
			t.Fatal("singular grounded Laplacian (graph disconnected?)")
		}
		for row := col + 1; row < m; row++ {
			f := a[row][col] / a[col][col]
			if f == 0 {
				continue
			}
			for k := col; k <= m; k++ {
				a[row][k] -= f * a[col][k]
			}
		}
	}
	x := make([]float64, n)
	for i := m - 1; i >= 0; i-- {
		s := a[i][m]
		for k := i + 1; k < m; k++ {
			s -= a[i][k] * x[k+1]
		}
		x[i+1] = s / a[i][i]
	}
	center(x)
	return x
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestSolveMatchesDense(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"karate", graph.KarateClub()},
		{"path", graph.Path(17)},
		{"cycle", graph.Cycle(12)},
		{"ba", graph.BarabasiAlbert(60, 3, rng.New(5))},
		{"er", mustConnected(t, graph.ErdosRenyiGNP(50, 0.12, rng.New(9)))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l, err := NewLaplacian(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			s := NewSolver(l)
			n := tc.g.N()
			r := rng.New(77)
			for trial := 0; trial < 3; trial++ {
				// Unit-dipole RHS e_s − e_t: the current-flow shape.
				b := make([]float64, n)
				src, dst := r.Intn(n), r.Intn(n)
				if src == dst {
					dst = (dst + 1) % n
				}
				b[src], b[dst] = 1, -1
				x := make([]float64, n)
				if err := s.Solve(b, x); err != nil {
					t.Fatal(err)
				}
				want := denseSolve(t, tc.g, b)
				if d := maxAbsDiff(x, want); d > 1e-9 {
					t.Errorf("trial %d: CG vs dense max diff %g", trial, d)
				}
				var sum float64
				for _, v := range x {
					sum += v
				}
				if math.Abs(sum) > 1e-9 {
					t.Errorf("trial %d: solution not sum-zero (Σx=%g)", trial, sum)
				}
			}
		})
	}
}

func TestSolveProjectsRHS(t *testing.T) {
	g := graph.KarateClub()
	l, err := NewLaplacian(g)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver(l)
	n := g.N()
	b := make([]float64, n)
	b[3], b[20] = 1, -1
	want := make([]float64, n)
	if err := s.Solve(b, want); err != nil {
		t.Fatal(err)
	}
	// Shifting b along 1 must not change the solution: only the
	// range-component of the RHS is solvable.
	shifted := make([]float64, n)
	for i := range b {
		shifted[i] = b[i] + 2.5
	}
	got := make([]float64, n)
	if err := s.Solve(shifted, got); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(got, want); d > 1e-11 {
		t.Errorf("constant-shifted RHS changed the solution by %g", d)
	}
}

func TestSolveDeterministic(t *testing.T) {
	g := graph.BarabasiAlbert(120, 3, rng.New(3))
	l, err := NewLaplacian(g)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, g.N())
	b[0], b[100] = 1, -1
	s1, s2 := NewSolver(l), NewSolver(l)
	x1, x2 := make([]float64, g.N()), make([]float64, g.N())
	if err := s1.Solve(b, x1); err != nil {
		t.Fatal(err)
	}
	if err := s2.Solve(b, x2); err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("solve not bit-deterministic at %d: %v vs %v", i, x1[i], x2[i])
		}
	}
}

func TestSolveEdgeCases(t *testing.T) {
	g := graph.KarateClub()
	l, err := NewLaplacian(g)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver(l)
	// Zero (or constant) RHS → zero solution, no iterations.
	x := make([]float64, g.N())
	x[5] = 99 // stale content must be cleared
	if err := s.Solve(make([]float64, g.N()), x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if v != 0 {
			t.Fatalf("zero RHS: x[%d]=%v", i, v)
		}
	}
	if s.Iters != 0 {
		t.Fatalf("zero RHS took %d iterations", s.Iters)
	}
	// Dimension mismatch.
	if err := s.Solve(make([]float64, 3), make([]float64, g.N())); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	// Directed graphs have no symmetric Laplacian.
	db := graph.NewDirectedBuilder(2)
	db.AddEdge(0, 1)
	dg, err := db.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLaplacian(dg); err == nil {
		t.Fatal("directed graph accepted")
	}
}

func mustConnected(t *testing.T, g *graph.Graph) *graph.Graph {
	t.Helper()
	if !graph.IsConnected(g) {
		lc, _, err := graph.LargestComponent(g)
		if err != nil {
			t.Fatal(err)
		}
		return lc
	}
	return g
}
