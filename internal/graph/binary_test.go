package graph

import (
	"bytes"
	"testing"

	"bcmh/internal/rng"
)

// encodeT is AppendBinary with the error funneled into the test.
func encodeT(t *testing.T, g *Graph, labels []int64) []byte {
	t.Helper()
	buf, err := AppendBinary(nil, g, labels)
	if err != nil {
		t.Fatalf("AppendBinary: %v", err)
	}
	return buf
}

// TestBinaryRoundTrip drives encode→decode→re-encode over unweighted,
// weighted, labeled, and version-bumped graphs: the decoded graph must
// re-encode to the exact same bytes (the canonicality the durability
// layer's bit-identical recovery guarantee rests on).
func TestBinaryRoundTrip(t *testing.T) {
	weighted := NewBuilder(5)
	weighted.AddWeightedEdge(0, 1, 2.5)
	weighted.AddWeightedEdge(1, 2, 0.5)
	weighted.AddWeightedEdge(2, 3, 1)
	weighted.AddWeightedEdge(3, 4, 7)
	weighted.AddWeightedEdge(0, 4, 1.25)

	// All weights 1 but still weighted-class: the Builder would build it
	// unweighted, so the codec must restore the class explicitly.
	allOnes := NewBuilder(3)
	allOnes.AddWeightedEdge(0, 1, 1)
	allOnes.AddWeightedEdge(1, 2, 1)
	g3 := allOnes.MustBuild()
	g3.weights = make([]float64, len(g3.adj))
	for i := range g3.weights {
		g3.weights[i] = 1
	}

	mutated, _, err := ApplyEdits(KarateClub(), []Edit{{Op: EditAdd, U: 4, V: 20}})
	if err != nil {
		t.Fatalf("ApplyEdits: %v", err)
	}

	cases := []struct {
		name   string
		g      *Graph
		labels []int64
	}{
		{"karate", KarateClub(), nil},
		{"weighted", weighted.MustBuild(), nil},
		{"weighted-all-ones", g3, nil},
		{"ba-labeled", BarabasiAlbert(60, 3, rng.New(7)), mkLabels(60)},
		{"mutated-version", mutated, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			enc := encodeT(t, tc.g, tc.labels)
			dec, labels, err := DecodeBinary(enc)
			if err != nil {
				t.Fatalf("DecodeBinary: %v", err)
			}
			if dec.N() != tc.g.N() || dec.M() != tc.g.M() {
				t.Fatalf("size mismatch: got n=%d m=%d, want n=%d m=%d", dec.N(), dec.M(), tc.g.N(), tc.g.M())
			}
			if dec.Version() != tc.g.Version() {
				t.Fatalf("version mismatch: got %d, want %d", dec.Version(), tc.g.Version())
			}
			if dec.Weighted() != tc.g.Weighted() {
				t.Fatalf("weight class changed across round trip: got %v, want %v", dec.Weighted(), tc.g.Weighted())
			}
			if (labels == nil) != (tc.labels == nil) {
				t.Fatalf("label table presence changed: got %v, want %v", labels != nil, tc.labels != nil)
			}
			for i := range tc.labels {
				if labels[i] != tc.labels[i] {
					t.Fatalf("label[%d] = %d, want %d", i, labels[i], tc.labels[i])
				}
			}
			re := encodeT(t, dec, labels)
			if !bytes.Equal(enc, re) {
				t.Fatalf("re-encoding differs: %d vs %d bytes", len(enc), len(re))
			}
		})
	}
}

func mkLabels(n int) []int64 {
	labels := make([]int64, n)
	for i := range labels {
		labels[i] = int64(1000 + 3*i)
	}
	return labels
}

// TestBinaryDecodeRejectsCorruption checks that structural damage the
// outer checksum might miss still fails loudly.
func TestBinaryDecodeRejectsCorruption(t *testing.T) {
	enc := encodeT(t, KarateClub(), mkLabels(34))
	if _, _, err := DecodeBinary(nil); err == nil {
		t.Fatal("empty payload decoded")
	}
	if _, _, err := DecodeBinary(enc[:len(enc)/2]); err == nil {
		t.Fatal("truncated payload decoded")
	}
	if _, _, err := DecodeBinary(append(append([]byte{}, enc...), 0)); err == nil {
		t.Fatal("payload with trailing garbage decoded")
	}
	bad := append([]byte{}, enc...)
	bad[0] |= 0x80 // unknown flag bit
	if _, _, err := DecodeBinary(bad); err == nil {
		t.Fatal("unknown flags decoded")
	}

	// A duplicate canonical pair: the Builder merges it, so the declared
	// edge count no longer matches — must be rejected, not silently
	// reshaped.
	dup := NewBuilder(2)
	dup.AddEdge(0, 1)
	dup.AddEdge(0, 1)
	// Encode by hand: AppendBinary on the built graph would dedupe.
	payload := []byte{0}
	payload = appendUvarints(payload, 2, 2, 0, 0, 1, 0, 1)
	if _, _, err := DecodeBinary(payload); err == nil {
		t.Fatal("duplicate-edge payload decoded")
	}

	// Non-canonical edge order (u >= v) is corruption by definition.
	payload = []byte{0}
	payload = appendUvarints(payload, 2, 1, 0, 1, 0)
	if _, _, err := DecodeBinary(payload); err == nil {
		t.Fatal("non-canonical (v,u) edge decoded")
	}

	// A huge declared size with a tiny payload must fail before any
	// large allocation.
	payload = []byte{0}
	payload = appendUvarints(payload, 1<<30, 1<<30, 0)
	if _, _, err := DecodeBinary(payload); err == nil {
		t.Fatal("implausible header decoded")
	}
}

func appendUvarints(buf []byte, vals ...uint64) []byte {
	for _, v := range vals {
		buf = appendUvarint(buf, v)
	}
	return buf
}

func appendUvarint(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}
