package graph

import (
	"fmt"
	"math"

	"bcmh/internal/rng"
)

// This file contains the synthetic graph families used by the
// experiments. Deterministic families (path, grid, barbell, ...) take no
// RNG; random families take an explicit *rng.RNG so runs reproduce.
// All generators return simple undirected graphs; random families are not
// guaranteed connected — use LargestComponent for the estimators, which
// require connected input.

// Path returns the path graph on n vertices: 0-1-2-...-(n-1).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.MustBuild()
}

// Cycle returns the cycle graph on n >= 3 vertices.
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: Cycle requires n >= 3")
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.MustBuild()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.MustBuild()
}

// Star returns the star graph with center 0 and n-1 leaves. The center
// is the canonical maximum-betweenness vertex: every leaf pair's unique
// shortest path passes through it.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return b.MustBuild()
}

// Wheel returns the wheel graph: a cycle on vertices 1..n-1 plus hub 0
// adjacent to all of them. Requires n >= 4.
func Wheel(n int) *Graph {
	if n < 4 {
		panic("graph: Wheel requires n >= 4")
	}
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
		next := i + 1
		if next == n {
			next = 1
		}
		b.AddEdge(i, next)
	}
	return b.MustBuild()
}

// Grid returns the rows×cols 2-D lattice with 4-neighbor connectivity.
// Vertex (r,c) has id r*cols+c. High-diameter, road-network-like regime.
func Grid(rows, cols int) *Graph {
	if rows < 1 || cols < 1 {
		panic("graph: Grid requires positive dimensions")
	}
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.MustBuild()
}

// KaryTree returns the complete k-ary tree on n vertices: vertex i's
// parent is (i-1)/k. Vertex 0 is the root.
func KaryTree(n, k int) *Graph {
	if k < 1 {
		panic("graph: KaryTree requires k >= 1")
	}
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(i, (i-1)/k)
	}
	return b.MustBuild()
}

// RandomTree returns a uniformly random labelled tree on n vertices via
// a random Prüfer sequence. Trees make good worst cases for betweenness
// samplers: every internal vertex lies on many unique shortest paths.
func RandomTree(n int, r *rng.RNG) *Graph {
	if n <= 0 {
		panic("graph: RandomTree requires n >= 1")
	}
	if n == 1 {
		return NewBuilder(1).MustBuild()
	}
	if n == 2 {
		b := NewBuilder(2)
		b.AddEdge(0, 1)
		return b.MustBuild()
	}
	prufer := make([]int, n-2)
	for i := range prufer {
		prufer[i] = r.Intn(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range prufer {
		degree[v]++
	}
	b := NewBuilder(n)
	// Classic decoding with a scan pointer over leaves.
	ptr := 0
	for degree[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, v := range prufer {
		b.AddEdge(leaf, v)
		degree[v]--
		if degree[v] == 1 && v < ptr {
			leaf = v
		} else {
			ptr++
			for degree[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	b.AddEdge(leaf, n-1)
	return b.MustBuild()
}

// ErdosRenyiGNP returns G(n, p): each of the C(n,2) edges present
// independently with probability p. Uses geometric skipping so the cost
// is O(n + m) rather than O(n²).
func ErdosRenyiGNP(n int, p float64, r *rng.RNG) *Graph {
	if p < 0 || p > 1 {
		panic("graph: ErdosRenyiGNP requires p in [0,1]")
	}
	b := NewBuilder(n)
	if p == 0 || n < 2 {
		return b.MustBuild()
	}
	if p == 1 {
		return Complete(n)
	}
	// Enumerate edge slots in row-major order, skipping geometrically.
	logq := math.Log(1 - p)
	v, w := 1, -1
	for v < n {
		u := r.Float64()
		skip := int(math.Floor(math.Log(1-u) / logq))
		w += 1 + skip
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			b.AddEdge(v, w)
		}
	}
	return b.MustBuild()
}

// ErdosRenyiGNM returns G(n, m): m distinct uniform edges. It panics if
// m exceeds C(n,2).
func ErdosRenyiGNM(n, m int, r *rng.RNG) *Graph {
	maxEdges := n * (n - 1) / 2
	if m < 0 || m > maxEdges {
		panic(fmt.Sprintf("graph: ErdosRenyiGNM m=%d out of [0,%d]", m, maxEdges))
	}
	b := NewBuilder(n)
	seen := make(map[[2]int]bool, m)
	for len(seen) < m {
		u := r.Intn(n)
		v := r.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if seen[key] {
			continue
		}
		seen[key] = true
		b.AddEdge(u, v)
	}
	return b.MustBuild()
}

// BarabasiAlbert returns a preferential-attachment graph: starting from
// a clique on m0 = attach vertices, each new vertex attaches to `attach`
// existing vertices chosen proportionally to degree (repeated-endpoint
// list method). Produces the power-law degree regime of [3,4].
func BarabasiAlbert(n, attach int, r *rng.RNG) *Graph {
	if attach < 1 || n < attach+1 {
		panic("graph: BarabasiAlbert requires 1 <= attach < n")
	}
	b := NewBuilder(n)
	// Repeated-endpoint list: vertex v appears once per incident edge.
	endpoints := make([]int, 0, 2*attach*n)
	for i := 0; i < attach; i++ {
		for j := i + 1; j < attach; j++ {
			b.AddEdge(i, j)
			endpoints = append(endpoints, i, j)
		}
	}
	if attach == 1 {
		// Degenerate seed: a single vertex with no edges; make vertex 0
		// an endpoint so the first attachment has a target.
		endpoints = append(endpoints, 0)
	}
	seen := make(map[int]bool, attach)
	targets := make([]int, 0, attach)
	for v := attach; v < n; v++ {
		for k := range seen {
			delete(seen, k)
		}
		targets = targets[:0]
		for len(targets) < attach {
			t := endpoints[r.Intn(len(endpoints))]
			if t != v && !seen[t] {
				seen[t] = true
				targets = append(targets, t)
			}
		}
		for _, t := range targets {
			b.AddEdge(v, t)
			endpoints = append(endpoints, v, t)
		}
	}
	return b.MustBuild()
}

// WattsStrogatz returns the small-world model: a ring lattice where each
// vertex connects to its k nearest neighbors (k even), with each edge
// rewired with probability beta. Self-loops and duplicates from rewiring
// are dropped by the builder.
func WattsStrogatz(n, k int, beta float64, r *rng.RNG) *Graph {
	if k < 2 || k%2 != 0 || k >= n {
		panic("graph: WattsStrogatz requires even k with 2 <= k < n")
	}
	if beta < 0 || beta > 1 {
		panic("graph: WattsStrogatz requires beta in [0,1]")
	}
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			target := (v + j) % n
			if r.Bernoulli(beta) {
				// Rewire to a uniform non-self endpoint.
				target = r.Intn(n)
				for target == v {
					target = r.Intn(n)
				}
			}
			b.AddEdge(v, target)
		}
	}
	return b.MustBuild()
}

// RandomRegular returns a d-regular graph on n vertices via the pairing
// (configuration) model with restarts; n*d must be even. For the small
// d used in experiments a valid pairing is found quickly.
func RandomRegular(n, d int, r *rng.RNG) *Graph {
	if d < 1 || d >= n || (n*d)%2 != 0 {
		panic("graph: RandomRegular requires 1 <= d < n with n*d even")
	}
	stubs := make([]int, n*d)
	for attempt := 0; attempt < 1000; attempt++ {
		for i := range stubs {
			stubs[i] = i / d
		}
		r.ShuffleInts(stubs)
		ok := true
		seen := make(map[[2]int]bool, n*d/2)
		b := NewBuilder(n)
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				ok = false
				break
			}
			if u > v {
				u, v = v, u
			}
			key := [2]int{u, v}
			if seen[key] {
				ok = false
				break
			}
			seen[key] = true
			b.AddEdge(u, v)
		}
		if ok {
			return b.MustBuild()
		}
	}
	panic("graph: RandomRegular failed to find a simple pairing in 1000 attempts")
}

// Barbell returns two cliques of sizes k1 and k2 joined by a path of
// pathLen intermediate vertices (pathLen may be 0, joining the cliques
// by a single edge through... the two bridge endpoints). The bridge
// vertices are balanced separators in the sense of Theorem 2 when
// k1, k2 = Θ(n). Vertex layout: [0,k1) clique A, [k1,k1+pathLen) path,
// [k1+pathLen, k1+pathLen+k2) clique B.
func Barbell(k1, k2, pathLen int) *Graph {
	if k1 < 1 || k2 < 1 || pathLen < 0 {
		panic("graph: Barbell requires positive clique sizes")
	}
	n := k1 + pathLen + k2
	b := NewBuilder(n)
	for i := 0; i < k1; i++ {
		for j := i + 1; j < k1; j++ {
			b.AddEdge(i, j)
		}
	}
	for i := 0; i < k2; i++ {
		for j := i + 1; j < k2; j++ {
			b.AddEdge(k1+pathLen+i, k1+pathLen+j)
		}
	}
	// Chain: last clique-A vertex -> path -> first clique-B vertex.
	prev := k1 - 1
	for i := 0; i < pathLen; i++ {
		b.AddEdge(prev, k1+i)
		prev = k1 + i
	}
	b.AddEdge(prev, k1+pathLen)
	return b.MustBuild()
}

// Lollipop returns a clique of size k with a path of pathLen vertices
// attached to clique vertex k-1.
func Lollipop(k, pathLen int) *Graph {
	if k < 1 || pathLen < 0 {
		panic("graph: Lollipop requires k >= 1, pathLen >= 0")
	}
	b := NewBuilder(k + pathLen)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			b.AddEdge(i, j)
		}
	}
	prev := k - 1
	for i := 0; i < pathLen; i++ {
		b.AddEdge(prev, k+i)
		prev = k + i
	}
	return b.MustBuild()
}

// DoubleStar returns two adjacent hubs (ids 0 and 1) with k1 leaves on
// hub 0 and k2 leaves on hub 1. Both hubs are balanced vertex separators
// when k1, k2 = Θ(n): removing either leaves components of sizes
// {1×k_own leaves..} plus one big component — exactly the Theorem 2
// regime (each hub's removal isolates Θ(n) vertices from Θ(n) others).
func DoubleStar(k1, k2 int) *Graph {
	b := NewBuilder(2 + k1 + k2)
	b.AddEdge(0, 1)
	for i := 0; i < k1; i++ {
		b.AddEdge(0, 2+i)
	}
	for i := 0; i < k2; i++ {
		b.AddEdge(1, 2+k1+i)
	}
	return b.MustBuild()
}

// StarOfCliques returns a center vertex (id 0) attached to one gateway
// vertex of each of `cliques` cliques of size cliqueSize. Removing the
// center shatters the graph into l = cliques components of equal size —
// the exact construction in the proof of Theorem 2.
func StarOfCliques(cliques, cliqueSize int) *Graph {
	if cliques < 1 || cliqueSize < 1 {
		panic("graph: StarOfCliques requires positive parameters")
	}
	n := 1 + cliques*cliqueSize
	b := NewBuilder(n)
	for c := 0; c < cliques; c++ {
		base := 1 + c*cliqueSize
		for i := 0; i < cliqueSize; i++ {
			for j := i + 1; j < cliqueSize; j++ {
				b.AddEdge(base+i, base+j)
			}
		}
		b.AddEdge(0, base)
	}
	return b.MustBuild()
}

// Caveman returns the connected caveman graph: `cliques` cliques of size
// `size` arranged in a ring, where one edge of each clique is re-wired
// to the next clique to connect them.
func Caveman(cliques, size int, _ *rng.RNG) *Graph {
	if cliques < 2 || size < 2 {
		panic("graph: Caveman requires cliques >= 2, size >= 2")
	}
	n := cliques * size
	b := NewBuilder(n)
	for c := 0; c < cliques; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if i == 0 && j == 1 {
					continue // re-wired below
				}
				b.AddEdge(base+i, base+j)
			}
		}
		next := ((c + 1) % cliques) * size
		b.AddEdge(base, next+1)
	}
	return b.MustBuild()
}

// PlantedPartition returns the planted-partition (stochastic block)
// model: `groups` groups of `perGroup` vertices; within-group edges with
// probability pIn, cross-group with probability pOut. Community regime
// for the Girvan–Newman example.
func PlantedPartition(groups, perGroup int, pIn, pOut float64, r *rng.RNG) *Graph {
	if groups < 1 || perGroup < 1 {
		panic("graph: PlantedPartition requires positive sizes")
	}
	if pIn < 0 || pIn > 1 || pOut < 0 || pOut > 1 {
		panic("graph: PlantedPartition requires probabilities in [0,1]")
	}
	n := groups * perGroup
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pOut
			if u/perGroup == v/perGroup {
				p = pIn
			}
			if r.Bernoulli(p) {
				b.AddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

// RandomGeometric places n points uniformly in the unit square and
// connects pairs within Euclidean distance radius. It returns the graph
// and the point coordinates (used by the routing example to draw and to
// define message endpoints).
func RandomGeometric(n int, radius float64, r *rng.RNG) (*Graph, [][2]float64) {
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{r.Float64(), r.Float64()}
	}
	b := NewBuilder(n)
	r2 := radius * radius
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := pts[i][0] - pts[j][0]
			dy := pts[i][1] - pts[j][1]
			if dx*dx+dy*dy <= r2 {
				b.AddEdge(i, j)
			}
		}
	}
	return b.MustBuild(), pts
}

// WithUniformWeights returns a weighted copy of g whose edge weights are
// drawn uniformly from [lo, hi). Used by the weighted-graph experiment
// (T9). It panics if g is directed (estimators are undirected-only).
func WithUniformWeights(g *Graph, lo, hi float64, r *rng.RNG) *Graph {
	if g.Directed() {
		panic("graph: WithUniformWeights requires an undirected graph")
	}
	if lo <= 0 || hi < lo {
		panic("graph: WithUniformWeights requires 0 < lo <= hi")
	}
	b := NewBuilder(g.N())
	g.ForEachEdge(func(u, v int, _ float64) {
		b.AddWeightedEdge(u, v, r.Range(lo, hi))
	})
	return b.MustBuild()
}
