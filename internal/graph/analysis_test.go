package graph

import (
	"strings"
	"testing"

	"bcmh/internal/rng"
)

func TestBFSDistances(t *testing.T) {
	g := Path(5)
	dist := make([]int, 5)
	BFSDistances(g, 0, dist)
	for i, d := range dist {
		if d != i {
			t.Fatalf("dist %v", dist)
		}
	}
	// Disconnected: isolated vertex stays -1.
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	h := b.MustBuild()
	dist3 := make([]int, 3)
	BFSDistances(h, 0, dist3)
	if dist3[2] != -1 {
		t.Fatalf("unreachable distance %d", dist3[2])
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.MustBuild()
	comp, sizes := ConnectedComponents(g)
	if len(sizes) != 3 {
		t.Fatalf("components %v", sizes)
	}
	if comp[0] != comp[2] || comp[3] != comp[4] || comp[0] == comp[3] || comp[5] == comp[0] {
		t.Fatalf("labels %v", comp)
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 6 {
		t.Fatalf("sizes %v don't cover graph", sizes)
	}
}

func TestIsConnected(t *testing.T) {
	if !IsConnected(Cycle(4)) {
		t.Fatal("cycle should be connected")
	}
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	if IsConnected(b.MustBuild()) {
		t.Fatal("graph with isolated vertices reported connected")
	}
}

func TestLargestComponent(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1) // size 2
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 2) // size 3 triangle
	// vertices 5,6 isolated
	g := b.MustBuild()
	lc, m, err := LargestComponent(g)
	if err != nil {
		t.Fatal(err)
	}
	if lc.N() != 3 || lc.M() != 3 {
		t.Fatalf("largest component n=%d m=%d", lc.N(), lc.M())
	}
	orig := map[int]bool{}
	for _, v := range m {
		orig[v] = true
	}
	if !orig[2] || !orig[3] || !orig[4] {
		t.Fatalf("mapping %v", m)
	}
}

func TestComponentsExcluding(t *testing.T) {
	g := Star(5)
	sizes, err := ComponentsExcluding(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 4 {
		t.Fatalf("star minus center: %v", sizes)
	}
	// Removing a leaf leaves one component of size 4.
	sizes, _ = ComponentsExcluding(g, 3)
	if len(sizes) != 1 || sizes[0] != 4 {
		t.Fatalf("star minus leaf: %v", sizes)
	}
	if _, err := ComponentsExcluding(g, 99); err == nil {
		t.Fatal("bad vertex accepted")
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	g := Path(10)
	ecc, far := Eccentricity(g, 0)
	if ecc != 9 || far != 9 {
		t.Fatalf("eccentricity %d far %d", ecc, far)
	}
	if ExactDiameter(g) != 9 {
		t.Fatalf("path diameter %d", ExactDiameter(g))
	}
	if ExactDiameter(Complete(5)) != 1 {
		t.Fatal("complete diameter")
	}
	if ExactDiameter(Cycle(8)) != 4 {
		t.Fatal("cycle diameter")
	}
}

func TestApproxDiameter(t *testing.T) {
	r := rng.New(3)
	// Double sweep is exact on trees and paths.
	if d := ApproxDiameter(Path(20), r, 1); d != 19 {
		t.Fatalf("approx diameter on path: %d", d)
	}
	tree := RandomTree(200, rng.New(7))
	if ApproxDiameter(tree, r, 2) != ExactDiameter(tree) {
		t.Fatal("double sweep should be exact on a tree")
	}
	// Always a valid lower bound.
	g := ErdosRenyiGNP(150, 0.05, rng.New(9))
	lc, _, _ := LargestComponent(g)
	if ApproxDiameter(lc, r, 3) > ExactDiameter(lc) {
		t.Fatal("approx diameter exceeded exact")
	}
	if ApproxDiameter(lc, r, 0) < 1 {
		t.Fatal("sweeps<1 should still sweep once")
	}
}

func TestVertexDiameter(t *testing.T) {
	if VertexDiameter(Path(5), rng.New(1), 1) != 5 {
		t.Fatal("vertex diameter of P5 should be 5")
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := DegreeHistogram(Star(5))
	if h[1] != 4 || h[4] != 1 {
		t.Fatalf("histogram %v", h)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	g := WithUniformWeights(Cycle(8), 1, 3, rng.New(5))
	var sb strings.Builder
	if err := WriteEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	h, ids, err := ReadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != g.N() || h.M() != g.M() || !h.Weighted() {
		t.Fatalf("round trip: %v vs %v", h, g)
	}
	// Re-map and compare weights.
	for newID, oldID := range ids {
		for i, nb := range h.Neighbors(newID) {
			oldNb := ids[nb]
			want, ok := g.Weight(int(oldID), int(oldNb))
			if !ok {
				t.Fatalf("edge (%d,%d) not in original", oldID, oldNb)
			}
			got := h.NeighborWeights(newID)[i]
			if got != want {
				t.Fatalf("weight mismatch %v vs %v", got, want)
			}
		}
	}
}

func TestReadEdgeListFormats(t *testing.T) {
	in := "# comment\n% also comment\n\n10 20\n20 30 2.5\n"
	g, ids, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("parsed n=%d m=%d", g.N(), g.M())
	}
	if ids[0] != 10 || ids[1] != 20 || ids[2] != 30 {
		t.Fatalf("id mapping %v", ids)
	}
	if !g.Weighted() {
		t.Fatal("mixed weights should yield weighted graph")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"1\n",        // too few fields
		"1 2 3 4\n",  // too many fields
		"a 2\n",      // bad endpoint
		"1 b\n",      // bad endpoint
		"1 2 zero\n", // bad weight
		"1 2 -4\n",   // non-positive weight
		"1 2 0\n",    // zero weight
	}
	for _, in := range cases {
		if _, _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

func TestReadWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/g.txt"
	g := KarateClub()
	if err := WriteEdgeListFile(path, g); err != nil {
		t.Fatal(err)
	}
	h, _, err := ReadEdgeListFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 34 || h.M() != 78 {
		t.Fatalf("file round trip: %v", h)
	}
	if _, _, err := ReadEdgeListFile(dir + "/missing.txt"); err == nil {
		t.Fatal("missing file accepted")
	}
}
