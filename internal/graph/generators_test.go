package graph

import (
	"testing"
	"testing/quick"

	"bcmh/internal/rng"
)

func TestPath(t *testing.T) {
	g := Path(5)
	if g.N() != 5 || g.M() != 4 {
		t.Fatalf("path: n=%d m=%d", g.N(), g.M())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Fatal("path degrees wrong")
	}
	if !IsConnected(g) {
		t.Fatal("path disconnected")
	}
	// Degenerate sizes.
	if Path(1).M() != 0 {
		t.Fatal("single-vertex path has edges")
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(6)
	if g.M() != 6 {
		t.Fatalf("cycle m=%d", g.M())
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 2 {
			t.Fatal("cycle not 2-regular")
		}
	}
}

func TestComplete(t *testing.T) {
	g := Complete(6)
	if g.M() != 15 {
		t.Fatalf("K6 m=%d", g.M())
	}
	if g.MaxDegree() != 5 {
		t.Fatal("K6 degree")
	}
}

func TestStarAndWheel(t *testing.T) {
	s := Star(9)
	if s.Degree(0) != 8 || s.M() != 8 {
		t.Fatal("star shape wrong")
	}
	w := Wheel(7)
	if w.Degree(0) != 6 {
		t.Fatal("wheel hub degree")
	}
	for v := 1; v < 7; v++ {
		if w.Degree(v) != 3 {
			t.Fatalf("wheel rim degree %d at %d", w.Degree(v), v)
		}
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("grid n=%d", g.N())
	}
	// Edges: 3*3 horizontal + 2*4 vertical = 17.
	if g.M() != 17 {
		t.Fatalf("grid m=%d", g.M())
	}
	if ExactDiameter(g) != 5 {
		t.Fatalf("grid diameter %d", ExactDiameter(g))
	}
}

func TestKaryTree(t *testing.T) {
	g := KaryTree(7, 2)
	if g.M() != 6 || !IsConnected(g) {
		t.Fatal("binary tree wrong")
	}
	if g.Degree(0) != 2 {
		t.Fatal("root degree")
	}
}

func TestRandomTree(t *testing.T) {
	r := rng.New(5)
	for _, n := range []int{1, 2, 3, 10, 100} {
		g := RandomTree(n, r)
		if g.N() != n || g.M() != n-1 && n > 0 {
			if !(n == 1 && g.M() == 0) {
				t.Fatalf("tree n=%d: m=%d", n, g.M())
			}
		}
		if !IsConnected(g) {
			t.Fatalf("tree n=%d disconnected", n)
		}
	}
}

func TestRandomTreeProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%60) + 1
		g := RandomTree(n, rng.New(seed))
		return g.N() == n && g.M() == n-1 && IsConnected(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyiGNP(t *testing.T) {
	r := rng.New(7)
	g := ErdosRenyiGNP(200, 0.05, r)
	if g.N() != 200 {
		t.Fatal("n wrong")
	}
	// Expected m = C(200,2)*0.05 = 995; allow wide slack.
	if g.M() < 700 || g.M() > 1300 {
		t.Fatalf("G(n,p) edge count %d far from expectation 995", g.M())
	}
	if ErdosRenyiGNP(10, 0, r).M() != 0 {
		t.Fatal("p=0 should be empty")
	}
	if ErdosRenyiGNP(10, 1, r).M() != 45 {
		t.Fatal("p=1 should be complete")
	}
}

func TestErdosRenyiGNM(t *testing.T) {
	r := rng.New(11)
	g := ErdosRenyiGNM(50, 100, r)
	if g.M() != 100 {
		t.Fatalf("G(n,m) m=%d", g.M())
	}
	full := ErdosRenyiGNM(5, 10, r)
	if full.M() != 10 {
		t.Fatal("complete G(n,m)")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	r := rng.New(13)
	g := BarabasiAlbert(500, 3, r)
	if g.N() != 500 {
		t.Fatal("n wrong")
	}
	// Each of the 497 non-seed vertices adds exactly 3 distinct edges
	// (duplicates to the same target are prevented by the target set),
	// plus the seed clique C(3,2)=3.
	want := 3 + 497*3
	if g.M() != want {
		t.Fatalf("BA m=%d want %d", g.M(), want)
	}
	if !IsConnected(g) {
		t.Fatal("BA disconnected")
	}
	// Scale-free signature: hub degree far above attach.
	if g.MaxDegree() < 20 {
		t.Fatalf("BA max degree %d suspiciously small", g.MaxDegree())
	}
	// attach = 1 gives a tree.
	tree := BarabasiAlbert(100, 1, rng.New(17))
	if tree.M() != 99 || !IsConnected(tree) {
		t.Fatalf("BA(·,1) not a tree: m=%d", tree.M())
	}
}

func TestWattsStrogatz(t *testing.T) {
	r := rng.New(19)
	g := WattsStrogatz(100, 4, 0.1, r)
	if g.N() != 100 {
		t.Fatal("n wrong")
	}
	// Without rewiring: exactly n*k/2 = 200 edges; with light rewiring
	// the builder may merge a few duplicates.
	if g.M() < 180 || g.M() > 200 {
		t.Fatalf("WS m=%d", g.M())
	}
	zero := WattsStrogatz(20, 4, 0, rng.New(23))
	if zero.M() != 40 {
		t.Fatalf("WS beta=0 m=%d", zero.M())
	}
	for v := 0; v < 20; v++ {
		if zero.Degree(v) != 4 {
			t.Fatal("WS beta=0 not 4-regular")
		}
	}
}

func TestRandomRegular(t *testing.T) {
	g := RandomRegular(50, 3, rng.New(29))
	for v := 0; v < 50; v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("vertex %d degree %d", v, g.Degree(v))
		}
	}
	if g.M() != 75 {
		t.Fatalf("m=%d", g.M())
	}
}

func TestBarbell(t *testing.T) {
	g := Barbell(5, 4, 3)
	if g.N() != 12 {
		t.Fatalf("n=%d", g.N())
	}
	// C(5,2) + C(4,2) + 4 path edges = 10+6+4 = 20.
	if g.M() != 20 {
		t.Fatalf("m=%d", g.M())
	}
	if !IsConnected(g) {
		t.Fatal("barbell disconnected")
	}
	// Path vertices are cut vertices: removing one disconnects.
	sizes, err := ComponentsExcluding(g, 5) // first path vertex
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 2 {
		t.Fatalf("cut vertex should split into 2 components, got %v", sizes)
	}
	// Zero-length path joins the cliques directly.
	direct := Barbell(3, 3, 0)
	if !direct.HasEdge(2, 3) {
		t.Fatal("barbell pathLen=0 bridge missing")
	}
}

func TestLollipop(t *testing.T) {
	g := Lollipop(4, 3)
	if g.N() != 7 || g.M() != 6+3 {
		t.Fatalf("lollipop n=%d m=%d", g.N(), g.M())
	}
	if !IsConnected(g) {
		t.Fatal("lollipop disconnected")
	}
}

func TestDoubleStar(t *testing.T) {
	g := DoubleStar(3, 4)
	if g.N() != 9 || g.M() != 8 {
		t.Fatalf("double star n=%d m=%d", g.N(), g.M())
	}
	if g.Degree(0) != 4 || g.Degree(1) != 5 {
		t.Fatal("hub degrees wrong")
	}
	// Removing hub 0 isolates its 3 leaves → 4 components.
	sizes, _ := ComponentsExcluding(g, 0)
	if len(sizes) != 4 {
		t.Fatalf("components after hub removal: %v", sizes)
	}
}

func TestStarOfCliques(t *testing.T) {
	g := StarOfCliques(4, 5)
	if g.N() != 21 {
		t.Fatalf("n=%d", g.N())
	}
	// 4 cliques of C(5,2)=10 plus 4 spokes.
	if g.M() != 44 {
		t.Fatalf("m=%d", g.M())
	}
	sizes, _ := ComponentsExcluding(g, 0)
	if len(sizes) != 4 {
		t.Fatalf("center removal should give 4 components, got %v", sizes)
	}
	for _, s := range sizes {
		if s != 5 {
			t.Fatalf("unequal component %v", sizes)
		}
	}
}

func TestCaveman(t *testing.T) {
	g := Caveman(4, 5, rng.New(31))
	if g.N() != 20 {
		t.Fatal("n wrong")
	}
	if !IsConnected(g) {
		t.Fatal("caveman disconnected")
	}
}

func TestPlantedPartition(t *testing.T) {
	r := rng.New(37)
	g := PlantedPartition(3, 30, 0.3, 0.01, r)
	if g.N() != 90 {
		t.Fatal("n wrong")
	}
	// Count in-group vs out-group edges: in-group should dominate per pair.
	var in, out int
	g.ForEachEdge(func(u, v int, _ float64) {
		if u/30 == v/30 {
			in++
		} else {
			out++
		}
	})
	// Expected in ≈ 3*C(30,2)*0.3 = 391, out ≈ 2700*0.01*... (2700 cross pairs per group pair *3) = 27*...
	if in < 250 {
		t.Fatalf("in-group edges %d too few", in)
	}
	if out > in/2 {
		t.Fatalf("out-group edges %d should be rare vs %d", out, in)
	}
}

func TestRandomGeometric(t *testing.T) {
	g, pts := RandomGeometric(100, 0.2, rng.New(41))
	if g.N() != 100 || len(pts) != 100 {
		t.Fatal("sizes wrong")
	}
	// Every edge must respect the radius.
	g.ForEachEdge(func(u, v int, _ float64) {
		dx := pts[u][0] - pts[v][0]
		dy := pts[u][1] - pts[v][1]
		if dx*dx+dy*dy > 0.2*0.2+1e-12 {
			t.Fatalf("edge (%d,%d) exceeds radius", u, v)
		}
	})
}

func TestWithUniformWeights(t *testing.T) {
	g := Cycle(10)
	w := WithUniformWeights(g, 1, 5, rng.New(43))
	if !w.Weighted() || w.M() != g.M() {
		t.Fatal("weighted copy malformed")
	}
	w.ForEachEdge(func(u, v int, wt float64) {
		if wt < 1 || wt >= 5 {
			t.Fatalf("weight %v out of range", wt)
		}
	})
}

func TestGeneratorPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"cycle-small", func() { Cycle(2) }},
		{"wheel-small", func() { Wheel(3) }},
		{"grid-zero", func() { Grid(0, 3) }},
		{"gnp-badp", func() { ErdosRenyiGNP(5, 1.5, rng.New(1)) }},
		{"gnm-overflow", func() { ErdosRenyiGNM(3, 10, rng.New(1)) }},
		{"ba-bad", func() { BarabasiAlbert(3, 3, rng.New(1)) }},
		{"ws-oddk", func() { WattsStrogatz(10, 3, 0.1, rng.New(1)) }},
		{"regular-odd", func() { RandomRegular(5, 3, rng.New(1)) }},
		{"karytree-badk", func() { KaryTree(5, 0) }},
		{"planted-badp", func() { PlantedPartition(2, 3, 2, 0, rng.New(1)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := BarabasiAlbert(200, 2, rng.New(99))
	b := BarabasiAlbert(200, 2, rng.New(99))
	if a.M() != b.M() {
		t.Fatal("BA not deterministic")
	}
	for v := 0; v < a.N(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			t.Fatalf("vertex %d adjacency differs", v)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("vertex %d adjacency differs", v)
			}
		}
	}
}

func TestKarateClub(t *testing.T) {
	g := KarateClub()
	if g.N() != 34 || g.M() != 78 {
		t.Fatalf("karate n=%d m=%d", g.N(), g.M())
	}
	if !IsConnected(g) {
		t.Fatal("karate disconnected")
	}
	// Known degrees: vertex 33 has degree 17, vertex 0 degree 16.
	if g.Degree(33) != 17 || g.Degree(0) != 16 {
		t.Fatalf("karate hub degrees: %d %d", g.Degree(33), g.Degree(0))
	}
	gt := KarateGroundTruth()
	if len(gt) != 34 || gt[0] != 0 || gt[33] != 1 {
		t.Fatal("ground truth labels wrong")
	}
}
