package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList throws arbitrary bytes at the edge-list parser. The
// parser feeds directly on uploaded request bodies in the served
// system, so the bar is: never panic, never allocate proportionally to
// a declared-but-absent size, and when a parse succeeds the resulting
// graph must satisfy the Builder invariants (canonical CSR, consistent
// n/m) — checked here by round-tripping through the binary codec.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n2 0\n")
	f.Add("# comment\n% konect header\n\n10 20 0.5\n20 30 2\n")
	f.Add("5 5\n")                   // self-loop
	f.Add("1 2\n2 1\n")              // duplicate under undirected dedup
	f.Add("0 1 -3\n")                // non-positive weight
	f.Add("a b\n")                   // non-numeric endpoints
	f.Add("1 2 3 4\n")               // too many fields
	f.Add("9223372036854775807 0\n") // max int64 label
	f.Add("1 2 1e308\n")             // huge weight
	f.Add("1 2 NaN\n")
	f.Add(strings.Repeat("#", 1<<12) + "\n0 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, idOf, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return // rejecting malformed input is the correct outcome
		}
		if g.N() != len(idOf) {
			t.Fatalf("n=%d but %d labels", g.N(), len(idOf))
		}
		enc, err := AppendBinary(nil, g, idOf)
		if err != nil {
			t.Fatalf("parsed graph does not encode: %v", err)
		}
		dec, labels, err := DecodeBinary(enc)
		if err != nil {
			t.Fatalf("parsed graph does not round-trip: %v", err)
		}
		re, err := AppendBinary(nil, dec, labels)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatal("round trip is not canonical")
		}
	})
}

// FuzzDecodeBinary drives the snapshot/WAL graph codec with arbitrary
// payloads: it must reject garbage without panicking or allocating
// huge buffers, and anything it accepts must re-encode identically.
func FuzzDecodeBinary(f *testing.F) {
	for _, g := range []*Graph{KarateClub(), Path(6)} {
		enc, err := AppendBinary(nil, g, nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		g, labels, err := DecodeBinary(in)
		if err != nil {
			return
		}
		re, err := AppendBinary(nil, g, labels)
		if err != nil {
			t.Fatalf("accepted payload does not re-encode: %v", err)
		}
		if !bytes.Equal(in, re) {
			t.Fatal("accepted payload is not canonical")
		}
	})
}
