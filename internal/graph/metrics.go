package graph

import (
	"math"
	"sort"
)

// Structural metrics used to characterise datasets (experiment T1) and
// to pick realistic candidate pools in the examples: local/global
// clustering coefficients, degeneracy (k-core decomposition), and
// degree assortativity.

// LocalClustering returns the local clustering coefficient of v: the
// fraction of pairs of v's neighbors that are themselves adjacent.
// Vertices of degree < 2 have coefficient 0.
func LocalClustering(g *Graph, v int) float64 {
	ns := g.Neighbors(v)
	d := len(ns)
	if d < 2 {
		return 0
	}
	links := 0
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if g.HasEdge(ns[i], ns[j]) {
				links++
			}
		}
	}
	return 2 * float64(links) / (float64(d) * float64(d-1))
}

// AverageClustering returns the mean local clustering coefficient over
// all vertices (Watts–Strogatz's C).
func AverageClustering(g *Graph) float64 {
	n := g.N()
	if n == 0 {
		return 0
	}
	var sum float64
	for v := 0; v < n; v++ {
		sum += LocalClustering(g, v)
	}
	return sum / float64(n)
}

// GlobalClustering returns the transitivity: 3 × triangles / open
// triads ("closed paths of length two over all paths of length two").
func GlobalClustering(g *Graph) float64 {
	var closed, triads float64
	for v := 0; v < g.N(); v++ {
		ns := g.Neighbors(v)
		d := len(ns)
		if d < 2 {
			continue
		}
		triads += float64(d*(d-1)) / 2
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if g.HasEdge(ns[i], ns[j]) {
					closed++
				}
			}
		}
	}
	if triads == 0 {
		return 0
	}
	return closed / triads
}

// CoreNumbers returns the k-core number of every vertex (the largest k
// such that the vertex belongs to a subgraph of minimum degree k),
// computed with the standard peeling algorithm in O(n + m).
func CoreNumbers(g *Graph) []int {
	n := g.N()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort vertices by degree.
	binStart := make([]int, maxDeg+2)
	for _, d := range deg {
		binStart[d+1]++
	}
	for i := 1; i < len(binStart); i++ {
		binStart[i] += binStart[i-1]
	}
	pos := make([]int, n)
	sorted := make([]int, n)
	fill := append([]int(nil), binStart[:maxDeg+1]...)
	for v := 0; v < n; v++ {
		pos[v] = fill[deg[v]]
		sorted[pos[v]] = v
		fill[deg[v]]++
	}
	core := append([]int(nil), deg...)
	for i := 0; i < n; i++ {
		v := sorted[i]
		for _, u := range g.Neighbors(v) {
			if core[u] > core[v] {
				// Move u one bucket down: swap with the first vertex of
				// its current bucket.
				du := core[u]
				pu := pos[u]
				pw := binStart[du]
				w := sorted[pw]
				if u != w {
					sorted[pu], sorted[pw] = w, u
					pos[u], pos[w] = pw, pu
				}
				binStart[du]++
				core[u]--
			}
		}
	}
	return core
}

// Degeneracy returns the graph's degeneracy (maximum core number).
func Degeneracy(g *Graph) int {
	best := 0
	for _, c := range CoreNumbers(g) {
		if c > best {
			best = c
		}
	}
	return best
}

// DegreeAssortativity returns the Pearson correlation of degrees across
// edges (Newman's r): positive when high-degree vertices attach to each
// other, negative for hub-and-spoke structure.
func DegreeAssortativity(g *Graph) float64 {
	var sx, sy, sxy, sxx, syy float64
	var cnt float64
	g.ForEachEdge(func(u, v int, _ float64) {
		// Count each undirected edge in both orientations so the
		// measure is symmetric.
		du, dv := float64(g.Degree(u)), float64(g.Degree(v))
		for _, p := range [2][2]float64{{du, dv}, {dv, du}} {
			sx += p[0]
			sy += p[1]
			sxy += p[0] * p[1]
			sxx += p[0] * p[0]
			syy += p[1] * p[1]
			cnt++
		}
	})
	if cnt == 0 {
		return 0
	}
	num := sxy/cnt - (sx/cnt)*(sy/cnt)
	den := (sxx/cnt - (sx/cnt)*(sx/cnt))
	den2 := (syy/cnt - (sy/cnt)*(sy/cnt))
	if den <= 0 || den2 <= 0 {
		return 0
	}
	return num / (math.Sqrt(den) * math.Sqrt(den2))
}

// TopKByDegree returns the k highest-degree vertices (ties broken by
// lower id), a helper shared by examples and experiments.
func TopKByDegree(g *Graph, k int) []int {
	idx := make([]int, g.N())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if g.Degree(idx[a]) != g.Degree(idx[b]) {
			return g.Degree(idx[a]) > g.Degree(idx[b])
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
