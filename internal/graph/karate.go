package graph

// karateEdges is Zachary's karate club network (Zachary 1977), the
// canonical community-detection benchmark used by Girvan & Newman [19].
// 34 vertices, 78 edges; vertex 0 is the instructor ("Mr. Hi"), vertex 33
// the club administrator. The split after the club's real-world conflict
// is the ground-truth two-community partition.
var karateEdges = [][2]int{
	{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {0, 7}, {0, 8},
	{0, 10}, {0, 11}, {0, 12}, {0, 13}, {0, 17}, {0, 19}, {0, 21}, {0, 31},
	{1, 2}, {1, 3}, {1, 7}, {1, 13}, {1, 17}, {1, 19}, {1, 21}, {1, 30},
	{2, 3}, {2, 7}, {2, 8}, {2, 9}, {2, 13}, {2, 27}, {2, 28}, {2, 32},
	{3, 7}, {3, 12}, {3, 13},
	{4, 6}, {4, 10},
	{5, 6}, {5, 10}, {5, 16},
	{6, 16},
	{8, 30}, {8, 32}, {8, 33},
	{9, 33},
	{13, 33},
	{14, 32}, {14, 33},
	{15, 32}, {15, 33},
	{18, 32}, {18, 33},
	{19, 33},
	{20, 32}, {20, 33},
	{22, 32}, {22, 33},
	{23, 25}, {23, 27}, {23, 29}, {23, 32}, {23, 33},
	{24, 25}, {24, 27}, {24, 31},
	{25, 31},
	{26, 29}, {26, 33},
	{27, 33},
	{28, 31}, {28, 33},
	{29, 32}, {29, 33},
	{30, 32}, {30, 33},
	{31, 32}, {31, 33},
	{32, 33},
}

// KarateClub returns Zachary's karate club graph (n=34, m=78).
func KarateClub() *Graph {
	g, err := FromEdges(34, karateEdges)
	if err != nil {
		panic(err) // static data; cannot fail
	}
	return g
}

// KarateGroundTruth returns the two-community ground-truth labels for
// the karate club (0 = instructor's faction, 1 = administrator's).
func KarateGroundTruth() []int {
	// Standard post-split membership.
	instructor := []int{0, 1, 2, 3, 4, 5, 6, 7, 10, 11, 12, 13, 16, 17, 19, 21}
	labels := make([]int, 34)
	for i := range labels {
		labels[i] = 1
	}
	for _, v := range instructor {
		labels[v] = 0
	}
	return labels
}
