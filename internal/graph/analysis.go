package graph

import (
	"fmt"

	"bcmh/internal/rng"
)

// BFSDistances computes unweighted shortest-path distances from s into
// dist, which must have length g.N(). Unreachable vertices get -1.
// The scratch queue is allocated internally; for allocation-free BFS in
// hot loops use package sssp.
func BFSDistances(g *Graph, s int, dist []int) {
	if len(dist) != g.N() {
		panic("graph: BFSDistances dist length mismatch")
	}
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int, 0, g.N())
	dist[s] = 0
	queue = append(queue, s)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Neighbors(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
}

// ConnectedComponents labels every vertex with a component id in
// [0, #components) and returns the label slice together with the size of
// each component. Directed graphs are treated as undirected (weak
// components).
func ConnectedComponents(g *Graph) (comp []int, sizes []int) {
	n := g.N()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := len(sizes)
		comp[s] = id
		queue = queue[:0]
		queue = append(queue, s)
		size := 0
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			size++
			for _, v := range g.Neighbors(u) {
				if comp[v] < 0 {
					comp[v] = id
					queue = append(queue, v)
				}
			}
		}
		sizes = append(sizes, size)
	}
	return comp, sizes
}

// IsConnected reports whether g is connected (weakly, for directed
// graphs). The empty graph is considered connected.
func IsConnected(g *Graph) bool {
	_, sizes := ConnectedComponents(g)
	return len(sizes) <= 1
}

// LargestComponent returns the subgraph induced by g's largest connected
// component and the mapping from new ids to original ids. Ties are
// broken toward the component containing the smallest original vertex.
func LargestComponent(g *Graph) (*Graph, []int, error) {
	comp, sizes := ConnectedComponents(g)
	if len(sizes) == 0 {
		return g, nil, nil
	}
	best := 0
	for i, s := range sizes {
		if s > sizes[best] {
			best = i
		}
	}
	keep := make([]int, 0, sizes[best])
	for v, c := range comp {
		if c == best {
			keep = append(keep, v)
		}
	}
	return InducedSubgraph(g, keep)
}

// ComponentsExcluding returns the sizes of the connected components of
// G \ v (v removed). This is the decomposition Theorem 2 reasons about:
// a vertex r is a balanced separator when at least two components of
// G \ r have Θ(n) vertices.
func ComponentsExcluding(g *Graph, v int) ([]int, error) {
	n := g.N()
	if v < 0 || v >= n {
		return nil, fmt.Errorf("graph: ComponentsExcluding vertex %d out of range", v)
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	comp[v] = -2 // excluded
	var sizes []int
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		id := len(sizes)
		comp[s] = id
		queue = queue[:0]
		queue = append(queue, s)
		size := 0
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			size++
			for _, w := range g.Neighbors(u) {
				if comp[w] == -1 {
					comp[w] = id
					queue = append(queue, w)
				}
			}
		}
		sizes = append(sizes, size)
	}
	return sizes, nil
}

// Eccentricity returns the greatest BFS distance from v to any reachable
// vertex, together with a farthest vertex.
func Eccentricity(g *Graph, v int) (ecc, farthest int) {
	dist := make([]int, g.N())
	BFSDistances(g, v, dist)
	farthest = v
	for u, d := range dist {
		if d > ecc {
			ecc = d
			farthest = u
		}
	}
	return ecc, farthest
}

// ApproxDiameter lower-bounds the diameter with k double sweeps from
// random start vertices (the standard heuristic; exact on trees). For
// the VC-dimension sample bound of [30] a lower bound on the vertex
// diameter still yields a valid — if slightly optimistic — sample size,
// and the experiments additionally report ExactDiameter on small graphs.
func ApproxDiameter(g *Graph, r *rng.RNG, sweeps int) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	if sweeps < 1 {
		sweeps = 1
	}
	best := 0
	for i := 0; i < sweeps; i++ {
		start := r.Intn(n)
		_, far := Eccentricity(g, start)
		ecc, _ := Eccentricity(g, far)
		if ecc > best {
			best = ecc
		}
	}
	return best
}

// ExactDiameter computes the diameter by BFS from every vertex: O(nm).
// Disconnected graphs report the largest finite eccentricity.
func ExactDiameter(g *Graph) int {
	n := g.N()
	dist := make([]int, n)
	diam := 0
	for s := 0; s < n; s++ {
		BFSDistances(g, s, dist)
		for _, d := range dist {
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// VertexDiameter returns the number of vertices on a longest shortest
// path (diameter+1 for unweighted graphs), the quantity the RK [30]
// sample bound needs.
func VertexDiameter(g *Graph, r *rng.RNG, sweeps int) int {
	return ApproxDiameter(g, r, sweeps) + 1
}

// DegreeHistogram returns counts[d] = number of vertices of degree d.
func DegreeHistogram(g *Graph) []int {
	counts := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.N(); v++ {
		counts[g.Degree(v)]++
	}
	return counts
}
