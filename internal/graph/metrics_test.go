package graph

import (
	"math"
	"testing"
	"testing/quick"

	"bcmh/internal/rng"
)

func TestLocalClustering(t *testing.T) {
	// Triangle: every vertex has coefficient 1.
	tri := Complete(3)
	for v := 0; v < 3; v++ {
		if LocalClustering(tri, v) != 1 {
			t.Fatalf("triangle clustering %v", LocalClustering(tri, v))
		}
	}
	// Star center: no neighbor pair adjacent → 0. Leaves: degree 1 → 0.
	s := Star(5)
	if LocalClustering(s, 0) != 0 || LocalClustering(s, 1) != 0 {
		t.Fatal("star clustering should be 0")
	}
	// Diamond 0-1,0-2,1-2,1-3,2-3: vertex 0 neighbors {1,2} adjacent →
	// 1; vertex 1 neighbors {0,2,3}: pairs (0,2) adjacent, (0,3) no,
	// (2,3) yes → 2/3.
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	if LocalClustering(g, 0) != 1 {
		t.Fatalf("diamond v0 clustering %v", LocalClustering(g, 0))
	}
	if math.Abs(LocalClustering(g, 1)-2.0/3.0) > 1e-12 {
		t.Fatalf("diamond v1 clustering %v", LocalClustering(g, 1))
	}
}

func TestAverageAndGlobalClustering(t *testing.T) {
	k := Complete(6)
	if math.Abs(AverageClustering(k)-1) > 1e-12 || math.Abs(GlobalClustering(k)-1) > 1e-12 {
		t.Fatal("complete graph clustering should be 1")
	}
	tree := KaryTree(15, 2)
	if AverageClustering(tree) != 0 || GlobalClustering(tree) != 0 {
		t.Fatal("tree clustering should be 0")
	}
	// WS with beta=0 has known clustering 3(k-2)/(4(k-1)) = 0.5 for k=4.
	ws := WattsStrogatz(40, 4, 0, rng.New(1))
	if math.Abs(AverageClustering(ws)-0.5) > 1e-12 {
		t.Fatalf("WS(k=4, beta=0) clustering %v want 0.5", AverageClustering(ws))
	}
}

func TestCoreNumbers(t *testing.T) {
	// Complete graph K5: every vertex has core number 4.
	for _, c := range CoreNumbers(Complete(5)) {
		if c != 4 {
			t.Fatalf("K5 core %d", c)
		}
	}
	// Tree: all core numbers 1.
	for _, c := range CoreNumbers(KaryTree(15, 2)) {
		if c != 1 {
			t.Fatalf("tree core %d", c)
		}
	}
	// Lollipop: clique vertices core k-1, path vertices core 1.
	g := Lollipop(5, 3)
	cores := CoreNumbers(g)
	for v := 0; v < 5; v++ {
		if cores[v] != 4 {
			t.Fatalf("lollipop clique core %d at %d", cores[v], v)
		}
	}
	for v := 5; v < 8; v++ {
		if cores[v] != 1 {
			t.Fatalf("lollipop tail core %d at %d", cores[v], v)
		}
	}
	if Degeneracy(g) != 4 {
		t.Fatalf("degeneracy %d", Degeneracy(g))
	}
}

func TestCoreNumbersProperty(t *testing.T) {
	// Invariants: core[v] <= deg(v); the subgraph induced by
	// {v: core[v] >= k} has min degree >= k within itself for k =
	// degeneracy.
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 5
		g := ErdosRenyiGNP(n, 5/float64(n), rng.New(seed))
		cores := CoreNumbers(g)
		for v := 0; v < n; v++ {
			if cores[v] > g.Degree(v) || cores[v] < 0 {
				return false
			}
		}
		k := Degeneracy(g)
		var keep []int
		inSet := make([]bool, n)
		for v, c := range cores {
			if c >= k {
				keep = append(keep, v)
				inSet[v] = true
			}
		}
		for _, v := range keep {
			d := 0
			for _, u := range g.Neighbors(v) {
				if inSet[u] {
					d++
				}
			}
			if d < k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeAssortativity(t *testing.T) {
	// Star: perfectly disassortative (r = -1).
	if got := DegreeAssortativity(Star(10)); math.Abs(got+1) > 1e-9 {
		t.Fatalf("star assortativity %v want -1", got)
	}
	// Regular graphs: degenerate (zero variance) → 0 by convention.
	if got := DegreeAssortativity(Cycle(10)); got != 0 {
		t.Fatalf("cycle assortativity %v want 0", got)
	}
	// BA graphs are known disassortative-to-neutral; just check range.
	got := DegreeAssortativity(BarabasiAlbert(300, 3, rng.New(3)))
	if got < -1 || got > 1 {
		t.Fatalf("assortativity out of range: %v", got)
	}
}

func TestTopKByDegree(t *testing.T) {
	g := Star(6)
	top := TopKByDegree(g, 2)
	if top[0] != 0 {
		t.Fatalf("star top degree %v", top)
	}
	if len(TopKByDegree(g, 100)) != 6 {
		t.Fatal("k > n should clamp")
	}
}
