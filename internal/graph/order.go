package graph

// Vertex orderings: a cached degree-descending relabeling consumed by
// the traversal kernels (sssp.BFS lays out its private CSR in this
// order so bottom-up sweeps stream hub rows cache-friendly), plus a
// whole-graph relabel for callers that want the public CSR itself
// reordered (engine.Config.DegreeRelabel composes it through the
// prepared-vertex mapping).

// Ordering is a bijective relabeling of a graph's vertices. Perm[v] is
// the slot assigned to vertex v; Inv[s] is the vertex occupying slot
// s. Both slices are immutable after construction and shared freely.
type Ordering struct {
	Perm []int32
	Inv  []int32
}

// DegreeOrdering returns the degree-descending ordering of g — slot 0
// holds the highest-degree vertex, ties broken by ascending vertex id
// — computed once and cached.
//
// The cache pointer is propagated along the mutation lineage
// (ApplyEdits, ApplyEditsOverlay, Compact, RebaseCompacted), so every
// version of one graph answers with the *same* Ordering value. That
// stability is deliberate, and stronger than freshness: traversal
// kernels reseated across versions and the per-target snapshots they
// share (mcmc.BufferPool) recognize each other's layout by pointer
// identity, which only works if the whole lineage agrees on one
// ordering. Edit batches rarely move the degree ranking enough to
// matter for locality; when they do, a rebuilt lineage (a fresh Build
// or DecodeBinary) starts a fresh cache.
func (g *Graph) DegreeOrdering() *Ordering {
	if o := g.degOrd.Load(); o != nil {
		return o
	}
	o := computeDegreeOrdering(g)
	if g.degOrd.CompareAndSwap(nil, o) {
		return o
	}
	// A concurrent caller computed the same ordering first; adopt its
	// value so pointer identity holds across all users.
	return g.degOrd.Load()
}

// computeDegreeOrdering builds the degree-descending ordering by
// counting sort: O(n + maxDegree), deterministic (ties ascending by
// vertex id).
func computeDegreeOrdering(g *Graph) *Ordering {
	n := g.N()
	o := &Ordering{Perm: make([]int32, n), Inv: make([]int32, n)}
	deg := make([]int32, n)
	maxd := int32(0)
	for v := 0; v < n; v++ {
		d := int32(g.Degree(v))
		deg[v] = d
		if d > maxd {
			maxd = d
		}
	}
	// start[d] = first slot of degree-d vertices under descending order.
	start := make([]int32, maxd+2)
	for _, d := range deg {
		start[d]++
	}
	sum := int32(0)
	for d := maxd; d >= 0; d-- {
		c := start[d]
		start[d] = sum
		sum += c
	}
	for v := 0; v < n; v++ {
		s := start[deg[v]]
		start[deg[v]]++
		o.Perm[v] = s
		o.Inv[s] = int32(v)
	}
	return o
}

// RelabelByDegree returns a copy of g with vertices renumbered in
// degree-descending order (new vertex i is the i-th highest-degree
// vertex of g, ties by ascending old id), along with newToOld mapping
// new ids back to g's ids. Edge weights are preserved; the overlay, if
// any, is folded in. The relabeled graph starts a fresh ordering cache
// — its DegreeOrdering is (near-)identity by construction.
func RelabelByDegree(g *Graph) (*Graph, []int, error) {
	ord := g.DegreeOrdering()
	n := g.N()
	newToOld := make([]int, n)
	for s := 0; s < n; s++ {
		newToOld[s] = int(ord.Inv[s])
	}
	var b *Builder
	if g.Directed() {
		b = NewDirectedBuilder(n)
	} else {
		b = NewBuilder(n)
	}
	for u := 0; u < n; u++ {
		nu := int(ord.Perm[u])
		ns := g.Neighbors(u)
		ws := g.NeighborWeights(u)
		for i, v := range ns {
			nv := int(ord.Perm[v])
			if !g.Directed() && nv < nu {
				continue // add each undirected edge once
			}
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			b.AddWeightedEdge(nu, nv, w)
		}
	}
	out, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	out.version = g.version
	return out, newToOld, nil
}
