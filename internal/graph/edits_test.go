package graph

import (
	"fmt"
	"sort"
	"testing"

	"bcmh/internal/rng"
)

// edgeKey packs an undirected pair for map keying.
func edgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// edgeSet extracts g's undirected edges with weights.
func edgeSet(g *Graph) map[[2]int]float64 {
	out := make(map[[2]int]float64, g.M())
	g.ForEachEdge(func(u, v int, w float64) {
		out[edgeKey(u, v)] = w
	})
	return out
}

// rebuild constructs a fresh graph from an edge set via the Builder —
// the from-scratch reference ApplyEdits must match bit for bit.
func rebuild(n int, edges map[[2]int]float64, weighted bool) *Graph {
	keys := make([][2]int, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	b := NewBuilder(n)
	for _, k := range keys {
		if weighted {
			b.AddWeightedEdge(k[0], k[1], edges[k])
		} else {
			b.AddEdge(k[0], k[1])
		}
	}
	return b.MustBuild()
}

// requireSameCSR asserts two graphs have identical offsets, adjacency,
// weights, and edge counts.
func requireSameCSR(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("size mismatch: got n=%d m=%d, want n=%d m=%d", got.N(), got.M(), want.N(), want.M())
	}
	for i, o := range want.offsets {
		if got.offsets[i] != o {
			t.Fatalf("offsets[%d] = %d, want %d", i, got.offsets[i], o)
		}
	}
	for i, a := range want.adj {
		if got.adj[i] != a {
			t.Fatalf("adj[%d] = %d, want %d", i, got.adj[i], a)
		}
	}
	if (got.weights == nil) != (want.weights == nil) {
		t.Fatalf("weightedness mismatch: got %v, want %v", got.weights != nil, want.weights != nil)
	}
	for i, w := range want.weights {
		if got.weights[i] != w {
			t.Fatalf("weights[%d] = %v, want %v", i, got.weights[i], w)
		}
	}
}

// TestApplyEditsRandomScriptsMatchRebuild is the edit-script property
// test: for random add/remove batches applied over multiple
// generations, the ApplyEdits output is bit-identical (offsets, adj,
// weights) to a Builder rebuilt from scratch over the expected edge
// set, and the input graph of every generation is left untouched.
func TestApplyEditsRandomScriptsMatchRebuild(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		t.Run(fmt.Sprintf("weighted=%v", weighted), func(t *testing.T) {
			r := rng.New(42)
			const n = 60
			g := BarabasiAlbert(n, 3, r)
			if weighted {
				g = WithUniformWeights(g, 1, 5, r)
			}
			want := edgeSet(g)
			for gen := 1; gen <= 25; gen++ {
				// Snapshot the input's arrays to prove immutability.
				beforeAdj := append([]int(nil), g.adj...)
				beforeOff := append([]int(nil), g.offsets...)

				// Random batch: mix of valid adds (absent pairs) and
				// removes (present pairs), at most one edit per pair.
				var edits []Edit
				touched := map[[2]int]bool{}
				for len(edits) < 8 {
					u, v := r.Intn(n), r.Intn(n)
					if u == v || touched[edgeKey(u, v)] {
						continue
					}
					touched[edgeKey(u, v)] = true
					if _, exists := want[edgeKey(u, v)]; exists {
						edits = append(edits, Edit{Op: EditRemove, U: u, V: v})
					} else {
						w := 1.0
						if weighted {
							w = float64(1 + r.Intn(4))
						}
						edits = append(edits, Edit{Op: EditAdd, U: u, V: v, W: w})
					}
				}

				next, rep, err := ApplyEdits(g, edits)
				if err != nil {
					t.Fatalf("gen %d: ApplyEdits: %v", gen, err)
				}
				if next.Version() != g.Version()+1 {
					t.Fatalf("gen %d: version %d, want %d", gen, next.Version(), g.Version()+1)
				}
				// The input must be bit-identical to its snapshot.
				for i := range beforeAdj {
					if g.adj[i] != beforeAdj[i] {
						t.Fatalf("gen %d: input adj mutated at %d", gen, i)
					}
				}
				for i := range beforeOff {
					if g.offsets[i] != beforeOff[i] {
						t.Fatalf("gen %d: input offsets mutated at %d", gen, i)
					}
				}

				// Maintain the reference edge set and compare CSRs.
				wantAdded, wantRemoved := 0, 0
				for _, e := range edits {
					if e.Op == EditAdd {
						w := e.W
						if w == 0 {
							w = 1
						}
						want[edgeKey(e.U, e.V)] = w
						wantAdded++
					} else {
						delete(want, edgeKey(e.U, e.V))
						wantRemoved++
					}
				}
				if rep.Added != wantAdded || rep.Removed != wantRemoved {
					t.Fatalf("gen %d: report added/removed = %d/%d, want %d/%d",
						gen, rep.Added, rep.Removed, wantAdded, wantRemoved)
				}
				requireSameCSR(t, next, rebuild(n, want, weighted))
				g = next
			}
		})
	}
}

func TestApplyEditsChangedSetAndPairs(t *testing.T) {
	g := Cycle(6)
	next, rep, err := ApplyEdits(g, []Edit{
		{Op: EditAdd, U: 0, V: 3},
		{Op: EditRemove, U: 5, V: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantChanged := []int{0, 3, 4, 5}
	if len(rep.Changed) != len(wantChanged) {
		t.Fatalf("changed = %v, want %v", rep.Changed, wantChanged)
	}
	for i, v := range wantChanged {
		if rep.Changed[i] != v {
			t.Fatalf("changed = %v, want %v", rep.Changed, wantChanged)
		}
	}
	if len(rep.Pairs) != 2 || rep.Pairs[0] != [2]int{0, 3} || rep.Pairs[1] != [2]int{4, 5} {
		t.Fatalf("pairs = %v", rep.Pairs)
	}
	if !next.HasEdge(0, 3) || !next.HasEdge(3, 0) || next.HasEdge(4, 5) || next.HasEdge(5, 4) {
		t.Fatal("edit not reflected in adjacency")
	}
	if next.M() != g.M() {
		t.Fatalf("m = %d, want %d", next.M(), g.M())
	}
}

func TestApplyEditsRejections(t *testing.T) {
	g := Cycle(5) // edges {0,1},{1,2},{2,3},{3,4},{4,0}
	cases := []struct {
		name  string
		edits []Edit
	}{
		{"empty", nil},
		{"out of range", []Edit{{Op: EditAdd, U: 0, V: 5}}},
		{"self loop", []Edit{{Op: EditAdd, U: 2, V: 2}}},
		{"add existing", []Edit{{Op: EditAdd, U: 0, V: 1}}},
		{"remove missing", []Edit{{Op: EditRemove, U: 0, V: 2}}},
		{"duplicate pair", []Edit{{Op: EditAdd, U: 0, V: 2}, {Op: EditAdd, U: 2, V: 0}}},
		{"add+remove same pair", []Edit{{Op: EditAdd, U: 0, V: 2}, {Op: EditRemove, U: 2, V: 0}}},
		{"weighted add on unweighted", []Edit{{Op: EditAdd, U: 0, V: 2, W: 2.5}}},
		{"negative weight", []Edit{{Op: EditAdd, U: 0, V: 2, W: -1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := ApplyEdits(g, tc.edits); err == nil {
				t.Fatalf("ApplyEdits(%v) succeeded, want error", tc.edits)
			}
		})
	}
	if _, _, err := ApplyEdits(nil, []Edit{{Op: EditAdd, U: 0, V: 1}}); err == nil {
		t.Fatal("nil graph accepted")
	}
	d := NewDirectedBuilder(3)
	d.AddEdge(0, 1)
	dg, _ := d.Build()
	if _, _, err := ApplyEdits(dg, []Edit{{Op: EditAdd, U: 1, V: 2}}); err == nil {
		t.Fatal("directed graph accepted")
	}
}

func TestApplyEditsCanDisconnect(t *testing.T) {
	// Removing a bridge is allowed at this layer (serving layers reject
	// it); the result must still be a coherent CSR.
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	next, _, err := ApplyEdits(g, []Edit{{Op: EditRemove, U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if IsConnected(next) {
		t.Fatal("expected a disconnected result")
	}
	requireSameCSR(t, next, rebuild(4, edgeSet(next), false))
}

func TestVersionZeroFromBuilder(t *testing.T) {
	if v := Cycle(4).Version(); v != 0 {
		t.Fatalf("builder graph version = %d, want 0", v)
	}
}
