// Package graph provides the graph substrate for the betweenness
// estimators: an immutable compressed-sparse-row (CSR) representation
// with a mutable builder, readers and writers for edge-list files,
// synthetic generators spanning the structural regimes the paper's
// evaluation needs (scale-free, homogeneous random, small-world, grid,
// separator families, community structure), and structural analyses
// (connectivity, components, diameter).
//
// The paper assumes simple, undirected, connected, loop-free graphs;
// Builder enforces simplicity (self-loops dropped, parallel edges
// merged) and the analyses in this package let callers extract the
// largest connected component when a generator or input file is not
// connected.
//
// Mutation comes in two costs. ApplyEdits builds a fresh CSR one
// version ahead by a linear O(n+m) merge — the right trade for
// occasional batches. ApplyEditsOverlay absorbs a batch in O(batch)
// as a delta overlay: replacement adjacency lists for the touched
// vertices over the shared, unmoved base CSR, so Neighbors and the
// traversal kernels see the mutated graph without a rebuild. An
// overlaid graph answers every accessor identically to its compacted
// form (Compact folds the overlay into a flat CSR preserving version
// and adjacency order, so traversals are bit-identical), and
// ShouldCompactOverlay says when a lineage has outgrown the overlay
// representation; RebaseCompacted re-anchors batches that landed
// while a background fold ran. AffectedByEdits and the amortized
// AffectedTracker bound which vertices an edit batch can have
// affected (by the biconnected-block factorization of shortest
// paths), which is what lets caches and warm chains survive
// mutations.
package graph

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Graph is an immutable simple graph in CSR form. Vertices are the
// integers [0, N()). For undirected graphs every edge {u,v} is stored in
// both adjacency lists; M() counts each such edge once.
type Graph struct {
	offsets  []int     // len n+1; adjacency of v is adj[offsets[v]:offsets[v+1]]
	adj      []int     // concatenated sorted adjacency lists
	weights  []float64 // parallel to adj; nil for unweighted graphs
	m        int       // number of edges (undirected edges counted once)
	directed bool
	version  uint64   // mutation stamp: 0 from a Builder, +1 per ApplyEdits
	ov       *overlay // delta overlay over the base CSR; nil for clean graphs

	// degOrd caches DegreeOrdering, propagated along the mutation
	// lineage so every version agrees on one ordering (see
	// DegreeOrdering for why stability beats freshness).
	degOrd atomic.Pointer[Ordering]
}

// inheritOrdering copies g's cached degree ordering into next, keeping
// a mutation lineage on one ordering value. Called by every derivation
// that preserves the vertex set (ApplyEdits, ApplyEditsOverlay,
// Compact, RebaseCompacted).
func (next *Graph) inheritOrdering(g *Graph) {
	if o := g.degOrd.Load(); o != nil {
		next.degOrd.Store(o)
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// M returns the number of edges; for undirected graphs each edge {u,v}
// counts once.
func (g *Graph) M() int { return g.m }

// Directed reports whether the graph was built as directed.
func (g *Graph) Directed() bool { return g.directed }

// Weighted reports whether the graph carries edge weights.
func (g *Graph) Weighted() bool { return g.weights != nil }

// Degree returns the out-degree of v (degree, for undirected graphs).
func (g *Graph) Degree(v int) int {
	if g.ov != nil {
		if i := g.ov.find(v); i >= 0 {
			return len(g.ov.lists[i])
		}
	}
	return g.offsets[v+1] - g.offsets[v]
}

// Neighbors returns the sorted adjacency list of v as a shared slice.
// Callers must not modify it.
func (g *Graph) Neighbors(v int) []int {
	if g.ov != nil {
		if i := g.ov.find(v); i >= 0 {
			return g.ov.lists[i]
		}
	}
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// NeighborWeights returns the edge weights parallel to Neighbors(v).
// It returns nil for unweighted graphs.
func (g *Graph) NeighborWeights(v int) []float64 {
	if g.weights == nil {
		return nil
	}
	if g.ov != nil {
		if i := g.ov.find(v); i >= 0 {
			return g.ov.wlists[i]
		}
	}
	return g.weights[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether the edge (u,v) exists, by binary search in u's
// adjacency list.
func (g *Graph) HasEdge(u, v int) bool {
	ns := g.Neighbors(u)
	i := sort.SearchInts(ns, v)
	return i < len(ns) && ns[i] == v
}

// Weight returns the weight of edge (u,v) and whether the edge exists.
// Unweighted graphs report weight 1 for existing edges.
func (g *Graph) Weight(u, v int) (float64, bool) {
	ns := g.Neighbors(u)
	i := sort.SearchInts(ns, v)
	if i >= len(ns) || ns[i] != v {
		return 0, false
	}
	if ws := g.NeighborWeights(u); ws != nil {
		return ws[i], true
	}
	return 1, true
}

// ForEachEdge invokes fn once per edge. For undirected graphs each edge
// {u,v} is reported once with u < v; for directed graphs every arc (u,v)
// is reported. The weight is 1 for unweighted graphs.
func (g *Graph) ForEachEdge(fn func(u, v int, w float64)) {
	for u := 0; u < g.N(); u++ {
		ns := g.Neighbors(u)
		ws := g.NeighborWeights(u)
		for i, v := range ns {
			if !g.directed && v < u {
				continue
			}
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			fn(u, v, w)
		}
	}
}

// MaxDegree returns the maximum degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	maxDeg := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// String returns a compact one-line summary, handy in logs.
func (g *Graph) String() string {
	kind := "undirected"
	if g.directed {
		kind = "directed"
	}
	w := ""
	if g.Weighted() {
		w = " weighted"
	}
	return fmt.Sprintf("graph{n=%d m=%d %s%s}", g.N(), g.M(), kind, w)
}

// Builder accumulates edges and produces an immutable Graph. The zero
// value is not usable; construct with NewBuilder. Builders are not safe
// for concurrent use.
type Builder struct {
	n        int
	directed bool
	us, vs   []int
	ws       []float64
	weighted bool
	err      error
}

// NewBuilder returns a builder for an undirected simple graph on n
// vertices (0..n-1).
func NewBuilder(n int) *Builder { return &Builder{n: n} }

// NewDirectedBuilder returns a builder for a directed simple graph on n
// vertices. The betweenness estimators require undirected input, but the
// substrate supports directed graphs for completeness (e.g. SPDs are
// DAGs and the traversal code is shared).
func NewDirectedBuilder(n int) *Builder { return &Builder{n: n, directed: true} }

// AddEdge records the unweighted edge (u,v). Self-loops are silently
// dropped (the paper assumes loop-free graphs); out-of-range endpoints
// put the builder in an error state reported by Build.
func (b *Builder) AddEdge(u, v int) { b.AddWeightedEdge(u, v, 1) }

// AddWeightedEdge records the edge (u,v) with weight w. Once any edge
// carries a weight other than 1, the built graph is weighted. Negative
// or zero weights are an error: the shortest-path machinery requires
// positive weights, exactly as the paper assumes.
func (b *Builder) AddWeightedEdge(u, v int, w float64) {
	if b.err != nil {
		return
	}
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		b.err = fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
		return
	}
	if w <= 0 {
		b.err = fmt.Errorf("graph: edge (%d,%d) has non-positive weight %v", u, v, w)
		return
	}
	if u == v {
		return // drop self-loop
	}
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
	b.ws = append(b.ws, w)
	if w != 1 {
		b.weighted = true
	}
}

// Build produces the immutable Graph. Parallel edges are merged keeping
// the first occurrence's weight. Build may be called once; the builder
// should be discarded afterwards.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	type half struct {
		to int
		w  float64
	}
	// Degree counting pass (both directions for undirected).
	deg := make([]int, b.n)
	for i := range b.us {
		deg[b.us[i]]++
		if !b.directed {
			deg[b.vs[i]]++
		}
	}
	offsets := make([]int, b.n+1)
	for v := 0; v < b.n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	tmp := make([]half, offsets[b.n])
	fill := make([]int, b.n)
	copy(fill, offsets[:b.n])
	for i := range b.us {
		u, v, w := b.us[i], b.vs[i], b.ws[i]
		tmp[fill[u]] = half{v, w}
		fill[u]++
		if !b.directed {
			tmp[fill[v]] = half{u, w}
			fill[v]++
		}
	}
	// Sort each adjacency list and drop duplicate endpoints.
	adj := make([]int, 0, len(tmp))
	var weights []float64
	if b.weighted {
		weights = make([]float64, 0, len(tmp))
	}
	newOffsets := make([]int, b.n+1)
	for v := 0; v < b.n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		lst := tmp[lo:hi]
		sort.Slice(lst, func(i, j int) bool { return lst[i].to < lst[j].to })
		newOffsets[v] = len(adj)
		for i, h := range lst {
			if i > 0 && h.to == lst[i-1].to {
				continue // merge parallel edge, keep first weight
			}
			adj = append(adj, h.to)
			if b.weighted {
				weights = append(weights, h.w)
			}
		}
	}
	newOffsets[b.n] = len(adj)
	g := &Graph{offsets: newOffsets, adj: adj, weights: weights, directed: b.directed}
	if b.directed {
		g.m = len(adj)
	} else {
		g.m = len(adj) / 2
	}
	return g, nil
}

// MustBuild is Build that panics on error, for tests and generators whose
// inputs are valid by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges builds an undirected graph from an explicit edge list.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// InducedSubgraph returns the subgraph induced by keep (which must
// contain distinct valid vertex ids) along with the mapping from new ids
// to original ids (newToOld[i] is the original id of new vertex i).
// Edge weights are preserved.
func InducedSubgraph(g *Graph, keep []int) (*Graph, []int, error) {
	oldToNew := make(map[int]int, len(keep))
	newToOld := make([]int, len(keep))
	for i, v := range keep {
		if v < 0 || v >= g.N() {
			return nil, nil, fmt.Errorf("graph: induced subgraph vertex %d out of range", v)
		}
		if _, dup := oldToNew[v]; dup {
			return nil, nil, fmt.Errorf("graph: induced subgraph vertex %d repeated", v)
		}
		oldToNew[v] = i
		newToOld[i] = v
	}
	var b *Builder
	if g.directed {
		b = NewDirectedBuilder(len(keep))
	} else {
		b = NewBuilder(len(keep))
	}
	for _, u := range keep {
		nu := oldToNew[u]
		ns := g.Neighbors(u)
		ws := g.NeighborWeights(u)
		for i, v := range ns {
			nv, ok := oldToNew[v]
			if !ok {
				continue
			}
			if !g.directed && nv < nu {
				continue // add each undirected edge once
			}
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			b.AddWeightedEdge(nu, nv, w)
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sub, newToOld, nil
}

// RemoveVertex returns a copy of g with vertex v isolated (all incident
// edges removed). Vertex ids are unchanged, which keeps betweenness
// bookkeeping straightforward for the cascading-failure example.
func RemoveVertex(g *Graph, v int) (*Graph, error) {
	if v < 0 || v >= g.N() {
		return nil, fmt.Errorf("graph: RemoveVertex %d out of range", v)
	}
	var b *Builder
	if g.directed {
		b = NewDirectedBuilder(g.N())
	} else {
		b = NewBuilder(g.N())
	}
	g.ForEachEdge(func(u, w int, wt float64) {
		if u == v || w == v {
			return
		}
		b.AddWeightedEdge(u, w, wt)
	})
	return b.Build()
}
