package graph

// Binary edge-list codec: a compact, deterministic serialization of a
// Graph (plus an optional external-label table) used by the durability
// layer (internal/durable) as the payload of on-disk snapshots. The
// encoding is canonical — two structurally identical graphs produce
// identical bytes, and decoding rebuilds the CSR through the same
// Builder path every in-memory construction uses — so a decoded graph
// is bit-identical to the one that was encoded, adjacency order and
// version stamp included. That property is what makes crash recovery
// testable: estimates are seeded-deterministic per CSR, so a recovered
// graph answers exactly like the original.
//
// Layout (all integers little-endian or uvarint as noted):
//
//	byte    flags (1: weighted, 2: labeled)
//	uvarint n, m, version
//	m ×     edge: uvarint u, uvarint v (u < v), [8-byte w bits if weighted]
//	n ×     varint label (only if labeled)
//
// Framing (magic, length prefix, checksum) belongs to the file formats
// built on top of this payload, not to the payload itself.

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary payload flags.
const (
	binFlagWeighted = 1 << 0
	binFlagLabeled  = 1 << 1
)

// AppendBinary appends the canonical binary encoding of g (and, when
// labels is non-nil, the external-label table, which must have length
// g.N()) to buf and returns the extended slice. Directed graphs are not
// supported — the serving stack that persists graphs is
// undirected-only.
func AppendBinary(buf []byte, g *Graph, labels []int64) ([]byte, error) {
	if g == nil {
		return nil, fmt.Errorf("graph: AppendBinary on nil graph")
	}
	if g.Directed() {
		return nil, fmt.Errorf("graph: AppendBinary does not support directed graphs")
	}
	if labels != nil && len(labels) != g.N() {
		return nil, fmt.Errorf("graph: AppendBinary label table has %d entries, graph has %d vertices", len(labels), g.N())
	}
	var flags byte
	if g.Weighted() {
		flags |= binFlagWeighted
	}
	if labels != nil {
		flags |= binFlagLabeled
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(g.N()))
	buf = binary.AppendUvarint(buf, uint64(g.M()))
	buf = binary.AppendUvarint(buf, g.Version())
	weighted := g.Weighted()
	g.ForEachEdge(func(u, v int, w float64) {
		buf = binary.AppendUvarint(buf, uint64(u))
		buf = binary.AppendUvarint(buf, uint64(v))
		if weighted {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(w))
		}
	})
	if labels != nil {
		for _, l := range labels {
			buf = binary.AppendVarint(buf, l)
		}
	}
	return buf, nil
}

// DecodeBinary parses an AppendBinary payload back into a graph and its
// label table (nil when the payload carries none). The decoded graph's
// Version matches the encoded one, so a recovered mutation lineage
// continues from where the snapshot was taken. Every structural
// invariant is re-validated through the Builder; additionally the
// declared edge count must match the payload exactly, so a truncated or
// bit-flipped payload that slips past an outer checksum still fails
// loudly instead of yielding a silently different graph.
func DecodeBinary(data []byte) (*Graph, []int64, error) {
	fail := func(format string, args ...any) (*Graph, []int64, error) {
		return nil, nil, fmt.Errorf("graph: binary decode: "+format, args...)
	}
	if len(data) < 1 {
		return fail("empty payload")
	}
	flags := data[0]
	if flags&^(binFlagWeighted|binFlagLabeled) != 0 {
		return fail("unknown flags %#x", flags)
	}
	data = data[1:]
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, false
		}
		data = data[n:]
		return v, true
	}
	n, ok1 := next()
	m, ok2 := next()
	version, ok3 := next()
	if !ok1 || !ok2 || !ok3 {
		return fail("truncated header")
	}
	const maxVertices = 1 << 31
	if n > maxVertices || m > maxVertices {
		return fail("implausible size n=%d m=%d", n, m)
	}
	// Each edge needs at least two uvarint bytes; each label at least
	// one. Checking the floor before allocating keeps an adversarial
	// header from provoking a huge allocation for a tiny payload.
	minBytes := 2 * m
	if flags&binFlagWeighted != 0 {
		minBytes += 8 * m
	}
	if flags&binFlagLabeled != 0 {
		minBytes += n
	}
	if uint64(len(data)) < minBytes {
		return fail("payload too short for n=%d m=%d (%d bytes left, need ≥ %d)", n, m, len(data), minBytes)
	}
	b := NewBuilder(int(n))
	weighted := flags&binFlagWeighted != 0
	for i := uint64(0); i < m; i++ {
		u, ok1 := next()
		v, ok2 := next()
		if !ok1 || !ok2 {
			return fail("truncated edge %d/%d", i, m)
		}
		w := 1.0
		if weighted {
			if len(data) < 8 {
				return fail("truncated weight of edge %d/%d", i, m)
			}
			w = math.Float64frombits(binary.LittleEndian.Uint64(data))
			data = data[8:]
			if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
				return fail("edge %d has invalid weight %v", i, w)
			}
		}
		if u >= n || v >= n || u >= v {
			// The canonical encoding emits u < v; anything else is
			// corruption, not a stylistic variant.
			return fail("edge %d endpoints (%d,%d) out of canonical range (n=%d)", i, u, v, n)
		}
		b.AddWeightedEdge(int(u), int(v), w)
	}
	var labels []int64
	if flags&binFlagLabeled != 0 {
		labels = make([]int64, n)
		for i := range labels {
			l, nn := binary.Varint(data)
			if nn <= 0 {
				return fail("truncated label %d/%d", i, n)
			}
			data = data[nn:]
			labels[i] = l
		}
	}
	if len(data) != 0 {
		return fail("%d trailing bytes after payload", len(data))
	}
	g, err := b.Build()
	if err != nil {
		return fail("%v", err)
	}
	if g.M() != int(m) {
		// Duplicate edge pairs in a corrupt payload are merged by the
		// Builder; surface the mismatch instead of returning a graph
		// that differs from what was declared.
		return fail("edge count mismatch: declared %d, built %d (duplicate pairs?)", m, g.M())
	}
	if weighted != g.Weighted() {
		// An all-1.0 "weighted" payload would build an unweighted CSR
		// and change the graph's weight class across a save/load cycle;
		// force the class to round-trip.
		g.weights = make([]float64, len(g.adj))
		for i := range g.weights {
			g.weights[i] = 1
		}
	}
	g.version = version
	return g, labels, nil
}
