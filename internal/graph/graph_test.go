package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"bcmh/internal/rng"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(1), g.Degree(0))
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("undirected edge missing a direction")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge")
	}
	if g.Directed() || g.Weighted() {
		t.Fatal("flags wrong")
	}
}

func TestBuilderDropsSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(1, 1)
	b.AddEdge(0, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("self-loop not dropped: m=%d", g.M())
	}
}

func TestBuilderMergesParallelEdges(t *testing.T) {
	b := NewBuilder(2)
	b.AddWeightedEdge(0, 1, 5)
	b.AddWeightedEdge(1, 0, 9)
	b.AddWeightedEdge(0, 1, 7)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("parallel edges not merged: m=%d", g.M())
	}
	w, ok := g.Weight(0, 1)
	if !ok || w != 5 {
		t.Fatalf("kept weight %v, want first-added 5", w)
	}
	// Both directions must agree on the kept weight.
	w2, _ := g.Weight(1, 0)
	if w2 != 5 {
		t.Fatalf("asymmetric weight after merge: %v vs %v", w, w2)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 5)
	if _, err := b.Build(); err == nil {
		t.Fatal("out-of-range edge not rejected")
	}
	b2 := NewBuilder(2)
	b2.AddWeightedEdge(0, 1, -1)
	if _, err := b2.Build(); err == nil {
		t.Fatal("negative weight not rejected")
	}
	b3 := NewBuilder(2)
	b3.AddWeightedEdge(0, 1, 0)
	if _, err := b3.Build(); err == nil {
		t.Fatal("zero weight not rejected")
	}
}

func TestDirectedBuilder(t *testing.T) {
	b := NewDirectedBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Directed() {
		t.Fatal("not directed")
	}
	if g.M() != 2 {
		t.Fatalf("m=%d", g.M())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("directed adjacency wrong")
	}
}

func TestNeighborsSorted(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 4)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	ns := g.Neighbors(0)
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Fatalf("adjacency not sorted: %v", ns)
		}
	}
}

func TestWeightLookup(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 2.5)
	b.AddWeightedEdge(1, 2, 4)
	g := b.MustBuild()
	if !g.Weighted() {
		t.Fatal("graph should be weighted")
	}
	if w, ok := g.Weight(0, 1); !ok || w != 2.5 {
		t.Fatalf("weight(0,1) = %v,%v", w, ok)
	}
	if _, ok := g.Weight(0, 2); ok {
		t.Fatal("missing edge reported present")
	}
	// Unweighted graph reports weight 1.
	u := Path(3)
	if w, ok := u.Weight(0, 1); !ok || w != 1 {
		t.Fatalf("unweighted weight = %v,%v", w, ok)
	}
	if u.NeighborWeights(0) != nil {
		t.Fatal("unweighted graph should have nil weights")
	}
}

func TestForEachEdgeUndirectedOnce(t *testing.T) {
	g := Cycle(5)
	count := 0
	g.ForEachEdge(func(u, v int, w float64) {
		if u >= v {
			t.Fatalf("edge (%d,%d) not reported with u<v", u, v)
		}
		if w != 1 {
			t.Fatalf("unweighted edge weight %v", w)
		}
		count++
	})
	if count != 5 {
		t.Fatalf("edge count %d", count)
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil || g.M() != 2 {
		t.Fatalf("FromEdges: %v %v", g, err)
	}
	if _, err := FromEdges(2, [][2]int{{0, 9}}); err == nil {
		t.Fatal("bad edge accepted")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Cycle(6)
	sub, m, err := InducedSubgraph(g, []int{0, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 4 {
		t.Fatalf("sub n=%d", sub.N())
	}
	// Edges kept: 0-1, 1-2. Vertex 4 is isolated in the subgraph.
	if sub.M() != 2 {
		t.Fatalf("sub m=%d", sub.M())
	}
	if m[3] != 4 {
		t.Fatalf("mapping %v", m)
	}
	if _, _, err := InducedSubgraph(g, []int{0, 0}); err == nil {
		t.Fatal("duplicate vertex accepted")
	}
	if _, _, err := InducedSubgraph(g, []int{99}); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
}

func TestInducedSubgraphKeepsWeights(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 3)
	b.AddWeightedEdge(1, 2, 7)
	g := b.MustBuild()
	sub, _, err := InducedSubgraph(g, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := sub.Weight(0, 1); !ok || w != 7 {
		t.Fatalf("subgraph weight %v %v", w, ok)
	}
}

func TestRemoveVertex(t *testing.T) {
	g := Star(5)
	h, err := RemoveVertex(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 5 || h.M() != 0 {
		t.Fatalf("removing star center: n=%d m=%d", h.N(), h.M())
	}
	if _, err := RemoveVertex(g, -1); err == nil {
		t.Fatal("bad vertex accepted")
	}
}

func TestMaxDegreeAndString(t *testing.T) {
	g := Star(7)
	if g.MaxDegree() != 6 {
		t.Fatalf("max degree %d", g.MaxDegree())
	}
	if !strings.Contains(g.String(), "n=7") {
		t.Fatalf("string: %s", g.String())
	}
}

func TestBuildProperty(t *testing.T) {
	// Random edge multisets: built graph is simple, degree sum = 2m,
	// adjacency symmetric.
	f := func(seed uint64, nRaw, eRaw uint8) bool {
		n := int(nRaw%20) + 2
		e := int(eRaw % 60)
		r := rng.New(seed)
		b := NewBuilder(n)
		for i := 0; i < e; i++ {
			b.AddEdge(r.Intn(n), r.Intn(n))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		degSum := 0
		for v := 0; v < n; v++ {
			ns := g.Neighbors(v)
			degSum += len(ns)
			for i, u := range ns {
				if u == v {
					return false // self loop survived
				}
				if i > 0 && ns[i-1] >= u {
					return false // unsorted or duplicate
				}
				if !g.HasEdge(u, v) {
					return false // asymmetric
				}
			}
		}
		return degSum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
