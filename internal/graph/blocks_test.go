package graph

import (
	"sort"
	"testing"

	"bcmh/internal/rng"
)

// twoRings builds two cycles sharing the articulation vertex `join`:
// ring A = 0..a-1 (cycle), ring B = a-1, a, .., a+b-2 back to a-1.
// Blocks: {0..a-1} and {a-1, a..a+b-2}; cut vertex a-1.
func twoRings(a, b int) *Graph {
	n := a + b - 1
	bld := NewBuilder(n)
	for i := 0; i < a; i++ {
		bld.AddEdge(i, (i+1)%a)
	}
	ring := append([]int{a - 1}, make([]int, 0, b-1)...)
	for i := 0; i < b-1; i++ {
		ring = append(ring, a+i)
	}
	for i := range ring {
		bld.AddEdge(ring[i], ring[(i+1)%len(ring)])
	}
	return bld.MustBuild()
}

func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}

func TestBlocksTwoRings(t *testing.T) {
	g := twoRings(5, 4) // ring A = 0..4, ring B = 4,5,6,7; cut = 4
	bf := Blocks(g)
	if len(bf.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2 (%v)", len(bf.Blocks), bf.Blocks)
	}
	var got [][]int
	for _, blk := range bf.Blocks {
		got = append(got, sortedCopy(blk))
	}
	sort.Slice(got, func(i, j int) bool { return got[i][0] < got[j][0] })
	want := [][]int{{0, 1, 2, 3, 4}, {4, 5, 6, 7}}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("block %d = %v, want %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("block %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		if bf.IsCut[v] != (v == 4) {
			t.Fatalf("IsCut[%d] = %v", v, bf.IsCut[v])
		}
	}
}

func TestBlocksBridgesAndTree(t *testing.T) {
	// Path of 4 vertices: every edge a bridge, middle vertices cut.
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	bf := Blocks(g)
	if len(bf.Blocks) != 3 {
		t.Fatalf("blocks = %v, want 3 bridges", bf.Blocks)
	}
	for v, want := range []bool{false, true, true, false} {
		if bf.IsCut[v] != want {
			t.Fatalf("IsCut[%d] = %v, want %v", v, bf.IsCut[v], want)
		}
	}
}

func TestAffectedByEditsInsertionWithinBlock(t *testing.T) {
	// Chord inserted inside ring B: ring A's interior (everything but
	// the cut vertex) must be unaffected.
	g := twoRings(6, 6) // A = 0..5, cut = 5, B = 5..10
	next, rep, err := ApplyEdits(g, []Edit{{Op: EditAdd, U: 6, V: 9}})
	if err != nil {
		t.Fatal(err)
	}
	affected := AffectedByEdits(next, rep.Pairs)
	for v := 0; v < 5; v++ {
		if affected[v] {
			t.Fatalf("ring-A vertex %d marked affected by a ring-B chord", v)
		}
	}
	for v := 5; v <= 10; v++ {
		if !affected[v] {
			t.Fatalf("ring-B vertex %d not marked affected", v)
		}
	}
}

func TestAffectedByEditsRemovalSplitsBlock(t *testing.T) {
	// Removing a ring-B edge splits B into a path of bridges; the
	// affected set must cover the whole former block (the u–v tree
	// path), still excluding ring A's interior.
	g := twoRings(6, 6)
	next, rep, err := ApplyEdits(g, []Edit{{Op: EditRemove, U: 7, V: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if !IsConnected(next) {
		t.Fatal("removal should keep the graph connected")
	}
	affected := AffectedByEdits(next, rep.Pairs)
	for v := 0; v < 5; v++ {
		if affected[v] {
			t.Fatalf("ring-A vertex %d marked affected by a ring-B removal", v)
		}
	}
	for v := 5; v <= 10; v++ {
		if !affected[v] {
			t.Fatalf("former ring-B vertex %d not marked affected", v)
		}
	}
}

func TestAffectedByEditsEmptyPairsMarksAll(t *testing.T) {
	g := Cycle(5)
	affected := AffectedByEdits(g, nil)
	for v, a := range affected {
		if !a {
			t.Fatalf("vertex %d not affected under unknown edits", v)
		}
	}
}

// TestAffectedSoundnessAgainstExactBC is the soundness cross-check:
// on random sparse graphs (bridge-rich, so blocks are small), any
// vertex NOT in the affected set must keep its exact betweenness
// after the edit. Exact BC here is a self-contained O(n³)
// Floyd-Warshall dependency count — independent of internal/brandes,
// which this package must not import.
func TestAffectedSoundnessAgainstExactBC(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 20; trial++ {
		n := 16 + r.Intn(10)
		var g *Graph
		for {
			g = ErdosRenyiGNM(n, n+r.Intn(n/2), r)
			if IsConnected(g) {
				break
			}
		}
		var edits []Edit
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		if g.HasEdge(u, v) {
			edits = []Edit{{Op: EditRemove, U: u, V: v}}
		} else {
			edits = []Edit{{Op: EditAdd, U: u, V: v}}
		}
		next, rep, err := ApplyEdits(g, edits)
		if err != nil {
			t.Fatal(err)
		}
		if !IsConnected(next) {
			continue // serving layers reject these; soundness claim is for connected results
		}
		affected := AffectedByEdits(next, rep.Pairs)
		before := exactBCBrute(g)
		after := exactBCBrute(next)
		for w := 0; w < n; w++ {
			if affected[w] {
				continue
			}
			if diff := before[w] - after[w]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("trial %d: vertex %d outside the affected set changed BC %.12f -> %.12f (edit %v)",
					trial, w, before[w], after[w], edits)
			}
		}
	}
}

// exactBCBrute computes unnormalized betweenness by Floyd-Warshall
// distances + path counts and direct triple enumeration. O(n³); test
// sizes only.
func exactBCBrute(g *Graph) []float64 {
	n := g.N()
	const inf = 1 << 29
	d := make([][]int, n)
	sigma := make([][]float64, n)
	for i := range d {
		d[i] = make([]int, n)
		sigma[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = inf
		}
		d[i][i] = 0
		sigma[i][i] = 1
	}
	g.ForEachEdge(func(u, v int, _ float64) {
		d[u][v], d[v][u] = 1, 1
		sigma[u][v], sigma[v][u] = 1, 1
	})
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j || i == k || j == k {
					continue
				}
				if d[i][k]+d[k][j] < d[i][j] {
					d[i][j] = d[i][k] + d[k][j]
					sigma[i][j] = sigma[i][k] * sigma[k][j]
				} else if d[i][k]+d[k][j] == d[i][j] && d[i][j] < inf {
					sigma[i][j] += sigma[i][k] * sigma[k][j]
				}
			}
		}
	}
	bc := make([]float64, n)
	for w := 0; w < n; w++ {
		for s := 0; s < n; s++ {
			for t := 0; t < n; t++ {
				if s == t || s == w || t == w || d[s][t] >= inf {
					continue
				}
				if d[s][w]+d[w][t] == d[s][t] && sigma[s][t] > 0 {
					bc[w] += sigma[s][w] * sigma[w][t] / sigma[s][t]
				}
			}
		}
	}
	return bc
}
