package graph

// Biconnected-component (block) analysis, the soundness machinery
// behind the engine's μ-cache retention across graph mutations.
//
// The rule rests on the classical block factorization of shortest
// paths (the observation behind incremental-betweenness algorithms
// such as iCENTRAL): every s–t path crosses the same ordered sequence
// of blocks and cut vertices of the block-cut tree, so the shortest
// s–t path count factors into per-block counts between fixed
// entry/exit cut vertices, and for any vertex r the pair-dependency
// ratio σ_st(r)/σ_st equals the within-block ratio at r's own block.
// An edge edit confined to other blocks multiplies numerator and
// denominator by the same factor and changes neither the ratio nor
// which pairs route through r's block. Hence the whole dependency
// column δ_·•(r) — and with it μ(r), BC(r), and every other MuStats
// field — is exactly unchanged for every vertex r outside the edit's
// affected region.
//
// The affected region of an edit {u,v} is, on the *post-edit* graph,
// the union of the blocks on the block-cut-tree path from u to v: for
// an insertion u and v share a block (the path is that single block,
// which is exactly the union of the pre-edit blocks the insertion
// merged); for a removal the pre-edit block containing {u,v} may have
// split, and every fragment lies on some simple u–v path, i.e. on the
// u–v tree path. Either way the union over the batch's pairs is a
// sound overapproximation of the vertices whose betweenness structure
// can have changed.

// BlockForest is the block-cut decomposition of a graph: its blocks
// (biconnected components, as vertex lists), which vertices are cut
// vertices, and the block-cut tree connecting them. Build it with
// Blocks.
type BlockForest struct {
	// Blocks lists each biconnected component's vertices. A bridge is a
	// 2-vertex block. An isolated vertex forms no block.
	Blocks [][]int
	// IsCut marks articulation vertices (members of ≥ 2 blocks).
	IsCut []bool
	// blockOf maps a non-cut vertex to its unique block id (-1 for cut
	// vertices, which belong to several, and isolated vertices).
	blockOf []int
	// Tree adjacency over node ids: block b is node b; cut vertex v is
	// node len(Blocks)+cutIndex[v].
	tree     [][]int
	cutIndex []int
}

// Blocks computes the biconnected components of g (treated as
// undirected) with an iterative Hopcroft–Tarjan DFS, and assembles the
// block-cut tree. O(n + m).
func Blocks(g *Graph) *BlockForest {
	n := g.N()
	disc := make([]int32, n) // 0 = unvisited, else 1-based discovery time
	low := make([]int32, n)
	var timer int32

	type frame struct {
		v, parent int
		idx       int // next neighbor index to inspect
	}
	var stack []frame
	var edgeStack [][2]int
	var blocks [][]int

	// popBlock pops edges down to and including {v,w} and collects the
	// distinct vertices of the block they form.
	seen := make([]int, n) // block-id stamp, 1-based (0 = never)
	blockStamp := 0
	popBlock := func(v, w int) {
		blockStamp++
		var verts []int
		for len(edgeStack) > 0 {
			e := edgeStack[len(edgeStack)-1]
			edgeStack = edgeStack[:len(edgeStack)-1]
			for _, x := range []int{e[0], e[1]} {
				if seen[x] != blockStamp {
					seen[x] = blockStamp
					verts = append(verts, x)
				}
			}
			if e[0] == v && e[1] == w {
				break
			}
		}
		if len(verts) > 0 {
			blocks = append(blocks, verts)
		}
	}

	for root := 0; root < n; root++ {
		if disc[root] != 0 {
			continue
		}
		timer++
		disc[root], low[root] = timer, timer
		stack = append(stack[:0], frame{v: root, parent: -1})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			v := f.v
			ns := g.Neighbors(v)
			if f.idx < len(ns) {
				w := ns[f.idx]
				f.idx++
				if w == f.parent {
					continue // the single tree edge back (simple graph)
				}
				if disc[w] == 0 {
					edgeStack = append(edgeStack, [2]int{v, w})
					timer++
					disc[w], low[w] = timer, timer
					stack = append(stack, frame{v: w, parent: v})
				} else if disc[w] < disc[v] {
					// Back edge, recorded once (from the deeper side).
					edgeStack = append(edgeStack, [2]int{v, w})
					if disc[w] < low[v] {
						low[v] = disc[w]
					}
				}
				continue
			}
			// v's neighbors exhausted: retreat to parent.
			stack = stack[:len(stack)-1]
			if f.parent >= 0 {
				if low[v] < low[f.parent] {
					low[f.parent] = low[v]
				}
				if low[v] >= disc[f.parent] {
					// The edges above {parent, v} form a block.
					popBlock(f.parent, v)
				}
			}
		}
	}

	bf := &BlockForest{
		Blocks:   blocks,
		IsCut:    make([]bool, n),
		blockOf:  make([]int, n),
		cutIndex: make([]int, n),
	}
	memberships := make([]int, n)
	for i := range bf.blockOf {
		bf.blockOf[i] = -1
		bf.cutIndex[i] = -1
	}
	for b, verts := range blocks {
		for _, v := range verts {
			memberships[v]++
			bf.blockOf[v] = b
		}
	}
	cuts := 0
	for v := 0; v < n; v++ {
		if memberships[v] >= 2 {
			bf.IsCut[v] = true
			bf.blockOf[v] = -1
			bf.cutIndex[v] = cuts
			cuts++
		}
	}
	bf.tree = make([][]int, len(blocks)+cuts)
	for b, verts := range blocks {
		for _, v := range verts {
			if bf.IsCut[v] {
				c := len(blocks) + bf.cutIndex[v]
				bf.tree[b] = append(bf.tree[b], c)
				bf.tree[c] = append(bf.tree[c], b)
			}
		}
	}
	return bf
}

// nodeOf returns v's block-cut-tree node id: its cut node if v is a
// cut vertex, its unique block node otherwise (-1 for isolated
// vertices, which are in no block).
func (bf *BlockForest) nodeOf(v int) int {
	if bf.IsCut[v] {
		return len(bf.Blocks) + bf.cutIndex[v]
	}
	return bf.blockOf[v]
}

// markPath BFSes the block-cut tree from u's node to v's node and sets
// affected[x] for every vertex x of every block node on the path. The
// scratch slices (len(tree), reused across calls) carry BFS parents.
func (bf *BlockForest) markPath(u, v int, affected []bool, parent []int) {
	src, dst := bf.nodeOf(u), bf.nodeOf(v)
	if src < 0 || dst < 0 {
		return // isolated endpoint: no blocks to mark
	}
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	parent[src] = -1
	queue := []int{src}
	for head := 0; head < len(queue) && parent[dst] == -2; head++ {
		x := queue[head]
		for _, y := range bf.tree[x] {
			if parent[y] == -2 {
				parent[y] = x
				queue = append(queue, y)
			}
		}
	}
	if parent[dst] == -2 {
		return // different components (caller rejects those batches anyway)
	}
	for x := dst; x != -1; x = parent[x] {
		if x < len(bf.Blocks) {
			for _, w := range bf.Blocks[x] {
				affected[w] = true
			}
		}
	}
}

// AffectedByEdits returns the set of vertices (as a dense bool slice)
// whose betweenness/dependency structure may have been affected by an
// edit batch with the given endpoint pairs, evaluated on the
// *post-edit* graph g: the union, over the pairs, of the blocks on the
// block-cut-tree path between the pair's endpoints. Vertices outside
// the set provably keep their exact dependency column δ_·•(r) — the
// soundness argument is at the top of this file — so version-tagged
// caches may retain their entries. A nil or empty pair list marks
// every vertex affected (nothing can be proven about an unknown edit).
func AffectedByEdits(g *Graph, pairs [][2]int) []bool {
	n := g.N()
	affected := make([]bool, n)
	if len(pairs) == 0 {
		for i := range affected {
			affected[i] = true
		}
		return affected
	}
	bf := Blocks(g)
	parent := make([]int, len(bf.tree))
	for _, p := range pairs {
		bf.markPath(p[0], p[1], affected, parent)
	}
	return affected
}

// AffectedTracker amortizes AffectedByEdits across a stream of edit
// batches: instead of an O(n+m) block decomposition per batch, it keeps
// the forest of an earlier version plus the cumulative dirty set (the
// union of every affected set reported since that forest was built) and
// answers from them in O(batch · tree-path + dirty).
//
// Soundness rests on two facts about block-cut trees under edits whose
// affected regions lie inside dirty:
//
//  1. An edit only restructures tree nodes inside its own affected
//     region — additions contract the endpoint path's blocks, removals
//     split the endpoints' block — so a u–v tree path that avoids dirty
//     entirely is the exact current path (contractions and splits of
//     nodes off a tree path leave the unique path untouched, in both
//     directions of the edit).
//  2. When the stale path does intersect dirty, the current path is
//     still confined to stalePath ∪ dirty: per edit, the post path is
//     the pre path with segments replaced inside the edit's affected
//     region (which dirty contains), so deviations accumulate only
//     inside dirty.
//
// Hence: stale-path marks alone when they avoid dirty, stale-path ∪
// dirty otherwise — always a sound overapproximation of
// AffectedByEdits. The forest is rebuilt (and dirty cleared) once the
// dirty set covers enough of the graph that the fallback stops being
// informative. Not safe for concurrent use; the serving layer calls it
// under its swap lock.
type AffectedTracker struct {
	bf     *BlockForest
	parent []int
	dirty  []bool
	nDirty int
	// sinceRebuild counts Affected calls since the forest was last
	// (re)built; rebuilds wait for trackerRebuildEvery of them so their
	// O(n+m) cost amortizes. On graphs that are essentially one
	// biconnected block (where every edit dirties everything and a fresh
	// forest would answer "everything" anyway) this is what keeps the
	// tracker O(batch) per call instead of O(n+m).
	sinceRebuild int
}

// trackerRebuildEvery is the minimum number of Affected calls between
// two forest rebuilds: a rebuild may fire at most every K-th batch, so
// its O(n+m) cost adds O((n+m)/K) per batch.
const trackerRebuildEvery = 64

// NewAffectedTracker builds a tracker seeded with g's block forest.
func NewAffectedTracker(g *Graph) *AffectedTracker {
	bf := Blocks(g)
	return &AffectedTracker{
		bf:     bf,
		parent: make([]int, len(bf.tree)),
		dirty:  make([]bool, g.N()),
	}
}

// Affected returns the affected vertex set of an edit batch with the
// given endpoint pairs, g being the post-batch graph: a sound (possibly
// coarser) overapproximation of AffectedByEdits(g, pairs). Nil or empty
// pairs mark everything, like AffectedByEdits.
func (t *AffectedTracker) Affected(g *Graph, pairs [][2]int) []bool {
	n := len(t.dirty)
	affected := make([]bool, n)
	if len(pairs) == 0 {
		for i := range affected {
			affected[i] = true
			t.dirty[i] = true
		}
		t.nDirty = n
		return affected
	}
	t.sinceRebuild++
	if t.nDirty*4 > n && t.sinceRebuild >= trackerRebuildEvery {
		// The fallback union would mark over a quarter of the graph:
		// re-anchor on the current version and start a clean ledger. The
		// interval gate amortizes the O(n+m) rebuild; answers from the
		// stale forest stay sound in the meantime (see above).
		t.bf = Blocks(g)
		if len(t.parent) < len(t.bf.tree) {
			t.parent = make([]int, len(t.bf.tree))
		}
		clear(t.dirty)
		t.nDirty = 0
		t.sinceRebuild = 0
	}
	for _, p := range pairs {
		t.bf.markPath(p[0], p[1], affected, t.parent[:len(t.bf.tree)])
	}
	hitDirty := false
	for v := 0; v < n && !hitDirty; v++ {
		hitDirty = affected[v] && t.dirty[v]
	}
	if hitDirty {
		for v, d := range t.dirty {
			if d {
				affected[v] = true
			}
		}
	}
	for v, a := range affected {
		if a && !t.dirty[v] {
			t.dirty[v] = true
			t.nDirty++
		}
	}
	return affected
}

// Absorb folds an externally computed affected set (e.g. from a full
// AffectedByEdits on a non-stream mutation path) into the dirty ledger
// so later stale-forest answers stay sound. Nil marks everything.
func (t *AffectedTracker) Absorb(affected []bool) {
	if affected == nil {
		for i := range t.dirty {
			t.dirty[i] = true
		}
		t.nDirty = len(t.dirty)
		return
	}
	for v, a := range affected {
		if a && !t.dirty[v] {
			t.dirty[v] = true
			t.nDirty++
		}
	}
}
