package graph

import (
	"testing"

	"bcmh/internal/rng"
)

// TestAffectedTrackerSound chains random overlay batches and checks the
// tracker's answer is always a superset of the exact AffectedByEdits
// set (the tracker is allowed to be coarser, never finer), across
// forest staleness, the dirty-union fallback, and rebuilds.
func TestAffectedTrackerSound(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
	}{
		{"ba", BarabasiAlbert(250, 3, rng.New(31))},
		{"grid", Grid(14, 11)},
		{"er", ErdosRenyiGNP(180, 0.04, rng.New(32))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := rng.New(9)
			g := tc.g
			tr := NewAffectedTracker(g)
			for step := 0; step < 20; step++ {
				edits := randomEditBatch(g, 4, r)
				next, rep, err := ApplyEditsOverlay(g, edits)
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				got := tr.Affected(next, rep.Pairs)
				exact := AffectedByEdits(next, rep.Pairs)
				for v := range exact {
					if exact[v] && !got[v] {
						t.Fatalf("step %d: vertex %d affected but not reported", step, v)
					}
				}
				g = next
			}
			// Empty pairs mark everything, matching AffectedByEdits.
			all := tr.Affected(g, nil)
			for v, a := range all {
				if !a {
					t.Fatalf("nil pairs should mark vertex %d", v)
				}
			}
		})
	}
}

// TestRebaseCompacted pins the catch-up path of background compaction:
// a compaction of an old version re-anchors a later overlay graph onto
// the fresh storage without changing the logical graph.
func TestRebaseCompacted(t *testing.T) {
	r := rng.New(77)
	base := BarabasiAlbert(200, 3, rng.New(76))
	g := base
	for i := 0; i < 3; i++ {
		next, _, err := ApplyEditsOverlay(g, randomEditBatch(g, 5, r))
		if err != nil {
			t.Fatal(err)
		}
		g = next
	}
	from := g
	c := from.Compact()
	// The lineage advances while the compaction "runs".
	for i := 0; i < 3; i++ {
		next, _, err := ApplyEditsOverlay(g, randomEditBatch(g, 5, r))
		if err != nil {
			t.Fatal(err)
		}
		g = next
	}
	rebased, ok := RebaseCompacted(c, from, g)
	if !ok {
		t.Fatal("rebase refused a valid lineage")
	}
	graphsEqual(t, "rebased vs cur", rebased, g)
	if !SameStorage(rebased, c) {
		t.Fatal("rebased graph should sit on the compacted storage")
	}
	if SameStorage(rebased, g) {
		t.Fatal("rebased graph should have left the old storage")
	}
	// Later batches chain off the new storage.
	next, _, err := ApplyEditsOverlay(rebased, randomEditBatch(rebased, 4, r))
	if err != nil {
		t.Fatal(err)
	}
	if !SameStorage(next, rebased) {
		t.Fatal("post-rebase batch should share the compacted storage")
	}

	// No-advance case: every overlay entry folds away.
	c2 := from.Compact()
	same, ok := RebaseCompacted(c2, from, from)
	if !ok || same.HasOverlay() || !SameStorage(same, c2) {
		t.Fatal("no-advance rebase should fold to the compacted storage")
	}
	graphsEqual(t, "no-advance rebase", same, from)

	// Lineage breaks are refused.
	if _, ok := RebaseCompacted(c, from, base.Compact()); ok {
		t.Fatal("rebase across a storage change should be refused")
	}
	if _, ok := RebaseCompacted(from, from, g); ok {
		t.Fatal("an uncompacted c should be refused")
	}
}
