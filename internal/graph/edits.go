package graph

// Batched copy-on-write edge mutation: ApplyEdits takes an immutable
// CSR graph and an edit batch and produces a *new* CSR one version
// ahead, leaving the input untouched — the substrate of the serving
// stack's dynamic-graph support. The old graph stays valid forever, so
// estimates that captured it keep running bit-identically while new
// traffic sees the new version (snapshot isolation; see
// internal/engine.SwapGraph).
//
// The merge is linear: per-vertex deltas are grouped once (O(k log k)
// for k edits), then every adjacency list is either copied wholesale
// (unchanged vertices) or rebuilt by a two-pointer merge of the old
// sorted list against its sorted additions and removals — no global
// re-sort of the adjacency arrays.

import (
	"fmt"
	"sort"
)

// EditOp is the kind of one edge edit.
type EditOp uint8

const (
	// EditAdd inserts an edge that must not already exist.
	EditAdd EditOp = iota
	// EditRemove deletes an edge that must exist.
	EditRemove
)

// String returns the wire-format name of the op ("add"/"remove").
func (op EditOp) String() string {
	switch op {
	case EditAdd:
		return "add"
	case EditRemove:
		return "remove"
	default:
		return fmt.Sprintf("EditOp(%d)", int(op))
	}
}

// Edit is one edge mutation. W is the weight of an added edge on a
// weighted graph (0 means 1); it is ignored for removals and must be
// 0 or 1 on unweighted graphs — ApplyEdits never changes a graph's
// weightedness class, so caches keyed on it stay coherent.
type Edit struct {
	Op   EditOp
	U, V int
	W    float64
}

// EditReport describes an applied batch: how many edges went in and
// out, the endpoints whose adjacency changed (sorted, deduplicated),
// and the applied endpoint pairs (u < v). The pairs — not just the
// vertex set — seed the engine's cache-retention analysis
// (AffectedByEdits): a removal's affected region is the block-cut-tree
// path *between* its endpoints, which the flat vertex set cannot
// express.
type EditReport struct {
	Added, Removed int
	Changed        []int
	Pairs          [][2]int
}

// Version returns the graph's monotonic mutation stamp: 0 for graphs
// built by a Builder (or any generator/reader on top of one), and one
// more than the input's for every ApplyEdits product. Versions order
// the snapshots of one mutation lineage; they carry no meaning across
// unrelated graphs.
func (g *Graph) Version() uint64 { return g.version }

// EditError is a batch rejection tied to one specific edge. It carries
// the endpoints as structured fields so serving layers that address
// edits by external labels (internal/store) can translate them back
// before showing the message to a client that never saw these ids.
type EditError struct {
	U, V   int
	Reason string
}

func (e *EditError) Error() string {
	return fmt.Sprintf("graph: edge (%d,%d): %s", e.U, e.V, e.Reason)
}

// halfEdit is one directed half of an edit, keyed for per-vertex
// grouping.
type halfEdit struct {
	from, to int
	w        float64
	add      bool
}

// editGroups is a validated, grouped edit batch, shared between
// ApplyEdits (full CSR rebuild) and ApplyEditsOverlay (delta overlay):
// halves sorted by (from, to) so each vertex's delta is one sorted
// run, pairs in input order (u < v), changed the sorted distinct
// endpoints, and the add/remove totals.
type editGroups struct {
	halves         []halfEdit
	pairs          [][2]int
	changed        []int
	added, removed int
}

// groupEdits validates an edit batch against g (endpoint range,
// self-loops, one-edit-per-pair, weight class) and groups it for the
// per-vertex merges. Edge-existence violations are not checked here —
// both appliers detect them during their merge, with identical errors.
func groupEdits(g *Graph, edits []Edit) (*editGroups, error) {
	n := g.N()
	weighted := g.Weighted()
	halves := make([]halfEdit, 0, 2*len(edits))
	pairs := make([][2]int, 0, len(edits))
	added, removed := 0, 0
	for i, e := range edits {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("graph: edit %d: edge (%d,%d) out of range [0,%d)", i, e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, &EditError{U: e.U, V: e.V, Reason: "self-loop rejected"}
		}
		w := e.W
		switch e.Op {
		case EditAdd:
			if w == 0 {
				w = 1
			}
			if w < 0 {
				return nil, &EditError{U: e.U, V: e.V, Reason: fmt.Sprintf("negative weight %v", e.W)}
			}
			if !weighted && w != 1 {
				return nil, &EditError{U: e.U, V: e.V, Reason: fmt.Sprintf("weighted edge (w=%v) on an unweighted graph", e.W)}
			}
			added++
		case EditRemove:
			removed++
		default:
			return nil, fmt.Errorf("graph: edit %d: unknown op %d", i, int(e.Op))
		}
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		pairs = append(pairs, [2]int{u, v})
		halves = append(halves,
			halfEdit{from: u, to: v, w: w, add: e.Op == EditAdd},
			halfEdit{from: v, to: u, w: w, add: e.Op == EditAdd})
	}

	// One edit per pair: sort the normalized pairs and scan for
	// duplicates.
	sortedPairs := append([][2]int(nil), pairs...)
	sort.Slice(sortedPairs, func(i, j int) bool {
		if sortedPairs[i][0] != sortedPairs[j][0] {
			return sortedPairs[i][0] < sortedPairs[j][0]
		}
		return sortedPairs[i][1] < sortedPairs[j][1]
	})
	for i := 1; i < len(sortedPairs); i++ {
		if sortedPairs[i] == sortedPairs[i-1] {
			return nil, &EditError{U: sortedPairs[i][0], V: sortedPairs[i][1], Reason: "more than one edit for this edge"}
		}
	}

	// Group halves by (from, to) so each vertex's delta is a sorted run.
	sort.Slice(halves, func(i, j int) bool {
		if halves[i].from != halves[j].from {
			return halves[i].from < halves[j].from
		}
		return halves[i].to < halves[j].to
	})

	// Changed-vertex set: the distinct endpoints, from the sorted pairs.
	changed := make([]int, 0, 2*len(edits))
	for _, p := range sortedPairs {
		changed = append(changed, p[0], p[1])
	}
	sort.Ints(changed)
	uniq := changed[:0]
	for i, v := range changed {
		if i == 0 || v != changed[i-1] {
			uniq = append(uniq, v)
		}
	}

	return &editGroups{
		halves:  halves,
		pairs:   pairs,
		changed: uniq,
		added:   added,
		removed: removed,
	}, nil
}

// ApplyEdits applies a batch of edge edits to an undirected graph and
// returns the resulting graph (a fresh CSR, Version()+1) plus a report
// of what changed. The input graph is not modified.
//
// The batch is validated as a whole and applied atomically — any
// invalid edit rejects the entire batch with a nil graph:
//
//   - endpoints must be in range and distinct (the paper's graphs are
//     loop-free; self-loops are an error here, not silently dropped as
//     in the Builder, because an explicit edit asking for one is a
//     client bug);
//   - an added edge must not exist, a removed edge must exist
//     (parallel edges cannot be created, blind deletes are surfaced);
//   - at most one edit per vertex pair — "add and remove {u,v}" in one
//     batch is ambiguous and rejected;
//   - weights: on weighted graphs an add's W must be positive (0 means
//     1); on unweighted graphs W must be 0 or 1, keeping the graph
//     unweighted.
//
// ApplyEdits does not check connectivity: removing a bridge yields a
// valid but disconnected graph, which estimation layers must reject
// themselves (internal/store does, with an explanatory error).
func ApplyEdits(g *Graph, edits []Edit) (*Graph, *EditReport, error) {
	if g == nil {
		return nil, nil, fmt.Errorf("graph: ApplyEdits on nil graph")
	}
	if g.directed {
		return nil, nil, fmt.Errorf("graph: ApplyEdits supports undirected graphs only")
	}
	if len(edits) == 0 {
		return nil, nil, fmt.Errorf("graph: empty edit batch")
	}
	n := g.N()
	weighted := g.Weighted()

	gr, err := groupEdits(g, edits)
	if err != nil {
		return nil, nil, err
	}

	// Linear merge: new offsets from per-vertex delta counts, then per
	// vertex either a wholesale copy or a two-pointer merge against the
	// delta run. Reads go through the accessors so an overlay input
	// (ApplyEditsOverlay product) merges its current lists, not the
	// stale base runs.
	newAdj := make([]int, 0, len(g.adj)+2*(gr.added-gr.removed))
	var newWeights []float64
	if weighted {
		newWeights = make([]float64, 0, cap(newAdj))
	}
	newOffsets := make([]int, n+1)
	hi := 0 // cursor into gr.halves
	for v := 0; v < n; v++ {
		newOffsets[v] = len(newAdj)
		old := g.Neighbors(v)
		var oldW []float64
		if weighted {
			oldW = g.NeighborWeights(v)
		}
		if hi >= len(gr.halves) || gr.halves[hi].from != v {
			// Untouched vertex: copy the old run verbatim.
			newAdj = append(newAdj, old...)
			if weighted {
				newWeights = append(newWeights, oldW...)
			}
			continue
		}
		oi := 0
		for hi < len(gr.halves) && gr.halves[hi].from == v {
			h := gr.halves[hi]
			// Emit old neighbors below the delta target.
			for oi < len(old) && old[oi] < h.to {
				newAdj = append(newAdj, old[oi])
				if weighted {
					newWeights = append(newWeights, oldW[oi])
				}
				oi++
			}
			exists := oi < len(old) && old[oi] == h.to
			if h.add {
				if exists {
					return nil, nil, &EditError{U: v, V: h.to, Reason: "cannot add: edge already exists"}
				}
				newAdj = append(newAdj, h.to)
				if weighted {
					newWeights = append(newWeights, h.w)
				}
			} else {
				if !exists {
					return nil, nil, &EditError{U: v, V: h.to, Reason: "cannot remove: no such edge"}
				}
				oi++ // skip the removed neighbor
			}
			hi++
		}
		// Tail of the old run.
		newAdj = append(newAdj, old[oi:]...)
		if weighted {
			newWeights = append(newWeights, oldW[oi:]...)
		}
	}
	newOffsets[n] = len(newAdj)

	out := &Graph{
		offsets: newOffsets,
		adj:     newAdj,
		weights: newWeights,
		m:       g.m + gr.added - gr.removed,
		version: g.version + 1,
	}
	out.inheritOrdering(g)
	return out, &EditReport{
		Added:   gr.added,
		Removed: gr.removed,
		Changed: gr.changed,
		Pairs:   gr.pairs,
	}, nil
}
