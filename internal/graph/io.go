package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Edge-list format: one edge per line, "u v" or "u v w" with
// whitespace-separated non-negative integer endpoints and an optional
// positive float weight. Lines starting with '#' or '%' and blank lines
// are ignored (covers SNAP and KONECT headers). Vertex ids need not be
// contiguous; they are compacted in first-appearance order and the
// mapping returned.

// ReadEdgeList parses the edge-list from rd into an undirected graph.
// It returns the graph and idOf, where idOf[i] is the original label of
// compacted vertex i.
func ReadEdgeList(rd io.Reader) (*Graph, []int64, error) {
	type edge struct {
		u, v int
		w    float64
	}
	var edges []edge
	compact := make(map[int64]int)
	var idOf []int64
	intern := func(raw int64) int {
		if id, ok := compact[raw]; ok {
			return id
		}
		id := len(idOf)
		compact[raw] = id
		idOf = append(idOf, raw)
		return id
	}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, nil, fmt.Errorf("graph: line %d: want 2 or 3 fields, got %d", lineNo, len(fields))
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad endpoint %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad endpoint %q: %v", lineNo, fields[1], err)
		}
		w := 1.0
		if len(fields) == 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("graph: line %d: bad weight %q: %v", lineNo, fields[2], err)
			}
			if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, nil, fmt.Errorf("graph: line %d: weight %v is not a positive finite number", lineNo, w)
			}
		}
		edges = append(edges, edge{intern(u), intern(v), w})
	}
	if err := sc.Err(); err != nil {
		// %w: callers distinguish transport failures (e.g.
		// http.MaxBytesError from a capped upload body) from syntax
		// errors.
		return nil, nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	b := NewBuilder(len(idOf))
	for _, e := range edges {
		b.AddWeightedEdge(e.u, e.v, e.w)
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return g, idOf, nil
}

// ReadEdgeListFile reads an edge-list file from path.
func ReadEdgeListFile(path string) (*Graph, []int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: %v", err)
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// WriteEdgeList writes g in edge-list format, one undirected edge per
// line (u < v), including weights when the graph is weighted.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# bcmh edge list: n=%d m=%d\n", g.N(), g.M())
	var writeErr error
	g.ForEachEdge(func(u, v int, wt float64) {
		if writeErr != nil {
			return
		}
		var err error
		if g.Weighted() {
			_, err = fmt.Fprintf(bw, "%d %d %g\n", u, v, wt)
		} else {
			_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
		if err != nil {
			writeErr = err
		}
	})
	if writeErr != nil {
		return fmt.Errorf("graph: writing edge list: %v", writeErr)
	}
	return bw.Flush()
}

// WriteEdgeListFile writes g to path in edge-list format.
func WriteEdgeListFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: %v", err)
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
