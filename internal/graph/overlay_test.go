package graph

import (
	"testing"

	"bcmh/internal/rng"
)

// graphsEqual asserts g and h describe the same logical graph —
// vertex count, edge count, version, weightedness, and every adjacency
// list with weights — regardless of overlay vs clean storage.
func graphsEqual(t *testing.T, label string, g, h *Graph) {
	t.Helper()
	if g.N() != h.N() || g.M() != h.M() || g.Version() != h.Version() || g.Weighted() != h.Weighted() {
		t.Fatalf("%s: shape mismatch: n=%d/%d m=%d/%d v=%d/%d w=%v/%v",
			label, g.N(), h.N(), g.M(), h.M(), g.Version(), h.Version(), g.Weighted(), h.Weighted())
	}
	for v := 0; v < g.N(); v++ {
		a, b := g.Neighbors(v), h.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("%s: vertex %d: degree %d vs %d", label, v, len(a), len(b))
		}
		aw, bw := g.NeighborWeights(v), h.NeighborWeights(v)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: vertex %d slot %d: neighbor %d vs %d", label, v, i, a[i], b[i])
			}
			if aw != nil && aw[i] != bw[i] {
				t.Fatalf("%s: vertex %d slot %d: weight %v vs %v", label, v, i, aw[i], bw[i])
			}
		}
	}
}

// randomEditBatch builds a valid batch against g: removals of existing
// edges and additions of absent ones, at most one edit per pair.
func randomEditBatch(g *Graph, k int, r *rng.RNG) []Edit {
	n := g.N()
	seen := map[[2]int]bool{}
	var edits []Edit
	for len(edits) < k {
		u := int(r.Uint64n(uint64(n)))
		ns := g.Neighbors(u)
		if len(ns) > 1 && r.Uint64n(2) == 0 {
			v := ns[int(r.Uint64n(uint64(len(ns))))]
			// Keep endpoints with degree ≥ 2 so the graph has a chance
			// of staying connected (not required by the edit API, but
			// keeps the batches realistic).
			if g.Degree(v) <= 1 {
				continue
			}
			p := [2]int{min(u, v), max(u, v)}
			if seen[p] {
				continue
			}
			seen[p] = true
			edits = append(edits, Edit{Op: EditRemove, U: u, V: v})
			continue
		}
		v := int(r.Uint64n(uint64(n)))
		if v == u || g.HasEdge(u, v) {
			continue
		}
		p := [2]int{min(u, v), max(u, v)}
		if seen[p] {
			continue
		}
		seen[p] = true
		e := Edit{Op: EditAdd, U: u, V: v}
		if g.Weighted() {
			e.W = 1 + float64(r.Uint64n(9))
		}
		edits = append(edits, e)
	}
	return edits
}

// TestApplyEditsOverlayEquivalence pins the overlay path to the CSR
// path: over chained random batches on several topologies, the overlay
// graph, its Compact, and the ApplyEdits product must be identical at
// every step, and the reports must match.
func TestApplyEditsOverlayEquivalence(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
	}{
		{"karate", KarateClub()},
		{"grid", Grid(12, 9)},
		{"ba", BarabasiAlbert(300, 3, rng.New(7))},
		{"er", ErdosRenyiGNP(200, 0.05, rng.New(8))},
		{"weighted-ba", WithUniformWeights(BarabasiAlbert(200, 3, rng.New(9)), 1, 10, rng.New(10))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := rng.New(42)
			csr, ovl := tc.g, tc.g
			for step := 0; step < 8; step++ {
				edits := randomEditBatch(ovl, 6, r)
				nextCSR, repCSR, err := ApplyEdits(csr, edits)
				if err != nil {
					t.Fatalf("step %d: ApplyEdits: %v", step, err)
				}
				nextOvl, repOvl, err := ApplyEditsOverlay(ovl, edits)
				if err != nil {
					t.Fatalf("step %d: ApplyEditsOverlay: %v", step, err)
				}
				if repCSR.Added != repOvl.Added || repCSR.Removed != repOvl.Removed ||
					len(repCSR.Changed) != len(repOvl.Changed) || len(repCSR.Pairs) != len(repOvl.Pairs) {
					t.Fatalf("step %d: report mismatch: %+v vs %+v", step, repCSR, repOvl)
				}
				if !nextOvl.HasOverlay() {
					t.Fatalf("step %d: overlay product has no overlay", step)
				}
				if !SameStorage(ovl, nextOvl) {
					t.Fatalf("step %d: overlay product does not share storage", step)
				}
				if SameStorage(nextCSR, nextOvl) {
					t.Fatalf("step %d: CSR product claims shared storage", step)
				}
				graphsEqual(t, "overlay vs csr", nextOvl, nextCSR)
				compacted := nextOvl.Compact()
				if compacted.HasOverlay() || SameStorage(compacted, nextOvl) {
					t.Fatalf("step %d: Compact left overlay or shared storage", step)
				}
				graphsEqual(t, "compact vs csr", compacted, nextCSR)
				// The old snapshot must be untouched by the new batch.
				graphsEqual(t, "old snapshot", ovl, csr)
				csr, ovl = nextCSR, nextOvl
			}
		})
	}
}

// TestApplyEditsOverlayErrors pins error parity with ApplyEdits for
// every rejection class.
func TestApplyEditsOverlayErrors(t *testing.T) {
	g := KarateClub()
	bad := [][]Edit{
		{{Op: EditAdd, U: 0, V: 99}},                                // out of range
		{{Op: EditAdd, U: 3, V: 3}},                                 // self-loop
		{{Op: EditAdd, U: 0, V: 1}},                                 // exists
		{{Op: EditRemove, U: 0, V: 15}},                             // missing
		{{Op: EditAdd, U: 0, V: 15}, {Op: EditRemove, U: 15, V: 0}}, // dup pair
		{{Op: EditAdd, U: 0, V: 15, W: 2}},                          // weight on unweighted
		{{Op: EditAdd, U: 0, V: 15, W: -1}},                         // negative weight
		{},                                                          // empty batch
	}
	for i, edits := range bad {
		_, _, errCSR := ApplyEdits(g, edits)
		gOvl, _, errOvl := ApplyEditsOverlay(g, edits)
		if errCSR == nil || errOvl == nil {
			t.Fatalf("case %d: expected errors, got %v / %v", i, errCSR, errOvl)
		}
		if errCSR.Error() != errOvl.Error() {
			t.Fatalf("case %d: error mismatch: %q vs %q", i, errCSR, errOvl)
		}
		if gOvl != nil {
			t.Fatalf("case %d: non-nil graph on error", i)
		}
	}
}

// TestOverlayCompactionTrigger pins the two halves of the threshold.
func TestOverlayCompactionTrigger(t *testing.T) {
	g := Grid(10, 10)
	if g.ShouldCompactOverlay(1) {
		t.Fatal("clean graph wants compaction")
	}
	h, _, err := ApplyEditsOverlay(g, []Edit{{Op: EditAdd, U: 0, V: 99}})
	if err != nil {
		t.Fatal(err)
	}
	if h.OverlayEdits() != 1 || h.OverlayTouched() != 2 {
		t.Fatalf("edits=%d touched=%d", h.OverlayEdits(), h.OverlayTouched())
	}
	if h.ShouldCompactOverlay(2) {
		t.Fatal("compaction wanted below both thresholds")
	}
	if !h.ShouldCompactOverlay(1) {
		t.Fatal("edit-count threshold not honored")
	}
	// Touch >n/8 vertices: 13 distinct pairs = 26 endpoints > 12.
	var edits []Edit
	for i := 0; i < 13; i++ {
		edits = append(edits, Edit{Op: EditAdd, U: i, V: 99 - i - 10})
	}
	h2, _, err := ApplyEditsOverlay(g, edits)
	if err != nil {
		t.Fatal(err)
	}
	if !h2.ShouldCompactOverlay(1 << 20) {
		t.Fatal("touched-fraction threshold not honored")
	}
}

// TestPairConnected covers the bidirectional reachability check used
// by the streaming removal guard.
func TestPairConnected(t *testing.T) {
	g := KarateClub()
	if !PairConnected(g, 0, 33) {
		t.Fatal("karate is connected")
	}
	// Vertex 11's only edge is {0,11}: removing it isolates 11.
	h, _, err := ApplyEditsOverlay(g, []Edit{{Op: EditRemove, U: 0, V: 11}})
	if err != nil {
		t.Fatal(err)
	}
	if PairConnected(h, 0, 11) {
		t.Fatal("11 should be cut off")
	}
	if !PairConnected(h, 0, 33) {
		t.Fatal("rest of the club should stay connected")
	}
	if !PairConnected(h, 5, 5) {
		t.Fatal("self-reachability")
	}
}
