package graph

// Delta-overlay mutation: ApplyEditsOverlay absorbs an edit batch in
// O(batch + overlay) instead of ApplyEdits' O(n+m) CSR copy. The
// product is a Graph that *shares* the base CSR arrays with its input
// and carries a small overlay — a sorted set of vertices whose
// adjacency lists are replaced wholesale. Accessors (Neighbors, Degree,
// Weight, ForEachEdge, ...) consult the overlay transparently, so every
// algorithm written against the Graph API — connectivity, block-cut
// trees, the SSSP kernels' constructors — is overlay-correct without
// change; clean graphs pay one predicted-not-taken nil check.
//
// Overlays are immutable like graphs: each ApplyEditsOverlay builds a
// new overlay sharing the untouched replacement lists of its input
// (copy-on-write), so older versions keep serving bit-identical reads.
// Compact folds the overlay back into a fresh CSR at the *same*
// version — the logical graph is unchanged, only its storage — which
// is what the serving layer installs in the background once the
// overlay passes a size/fraction threshold (ShouldCompactOverlay).

import (
	"fmt"
	"sort"
)

// overlay is the per-vertex replacement set layered over a base CSR.
// touched is sorted; lists[i] is the full sorted adjacency of
// touched[i], replacing the base list. wlists is parallel to lists for
// weighted graphs, nil otherwise. edits counts the edit operations
// absorbed since the last clean CSR (compaction trigger input).
type overlay struct {
	touched []int
	lists   [][]int
	wlists  [][]float64
	edits   int
}

// find returns the index of v in touched, or -1.
func (ov *overlay) find(v int) int {
	i := sort.SearchInts(ov.touched, v)
	if i < len(ov.touched) && ov.touched[i] == v {
		return i
	}
	return -1
}

// HasOverlay reports whether g carries a delta overlay over its base
// CSR (i.e. it was produced by ApplyEditsOverlay and not yet
// compacted).
func (g *Graph) HasOverlay() bool { return g.ov != nil }

// OverlayEdits returns the number of edit operations absorbed into the
// overlay since the last clean CSR (0 for clean graphs). It only ever
// grows along an overlay lineage, so it is a monotone compaction
// trigger.
func (g *Graph) OverlayEdits() int {
	if g.ov == nil {
		return 0
	}
	return g.ov.edits
}

// OverlayTouched returns the number of vertices whose adjacency is
// replaced by the overlay (0 for clean graphs).
func (g *Graph) OverlayTouched() int {
	if g.ov == nil {
		return 0
	}
	return len(g.ov.touched)
}

// ShouldCompactOverlay reports whether the overlay has grown past the
// point where folding it into a fresh CSR pays for itself: more than
// maxEdits absorbed operations, or replacement lists on more than
// 1/8th of the vertices (past that, the binary search in every
// accessor starts to bite). Clean graphs never want compaction.
func (g *Graph) ShouldCompactOverlay(maxEdits int) bool {
	if g.ov == nil {
		return false
	}
	return g.ov.edits >= maxEdits || len(g.ov.touched)*8 > g.N()
}

// BaseNeighbors returns the pre-overlay adjacency of v: the base CSR
// run, ignoring any overlay replacement. Kernel builders use it to
// lay out the shared clean arena once and patch overlay vertices on
// top (sssp.BFS.Reseat).
func (g *Graph) BaseNeighbors(v int) []int {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// BaseNeighborWeights returns the pre-overlay edge weights parallel to
// BaseNeighbors(v), nil for unweighted graphs.
func (g *Graph) BaseNeighborWeights(v int) []float64 {
	if g.weights == nil {
		return nil
	}
	return g.weights[g.offsets[v]:g.offsets[v+1]]
}

// ForEachOverlay calls fn once per overlay-replaced vertex in
// ascending order, with its full replacement adjacency and (for
// weighted graphs) parallel weights. No-op on clean graphs. The slices
// are shared; callers must not modify them.
func (g *Graph) ForEachOverlay(fn func(v int, adj []int, w []float64)) {
	if g.ov == nil {
		return
	}
	for i, v := range g.ov.touched {
		var w []float64
		if g.ov.wlists != nil {
			w = g.ov.wlists[i]
		}
		fn(v, g.ov.lists[i], w)
	}
}

// SameStorage reports whether a and b share the same base CSR arrays —
// i.e. one was derived from the other by overlay-only steps
// (ApplyEditsOverlay), with no intervening full CSR rebuild. The
// serving layer uses this to tell an overlay bump (buffer pools and
// kernels can be reseated in place) from a storage change (they must
// be rebuilt).
func SameStorage(a, b *Graph) bool {
	return a != nil && b != nil &&
		len(a.offsets) == len(b.offsets) && &a.offsets[0] == &b.offsets[0]
}

// ApplyEditsOverlay applies a batch of edge edits to an undirected
// graph and returns the resulting graph at Version()+1, sharing the
// input's base CSR arrays and absorbing the batch into a (copy-on-
// write) delta overlay in O(batch + overlay) time. The input graph is
// not modified and keeps serving reads bit-identically.
//
// Validation is identical to ApplyEdits — same rules, same errors —
// and the resulting graph is logically identical to the ApplyEdits
// product (Compact folds it into that exact CSR). Only the cost and
// the storage sharing differ.
func ApplyEditsOverlay(g *Graph, edits []Edit) (*Graph, *EditReport, error) {
	if g == nil {
		return nil, nil, fmt.Errorf("graph: ApplyEditsOverlay on nil graph")
	}
	if g.directed {
		return nil, nil, fmt.Errorf("graph: ApplyEditsOverlay supports undirected graphs only")
	}
	if len(edits) == 0 {
		return nil, nil, fmt.Errorf("graph: empty edit batch")
	}
	gr, err := groupEdits(g, edits)
	if err != nil {
		return nil, nil, err
	}
	weighted := g.Weighted()

	// Build the replacement adjacency for each changed vertex: the
	// current list (base or previous overlay) two-pointer-merged with
	// its sorted delta run, exactly as ApplyEdits does per vertex.
	newLists := make([][]int, len(gr.changed))
	var newWLists [][]float64
	if weighted {
		newWLists = make([][]float64, len(gr.changed))
	}
	hi := 0 // cursor into gr.halves, sorted by (from, to)
	for ci, v := range gr.changed {
		old := g.Neighbors(v)
		var oldW []float64
		if weighted {
			oldW = g.NeighborWeights(v)
		}
		for hi < len(gr.halves) && gr.halves[hi].from < v {
			hi++ // cannot happen: every halves.from is a changed vertex
		}
		lst := make([]int, 0, len(old)+2)
		var lw []float64
		if weighted {
			lw = make([]float64, 0, len(old)+2)
		}
		oi := 0
		for hi < len(gr.halves) && gr.halves[hi].from == v {
			h := gr.halves[hi]
			for oi < len(old) && old[oi] < h.to {
				lst = append(lst, old[oi])
				if weighted {
					lw = append(lw, oldW[oi])
				}
				oi++
			}
			exists := oi < len(old) && old[oi] == h.to
			if h.add {
				if exists {
					return nil, nil, &EditError{U: v, V: h.to, Reason: "cannot add: edge already exists"}
				}
				lst = append(lst, h.to)
				if weighted {
					lw = append(lw, h.w)
				}
			} else {
				if !exists {
					return nil, nil, &EditError{U: v, V: h.to, Reason: "cannot remove: no such edge"}
				}
				oi++ // skip the removed neighbor
			}
			hi++
		}
		lst = append(lst, old[oi:]...)
		if weighted {
			lw = append(lw, oldW[oi:]...)
		}
		newLists[ci] = lst
		if weighted {
			newWLists[ci] = lw
		}
	}

	// Merge the replacement set into the previous overlay (sorted-set
	// union, sharing untouched lists with the input's overlay).
	prev := g.ov
	var prevN, prevEdits int
	if prev != nil {
		prevN = len(prev.touched)
		prevEdits = prev.edits
	}
	out := &overlay{
		touched: make([]int, 0, prevN+len(gr.changed)),
		lists:   make([][]int, 0, prevN+len(gr.changed)),
		edits:   prevEdits + len(edits),
	}
	if weighted {
		out.wlists = make([][]float64, 0, prevN+len(gr.changed))
	}
	pi, ci := 0, 0
	for pi < prevN || ci < len(gr.changed) {
		switch {
		case ci >= len(gr.changed) || (pi < prevN && prev.touched[pi] < gr.changed[ci]):
			out.touched = append(out.touched, prev.touched[pi])
			out.lists = append(out.lists, prev.lists[pi])
			if weighted {
				out.wlists = append(out.wlists, prev.wlists[pi])
			}
			pi++
		default:
			if pi < prevN && prev.touched[pi] == gr.changed[ci] {
				pi++ // replaced by this batch's list
			}
			out.touched = append(out.touched, gr.changed[ci])
			out.lists = append(out.lists, newLists[ci])
			if weighted {
				out.wlists = append(out.wlists, newWLists[ci])
			}
			ci++
		}
	}

	next := &Graph{
		offsets: g.offsets,
		adj:     g.adj,
		weights: g.weights,
		m:       g.m + gr.added - gr.removed,
		version: g.version + 1,
		ov:      out,
	}
	next.inheritOrdering(g)
	return next, &EditReport{
		Added:   gr.added,
		Removed: gr.removed,
		Changed: gr.changed,
		Pairs:   gr.pairs,
	}, nil
}

// Compact folds the overlay into a fresh clean CSR at the same version
// — the logical graph (vertices, edges, weights, Version) is
// unchanged, only its storage. Clean graphs are returned as-is.
// Adjacency order is preserved, so traversals over the compacted graph
// are bit-identical to traversals over the overlay form.
func (g *Graph) Compact() *Graph {
	if g.ov == nil {
		return g
	}
	n := g.N()
	offsets := make([]int, n+1)
	sz := 0
	for v := 0; v < n; v++ {
		offsets[v] = sz
		sz += g.Degree(v)
	}
	offsets[n] = sz
	adj := make([]int, 0, sz)
	var weights []float64
	if g.Weighted() {
		weights = make([]float64, 0, sz)
	}
	for v := 0; v < n; v++ {
		adj = append(adj, g.Neighbors(v)...)
		if weights != nil {
			weights = append(weights, g.NeighborWeights(v)...)
		}
	}
	c := &Graph{
		offsets:  offsets,
		adj:      adj,
		weights:  weights,
		m:        g.m,
		directed: g.directed,
		version:  g.version,
	}
	c.inheritOrdering(g)
	return c
}

// RebaseCompacted re-anchors cur onto c's fresh CSR storage, where c
// is from.Compact() and cur descends from `from` by overlay-only steps
// (a background compaction that finished after the stream advanced the
// lineage past its input). The result is logically identical to cur —
// same adjacency, M, Version — with c's arrays as base and only the
// still-unfolded overlay entries kept, so subsequent ApplyEditsOverlay
// calls chain off the compacted storage. Costs O(overlay), never
// O(n+m).
//
// Why it is sound: overlay lists are full per-vertex replacements, so
// they are valid over any base whose untouched rows agree. Overlay
// lineages only ever grow their touched set, hence cur's untouched
// vertices were untouched in `from` too, and c (the compaction of
// `from`) stores exactly their current adjacency. Entries whose list
// already equals c's row (folded by the compaction) are dropped.
//
// The second return is false — and the first nil — when the inputs do
// not form that shape: cur not storage-shared with from (a full CSR
// swap intervened), c not a clean compaction of from's version, or a
// version regression.
func RebaseCompacted(c, from, cur *Graph) (*Graph, bool) {
	if c == nil || from == nil || cur == nil ||
		!SameStorage(from, cur) || c.ov != nil ||
		c.version != from.version || cur.version < from.version ||
		c.N() != cur.N() {
		return nil, false
	}
	if cur.ov == nil {
		// cur == from logically (no overlay steps since): c is already
		// its compacted form.
		return c, true
	}
	out := &overlay{}
	for i, v := range cur.ov.touched {
		list := cur.ov.lists[i]
		base := c.adj[c.offsets[v]:c.offsets[v+1]]
		if intsEqual(list, base) {
			var wl []float64
			if cur.ov.wlists != nil {
				wl = cur.ov.wlists[i]
			}
			if wl == nil || floatsEqual(wl, c.weights[c.offsets[v]:c.offsets[v+1]]) {
				continue // folded into c already
			}
		}
		out.touched = append(out.touched, v)
		out.lists = append(out.lists, list)
		if cur.ov.wlists != nil {
			out.wlists = append(out.wlists, cur.ov.wlists[i])
		}
	}
	g := &Graph{
		offsets:  c.offsets,
		adj:      c.adj,
		weights:  c.weights,
		m:        cur.m,
		directed: cur.directed,
		version:  cur.version,
	}
	g.inheritOrdering(cur)
	if len(out.touched) > 0 {
		// The exact split of cur's edit count between folded and
		// surviving entries is lost; one edit per surviving entry is a
		// sound lower bound and keeps ShouldCompactOverlay's
		// touched-fraction trigger (which dominates for small residues)
		// exact.
		out.edits = len(out.touched)
		g.ov = out
	}
	return g, true
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PairConnected reports whether u and v are in the same connected
// component of g, by bidirectional BFS (expanding the smaller frontier
// first, so the typical cost after removing one edge of a well-
// connected graph is far below O(n+m)). It allocates its own scratch;
// u == v is trivially connected.
func PairConnected(g *Graph, u, v int) bool {
	if u == v {
		return true
	}
	n := g.N()
	if u < 0 || u >= n || v < 0 || v >= n {
		return false
	}
	// side: 0 unvisited, 1 reached from u, 2 reached from v.
	side := make([]uint8, n)
	side[u], side[v] = 1, 2
	qu, qv := []int{u}, []int{v}
	for len(qu) > 0 && len(qv) > 0 {
		// Expand the smaller frontier one full level.
		q, mine, theirs := qu, uint8(1), uint8(2)
		if len(qv) < len(qu) {
			q, mine, theirs = qv, 2, 1
		}
		next := q[:0:0]
		for _, x := range q {
			for _, y := range g.Neighbors(x) {
				switch side[y] {
				case theirs:
					return true
				case 0:
					side[y] = mine
					next = append(next, y)
				}
			}
		}
		if mine == 1 {
			qu = next
		} else {
			qv = next
		}
	}
	return false
}
