// Package durable is the per-session persistence layer of the serving
// stack: each graph session owns an on-disk directory holding a
// checksummed binary edge-list snapshot plus an append-only mutation
// WAL, so uploaded graphs and every applied edit batch survive a
// process restart.
//
// # Data layout
//
// Under the manager's root directory, one subdirectory per session id
// (session ids are filename-safe by store construction):
//
//	<root>/<id>/snapshot.bcs       current snapshot (atomic: tmp+fsync+rename)
//	<root>/<id>/wal.bcl            append-only mutation log
//	<root>/<id>/wal.bcl.prev      previous log, mid-compaction only
//	<root>/<id>/*.tmp             transient; removed on recovery
//
// The snapshot file is magic + length-prefixed payload + CRC32C, with
// the payload encoded by graph.AppendBinary (canonical bytes, version
// stamp included). Each WAL record frames one ApplyEdits batch as
// length + CRC32C + payload, where the payload carries the pre- and
// post-mutation graph versions — replay is therefore exactly-once and
// version-continuous: a record whose post-version the snapshot already
// includes is skipped, a record that does not continue the current
// version ends replay.
//
// # Recovery
//
// Recover loads the snapshot, replays wal.bcl.prev (a compaction that
// died mid-flight) then wal.bcl, tolerating a torn or corrupt tail by
// truncating at the last valid record — a crashed writer never prevents
// boot. After any non-trivial replay the state is re-canonicalized:
// a fresh snapshot at the recovered version, an empty WAL.
//
// # Fsync policy
//
// WAL appends honor a configurable policy: FsyncAlways syncs every
// record before acknowledging (a crashed-but-acked mutation is never
// lost), FsyncInterval group-commits at a timer interval (bounded loss
// window, near-zero per-append cost), FsyncNever leaves flushing to the
// OS. Snapshot writes always sync regardless of policy — they are rare
// and losing one corrupts nothing but wastes the WAL tail that built
// it.
//
// Every filesystem touch goes through the FS seam, so the
// fault-injection FaultFS can drive the kill-point sweep in the tests:
// crash at every write-path operation, recover, and require the
// recovered graph (and therefore every seeded estimate on it) to be
// bit-identical to a never-crashed lineage prefix.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"log"
	"math"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bcmh/internal/graph"
)

const (
	snapshotName = "snapshot.bcs"
	walName      = "wal.bcl"
	walPrevName  = walName + ".prev"
	tmpSuffix    = ".tmp"

	snapshotMagic = "BCMHSNP1"
)

// Defaults for the zero Options.
const (
	// DefaultFsyncInterval is the group-commit window of FsyncInterval.
	DefaultFsyncInterval = 100 * time.Millisecond
	// DefaultCompactBytes is the WAL size past which a session is
	// compacted (WAL folded into a fresh snapshot).
	DefaultCompactBytes = 4 << 20
	// DefaultCompactRate is the sustained WAL growth rate, in bytes per
	// second, past which a session is compacted even before the WAL
	// reaches DefaultCompactBytes — a stream writing this fast would
	// otherwise outgrow the log faster than background folds retire it.
	DefaultCompactRate = 1 << 20
	// maxRecordBytes bounds one WAL record frame; a corrupt length
	// prefix cannot provoke a giant allocation.
	maxRecordBytes = 16 << 20
)

// Growth-rate trigger tuning: the rate is measured over rateWindow, and
// the open window is only trusted once minRateWindow of it has elapsed
// (before that the last completed window answers, so one burst right
// after a rollover is not mistaken for an enormous rate).
const (
	rateWindow    = time.Second
	minRateWindow = rateWindow / 8
)

// castagnoli is the CRC32C table (the checksum used by both file
// formats).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// FsyncPolicy selects when WAL appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncInterval group-commits: appends are synced by a background
	// timer within FsyncInterval of the first unsynced record. The
	// default.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs every append before it is acknowledged.
	FsyncAlways
	// FsyncNever never syncs appends explicitly; the OS flushes on its
	// own schedule.
	FsyncNever
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsyncPolicy parses "always", "interval", or "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("durable: unknown fsync policy %q (want \"always\", \"interval\", or \"never\")", s)
	}
}

// Options configures a Manager.
type Options struct {
	// Dir is the root data directory (required).
	Dir string
	// FS is the filesystem seam; nil means the real OS filesystem.
	FS FS
	// Fsync is the WAL append durability policy.
	Fsync FsyncPolicy
	// FsyncInterval is the FsyncInterval group-commit window (zero:
	// DefaultFsyncInterval).
	FsyncInterval time.Duration
	// CompactBytes is the WAL size past which ShouldCompact reports
	// true (zero: DefaultCompactBytes; negative: never by size).
	CompactBytes int64
	// CompactRate is the sustained WAL growth rate, in bytes per
	// second, past which ShouldCompact reports true even below
	// CompactBytes, so a fast stream compacts early instead of racing
	// the background fold ever further past the size threshold (zero:
	// DefaultCompactRate, or never when CompactBytes is negative —
	// an explicit "never compact" stays never; negative: never by
	// rate).
	CompactRate int64
	// Logf receives recovery and compaction warnings (torn records,
	// discontinuous replays). Nil means the standard logger.
	Logf func(format string, args ...any)
}

// Manager owns one root data directory of per-session durable state.
type Manager struct {
	opts Options
	fs   FS
}

// NewManager validates opts, creates the root directory, and returns a
// manager over it.
func NewManager(opts Options) (*Manager, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("durable: Options.Dir is required")
	}
	if opts.FS == nil {
		opts.FS = OS
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = DefaultFsyncInterval
	}
	if opts.CompactBytes == 0 {
		opts.CompactBytes = DefaultCompactBytes
	}
	if opts.CompactRate == 0 {
		if opts.CompactBytes < 0 {
			opts.CompactRate = -1
		} else {
			opts.CompactRate = DefaultCompactRate
		}
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	if err := opts.FS.MkdirAll(opts.Dir); err != nil {
		return nil, fmt.Errorf("durable: creating data dir: %w", err)
	}
	return &Manager{opts: opts, fs: opts.FS}, nil
}

// Dir returns the manager's root data directory.
func (m *Manager) Dir() string { return m.opts.Dir }

// Logf forwards to the manager's warning logger (Options.Logf), letting
// callers above the durable layer (boot-time recovery in the store)
// route their warnings to the same sink.
func (m *Manager) Logf(format string, args ...any) { m.opts.Logf(format, args...) }

// Fsync returns the manager's WAL fsync policy.
func (m *Manager) Fsync() FsyncPolicy { return m.opts.Fsync }

func (m *Manager) sessionDir(id string) string { return filepath.Join(m.opts.Dir, id) }

// List returns the ids of every session with a durable snapshot on
// disk, sorted.
func (m *Manager) List() ([]string, error) {
	names, err := m.fs.ReadDir(m.opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("durable: listing %s: %w", m.opts.Dir, err)
	}
	var ids []string
	for _, name := range names {
		if m.Has(name) {
			ids = append(ids, name)
		}
	}
	return ids, nil
}

// Has reports whether session id has a durable snapshot on disk.
func (m *Manager) Has(id string) bool {
	_, err := m.fs.Size(filepath.Join(m.sessionDir(id), snapshotName))
	return err == nil
}

// Remove deletes every durable file of session id. Only an explicit
// session deletion calls this — eviction must not (an evicted durable
// session is rehydrated from these files on next access).
func (m *Manager) Remove(id string) error {
	if err := m.fs.RemoveAll(m.sessionDir(id)); err != nil {
		return fmt.Errorf("durable: removing session %q: %w", id, err)
	}
	// Make the unlink durable too: a crash right after an acked DELETE
	// must not resurrect the session.
	if err := m.fs.SyncDir(m.opts.Dir); err != nil {
		return fmt.Errorf("durable: syncing data dir after removing %q: %w", id, err)
	}
	return nil
}

// encodeSnapshot renders the snapshot file image for g (+labels).
func encodeSnapshot(g *graph.Graph, labels []int64) ([]byte, error) {
	payload, err := graph.AppendBinary(nil, g, labels)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, len(snapshotMagic)+12+len(payload))
	buf = append(buf, snapshotMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return buf, nil
}

// decodeSnapshot parses a snapshot file image.
func decodeSnapshot(data []byte) (*graph.Graph, []int64, error) {
	if len(data) < len(snapshotMagic)+12 {
		return nil, nil, fmt.Errorf("durable: snapshot too short (%d bytes)", len(data))
	}
	if string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, nil, fmt.Errorf("durable: bad snapshot magic %q", data[:len(snapshotMagic)])
	}
	data = data[len(snapshotMagic):]
	plen := binary.LittleEndian.Uint64(data)
	data = data[8:]
	if uint64(len(data)) != plen+4 {
		return nil, nil, fmt.Errorf("durable: snapshot length mismatch: header says %d payload bytes, file carries %d", plen, len(data)-4)
	}
	payload, sum := data[:plen], binary.LittleEndian.Uint32(data[plen:])
	if got := crc32.Checksum(payload, castagnoli); got != sum {
		return nil, nil, fmt.Errorf("durable: snapshot checksum mismatch (stored %#x, computed %#x)", sum, got)
	}
	return graph.DecodeBinary(payload)
}

// record is one decoded WAL record: an edit batch and the version
// transition it performs.
type record struct {
	pre, post uint64
	edits     []graph.Edit
}

// appendRecord renders one framed WAL record.
func appendRecord(buf []byte, pre, post uint64, edits []graph.Edit) []byte {
	payload := binary.AppendUvarint(nil, pre)
	payload = binary.AppendUvarint(payload, post)
	payload = binary.AppendUvarint(payload, uint64(len(edits)))
	for _, e := range edits {
		payload = append(payload, byte(e.Op))
		payload = binary.AppendUvarint(payload, uint64(e.U))
		payload = binary.AppendUvarint(payload, uint64(e.V))
		payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(e.W))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// decodeRecords parses as many valid records as data holds. It returns
// the records, the byte offset of the first invalid frame (== len(data)
// when the file is clean), and a description of why parsing stopped
// early ("" when it did not).
func decodeRecords(data []byte) (recs []record, validLen int64, torn string) {
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < 8 {
			return recs, int64(off), fmt.Sprintf("torn frame header (%d trailing bytes)", len(rest))
		}
		plen := int(binary.LittleEndian.Uint32(rest))
		sum := binary.LittleEndian.Uint32(rest[4:])
		if plen > maxRecordBytes {
			return recs, int64(off), fmt.Sprintf("implausible record length %d", plen)
		}
		if len(rest) < 8+plen {
			return recs, int64(off), fmt.Sprintf("torn record (%d of %d payload bytes)", len(rest)-8, plen)
		}
		payload := rest[8 : 8+plen]
		if got := crc32.Checksum(payload, castagnoli); got != sum {
			return recs, int64(off), fmt.Sprintf("record checksum mismatch (stored %#x, computed %#x)", sum, got)
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return recs, int64(off), err.Error()
		}
		recs = append(recs, rec)
		off += 8 + plen
	}
	return recs, int64(off), ""
}

// decodePayload parses one record payload.
func decodePayload(payload []byte) (record, error) {
	var rec record
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(payload)
		if n <= 0 {
			return 0, false
		}
		payload = payload[n:]
		return v, true
	}
	pre, ok1 := next()
	post, ok2 := next()
	n, ok3 := next()
	if !ok1 || !ok2 || !ok3 {
		return rec, errors.New("truncated record header")
	}
	if post != pre+1 {
		return rec, fmt.Errorf("record version transition %d→%d is not a single step", pre, post)
	}
	if n == 0 || n > uint64(maxRecordBytes/10) {
		return rec, fmt.Errorf("implausible edit count %d", n)
	}
	rec.pre, rec.post = pre, post
	rec.edits = make([]graph.Edit, 0, n)
	for i := uint64(0); i < n; i++ {
		if len(payload) < 1 {
			return rec, fmt.Errorf("truncated edit %d/%d", i, n)
		}
		op := graph.EditOp(payload[0])
		payload = payload[1:]
		if op != graph.EditAdd && op != graph.EditRemove {
			return rec, fmt.Errorf("edit %d has unknown op %d", i, op)
		}
		u, ok1 := next()
		v, ok2 := next()
		if !ok1 || !ok2 || len(payload) < 8 {
			return rec, fmt.Errorf("truncated edit %d/%d", i, n)
		}
		w := math.Float64frombits(binary.LittleEndian.Uint64(payload))
		payload = payload[8:]
		rec.edits = append(rec.edits, graph.Edit{Op: op, U: int(u), V: int(v), W: w})
	}
	if len(payload) != 0 {
		return rec, fmt.Errorf("%d trailing bytes in record", len(payload))
	}
	return rec, nil
}

// Log is the open durable handle of one live session: the WAL file plus
// the compaction and fsync machinery. A Log is healthy until its first
// write failure; from then on every Append fails with the same sticky
// error and the registered failure handler has fired — the store maps
// that to the session's read-only degraded mode. Safe for concurrent
// use.
type Log struct {
	m   *Manager
	id  string
	dir string

	mu       sync.Mutex
	wal      File
	walBytes int64
	dirty    bool        // unsynced appends (FsyncInterval)
	timer    *time.Timer // pending group-commit
	failed   error       // sticky first write failure
	closed   bool

	rateMark      time.Time // growth-rate window start (zero: no window yet)
	rateMarkBytes int64     // walBytes when the window opened
	lastRate      float64   // bytes/s of the last completed window

	onFail     atomic.Pointer[func(error)]
	compacting atomic.Bool
}

func (m *Manager) newLog(id string, wal File, walBytes int64) *Log {
	return &Log{m: m, id: id, dir: m.sessionDir(id), wal: wal, walBytes: walBytes}
}

// Create persists a brand-new session: directory, snapshot of g (and
// labels), and an empty WAL. On success the returned Log accepts
// appends. Any failure leaves the session unpersisted (the store then
// serves it degraded).
func (m *Manager) Create(id string, g *graph.Graph, labels []int64) (*Log, error) {
	dir := m.sessionDir(id)
	if err := m.fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("durable: creating session dir %q: %w", id, err)
	}
	img, err := encodeSnapshot(g, labels)
	if err != nil {
		return nil, err
	}
	if err := writeFileAtomic(m.fs, filepath.Join(dir, snapshotName), img); err != nil {
		return nil, err
	}
	wal, err := m.fs.OpenAppend(filepath.Join(dir, walName), true)
	if err != nil {
		return nil, fmt.Errorf("durable: opening WAL of %q: %w", id, err)
	}
	return m.newLog(id, wal, 0), nil
}

// Recovered describes the outcome of one session recovery.
type Recovered struct {
	// Graph is the recovered graph, at the version snapshot+replay
	// reached; Labels is its external-label table (nil when none was
	// persisted).
	Graph  *graph.Graph
	Labels []int64
	// Replayed counts WAL records applied on top of the snapshot.
	Replayed int
	// Torn reports that replay ended early at a torn, corrupt, or
	// discontinuous record (the tail was discarded).
	Torn bool
}

// IsNotExist reports whether err (from Recover) means the session has
// no durable state at all, as opposed to unreadable state.
func IsNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }

// Recover rebuilds session id from its durable files: snapshot, then
// version-continuous replay of any mid-compaction previous WAL and the
// current WAL, torn tails truncated with a warning. On success the
// durable state is re-canonicalized (fresh snapshot at the recovered
// version when anything was replayed, empty WAL) and the returned Log
// accepts appends.
func (m *Manager) Recover(id string) (Recovered, *Log, error) {
	var rec Recovered
	dir := m.sessionDir(id)
	img, err := m.fs.ReadFile(filepath.Join(dir, snapshotName))
	if err != nil {
		return rec, nil, fmt.Errorf("durable: reading snapshot of %q: %w", id, err)
	}
	g, labels, err := decodeSnapshot(img)
	if err != nil {
		return rec, nil, fmt.Errorf("durable: session %q: %w", id, err)
	}
	// Sweep transient files a crashed writer may have left.
	if names, err := m.fs.ReadDir(dir); err == nil {
		for _, name := range names {
			if strings.HasSuffix(name, tmpSuffix) {
				_ = m.fs.Remove(filepath.Join(dir, name))
			}
		}
	}
	// Replay: the previous WAL (present only when a compaction died
	// between rotation and snapshot) strictly precedes the current one.
	cur := g
	hadPrev := false
	for _, name := range []string{walPrevName, walName} {
		data, err := m.fs.ReadFile(filepath.Join(dir, name))
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			return rec, nil, fmt.Errorf("durable: reading %s of %q: %w", name, id, err)
		}
		if name == walPrevName {
			hadPrev = true
		}
		records, _, torn := decodeRecords(data)
		if torn != "" {
			rec.Torn = true
			m.opts.Logf("durable: session %q: %s: %s; truncating the tail", id, name, torn)
		}
		for _, r := range records {
			if r.post <= cur.Version() {
				continue // already folded into the snapshot: exactly-once
			}
			if r.pre != cur.Version() {
				rec.Torn = true
				m.opts.Logf("durable: session %q: %s: record %d→%d does not continue version %d; discarding the tail",
					id, name, r.pre, r.post, cur.Version())
				break
			}
			next, _, err := graph.ApplyEdits(cur, r.edits)
			if err != nil {
				rec.Torn = true
				m.opts.Logf("durable: session %q: %s: replaying record %d→%d: %v; discarding the tail",
					id, name, r.pre, r.post, err)
				break
			}
			cur = next
			rec.Replayed++
		}
		if rec.Torn {
			break
		}
	}
	// Canonicalize when replay changed anything: fold the WAL into a
	// fresh snapshot so the next boot replays nothing, then start an
	// empty WAL. A crash inside this very sequence just repeats the
	// same recovery.
	if rec.Replayed > 0 || rec.Torn || hadPrev {
		img, err := encodeSnapshot(cur, labels)
		if err != nil {
			return rec, nil, fmt.Errorf("durable: session %q: %w", id, err)
		}
		if err := writeFileAtomic(m.fs, filepath.Join(dir, snapshotName), img); err != nil {
			return rec, nil, err
		}
		if hadPrev {
			_ = m.fs.Remove(filepath.Join(dir, walPrevName))
		}
	}
	wal, err := m.fs.OpenAppend(filepath.Join(dir, walName), true)
	if err != nil {
		return rec, nil, fmt.Errorf("durable: opening WAL of %q: %w", id, err)
	}
	rec.Graph, rec.Labels = cur, labels
	return rec, m.newLog(id, wal, 0), nil
}

// OnFailure registers fn to run once, on the Log's first write failure
// (appends, background group-commits, and compaction writes all
// count). The store hooks session degradation here.
func (l *Log) OnFailure(fn func(error)) { l.onFail.Store(&fn) }

// Err returns the sticky first write failure, or nil while healthy.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// WalBytes returns the current WAL size in bytes.
func (l *Log) WalBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.walBytes
}

// failLocked records the first failure and schedules the handler.
// Caller holds l.mu.
func (l *Log) failLocked(err error) {
	if l.failed != nil {
		return
	}
	l.failed = err
	if fn := l.onFail.Load(); fn != nil {
		// Outside the lock: the handler may call back into the Log.
		go (*fn)(err)
	}
}

// Append writes one framed mutation record — the version transition
// pre→post and its edit batch — and applies the fsync policy. The
// append must be acknowledged here before the caller swaps the
// mutation into memory: a batch the WAL never accepted must not
// become visible, or a restart would silently roll it back.
func (l *Log) Append(pre, post uint64, edits []graph.Edit) error {
	frame := appendRecord(nil, pre, post, edits)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("durable: append to closed log of %q", l.id)
	}
	if l.failed != nil {
		return l.failed
	}
	if _, err := l.wal.Write(frame); err != nil {
		err = fmt.Errorf("durable: appending to WAL of %q: %w", l.id, err)
		l.failLocked(err)
		return err
	}
	l.walBytes += int64(len(frame))
	l.observeGrowthLocked()
	switch l.m.opts.Fsync {
	case FsyncAlways:
		if err := l.wal.Sync(); err != nil {
			err = fmt.Errorf("durable: syncing WAL of %q: %w", l.id, err)
			l.failLocked(err)
			return err
		}
	case FsyncInterval:
		l.dirty = true
		if l.timer == nil {
			l.timer = time.AfterFunc(l.m.opts.FsyncInterval, l.groupCommit)
		}
	case FsyncNever:
	}
	return nil
}

// groupCommit is the FsyncInterval timer body.
func (l *Log) groupCommit() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.timer = nil
	if l.closed || l.failed != nil || !l.dirty {
		return
	}
	if err := l.wal.Sync(); err != nil {
		l.failLocked(fmt.Errorf("durable: group-commit sync of %q: %w", l.id, err))
		return
	}
	l.dirty = false
}

// observeGrowthLocked advances the WAL growth-rate window on an
// append: open it on the first record, roll it over once a full
// rateWindow has elapsed. Caller holds l.mu.
func (l *Log) observeGrowthLocked() {
	now := time.Now()
	if l.rateMark.IsZero() {
		l.rateMark, l.rateMarkBytes = now, l.walBytes
		return
	}
	if el := now.Sub(l.rateMark); el >= rateWindow {
		l.lastRate = float64(l.walBytes-l.rateMarkBytes) / el.Seconds()
		l.rateMark, l.rateMarkBytes = now, l.walBytes
	}
}

// growthRateLocked estimates the current WAL growth rate in bytes per
// second. The open window answers once minRateWindow of it has
// elapsed; before that, the last completed window does. An idle log
// decays naturally — elapsed time keeps growing while bytes do not.
// Caller holds l.mu.
func (l *Log) growthRateLocked() float64 {
	if l.rateMark.IsZero() {
		return 0
	}
	el := time.Since(l.rateMark)
	if el < minRateWindow {
		return l.lastRate
	}
	return float64(l.walBytes-l.rateMarkBytes) / el.Seconds()
}

// ShouldCompact reports whether the WAL has outgrown a compaction
// threshold (and the Log is healthy and not already compacting). Two
// triggers, either sufficient: absolute size (walBytes past
// Options.CompactBytes), and sustained growth rate (the WAL growing
// faster than Options.CompactRate bytes/s while already holding at
// least one window's worth of data at that rate — the floor keeps a
// fast but tiny stream from folding on every append). The rate
// trigger is what lets a sustained mutation stream compact early and
// often instead of racing the background fold ever further past the
// size threshold.
func (l *Log) ShouldCompact() bool {
	if l.compacting.Load() {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil || l.closed {
		return false
	}
	if t := l.m.opts.CompactBytes; t >= 0 && l.walBytes > t {
		return true
	}
	r := l.m.opts.CompactRate
	if r < 0 {
		return false
	}
	return l.walBytes > r*int64(rateWindow/time.Second) && l.growthRateLocked() > float64(r)
}

// StartCompacting claims the single compaction slot; the caller must
// pair it with EndCompacting. It returns false when a compaction is
// already running.
func (l *Log) StartCompacting() bool { return l.compacting.CompareAndSwap(false, true) }

// EndCompacting releases the compaction slot.
func (l *Log) EndCompacting() { l.compacting.Store(false) }

// Rotate begins a compaction: the current WAL becomes wal.bcl.prev and
// a fresh empty WAL starts accepting appends. The caller must hold the
// session's mutation lock, so every record in the rotated-out file
// belongs to a version the graph captured right after Rotate already
// includes — that is what makes deleting it after FinishCompact safe.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("durable: rotate on closed log of %q", l.id)
	}
	if l.failed != nil {
		return l.failed
	}
	if err := l.wal.Close(); err != nil {
		err = fmt.Errorf("durable: closing WAL of %q for rotation: %w", l.id, err)
		l.failLocked(err)
		return err
	}
	walPath := filepath.Join(l.dir, walName)
	if err := l.m.fs.Rename(walPath, filepath.Join(l.dir, walPrevName)); err != nil {
		err = fmt.Errorf("durable: rotating WAL of %q: %w", l.id, err)
		l.failLocked(err)
		return err
	}
	wal, err := l.m.fs.OpenAppend(walPath, true)
	if err != nil {
		err = fmt.Errorf("durable: opening fresh WAL of %q: %w", l.id, err)
		l.failLocked(err)
		return err
	}
	l.wal = wal
	l.walBytes = 0
	l.dirty = false
	// The growth-rate window restarts with the fresh WAL; the rate that
	// triggered this rotation must not immediately trigger the next.
	l.rateMark, l.rateMarkBytes, l.lastRate = time.Time{}, 0, 0
	return nil
}

// FinishCompact completes a compaction begun with Rotate: write a fresh
// snapshot of g (whose version must cover every record in the rotated
// WAL) atomically, then drop the rotated WAL. Runs off the mutation
// lock — appends proceed concurrently into the fresh WAL.
func (l *Log) FinishCompact(g *graph.Graph, labels []int64) error {
	img, err := encodeSnapshot(g, labels)
	if err == nil {
		err = writeFileAtomic(l.m.fs, filepath.Join(l.dir, snapshotName), img)
	}
	if err != nil {
		l.mu.Lock()
		l.failLocked(err)
		l.mu.Unlock()
		return err
	}
	// Best-effort: a surviving wal.bcl.prev only costs recovery a few
	// skipped (version-superseded) records.
	if err := l.m.fs.Remove(filepath.Join(l.dir, walPrevName)); err != nil {
		l.m.opts.Logf("durable: session %q: removing rotated WAL: %v (harmless; it is version-superseded)", l.id, err)
	}
	return nil
}

// Close flushes and closes the WAL. The files stay on disk — Close is
// eviction/shutdown, not deletion.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.timer != nil {
		l.timer.Stop()
		l.timer = nil
	}
	var err error
	if l.dirty && l.failed == nil {
		err = l.wal.Sync()
	}
	if cerr := l.wal.Close(); err == nil {
		err = cerr
	}
	return err
}
