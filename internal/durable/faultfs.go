package durable

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjected is the error every injected fault carries (wrapped with
// the operation that hit it). Tests assert on it with errors.Is.
var ErrInjected = errors.New("durable: injected fault")

// Fault is the kind of failure a FaultFS injects at its armed
// operation.
type Fault int

const (
	// FaultError makes the armed operation fail cleanly with
	// ErrInjected; subsequent operations succeed. Models a transient or
	// persistent I/O error (disk full, EIO) the process survives.
	FaultError Fault = iota
	// FaultShortWrite makes the armed operation — if it is a Write —
	// persist only the first half of its buffer before failing;
	// subsequent operations succeed. Models a torn append. On non-Write
	// operations it behaves like FaultError.
	FaultShortWrite
	// FaultCrash makes the armed operation and every operation after it
	// fail with ErrInjected, reads included. Models the process dying
	// at exactly that point: whatever reached the wrapped FS before the
	// crash is the disk state recovery will see.
	FaultCrash
)

func (f Fault) String() string {
	switch f {
	case FaultError:
		return "error"
	case FaultShortWrite:
		return "short-write"
	case FaultCrash:
		return "crash"
	default:
		return fmt.Sprintf("Fault(%d)", int(f))
	}
}

// FaultFS wraps an FS and injects one configured fault at the N-th
// write-path operation (1-based), counting MkdirAll, Create,
// OpenAppend, Write, Sync, Rename, Remove, RemoveAll, Truncate, and
// SyncDir calls. With no fault armed it is a transparent
// operation-counting wrapper, which is how the kill-point sweep first
// measures how many kill points a scenario has. Safe for concurrent
// use.
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	ops     int // write-path operations performed so far
	armAt   int // 1-based op index to inject at; 0 = disarmed
	kind    Fault
	crashed bool
	faults  int // injections delivered
}

// NewFaultFS returns a transparent counting wrapper over inner. Arm a
// fault with Arm or ArmAfter.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner}
}

// Arm schedules fault kind at absolute write-op index n (1-based).
func (f *FaultFS) Arm(n int, kind Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armAt, f.kind = n, kind
}

// ArmAfter schedules fault kind delta write-ops from now (1 = the very
// next write-path operation).
func (f *FaultFS) ArmAfter(delta int, kind Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armAt, f.kind = f.ops+delta, kind
}

// Ops returns the number of write-path operations performed.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Faults returns the number of injections delivered.
func (f *FaultFS) Faults() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.faults
}

// Crashed reports whether a FaultCrash has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// step accounts one write-path operation named op and reports the fault
// to deliver, if any.
func (f *FaultFS) step(op string) (inject bool, kind Fault, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		f.faults++
		return true, FaultCrash, fmt.Errorf("%w: %s after crash", ErrInjected, op)
	}
	f.ops++
	if f.armAt != 0 && f.ops == f.armAt {
		f.faults++
		if f.kind == FaultCrash {
			f.crashed = true
		}
		return true, f.kind, fmt.Errorf("%w: %s at op %d (%s)", ErrInjected, op, f.ops, f.kind)
	}
	return false, 0, nil
}

// readGate fails reads only after a crash (a dead process cannot read
// either); it does not count them as write ops.
func (f *FaultFS) readGate(op string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return fmt.Errorf("%w: %s after crash", ErrInjected, op)
	}
	return nil
}

func (f *FaultFS) MkdirAll(dir string) error {
	if inject, _, err := f.step("MkdirAll"); inject {
		return err
	}
	return f.inner.MkdirAll(dir)
}

func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	if err := f.readGate("ReadDir"); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(dir)
}

func (f *FaultFS) Size(path string) (int64, error) {
	if err := f.readGate("Size"); err != nil {
		return 0, err
	}
	return f.inner.Size(path)
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	if err := f.readGate("ReadFile"); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(path)
}

func (f *FaultFS) Create(path string) (File, error) {
	if inject, _, err := f.step("Create"); inject {
		return nil, err
	}
	file, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file, path: path}, nil
}

func (f *FaultFS) OpenAppend(path string, trunc bool) (File, error) {
	if inject, _, err := f.step("OpenAppend"); inject {
		return nil, err
	}
	file, err := f.inner.OpenAppend(path, trunc)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file, path: path}, nil
}

func (f *FaultFS) Rename(oldPath, newPath string) error {
	if inject, _, err := f.step("Rename"); inject {
		return err
	}
	return f.inner.Rename(oldPath, newPath)
}

func (f *FaultFS) Remove(path string) error {
	if inject, _, err := f.step("Remove"); inject {
		return err
	}
	return f.inner.Remove(path)
}

func (f *FaultFS) RemoveAll(path string) error {
	if inject, _, err := f.step("RemoveAll"); inject {
		return err
	}
	return f.inner.RemoveAll(path)
}

func (f *FaultFS) Truncate(path string, size int64) error {
	if inject, _, err := f.step("Truncate"); inject {
		return err
	}
	return f.inner.Truncate(path, size)
}

func (f *FaultFS) SyncDir(dir string) error {
	if inject, _, err := f.step("SyncDir"); inject {
		return err
	}
	return f.inner.SyncDir(dir)
}

// faultFile threads Write/Sync through the wrapper's op counter; Close
// is not counted (closing cannot lose persisted bytes) but does fail
// after a crash.
type faultFile struct {
	fs    *FaultFS
	inner File
	path  string
}

func (ff *faultFile) Write(p []byte) (int, error) {
	inject, kind, err := ff.fs.step("Write " + ff.path)
	if inject {
		if kind == FaultShortWrite {
			// Half the buffer reaches the disk before the failure: the
			// torn-record case recovery must truncate away.
			n, werr := ff.inner.Write(p[:len(p)/2])
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	if inject, _, err := ff.fs.step("Sync " + ff.path); inject {
		return err
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error {
	if err := ff.fs.readGate("Close " + ff.path); err != nil {
		return err
	}
	return ff.inner.Close()
}
