package durable

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem seam every durable-layer write and read goes
// through. Production uses OS (the os-package passthrough below); the
// fault-injection harness (FaultFS) wraps any FS and injects errors,
// short writes, or a crash at the N-th write-path operation, which is
// how the kill-point sweep proves recovery correct at every point a
// real process could die.
//
// The interface is deliberately small — exactly the operations the
// snapshot/WAL protocols need — so a fault implementation can reason
// about every path.
type FS interface {
	// MkdirAll creates dir and its parents.
	MkdirAll(dir string) error
	// ReadDir lists the names of dir's entries, sorted.
	ReadDir(dir string) ([]string, error)
	// Size returns the byte size of the file at path.
	Size(path string) (int64, error)
	// ReadFile reads the whole file at path.
	ReadFile(path string) ([]byte, error)
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	// OpenAppend opens path for appending, creating it if absent and
	// truncating it first when trunc is set.
	OpenAppend(path string, trunc bool) (File, error)
	// Rename atomically replaces newPath with oldPath.
	Rename(oldPath, newPath string) error
	// Remove deletes the file at path.
	Remove(path string) error
	// RemoveAll deletes path and everything beneath it.
	RemoveAll(path string) error
	// Truncate cuts the file at path to size bytes.
	Truncate(path string, size int64) error
	// SyncDir fsyncs the directory entry table at dir, making renames
	// and creations within it durable.
	SyncDir(dir string) error
}

// File is an open writable file handle.
type File interface {
	io.Writer
	// Sync flushes written data to stable storage.
	Sync() error
	// Close releases the handle (without an implicit Sync).
	Close() error
}

// OS is the production FS: a direct passthrough to the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Size(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (osFS) OpenAppend(path string, trunc bool) (File, error) {
	flags := os.O_WRONLY | os.O_CREATE | os.O_APPEND
	if trunc {
		flags |= os.O_TRUNC
	}
	return os.OpenFile(path, flags, 0o644)
}

func (osFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }
func (osFS) Remove(path string) error             { return os.Remove(path) }
func (osFS) RemoveAll(path string) error          { return os.RemoveAll(path) }
func (osFS) Truncate(path string, size int64) error {
	return os.Truncate(path, size)
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeFileAtomic writes data to path through fs with the
// crash-consistent dance: write to a sibling temp file, fsync it, rename
// over the destination, fsync the directory. A crash at any point leaves
// either the old file or the new one — never a torn mix.
func writeFileAtomic(fs FS, path string, data []byte) error {
	tmp := path + tmpSuffix
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("durable: creating %s: %w", tmp, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("durable: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: closing %s: %w", tmp, err)
	}
	if err := fs.Rename(tmp, path); err != nil {
		return fmt.Errorf("durable: renaming %s: %w", tmp, err)
	}
	if err := fs.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("durable: syncing dir of %s: %w", path, err)
	}
	return nil
}
