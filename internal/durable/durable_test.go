package durable

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"bcmh/internal/graph"
)

// pathGraph builds the path 0–1–…–(n-1): connected, easy to extend.
func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(v-1, v)
	}
	return b.MustBuild()
}

func newTestManager(t *testing.T, opts Options) *Manager {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	m, err := NewManager(opts)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

// applyAndLog applies one edit batch in memory and appends its WAL
// record, as the store's mutation path does.
func applyAndLog(t *testing.T, l *Log, g *graph.Graph, edits ...graph.Edit) *graph.Graph {
	t.Helper()
	next, _, err := graph.ApplyEdits(g, edits)
	if err != nil {
		t.Fatalf("ApplyEdits: %v", err)
	}
	if err := l.Append(g.Version(), next.Version(), edits); err != nil {
		t.Fatalf("Append: %v", err)
	}
	return next
}

// canonicalBytes is the identity the whole layer promises to preserve:
// two graphs with equal canonical encodings are bit-identical CSRs, so
// every seeded estimate on them agrees bit-for-bit.
func canonicalBytes(t *testing.T, g *graph.Graph, labels []int64) []byte {
	t.Helper()
	buf, err := graph.AppendBinary(nil, g, labels)
	if err != nil {
		t.Fatalf("AppendBinary: %v", err)
	}
	return buf
}

func add(u, v int) graph.Edit { return graph.Edit{Op: graph.EditAdd, U: u, V: v, W: 1} }

func TestCreateRecoverRoundTrip(t *testing.T) {
	m := newTestManager(t, Options{})
	g := pathGraph(t, 10)
	labels := make([]int64, 10)
	for i := range labels {
		labels[i] = int64(100 + i)
	}
	l, err := m.Create("s1", g, labels)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if !m.Has("s1") {
		t.Fatal("Has(s1) = false after Create")
	}
	if ids, err := m.List(); err != nil || len(ids) != 1 || ids[0] != "s1" {
		t.Fatalf("List = %v, %v", ids, err)
	}

	cur := applyAndLog(t, l, g, add(0, 5))
	cur = applyAndLog(t, l, cur, add(2, 7))
	if l.WalBytes() == 0 {
		t.Fatal("WalBytes = 0 after two appends")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	rec, l2, err := m.Recover("s1")
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer l2.Close()
	if rec.Replayed != 2 || rec.Torn {
		t.Fatalf("Recovered = %+v, want Replayed=2 Torn=false", rec)
	}
	if got, want := canonicalBytes(t, rec.Graph, rec.Labels), canonicalBytes(t, cur, labels); !bytes.Equal(got, want) {
		t.Fatal("recovered graph differs from the mutated lineage")
	}
	if rec.Graph.Version() != 2 {
		t.Fatalf("recovered version %d, want 2", rec.Graph.Version())
	}
	l2.Close()

	// Recovery canonicalized: a second recovery replays nothing and
	// lands on the same bytes.
	rec2, l3, err := m.Recover("s1")
	if err != nil {
		t.Fatalf("second Recover: %v", err)
	}
	defer l3.Close()
	if rec2.Replayed != 0 || rec2.Torn {
		t.Fatalf("second recovery = %+v, want clean no-replay", rec2)
	}
	if !bytes.Equal(canonicalBytes(t, rec2.Graph, rec2.Labels), canonicalBytes(t, cur, labels)) {
		t.Fatal("second recovery differs")
	}
}

func TestRecoverTornTail(t *testing.T) {
	m := newTestManager(t, Options{})
	g := pathGraph(t, 8)
	l, err := m.Create("s", g, nil)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	cur := applyAndLog(t, l, g, add(0, 4))
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Simulate a torn append: half a record's worth of garbage at the
	// tail.
	wal := filepath.Join(m.Dir(), "s", walName)
	f, err := OS.OpenAppend(wal, false)
	if err != nil {
		t.Fatalf("OpenAppend: %v", err)
	}
	f.Write([]byte{9, 9, 9, 9, 9})
	f.Close()

	rec, l2, err := m.Recover("s")
	if err != nil {
		t.Fatalf("Recover refused a torn tail: %v", err)
	}
	defer l2.Close()
	if !rec.Torn || rec.Replayed != 1 {
		t.Fatalf("Recovered = %+v, want Torn=true Replayed=1", rec)
	}
	if !bytes.Equal(canonicalBytes(t, rec.Graph, nil), canonicalBytes(t, cur, nil)) {
		t.Fatal("recovered graph lost the valid prefix")
	}
}

func TestRecoverDiscontinuousRecord(t *testing.T) {
	m := newTestManager(t, Options{})
	g := pathGraph(t, 8)
	l, err := m.Create("s", g, nil)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	// Valid record 0→1, then a record claiming 5→6: replay must stop at
	// the discontinuity, keeping the prefix.
	cur := applyAndLog(t, l, g, add(0, 4))
	if err := l.Append(5, 6, []graph.Edit{add(1, 5)}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	l.Close()
	rec, l2, err := m.Recover("s")
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer l2.Close()
	if !rec.Torn || rec.Replayed != 1 || rec.Graph.Version() != cur.Version() {
		t.Fatalf("Recovered = %+v (version %d), want Torn, Replayed=1, version %d",
			rec, rec.Graph.Version(), cur.Version())
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			m := newTestManager(t, Options{Fsync: policy, FsyncInterval: 5 * time.Millisecond})
			g := pathGraph(t, 6)
			l, err := m.Create("s", g, nil)
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			cur := applyAndLog(t, l, g, add(0, 3))
			if policy == FsyncInterval {
				// Give the group-commit timer a chance to fire; Close
				// would flush anyway, so this only widens coverage.
				time.Sleep(20 * time.Millisecond)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			rec, l2, err := m.Recover("s")
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			defer l2.Close()
			if rec.Graph.Version() != cur.Version() {
				t.Fatalf("recovered version %d, want %d", rec.Graph.Version(), cur.Version())
			}
		})
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for s, want := range map[string]FsyncPolicy{"always": FsyncAlways, "interval": FsyncInterval, "never": FsyncNever} {
		got, err := ParseFsyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("bogus"); err == nil {
		t.Fatal("ParseFsyncPolicy(bogus) accepted")
	}
}

func TestAppendFailureIsStickyAndFiresHandler(t *testing.T) {
	ffs := NewFaultFS(OS)
	m := newTestManager(t, Options{FS: ffs, Fsync: FsyncAlways})
	g := pathGraph(t, 6)
	l, err := m.Create("s", g, nil)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer l.Close()
	var fired atomic.Int32
	l.OnFailure(func(error) { fired.Add(1) })

	ffs.ArmAfter(1, FaultError) // next write op = the WAL append write
	err = l.Append(0, 1, []graph.Edit{add(0, 3)})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Append error = %v, want ErrInjected", err)
	}
	// Sticky: later appends fail with the same first cause without
	// touching the file.
	if err2 := l.Append(0, 1, []graph.Edit{add(0, 3)}); !errors.Is(err2, ErrInjected) {
		t.Fatalf("second Append = %v, want sticky ErrInjected", err2)
	}
	deadline := time.After(2 * time.Second)
	for fired.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("OnFailure handler never fired")
		case <-time.After(time.Millisecond):
		}
	}
	if got := fired.Load(); got != 1 {
		t.Fatalf("OnFailure fired %d times, want 1", got)
	}
	if l.Err() == nil {
		t.Fatal("Err() = nil after failure")
	}
}

func TestShortWriteAppendRecovers(t *testing.T) {
	ffs := NewFaultFS(OS)
	m := newTestManager(t, Options{FS: ffs, Fsync: FsyncNever})
	g := pathGraph(t, 8)
	l, err := m.Create("s", g, nil)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	cur := applyAndLog(t, l, g, add(0, 4)) // durable record
	ffs.ArmAfter(1, FaultShortWrite)
	if err := l.Append(1, 2, []graph.Edit{add(1, 5)}); !errors.Is(err, ErrInjected) {
		t.Fatalf("short-write Append = %v, want ErrInjected", err)
	}
	l.Close()
	rec, l2, err := m.Recover("s")
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer l2.Close()
	if !rec.Torn || rec.Replayed != 1 {
		t.Fatalf("Recovered = %+v, want Torn=true Replayed=1 (half-written record truncated)", rec)
	}
	if rec.Graph.Version() != cur.Version() {
		t.Fatalf("recovered version %d, want %d", rec.Graph.Version(), cur.Version())
	}
}

func TestCompactionFoldsWALIntoSnapshot(t *testing.T) {
	m := newTestManager(t, Options{CompactBytes: 1}) // everything is over threshold
	g := pathGraph(t, 10)
	l, err := m.Create("s", g, nil)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	cur := applyAndLog(t, l, g, add(0, 5))
	cur = applyAndLog(t, l, cur, add(1, 6))
	if !l.ShouldCompact() {
		t.Fatal("ShouldCompact = false over a 1-byte threshold")
	}
	if !l.StartCompacting() {
		t.Fatal("StartCompacting lost a race with nobody")
	}
	if l.ShouldCompact() {
		t.Fatal("ShouldCompact = true while compacting")
	}
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	// Appends continue into the fresh WAL during the snapshot write.
	cur = applyAndLog(t, l, cur, add(2, 7))
	if err := l.FinishCompact(cur, nil); err != nil {
		t.Fatalf("FinishCompact: %v", err)
	}
	l.EndCompacting()
	if l.WalBytes() == 0 {
		t.Fatal("post-rotation append vanished from WalBytes")
	}
	l.Close()

	// wal.prev must be gone; recovery sees the compacted snapshot.
	if _, err := OS.Size(filepath.Join(m.Dir(), "s", walPrevName)); err == nil {
		t.Fatal("wal.bcl.prev survived FinishCompact")
	}
	rec, l2, err := m.Recover("s")
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer l2.Close()
	if !bytes.Equal(canonicalBytes(t, rec.Graph, nil), canonicalBytes(t, cur, nil)) {
		t.Fatal("recovery after compaction differs from the live lineage")
	}
	// The snapshot covers version 3 even though the rotated WAL only
	// reached 2 — FinishCompact snapshotted the newer graph, and replay
	// skipped the superseded post-rotation record (exactly-once).
	if rec.Graph.Version() != 3 {
		t.Fatalf("recovered version %d, want 3", rec.Graph.Version())
	}
}

func TestCrashBetweenRotateAndSnapshotReplaysPrev(t *testing.T) {
	m := newTestManager(t, Options{})
	g := pathGraph(t, 10)
	l, err := m.Create("s", g, nil)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	cur := applyAndLog(t, l, g, add(0, 5))
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	cur = applyAndLog(t, l, cur, add(1, 6))
	// Crash here: no FinishCompact — wal.bcl.prev still holds record
	// 0→1, wal.bcl holds 1→2, snapshot is at version 0.
	l.Close()

	rec, l2, err := m.Recover("s")
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer l2.Close()
	if rec.Replayed != 2 || rec.Torn {
		t.Fatalf("Recovered = %+v, want Replayed=2 across prev+current WALs", rec)
	}
	if !bytes.Equal(canonicalBytes(t, rec.Graph, nil), canonicalBytes(t, cur, nil)) {
		t.Fatal("recovery across a mid-compaction crash differs")
	}
	if _, err := OS.Size(filepath.Join(m.Dir(), "s", walPrevName)); err == nil {
		t.Fatal("recovery left wal.bcl.prev behind")
	}
}

func TestManagerRemove(t *testing.T) {
	m := newTestManager(t, Options{})
	g := pathGraph(t, 5)
	l, err := m.Create("s", g, nil)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	l.Close()
	if err := m.Remove("s"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if m.Has("s") {
		t.Fatal("Has(s) = true after Remove")
	}
	if _, _, err := m.Recover("s"); !IsNotExist(err) {
		t.Fatalf("Recover after Remove = %v, want not-exist", err)
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	m := newTestManager(t, Options{})
	g := pathGraph(t, 6)
	l, err := m.Create("s", g, nil)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	l.Close()
	snap := filepath.Join(m.Dir(), "s", snapshotName)
	data, err := OS.ReadFile(snap)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	data[len(data)-5] ^= 0xff // flip a payload byte under the checksum
	f, _ := OS.Create(snap)
	f.Write(data)
	f.Close()
	if _, _, err := m.Recover("s"); err == nil {
		t.Fatal("Recover accepted a corrupt snapshot")
	}
}

// TestShouldCompactGrowthRate pins the second compaction trigger: a
// WAL growing faster than CompactRate bytes/s compacts before it ever
// reaches CompactBytes, a trickle or an idle log never does, and
// rotation restarts the measurement so one hot window cannot trigger
// twice. The window start is backdated directly (same package) so the
// test is deterministic without wall-clock sleeps.
func TestShouldCompactGrowthRate(t *testing.T) {
	m := newTestManager(t, Options{CompactBytes: 1 << 30, CompactRate: 1024})
	g := pathGraph(t, 64)
	l, err := m.Create("s", g, nil)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer l.Close()
	cur := g
	for v := 2; v < 64; v++ {
		cur = applyAndLog(t, l, cur, add(0, v))
	}
	if l.WalBytes() <= 1024 {
		t.Fatalf("test needs the WAL past the %d-byte rate floor, got %d", 1024, l.WalBytes())
	}

	// A window younger than minRateWindow is not trusted, and with no
	// completed window behind it the rate reads as zero.
	l.mu.Lock()
	l.rateMark = time.Now()
	l.mu.Unlock()
	if l.ShouldCompact() {
		t.Fatal("ShouldCompact fired on an untrusted newborn window")
	}

	// The same bytes observed over a quarter window is a fast stream:
	// > 4 KiB/s against a 1 KiB/s trigger.
	l.mu.Lock()
	l.rateMark = l.rateMark.Add(-rateWindow / 4)
	l.mu.Unlock()
	if !l.ShouldCompact() {
		t.Fatal("ShouldCompact missed a WAL growing above CompactRate")
	}

	// Observed over an hour the same bytes are a trickle.
	l.mu.Lock()
	l.rateMark = time.Now().Add(-time.Hour)
	l.mu.Unlock()
	if l.ShouldCompact() {
		t.Fatal("ShouldCompact fired on a slow-growing WAL")
	}

	// Rotation resets the window: the rate that triggered the fold must
	// not immediately trigger the next one.
	l.mu.Lock()
	l.rateMark = time.Now().Add(-rateWindow / 4)
	l.mu.Unlock()
	if !l.ShouldCompact() {
		t.Fatal("rate trigger did not re-arm")
	}
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if err := l.FinishCompact(cur, nil); err != nil {
		t.Fatalf("FinishCompact: %v", err)
	}
	if l.ShouldCompact() {
		t.Fatal("ShouldCompact fired right after rotation emptied the WAL")
	}
}

// TestCompactRateDefaults pins the Options plumbing: zero inherits the
// default, except that an explicit never-by-size stays never overall,
// and negative disables the rate trigger outright.
func TestCompactRateDefaults(t *testing.T) {
	cases := []struct {
		bytes, rate int64
		want        int64
	}{
		{0, 0, DefaultCompactRate},
		{1 << 10, 0, DefaultCompactRate},
		{-1, 0, -1},
		{-1, 512, 512},
		{0, -1, -1},
	}
	for _, c := range cases {
		m := newTestManager(t, Options{CompactBytes: c.bytes, CompactRate: c.rate})
		if got := m.opts.CompactRate; got != c.want {
			t.Errorf("CompactBytes=%d CompactRate=%d: resolved rate %d, want %d",
				c.bytes, c.rate, got, c.want)
		}
	}
}
