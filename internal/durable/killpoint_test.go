package durable_test

// The kill-point sweep: the central crash-recovery correctness test of
// the durability layer, run against the real store wiring rather than
// the durable package alone (hence the external test package — store
// imports durable, so this direction is cycle-free).
//
// Method: run a fixed workload (create a session, apply K mutation
// batches) once against a fault-free counting filesystem to learn how
// many write-path operations it performs, and once against a plain
// in-memory store to record the reference lineage — for every graph
// version, the canonical graph bytes and one seeded estimate. Then, for
// each write-path operation index i, re-run the workload with a crash
// injected at op i (every filesystem operation from i on fails,
// exactly as if the process had died), reboot a store over the
// surviving files, and require:
//
//   - recovery never fails (torn tails are truncated, not fatal);
//   - the recovered version is one the reference lineage actually
//     produced, and at least the newest durably-acknowledged one
//     (FsyncAlways makes every acked mutation durable);
//   - the recovered graph's canonical bytes — and therefore its seeded
//     estimates, which are deterministic per CSR — are bit-identical to
//     the reference at that version.
//
// In -short mode (the per-PR CI job) the sweep strides over the kill
// points; the nightly job runs every one.

import (
	"bytes"
	"fmt"
	"testing"

	"bcmh/internal/core"
	"bcmh/internal/durable"
	"bcmh/internal/graph"
	"bcmh/internal/store"
)

const (
	kpID    = "kp"
	kpSeed  = 42
	kpQuery = 3 // estimate target vertex
	kpSteps = 512
)

// kpGraph is the workload's base graph: a 12-vertex path.
func kpGraph() *graph.Graph {
	b := graph.NewBuilder(12)
	for v := 1; v < 12; v++ {
		b.AddEdge(v-1, v)
	}
	return b.MustBuild()
}

// kpBatches are the workload's mutation batches (versions 1..3); every
// intermediate graph stays connected.
func kpBatches() [][]graph.Edit {
	return [][]graph.Edit{
		{{Op: graph.EditAdd, U: 0, V: 5, W: 1}},
		{{Op: graph.EditAdd, U: 2, V: 8, W: 1}, {Op: graph.EditAdd, U: 1, V: 9, W: 1}},
		{{Op: graph.EditRemove, U: 0, V: 5}, {Op: graph.EditAdd, U: 4, V: 11, W: 1}},
	}
}

// refState is the reference lineage entry for one version.
type refState struct {
	bytes []byte
	est   float64
}

func kpEstimate(t *testing.T, g *graph.Graph) float64 {
	t.Helper()
	est, err := core.EstimateBC(g, kpQuery, core.Options{Steps: kpSteps, Seed: kpSeed})
	if err != nil {
		t.Fatalf("EstimateBC: %v", err)
	}
	return est.Value
}

func kpBytes(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	buf, err := graph.AppendBinary(nil, g, nil)
	if err != nil {
		t.Fatalf("AppendBinary: %v", err)
	}
	return buf
}

// kpReference runs the workload on a plain in-memory store and records
// the never-crashed lineage.
func kpReference(t *testing.T) map[uint64]refState {
	t.Helper()
	st := store.New(store.Config{})
	defer st.Close()
	sess, err := st.CreateFromGraph(kpID, kpGraph(), nil, false)
	if err != nil {
		t.Fatalf("reference create: %v", err)
	}
	ref := make(map[uint64]refState)
	record := func() {
		g := sess.Engine().Graph()
		ref[g.Version()] = refState{bytes: kpBytes(t, g), est: kpEstimate(t, g)}
	}
	record()
	for i, batch := range kpBatches() {
		if _, err := st.Mutate(sess, batch, nil); err != nil {
			t.Fatalf("reference batch %d: %v", i, err)
		}
		record()
	}
	return ref
}

// kpRun drives the workload against st, tolerating injected failures,
// and returns the highest durably-acknowledged version (-1: none —
// with FsyncAlways every successful Mutate return IS a durable ack,
// and a successfully created non-degraded session durably holds v0).
func kpRun(st *store.Store) int {
	acked := -1
	sess, err := st.CreateFromGraph(kpID, kpGraph(), nil, false)
	if err != nil {
		return acked
	}
	if deg, _ := sess.Degraded(); !deg {
		acked = 0
	}
	for _, batch := range kpBatches() {
		if out, err := st.Mutate(sess, batch, nil); err == nil {
			acked = int(out.Info.Version)
		}
	}
	return acked
}

func TestKillPointSweep(t *testing.T) {
	ref := kpReference(t)

	// Fault-free counting run: learn the number of kill points and pin
	// the clean-run recovery while we are at it.
	cleanDir := t.TempDir()
	ffs := durable.NewFaultFS(durable.OS)
	mgr, err := durable.NewManager(durable.Options{
		Dir: cleanDir, FS: ffs, Fsync: durable.FsyncAlways, CompactBytes: -1, Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	st := store.New(store.Config{Durable: mgr})
	finalVersion := kpRun(st)
	st.Close()
	totalOps := ffs.Ops()
	if finalVersion != len(kpBatches()) {
		t.Fatalf("fault-free run acked version %d, want %d", finalVersion, len(kpBatches()))
	}
	if totalOps < 8 {
		t.Fatalf("suspiciously few write ops (%d): the sweep would not cover the write path", totalOps)
	}
	t.Logf("workload performs %d write-path operations", totalOps)
	kpAssertRecovery(t, cleanDir, finalVersion, ref)

	stride := 1
	if testing.Short() {
		// Per-PR smoke slice: every 4th kill point still crosses the
		// snapshot write, the WAL appends, and both fsync points.
		stride = 4
	}
	for i := 1; i <= totalOps; i += stride {
		t.Run(fmt.Sprintf("crash-at-op-%02d", i), func(t *testing.T) {
			dir := t.TempDir()
			ffs := durable.NewFaultFS(durable.OS)
			ffs.Arm(i, durable.FaultCrash)
			acked := -1
			mgr, err := durable.NewManager(durable.Options{
				Dir: dir, FS: ffs, Fsync: durable.FsyncAlways, CompactBytes: -1, Logf: t.Logf,
			})
			if err == nil {
				st := store.New(store.Config{Durable: mgr})
				acked = kpRun(st)
				st.Close()
			}
			if !ffs.Crashed() {
				t.Fatalf("crash armed at op %d never fired (%d ops ran)", i, ffs.Ops())
			}
			kpAssertRecovery(t, dir, acked, ref)
		})
	}
}

// kpAssertRecovery boots a fresh store over dir's surviving files and
// checks the recovered state against the reference lineage.
func kpAssertRecovery(t *testing.T, dir string, acked int, ref map[uint64]refState) {
	t.Helper()
	mgr, err := durable.NewManager(durable.Options{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatalf("recovery manager: %v", err)
	}
	st, err := store.Open(store.Config{Durable: mgr})
	if err != nil {
		t.Fatalf("recovery boot failed: %v", err)
	}
	defer st.Close()
	sess, err := st.Get(kpID)
	if err != nil {
		if acked >= 0 {
			t.Fatalf("durably acked version %d lost entirely: %v", acked, err)
		}
		return // crashed before anything was durable — nothing to recover is correct
	}
	v := sess.Version()
	want, ok := ref[v]
	if !ok {
		t.Fatalf("recovered version %d was never produced by the reference lineage", v)
	}
	if acked >= 0 && v < uint64(acked) {
		t.Fatalf("recovered version %d rolls back the durably acked %d", v, acked)
	}
	g := sess.Engine().Graph()
	if !bytes.Equal(kpBytes(t, g), want.bytes) {
		t.Fatalf("recovered graph at version %d is not bit-identical to the reference", v)
	}
	if got := kpEstimate(t, g); got != want.est {
		t.Fatalf("recovered estimate %v != reference %v at version %d (determinism broken)", got, want.est, v)
	}
}
