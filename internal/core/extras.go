package core

import (
	"fmt"

	"bcmh/internal/brandes"
	"bcmh/internal/graph"
	"bcmh/internal/mcmc"
	"bcmh/internal/rng"
)

// This file exposes the substrate capabilities that round out the
// facade: exact edge betweenness (Girvan–Newman), group betweenness
// (Everett–Borgatti), the paper's footnote-2 extended relative score,
// and the stress-centrality MH estimator (the conclusion's
// other-indices extension).

// ExactEdgeBC computes exact edge betweenness (unordered-pair counts)
// for every edge — the Girvan–Newman substrate.
func ExactEdgeBC(g *graph.Graph) (map[[2]int]float64, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	return brandes.EdgeBC(g)
}

// GroupBC computes exact group betweenness centrality of the vertex
// set (normalised over pairs outside the set).
func GroupBC(g *graph.Graph, set []int) (float64, error) {
	if g == nil {
		return 0, fmt.Errorf("core: nil graph")
	}
	return brandes.GroupBC(g, set)
}

// ExtendedRelativeBC computes the paper's footnote-2 pair-level
// extended relative betweenness score of ri with respect to rj,
// exactly (O(n(m+n))).
func ExtendedRelativeBC(g *graph.Graph, ri, rj int) (float64, error) {
	if err := validateGraph(g); err != nil {
		return 0, err
	}
	return mcmc.ExtendedRelativeExact(g, ri, rj)
}

// StressEstimate estimates the stress centrality (raw ordered-pair
// shortest-path count) of vertex r with the MH chain extension; see
// mcmc.EstimateStress for the estimator semantics.
func StressEstimate(g *graph.Graph, r int, steps int, seed uint64) (mcmc.StressResult, error) {
	if err := validateGraph(g); err != nil {
		return mcmc.StressResult{}, err
	}
	return mcmc.EstimateStress(g, r, steps, rng.New(seed))
}

// ExactStress computes exact stress centrality for every vertex.
func ExactStress(g *graph.Graph) ([]float64, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if g.Directed() {
		return nil, fmt.Errorf("core: ExactStress requires an undirected graph")
	}
	return brandes.StressAll(g), nil
}
