package core

import (
	"math"
	"strings"
	"testing"

	"bcmh/internal/brandes"
	"bcmh/internal/graph"
	"bcmh/internal/mcmc"
	"bcmh/internal/rng"
)

func TestEstimateBCFixedSteps(t *testing.T) {
	g := graph.KarateClub()
	est, err := EstimateBC(g, 0, Options{Steps: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ms, _ := mcmc.MuExact(g, 0)
	if math.Abs(est.Value-ms.ChainLimit) > 0.05 {
		t.Fatalf("estimate %v far from chain limit %v", est.Value, ms.ChainLimit)
	}
	if est.PlannedSteps != 5000 || est.Chains != 1 {
		t.Fatalf("metadata wrong: %+v", est)
	}
	if est.Diagnostics.AcceptanceRate <= 0 {
		t.Fatal("diagnostics missing")
	}
}

func TestEstimateBCPlansFromEpsilonDelta(t *testing.T) {
	g := graph.Star(20)
	est, err := EstimateBC(g, 0, Options{Epsilon: 0.05, Delta: 0.2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if est.MuUsed <= 0 {
		t.Fatal("planner did not compute mu")
	}
	want := mcmc.PlanSteps(0.05, 0.2, est.MuUsed)
	if est.PlannedSteps != want {
		t.Fatalf("planned %d want %d", est.PlannedSteps, want)
	}
}

func TestEstimateBCMuBoundOverride(t *testing.T) {
	g := graph.KarateClub()
	est, err := EstimateBC(g, 0, Options{Epsilon: 0.1, Delta: 0.2, MuBound: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if est.MuUsed != 2 {
		t.Fatalf("mu bound not used: %v", est.MuUsed)
	}
	if est.PlannedSteps != mcmc.PlanSteps(0.1, 0.2, 2) {
		t.Fatalf("planned steps %d", est.PlannedSteps)
	}
}

func TestEstimateBCMaxStepsCap(t *testing.T) {
	g := graph.KarateClub()
	est, err := EstimateBC(g, 0, Options{Epsilon: 0.0001, Delta: 0.01, MuBound: 10, MaxSteps: 1234, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if est.PlannedSteps != 1234 {
		t.Fatalf("cap not applied: %d", est.PlannedSteps)
	}
}

func TestEstimateBCZeroBCShortCircuit(t *testing.T) {
	// Star leaf: planner sees μ = 0 → exact answer 0 with no sampling.
	est, err := EstimateBC(graph.Star(10), 4, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 0 || est.PlannedSteps != 0 {
		t.Fatalf("zero-BC short circuit failed: %+v", est)
	}
}

func TestEstimateBCMultiChain(t *testing.T) {
	g := graph.BarabasiAlbert(200, 3, rng.New(7))
	est, err := EstimateBC(g, 0, Options{Steps: 2000, Chains: 4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(est.PerChain) != 4 {
		t.Fatalf("per-chain results %d", len(est.PerChain))
	}
	// Deterministic.
	est2, _ := EstimateBC(g, 0, Options{Steps: 2000, Chains: 4, Seed: 8})
	if est.Value != est2.Value {
		t.Fatal("multi-chain estimate not reproducible")
	}
}

func TestEstimateBCValidation(t *testing.T) {
	g := graph.KarateClub()
	if _, err := EstimateBC(nil, 0, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := EstimateBC(g, 99, Options{Steps: 10}); err == nil {
		t.Fatal("bad vertex accepted")
	}
	b := graph.NewDirectedBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	if _, err := EstimateBC(b.MustBuild(), 0, Options{Steps: 10}); err == nil {
		t.Fatal("directed graph accepted")
	}
	db := graph.NewBuilder(4)
	db.AddEdge(0, 1)
	db.AddEdge(2, 3)
	if _, err := EstimateBC(db.MustBuild(), 0, Options{Steps: 10}); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestPrepare(t *testing.T) {
	// Connected graph: returned as-is.
	g := graph.KarateClub()
	same, mapping, err := Prepare(g)
	if err != nil || same != g || mapping != nil {
		t.Fatalf("connected prepare: %v %v %v", same, mapping, err)
	}
	// Disconnected: largest component extracted with mapping.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(4, 5)
	lc, mapping, err := Prepare(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	if lc.N() != 3 || len(mapping) != 3 {
		t.Fatalf("prepare extracted n=%d", lc.N())
	}
	if _, _, err := Prepare(nil); err == nil {
		t.Fatal("nil accepted")
	}
}

func TestEstimateRelative(t *testing.T) {
	g := graph.KarateClub()
	R := []int{0, 2, 33}
	res, err := EstimateRelative(g, R, RelOptions{Steps: 30000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	gt, _ := mcmc.ExactRelative(g, R)
	for i := range R {
		for j := range R {
			if i == j {
				continue
			}
			if math.IsNaN(res.RatioEst[i][j]) {
				t.Fatalf("NaN ratio at (%d,%d)", i, j)
			}
			if math.Abs(res.RatioEst[i][j]-gt.Ratio[i][j])/gt.Ratio[i][j] > 0.3 {
				t.Fatalf("ratio (%d,%d) %v vs %v", i, j, res.RatioEst[i][j], gt.Ratio[i][j])
			}
		}
	}
}

func TestEstimateRelativePlansSteps(t *testing.T) {
	g := graph.KarateClub()
	R := []int{0, 33}
	res, err := EstimateRelative(g, R, RelOptions{Epsilon: 0.2, Delta: 0.3, MuBound: 2, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, m := range res.MSize {
		total += m
	}
	want := mcmc.PlanSteps(0.2, 0.3, 2)*len(R) + 1
	if total != want {
		t.Fatalf("planned joint states %d want %d", total, want)
	}
}

func TestEstimateRelativeAllZeroTargets(t *testing.T) {
	g := graph.Star(8)
	if _, err := EstimateRelative(g, []int{2, 3}, RelOptions{}); err == nil {
		t.Fatal("all-zero-BC target set accepted by planner")
	} else if !strings.Contains(err.Error(), "zero betweenness") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestExactBC(t *testing.T) {
	g := graph.KarateClub()
	bc, err := ExactBC(g)
	if err != nil {
		t.Fatal(err)
	}
	ref := brandes.BC(g)
	for v := range ref {
		if math.Abs(bc[v]-ref[v]) > 1e-12 {
			t.Fatal("ExactBC differs from Brandes")
		}
	}
	if _, err := ExactBC(nil); err == nil {
		t.Fatal("nil accepted")
	}
}

func TestExactBCOf(t *testing.T) {
	g := graph.KarateClub()
	ref := brandes.BC(g)
	got, err := ExactBCOf(g, 33)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-ref[33]) > 1e-12 {
		t.Fatalf("ExactBCOf %v want %v", got, ref[33])
	}
	if _, err := ExactBCOf(g, -1); err == nil {
		t.Fatal("bad vertex accepted")
	}
}

func TestMuFacade(t *testing.T) {
	g := graph.KarateClub()
	ms, err := Mu(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Mu <= 0 || ms.BC <= 0 {
		t.Fatalf("mu stats %+v", ms)
	}
}
