package core

import (
	"math"
	"testing"

	"bcmh/internal/brandes"
	"bcmh/internal/graph"
)

func TestExactEdgeBCFacade(t *testing.T) {
	g := graph.Path(3)
	ebc, err := ExactEdgeBC(g)
	if err != nil {
		t.Fatal(err)
	}
	if ebc[brandes.EdgeKey(0, 1)] != 2 {
		t.Fatalf("edge bc %v", ebc)
	}
	if _, err := ExactEdgeBC(nil); err == nil {
		t.Fatal("nil accepted")
	}
}

func TestGroupBCFacade(t *testing.T) {
	got, err := GroupBC(graph.Star(7), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("group bc %v", got)
	}
	if _, err := GroupBC(nil, []int{0}); err == nil {
		t.Fatal("nil accepted")
	}
}

func TestExtendedRelativeBCFacade(t *testing.T) {
	g := graph.Path(4)
	got, err := ExtendedRelativeBC(g, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10.0/12.0) > 1e-12 {
		t.Fatalf("extended relative %v", got)
	}
	db := graph.NewBuilder(4)
	db.AddEdge(0, 1)
	if _, err := ExtendedRelativeBC(db.MustBuild(), 0, 1); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestStressFacade(t *testing.T) {
	g := graph.KarateClub()
	all, err := ExactStress(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := StressEstimate(g, 0, 20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Harmonic-all[0])/all[0] > 0.2 {
		t.Fatalf("stress estimate %v exact %v", res.Harmonic, all[0])
	}
	if _, err := ExactStress(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := StressEstimate(g, 99, 10, 1); err == nil {
		t.Fatal("bad vertex accepted")
	}
}
