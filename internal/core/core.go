// Package core is the library's public facade: stable, validated entry
// points that tie the substrates together. A downstream user estimates
// the betweenness of a vertex, the relative betweenness of a set, or
// exact values, without touching the sampler internals:
//
//	g, _, err := graph.ReadEdgeListFile("net.txt")
//	est, err := core.EstimateBC(g, r, core.Options{Epsilon: 0.01, Delta: 0.1})
//	fmt.Println(est.Value, est.Diagnostics.AcceptanceRate)
//
// Estimation requires a connected undirected graph (the paper's
// setting); Prepare converts arbitrary input by extracting the largest
// connected component.
package core

import (
	"context"
	"fmt"

	"bcmh/internal/brandes"
	"bcmh/internal/graph"
	"bcmh/internal/mcmc"
	"bcmh/internal/rng"
)

// DefaultMaxSteps caps planned chain lengths so a pessimistic μ bound
// cannot request an absurd budget; override with Options.MaxSteps.
const DefaultMaxSteps = 1 << 22

// Options configures single-vertex estimation.
type Options struct {
	// Steps fixes the chain length T directly. When zero, T is planned
	// from (Epsilon, Delta) and a μ bound via Eq. 14.
	Steps int
	// Epsilon and Delta specify the (ε,δ)-guarantee used to plan T when
	// Steps is zero. Defaults: 0.01 and 0.1.
	Epsilon, Delta float64
	// MuBound is the μ(r) bound used by the planner. When zero, μ is
	// computed exactly (O(nm) — fine at experiment scale, expensive on
	// big graphs; pass a bound, e.g. Theorem 2's 1+1/K, when you have
	// one).
	MuBound float64
	// MaxSteps caps the planned T (default DefaultMaxSteps).
	MaxSteps int
	// Chains > 1 runs that many independent chains in parallel and
	// pools them; total work is Chains·T traversals.
	Chains int
	// Seed makes the run reproducible. Two runs with equal options and
	// seeds return identical results.
	Seed uint64
	// Estimator selects the reported estimate (default: standard chain
	// average; see mcmc.EstimatorKind for the paper-literal and
	// corrected variants).
	Estimator mcmc.EstimatorKind
	// BurnIn, DegreeProposal, DisableCache pass through to mcmc.Config
	// (ablation knobs; the paper's sampler uses none of them).
	BurnIn         int
	DegreeProposal bool
	DisableCache   bool
	// Adaptive replaces the Eq. 14 fixed-budget plan with the
	// empirical-Bernstein stopping rule (mcmc.Config.AdaptiveEps): the
	// chain monitors its proposal-side stream and stops as soon as the
	// (Epsilon, Delta) confidence half-width is met. Steps — or
	// MaxSteps when Steps is zero — becomes the hard budget, and no μ
	// derivation is needed or consulted. With Adaptive false nothing
	// changes: runs are bit-identical to the pre-adaptive API.
	Adaptive bool
}

func (o *Options) withDefaults() Options {
	out := *o
	// Non-positive values mean "use the default" uniformly, so every
	// way of spelling the same request normalizes to one Options value.
	if out.Steps < 0 {
		out.Steps = 0
	}
	if out.MuBound < 0 {
		out.MuBound = 0
	}
	if out.Epsilon <= 0 {
		out.Epsilon = 0.01
	}
	if out.Delta <= 0 {
		out.Delta = 0.1
	}
	if out.MaxSteps <= 0 {
		out.MaxSteps = DefaultMaxSteps
	}
	if out.Chains < 1 {
		out.Chains = 1
	}
	return out
}

// Normalized returns o with every defaulted field resolved to its
// concrete value. Two Options that request the same estimation compare
// equal after Normalized, which is what caches keyed on Options
// (internal/engine) rely on.
func (o Options) Normalized() Options { return o.withDefaults() }

// PlanFromMu returns the chain length EstimateBC plans for a known
// μ(r) under opts: Eq. 14 via mcmc.PlanSteps, clamped to
// [1, opts.MaxSteps]. Exported so batch front-ends can plan steps from
// a cached μ without re-deriving the dependency column.
func PlanFromMu(opts Options, mu float64) int {
	o := opts.withDefaults()
	steps := mcmc.PlanSteps(o.Epsilon, o.Delta, mu)
	if steps > o.MaxSteps {
		steps = o.MaxSteps
	}
	if steps < 1 {
		steps = 1
	}
	return steps
}

// Estimate is the result of a single-vertex estimation.
type Estimate struct {
	// Value is the betweenness estimate under the selected estimator.
	Value float64
	// PlannedSteps is the chain length used (per chain).
	PlannedSteps int
	// Chains is the number of pooled chains.
	Chains int
	// MuUsed is the μ value the planner used (0 when Steps was fixed).
	MuUsed float64
	// Diagnostics carries the pooled sampler diagnostics.
	Diagnostics mcmc.Result
	// PerChain holds per-chain results when Chains > 1.
	PerChain []mcmc.Result
}

func validateGraph(g *graph.Graph) error {
	if g == nil {
		return fmt.Errorf("core: nil graph")
	}
	if g.Directed() {
		return fmt.Errorf("core: estimators require an undirected graph")
	}
	if g.N() < 2 {
		return fmt.Errorf("core: graph too small (n=%d)", g.N())
	}
	if !graph.IsConnected(g) {
		return fmt.Errorf("core: graph is not connected; call core.Prepare to extract the largest component")
	}
	return nil
}

// Prepare validates g for estimation, extracting the largest connected
// component if necessary. It returns the usable graph and the mapping
// from its vertex ids to the original ids (nil when g was already
// usable as-is).
func Prepare(g *graph.Graph) (*graph.Graph, []int, error) {
	if g == nil {
		return nil, nil, fmt.Errorf("core: nil graph")
	}
	if g.Directed() {
		return nil, nil, fmt.Errorf("core: estimators require an undirected graph")
	}
	if graph.IsConnected(g) {
		if g.N() < 2 {
			return nil, nil, fmt.Errorf("core: graph too small (n=%d)", g.N())
		}
		return g, nil, nil
	}
	lc, mapping, err := graph.LargestComponent(g)
	if err != nil {
		return nil, nil, err
	}
	if lc.N() < 2 {
		return nil, nil, fmt.Errorf("core: largest component too small (n=%d)", lc.N())
	}
	return lc, mapping, nil
}

// EstimateBC estimates the betweenness centrality of vertex r in g with
// the paper's single-space Metropolis–Hastings sampler (§4.2).
func EstimateBC(g *graph.Graph, r int, opts Options) (Estimate, error) {
	return EstimateBCContext(context.Background(), g, r, opts)
}

// EstimateBCContext is EstimateBC under a context: the chain loop polls
// ctx and aborts with its error on cancellation (see
// mcmc.EstimateBCPooledContext), so callers serving interactive traffic
// can stop paying for estimates nobody is waiting on. A run that
// completes is bit-identical to EstimateBC.
func EstimateBCContext(ctx context.Context, g *graph.Graph, r int, opts Options) (Estimate, error) {
	if err := validateGraph(g); err != nil {
		return Estimate{}, err
	}
	if r < 0 || r >= g.N() {
		return Estimate{}, fmt.Errorf("core: vertex %d out of range [0,%d)", r, g.N())
	}
	o := opts.withDefaults()
	mu := o.MuBound
	if !o.Adaptive && o.Steps <= 0 && mu <= 0 {
		ms, err := mcmc.MuExact(g, r)
		if err != nil {
			return Estimate{}, err
		}
		mu = ms.Mu
	}
	return EstimateBCPreparedContext(ctx, g, r, o, mu, nil)
}

// EstimateBCPrepared is the estimation kernel behind EstimateBC for
// callers that have already amortised the per-request setup: g must be
// valid for estimation (connected and undirected, e.g. from Prepare —
// only the vertex range is re-checked here), μ is supplied when known
// (a cached MuExact or an analytic bound; ignored when opts.Steps is
// fixed), and chain traversal buffers are drawn from pool when
// non-nil. internal/engine serves every request through this entry
// point. A non-positive μ with unplanned steps means the dependency
// column is all-zero, so BC(r) = 0 exactly and no chain is run.
func EstimateBCPrepared(g *graph.Graph, r int, opts Options, mu float64, pool *mcmc.BufferPool) (Estimate, error) {
	return EstimateBCPreparedContext(context.Background(), g, r, opts, mu, pool)
}

// ChainConfig resolves normalized options and a μ value into the chain
// configuration the prepared estimation kernels run: the per-chain step
// budget (fixed Steps, the Eq. 14 plan from μ, or — under Adaptive —
// the hard budget the empirical-Bernstein monitor stops within), the
// ablation knobs, and the adaptive thresholds. muUsed reports the μ the
// planner consumed (0 when steps were fixed or adaptive). exactZero is
// the planner's degenerate case — unplanned steps with μ ≤ 0 mean the
// statistic column is all-zero, the value is exactly 0, and no chain
// should run. Exported so measure-generic front-ends (internal/measure)
// plan precisely like the BC fast path instead of duplicating it.
func ChainConfig(opts Options, mu float64) (cfg mcmc.Config, muUsed float64, exactZero bool) {
	o := opts.withDefaults()
	steps := o.Steps
	switch {
	case o.Adaptive:
		if steps <= 0 {
			steps = o.MaxSteps
		}
	case steps <= 0:
		if mu <= 0 {
			return mcmc.Config{}, 0, true
		}
		muUsed = mu
		steps = PlanFromMu(o, mu)
	}
	cfg = mcmc.Config{
		Steps:          steps,
		BurnIn:         o.BurnIn,
		Estimator:      o.Estimator,
		DegreeProposal: o.DegreeProposal,
		DisableCache:   o.DisableCache,
		InitState:      -1,
	}
	if o.Adaptive {
		cfg.AdaptiveEps = o.Epsilon
		cfg.AdaptiveDelta = o.Delta
	}
	return cfg, muUsed, false
}

// EstimateBCPreparedContext is EstimateBCPrepared under a context; the
// chain step loop (single- and parallel-chain paths alike) aborts with
// ctx's error on cancellation.
func EstimateBCPreparedContext(ctx context.Context, g *graph.Graph, r int, opts Options, mu float64, pool *mcmc.BufferPool) (Estimate, error) {
	if r < 0 || r >= g.N() {
		return Estimate{}, fmt.Errorf("core: vertex %d out of range [0,%d)", r, g.N())
	}
	o := opts.withDefaults()
	var est Estimate
	cfg, muUsed, exactZero := ChainConfig(o, mu)
	if exactZero {
		// All-zero dependency column: BC(r) = 0 exactly; no sampling
		// needed.
		est.Value = 0
		est.PlannedSteps = 0
		est.Chains = 0
		return est, nil
	}
	est.MuUsed = muUsed
	est.PlannedSteps = cfg.Steps
	est.Chains = o.Chains
	if o.Chains > 1 {
		multi, err := mcmc.EstimateBCParallelPooledContext(ctx, g, r, cfg, o.Seed, o.Chains, pool)
		if err != nil {
			return Estimate{}, err
		}
		est.Value = multi.Combined.Estimate
		est.Diagnostics = multi.Combined
		est.PerChain = multi.PerChain
		return est, nil
	}
	res, err := mcmc.EstimateBCPooledContext(ctx, g, r, cfg, rng.New(o.Seed), pool)
	if err != nil {
		return Estimate{}, err
	}
	est.Value = res.Estimate
	est.Diagnostics = res
	return est, nil
}

// RelOptions configures joint-space relative estimation.
type RelOptions struct {
	// Steps is the joint chain length T; when zero it is planned from
	// (Epsilon, Delta, MuBound) exactly like Options, per Eq. 27, using
	// the largest μ(r) over R when MuBound is zero. Note Eq. 27 bounds
	// |M(j)|, the per-target sub-chain length; the planner multiplies
	// by |R| so the expected sub-chain budget matches.
	Steps          int
	Epsilon, Delta float64
	MuBound        float64
	MaxSteps       int
	Seed           uint64
	BurnIn         int
	DisableCache   bool
}

// EstimateRelative estimates relative betweenness scores and betweenness
// ratios for the vertex set R with the paper's joint-space sampler
// (§4.3).
func EstimateRelative(g *graph.Graph, R []int, opts RelOptions) (mcmc.JointResult, error) {
	if err := validateGraph(g); err != nil {
		return mcmc.JointResult{}, err
	}
	o := opts
	if o.Epsilon == 0 {
		o.Epsilon = 0.01
	}
	if o.Delta == 0 {
		o.Delta = 0.1
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = DefaultMaxSteps
	}
	steps := o.Steps
	if steps <= 0 {
		mu := o.MuBound
		if mu <= 0 {
			for _, r := range R {
				ms, err := mcmc.MuExact(g, r)
				if err != nil {
					return mcmc.JointResult{}, err
				}
				if ms.Mu > mu {
					mu = ms.Mu
				}
			}
		}
		if mu <= 0 {
			return mcmc.JointResult{}, fmt.Errorf("core: every target in R has zero betweenness; relative scores are undefined")
		}
		steps = mcmc.PlanSteps(o.Epsilon, o.Delta, mu) * len(R)
		if steps > o.MaxSteps {
			steps = o.MaxSteps
		}
	}
	cfg := mcmc.JointConfig{
		Steps:        steps,
		BurnIn:       o.BurnIn,
		DisableCache: o.DisableCache,
		InitR:        -1,
		InitV:        -1,
	}
	return mcmc.EstimateRelative(g, R, cfg, rng.New(o.Seed))
}

// ExactBC computes exact betweenness for every vertex (parallel
// Brandes). Prefer this over sampling when n is small enough that O(nm)
// is affordable.
func ExactBC(g *graph.Graph) ([]float64, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if g.Directed() {
		return nil, fmt.Errorf("core: ExactBC requires an undirected graph")
	}
	return brandes.BCParallel(g, 0), nil
}

// ExactBCOf computes the exact betweenness of a single vertex.
func ExactBCOf(g *graph.Graph, r int) (float64, error) {
	if g == nil {
		return 0, fmt.Errorf("core: nil graph")
	}
	if r < 0 || r >= g.N() {
		return 0, fmt.Errorf("core: vertex %d out of range", r)
	}
	return brandes.BCOfVertexExact(g, r), nil
}

// Mu computes the exact concentration profile μ(r) and related
// quantities (Theorems 1–2 machinery). O(nm).
func Mu(g *graph.Graph, r int) (mcmc.MuStats, error) {
	if err := validateGraph(g); err != nil {
		return mcmc.MuStats{}, err
	}
	return mcmc.MuExact(g, r)
}
