package core

import (
	"math"
	"testing"

	"bcmh/internal/graph"
	"bcmh/internal/mcmc"
	"bcmh/internal/rng"
)

// TestAdaptiveMatchedAccuracyBA400 is the adaptive-stopping acceptance
// check: on the 400-vertex Barabási–Albert workload, the
// empirical-Bernstein rule reaches the same (ε,δ) accuracy as the fixed
// Eq. 14 plan while running strictly fewer chain steps. The fixed plan
// budgets for the worst case admitted by μ(r); the adaptive rule stops
// as soon as the observed sample variance certifies the interval, which
// on heavy-hub scale-free graphs happens orders of magnitude earlier.
func TestAdaptiveMatchedAccuracyBA400(t *testing.T) {
	g := graph.BarabasiAlbert(400, 3, rng.New(1))
	hub := 0
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) > g.Degree(hub) {
			hub = v
		}
	}
	exact, err := ExactBCOf(g, hub)
	if err != nil {
		t.Fatal(err)
	}
	const eps, delta = 0.05, 0.1

	fixed, err := EstimateBC(g, hub, Options{Epsilon: eps, Delta: delta, Seed: 7, Estimator: mcmc.EstimatorProposalSide})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := EstimateBC(g, hub, Options{Adaptive: true, Epsilon: eps, Delta: delta, Seed: 7, Estimator: mcmc.EstimatorProposalSide})
	if err != nil {
		t.Fatal(err)
	}

	if e := math.Abs(fixed.Value - exact); e > eps {
		t.Fatalf("fixed plan error %.4f > eps %.2f (value %.4f, exact %.4f)", e, eps, fixed.Value, exact)
	}
	if e := math.Abs(adaptive.Value - exact); e > eps {
		t.Fatalf("adaptive error %.4f > eps %.2f (value %.4f, exact %.4f)", e, eps, adaptive.Value, exact)
	}
	if !adaptive.Diagnostics.Converged {
		t.Fatalf("adaptive chain did not converge (half-width %.4f after %d steps)",
			adaptive.Diagnostics.EBHalfWidth, adaptive.Diagnostics.StepsRun)
	}
	if adaptive.Diagnostics.StepsRun >= fixed.PlannedSteps {
		t.Fatalf("adaptive ran %d steps, fixed plan %d — no saving", adaptive.Diagnostics.StepsRun, fixed.PlannedSteps)
	}
	t.Logf("BA-400 hub %d (deg %d): exact %.4f; fixed plan %d steps -> %.4f; adaptive %d steps -> %.4f (half-width %.4f)",
		hub, g.Degree(hub), exact, fixed.PlannedSteps, fixed.Value,
		adaptive.Diagnostics.StepsRun, adaptive.Value, adaptive.Diagnostics.EBHalfWidth)
}

// TestAdaptiveRespectsHardBudget pins the budget semantics: Steps (or
// MaxSteps) is a hard ceiling the adaptive rule cannot exceed, and a
// chain that hits it reports Converged=false.
func TestAdaptiveRespectsHardBudget(t *testing.T) {
	g := graph.KarateClub()
	est, err := EstimateBC(g, 0, Options{Adaptive: true, Epsilon: 1e-9, Delta: 0.1, Steps: 512, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if est.Diagnostics.StepsRun > 512 {
		t.Fatalf("adaptive ran %d steps past the 512 hard budget", est.Diagnostics.StepsRun)
	}
	if est.Diagnostics.Converged {
		t.Fatal("eps=1e-9 cannot converge in 512 steps, yet Converged is set")
	}
}
