package store

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bcmh/internal/engine"
	"bcmh/internal/graph"
	"bcmh/internal/jobs"
	"bcmh/internal/rng"
)

// gridWithPendantRing is the acceptance-test topology: a rows×cols
// grid (one big biconnected block), a pendant ring attached to grid
// vertex 0 by a bridge. Edits inside the grid provably cannot affect
// the ring vertices' dependency columns — the μ-retention scenario.
func gridWithPendantRing(rows, cols, ringLen int) *graph.Graph {
	n := rows*cols + ringLen
	b := graph.NewBuilder(n)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(at(r, c), at(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(at(r, c), at(r+1, c))
			}
		}
	}
	ring0 := rows * cols
	for i := 0; i < ringLen; i++ {
		b.AddEdge(ring0+i, ring0+(i+1)%ringLen)
	}
	b.AddEdge(0, ring0) // the bridge
	return b.MustBuild()
}

func patchEdges(t *testing.T, srv *httptest.Server, id string, req MutateRequest) (MutateResponse, int) {
	t.Helper()
	var out MutateResponse
	code := doJSON(t, http.MethodPatch, srv.URL+"/graphs/"+id+"/edges", req, &out)
	return out, code
}

func sessionStats(t *testing.T, srv *httptest.Server, id string) SessionStatsResponse {
	t.Helper()
	var stats SessionStatsResponse
	if code := doJSON(t, http.MethodGet, srv.URL+"/graphs/"+id+"/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	return stats
}

// TestHTTPMutateAcceptance is the end-to-end dynamic-graph scenario:
// create a session, start a long estimate, PATCH an edit batch
// mid-flight, and check that (a) the in-flight request returns the
// pre-mutation answer bit-identically, (b) a fresh request reflects
// the new graph bit-identically to a from-scratch build of it, (c)
// /stats and the session Info report the bumped version, and (d) a
// μ-cache entry provably unaffected by the batch is served without
// recomputation (mu_misses build-count pin).
func TestHTTPMutateAcceptance(t *testing.T) {
	_, srv := newTestServer(t, Config{}, "")
	g := gridWithPendantRing(30, 30, 12)
	list := edgeList(t, g)
	uploadGraph(t, srv, "dyn", g)
	// Reference sessions: "pre" stays unmutated; "post" is built from
	// scratch over the post-mutation edge set (appending the added
	// edges keeps the label compaction identical, so chains are
	// bit-comparable).
	addedEdges := "31 90\n465 467\n"
	resp, err := http.Post(srv.URL+"/graphs?id=pre", "text/plain", strings.NewReader(list))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Post(srv.URL+"/graphs?id=post", "text/plain", strings.NewReader(list+addedEdges))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var info Info
	if code := doJSON(t, http.MethodGet, srv.URL+"/graphs/dyn", nil, &info); code != http.StatusOK || info.Version != 0 || info.Mutations != 0 {
		t.Fatalf("fresh session info: %d %+v", code, info)
	}

	// Warm a μ entry for a ring vertex (label 905) — provably outside
	// the grid block the batch will edit.
	var exact1 engine.ExactResponse
	if code := doJSON(t, http.MethodGet, srv.URL+"/graphs/dyn/exact/905", nil, &exact1); code != http.StatusOK {
		t.Fatalf("exact: status %d", code)
	}
	if got := sessionStats(t, srv, "dyn"); got.MuMisses != 1 {
		t.Fatalf("mu_misses = %d after one exact query, want 1", got.MuMisses)
	}

	// Long estimate on the grid center (label 465), fixed steps+seed.
	estReq := engine.EstimateRequest{Vertex: 465, Steps: 4000000, Seed: 3}
	type estOut struct {
		resp engine.EstimateResponse
		code int
	}
	inflight := make(chan estOut, 1)
	go func() {
		var er engine.EstimateResponse
		code := doJSON(t, http.MethodPost, srv.URL+"/graphs/dyn/estimate", estReq, &er)
		inflight <- estOut{er, code}
	}()
	deadline := time.Now().Add(30 * time.Second)
	sawInFlight := false
	for !sawInFlight {
		if time.Now().After(deadline) {
			t.Fatal("estimate never became in-flight")
		}
		if sessionStats(t, srv, "dyn").InFlight >= 1 {
			sawInFlight = true
			break
		}
		select {
		case out := <-inflight:
			inflight <- out // completed before we could mutate mid-flight
			sawInFlight = true
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}

	// PATCH two grid chords mid-flight, with the if_version
	// precondition.
	v0 := uint64(0)
	mresp, code := patchEdges(t, srv, "dyn", MutateRequest{
		Edits: []EditRequest{
			{Op: "add", U: 31, V: 90},
			{Op: "add", U: 465, V: 467},
		},
		IfVersion: &v0,
	})
	if code != http.StatusOK {
		t.Fatalf("PATCH: status %d (%+v)", code, mresp)
	}
	if mresp.Version != 1 || mresp.Added != 2 || mresp.Removed != 0 {
		t.Fatalf("PATCH response %+v", mresp)
	}
	if mresp.MuRetained != 1 || mresp.MuInvalidated != 0 {
		t.Fatalf("μ retention = %d/%d, want 1 retained (the ring entry), 0 invalidated", mresp.MuRetained, mresp.MuInvalidated)
	}

	// (a) The in-flight request answers with the pre-mutation chain,
	// bit-identical to the never-mutated reference session.
	out := <-inflight
	if out.code != http.StatusOK {
		t.Fatalf("in-flight estimate: status %d", out.code)
	}
	var preRef engine.EstimateResponse
	if code := doJSON(t, http.MethodPost, srv.URL+"/graphs/pre/estimate", estReq, &preRef); code != http.StatusOK {
		t.Fatalf("pre reference estimate: status %d", code)
	}
	if out.resp.Value != preRef.Value || out.resp.Evals != preRef.Evals {
		t.Fatalf("in-flight estimate %v (evals %d) != pre-mutation reference %v (evals %d)",
			out.resp.Value, out.resp.Evals, preRef.Value, preRef.Evals)
	}

	// (b) A fresh request reflects the new graph, bit-identical to the
	// from-scratch post-mutation session.
	var fresh, postRef engine.EstimateResponse
	if code := doJSON(t, http.MethodPost, srv.URL+"/graphs/dyn/estimate", estReq, &fresh); code != http.StatusOK {
		t.Fatalf("fresh estimate: status %d", code)
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/graphs/post/estimate", estReq, &postRef); code != http.StatusOK {
		t.Fatalf("post reference estimate: status %d", code)
	}
	if fresh.Value != postRef.Value {
		t.Fatalf("post-mutation estimate %v != from-scratch reference %v", fresh.Value, postRef.Value)
	}
	if fresh.Value == preRef.Value {
		t.Fatal("post-mutation estimate identical to pre-mutation value; the chords should perturb the chain")
	}

	// (c) Version is visible on /stats and the session info.
	stats := sessionStats(t, srv, "dyn")
	if stats.Version != 1 || stats.Swaps != 1 {
		t.Fatalf("stats version/swaps = %d/%d, want 1/1", stats.Version, stats.Swaps)
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/graphs/dyn", nil, &info); code != http.StatusOK || info.Version != 1 || info.Mutations != 1 || info.M != g.M()+2 {
		t.Fatalf("post-mutation info: %d %+v", code, info)
	}

	// (d) The retained ring μ entry serves /exact without a new
	// computation and the value matches the from-scratch build.
	muMissesBefore := stats.MuMisses
	var exact2, exactPost engine.ExactResponse
	if code := doJSON(t, http.MethodGet, srv.URL+"/graphs/dyn/exact/905", nil, &exact2); code != http.StatusOK {
		t.Fatalf("exact after mutation: status %d", code)
	}
	if exact2.BC != exact1.BC {
		t.Fatalf("retained exact BC changed: %v -> %v", exact1.BC, exact2.BC)
	}
	if got := sessionStats(t, srv, "dyn").MuMisses; got != muMissesBefore {
		t.Fatalf("retained μ entry recomputed: mu_misses %d -> %d", muMissesBefore, got)
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/graphs/post/exact/905", nil, &exactPost); code != http.StatusOK {
		t.Fatalf("post exact: status %d", code)
	}
	if diff := exact2.BC - exactPost.BC; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("retained exact %v != from-scratch exact %v", exact2.BC, exactPost.BC)
	}
}

func TestMutatePreconditionAndRejections(t *testing.T) {
	_, srv := newTestServer(t, Config{}, "")
	uploadGraph(t, srv, "ring", graph.Cycle(12))

	// if_version mismatch: 409, nothing applied.
	v5 := uint64(5)
	if _, code := patchEdges(t, srv, "ring", MutateRequest{
		Edits:     []EditRequest{{Op: "add", U: 0, V: 6}},
		IfVersion: &v5,
	}); code != http.StatusConflict {
		t.Fatalf("stale if_version: status %d, want 409", code)
	}

	// Disconnecting batch: 400, nothing applied.
	if _, code := patchEdges(t, srv, "ring", MutateRequest{
		Edits: []EditRequest{
			{Op: "remove", U: 0, V: 1},
			{Op: "remove", U: 6, V: 7},
		},
	}); code != http.StatusBadRequest {
		t.Fatalf("disconnecting batch: status %d, want 400", code)
	}

	// Unknown label: 404.
	if _, code := patchEdges(t, srv, "ring", MutateRequest{
		Edits: []EditRequest{{Op: "add", U: 0, V: 99}},
	}); code != http.StatusNotFound {
		t.Fatalf("unknown label: status %d, want 404", code)
	}

	// Bad op, empty batch, removal of a missing edge: 400.
	for name, req := range map[string]MutateRequest{
		"bad op":         {Edits: []EditRequest{{Op: "toggle", U: 0, V: 1}}},
		"empty":          {},
		"remove missing": {Edits: []EditRequest{{Op: "remove", U: 0, V: 5}}},
		"add existing":   {Edits: []EditRequest{{Op: "add", U: 0, V: 1}}},
	} {
		if _, code := patchEdges(t, srv, "ring", req); code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, code)
		}
	}

	// Unknown session: 404.
	if _, code := patchEdges(t, srv, "nope", MutateRequest{
		Edits: []EditRequest{{Op: "add", U: 0, V: 2}},
	}); code != http.StatusNotFound {
		t.Fatal("unknown session accepted")
	}

	// After all rejections the session is untouched.
	var info Info
	if code := doJSON(t, http.MethodGet, srv.URL+"/graphs/ring", nil, &info); code != http.StatusOK || info.Version != 0 || info.Mutations != 0 || info.M != 12 {
		t.Fatalf("session perturbed by rejected batches: %+v", info)
	}

	// A valid batch then applies with the correct precondition.
	v0 := uint64(0)
	out, code := patchEdges(t, srv, "ring", MutateRequest{
		Edits:     []EditRequest{{Op: "add", U: 0, V: 6}},
		IfVersion: &v0,
	})
	if code != http.StatusOK || out.Version != 1 || out.M != 13 {
		t.Fatalf("valid batch: %d %+v", code, out)
	}
}

// TestMutateErrorsSpeakLabels pins that per-edge rejections report the
// client's input labels, not the engine's internal vertex ids.
func TestMutateErrorsSpeakLabels(t *testing.T) {
	_, srv := newTestServer(t, Config{}, "")
	resp, err := http.Post(srv.URL+"/graphs?id=shifted", "text/plain",
		strings.NewReader("100 101\n101 102\n102 103\n103 100\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var e struct {
		Error string `json:"error"`
	}
	code := doJSON(t, http.MethodPatch, srv.URL+"/graphs/shifted/edges", MutateRequest{
		Edits: []EditRequest{{Op: "add", U: 101, V: 102}},
	}, &e)
	if code != http.StatusBadRequest {
		t.Fatalf("add-existing: status %d", code)
	}
	if !strings.Contains(e.Error, "(101,102)") || strings.Contains(e.Error, "(1,2)") {
		t.Fatalf("error %q should name the labels (101,102), not engine ids", e.Error)
	}
}

// TestMutateRecostsSessionBudget pins the budget re-accounting: the
// session's Bytes and the store total move with the edge count.
func TestMutateRecostsSessionBudget(t *testing.T) {
	st, srv := newTestServer(t, Config{}, "")
	uploadGraph(t, srv, "ring", graph.Cycle(50))
	before := st.Stats().TotalBytes
	var edits []EditRequest
	for i := 0; i < 10; i++ {
		edits = append(edits, EditRequest{Op: "add", U: int64(i), V: int64(i + 20)})
	}
	out, code := patchEdges(t, srv, "ring", MutateRequest{Edits: edits})
	if code != http.StatusOK {
		t.Fatalf("PATCH: status %d", code)
	}
	after := st.Stats().TotalBytes
	if after-before != 32*10 {
		t.Fatalf("store total moved by %d bytes for 10 added edges, want %d", after-before, 32*10)
	}
	sess, err := st.Get("ring")
	if err != nil {
		t.Fatal(err)
	}
	if sess.Cost() != out.Bytes || out.Bytes != before+32*10 {
		t.Fatalf("session cost %d, response bytes %d, pre-mutation total %d", sess.Cost(), out.Bytes, before)
	}
}

// startRankJob posts a ranking job and returns its id.
func startRankJob(t *testing.T, srv *httptest.Server, id string, req RankRequest) string {
	t.Helper()
	f := false
	req.Sync = &f
	var info struct {
		ID string `json:"id"`
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/graphs/"+id+"/rank", req, &info); code != http.StatusAccepted {
		t.Fatalf("rank: status %d", code)
	}
	return info.ID
}

// TestRankJobOnMutateCancel: a job started with on_mutate=cancel is
// aborted by a PATCH, with a versioned cause in the job record.
func TestRankJobOnMutateCancel(t *testing.T) {
	_, srv := newTestServer(t, Config{}, "")
	g := graph.BarabasiAlbert(300, 3, rng.New(9))
	uploadGraph(t, srv, "ba", g)
	jid := startRankJob(t, srv, "ba", RankRequest{
		K: 5, InitialSteps: 65536, MaxRounds: 16, Seed: 1,
		OnMutate: OnMutateCancel,
	})
	// Meta records the start version and policy from the outset.
	var mv struct {
		Meta map[string]any `json:"meta"`
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/jobs/"+jid, nil, &mv); code != http.StatusOK {
		t.Fatalf("job: status %d", code)
	}
	if mv.Meta["on_mutate"] != OnMutateCancel || mv.Meta["graph_version"] != float64(0) {
		t.Fatalf("job meta = %#v", mv.Meta)
	}

	// Any chord works; find a non-edge among the hubs.
	var u, v int64 = -1, -1
	for a := 0; a < 20 && u < 0; a++ {
		for b := a + 1; b < 20; b++ {
			if !g.HasEdge(a, b) {
				u, v = int64(a), int64(b)
				break
			}
		}
	}
	if _, code := patchEdges(t, srv, "ba", MutateRequest{
		Edits: []EditRequest{{Op: "add", U: u, V: v}},
	}); code != http.StatusOK {
		t.Fatalf("PATCH: status %d", code)
	}
	final := pollJob(t, srv, jid, 10*time.Second)
	if final.Status != jobs.StatusCancelled {
		t.Fatalf("job status = %s (error %q), want cancelled", final.Status, final.Error)
	}
	if !strings.Contains(final.Error, "version 1") || !strings.Contains(final.Error, "on_mutate=cancel") {
		t.Fatalf("job error %q lacks the versioned cause", final.Error)
	}
}

// TestRankJobOnMutateFinish: the default policy completes on the
// snapshot the job started on and stamps its version into the result.
func TestRankJobOnMutateFinish(t *testing.T) {
	_, srv := newTestServer(t, Config{}, "")
	g := graph.BarabasiAlbert(200, 3, rng.New(11))
	uploadGraph(t, srv, "ba", g)
	jid := startRankJob(t, srv, "ba", RankRequest{K: 3, InitialSteps: 2048, Seed: 1})
	if _, code := patchEdges(t, srv, "ba", MutateRequest{
		Edits: []EditRequest{{Op: "add", U: 0, V: 199}},
	}); code != http.StatusOK {
		// Vertices 0 and 199 might already be adjacent in this BA draw;
		// fall back to another chord.
		if _, code2 := patchEdges(t, srv, "ba", MutateRequest{
			Edits: []EditRequest{{Op: "add", U: 1, V: 198}},
		}); code2 != http.StatusOK {
			t.Fatalf("PATCH: statuses %d, %d", code, code2)
		}
	}
	final := pollJob(t, srv, jid, 30*time.Second)
	if final.Status != jobs.StatusDone {
		t.Fatalf("job status = %s (error %q), want done", final.Status, final.Error)
	}
	if final.Result == nil || final.Result.GraphVersion != 0 {
		t.Fatalf("result = %+v, want graph_version 0 (the snapshot the job started on)", final.Result)
	}
	if final.Result.Graph != "ba" {
		t.Fatalf("result graph = %v", final.Result.Graph)
	}
}
