package store

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"bcmh/internal/graph"
)

// TestGoldenRankBCPayload pins the synchronous rank route's ranking
// payload for the default measure (bc) to a fixture captured before the
// measure-generic redesign: a rank request that does not name a measure
// must keep producing byte-identical Top entries. ElapsedMS is
// wall-clock, so the pin covers the re-marshaled Top array plus the
// deterministic scalar fields. Regenerate with GOLDEN_UPDATE=1 only for
// an intentional payload change.
func TestGoldenRankBCPayload(t *testing.T) {
	_, srv := newTestServer(t, Config{}, "")
	uploadGraph(t, srv, "karate", graph.KarateClub())

	body := `{"k":5,"seed":42,"initial_steps":256,"sync":true}`
	resp, err := http.Post(srv.URL+"/graphs/karate/rank", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync rank: status %d body %s", resp.StatusCode, raw)
	}
	var res RankResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("decoding rank result: %v", err)
	}
	res.ElapsedMS = 0 // wall clock; everything else is seed-deterministic
	got, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "rank_bc_golden.json")
	if os.Getenv("GOLDEN_UPDATE") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(got, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote golden rank payload to %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden fixture (run with GOLDEN_UPDATE=1 to create): %v", err)
	}
	if string(got)+"\n" != string(want) {
		t.Errorf("rank payload drifted from pre-redesign golden\n got: %s\nwant: %s", got, want)
	}
}
