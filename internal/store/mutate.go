package store

// Dynamic graphs: PATCH /graphs/{id}/edges applies a batched edge
// mutation to a session's graph. The batch is copy-on-write
// (graph.ApplyEdits builds a fresh CSR one version ahead) and the
// session's engine swaps to it atomically (engine.SwapGraph), so:
//
//   - estimates in flight when the batch lands keep running on their
//     captured snapshot and return the pre-mutation answer
//     bit-identically;
//   - the next request sees the new graph, and the session's /stats
//     and Info report the bumped version;
//   - μ-cache entries provably unaffected by the batch (the
//     biconnected-component retention rule, graph.AffectedByEdits)
//     survive the swap and keep serving /exact without recomputation;
//   - ranking jobs follow their on_mutate policy: "finish" (default)
//     completes on the snapshot the job started on, "cancel" aborts
//     the job with a versioned cause.
//
// Batches are validated as a whole and applied atomically; an
// if_version precondition makes read-modify-write loops safe (409 on
// mismatch). A batch that would disconnect the graph — which the
// estimators cannot serve — is rejected with 400 and changes nothing.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"bcmh/internal/engine"
	"bcmh/internal/graph"
)

// MaxMutationEdits caps the edit count of one PATCH batch, mirroring
// the other per-request guards (engine.MaxBatchTargets et al.).
const MaxMutationEdits = 4096

// EditRequest is one edge edit of a mutation batch, addressed by input
// labels like every other vertex in the session API. W is the weight
// of an added edge on weighted graphs (0 means 1).
type EditRequest struct {
	Op string  `json:"op"` // "add" | "remove"
	U  int64   `json:"u"`
	V  int64   `json:"v"`
	W  float64 `json:"w,omitempty"`
}

// MutateRequest is the JSON body of PATCH /graphs/{id}/edges.
type MutateRequest struct {
	Edits []EditRequest `json:"edits"`
	// IfVersion, when present, is a precondition: the batch applies
	// only if the session's graph is still at exactly this version
	// (409 otherwise). Absent means apply unconditionally.
	IfVersion *uint64 `json:"if_version,omitempty"`
}

// MutateResponse is the JSON reply of PATCH /graphs/{id}/edges.
type MutateResponse struct {
	ID      string `json:"id"`
	Version uint64 `json:"version"`
	N       int    `json:"n"`
	M       int    `json:"m"`
	Added   int    `json:"added"`
	Removed int    `json:"removed"`
	// Changed lists the labels whose adjacency changed.
	Changed []int64 `json:"changed"`
	// MuRetained/MuInvalidated report the μ-cache retention outcome of
	// this batch's swap.
	MuRetained    int   `json:"mu_retained"`
	MuInvalidated int   `json:"mu_invalidated"`
	Bytes         int64 `json:"bytes"`
}

// MutateOutcome is the library-level result of Store.Mutate.
type MutateOutcome struct {
	Info    Info
	Added   int
	Removed int
	// Changed lists the engine vertex ids whose adjacency changed.
	Changed []int
	Swap    engine.SwapReport
}

// vertexOfLabel resolves an input label to an engine vertex id,
// building the reverse table on first use (the label table is
// immutable — mutations keep vertex ids stable).
func (s *Session) vertexOfLabel(label int64) (int, error) {
	if s.labels == nil {
		v := int(label)
		if v < 0 || int64(v) != label || v >= s.eng.Graph().N() {
			return 0, fmt.Errorf("store: %w %d", engine.ErrUnknownVertex, label)
		}
		return v, nil
	}
	s.byLabelOnce.Do(func() {
		m := make(map[int64]int, len(s.labels))
		for v, l := range s.labels {
			m[l] = v
		}
		s.byLabel = m
	})
	v, ok := s.byLabel[label]
	if !ok {
		return 0, fmt.Errorf("store: %w label %d (dropped with a smaller component, or absent from the input)", engine.ErrUnknownVertex, label)
	}
	return v, nil
}

// labelFor is vertexOfLabel's inverse, for responses.
func (s *Session) labelFor(v int) int64 {
	if s.labels == nil {
		return int64(v)
	}
	return s.labels[v]
}

// mutationSignal returns a channel closed at the next mutation.
// Watchers must re-check the version after subscribing (a mutation may
// have landed between their snapshot and the subscription).
func (s *Session) mutationSignal() <-chan struct{} {
	s.verMu.Lock()
	defer s.verMu.Unlock()
	if s.verCh == nil {
		s.verCh = make(chan struct{})
	}
	return s.verCh
}

// signalMutation wakes every watcher of the previous signal channel.
func (s *Session) signalMutation() {
	s.verMu.Lock()
	defer s.verMu.Unlock()
	if s.verCh != nil {
		close(s.verCh)
		s.verCh = nil
	}
}

// Mutate applies an edit batch (engine vertex ids) to sess's graph:
// precondition check, copy-on-write merge, connectivity and budget
// validation, atomic engine swap, budget re-accounting, and the
// mutation broadcast for on_mutate=cancel jobs. Batches on one session
// are serialized; concurrent estimates are never blocked (they run on
// snapshots).
func (st *Store) Mutate(sess *Session, edits []graph.Edit, ifVersion *uint64) (MutateOutcome, error) {
	if len(edits) == 0 {
		return MutateOutcome{}, fmt.Errorf("store: empty edit batch")
	}
	if len(edits) > MaxMutationEdits {
		return MutateOutcome{}, fmt.Errorf("store: batch of %d edits exceeds the limit %d", len(edits), MaxMutationEdits)
	}
	sess.mutMtx.Lock()
	defer sess.mutMtx.Unlock()
	if sess.Closed() {
		return MutateOutcome{}, ErrSessionClosed
	}
	if deg, cause := sess.Degraded(); deg {
		return MutateOutcome{}, fmt.Errorf("%w: %v", ErrDegraded, cause)
	}
	cur := sess.eng.Graph()
	if ifVersion != nil && *ifVersion != cur.Version() {
		return MutateOutcome{}, fmt.Errorf("%w: if_version %d, session %q is at version %d",
			ErrVersionConflict, *ifVersion, sess.id, cur.Version())
	}
	next, rep, err := graph.ApplyEdits(cur, edits)
	if err != nil {
		// Per-edge rejections carry engine vertex ids; translate them
		// back to the labels the client actually sent.
		var ee *graph.EditError
		if errors.As(err, &ee) {
			return MutateOutcome{}, fmt.Errorf("store: edge (%d,%d): %s", sess.labelFor(ee.U), sess.labelFor(ee.V), ee.Reason)
		}
		return MutateOutcome{}, err
	}
	if !graph.IsConnected(next) {
		return MutateOutcome{}, fmt.Errorf("store: edit batch would disconnect the graph (the estimators require a connected graph); batch rejected")
	}
	newCost := sessionCost(next.N(), next.M())
	if newCost > st.cfg.MaxBytes {
		return MutateOutcome{}, fmt.Errorf("%w: mutated session %q needs ~%d bytes, budget is %d",
			ErrTooLarge, sess.id, newCost, st.cfg.MaxBytes)
	}
	// Write-ahead: the batch must be durably accepted before it becomes
	// visible in memory — a swap the WAL never recorded would silently
	// roll back at the next restart. A WAL failure degrades the session
	// (read-only from here on) and rejects this batch; the graph the
	// clients see still matches the disk.
	if sess.dur != nil {
		if err := sess.dur.Append(cur.Version(), next.Version(), edits); err != nil {
			sess.degrade(err)
			return MutateOutcome{}, fmt.Errorf("%w: %v", ErrDegraded, err)
		}
	}
	swap, err := sess.eng.SwapGraph(next, rep.Pairs)
	if err != nil {
		return MutateOutcome{}, err
	}
	st.recost(sess, newCost)
	sess.mutations.Add(1)
	sess.signalMutation()
	st.maybeCompact(sess)
	return MutateOutcome{
		Info:    sess.info(),
		Added:   rep.Added,
		Removed: rep.Removed,
		Changed: rep.Changed,
		Swap:    swap,
	}, nil
}

// maybeCompact kicks off a background compaction when sess's WAL has
// outgrown the threshold. Called with the session's mutation lock held:
// the rotation (cheap — close, rename, reopen) happens here, under the
// lock, so the graph version captured right after covers every record
// in the rotated file; the expensive part (snapshot encode + atomic
// write) runs in a goroutine off the lock, concurrent with new appends
// into the fresh WAL.
func (st *Store) maybeCompact(sess *Session) {
	dl := sess.dur
	if dl == nil || !dl.ShouldCompact() || !dl.StartCompacting() {
		return
	}
	if err := dl.Rotate(); err != nil {
		// Rotate already marked the log failed; the session degrades on
		// the next append (or via the failure hook).
		dl.EndCompacting()
		return
	}
	g := sess.eng.Graph() // covers every rotated record: we hold mutMtx
	labels := sess.labels
	go func() {
		defer dl.EndCompacting()
		_ = dl.FinishCompact(g, labels) // failure degrades via the hook
	}()
}

// mutateStatus maps mutation-path errors onto pinned statuses: version
// conflicts 409, unknown labels 404, over-budget 413, closed sessions
// 503, malformed/rejected batches 400.
func mutateStatus(err error) int {
	switch {
	case errors.Is(err, ErrVersionConflict):
		return http.StatusConflict
	case errors.Is(err, engine.ErrUnknownVertex):
		return http.StatusNotFound
	case errors.Is(err, ErrTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrSessionClosed), errors.Is(err, ErrStoreClosed), errors.Is(err, ErrDegraded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// handleMutate serves PATCH /graphs/{id}/edges.
func (s *storeServer) handleMutate(w http.ResponseWriter, r *http.Request) {
	var req MutateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		engine.WriteError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %v", err))
		return
	}
	sess, release, err := s.st.Acquire(r.PathValue("id"))
	if err != nil {
		engine.WriteError(w, storeStatus(err), err)
		return
	}
	defer release()
	edits := make([]graph.Edit, len(req.Edits))
	for i, e := range req.Edits {
		var op graph.EditOp
		switch e.Op {
		case graph.EditAdd.String():
			op = graph.EditAdd
		case graph.EditRemove.String():
			op = graph.EditRemove
		default:
			engine.WriteError(w, http.StatusBadRequest,
				fmt.Errorf("edit %d: unknown op %q (want %q or %q)", i, e.Op, graph.EditAdd, graph.EditRemove))
			return
		}
		u, err := sess.vertexOfLabel(e.U)
		if err != nil {
			engine.WriteError(w, mutateStatus(err), fmt.Errorf("edit %d: %w", i, err))
			return
		}
		v, err := sess.vertexOfLabel(e.V)
		if err != nil {
			engine.WriteError(w, mutateStatus(err), fmt.Errorf("edit %d: %w", i, err))
			return
		}
		edits[i] = graph.Edit{Op: op, U: u, V: v, W: e.W}
	}
	out, err := s.st.Mutate(sess, edits, req.IfVersion)
	if err != nil {
		engine.WriteError(w, mutateStatus(err), err)
		return
	}
	changed := make([]int64, len(out.Changed))
	for i, v := range out.Changed {
		changed[i] = sess.labelFor(v)
	}
	engine.WriteJSON(w, http.StatusOK, MutateResponse{
		ID:            out.Info.ID,
		Version:       out.Info.Version,
		N:             out.Info.N,
		M:             out.Info.M,
		Added:         out.Added,
		Removed:       out.Removed,
		Changed:       changed,
		MuRetained:    out.Swap.MuRetained,
		MuInvalidated: out.Swap.MuInvalidated,
		Bytes:         out.Info.Bytes,
	})
}
