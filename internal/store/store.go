// Package store is the multi-tenant graph layer of the serving stack:
// where internal/engine binds one prepared graph to one set of shared
// caches, a Store manages many named graph *sessions* — created from
// uploaded edge lists, listed, fetched, and deleted over a management
// API — under one bounded memory budget.
//
// Each session owns a full engine.Engine (μ-cache, result LRU, buffer
// pools, target-snapshot cache), the label table mapping input-file
// vertex ids to engine ids, and a session-scoped context. Sessions
// are dynamic: a batched edge-mutation API (mutate.go; PATCH
// /graphs/{id}/edges over HTTP) rewrites a session's graph
// copy-on-write, bumping its version, re-accounting its budget share,
// and leaving in-flight work snapshot-isolated on the old CSR. The
// store enforces:
//
//   - a total memory budget: when the estimated resident cost of all
//     sessions exceeds Config.MaxBytes (or their count exceeds
//     Config.MaxSessions), least-recently-used *idle* sessions are
//     evicted — pinned sessions (preloaded at server startup) and
//     sessions with requests in flight are never touched;
//   - creation singleflight: concurrent uploads of the same session id
//     share one parse + engine build, so a retrying client cannot
//     stampede the store into building the same graph twice;
//   - lifecycle-coupled cancellation: deleting a session (or closing
//     the store) cancels its context with ErrSessionClosed as the
//     cause, which aborts every in-flight chain on that session via the
//     context threading in internal/mcmc — an evicted graph stops
//     consuming CPU immediately, not after MaxSteps more traversals.
//
// server.go wraps a Store in the /graphs HTTP management API and mounts
// each session's estimation routes beneath /graphs/{id}/, with the
// legacy single-graph routes aliased to a designated default session.
package store

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"io"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bcmh/internal/durable"
	"bcmh/internal/engine"
	"bcmh/internal/graph"
)

// Sentinel errors of the session lifecycle; the HTTP layer maps each to
// a pinned status code.
var (
	// ErrNotFound: no session with the requested id (404).
	ErrNotFound = errors.New("store: graph session not found")
	// ErrExists: a session with this id already exists (409).
	ErrExists = errors.New("store: graph session already exists")
	// ErrTooLarge: the uploaded graph alone exceeds the store's memory
	// budget and can never be resident (413).
	ErrTooLarge = errors.New("store: graph exceeds the store memory budget")
	// ErrStoreClosed: the store has shut down (503).
	ErrStoreClosed = errors.New("store: store is closed")
	// ErrSessionClosed is the cancellation cause installed on a
	// session's context when the session is deleted, evicted, or the
	// store closes. In-flight estimates on that session abort with a
	// context error whose context.Cause is this value (503).
	ErrSessionClosed = errors.New("store: graph session closed")
	// ErrVersionConflict: a mutation's if_version precondition did not
	// match the session's current graph version (409).
	ErrVersionConflict = errors.New("store: graph version conflict")
	// ErrMutatedUnderJob is the versioned cancellation cause installed
	// on a job's context when its session's graph mutates and the job
	// was started with the on_mutate=cancel policy.
	ErrMutatedUnderJob = errors.New("store: graph mutated under job")
	// ErrDegraded: the session is read-only because a durable write
	// (WAL append, snapshot write) failed; mutations are rejected (503)
	// while estimates keep serving. The wrapped error carries the
	// pinned first cause.
	ErrDegraded = errors.New("store: session is degraded (read-only): durable write failed")
)

// Defaults for the zero Config.
const (
	// DefaultMaxBytes bounds the estimated resident cost of all
	// sessions: 1 GiB.
	DefaultMaxBytes = int64(1) << 30
	// DefaultMaxSessions bounds the number of resident sessions.
	DefaultMaxSessions = 64
)

// idPattern constrains session ids so they embed cleanly in URL paths
// and filenames.
var idPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// Config tunes a Store.
type Config struct {
	// MaxBytes bounds the summed estimated cost of resident sessions
	// (see Session.Cost). Zero means DefaultMaxBytes.
	MaxBytes int64
	// MaxSessions bounds the number of resident sessions. Zero means
	// DefaultMaxSessions.
	MaxSessions int
	// ResultCacheSize is passed to each session's engine.Config.
	ResultCacheSize int
	// Durable, when non-nil, persists every session to the manager's
	// data directory: a snapshot on creation, a WAL record per applied
	// mutation batch, file deletion on Delete (and only on Delete —
	// eviction keeps the files and the session rehydrates from them on
	// next access). Open additionally replays the whole catalog at
	// boot. When a durable write fails the session degrades to
	// read-only (ErrDegraded) instead of taking the process down.
	Durable *durable.Manager
}

func (c Config) withDefaults() Config {
	if c.MaxBytes <= 0 {
		c.MaxBytes = DefaultMaxBytes
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	return c
}

// Store manages named graph sessions under one memory budget. Safe for
// concurrent use.
type Store struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*list.Element // values: *list.Element of lru
	lru      *list.List               // front = most recently used; values *Session
	building map[string]*buildCall    // creation singleflight, keyed by id
	total    int64                    // Σ Session.Cost over resident sessions
	closed   bool

	evictions atomic.Uint64
	builds    atomic.Uint64
}

// buildCall is one in-flight session creation or disk rehydration;
// concurrent Create/rehydrate calls for the same id block on done and
// share sess/err.
type buildCall struct {
	done      chan struct{}
	sess      *Session
	err       error
	rehydrate bool // loading existing durable state, not creating anew
}

// New returns an empty store. With Config.Durable set the store
// persists sessions as they are created and rehydrates evicted ones on
// access, but does not load the on-disk catalog — use Open for a boot
// that recovers every persisted session up front.
func New(cfg Config) *Store {
	return &Store{
		cfg:      cfg.withDefaults(),
		sessions: make(map[string]*list.Element),
		lru:      list.New(),
		building: make(map[string]*buildCall),
	}
}

// Open is New plus boot-time recovery: every session found in the
// durable data directory is replayed (snapshot + WAL) and inserted.
// Per-session recovery failures are logged and skipped — a torn or
// corrupt session never refuses the boot; only an unreadable data
// directory does. Sessions beyond the memory budget are evicted
// LRU-first immediately, which is harmless: their files stay put and
// they rehydrate on first access.
func Open(cfg Config) (*Store, error) {
	st := New(cfg)
	if cfg.Durable == nil {
		return st, nil
	}
	ids, err := cfg.Durable.List()
	if err != nil {
		return nil, fmt.Errorf("store: listing durable sessions: %w", err)
	}
	for _, id := range ids {
		if CheckID(id) != nil {
			continue // foreign directory, not one of ours
		}
		if _, err := st.rehydrate(id); err != nil {
			cfg.Durable.Logf("store: skipping unrecoverable session %q: %v", id, err)
		}
	}
	return st, nil
}

// Session is one resident graph with its engine and serving state. All
// methods are safe for concurrent use.
type Session struct {
	id      string
	eng     *engine.Engine
	labels  []int64      // engine vertex -> input label (nil: identity)
	cost    atomic.Int64 // mutations re-estimate it (edge count changes)
	pinned  bool
	created time.Time

	ctx    context.Context // cancelled with cause ErrSessionClosed on close
	cancel context.CancelCauseFunc

	active   atomic.Int64 // in-flight request count; evictable only at 0
	lastUsed atomic.Int64 // unix nanos of the latest Get/Acquire/release

	handlerOnce sync.Once // lazy per-session HTTP handler (server.go)
	handler     httpHandler

	// Mutation state (mutate.go): mutMtx serializes edit batches so
	// if_version preconditions are atomic; mutations counts applied
	// batches; byLabel is the lazily built label→vertex table edits are
	// addressed through; verCh is the close-and-replace broadcast jobs
	// with the on_mutate=cancel policy watch.
	mutMtx      sync.Mutex
	compacting  atomic.Bool // overlay compaction in flight (stream.go)
	mutations   atomic.Uint64
	byLabelOnce sync.Once
	byLabel     map[int64]int
	verMu       sync.Mutex
	verCh       chan struct{}

	// Durability (when the store has a durable.Manager): dur is the
	// open snapshot+WAL handle (nil when the session failed to persist
	// at birth and is serving degraded); durable records that the
	// session was *meant* to persist; degraded pins the first durable
	// write failure — from then on the session is read-only: mutations
	// are rejected with ErrDegraded, estimates keep serving.
	durable  bool
	dur      *durable.Log
	degraded atomic.Pointer[degradedInfo]
}

// degradedInfo pins the first durable write failure of a session.
type degradedInfo struct {
	cause error
	at    time.Time
}

// degrade flips the session to read-only, keeping the first cause.
// Idempotent and safe from any goroutine (the WAL group-commit timer
// included).
func (s *Session) degrade(cause error) {
	s.degraded.CompareAndSwap(nil, &degradedInfo{cause: cause, at: time.Now()})
}

// Durable reports whether the session is configured for persistence.
func (s *Session) Durable() bool { return s.durable }

// Degraded returns the session's read-only degradation state and its
// pinned first cause (nil when healthy).
func (s *Session) Degraded() (bool, error) {
	if d := s.degraded.Load(); d != nil {
		return true, d.cause
	}
	return false, nil
}

// WalBytes returns the session's current WAL size (0 for non-durable
// sessions).
func (s *Session) WalBytes() int64 {
	if s.dur == nil {
		return 0
	}
	return s.dur.WalBytes()
}

// ID returns the session's store id.
func (s *Session) ID() string { return s.id }

// Engine returns the session's estimation engine.
func (s *Session) Engine() *engine.Engine { return s.eng }

// Labels returns the engine-vertex → input-label table (nil when the
// session was created from an in-memory graph without labels). Not a
// copy; do not modify.
func (s *Session) Labels() []int64 { return s.labels }

// Cost is the session's estimated resident memory in bytes, the value
// the store's budget accounting uses. It is a deliberate proxy — CSR
// arrays, label tables, and a fixed allowance for the engine's caches —
// not a measurement. Mutations re-estimate it (the edge count moves).
func (s *Session) Cost() int64 { return s.cost.Load() }

// Version returns the session's current graph version.
func (s *Session) Version() uint64 { return s.eng.Version() }

// Mutations returns the number of edit batches applied to the session.
func (s *Session) Mutations() uint64 { return s.mutations.Load() }

// Pinned reports whether the session is exempt from LRU eviction
// (sessions preloaded at server startup are).
func (s *Session) Pinned() bool { return s.pinned }

// CreatedAt returns the session creation time.
func (s *Session) CreatedAt() time.Time { return s.created }

// LastUsed returns the time of the session's most recent use.
func (s *Session) LastUsed() time.Time { return time.Unix(0, s.lastUsed.Load()) }

// Context returns the session-scoped context: cancelled, with
// ErrSessionClosed as the cause, when the session is deleted or evicted
// or the store closes. Estimates on the session should run under a
// context derived from both this and the request's own context — see
// RequestContext.
func (s *Session) Context() context.Context { return s.ctx }

// Closed reports whether the session has been deleted or evicted.
func (s *Session) Closed() bool { return s.ctx.Err() != nil }

// RequestContext derives a context for serving one request on this
// session: it is cancelled when either the request's own ctx or the
// session's lifecycle context is cancelled, and it preserves the
// session's cancellation cause (ErrSessionClosed) so the HTTP layer can
// distinguish "client hung up" (499) from "session was closed under the
// request" (503). The returned stop function must be called when the
// request finishes to release the coupling.
func (s *Session) RequestContext(ctx context.Context) (context.Context, context.CancelFunc) {
	rctx, cancel := context.WithCancelCause(ctx)
	stop := context.AfterFunc(s.ctx, func() {
		cancel(context.Cause(s.ctx))
	})
	return rctx, func() {
		stop()
		cancel(context.Canceled)
	}
}

// sessionCost estimates the resident bytes of a session over a prepared
// graph with n vertices and m undirected edges: the CSR adjacency
// (two int32-ish endpoints per directed arc plus offsets), the label
// and mapping tables, and a flat allowance for the engine's μ-cache,
// result LRU, pooled buffers, and target-snapshot cache (all O(n) per
// entry, bounded counts).
func sessionCost(n, m int) int64 {
	return 64*int64(n) + 32*int64(m) + 1<<16
}

// touch updates recency under the store lock.
func (st *Store) touch(el *list.Element) {
	st.lru.MoveToFront(el)
	el.Value.(*Session).lastUsed.Store(time.Now().UnixNano())
}

// Create parses an edge list from r and creates a session named id over
// it. Concurrent Create calls with the same id share one parse and
// engine build and all receive the same session (uploads racing on one
// id are assumed to carry the same graph). An id that is already
// resident fails with ErrExists; a graph whose estimated cost alone
// exceeds the store budget fails with ErrTooLarge. Creating a new
// session may evict idle unpinned sessions (LRU first) to make room.
func (st *Store) Create(id string, r io.Reader) (*Session, error) {
	if err := CheckID(id); err != nil {
		return nil, err
	}
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil, ErrStoreClosed
	}
	if _, ok := st.sessions[id]; ok {
		st.mu.Unlock()
		return nil, ErrExists
	}
	if bc, ok := st.building[id]; ok {
		// Singleflight: ride the in-flight build — unless it is a disk
		// rehydration, whose success means the id is taken.
		st.mu.Unlock()
		<-bc.done
		if bc.rehydrate && bc.err == nil {
			return nil, ErrExists
		}
		return bc.sess, bc.err
	}
	if st.durableExists(id) {
		// The id belongs to an evicted-but-persisted session. Creating
		// over it would clobber its files; the id stays taken until an
		// explicit Delete.
		st.mu.Unlock()
		return nil, fmt.Errorf("%w (session %q is persisted on disk; delete it first)", ErrExists, id)
	}
	bc := &buildCall{done: make(chan struct{})}
	st.building[id] = bc
	st.mu.Unlock()

	bc.sess, bc.err = st.build(id, r)
	return st.finishBuild(id, bc)
}

// durableExists reports whether id has durable files on disk. Caller
// holds st.mu (the Stat-shaped probe is cheap enough to sit under it,
// and keeping it there makes the exists-check atomic with the
// residency check).
func (st *Store) durableExists(id string) bool {
	return st.cfg.Durable != nil && st.cfg.Durable.Has(id)
}

// finishBuild completes a build/rehydrate singleflight: register the
// session (unless the store closed or the id appeared meanwhile),
// release the waiters, and — on failure — tear the orphan session down
// without touching its durable files.
func (st *Store) finishBuild(id string, bc *buildCall) (*Session, error) {
	st.mu.Lock()
	delete(st.building, id)
	if bc.err == nil {
		// The store may have closed while the build ran unlocked;
		// inserting then would leave an unevictable session with a
		// live context in a closed store.
		if st.closed {
			bc.err = ErrStoreClosed
		} else {
			bc.err = st.insertLocked(bc.sess)
		}
		if bc.err != nil {
			bc.sess.shutdown()
			bc.sess = nil
		}
	}
	st.mu.Unlock()
	close(bc.done)
	return bc.sess, bc.err
}

// shutdown cancels the session's lifecycle and closes (not deletes) its
// durable handle.
func (s *Session) shutdown() {
	s.cancel(ErrSessionClosed)
	if s.dur != nil {
		_ = s.dur.Close()
	}
}

// build parses and prepares a session outside the store lock.
func (st *Store) build(id string, r io.Reader) (*Session, error) {
	g, idOf, err := graph.ReadEdgeList(r)
	if err != nil {
		return nil, err
	}
	sess, err := st.newSession(id, g, idOf, false)
	if err != nil {
		return nil, err
	}
	st.persistNew(sess)
	return sess, nil
}

// persistNew writes a fresh session's durable state (snapshot + empty
// WAL). A persistence failure does not fail the creation: the session
// serves, but degraded — read-only with the cause pinned — so one bad
// disk never turns the upload path into an outage.
func (st *Store) persistNew(sess *Session) {
	if st.cfg.Durable == nil {
		return
	}
	sess.durable = true
	dl, err := st.cfg.Durable.Create(sess.id, sess.eng.Graph(), sess.labels)
	if err != nil {
		sess.degrade(err)
		return
	}
	sess.dur = dl
	dl.OnFailure(sess.degrade)
}

// rehydrate loads an evicted (or boot-time) durable session back from
// disk, sharing the creation singleflight so concurrent accesses do one
// recovery.
func (st *Store) rehydrate(id string) (*Session, error) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil, ErrStoreClosed
	}
	if el, ok := st.sessions[id]; ok {
		// Raced back in while we were deciding.
		st.touch(el)
		st.mu.Unlock()
		return el.Value.(*Session), nil
	}
	if bc, ok := st.building[id]; ok {
		st.mu.Unlock()
		<-bc.done
		return bc.sess, bc.err
	}
	if !st.durableExists(id) {
		st.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	bc := &buildCall{done: make(chan struct{}), rehydrate: true}
	st.building[id] = bc
	st.mu.Unlock()

	bc.sess, bc.err = st.buildFromDisk(id)
	return st.finishBuild(id, bc)
}

// buildFromDisk recovers one session's graph from snapshot + WAL and
// rebuilds its engine over the recovered version.
func (st *Store) buildFromDisk(id string) (*Session, error) {
	rec, dl, err := st.cfg.Durable.Recover(id)
	if err != nil {
		return nil, fmt.Errorf("store: recovering session %q: %w", id, err)
	}
	// The persisted graph is the prepared (connected) one, so the
	// engine performs no component extraction and rec.Labels maps
	// engine vertices directly.
	sess, err := st.newSession(id, rec.Graph, rec.Labels, false)
	if err != nil {
		_ = dl.Close()
		return nil, err
	}
	sess.durable = true
	sess.dur = dl
	dl.OnFailure(sess.degrade)
	return sess, nil
}

// CreateFromGraph creates a session directly from an in-memory graph,
// bypassing the edge-list parse: the path server startup preloads take.
// idOf, when non-nil, maps the raw graph's vertex ids to input labels
// (as returned by graph.ReadEdgeList). Pinned sessions are exempt from
// LRU eviction.
func (st *Store) CreateFromGraph(id string, g *graph.Graph, idOf []int64, pinned bool) (*Session, error) {
	if err := CheckID(id); err != nil {
		return nil, err
	}
	// Claim the id before building: a resident session, an in-flight
	// build, or durable files on disk (an evicted or boot-recovered
	// session) all mean the id is taken — building first would waste an
	// engine build and, worse, persisting would clobber the files of the
	// session that owns the id.
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil, ErrStoreClosed
	}
	if _, ok := st.sessions[id]; ok {
		st.mu.Unlock()
		return nil, ErrExists
	}
	if _, ok := st.building[id]; ok {
		st.mu.Unlock()
		return nil, ErrExists
	}
	if st.durableExists(id) {
		st.mu.Unlock()
		return nil, fmt.Errorf("%w (session %q is persisted on disk; delete it first)", ErrExists, id)
	}
	bc := &buildCall{done: make(chan struct{})}
	st.building[id] = bc
	st.mu.Unlock()

	bc.sess, bc.err = st.newSession(id, g, idOf, pinned)
	if bc.err == nil {
		st.persistNew(bc.sess)
	}
	return st.finishBuild(id, bc)
}

// CheckID validates a session id against the store id alphabet (the
// rules idPattern encodes). Exported so front-ends deriving ids (e.g.
// bcserve from -in file names) validate against the one authority.
func CheckID(id string) error {
	if !idPattern.MatchString(id) {
		return fmt.Errorf("store: invalid session id %q (want 1-64 of [A-Za-z0-9._-], starting alphanumeric)", id)
	}
	return nil
}

// newSession builds the engine and session shell (no store insertion).
func (st *Store) newSession(id string, g *graph.Graph, idOf []int64, pinned bool) (*Session, error) {
	st.builds.Add(1)
	// The lifecycle context exists before the engine so the engine's
	// background work (detached μ computations) dies with the session.
	ctx, cancel := context.WithCancelCause(context.Background())
	eng, err := engine.NewWithConfig(g, engine.Config{
		ResultCacheSize: st.cfg.ResultCacheSize,
		Lifecycle:       ctx,
	})
	if err != nil {
		cancel(ErrSessionClosed)
		return nil, fmt.Errorf("store: preparing graph %q: %w", id, err)
	}
	prepared := eng.Graph()
	cost := sessionCost(prepared.N(), prepared.M())
	if cost > st.cfg.MaxBytes {
		cancel(ErrSessionClosed)
		return nil, fmt.Errorf("%w: session %q needs ~%d bytes, budget is %d", ErrTooLarge, id, cost, st.cfg.MaxBytes)
	}
	now := time.Now()
	sess := &Session{
		id:      id,
		eng:     eng,
		labels:  composeLabels(eng, idOf),
		pinned:  pinned,
		created: now,
		ctx:     ctx,
		cancel:  cancel,
	}
	sess.cost.Store(cost)
	sess.lastUsed.Store(now.UnixNano())
	return sess, nil
}

// composeLabels folds the engine's largest-component mapping into the
// edge-list label table: labels[v] is the input-file label of engine
// vertex v. A nil idOf (in-memory graph) yields nil — requests then
// address raw engine ids.
func composeLabels(eng *engine.Engine, idOf []int64) []int64 {
	if idOf == nil {
		return nil
	}
	labels := make([]int64, eng.Graph().N())
	mapping := eng.Mapping()
	for v := range labels {
		rawV := v
		if mapping != nil {
			rawV = mapping[v]
		}
		labels[v] = idOf[rawV]
	}
	return labels
}

// insertLocked registers a built session and evicts over budget.
// Caller holds st.mu.
func (st *Store) insertLocked(sess *Session) error {
	if _, ok := st.sessions[sess.id]; ok {
		return ErrExists
	}
	el := st.lru.PushFront(sess)
	st.sessions[sess.id] = el
	st.total += sess.Cost()
	st.evictLocked(sess)
	return nil
}

// recost re-accounts a session's budget share after a mutation changed
// its estimated size, evicting idle sessions if the store went over.
func (st *Store) recost(sess *Session, newCost int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	old := sess.cost.Swap(newCost)
	if el, ok := st.sessions[sess.id]; ok && el.Value.(*Session) == sess && !st.closed {
		st.total += newCost - old
		st.evictLocked(sess)
	}
}

// evictLocked walks the LRU tail evicting idle, unpinned sessions
// (never `keep`) until the store is back under both budgets or nothing
// more can go. Sessions with requests in flight are skipped — evicting
// would abort traffic the budget pressure didn't come from; the budget
// is soft in exactly that case and re-checked on the next insertion.
func (st *Store) evictLocked(keep *Session) {
	over := func() bool {
		return st.total > st.cfg.MaxBytes || st.lru.Len() > st.cfg.MaxSessions
	}
	el := st.lru.Back()
	for over() && el != nil {
		prev := el.Prev()
		sess := el.Value.(*Session)
		if sess != keep && !sess.pinned && sess.active.Load() == 0 {
			st.removeLocked(el, sess)
			st.evictions.Add(1)
		}
		el = prev
	}
}

// removeLocked unregisters a session, cancels its context, and closes
// (not deletes) its durable handle. Caller holds st.mu.
func (st *Store) removeLocked(el *list.Element, sess *Session) {
	st.lru.Remove(el)
	delete(st.sessions, sess.id)
	st.total -= sess.Cost()
	sess.shutdown()
}

// Get returns the session named id, bumping its recency. A durable
// session that was evicted is transparently rehydrated from disk. The
// caller must not hold the session across slow work if it wants
// eviction protection — use Acquire for serving requests.
func (st *Store) Get(id string) (*Session, error) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil, ErrStoreClosed
	}
	if el, ok := st.sessions[id]; ok {
		st.touch(el)
		sess := el.Value.(*Session)
		st.mu.Unlock()
		return sess, nil
	}
	st.mu.Unlock()
	// Not resident: rehydrate answers with the recovered session or
	// ErrNotFound when no durable state exists either.
	return st.rehydrate(id)
}

// Acquire is Get plus an in-flight reservation: until the returned
// release function is called, the session cannot be evicted by the
// memory budget (explicit Delete still closes it, aborting the work —
// that is the point of lifecycle cancellation). Every serving request
// runs between Acquire and release. Like Get, Acquire transparently
// rehydrates an evicted durable session.
func (st *Store) Acquire(id string) (*Session, func(), error) {
	var sess *Session
	for attempt := 0; ; attempt++ {
		st.mu.Lock()
		if st.closed {
			st.mu.Unlock()
			return nil, nil, ErrStoreClosed
		}
		if el, ok := st.sessions[id]; ok {
			st.touch(el)
			sess = el.Value.(*Session)
			sess.active.Add(1)
			st.mu.Unlock()
			break
		}
		st.mu.Unlock()
		if attempt > 0 {
			// Rehydrated and evicted again before we could reserve it —
			// the budget is clearly too tight to hold it; give up rather
			// than loop.
			return nil, nil, fmt.Errorf("%w: %q", ErrNotFound, id)
		}
		if _, err := st.rehydrate(id); err != nil {
			return nil, nil, err
		}
	}
	var once sync.Once
	release := func() {
		once.Do(func() {
			sess.active.Add(-1)
			// Re-bump recency at completion time, not just at Acquire:
			// a session that just finished a long request is the most
			// recently used one, and eviction walks the list order.
			st.mu.Lock()
			if cur, ok := st.sessions[sess.id]; ok && cur.Value.(*Session) == sess {
				st.touch(cur)
			} else {
				sess.lastUsed.Store(time.Now().UnixNano())
			}
			st.mu.Unlock()
		})
	}
	return sess, release, nil
}

// Delete removes the session named id and cancels its context with
// cause ErrSessionClosed, aborting its in-flight estimates promptly.
// For durable sessions this is the one operation that deletes the
// on-disk files — eviction never does — so it also removes an evicted
// session that exists only on disk.
func (st *Store) Delete(id string) error {
	for {
		st.mu.Lock()
		if st.closed {
			st.mu.Unlock()
			return ErrStoreClosed
		}
		if bc, ok := st.building[id]; ok {
			// A build or rehydration is in flight; deleting files under
			// it would race. Wait for it to settle, then delete.
			st.mu.Unlock()
			<-bc.done
			continue
		}
		el, resident := st.sessions[id]
		if resident {
			st.removeLocked(el, el.Value.(*Session))
		}
		onDisk := st.durableExists(id)
		st.mu.Unlock()
		if !resident && !onDisk {
			return fmt.Errorf("%w: %q", ErrNotFound, id)
		}
		if onDisk {
			return st.cfg.Durable.Remove(id)
		}
		return nil
	}
}

// Info is a point-in-time description of one session, JSON-shaped for
// the management API.
type Info struct {
	ID string `json:"id"`
	N  int    `json:"n"`
	M  int    `json:"m"`
	// Version is the session's current graph version (0 at creation,
	// +1 per applied edit batch); Mutations counts applied batches.
	Version   uint64    `json:"version"`
	Mutations uint64    `json:"mutations"`
	Bytes     int64     `json:"bytes"`
	Pinned    bool      `json:"pinned"`
	Active    int64     `json:"active"`
	Created   time.Time `json:"created"`
	LastUsed  time.Time `json:"last_used"`
	// Durable reports that the session persists to disk; WalBytes is its
	// current WAL size. Degraded means a durable write failed and the
	// session is read-only, with DegradedCause carrying the pinned first
	// failure.
	Durable       bool   `json:"durable,omitempty"`
	WalBytes      int64  `json:"wal_bytes,omitempty"`
	Degraded      bool   `json:"degraded,omitempty"`
	DegradedCause string `json:"degraded_cause,omitempty"`
}

func (s *Session) info() Info {
	snap := s.eng.Snapshot()
	g := snap.Graph
	info := Info{
		ID:        s.id,
		N:         g.N(),
		M:         g.M(),
		Version:   snap.Version,
		Mutations: s.mutations.Load(),
		Bytes:     s.Cost(),
		Pinned:    s.pinned,
		Active:    s.active.Load(),
		Created:   s.created,
		LastUsed:  s.LastUsed(),
		Durable:   s.durable,
		WalBytes:  s.WalBytes(),
	}
	if deg, cause := s.Degraded(); deg {
		info.Degraded = true
		info.DegradedCause = cause.Error()
	}
	return info
}

// List describes every resident session, sorted by id.
func (st *Store) List() []Info {
	st.mu.Lock()
	out := make([]Info, 0, st.lru.Len())
	for el := st.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*Session).info())
	}
	st.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats is the store-level counter snapshot.
type Stats struct {
	Sessions    int    `json:"sessions"`
	TotalBytes  int64  `json:"total_bytes"`
	MaxBytes    int64  `json:"max_bytes"`
	MaxSessions int    `json:"max_sessions"`
	Evictions   uint64 `json:"evictions"`
	// Builds counts session constructions (graph prepare + engine
	// build). Concurrent uploads of one id share a build, so this stays
	// below the number of Create calls under duplicate-upload races.
	Builds uint64 `json:"builds"`
}

// Stats returns the store-level counters.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return Stats{
		Sessions:    st.lru.Len(),
		TotalBytes:  st.total,
		MaxBytes:    st.cfg.MaxBytes,
		MaxSessions: st.cfg.MaxSessions,
		Evictions:   st.evictions.Load(),
		Builds:      st.builds.Load(),
	}
}

// Len returns the number of resident sessions.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lru.Len()
}

// Close deletes every session (cancelling their contexts, so all
// in-flight work aborts) and marks the store closed; subsequent calls
// fail with ErrStoreClosed. Idempotent.
func (st *Store) Close() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	st.closed = true
	for el := st.lru.Front(); el != nil; {
		next := el.Next()
		st.removeLocked(el, el.Value.(*Session))
		el = next
	}
}
