package store

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bcmh/internal/core"
	"bcmh/internal/graph"
	"bcmh/internal/jobs"
	"bcmh/internal/measure"
	"bcmh/internal/rng"
	"bcmh/internal/stats"
)

// jobView mirrors the jobs.Info JSON with the ranking payloads typed.
type jobView struct {
	ID       string        `json:"id"`
	Owner    string        `json:"owner"`
	Status   jobs.Status   `json:"status"`
	Progress *RankProgress `json:"progress"`
	Result   *RankResult   `json:"result"`
	Error    string        `json:"error"`
}

// pollJob polls GET /jobs/{id} until the job is terminal or the
// deadline passes, returning the final view. The deadline doubles as
// the promptness pin for cancellation tests.
func pollJob(t *testing.T, srv *httptest.Server, id string, deadline time.Duration) jobView {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		var view jobView
		if code := doJSON(t, http.MethodGet, srv.URL+"/jobs/"+id, nil, &view); code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: status %d", id, code)
		}
		if view.Status.Terminal() {
			return view
		}
		if time.Now().After(end) {
			t.Fatalf("job %s still %q after %v (progress %+v)", id, view.Status, deadline, view.Progress)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// exactTop5Labels returns the exact top-5 label set of the karate club.
func exactTop5Labels(t *testing.T) map[int64]bool {
	t.Helper()
	bc, err := core.ExactBC(graph.KarateClub())
	if err != nil {
		t.Fatal(err)
	}
	top := make(map[int64]bool, 5)
	for _, v := range stats.TopKIndices(bc, 5) {
		top[int64(v)] = true
	}
	return top
}

func topLabelSet(entries []RankEntry) map[int64]bool {
	s := make(map[int64]bool, len(entries))
	for _, e := range entries {
		s[e.Vertex] = true
	}
	return s
}

func sameLabelSet(a, b map[int64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

// TestRankJobKarateTop5 is the end-to-end acceptance test: POST
// /graphs/{id}/rank on the karate club with default knobs returns a
// job whose final top-5 matches the exact top-5.
func TestRankJobKarateTop5(t *testing.T) {
	_, srv := newTestServer(t, Config{}, "")
	uploadGraph(t, srv, "karate", graph.KarateClub())

	var created jobView
	if code := doJSON(t, http.MethodPost, srv.URL+"/graphs/karate/rank", RankRequest{K: 5, Seed: 1}, &created); code != http.StatusAccepted {
		t.Fatalf("POST rank: status %d", code)
	}
	if created.ID == "" || created.Owner != "karate" {
		t.Fatalf("job creation reply: %+v", created)
	}
	final := pollJob(t, srv, created.ID, 30*time.Second)
	if final.Status != jobs.StatusDone {
		t.Fatalf("job finished %q (error %q)", final.Status, final.Error)
	}
	if final.Result == nil || len(final.Result.Top) != 5 {
		t.Fatalf("job result: %+v", final.Result)
	}
	if got, want := topLabelSet(final.Result.Top), exactTop5Labels(t); !sameLabelSet(got, want) {
		t.Fatalf("top-5 labels %v, exact %v", got, want)
	}
	if final.Result.Rounds < 1 || final.Result.TotalSteps == 0 {
		t.Fatalf("result bookkeeping: %+v", final.Result)
	}
}

// TestRankSyncFastPath pins both synchronous triggers: an explicit
// "sync": true on any server, and the ServerOptions.SyncRankN
// threshold with no sync field.
func TestRankSyncFastPath(t *testing.T) {
	_, srv := newTestServer(t, Config{}, "")
	uploadGraph(t, srv, "karate", graph.KarateClub())
	syncTrue := true
	var res RankResult
	if code := doJSON(t, http.MethodPost, srv.URL+"/graphs/karate/rank",
		RankRequest{K: 5, Seed: 1, Sync: &syncTrue}, &res); code != http.StatusOK {
		t.Fatalf("sync rank: status %d", code)
	}
	if got, want := topLabelSet(res.Top), exactTop5Labels(t); !sameLabelSet(got, want) {
		t.Fatalf("sync top-5 %v, exact %v", got, want)
	}

	// Threshold-triggered sync: n=34 ≤ SyncRankN means 200-with-result
	// without asking.
	st := New(Config{})
	t.Cleanup(st.Close)
	srv2 := httptest.NewServer(NewServerWithOptions(st, ServerOptions{SyncRankN: 64}))
	t.Cleanup(srv2.Close)
	uploadGraph(t, srv2, "karate", graph.KarateClub())
	var res2 RankResult
	if code := doJSON(t, http.MethodPost, srv2.URL+"/graphs/karate/rank", RankRequest{K: 5, Seed: 1}, &res2); code != http.StatusOK {
		t.Fatalf("threshold sync rank: status %d", code)
	}
	if res2.Top[0].Vertex != res.Top[0].Vertex {
		t.Fatalf("threshold sync disagrees with explicit sync: %+v vs %+v", res2.Top[0], res.Top[0])
	}
}

// slowRankBody is a ranking request sized to run for minutes if never
// cancelled: every vertex of a 2000-vertex graph gets 2^20-step chains.
func slowRankBody() RankRequest {
	return RankRequest{K: 5, InitialSteps: 1 << 20, MaxRounds: 1, Seed: 1}
}

// TestRankJobCancelPromptly pins the DELETE /jobs/{id} abort path: a
// ranking that would run for minutes goes terminal within seconds of
// cancellation.
func TestRankJobCancelPromptly(t *testing.T) {
	_, srv := newTestServer(t, Config{}, "")
	uploadGraph(t, srv, "big", graph.BarabasiAlbert(2000, 3, rng.New(1)))

	var created jobView
	if code := doJSON(t, http.MethodPost, srv.URL+"/graphs/big/rank", slowRankBody(), &created); code != http.StatusAccepted {
		t.Fatalf("POST rank: status %d", code)
	}
	var cancelled jobView
	if code := doJSON(t, http.MethodDelete, srv.URL+"/jobs/"+created.ID, nil, &cancelled); code != http.StatusAccepted {
		t.Fatalf("DELETE job: status %d", code)
	}
	final := pollJob(t, srv, created.ID, 5*time.Second)
	if final.Status != jobs.StatusCancelled {
		t.Fatalf("status %q after cancel (error %q)", final.Status, final.Error)
	}
	if !strings.Contains(final.Error, "cancelled") {
		t.Fatalf("cancel cause not surfaced: %q", final.Error)
	}
}

// TestSessionDeleteAbortsRankJob pins the lifecycle coupling: deleting
// the graph session kills its running ranking job promptly, and the
// job record (which outlives the session) reports the session-closed
// cause.
func TestSessionDeleteAbortsRankJob(t *testing.T) {
	_, srv := newTestServer(t, Config{}, "")
	uploadGraph(t, srv, "doomed", graph.BarabasiAlbert(2000, 3, rng.New(2)))

	var created jobView
	if code := doJSON(t, http.MethodPost, srv.URL+"/graphs/doomed/rank", slowRankBody(), &created); code != http.StatusAccepted {
		t.Fatalf("POST rank: status %d", code)
	}
	if code := doJSON(t, http.MethodDelete, srv.URL+"/graphs/doomed", nil, nil); code != http.StatusNoContent {
		t.Fatalf("DELETE graph: status %d", code)
	}
	final := pollJob(t, srv, created.ID, 5*time.Second)
	if final.Status != jobs.StatusCancelled {
		t.Fatalf("status %q after session delete (error %q)", final.Status, final.Error)
	}
	if !strings.Contains(final.Error, "session closed") {
		t.Fatalf("session-closed cause not surfaced: %q", final.Error)
	}
}

// TestRankRequestValidation pins the 400/404/429 error paths of the
// ranking surface.
func TestRankRequestValidation(t *testing.T) {
	st := New(Config{})
	t.Cleanup(st.Close)
	srv := httptest.NewServer(NewServerWithOptions(st, ServerOptions{MaxRankJobs: 1}))
	t.Cleanup(srv.Close)
	uploadGraph(t, srv, "karate", graph.KarateClub())

	if code := doJSON(t, http.MethodPost, srv.URL+"/graphs/karate/rank", RankRequest{K: MaxRankK + 1}, nil); code != http.StatusBadRequest {
		t.Fatalf("oversized k: status %d", code)
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/graphs/karate/rank", RankRequest{Estimator: "bogus"}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad estimator: status %d", code)
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/graphs/karate/rank", RankRequest{Growth: 0.5}, nil); code != http.StatusBadRequest {
		t.Fatalf("sub-1 growth: status %d", code)
	}
	// A budget below the candidate count is a ranker-level error; the
	// sync path must surface it as 400, not a 200 with a broken body.
	syncT := true
	if code := doJSON(t, http.MethodPost, srv.URL+"/graphs/karate/rank", RankRequest{K: 3, TotalBudget: 1, Sync: &syncT}, nil); code != http.StatusBadRequest {
		t.Fatalf("starved budget: status %d", code)
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/graphs/nosuch/rank", RankRequest{K: 5}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown graph: status %d", code)
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/jobs/nosuchjob", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", code)
	}

	// Concurrency bound: with one slot taken, the next rank is 429.
	uploadGraph(t, srv, "big", graph.BarabasiAlbert(1500, 3, rng.New(3)))
	// A client cannot force a large graph into the synchronous path —
	// that would bypass the job bound being tested below.
	syncTrue := true
	if code := doJSON(t, http.MethodPost, srv.URL+"/graphs/big/rank", RankRequest{K: 5, Sync: &syncTrue}, nil); code != http.StatusBadRequest {
		t.Fatalf("forced sync on a large graph: want 400, got %d", code)
	}
	var created jobView
	if code := doJSON(t, http.MethodPost, srv.URL+"/graphs/big/rank", slowRankBody(), &created); code != http.StatusAccepted {
		t.Fatalf("first rank: status %d", code)
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/graphs/karate/rank", RankRequest{K: 5}, nil); code != http.StatusTooManyRequests {
		t.Fatalf("second rank: want 429, got %d", code)
	}
	if code := doJSON(t, http.MethodDelete, srv.URL+"/jobs/"+created.ID, nil, nil); code != http.StatusAccepted {
		t.Fatal("cancel cleanup failed")
	}
	pollJob(t, srv, created.ID, 5*time.Second)
}

// TestRankMeasureSync pins the measure-generic ranking surface: a
// synchronous coverage ranking recovers the exact coverage top-5 (a
// different set than the bc top-5 at rank 4-5), echoes the measure in
// its payload, and the new knobs validate.
func TestRankMeasureSync(t *testing.T) {
	_, srv := newTestServer(t, Config{}, "")
	g := graph.KarateClub()
	uploadGraph(t, srv, "karate", g)

	syncTrue := true
	var res RankResult
	req := RankRequest{K: 5, Seed: 1, Measure: "coverage", Sync: &syncTrue}
	if code := doJSON(t, http.MethodPost, srv.URL+"/graphs/karate/rank", req, &res); code != http.StatusOK {
		t.Fatalf("coverage rank: status %d", code)
	}
	if res.Measure != "coverage" || res.Adaptive {
		t.Fatalf("measure echo: %+v", res)
	}
	// Exact coverage top-5 from the measure's brute-force column.
	vals := make([]float64, g.N())
	for r := 0; r < g.N(); r++ {
		ms, err := measure.Stats(context.Background(), g, measure.Spec{Kind: measure.Coverage}, r, nil)
		if err != nil {
			t.Fatal(err)
		}
		vals[r] = ms.BC
	}
	want := make(map[int64]bool, 5)
	for _, v := range stats.TopKIndices(vals, 5) {
		want[int64(v)] = true
	}
	if got := topLabelSet(res.Top); !sameLabelSet(got, want) {
		t.Fatalf("coverage top-5 %v, exact %v", got, want)
	}

	// Adaptive ranking: accepted, echoed, and completes.
	var ares RankResult
	areq := RankRequest{K: 5, Seed: 1, Adaptive: true, Epsilon: 0.05, Delta: 0.1, Sync: &syncTrue}
	if code := doJSON(t, http.MethodPost, srv.URL+"/graphs/karate/rank", areq, &ares); code != http.StatusOK {
		t.Fatalf("adaptive rank: status %d", code)
	}
	if !ares.Adaptive || ares.Measure != "" {
		t.Fatalf("adaptive echo: %+v", ares)
	}

	// Validation: unknown measure, misplaced measure_k, and adaptive
	// knobs without adaptive are all 400.
	if code := doJSON(t, http.MethodPost, srv.URL+"/graphs/karate/rank", RankRequest{Measure: "bogus"}, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown measure: status %d", code)
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/graphs/karate/rank", RankRequest{Measure: "coverage", MeasureK: 3}, nil); code != http.StatusBadRequest {
		t.Fatalf("misplaced measure_k: status %d", code)
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/graphs/karate/rank", RankRequest{Epsilon: 0.1}, nil); code != http.StatusBadRequest {
		t.Fatalf("epsilon without adaptive: status %d", code)
	}
}

// TestRankJobListAndProgress pins GET /jobs and the progress payload
// of a running multi-round ranking.
func TestRankJobListAndProgress(t *testing.T) {
	_, srv := newTestServer(t, Config{}, "")
	uploadGraph(t, srv, "ba", graph.BarabasiAlbert(300, 3, rng.New(4)))

	// Small per-round chunks and many rounds so progress is observable;
	// the total budget keeps the test fast (even under -race) whether
	// or not refinement resolves — budget exhaustion is a normal
	// completion.
	req := RankRequest{K: 5, InitialSteps: 128, MaxRounds: 12, TotalBudget: 1 << 18, Seed: 1}
	var created jobView
	if code := doJSON(t, http.MethodPost, srv.URL+"/graphs/ba/rank", req, &created); code != http.StatusAccepted {
		t.Fatalf("POST rank: status %d", code)
	}
	var list struct {
		Jobs []jobView `json:"jobs"`
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/jobs", nil, &list); code != http.StatusOK {
		t.Fatalf("GET /jobs: status %d", code)
	}
	found := false
	for _, j := range list.Jobs {
		if j.ID == created.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("job %s missing from list %+v", created.ID, list.Jobs)
	}
	sawProgress := false
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var view jobView
		doJSON(t, http.MethodGet, srv.URL+"/jobs/"+created.ID, nil, &view)
		if view.Progress != nil && view.Progress.Round >= 1 && len(view.Progress.Top) > 0 {
			sawProgress = true
		}
		if view.Status.Terminal() {
			if view.Status != jobs.StatusDone {
				t.Fatalf("job ended %q: %s", view.Status, view.Error)
			}
			// A finished multi-round job must have reported progress at
			// some point (the run takes multiple rounds on this graph),
			// and its result must carry the completed-rounds count.
			if view.Result == nil || view.Result.Rounds < 1 {
				t.Fatalf("terminal result: %+v", view.Result)
			}
			if !sawProgress && view.Result.Rounds > 1 {
				t.Fatal("multi-round job never exposed progress")
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never finished")
}
