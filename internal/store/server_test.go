package store

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bcmh/internal/core"
	"bcmh/internal/engine"
	"bcmh/internal/graph"
	"bcmh/internal/rng"
)

func newTestServer(t *testing.T, cfg Config, defaultID string) (*Store, *httptest.Server) {
	t.Helper()
	st := New(cfg)
	t.Cleanup(st.Close)
	srv := httptest.NewServer(NewServer(st, defaultID))
	t.Cleanup(srv.Close)
	return st, srv
}

func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s %s response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func uploadGraph(t *testing.T, srv *httptest.Server, id string, g *graph.Graph) Info {
	t.Helper()
	var info Info
	code := doJSON(t, http.MethodPost, srv.URL+"/graphs", UploadRequest{ID: id, EdgeList: edgeList(t, g)}, &info)
	if code != http.StatusCreated {
		t.Fatalf("upload %s: status %d", id, code)
	}
	return info
}

func TestGraphManagementCRUD(t *testing.T) {
	st, srv := newTestServer(t, Config{}, "")

	info := uploadGraph(t, srv, "karate", graph.KarateClub())
	if info.ID != "karate" || info.N != 34 || info.M != 78 || info.Pinned {
		t.Fatalf("created info %+v", info)
	}

	// Raw (non-JSON) upload with the id in the query string.
	resp, err := http.Post(srv.URL+"/graphs?id=raw", "text/plain", strings.NewReader(edgeList(t, graph.Cycle(10))))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("raw upload: status %d", resp.StatusCode)
	}

	var list ListResponse
	if code := doJSON(t, http.MethodGet, srv.URL+"/graphs", nil, &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(list.Graphs) != 2 || list.Sessions != 2 || list.Graphs[0].ID != "karate" || list.Graphs[1].ID != "raw" {
		t.Fatalf("list %+v", list)
	}

	var one Info
	if code := doJSON(t, http.MethodGet, srv.URL+"/graphs/raw", nil, &one); code != http.StatusOK || one.N != 10 {
		t.Fatalf("info: %d %+v", code, one)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/graphs/raw", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", dresp.StatusCode)
	}
	if _, err := st.Get("raw"); err == nil {
		t.Fatal("session survived DELETE")
	}
	var errResp map[string]string
	if code := doJSON(t, http.MethodGet, srv.URL+"/graphs/raw", nil, &errResp); code != http.StatusNotFound {
		t.Fatalf("info after delete: status %d", code)
	}
}

func TestSessionEstimateRoutesMatchEngine(t *testing.T) {
	st, srv := newTestServer(t, Config{}, "")
	uploadGraph(t, srv, "karate", graph.KarateClub())

	// The uploaded karate edge list relabels vertices in
	// first-appearance order; resolve label 33 through the session to
	// compute the expected value on the session's own engine.
	sess, err := st.Get("karate")
	if err != nil {
		t.Fatal(err)
	}
	var v33 int
	for v, l := range sess.Labels() {
		if l == 33 {
			v33 = v
		}
	}

	req := engine.EstimateRequest{Vertex: 33, Steps: 400, Seed: 7}
	var est engine.EstimateResponse
	if code := doJSON(t, http.MethodPost, srv.URL+"/graphs/karate/estimate", req, &est); code != http.StatusOK {
		t.Fatalf("estimate: status %d", code)
	}
	want, err := sess.Engine().Estimate(v33, core.Options{Steps: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if est.Vertex != 33 || est.Value != want.Value {
		t.Fatalf("estimate %+v, want value %v", est, want.Value)
	}

	var batch engine.BatchResponse
	breq := engine.BatchRequest{Targets: []int64{33, 0, 33}, Seed: 5, Steps: 300}
	if code := doJSON(t, http.MethodPost, srv.URL+"/graphs/karate/estimate/batch", breq, &batch); code != http.StatusOK {
		t.Fatalf("batch: status %d", code)
	}
	if len(batch.Results) != 3 || batch.Results[0].Vertex != 33 || batch.Results[0].Value != batch.Results[2].Value {
		t.Fatalf("batch %+v", batch.Results)
	}

	var exact engine.ExactResponse
	if code := doJSON(t, http.MethodGet, srv.URL+"/graphs/karate/exact/33", nil, &exact); code != http.StatusOK {
		t.Fatalf("exact: status %d", code)
	}
	wantBC, err := sess.Engine().ExactBCOf(v33)
	if err != nil {
		t.Fatal(err)
	}
	if exact.BC != wantBC {
		t.Fatalf("exact %v, want %v", exact.BC, wantBC)
	}

	var stats SessionStatsResponse
	if code := doJSON(t, http.MethodGet, srv.URL+"/graphs/karate/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.ID != "karate" || stats.N != 34 || stats.M != 78 || stats.Estimates == 0 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestDefaultSessionAliasRoutes(t *testing.T) {
	st := New(Config{})
	t.Cleanup(st.Close)
	if _, err := st.CreateFromGraph("default", graph.KarateClub(), nil, true); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(st, "default"))
	t.Cleanup(srv.Close)

	// The legacy single-graph routes hit the default session.
	var est engine.EstimateResponse
	req := engine.EstimateRequest{Vertex: 0, Steps: 300, Seed: 3}
	if code := doJSON(t, http.MethodPost, srv.URL+"/estimate", req, &est); code != http.StatusOK {
		t.Fatalf("alias estimate: status %d", code)
	}
	var viaGraphs engine.EstimateResponse
	if code := doJSON(t, http.MethodPost, srv.URL+"/graphs/default/estimate", req, &viaGraphs); code != http.StatusOK {
		t.Fatalf("addressed estimate: status %d", code)
	}
	if est.Value != viaGraphs.Value {
		t.Fatalf("alias %v != addressed %v", est.Value, viaGraphs.Value)
	}

	var exact engine.ExactResponse
	if code := doJSON(t, http.MethodGet, srv.URL+"/exact/0", nil, &exact); code != http.StatusOK {
		t.Fatalf("alias exact: status %d", code)
	}
	var stats SessionStatsResponse
	if code := doJSON(t, http.MethodGet, srv.URL+"/stats", nil, &stats); code != http.StatusOK || stats.ID != "default" {
		t.Fatalf("alias stats: %d %+v", code, stats)
	}
}

func TestAliasRoutesWithoutDefaultSession(t *testing.T) {
	_, srv := newTestServer(t, Config{}, "")
	var errResp map[string]string
	if code := doJSON(t, http.MethodPost, srv.URL+"/estimate", engine.EstimateRequest{Vertex: 0}, &errResp); code != http.StatusNotFound {
		t.Fatalf("alias without default: status %d", code)
	}
	if errResp["error"] == "" {
		t.Fatal("error body missing")
	}
}

// TestServerErrorPaths pins every error class of the management and
// estimation surface to its status code and the {"error": ...} body
// shape.
func TestServerErrorPaths(t *testing.T) {
	karateCost := sessionCost(34, 78)
	_, srv := newTestServer(t, Config{MaxBytes: karateCost * 3}, "")
	uploadGraph(t, srv, "karate", graph.KarateClub())

	check := func(name string, gotCode, wantCode int, errResp map[string]string) {
		t.Helper()
		if gotCode != wantCode {
			t.Fatalf("%s: status %d, want %d", name, gotCode, wantCode)
		}
		if errResp["error"] == "" {
			t.Fatalf("%s: error body missing", name)
		}
	}

	var errResp map[string]string

	// Malformed JSON bodies: 400.
	resp, err := http.Post(srv.URL+"/graphs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&errResp)
	resp.Body.Close()
	check("malformed upload", resp.StatusCode, http.StatusBadRequest, errResp)

	resp, err = http.Post(srv.URL+"/graphs/karate/estimate", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	errResp = nil
	json.NewDecoder(resp.Body).Decode(&errResp)
	resp.Body.Close()
	check("malformed estimate", resp.StatusCode, http.StatusBadRequest, errResp)

	// Unparseable edge list: 400.
	errResp = nil
	code := doJSON(t, http.MethodPost, srv.URL+"/graphs", UploadRequest{ID: "bad", EdgeList: "0 one two three"}, &errResp)
	check("bad edge list", code, http.StatusBadRequest, errResp)

	// Missing id on a raw upload: 400.
	resp, err = http.Post(srv.URL+"/graphs", "text/plain", strings.NewReader("0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	errResp = nil
	json.NewDecoder(resp.Body).Decode(&errResp)
	resp.Body.Close()
	check("raw upload without id", resp.StatusCode, http.StatusBadRequest, errResp)

	// Duplicate id: 409.
	errResp = nil
	code = doJSON(t, http.MethodPost, srv.URL+"/graphs", UploadRequest{ID: "karate", EdgeList: "0 1\n"}, &errResp)
	check("duplicate id", code, http.StatusConflict, errResp)

	// Graph bigger than the whole store budget: 413.
	errResp = nil
	code = doJSON(t, http.MethodPost, srv.URL+"/graphs",
		UploadRequest{ID: "huge", EdgeList: edgeList(t, graph.BarabasiAlbert(2000, 3, rng.New(3)))}, &errResp)
	check("over-budget graph", code, http.StatusRequestEntityTooLarge, errResp)

	// Body over the HTTP cap (bcserve's MaxBytesHandler): also 413,
	// for both upload shapes — not a 400 masquerading as bad syntax.
	capped := httptest.NewServer(http.MaxBytesHandler(NewServer(New(Config{}), ""), 1024))
	defer capped.Close()
	bigBody := edgeList(t, graph.BarabasiAlbert(500, 3, rng.New(9)))
	resp, err = http.Post(capped.URL+"/graphs?id=fat", "text/plain", strings.NewReader(bigBody))
	if err != nil {
		t.Fatal(err)
	}
	errResp = nil
	json.NewDecoder(resp.Body).Decode(&errResp)
	resp.Body.Close()
	check("body over cap (raw)", resp.StatusCode, http.StatusRequestEntityTooLarge, errResp)
	buf, _ := json.Marshal(UploadRequest{ID: "fat", EdgeList: bigBody})
	resp, err = http.Post(capped.URL+"/graphs", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	errResp = nil
	json.NewDecoder(resp.Body).Decode(&errResp)
	resp.Body.Close()
	check("body over cap (json)", resp.StatusCode, http.StatusRequestEntityTooLarge, errResp)

	// Unknown graph id on every session route: 404.
	for name, probe := range map[string]func() int{
		"estimate on unknown graph": func() int {
			errResp = nil
			return doJSON(t, http.MethodPost, srv.URL+"/graphs/nope/estimate", engine.EstimateRequest{Vertex: 0}, &errResp)
		},
		"batch on unknown graph": func() int {
			errResp = nil
			return doJSON(t, http.MethodPost, srv.URL+"/graphs/nope/estimate/batch", engine.BatchRequest{Targets: []int64{0}}, &errResp)
		},
		"exact on unknown graph": func() int {
			errResp = nil
			return doJSON(t, http.MethodGet, srv.URL+"/graphs/nope/exact/0", nil, &errResp)
		},
		"info on unknown graph": func() int {
			errResp = nil
			return doJSON(t, http.MethodGet, srv.URL+"/graphs/nope", nil, &errResp)
		},
	} {
		check(name, probe(), http.StatusNotFound, errResp)
	}

	// Unknown vertex label on a known graph: 404.
	errResp = nil
	code = doJSON(t, http.MethodPost, srv.URL+"/graphs/karate/estimate", engine.EstimateRequest{Vertex: 999}, &errResp)
	check("unknown vertex", code, http.StatusNotFound, errResp)
	errResp = nil
	code = doJSON(t, http.MethodGet, srv.URL+"/graphs/karate/exact/999", nil, &errResp)
	check("unknown exact vertex", code, http.StatusNotFound, errResp)

	// Over-budget step/chain requests: 400.
	errResp = nil
	code = doJSON(t, http.MethodPost, srv.URL+"/graphs/karate/estimate",
		engine.EstimateRequest{Vertex: 0, Steps: engine.MaxRequestSteps + 1}, &errResp)
	check("oversized steps", code, http.StatusBadRequest, errResp)
	errResp = nil
	code = doJSON(t, http.MethodPost, srv.URL+"/graphs/karate/estimate",
		engine.EstimateRequest{Vertex: 0, Steps: 10, Chains: engine.MaxRequestChains + 1}, &errResp)
	check("oversized chains", code, http.StatusBadRequest, errResp)
}

// TestMidRequestCancellationStatus pins the two cancellation outcomes:
// a request whose own context dies mid-estimate reports 499; a request
// aborted because its session was deleted under it reports 503.
func TestMidRequestCancellationStatus(t *testing.T) {
	st := New(Config{})
	t.Cleanup(st.Close)
	handler := NewServer(st, "")
	if _, err := st.CreateFromGraph("big", graph.BarabasiAlbert(2000, 3, rng.New(23)), nil, false); err != nil {
		t.Fatal(err)
	}

	// Client-side cancellation → 499. Serve directly with an already
	// cancelled request context: deterministic, no timing.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	body, _ := json.Marshal(engine.EstimateRequest{Vertex: 0, Steps: 1 << 20, Seed: 1})
	req := httptest.NewRequest(http.MethodPost, "/graphs/big/estimate", bytes.NewReader(body)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != engine.StatusClientClosedRequest {
		t.Fatalf("client-cancelled estimate: status %d, want %d (body %s)", rec.Code, engine.StatusClientClosedRequest, rec.Body)
	}
	var errResp map[string]string
	if json.Unmarshal(rec.Body.Bytes(), &errResp); errResp["error"] == "" {
		t.Fatalf("client-cancelled estimate: error body missing (%s)", rec.Body)
	}

	// Batch path, same pinning.
	bbody, _ := json.Marshal(engine.BatchRequest{Targets: []int64{0, 1}, Steps: 1 << 20})
	breq := httptest.NewRequest(http.MethodPost, "/graphs/big/estimate/batch", bytes.NewReader(bbody)).WithContext(ctx)
	breq.Header.Set("Content-Type", "application/json")
	brec := httptest.NewRecorder()
	handler.ServeHTTP(brec, breq)
	if brec.Code != engine.StatusClientClosedRequest {
		t.Fatalf("client-cancelled batch: status %d (body %s)", brec.Code, brec.Body)
	}

	// Session deleted under a running request → 503. The request runs
	// over a real connection; the step budget is far beyond what can
	// finish before the delete (the in_flight counter gates the delete,
	// so this is not a sleep race).
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	type result struct {
		code int
		body map[string]string
	}
	done := make(chan result, 1)
	go func() {
		var er map[string]string
		code := doJSON(t, http.MethodPost, srv.URL+"/graphs/big/estimate",
			engine.EstimateRequest{Vertex: 1, Steps: engine.MaxRequestSteps, Chains: 64, Seed: 9}, &er)
		done <- result{code, er}
	}()
	sess, err := st.Get("big")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for sess.Engine().Stats().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("estimate never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := st.Delete("big"); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-done:
		if res.code != http.StatusServiceUnavailable {
			t.Fatalf("session-deleted estimate: status %d (body %v)", res.code, res.body)
		}
		if !strings.Contains(res.body["error"], "session closed") {
			t.Fatalf("session-deleted estimate: error %q", res.body["error"])
		}
	case <-time.After(60 * time.Second):
		t.Fatal("estimate did not abort after session delete")
	}
}

func TestUploadedSessionsServeIndependently(t *testing.T) {
	// Two sessions answering interleaved HTTP traffic stay independent:
	// each one's exact values agree with a dedicated engine over the
	// same parsed graph.
	_, srv := newTestServer(t, Config{}, "")
	gs := map[string]*graph.Graph{
		"karate": graph.KarateClub(),
		"grid":   graph.Grid(8, 8),
	}
	for id, g := range gs {
		uploadGraph(t, srv, id, g)
	}
	for id, g := range gs {
		parsed, _, err := graph.ReadEdgeList(strings.NewReader(edgeList(t, g)))
		if err != nil {
			t.Fatal(err)
		}
		eng, err := engine.New(parsed)
		if err != nil {
			t.Fatal(err)
		}
		for _, label := range []int64{0, 5} {
			var exact engine.ExactResponse
			url := fmt.Sprintf("%s/graphs/%s/exact/%d", srv.URL, id, label)
			if code := doJSON(t, http.MethodGet, url, nil, &exact); code != http.StatusOK {
				t.Fatalf("%s: status %d", url, code)
			}
			// Labels are first-appearance compacted: recover the engine
			// id for the label from a fresh parse (identical order).
			_, idOf, err := graph.ReadEdgeList(strings.NewReader(edgeList(t, g)))
			if err != nil {
				t.Fatal(err)
			}
			vid := -1
			for v, l := range idOf {
				if l == label {
					vid = v
				}
			}
			want, err := eng.ExactBCOf(vid)
			if err != nil {
				t.Fatal(err)
			}
			if exact.BC != want {
				t.Fatalf("%s label %d: %v != %v", id, label, exact.BC, want)
			}
		}
	}
}

// TestStoreMuxErrorsAreJSON pins the {"error": ...} shape on unmatched
// routes at both mux layers: the store's top-level mux and the
// per-session inner handler reached through /graphs/{id}/{rest...}.
func TestStoreMuxErrorsAreJSON(t *testing.T) {
	st, srv := newTestServer(t, Config{}, "")
	mustCreate(t, st, "k", karateList(t))

	for _, path := range []string{"/zzz", "/graphs/k/nosuch", "/graphs/k/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var errBody struct {
			Error string `json:"error"`
		}
		decodeErr := json.NewDecoder(resp.Body).Decode(&errBody)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
		if decodeErr != nil {
			t.Errorf("GET %s: non-JSON 404 body: %v", path, decodeErr)
		} else if errBody.Error == "" {
			t.Errorf("GET %s: empty error message", path)
		}
	}
}
