package store

// Streaming mutations: POST /graphs/{id}/stream ingests a sequence of
// edit batches as NDJSON — one MutateRequest per line — over the
// overlay fast path, answering with one NDJSON result line per batch
// plus a trailing summary. Where PATCH /graphs/{id}/edges pays
// O(n + m) per batch (full CSR rebuild, global connectivity check,
// fresh block decomposition, new buffer pool), a streamed batch costs
// O(batch) plus cache bookkeeping:
//
//   - graph.ApplyEditsOverlay absorbs the batch into a delta overlay
//     over the shared base CSR instead of rebuilding it;
//   - connectivity is vetted per removed pair (graph.PairConnected,
//     bidirectional BFS) — additions cannot disconnect, and a batch
//     whose every removal leaves its endpoints connected in the result
//     leaves the whole graph connected (any old path reroutes through
//     the removals' replacement paths);
//   - engine.StreamSwap carries the buffer pool, unaffected μ-cache
//     entries, and warm chain memos across the version bump, with the
//     affected set answered by an amortized block-forest tracker;
//   - the WAL sees exactly one record per batch (the version advances
//     one step per batch regardless of its size), and records are
//     group-committed by the existing FsyncInterval machinery, so a
//     sustained stream coalesces to a handful of fsyncs per second;
//   - once the overlay outgrows OverlayCompactEdits (or a degree-
//     weighted fraction of the base, see graph.ShouldCompactOverlay)
//     a background goroutine folds it into a fresh CSR and re-anchors
//     the meanwhile-advanced lineage onto it (graph.RebaseCompacted),
//     so the stream never pauses for compaction.
//
// Batches in one stream are independent: a rejected batch (validation,
// disconnection, version conflict) reports its error on its result
// line and the stream continues with the next line. NDJSON decode
// errors end the stream (there is no way to resync a broken framing).

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"bcmh/internal/engine"
	"bcmh/internal/graph"
)

// OverlayCompactEdits is the overlay-size threshold past which a
// session's streamed graph is folded back into a flat CSR in the
// background. Compaction also triggers when the overlay's touched
// adjacency outweighs a fraction of the base CSR (see
// graph.ShouldCompactOverlay), whichever comes first.
const OverlayCompactEdits = 4096

// StreamBatch applies one edit batch through the overlay fast path:
// same contract as Mutate (serialized per session, atomic, snapshot-
// isolated from concurrent estimates, WAL-backed) but O(batch) instead
// of O(n+m). The returned outcome is shaped exactly like Mutate's.
func (st *Store) StreamBatch(sess *Session, edits []graph.Edit, ifVersion *uint64) (MutateOutcome, error) {
	if len(edits) == 0 {
		return MutateOutcome{}, fmt.Errorf("store: empty edit batch")
	}
	if len(edits) > MaxMutationEdits {
		return MutateOutcome{}, fmt.Errorf("store: batch of %d edits exceeds the limit %d", len(edits), MaxMutationEdits)
	}
	sess.mutMtx.Lock()
	defer sess.mutMtx.Unlock()
	if sess.Closed() {
		return MutateOutcome{}, ErrSessionClosed
	}
	if deg, cause := sess.Degraded(); deg {
		return MutateOutcome{}, fmt.Errorf("%w: %v", ErrDegraded, cause)
	}
	cur := sess.eng.Graph()
	if ifVersion != nil && *ifVersion != cur.Version() {
		return MutateOutcome{}, fmt.Errorf("%w: if_version %d, session %q is at version %d",
			ErrVersionConflict, *ifVersion, sess.id, cur.Version())
	}
	next, rep, err := graph.ApplyEditsOverlay(cur, edits)
	if err != nil {
		var ee *graph.EditError
		if errors.As(err, &ee) {
			return MutateOutcome{}, fmt.Errorf("store: edge (%d,%d): %s", sess.labelFor(ee.U), sess.labelFor(ee.V), ee.Reason)
		}
		return MutateOutcome{}, err
	}
	// Additions never disconnect; a removal is fine iff its endpoints
	// stay connected in the post-batch graph (then every old path
	// reroutes through the replacement paths, so the graph as a whole
	// stays connected).
	for _, e := range edits {
		if e.Op == graph.EditRemove && !graph.PairConnected(next, e.U, e.V) {
			return MutateOutcome{}, fmt.Errorf("store: removing edge (%d,%d) would disconnect the graph (the estimators require a connected graph); batch rejected",
				sess.labelFor(e.U), sess.labelFor(e.V))
		}
	}
	newCost := sessionCost(next.N(), next.M())
	if newCost > st.cfg.MaxBytes {
		return MutateOutcome{}, fmt.Errorf("%w: mutated session %q needs ~%d bytes, budget is %d",
			ErrTooLarge, sess.id, newCost, st.cfg.MaxBytes)
	}
	// Write-ahead, one record per batch (see mutate.go for the ordering
	// argument). Under FsyncInterval the appends of a sustained stream
	// group-commit into a few syncs per second.
	if sess.dur != nil {
		if err := sess.dur.Append(cur.Version(), next.Version(), edits); err != nil {
			sess.degrade(err)
			return MutateOutcome{}, fmt.Errorf("%w: %v", ErrDegraded, err)
		}
	}
	swap, err := sess.eng.StreamSwap(next, rep.Pairs)
	if err != nil {
		return MutateOutcome{}, err
	}
	st.recost(sess, newCost)
	sess.mutations.Add(1)
	sess.signalMutation()
	st.maybeCompactOverlay(sess, next)
	st.maybeCompact(sess)
	return MutateOutcome{
		Info:    sess.info(),
		Added:   rep.Added,
		Removed: rep.Removed,
		Changed: rep.Changed,
		Swap:    swap,
	}, nil
}

// maybeCompactOverlay folds an outgrown overlay back into a flat CSR.
// Called with the session's mutation lock held; the O(n+m) fold runs in
// a goroutine off the lock, concurrent with further stream batches, and
// catches up with whatever landed meanwhile via graph.RebaseCompacted —
// so compaction never blocks the stream, and a lineage break (a full
// Mutate rebuilt the CSR mid-fold) just drops the fold. At most one
// compaction runs per session (compacting CAS).
func (st *Store) maybeCompactOverlay(sess *Session, g *graph.Graph) {
	if !g.ShouldCompactOverlay(OverlayCompactEdits) || !sess.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		c := g.Compact() // the heavy O(n+m) part, off every lock
		sess.mutMtx.Lock()
		if sess.Closed() {
			sess.mutMtx.Unlock()
			sess.compacting.Store(false)
			return
		}
		if rebased, ok := graph.RebaseCompacted(c, g, sess.eng.Graph()); ok {
			_ = sess.eng.InstallCompacted(rebased)
		}
		cur := sess.eng.Graph()
		sess.mutMtx.Unlock()
		sess.compacting.Store(false)
		// Batches that landed during the fold survive as a rebased
		// residue; run another round for them rather than waiting for
		// the next batch (which may never come). Each round folds
		// everything up to its snapshot, so this converges as soon as
		// the stream pauses.
		st.maybeCompactOverlay(sess, cur)
	}()
}

// StreamLine is one NDJSON result line of POST /graphs/{id}/stream,
// answering the same-ordinal request line. Exactly one of the version
// fields or Error is meaningful: a rejected batch carries Error and
// changes nothing.
type StreamLine struct {
	Seq     int  `json:"seq"`
	Applied bool `json:"applied"`
	// Version/N/M/Added/Removed mirror MutateResponse for an applied
	// batch.
	Version       uint64 `json:"version,omitempty"`
	N             int    `json:"n,omitempty"`
	M             int    `json:"m,omitempty"`
	Added         int    `json:"added,omitempty"`
	Removed       int    `json:"removed,omitempty"`
	MuRetained    int    `json:"mu_retained,omitempty"`
	MuInvalidated int    `json:"mu_invalidated,omitempty"`
	Error         string `json:"error,omitempty"`
}

// StreamSummary is the trailing NDJSON line of a stream response:
// totals over the whole request.
type StreamSummary struct {
	Done     bool   `json:"done"`
	Applied  int    `json:"applied"`
	Rejected int    `json:"rejected"`
	Version  uint64 `json:"version"`
}

// editsOfRequest translates a MutateRequest's label-addressed edits to
// engine vertex ids.
func (s *Session) editsOfRequest(req *MutateRequest) ([]graph.Edit, error) {
	edits := make([]graph.Edit, len(req.Edits))
	for i, e := range req.Edits {
		var op graph.EditOp
		switch e.Op {
		case graph.EditAdd.String():
			op = graph.EditAdd
		case graph.EditRemove.String():
			op = graph.EditRemove
		default:
			return nil, fmt.Errorf("edit %d: unknown op %q (want %q or %q)", i, e.Op, graph.EditAdd, graph.EditRemove)
		}
		u, err := s.vertexOfLabel(e.U)
		if err != nil {
			return nil, fmt.Errorf("edit %d: %w", i, err)
		}
		v, err := s.vertexOfLabel(e.V)
		if err != nil {
			return nil, fmt.Errorf("edit %d: %w", i, err)
		}
		edits[i] = graph.Edit{Op: op, U: u, V: v, W: e.W}
	}
	return edits, nil
}

// handleStream serves POST /graphs/{id}/stream: NDJSON MutateRequest
// lines in, NDJSON StreamLine results out (flushed per batch, so a
// client piping a live feed sees acknowledgements as they land), one
// StreamSummary line at the end.
func (s *storeServer) handleStream(w http.ResponseWriter, r *http.Request) {
	sess, release, err := s.st.Acquire(r.PathValue("id"))
	if err != nil {
		engine.WriteError(w, storeStatus(err), err)
		return
	}
	defer release()
	// Result lines go out while request lines are still coming in;
	// without full duplex the server closes the request body on the
	// first write. Ignore the error: a transport that can't do it
	// (HTTP/2 always can, HTTP/1.1 can since Go 1.21) still works for
	// clients that send the whole request up front.
	_ = http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	dec := json.NewDecoder(r.Body)
	var applied, rejected int
	version := sess.Version()
	for seq := 0; ; seq++ {
		var req MutateRequest
		if err := dec.Decode(&req); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			// A framing error poisons everything after it; report and
			// stop rather than guess at a resync point.
			rejected++
			_ = enc.Encode(StreamLine{Seq: seq, Error: fmt.Sprintf("decoding batch: %v", err)})
			break
		}
		line := StreamLine{Seq: seq}
		if edits, err := sess.editsOfRequest(&req); err != nil {
			line.Error = err.Error()
		} else if out, err := s.st.StreamBatch(sess, edits, req.IfVersion); err != nil {
			line.Error = err.Error()
		} else {
			line.Applied = true
			line.Version = out.Info.Version
			line.N = out.Info.N
			line.M = out.Info.M
			line.Added = out.Added
			line.Removed = out.Removed
			line.MuRetained = out.Swap.MuRetained
			line.MuInvalidated = out.Swap.MuInvalidated
			version = out.Info.Version
		}
		if line.Applied {
			applied++
		} else {
			rejected++
		}
		_ = enc.Encode(line)
		flush()
	}
	_ = enc.Encode(StreamSummary{Done: true, Applied: applied, Rejected: rejected, Version: version})
	flush()
}
