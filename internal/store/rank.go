package store

// Async top-k ranking over store sessions: POST /graphs/{id}/rank
// starts (or, for small graphs, synchronously runs) an internal/rank
// progressive-refinement ranking on a session's graph, and the /jobs
// routes expose the resulting internal/jobs records — status, the
// per-round partial ranking while running, the final ranking once done,
// and cancellation. Jobs run under the session's lifecycle context, so
// deleting the session aborts its rankings exactly like its estimates.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"bcmh/internal/engine"
	"bcmh/internal/jobs"
	"bcmh/internal/measure"
	"bcmh/internal/rank"
)

// Request guards for POST /graphs/{id}/rank, in the spirit of the
// engine's per-request budget caps: a ranking fans chains over every
// candidate, so unchecked knobs would let one request monopolise the
// server for hours.
const (
	// MaxRankK caps the requested ranking size.
	MaxRankK = 1024
	// MaxRankRounds caps refinement rounds.
	MaxRankRounds = 64
	// MaxRankInitialSteps caps the round-1 per-candidate chain length.
	MaxRankInitialSteps = engine.MaxRequestSteps
	// MaxRankBudget caps the total-step budget one request may demand —
	// and is the budget a request gets when it names none, so every
	// HTTP-initiated ranking terminates within a bounded step count no
	// matter how the other knobs multiply out (the library keeps
	// unbounded-by-choice semantics; the serving surface does not).
	MaxRankBudget = 1 << 28
	// MaxRankGrowth caps the per-round budget multiplier.
	MaxRankGrowth = 16
	// MaxRankConcurrency caps the ranking worker pool.
	MaxRankConcurrency = 256
	// DefaultSyncRankCap bounds the graph size a client may force into
	// the synchronous path with "sync": true. Synchronous rankings run
	// inside the request and are not counted against the job
	// concurrency bound, so without this cap N clients could bypass
	// MaxRankJobs entirely by ranking large graphs inline. Operators
	// raise the cap with ServerOptions.SyncRankN when they mean to.
	DefaultSyncRankCap = 512
)

// RankRequest is the JSON body of POST /graphs/{id}/rank. Zero-valued
// knobs take the internal/rank defaults (k=10, 128 initial steps,
// doubling rounds, z=3 intervals, every vertex a candidate) — except
// TotalBudget, which defaults to MaxRankBudget on the serving surface
// so every job terminates within a bounded step count.
type RankRequest struct {
	K             int     `json:"k,omitempty"`
	InitialSteps  int     `json:"initial_steps,omitempty"`
	Growth        float64 `json:"growth,omitempty"`
	MaxRounds     int     `json:"max_rounds,omitempty"`
	TotalBudget   int     `json:"total_budget,omitempty"`
	Confidence    float64 `json:"confidence,omitempty"`
	MaxCandidates int     `json:"max_candidates,omitempty"`
	Concurrency   int     `json:"concurrency,omitempty"`
	Seed          uint64  `json:"seed,omitempty"`
	// Estimator selects the ranking statistic: "unbiased" (default) or
	// "chain-avg" (see rank.Estimator).
	Estimator string `json:"estimator,omitempty"`
	// Measure selects the centrality measure candidates are ranked by:
	// "bc" (default), "coverage", "kpath", or "rwbc". MeasureK is the
	// k-path length bound, only valid with "kpath" (default
	// measure.DefaultKPathK).
	Measure  string `json:"measure,omitempty"`
	MeasureK int    `json:"measure_k,omitempty"`
	// Adaptive enables the empirical-Bernstein early stop on every
	// per-candidate chain (see rank.Options.Adaptive); Epsilon and Delta
	// parameterise it and are only valid with Adaptive.
	Adaptive bool    `json:"adaptive,omitempty"`
	Epsilon  float64 `json:"epsilon,omitempty"`
	Delta    float64 `json:"delta,omitempty"`
	// Sync forces the execution mode: true runs the ranking inside the
	// request (200 with the final RankResult; rejected with 400 beyond
	// max(SyncRankN, DefaultSyncRankCap) vertices — inline rankings
	// bypass the job concurrency bound, so only small graphs may force
	// it), false always starts a job (202). Unset picks by graph size —
	// at most ServerOptions.SyncRankN vertices runs synchronously.
	Sync *bool `json:"sync,omitempty"`
	// OnMutate picks the job's fate when the session's graph mutates
	// mid-run: "finish" (default) completes on the snapshot the job
	// started on — every chain stays bit-identical to a no-mutation
	// run, the result just describes the version stamped in the
	// payloads; "cancel" aborts the job promptly with a versioned cause
	// (the record reports which version invalidated it). Synchronous
	// rankings always behave like "finish".
	OnMutate string `json:"on_mutate,omitempty"`
}

// OnMutate policies.
const (
	OnMutateFinish = "finish"
	OnMutateCancel = "cancel"
)

func (req *RankRequest) validate() error {
	switch {
	case req.K < 0 || req.K > MaxRankK:
		return fmt.Errorf("k %d outside [0,%d]", req.K, MaxRankK)
	case req.InitialSteps < 0 || req.InitialSteps > MaxRankInitialSteps:
		return fmt.Errorf("initial_steps %d outside [0,%d]", req.InitialSteps, MaxRankInitialSteps)
	case req.MaxRounds < 0 || req.MaxRounds > MaxRankRounds:
		return fmt.Errorf("max_rounds %d outside [0,%d]", req.MaxRounds, MaxRankRounds)
	case req.TotalBudget < 0 || req.TotalBudget > MaxRankBudget:
		return fmt.Errorf("total_budget %d outside [0,%d]", req.TotalBudget, MaxRankBudget)
	case req.Concurrency < 0 || req.Concurrency > MaxRankConcurrency:
		return fmt.Errorf("concurrency %d outside [0,%d]", req.Concurrency, MaxRankConcurrency)
	case req.Growth < 0 || req.Confidence < 0 || req.MaxCandidates < 0:
		return fmt.Errorf("growth, confidence, and max_candidates must be non-negative")
	case req.Growth != 0 && req.Growth < 1:
		// The ranker requires Growth ≥ 1 and would silently substitute
		// its default for sub-1 values; reject instead of ignoring.
		return fmt.Errorf("growth %v below 1 (budgets cannot shrink round over round; omit it for the default)", req.Growth)
	case req.Growth > MaxRankGrowth:
		return fmt.Errorf("growth %v exceeds the per-request limit %d", req.Growth, MaxRankGrowth)
	}
	if _, err := parseRankEstimator(req.Estimator); err != nil {
		return err
	}
	if _, err := measure.Parse(req.Measure, req.MeasureK); err != nil {
		return err
	}
	switch {
	case !req.Adaptive && (req.Epsilon != 0 || req.Delta != 0):
		return fmt.Errorf("epsilon/delta are only valid with \"adaptive\": true")
	case req.Epsilon < 0 || req.Epsilon >= 1:
		return fmt.Errorf("epsilon %v outside [0,1)", req.Epsilon)
	case req.Delta < 0 || req.Delta >= 1:
		return fmt.Errorf("delta %v outside [0,1)", req.Delta)
	}
	switch req.OnMutate {
	case "", OnMutateFinish, OnMutateCancel:
	default:
		return fmt.Errorf("unknown on_mutate policy %q (want %q or %q)", req.OnMutate, OnMutateFinish, OnMutateCancel)
	}
	return nil
}

func parseRankEstimator(name string) (rank.Estimator, error) {
	switch name {
	case "", rank.EstimatorUnbiased.String():
		return rank.EstimatorUnbiased, nil
	case rank.EstimatorChainAverage.String():
		return rank.EstimatorChainAverage, nil
	default:
		return 0, fmt.Errorf("unknown rank estimator %q (want %q or %q)",
			name, rank.EstimatorUnbiased, rank.EstimatorChainAverage)
	}
}

func (req *RankRequest) options() rank.Options {
	est, _ := parseRankEstimator(req.Estimator)         // validated earlier
	spec, _ := measure.Parse(req.Measure, req.MeasureK) // validated earlier
	if req.TotalBudget == 0 {
		// Serving default: a hard step ceiling, so no combination of
		// the multiplicative knobs keeps a job slot busy forever.
		req.TotalBudget = MaxRankBudget
	}
	return rank.Options{
		K:             req.K,
		InitialSteps:  req.InitialSteps,
		Growth:        req.Growth,
		MaxRounds:     req.MaxRounds,
		TotalBudget:   req.TotalBudget,
		Confidence:    req.Confidence,
		MaxCandidates: req.MaxCandidates,
		Concurrency:   req.Concurrency,
		Seed:          req.Seed,
		Estimator:     est,
		Measure:       spec,
		Adaptive:      req.Adaptive,
		Epsilon:       req.Epsilon,
		Delta:         req.Delta,
	}
}

// RankEntry is one ranked vertex in a response, addressed by input
// label (like every other vertex in the session's API).
type RankEntry struct {
	Vertex   int64   `json:"vertex"`
	Estimate float64 `json:"estimate"`
	Lower    float64 `json:"lower"`
	Upper    float64 `json:"upper"`
	Steps    int     `json:"steps"`
}

// RankProgress is the progress payload of a running ranking job
// (GET /jobs/{id} while status is "running"): the completed round
// count, surviving candidates, steps spent, the partial ranking, and
// the graph version the job's snapshot was captured from.
type RankProgress struct {
	Round        int         `json:"round"`
	Active       int         `json:"active"`
	TotalSteps   int         `json:"total_steps"`
	GraphVersion uint64      `json:"graph_version"`
	Top          []RankEntry `json:"top"`
}

// RankResult is the final payload: POST's body in synchronous mode, the
// job's result field otherwise. GraphVersion is the version the whole
// ranking ran on — rankings are snapshot-isolated, so a mutation
// landing mid-job never mixes versions inside one result.
type RankResult struct {
	Graph        string      `json:"graph"`
	GraphVersion uint64      `json:"graph_version"`
	K            int         `json:"k"`
	Top          []RankEntry `json:"top"`
	Candidates   int         `json:"candidates"`
	Pruned       int         `json:"pruned"`
	Rounds       int         `json:"rounds"`
	TotalSteps   int         `json:"total_steps"`
	ElapsedMS    float64     `json:"elapsed_ms"`
	// Measure/MeasureK echo a non-bc ranking measure; Adaptive echoes
	// the early-stop flag. All omitted on default-measure fixed-chunk
	// rankings, keeping those payloads byte-identical to the
	// pre-measure API.
	Measure  string `json:"measure,omitempty"`
	MeasureK int    `json:"measure_k,omitempty"`
	Adaptive bool   `json:"adaptive,omitempty"`
}

// JobListResponse is the JSON reply of GET /jobs.
type JobListResponse struct {
	Jobs []jobs.Info `json:"jobs"`
}

// jobStatus maps job-manager errors to their pinned statuses.
func jobStatus(err error) int {
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, jobs.ErrTooMany):
		return http.StatusTooManyRequests
	case errors.Is(err, jobs.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// labelEntries translates rank entries from engine vertex ids to the
// session's input labels.
func labelEntries(sess *Session, in []rank.Entry) []RankEntry {
	labels := sess.Labels()
	out := make([]RankEntry, len(in))
	for i, e := range in {
		label := int64(e.Vertex)
		if labels != nil {
			label = labels[e.Vertex]
		}
		out[i] = RankEntry{Vertex: label, Estimate: e.Estimate, Lower: e.Lower, Upper: e.Upper, Steps: e.Steps}
	}
	return out
}

func rankResult(sess *Session, version uint64, res rank.Result, opts rank.Options, elapsed time.Duration) RankResult {
	out := RankResult{
		Graph:        sess.ID(),
		GraphVersion: version,
		K:            len(res.TopK),
		Top:          labelEntries(sess, res.TopK),
		Candidates:   len(res.All),
		Pruned:       res.Pruned,
		Rounds:       res.Rounds,
		TotalSteps:   res.TotalSteps,
		ElapsedMS:    float64(elapsed.Microseconds()) / 1000,
		Adaptive:     opts.Adaptive,
	}
	if !opts.Measure.IsBC() {
		out.Measure = opts.Measure.Kind.String()
		if opts.Measure.Kind == measure.KPath {
			out.MeasureK = opts.Measure.K
		}
	}
	return out
}

// watchMutations cancels (with a versioned ErrMutatedUnderJob cause)
// as soon as sess's graph leaves startVersion — the on_mutate=cancel
// machinery. The returned stop function releases the watcher.
func watchMutations(sess *Session, startVersion uint64, cancel context.CancelCauseFunc) (stop func()) {
	done := make(chan struct{})
	go func() {
		for {
			// Subscribe first, then re-check the version: a mutation
			// landing between the check and the subscription would
			// otherwise be missed forever.
			ch := sess.mutationSignal()
			if v := sess.Engine().Version(); v != startVersion {
				cancel(fmt.Errorf("%w: session %q is now at graph version %d (job ran on version %d, on_mutate=%s)",
					ErrMutatedUnderJob, sess.ID(), v, startVersion, OnMutateCancel))
				return
			}
			select {
			case <-ch:
			case <-done:
				return
			}
		}
	}()
	return func() { close(done) }
}

// handleRank serves POST /graphs/{id}/rank: validate, acquire the
// session, then either run the ranking inside the request (synchronous
// fast path) or start a job under the session's lifecycle context and
// answer 202 with the job description.
func (s *storeServer) handleRank(w http.ResponseWriter, r *http.Request) {
	var req RankRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		engine.WriteError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %v", err))
		return
	}
	if err := req.validate(); err != nil {
		engine.WriteError(w, http.StatusBadRequest, err)
		return
	}
	sess, release, err := s.st.Acquire(r.PathValue("id"))
	if err != nil {
		engine.WriteError(w, storeStatus(err), err)
		return
	}
	eng := sess.Engine()
	opts := req.options()
	// One consistent snapshot for the whole ranking: graph, pool, and
	// version are captured together, so a mutation landing mid-run can
	// never hand the ranker a pool sized for a different CSR, and the
	// whole result is attributable to one version.
	snap := eng.Snapshot()
	policy := req.OnMutate
	if policy == "" {
		policy = OnMutateFinish
	}

	// The synchronous path is a *small-graph* fast path: allowed by the
	// operator threshold, or forced by the request — but only up to the
	// sync cap, because inline rankings bypass the job concurrency
	// bound.
	syncCap := s.opts.SyncRankN
	if syncCap < DefaultSyncRankCap {
		syncCap = DefaultSyncRankCap
	}
	n := snap.Graph.N()
	sync := n <= s.opts.SyncRankN
	if req.Sync != nil {
		sync = *req.Sync
	}
	if sync && n > syncCap {
		release()
		engine.WriteError(w, http.StatusBadRequest,
			fmt.Errorf("graph too large for synchronous ranking (n=%d > %d); omit \"sync\" to run as a job", n, syncCap))
		return
	}
	if sync {
		defer release()
		ctx, stop := sess.RequestContext(r.Context())
		defer stop()
		start := time.Now()
		res, err := rank.Run(ctx, snap.Graph, snap.Pool, opts, nil)
		if err != nil {
			status, mapped := engine.StatusForError(ctx, err)
			engine.WriteError(w, status, mapped)
			return
		}
		engine.WriteJSON(w, http.StatusOK, rankResult(sess, snap.Version, res, opts, time.Since(start)))
		return
	}

	meta := map[string]any{"graph_version": snap.Version, "on_mutate": policy}
	job, err := s.jobs.Start(sess.Context(), sess.ID(), meta, func(ctx context.Context, report func(any)) (any, error) {
		if policy == OnMutateCancel {
			mctx, mcancel := context.WithCancelCause(ctx)
			defer mcancel(context.Canceled)
			stop := watchMutations(sess, snap.Version, mcancel)
			defer stop()
			ctx = mctx
		}
		start := time.Now()
		res, err := rank.Run(ctx, snap.Graph, snap.Pool, opts, func(p rank.Progress) {
			report(RankProgress{
				Round:        p.Round,
				Active:       p.Active,
				TotalSteps:   p.TotalSteps,
				GraphVersion: snap.Version,
				Top:          labelEntries(sess, p.Top),
			})
		})
		if err != nil {
			// The mutation watcher's cause lives on the wrapped context,
			// which the job manager cannot see — fold it into the error
			// so the job record reports the versioned cause (the %w
			// keeps errors.Is(err, context.Canceled) true, so the job
			// still finalizes as cancelled, not failed).
			if cause := context.Cause(ctx); cause != nil && errors.Is(cause, ErrMutatedUnderJob) {
				err = fmt.Errorf("%v: %w", cause, err)
			}
			return nil, err
		}
		return rankResult(sess, snap.Version, res, opts, time.Since(start)), nil
	}, release)
	if err != nil {
		release()
		engine.WriteError(w, jobStatus(err), err)
		return
	}
	engine.WriteJSON(w, http.StatusAccepted, job.Info())
}

// handleJobList serves GET /jobs.
func (s *storeServer) handleJobList(w http.ResponseWriter, r *http.Request) {
	engine.WriteJSON(w, http.StatusOK, JobListResponse{Jobs: s.jobs.List()})
}

// handleJob serves GET /jobs/{jid}: status, progress while running,
// result once done.
func (s *storeServer) handleJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.jobs.Get(r.PathValue("jid"))
	if err != nil {
		engine.WriteError(w, jobStatus(err), err)
		return
	}
	engine.WriteJSON(w, http.StatusOK, job.Info())
}

// handleJobCancel serves DELETE /jobs/{jid}. Cancellation is
// asynchronous: the reply (202) carries the job snapshot, which flips
// to "cancelled" as soon as the ranking's chains observe the context —
// poll GET /jobs/{jid} for the terminal state.
func (s *storeServer) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.jobs.Cancel(r.PathValue("jid"))
	if err != nil {
		engine.WriteError(w, jobStatus(err), err)
		return
	}
	engine.WriteJSON(w, http.StatusAccepted, job.Info())
}
