package store

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"bcmh/internal/durable"
	"bcmh/internal/graph"
)

// newDurableStore builds a store persisting into a fresh temp dir,
// returning the store, its manager, and the fault FS every write goes
// through.
func newDurableStore(t *testing.T, cfg Config) (*Store, *durable.Manager, *durable.FaultFS) {
	t.Helper()
	ffs := durable.NewFaultFS(durable.OS)
	mgr, err := durable.NewManager(durable.Options{
		Dir: t.TempDir(), FS: ffs, Fsync: durable.FsyncAlways, Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	cfg.Durable = mgr
	st := New(cfg)
	t.Cleanup(st.Close)
	return st, mgr, ffs
}

func graphBytes(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	buf, err := graph.AppendBinary(nil, g, nil)
	if err != nil {
		t.Fatalf("AppendBinary: %v", err)
	}
	return buf
}

// TestDurableEvictionRehydrates pins the eviction contract: evicting a
// durable session never touches its files, and the next access brings
// it back from disk transparently — mutations included.
func TestDurableEvictionRehydrates(t *testing.T) {
	st, mgr, _ := newDurableStore(t, Config{MaxSessions: 1})

	a, err := st.CreateFromGraph("a", graph.KarateClub(), nil, false)
	if err != nil {
		t.Fatalf("create a: %v", err)
	}
	if !a.Durable() {
		t.Fatal("session a is not durable")
	}
	if _, err := st.Mutate(a, []graph.Edit{{Op: graph.EditAdd, U: 4, V: 20, W: 1}}, nil); err != nil {
		t.Fatalf("mutate a: %v", err)
	}
	wantBytes := graphBytes(t, a.Engine().Graph())

	// Creating b over MaxSessions=1 evicts idle a.
	if _, err := st.CreateFromGraph("b", graph.Cycle(10), nil, false); err != nil {
		t.Fatalf("create b: %v", err)
	}
	if !a.Closed() {
		t.Fatal("a was not evicted")
	}
	if !mgr.Has("a") {
		t.Fatal("eviction deleted a's durable files")
	}

	// Transparent rehydration on Get, with the mutation intact.
	a2, err := st.Get("a")
	if err != nil {
		t.Fatalf("Get(a) after eviction: %v", err)
	}
	if a2 == a {
		t.Fatal("Get returned the closed session, not a rehydrated one")
	}
	if a2.Version() != 1 {
		t.Fatalf("rehydrated version %d, want 1", a2.Version())
	}
	if !bytes.Equal(graphBytes(t, a2.Engine().Graph()), wantBytes) {
		t.Fatal("rehydrated graph differs from the evicted one")
	}
	// The rehydrated session keeps mutating and persisting.
	if _, err := st.Mutate(a2, []graph.Edit{{Op: graph.EditAdd, U: 5, V: 21, W: 1}}, nil); err != nil {
		t.Fatalf("mutate rehydrated a: %v", err)
	}
	if a2.Version() != 2 {
		t.Fatalf("version after rehydrated mutate = %d, want 2", a2.Version())
	}

	// Acquire also rehydrates (b is now the eviction candidate).
	b2, release, err := st.Acquire("b")
	if err != nil {
		t.Fatalf("Acquire(b): %v", err)
	}
	release()
	if b2.Engine().Graph().N() != 10 {
		t.Fatalf("rehydrated b has n=%d, want 10", b2.Engine().Graph().N())
	}
}

// TestDurableCreateConflicts pins that an evicted-but-persisted id is
// still taken: Create and CreateFromGraph both refuse to clobber it.
func TestDurableCreateConflicts(t *testing.T) {
	st, _, _ := newDurableStore(t, Config{MaxSessions: 1})
	if _, err := st.CreateFromGraph("a", graph.KarateClub(), nil, false); err != nil {
		t.Fatalf("create a: %v", err)
	}
	if _, err := st.CreateFromGraph("b", graph.Cycle(10), nil, false); err != nil {
		t.Fatalf("create b: %v", err)
	}
	// a is evicted, on disk only.
	if _, err := st.CreateFromGraph("a", graph.Cycle(5), nil, false); !errors.Is(err, ErrExists) {
		t.Fatalf("CreateFromGraph over evicted a = %v, want ErrExists", err)
	}
	if _, err := st.Create("a", bytes.NewReader([]byte("0 1\n1 2\n"))); !errors.Is(err, ErrExists) {
		t.Fatalf("Create over evicted a = %v, want ErrExists", err)
	}
}

// TestDeleteRemovesDurableFiles pins the one path that deletes files —
// resident or evicted alike.
func TestDeleteRemovesDurableFiles(t *testing.T) {
	st, mgr, _ := newDurableStore(t, Config{MaxSessions: 1})
	if _, err := st.CreateFromGraph("a", graph.KarateClub(), nil, false); err != nil {
		t.Fatalf("create a: %v", err)
	}
	if err := st.Delete("a"); err != nil {
		t.Fatalf("Delete resident a: %v", err)
	}
	if mgr.Has("a") {
		t.Fatal("Delete left a's files behind")
	}
	if _, err := st.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after Delete = %v, want ErrNotFound", err)
	}

	// Evicted session: Delete still removes the files.
	if _, err := st.CreateFromGraph("c", graph.KarateClub(), nil, false); err != nil {
		t.Fatalf("create c: %v", err)
	}
	if _, err := st.CreateFromGraph("d", graph.Cycle(10), nil, false); err != nil {
		t.Fatalf("create d: %v", err)
	}
	if !mgr.Has("c") {
		t.Fatal("evicted c lost its files")
	}
	if err := st.Delete("c"); err != nil {
		t.Fatalf("Delete evicted c: %v", err)
	}
	if mgr.Has("c") {
		t.Fatal("Delete of evicted c left files behind")
	}
}

// TestOpenRecoversCatalog pins boot-time recovery: sessions persisted
// by one store generation are served by the next.
func TestOpenRecoversCatalog(t *testing.T) {
	dir := t.TempDir()
	mgr, err := durable.NewManager(durable.Options{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	st := New(Config{Durable: mgr})
	a, err := st.CreateFromGraph("a", graph.KarateClub(), nil, false)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := st.Mutate(a, []graph.Edit{{Op: graph.EditAdd, U: 4, V: 20, W: 1}}, nil); err != nil {
		t.Fatalf("mutate: %v", err)
	}
	want := graphBytes(t, a.Engine().Graph())
	st.Close()

	mgr2, err := durable.NewManager(durable.Options{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	st2, err := Open(Config{Durable: mgr2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st2.Close()
	if st2.Len() != 1 {
		t.Fatalf("recovered %d sessions, want 1", st2.Len())
	}
	a2, err := st2.Get("a")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if a2.Version() != 1 || !bytes.Equal(graphBytes(t, a2.Engine().Graph()), want) {
		t.Fatalf("recovered session at version %d differs from the persisted lineage", a2.Version())
	}
}

// TestDegradedModeHTTP is the acceptance pin for graceful degradation:
// an injected durable-write failure turns mutations into 503s with the
// pinned cause, while estimate traffic on the same session keeps
// answering 200 throughout.
func TestDegradedModeHTTP(t *testing.T) {
	st, _, ffs := newDurableStore(t, Config{})
	srv := httptest.NewServer(NewServer(st, ""))
	t.Cleanup(srv.Close)

	uploadGraph(t, srv, "karate", graph.KarateClub())

	// Healthy first: one mutation goes through and is WAL-acked.
	if _, code := patchEdges(t, srv, "karate", MutateRequest{
		Edits: []EditRequest{{Op: "add", U: 4, V: 20}},
	}); code != http.StatusOK {
		t.Fatalf("healthy PATCH: status %d", code)
	}

	// Disk goes bad: the very next write-path op fails (disk full).
	ffs.ArmAfter(1, durable.FaultError)

	estimate := func() int {
		var out struct{}
		return doJSON(t, http.MethodPost, srv.URL+"/graphs/karate/estimate",
			map[string]any{"vertex": 2, "steps": 256, "seed": 7}, &out)
	}

	// Concurrent estimates run across the failing PATCH.
	var wg sync.WaitGroup
	codes := make([]int, 8)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = estimate()
		}(i)
	}
	var e struct {
		Error string `json:"error"`
	}
	code := doJSON(t, http.MethodPatch, srv.URL+"/graphs/karate/edges", MutateRequest{
		Edits: []EditRequest{{Op: "add", U: 5, V: 21}},
	}, &e)
	wg.Wait()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("PATCH on failing disk: status %d, want 503 (%s)", code, e.Error)
	}
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("estimate %d during degradation: status %d, want 200", i, c)
		}
	}

	// Degradation is sticky and visible: later PATCHes 503 with the
	// pinned cause even though the disk is "healthy" again, estimates
	// still 200, and /stats reports the state.
	if _, code := patchEdges(t, srv, "karate", MutateRequest{
		Edits: []EditRequest{{Op: "add", U: 6, V: 22}},
	}); code != http.StatusServiceUnavailable {
		t.Fatalf("PATCH after degradation: status %d, want sticky 503", code)
	}
	if code := estimate(); code != http.StatusOK {
		t.Fatalf("estimate after degradation: status %d, want 200", code)
	}
	var stats SessionStatsResponse
	if code := doJSON(t, http.MethodGet, srv.URL+"/graphs/karate/stats", nil, &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if !stats.Durable || !stats.Degraded || stats.DegradedCause == "" {
		t.Fatalf("stats do not report the degradation: %+v", stats)
	}

	// The session's graph still matches its durable state: version 1
	// (the failed batch never became visible).
	sess, err := st.Get("karate")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if sess.Version() != 1 {
		t.Fatalf("in-memory version %d after rejected mutation, want 1", sess.Version())
	}
}

// TestWalBytesGrowAndCompact pins the /stats wal_bytes signal and the
// background compaction trigger end to end through Store.Mutate.
func TestWalBytesGrowAndCompact(t *testing.T) {
	ffs := durable.NewFaultFS(durable.OS)
	mgr, err := durable.NewManager(durable.Options{
		Dir: t.TempDir(), FS: ffs, CompactBytes: 64, Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	st := New(Config{Durable: mgr})
	t.Cleanup(st.Close)
	sess, err := st.CreateFromGraph("a", graph.KarateClub(), nil, false)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if sess.WalBytes() != 0 {
		t.Fatalf("fresh WAL has %d bytes", sess.WalBytes())
	}
	if _, err := st.Mutate(sess, []graph.Edit{{Op: graph.EditAdd, U: 4, V: 20, W: 1}}, nil); err != nil {
		t.Fatalf("mutate: %v", err)
	}
	if sess.WalBytes() == 0 {
		t.Fatal("WalBytes did not grow on mutation")
	}
	// Mutate past the 64-byte threshold until a rotation is observed
	// (WalBytes drops when the WAL rotates out for compaction; the
	// trigger runs at mutation time only). Alternating add/remove of one
	// extra edge keeps every batch valid and the graph connected.
	rotated := false
	prev := sess.WalBytes()
	for i := 0; i < 60 && !rotated; i++ {
		op := graph.EditAdd
		if i%2 == 1 {
			op = graph.EditRemove
		}
		if _, err := st.Mutate(sess, []graph.Edit{{Op: op, U: 9, V: 25, W: 1}}, nil); err != nil {
			t.Fatalf("mutate %d: %v", i, err)
		}
		cur := sess.WalBytes()
		rotated = cur < prev
		prev = cur
		// Give the background FinishCompact room so a pending compaction
		// does not suppress the next trigger for the whole loop.
		time.Sleep(2 * time.Millisecond)
	}
	if !rotated {
		t.Fatalf("WAL never compacted: %d bytes resident", sess.WalBytes())
	}
	if deg, cause := sess.Degraded(); deg {
		t.Fatalf("compaction degraded the session: %v", cause)
	}
}
