package store

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"bcmh/internal/core"
	"bcmh/internal/engine"
	"bcmh/internal/graph"
	"bcmh/internal/rng"
)

// edgeList renders g in the upload wire format.
func edgeList(t testing.TB, g *graph.Graph) string {
	t.Helper()
	var sb strings.Builder
	if err := graph.WriteEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func karateList(t testing.TB) string { return edgeList(t, graph.KarateClub()) }

// newStore returns a store with test-friendly defaults.
func newStore(cfg Config) *Store { return New(cfg) }

func mustCreate(t testing.TB, st *Store, id, edges string) *Session {
	t.Helper()
	sess, err := st.Create(id, strings.NewReader(edges))
	if err != nil {
		t.Fatalf("create %q: %v", id, err)
	}
	return sess
}

func TestStoreLifecycleBasics(t *testing.T) {
	st := newStore(Config{})
	defer st.Close()
	sess := mustCreate(t, st, "karate", karateList(t))
	if sess.ID() != "karate" {
		t.Fatalf("id %q", sess.ID())
	}
	if got := sess.Engine().Graph().N(); got != 34 {
		t.Fatalf("n = %d", got)
	}

	got, err := st.Get("karate")
	if err != nil || got != sess {
		t.Fatalf("get: %v, same=%v", err, got == sess)
	}
	if _, err := st.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown get: %v", err)
	}
	if _, err := st.Create("karate", strings.NewReader(karateList(t))); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if _, err := st.Create("bad id!", strings.NewReader(karateList(t))); err == nil {
		t.Fatal("invalid id accepted")
	}
	if _, err := st.Create("broken", strings.NewReader("0 not-a-vertex")); err == nil {
		t.Fatal("malformed edge list accepted")
	}

	infos := st.List()
	if len(infos) != 1 || infos[0].ID != "karate" || infos[0].N != 34 || infos[0].M != 78 {
		t.Fatalf("list %+v", infos)
	}
	if stats := st.Stats(); stats.Sessions != 1 || stats.TotalBytes != sess.Cost() {
		t.Fatalf("stats %+v", stats)
	}

	if err := st.Delete("karate"); err != nil {
		t.Fatal(err)
	}
	if !sess.Closed() {
		t.Fatal("deleted session context not cancelled")
	}
	if cause := context.Cause(sess.Context()); !errors.Is(cause, ErrSessionClosed) {
		t.Fatalf("cancellation cause %v", cause)
	}
	if err := st.Delete("karate"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if st.Len() != 0 {
		t.Fatalf("len %d after delete", st.Len())
	}
}

func TestStoreCloseCancelsEverySession(t *testing.T) {
	st := newStore(Config{})
	a := mustCreate(t, st, "a", karateList(t))
	b := mustCreate(t, st, "b", karateList(t))
	st.Close()
	if !a.Closed() || !b.Closed() {
		t.Fatal("close left a session context alive")
	}
	if _, err := st.Get("a"); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("get after close: %v", err)
	}
	if _, err := st.Create("c", strings.NewReader(karateList(t))); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("create after close: %v", err)
	}
	st.Close() // idempotent
}

// barrierReader delays the winning uploader's parse until every
// uploader has entered Create, so the singleflight path — not a
// sequential ErrExists — is what the test exercises.
type barrierReader struct {
	entered *sync.WaitGroup
	once    sync.Once
	r       io.Reader
}

func (b *barrierReader) Read(p []byte) (int, error) {
	b.once.Do(b.entered.Wait)
	return b.r.Read(p)
}

// gateReader blocks the first Read until gate closes — a hook to hold
// a Create's parse open while the test changes store state around it.
type gateReader struct {
	gate <-chan struct{}
	once sync.Once
	r    io.Reader
}

func (g *gateReader) Read(p []byte) (int, error) {
	g.once.Do(func() { <-g.gate })
	return g.r.Read(p)
}

func TestCreateDuringCloseDoesNotLeakSession(t *testing.T) {
	// Close racing a Create whose build is in flight: the build must
	// not be inserted into the closed store, and its session context
	// must not stay alive.
	st := newStore(Config{})
	gate := make(chan struct{})
	type outcome struct {
		sess *Session
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		sess, err := st.Create("late", &gateReader{gate: gate, r: strings.NewReader(karateList(t))})
		done <- outcome{sess, err}
	}()
	// Close the store while the upload's parse is gated, then let the
	// build proceed into its finalize step.
	st.Close()
	close(gate)
	out := <-done
	if !errors.Is(out.err, ErrStoreClosed) {
		t.Fatalf("create finishing after close: err = %v, want ErrStoreClosed", out.err)
	}
	if out.sess != nil {
		t.Fatalf("create returned a session from a closed store")
	}
	if n := st.Len(); n != 0 {
		t.Fatalf("closed store holds %d sessions", n)
	}
}

func TestCreateSingleflightSharesOneBuild(t *testing.T) {
	// Concurrent uploads of one id must converge on a single parse +
	// engine build: everyone gets the same *Session, nobody ErrExists,
	// and the store holds exactly one session built exactly once.
	st := newStore(Config{})
	defer st.Close()
	edges := edgeList(t, graph.BarabasiAlbert(400, 3, rng.New(5)))
	const uploaders = 12
	var (
		wg      sync.WaitGroup
		entered sync.WaitGroup
		sesss   [uploaders]*Session
		errs    [uploaders]error
	)
	entered.Add(uploaders)
	for i := 0; i < uploaders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entered.Done()
			sesss[i], errs[i] = st.Create("ba", &barrierReader{entered: &entered, r: strings.NewReader(edges)})
		}(i)
	}
	wg.Wait()
	for i := 0; i < uploaders; i++ {
		if errs[i] != nil {
			t.Fatalf("uploader %d: %v", i, errs[i])
		}
		if sesss[i] != sesss[0] {
			t.Fatalf("uploader %d got a different session", i)
		}
	}
	if st.Len() != 1 {
		t.Fatalf("%d sessions after concurrent create", st.Len())
	}
	if builds := st.Stats().Builds; builds != 1 {
		t.Fatalf("%d engine builds for %d concurrent uploads of one id", builds, uploaders)
	}
}

func TestLRUEvictionFreesIdleSessionOnly(t *testing.T) {
	karate := karateList(t)
	karateCost := sessionCost(34, 78)
	// Budget fits two karate sessions but not three.
	st := newStore(Config{MaxBytes: 2*karateCost + karateCost/2})
	defer st.Close()

	a := mustCreate(t, st, "a", karate)
	mustCreate(t, st, "b", karate)
	// Touch a so b is the LRU candidate.
	if _, err := st.Get("a"); err != nil {
		t.Fatal(err)
	}
	mustCreate(t, st, "c", karate)
	if _, err := st.Get("b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("LRU session b survived: %v", err)
	}
	if _, err := st.Get("a"); err != nil {
		t.Fatalf("recently used session a evicted: %v", err)
	}
	if got := st.Stats().Evictions; got != 1 {
		t.Fatalf("evictions %d", got)
	}
	if a.Closed() {
		t.Fatal("session a was closed; only b should have been evicted")
	}
}

func TestEvictionSkipsActiveAndPinnedSessions(t *testing.T) {
	karate := karateList(t)
	karateCost := sessionCost(34, 78)
	st := newStore(Config{MaxBytes: karateCost + karateCost/2})
	defer st.Close()

	// A pinned session over an in-memory graph.
	if _, err := st.CreateFromGraph("pinned", graph.KarateClub(), nil, true); err != nil {
		t.Fatal(err)
	}
	// Despite blowing the budget, the pinned session survives creation
	// of another (soft budget: nothing evictable).
	busy := mustCreate(t, st, "busy", karate)
	if _, err := st.Get("pinned"); err != nil {
		t.Fatalf("pinned session evicted: %v", err)
	}

	// An acquired (in-flight) session is skipped too.
	_, release, err := st.Acquire("busy")
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, st, "newcomer", karate)
	if _, err := st.Get("busy"); err != nil {
		t.Fatalf("active session evicted: %v", err)
	}
	if busy.Closed() {
		t.Fatal("active session context cancelled by eviction")
	}
	// After release, the next creation can evict it.
	release()
	mustCreate(t, st, "last", karate)
	if _, err := st.Get("busy"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("idle unpinned session survived while over budget: %v", err)
	}
	if _, err := st.Get("pinned"); err != nil {
		t.Fatalf("pinned session evicted late: %v", err)
	}
}

func TestReleaseBumpsEvictionRecency(t *testing.T) {
	// A session that just finished serving is the most recently used
	// one: eviction order must reflect release time, not Acquire time.
	karate := karateList(t)
	karateCost := sessionCost(34, 78)
	st := newStore(Config{MaxBytes: 2*karateCost + karateCost/2})
	defer st.Close()

	// Acquire a first (front of LRU), then create b (now in front of
	// a), then release a — which must move a back to the front.
	mustCreate(t, st, "a", karate)
	_, release, err := st.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, st, "b", karate)
	release()
	// Over budget now: the eviction victim must be b (stale since its
	// creation), not a (released after b was created).
	mustCreate(t, st, "c", karate)
	if _, err := st.Get("a"); err != nil {
		t.Fatalf("just-released session evicted ahead of a staler one: %v", err)
	}
	if _, err := st.Get("b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stale session b survived: %v", err)
	}
}

func TestTooLargeGraphRejected(t *testing.T) {
	st := newStore(Config{MaxBytes: 1024})
	defer st.Close()
	if _, err := st.Create("huge", strings.NewReader(karateList(t))); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	if st.Len() != 0 {
		t.Fatal("rejected session left residue")
	}
}

func TestMaxSessionsBound(t *testing.T) {
	st := newStore(Config{MaxSessions: 2})
	defer st.Close()
	karate := karateList(t)
	mustCreate(t, st, "a", karate)
	mustCreate(t, st, "b", karate)
	mustCreate(t, st, "c", karate)
	if st.Len() != 2 {
		t.Fatalf("len %d, want 2", st.Len())
	}
	if _, err := st.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("oldest session survived the count bound: %v", err)
	}
}

// TestTwoSessionsServeConcurrentTrafficIndependently is the
// multi-tenancy acceptance test: two sessions estimated concurrently
// give exactly the results their graphs give on dedicated single-tenant
// engines, and evicting the idle one afterwards frees it while the
// other keeps serving.
func TestTwoSessionsServeConcurrentTrafficIndependently(t *testing.T) {
	karateG := graph.KarateClub()
	baG := graph.BarabasiAlbert(200, 3, rng.New(31))
	karateCost := sessionCost(34, 78)
	baCost := sessionCost(baG.N(), baG.M())
	st := newStore(Config{MaxBytes: karateCost + baCost + karateCost/2})
	defer st.Close()
	mustCreate(t, st, "karate", edgeList(t, karateG))
	mustCreate(t, st, "ba", edgeList(t, baG))

	// Reference single-tenant engines over the same parsed edge lists
	// the sessions hold (the chain's proposal stream is a function of
	// vertex ids, so the reference must share the upload's compacted
	// numbering to be bit-comparable).
	ref := make(map[string]*engine.Engine)
	for id, g := range map[string]*graph.Graph{"karate": karateG, "ba": baG} {
		parsed, _, err := graph.ReadEdgeList(strings.NewReader(edgeList(t, g)))
		if err != nil {
			t.Fatal(err)
		}
		eng, err := engine.New(parsed)
		if err != nil {
			t.Fatal(err)
		}
		ref[id] = eng
	}

	opts := func(seed uint64) core.Options {
		return core.Options{Steps: 400, Seed: seed}
	}
	type job struct {
		id     string
		vertex int
		seed   uint64
	}
	var jobs []job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, job{"karate", i % 34, uint64(i + 1)})
		jobs = append(jobs, job{"ba", i % 200, uint64(i + 100)})
	}
	errCh := make(chan error, len(jobs))
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sess, release, err := st.Acquire(j.id)
			if err != nil {
				errCh <- err
				return
			}
			defer release()
			got, err := sess.Engine().Estimate(j.vertex, opts(j.seed))
			if err != nil {
				errCh <- fmt.Errorf("%s/%d: %v", j.id, j.vertex, err)
				return
			}
			want, err := ref[j.id].Estimate(j.vertex, opts(j.seed))
			if err != nil {
				errCh <- err
				return
			}
			if got.Value != want.Value {
				errCh <- fmt.Errorf("%s vertex %d: multi-tenant %v != dedicated %v", j.id, j.vertex, got.Value, want.Value)
				return
			}
			errCh <- nil
		}(j)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Now ba is idle and karate keeps serving: creating one more karate
	// session must evict exactly the least-recently-used idle session,
	// freeing its memory, while the survivor still answers.
	if _, err := st.Get("karate"); err != nil { // make "ba" the LRU
		t.Fatal(err)
	}
	before := st.Stats().TotalBytes
	mustCreate(t, st, "karate2", edgeList(t, karateG))
	if _, err := st.Get("ba"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("idle session not evicted: %v", err)
	}
	after := st.Stats().TotalBytes
	if after != before-baCost+karateCost {
		t.Fatalf("eviction did not free memory: before %d after %d", before, after)
	}
	sess, release, err := st.Acquire("karate")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if _, err := sess.Engine().Estimate(0, opts(7)); err != nil {
		t.Fatalf("survivor stopped serving: %v", err)
	}
}

// TestDeleteAbortsInFlightEstimates is the lifecycle-cancellation
// acceptance test on the store level: an estimate with a huge step
// budget, running under the session-coupled context, returns promptly
// with the session-closed cause when the session is deleted under it.
func TestDeleteAbortsInFlightEstimates(t *testing.T) {
	st := newStore(Config{})
	defer st.Close()
	sess := mustCreate(t, st, "big", edgeList(t, graph.BarabasiAlbert(3000, 3, rng.New(13))))

	ctx, stop := sess.RequestContext(context.Background())
	defer stop()
	type outcome struct {
		err     error
		elapsed time.Duration
	}
	done := make(chan outcome, 1)
	go func() {
		start := time.Now()
		// DisableCache: every step pays a BFS, so an uncancelled run
		// is minutes of work.
		_, err := sess.Engine().EstimateContext(ctx, 0, core.Options{Steps: 100_000, DisableCache: true, Seed: 3})
		done <- outcome{err, time.Since(start)}
	}()
	time.Sleep(50 * time.Millisecond) // let the chain start
	if err := st.Delete("big"); err != nil {
		t.Fatal(err)
	}
	select {
	case out := <-done:
		if !errors.Is(out.err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", out.err)
		}
		if cause := context.Cause(ctx); !errors.Is(cause, ErrSessionClosed) {
			t.Fatalf("cause = %v, want ErrSessionClosed", cause)
		}
		if out.elapsed > 10*time.Second {
			t.Fatalf("aborted estimate ran for %v", out.elapsed)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("estimate did not abort after session delete")
	}
}

func TestRequestContextMergesBothCancellations(t *testing.T) {
	st := newStore(Config{})
	defer st.Close()
	sess := mustCreate(t, st, "karate", karateList(t))

	// Request-side cancellation: cause stays the plain context error.
	reqCtx, reqCancel := context.WithCancel(context.Background())
	ctx, stop := sess.RequestContext(reqCtx)
	reqCancel()
	<-ctx.Done()
	if cause := context.Cause(ctx); !errors.Is(cause, context.Canceled) || errors.Is(cause, ErrSessionClosed) {
		t.Fatalf("request-cancel cause = %v", cause)
	}
	stop()

	// Session-side cancellation: cause is ErrSessionClosed.
	ctx2, stop2 := sess.RequestContext(context.Background())
	defer stop2()
	if err := st.Delete("karate"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx2.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("session close did not propagate to the request context")
	}
	if cause := context.Cause(ctx2); !errors.Is(cause, ErrSessionClosed) {
		t.Fatalf("session-close cause = %v", cause)
	}
}

func TestCreateFromGraphLabels(t *testing.T) {
	// Labels compose edge-list compaction with component extraction:
	// a two-component graph keeps the larger one and maps back to the
	// original labels.
	b := graph.NewBuilder(7)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 5}, {5, 6}} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	idOf := []int64{100, 101, 102, 103, 104, 105, 106}
	st := newStore(Config{})
	defer st.Close()
	sess, err := st.CreateFromGraph("two", g, idOf, false)
	if err != nil {
		t.Fatal(err)
	}
	labels := sess.Labels()
	if len(labels) != 4 {
		t.Fatalf("labels %v", labels)
	}
	want := map[int64]bool{100: true, 101: true, 102: true, 103: true}
	for _, l := range labels {
		if !want[l] {
			t.Fatalf("unexpected label %d in %v", l, labels)
		}
	}
}
