package store

import (
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"bcmh/internal/durable"
	"bcmh/internal/graph"
	"bcmh/internal/mcmc"
	"bcmh/internal/rng"
)

// TestStreamBatchFastPath pins the library-level contract of the
// overlay mutation path: versions advance one step per batch, the
// engine's buffer pool is the same object throughout, the serving graph
// is an overlay until compaction folds it, rejected batches change
// nothing, and estimates on the streamed graph are bit-identical to a
// from-scratch engine over the same logical graph.
func TestStreamBatchFastPath(t *testing.T) {
	st := newStore(Config{})
	defer st.Close()
	sess, err := st.CreateFromGraph("s", gridWithPendantRing(12, 12, 8), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	eng := sess.Engine()
	pool := eng.Pool()

	out, err := st.StreamBatch(sess, []graph.Edit{{Op: graph.EditAdd, U: 13, V: 40}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Info.Version != 1 || out.Added != 1 {
		t.Fatalf("first batch outcome %+v", out)
	}
	if eng.Pool() != pool {
		t.Fatal("stream batch replaced the buffer pool")
	}
	if !eng.Graph().HasOverlay() {
		t.Fatal("streamed graph should carry an overlay")
	}

	// Precondition conflict and disconnecting removal change nothing.
	v9 := uint64(9)
	if _, err := st.StreamBatch(sess, []graph.Edit{{Op: graph.EditAdd, U: 0, V: 27}}, &v9); err == nil {
		t.Fatal("stale if_version accepted")
	}
	bridgeU, bridgeV := 0, 144 // the grid-ring bridge
	if _, err := st.StreamBatch(sess, []graph.Edit{{Op: graph.EditRemove, U: bridgeU, V: bridgeV}}, nil); err == nil {
		t.Fatal("disconnecting removal accepted")
	}
	if sess.Version() != 1 || sess.Mutations() != 1 {
		t.Fatalf("rejected batches perturbed the session: version %d, mutations %d", sess.Version(), sess.Mutations())
	}

	// A removal that keeps the graph connected passes the pair check.
	if _, err := st.StreamBatch(sess, []graph.Edit{{Op: graph.EditRemove, U: 13, V: 40}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.StreamBatch(sess, []graph.Edit{
		{Op: graph.EditAdd, U: 5, V: 30},
		{Op: graph.EditAdd, U: 77, V: 100},
	}, nil); err != nil {
		t.Fatal(err)
	}
	if sess.Version() != 3 {
		t.Fatalf("version = %d, want 3", sess.Version())
	}

	// Bit-identity against a from-scratch engine on the compacted graph.
	cfg := mcmc.DefaultConfig(2000)
	const target, seed = 70, 17
	got, err := mcmc.EstimateBCPooled(eng.Graph(), target, cfg, rng.New(seed), eng.Pool())
	if err != nil {
		t.Fatal(err)
	}
	want, err := mcmc.EstimateBCPooled(eng.Graph().Compact(), target, cfg, rng.New(seed), nil)
	if err != nil {
		t.Fatal(err)
	}
	got.Evals, got.CacheHits = 0, 0
	want.Evals, want.CacheHits = 0, 0
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed estimate %+v != compacted reference %+v", got, want)
	}
}

// TestHTTPStreamEndpoint drives POST /graphs/{id}/stream end to end:
// NDJSON batches in (one of them invalid), per-batch result lines and a
// trailing summary out, session state reflecting only the applied
// batches.
func TestHTTPStreamEndpoint(t *testing.T) {
	_, srv := newTestServer(t, Config{}, "")
	uploadGraph(t, srv, "ring", graph.Cycle(24))

	body := strings.Join([]string{
		`{"edits":[{"op":"add","u":0,"v":12}]}`,
		`{"edits":[{"op":"add","u":0,"v":12}]}`, // duplicate: rejected
		`{"edits":[{"op":"add","u":3,"v":15},{"op":"remove","u":0,"v":12}]}`,
	}, "\n")
	resp, err := http.Post(srv.URL+"/graphs/ring/stream", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	// Superset of StreamLine and StreamSummary fields.
	type anyLine struct {
		Seq      int    `json:"seq"`
		Applied  any    `json:"applied"` // bool on result lines, int on the summary
		Version  uint64 `json:"version"`
		M        int    `json:"m"`
		Added    int    `json:"added"`
		Removed  int    `json:"removed"`
		Error    string `json:"error"`
		Done     bool   `json:"done"`
		Rejected int    `json:"rejected"`
	}
	var lines []anyLine
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var l anyLine
		if err := dec.Decode(&l); err != nil {
			t.Fatalf("decoding response line %d: %v", len(lines), err)
		}
		lines = append(lines, l)
	}
	if len(lines) != 4 {
		t.Fatalf("got %d response lines, want 3 results + 1 summary", len(lines))
	}
	if l := lines[0]; l.Applied != true || l.Version != 1 || l.Added != 1 || l.M != 25 {
		t.Fatalf("line 0: %+v", l)
	}
	if l := lines[1]; l.Applied == true || l.Error == "" || !strings.Contains(l.Error, "(0,12)") {
		t.Fatalf("line 1 should reject the duplicate with labeled endpoints: %+v", l)
	}
	if l := lines[2]; l.Applied != true || l.Version != 2 || l.Added != 1 || l.Removed != 1 {
		t.Fatalf("line 2: %+v", l)
	}
	sum := lines[3]
	if !sum.Done || sum.Applied != float64(2) || sum.Rejected != 1 || sum.Version != 2 {
		t.Fatalf("summary: %+v", sum)
	}

	var info Info
	if code := doJSON(t, http.MethodGet, srv.URL+"/graphs/ring", nil, &info); code != http.StatusOK ||
		info.Version != 2 || info.Mutations != 2 || info.M != 25 {
		t.Fatalf("post-stream info: %d %+v", code, info)
	}
}

// TestStreamOverlayCompaction streams enough batches into a small graph
// that the degree-weighted overlay threshold trips, then waits for the
// background fold: the serving graph loses its overlay without the
// version moving, and the stream keeps going on the compacted storage.
func TestStreamOverlayCompaction(t *testing.T) {
	st := newStore(Config{})
	defer st.Close()
	sess, err := st.CreateFromGraph("c", graph.Cycle(64), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	eng := sess.Engine()
	// Chords 0-2, 1-3, ...: each batch touches two more vertices, so
	// touched·8 > n trips after a handful of batches.
	nextChord := 0
	addChord := func() {
		for ; ; nextChord++ {
			if nextChord >= 64 {
				t.Fatal("chord supply exhausted before compaction converged")
			}
			u, v := nextChord, (nextChord+2)%64
			if eng.Graph().HasEdge(u, v) {
				continue
			}
			if _, err := st.StreamBatch(sess, []graph.Edit{{Op: graph.EditAdd, U: u, V: v}}, nil); err != nil {
				t.Fatal(err)
			}
			nextChord++
			return
		}
	}
	applied := 0
	for ; applied < 12; applied++ {
		addChord()
	}
	// Batches that land while a fold is in flight survive it as a
	// rebased residue; a residue below the threshold waits for the next
	// batch by design, so keep the stream trickling until a fold lands
	// with nothing racing it.
	deadline := time.Now().Add(10 * time.Second)
	for eng.Graph().HasOverlay() {
		if time.Now().After(deadline) {
			t.Fatalf("overlay never compacted (%d edits pending)", eng.Graph().OverlayEdits())
		}
		if !sess.compacting.Load() && !eng.Graph().ShouldCompactOverlay(OverlayCompactEdits) {
			addChord()
			applied++
			continue
		}
		time.Sleep(2 * time.Millisecond)
	}
	if sess.Version() != uint64(applied) {
		t.Fatalf("version %d after %d applied batches (compaction must not move it)", sess.Version(), applied)
	}
	// Later batches chain off the compacted storage and stay exact.
	compacted := eng.Graph()
	if _, err := st.StreamBatch(sess, []graph.Edit{{Op: graph.EditAdd, U: 40, V: 50}}, nil); err != nil {
		t.Fatal(err)
	}
	if !graph.SameStorage(eng.Graph(), compacted) {
		t.Fatal("post-compaction batch did not chain off the compacted storage")
	}
	ms, err := eng.MuStats(45)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mcmc.MuExact(eng.Graph().Compact(), 45)
	if err != nil {
		t.Fatal(err)
	}
	if diff := ms.BC - ref.BC; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("post-compaction BC %v != reference %v", ms.BC, ref.BC)
	}
}

// TestStreamDurableRecovery: streamed batches are WAL-backed exactly
// like PATCH batches — after eviction the session rehydrates to the
// bit-identical graph (canonical binary image, version included).
func TestStreamDurableRecovery(t *testing.T) {
	st, _, _ := newDurableStore(t, Config{MaxSessions: 1})
	sess, err := st.CreateFromGraph("a", graph.KarateClub(), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	applied := 0
	for u := 0; u < 34 && applied < 3; u++ {
		v := (u + 11) % 34
		if sess.Engine().Graph().HasEdge(u, v) {
			continue
		}
		if _, err := st.StreamBatch(sess, []graph.Edit{{Op: graph.EditAdd, U: u, V: v, W: 1}}, nil); err != nil {
			t.Fatal(err)
		}
		applied++
	}
	want := graphBytes(t, sess.Engine().Graph().Compact())

	// A second session evicts the first (MaxSessions 1); Get rehydrates
	// it from snapshot + WAL.
	if _, err := st.CreateFromGraph("b", graph.Cycle(8), nil, false); err != nil {
		t.Fatal(err)
	}
	back, err := st.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if back == sess {
		t.Fatal("expected a rehydrated session, got the original")
	}
	if got := graphBytes(t, back.Engine().Graph()); !reflect.DeepEqual(got, want) {
		t.Fatal("rehydrated graph differs from the streamed lineage")
	}
	if back.Version() != 3 {
		t.Fatalf("rehydrated version = %d, want 3", back.Version())
	}
}

// TestStreamRandomizedProperty is the randomized acceptance sweep:
// generations of overlay batches interleaved with forced and background
// compactions and with estimates running concurrently on captured
// snapshots. Invariants: every in-flight estimate is bit-identical to
// an unpooled reference on its own snapshot (snapshot isolation plus
// overlay/compact traversal equivalence), and the final graph is
// bit-identical — as a canonical structure — to a from-scratch Builder
// rebuild of the surviving edge set.
func TestStreamRandomizedProperty(t *testing.T) {
	gens := 25
	if testing.Short() {
		gens = 8
	}
	st := newStore(Config{})
	defer st.Close()
	base := graph.BarabasiAlbert(300, 3, rng.New(5))
	sess, err := st.CreateFromGraph("p", base, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	eng := sess.Engine()
	n := eng.Graph().N()
	r := rng.New(99)
	cfg := mcmc.DefaultConfig(1500)

	// forceCompact folds the current overlay immediately (the background
	// path, minus the goroutine), exercising compaction at controlled
	// points between batches on top of whatever the automatic trigger
	// does on its own schedule.
	forceCompact := func() {
		sess.mutMtx.Lock()
		defer sess.mutMtx.Unlock()
		cur := eng.Graph()
		c := cur.Compact()
		if rebased, ok := graph.RebaseCompacted(c, cur, cur); ok {
			if err := eng.InstallCompacted(rebased); err != nil {
				t.Error(err)
			}
		}
	}

	type inflight struct {
		done chan struct{}
		got  mcmc.Result
		err  error
		want mcmc.Result
	}
	var pending []*inflight
	var chords [][2]int // removable: chords this test added
	for gen := 0; gen < gens; gen++ {
		// Launch an estimate on the pre-batch snapshot; it races the
		// batches and compactions that follow.
		snap := eng.Snapshot()
		target := r.Intn(n)
		seed := uint64(1000 + gen)
		ref, err := mcmc.EstimateBCPooled(snap.Graph.Compact(), target, cfg, rng.New(seed), nil)
		if err != nil {
			t.Fatal(err)
		}
		fl := &inflight{done: make(chan struct{}), want: ref}
		pending = append(pending, fl)
		go func() {
			defer close(fl.done)
			fl.got, fl.err = mcmc.EstimateBCPooled(snap.Graph, target, cfg, rng.New(seed), snap.Pool)
		}()

		// One batch of 1–3 additions, plus sometimes a removal of a
		// chord added earlier (always safe: the base graph is intact and
		// connected).
		var edits []graph.Edit
		adds := 1 + r.Intn(3)
		for len(edits) < adds {
			u, v := r.Intn(n), r.Intn(n)
			if u == v || eng.Graph().HasEdge(u, v) {
				continue
			}
			dup := false
			for _, e := range edits {
				if (e.U == u && e.V == v) || (e.U == v && e.V == u) {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			edits = append(edits, graph.Edit{Op: graph.EditAdd, U: u, V: v})
			chords = append(chords, [2]int{u, v})
		}
		// Only chords from earlier generations are removal candidates:
		// an add and a remove of the same edge in one batch is invalid.
		if old := len(chords) - adds; old > 4 && r.Intn(3) == 0 {
			i := r.Intn(old)
			c := chords[i]
			chords = append(chords[:i], chords[i+1:]...)
			edits = append(edits, graph.Edit{Op: graph.EditRemove, U: c[0], V: c[1]})
		}
		if _, err := st.StreamBatch(sess, edits, nil); err != nil {
			t.Fatalf("gen %d: %v", gen, err)
		}
		if gen%4 == 3 {
			forceCompact()
		}
	}
	for i, fl := range pending {
		<-fl.done
		if fl.err != nil {
			t.Fatalf("in-flight estimate %d: %v", i, fl.err)
		}
		fl.got.Evals, fl.got.CacheHits = 0, 0
		fl.want.Evals, fl.want.CacheHits = 0, 0
		if !reflect.DeepEqual(fl.got, fl.want) {
			t.Fatalf("in-flight estimate %d not snapshot-isolated: %+v vs %+v", i, fl.got, fl.want)
		}
	}

	// Final graph == from-scratch Builder rebuild of the edge set
	// (canonical adjacency: both sort neighbor lists).
	final := eng.Graph().Compact()
	b := graph.NewBuilder(n)
	base.ForEachEdge(func(u, v int, w float64) { b.AddEdge(u, v) })
	removed := make(map[[2]int]bool)
	finalEdges := 0
	final.ForEachEdge(func(u, v int, w float64) { finalEdges++ })
	for _, c := range chords {
		_ = removed
		b.AddEdge(c[0], c[1])
	}
	rebuilt := b.MustBuild()
	if rebuilt.N() != final.N() || rebuilt.M() != final.M() {
		t.Fatalf("rebuilt n/m = %d/%d, final %d/%d", rebuilt.N(), rebuilt.M(), final.N(), final.M())
	}
	type edge struct {
		u, v int
		w    float64
	}
	collect := func(g *graph.Graph) []edge {
		var out []edge
		g.ForEachEdge(func(u, v int, w float64) { out = append(out, edge{u, v, w}) })
		return out
	}
	if !reflect.DeepEqual(collect(final), collect(rebuilt)) {
		t.Fatal("final streamed graph differs structurally from the from-scratch rebuild")
	}
	// And the canonical structures estimate bit-identically.
	got, err := mcmc.EstimateBCPooled(final, 7, cfg, rng.New(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mcmc.EstimateBCPooled(rebuilt, 7, cfg, rng.New(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("final estimate %+v != rebuilt estimate %+v", got, want)
	}
}

// compactGaugeFS wraps a durable FS and gauges how many snapshot
// writes are in flight at once: the count rises when a snapshot temp
// file is created and falls when it is renamed into place. FinishCompact
// is the only writer of snapshot temp files once a session exists, so
// the gauge exceeding one would mean two compactions overlapped.
type compactGaugeFS struct {
	durable.FS
	mu       sync.Mutex
	inFlight int
	maxSeen  int
	writes   int
}

func (g *compactGaugeFS) Create(path string) (durable.File, error) {
	if strings.HasSuffix(path, "snapshot.bcs.tmp") {
		g.mu.Lock()
		g.inFlight++
		g.writes++
		if g.inFlight > g.maxSeen {
			g.maxSeen = g.inFlight
		}
		g.mu.Unlock()
		// Hold the gauge up long enough for an illegal second compaction
		// to overlap, were one able to start.
		time.Sleep(2 * time.Millisecond)
	}
	return g.FS.Create(path)
}

func (g *compactGaugeFS) Rename(oldPath, newPath string) error {
	err := g.FS.Rename(oldPath, newPath)
	if strings.HasSuffix(oldPath, "snapshot.bcs.tmp") {
		g.mu.Lock()
		g.inFlight--
		g.mu.Unlock()
	}
	return err
}

// TestStreamWALRateCompactionSingleFlight pins the WAL growth-rate
// trigger end to end: a sustained stream compacts its WAL even with
// the absolute size threshold disabled, and no matter how hard the
// stream pushes, at most one compaction is ever in flight (the
// durable layer's compacting slot).
func TestStreamWALRateCompactionSingleFlight(t *testing.T) {
	gauge := &compactGaugeFS{FS: durable.OS}
	mgr, err := durable.NewManager(durable.Options{
		Dir: t.TempDir(), FS: gauge, Fsync: durable.FsyncNever,
		CompactBytes: -1,  // size trigger off: every fold below is the rate trigger
		CompactRate:  256, // 256 B/s — the stream outruns this instantly
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	st := New(Config{Durable: mgr})
	t.Cleanup(st.Close)
	sess, err := st.CreateFromGraph("s", graph.Cycle(64), nil, false)
	if err != nil {
		t.Fatalf("create: %v", err)
	}

	// Toggle a chord, one WAL record per batch, spread over enough wall
	// clock that the growth-rate window becomes trusted more than once.
	deadline := time.Now().Add(400 * time.Millisecond)
	for i := 0; time.Now().Before(deadline) || i < 64; i++ {
		op := graph.EditAdd
		if i%2 == 1 {
			op = graph.EditRemove
		}
		if _, err := st.StreamBatch(sess, []graph.Edit{{Op: op, U: 0, V: 17}}, nil); err != nil {
			t.Fatalf("stream batch %d: %v", i, err)
		}
		time.Sleep(time.Millisecond)
	}

	// Drain the in-flight fold before reading the gauge.
	for start := time.Now(); ; time.Sleep(time.Millisecond) {
		gauge.mu.Lock()
		inFlight := gauge.inFlight
		gauge.mu.Unlock()
		if inFlight == 0 {
			break
		}
		if time.Since(start) > 5*time.Second {
			t.Fatal("compaction never finished")
		}
	}

	gauge.mu.Lock()
	writes, maxSeen := gauge.writes, gauge.maxSeen
	gauge.mu.Unlock()
	// The session-create snapshot is write #1; anything beyond it is a
	// rate-triggered compaction.
	if writes < 2 {
		t.Fatalf("rate trigger never compacted: %d snapshot writes", writes)
	}
	if maxSeen > 1 {
		t.Fatalf("%d compactions in flight at once, want at most 1", maxSeen)
	}
	if deg, cause := sess.Degraded(); deg {
		t.Fatalf("streaming compaction degraded the session: %v", cause)
	}
	t.Logf("snapshot writes: %d (1 create + %d rate-triggered folds)", writes, writes-1)
}
