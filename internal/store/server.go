package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"

	"bcmh/internal/engine"
	"bcmh/internal/jobs"
)

// httpHandler aliases http.Handler for the Session's lazy per-session
// handler field (store.go stays free of net/http).
type httpHandler = http.Handler

// UploadRequest is the JSON body of POST /graphs: a session id and the
// edge list as text (one "u v" or "u v w" edge per line, '#'/'%'
// comments allowed — the same format bcserve reads from disk).
// Alternatively the endpoint accepts a raw edge-list body (any
// non-JSON content type) with the id in the ?id= query parameter.
type UploadRequest struct {
	ID       string `json:"id"`
	EdgeList string `json:"edge_list"`
}

// ListResponse is the JSON reply of GET /graphs.
type ListResponse struct {
	Graphs []Info `json:"graphs"`
	Stats
}

// SessionStatsResponse is the JSON reply of GET /graphs/{id}/stats and
// of the aliased GET /stats: the session's graph size and engine
// counters.
type SessionStatsResponse struct {
	ID string `json:"id"`
	N  int    `json:"n"`
	M  int    `json:"m"`
	engine.Stats
	// Durability state (see Info): present only on durable sessions.
	Durable       bool   `json:"durable,omitempty"`
	WalBytes      int64  `json:"wal_bytes,omitempty"`
	Degraded      bool   `json:"degraded,omitempty"`
	DegradedCause string `json:"degraded_cause,omitempty"`
}

// ServerOptions tunes NewServerWithOptions beyond the store itself.
type ServerOptions struct {
	// DefaultID names the session the legacy single-graph routes alias
	// (empty: no default, those routes answer 404).
	DefaultID string
	// MaxRankJobs bounds concurrently running ranking jobs (zero:
	// jobs.DefaultMaxRunning).
	MaxRankJobs int
	// MaxTrackedJobs bounds retained job records (zero:
	// jobs.DefaultMaxTracked).
	MaxTrackedJobs int
	// SyncRankN is the synchronous fast-path threshold: a ranking
	// request without an explicit "sync" field runs inside the request
	// when the session's graph has at most this many vertices. Zero
	// means rankings are always jobs unless the request says
	// "sync": true.
	SyncRankN int
}

// NewServer returns the multi-tenant HTTP handler cmd/bcserve mounts
// over a store:
//
//	POST   /graphs                      create a session from an uploaded edge list
//	GET    /graphs                      list sessions + store budget counters
//	GET    /graphs/{id}                 describe one session
//	DELETE /graphs/{id}                 delete a session (aborts its in-flight work)
//	PATCH  /graphs/{id}/edges           apply an edge-mutation batch (MutateRequest)
//	POST   /graphs/{id}/estimate        engine.EstimateRequest
//	POST   /graphs/{id}/estimate/batch  engine.BatchRequest
//	GET    /graphs/{id}/exact/{v}       exact betweenness
//	GET    /graphs/{id}/stats           session stats
//	POST   /graphs/{id}/rank            top-k ranking (RankRequest; job or sync)
//	GET    /jobs                        list ranking jobs
//	GET    /jobs/{jid}                  one job: status, progress, result
//	DELETE /jobs/{jid}                  cancel a running job
//
// The single-graph routes of earlier releases — POST /estimate,
// POST /estimate/batch, GET /exact/{v}, GET /stats — remain mounted as
// aliases for the session named defaultID (404 when defaultID is empty
// or no such session exists), so existing clients keep working
// unchanged against the default graph.
//
// Every estimation request runs under a context derived from both the
// request and the session lifecycle: client disconnects abort the
// chains with 499 semantics, and deleting the session under a running
// request aborts it with 503 and the session-closed message. Ranking
// jobs outlive their originating request but not their session — they
// run under the session's lifecycle context and die with it.
func NewServer(st *Store, defaultID string) http.Handler {
	return NewServerWithOptions(st, ServerOptions{DefaultID: defaultID})
}

// NewServerWithOptions is NewServer with explicit server options.
func NewServerWithOptions(st *Store, opts ServerOptions) http.Handler {
	s := &storeServer{
		st:        st,
		defaultID: opts.DefaultID,
		opts:      opts,
		jobs:      jobs.NewManager(jobs.Config{MaxRunning: opts.MaxRankJobs, MaxTracked: opts.MaxTrackedJobs}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /graphs", s.handleCreate)
	mux.HandleFunc("GET /graphs", s.handleList)
	mux.HandleFunc("GET /graphs/{id}", s.handleInfo)
	mux.HandleFunc("DELETE /graphs/{id}", s.handleDelete)
	// Ranking and jobs (rank.go). The literal "rank" segment outranks
	// the {rest...} wildcard below, so this route wins for /rank.
	mux.HandleFunc("POST /graphs/{id}/rank", s.handleRank)
	// Edge mutation (mutate.go); literal "edges" outranks {rest...}
	// the same way.
	mux.HandleFunc("PATCH /graphs/{id}/edges", s.handleMutate)
	// Bulk streaming ingestion (stream.go): NDJSON batches over the
	// overlay fast path.
	mux.HandleFunc("POST /graphs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /jobs", s.handleJobList)
	mux.HandleFunc("GET /jobs/{jid}", s.handleJob)
	mux.HandleFunc("DELETE /jobs/{jid}", s.handleJobCancel)
	// Estimation routes delegate to the session's single-graph handler
	// (the exact handler bcserve used to mount process-wide), addressed
	// beneath /graphs/{id}/. The {rest...} wildcard (not TrimPrefix on
	// the decoded id) keeps percent-encoded request paths routable.
	mux.HandleFunc("/graphs/{id}/{rest...}", s.handleSession)
	// Compatibility aliases for the default session.
	for _, route := range []string{"POST /estimate", "POST /estimate/batch", "GET /exact/{v}", "GET /stats"} {
		mux.HandleFunc(route, s.handleDefaultSession)
	}
	return engine.JSONMux(mux)
}

type storeServer struct {
	st        *Store
	defaultID string
	opts      ServerOptions
	jobs      *jobs.Manager
}

// storeStatus maps store lifecycle and upload errors to their pinned
// statuses.
func storeStatus(err error) int {
	var tooBig *http.MaxBytesError
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrExists):
		return http.StatusConflict
	case errors.Is(err, ErrTooLarge), errors.As(err, &tooBig):
		// Over the store's graph budget, or over the HTTP body cap —
		// either way the upload is too large, not malformed.
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrStoreClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// bodyCapTracker remembers whether the request body hit the server's
// MaxBytesHandler cap. The cap can fire mid-line, in which case the
// edge-list parser reports the truncated line as a syntax error first —
// the tracker lets handleCreate report the true cause (413, not 400).
type bodyCapTracker struct {
	r   io.Reader
	hit *http.MaxBytesError
}

func (b *bodyCapTracker) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		b.hit = mbe
	}
	return n, err
}

func (s *storeServer) handleCreate(w http.ResponseWriter, r *http.Request) {
	body := &bodyCapTracker{r: r.Body}
	fail := func(err error) {
		status := storeStatus(err)
		if body.hit != nil {
			status, err = http.StatusRequestEntityTooLarge, body.hit
		}
		engine.WriteError(w, status, err)
	}
	id, edges, err := parseUpload(r, body)
	if err != nil {
		fail(err)
		return
	}
	sess, err := s.st.Create(id, edges)
	if err != nil {
		fail(err)
		return
	}
	engine.WriteJSON(w, http.StatusCreated, sess.info())
}

// parseUpload extracts (id, edge list reader) from either upload shape,
// reading the request body through `body` (the cap tracker).
func parseUpload(r *http.Request, body io.Reader) (string, io.Reader, error) {
	ct := r.Header.Get("Content-Type")
	if mt, _, _ := mime.ParseMediaType(ct); mt == "application/json" {
		var req UploadRequest
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			return "", nil, fmt.Errorf("decoding request: %w", err)
		}
		if req.EdgeList == "" {
			return "", nil, fmt.Errorf("upload: empty edge_list")
		}
		return req.ID, strings.NewReader(req.EdgeList), nil
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		return "", nil, fmt.Errorf("upload: raw edge-list uploads need an ?id= query parameter")
	}
	return id, body, nil
}

func (s *storeServer) handleList(w http.ResponseWriter, r *http.Request) {
	engine.WriteJSON(w, http.StatusOK, ListResponse{Graphs: s.st.List(), Stats: s.st.Stats()})
}

func (s *storeServer) handleInfo(w http.ResponseWriter, r *http.Request) {
	sess, err := s.st.Get(r.PathValue("id"))
	if err != nil {
		engine.WriteError(w, storeStatus(err), err)
		return
	}
	engine.WriteJSON(w, http.StatusOK, sess.info())
}

func (s *storeServer) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.st.Delete(r.PathValue("id")); err != nil {
		engine.WriteError(w, storeStatus(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleSession serves /graphs/{id}/<rest> by delegating <rest> to the
// session's single-graph handler under the session-coupled context.
func (s *storeServer) handleSession(w http.ResponseWriter, r *http.Request) {
	rest := r.PathValue("rest")
	if rest == "" {
		// Keep the JSON error shape every other route uses (the stock
		// http.NotFound reply is plain text).
		engine.WriteError(w, http.StatusNotFound, errors.New("store: no such route under /graphs/{id}/"))
		return
	}
	s.serveOnSession(w, r, r.PathValue("id"), "/"+rest)
}

// handleDefaultSession aliases the legacy single-graph routes onto the
// default session.
func (s *storeServer) handleDefaultSession(w http.ResponseWriter, r *http.Request) {
	if s.defaultID == "" {
		engine.WriteError(w, http.StatusNotFound,
			errors.New("store: no default graph session; address a session via /graphs/{id}/... or start the server with a preloaded graph"))
		return
	}
	s.serveOnSession(w, r, s.defaultID, r.URL.Path)
}

// serveOnSession runs one estimation-route request on the named
// session: acquire (so the memory budget cannot evict mid-request),
// couple the request context to the session lifecycle, rewrite the
// path, and delegate.
func (s *storeServer) serveOnSession(w http.ResponseWriter, r *http.Request, id, rest string) {
	sess, release, err := s.st.Acquire(id)
	if err != nil {
		engine.WriteError(w, storeStatus(err), err)
		return
	}
	defer release()
	ctx, stop := sess.RequestContext(r.Context())
	defer stop()
	r2 := r.Clone(ctx)
	r2.URL.Path = rest
	r2.URL.RawPath = ""
	sess.sessionHandler().ServeHTTP(w, r2)
}

// sessionHandler lazily builds the session's single-graph handler — the
// same engine.NewServerWithLabels handler the single-tenant server
// mounts, minus /stats, which is overridden to include the session id.
func (s *Session) sessionHandler() http.Handler {
	s.handlerOnce.Do(func() {
		inner := engine.NewServerWithLabels(s.eng, s.labels)
		mux := http.NewServeMux()
		mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
			// One snapshot for n/m/version: a PATCH landing between two
			// separate engine reads must not yield a mixed-version reply
			// (version 1 with version 0's edge count).
			snap := s.eng.Snapshot()
			stats := s.eng.Stats()
			stats.Version = snap.Version
			resp := SessionStatsResponse{
				ID:       s.id,
				N:        snap.Graph.N(),
				M:        snap.Graph.M(),
				Stats:    stats,
				Durable:  s.durable,
				WalBytes: s.WalBytes(),
			}
			if deg, cause := s.Degraded(); deg {
				resp.Degraded = true
				resp.DegradedCause = cause.Error()
			}
			engine.WriteJSON(w, http.StatusOK, resp)
		})
		mux.Handle("/", inner)
		s.handler = mux
	})
	return s.handler
}
