package engine

import (
	"testing"

	"bcmh/internal/graph"
)

// TestDegreeRelabelComposesMapping pins the Config.DegreeRelabel
// contract: the served CSR is renumbered degree-descending, and
// Mapping() composes the relabeling with largest-component extraction
// so every engine id still translates to the caller's original id.
func TestDegreeRelabelComposesMapping(t *testing.T) {
	// Three components: the largest on {0..6} with distinct degrees, a
	// triangle {7,8,9}, and an edge {10,11}. Prepare keeps {0..6}.
	b := graph.NewBuilder(12)
	for v := 1; v <= 6; v++ {
		b.AddEdge(0, v)
	}
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(7, 8)
	b.AddEdge(8, 9)
	b.AddEdge(7, 9)
	b.AddEdge(10, 11)
	orig := b.MustBuild()

	e, err := NewWithConfig(orig, Config{DegreeRelabel: true})
	if err != nil {
		t.Fatal(err)
	}
	g := e.Graph()
	if g.N() != 7 {
		t.Fatalf("largest component has %d vertices, want 7", g.N())
	}
	m := e.Mapping()
	if m == nil {
		t.Fatal("mapping missing after extraction + relabel")
	}

	// Degree-descending slot order, ties by ascending original id
	// within the prepared component (weaker check here: monotone
	// degrees suffice, the tie rule is pinned in internal/graph).
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) > g.Degree(v-1) {
			t.Fatalf("degrees not descending: deg(%d)=%d > deg(%d)=%d",
				v, g.Degree(v), v-1, g.Degree(v-1))
		}
	}

	// Mapping is a bijection onto the surviving component, and degrees
	// survive the translation (component extraction removes whole
	// components, so no surviving vertex loses an edge).
	seen := make(map[int]bool)
	for v := 0; v < g.N(); v++ {
		ov := m[v]
		if ov < 0 || ov > 6 || seen[ov] {
			t.Fatalf("mapping[%d] = %d: not a bijection onto {0..6}", v, ov)
		}
		seen[ov] = true
		if g.Degree(v) != orig.Degree(ov) {
			t.Fatalf("degree mismatch at engine %d (orig %d): %d != %d",
				v, ov, g.Degree(v), orig.Degree(ov))
		}
	}

	// Adjacency isomorphism: every engine edge is an original edge
	// under the mapping, and the counts agree.
	edges := 0
	g.ForEachEdge(func(u, v int, w float64) {
		edges++
		if !orig.HasEdge(m[u], m[v]) {
			t.Fatalf("engine edge (%d,%d) has no original edge (%d,%d)",
				u, v, m[u], m[v])
		}
	})
	if edges != 9 {
		t.Fatalf("relabeled component has %d edges, want 9", edges)
	}
}

// TestDegreeRelabelConnected covers the mapping==nil branch (no
// component extraction): the relabeling alone must surface through
// Mapping(), and the engine must estimate normally.
func TestDegreeRelabelConnected(t *testing.T) {
	orig := graph.KarateClub()
	e, err := NewWithConfig(orig, Config{DegreeRelabel: true})
	if err != nil {
		t.Fatal(err)
	}
	m := e.Mapping()
	if m == nil {
		t.Fatal("mapping missing: relabeling must be visible even without extraction")
	}
	g := e.Graph()
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) > g.Degree(v-1) {
			t.Fatalf("degrees not descending at %d", v)
		}
	}
	// Slot 0 must hold karate's hub (vertex 33, degree 17).
	if m[0] != 33 {
		t.Fatalf("slot 0 maps to %d, want 33 (highest degree)", m[0])
	}
	if _, err := e.Estimate(0, plannedOpts()); err != nil {
		t.Fatalf("estimate on relabeled engine: %v", err)
	}
}
