package engine

import (
	"fmt"
	"math"
	"net/http/httptest"
	"testing"

	"bcmh/internal/core"
	"bcmh/internal/graph"
)

// karateGoldenNX holds published exact betweenness values for Zachary's
// karate club under the networkx normalization 2/((n-1)(n-2)) over
// unordered pairs (e.g. networkx.betweenness_centrality on
// karate_club_graph, values widely reproduced in the literature).
// This repository normalizes by 1/(n(n-1)) over ordered pairs (Eq. 1),
// so repo = nx · (n-2)/n.
var karateGoldenNX = map[int]float64{
	0:  0.437635281385281,
	1:  0.053936688311688,
	2:  0.143656806156806,
	3:  0.011909271284271,
	5:  0.029987373737374,
	8:  0.055926827801828,
	11: 0, // leaf hanging off the instructor
	13: 0.045863395863396,
	19: 0.032475048100048,
	31: 0.138275613275613,
	32: 0.145247113997114,
	33: 0.304074975949976,
}

const karateGoldenTol = 1e-9

func repoFromNX(nx float64, n int) float64 {
	return nx * float64(n-2) / float64(n)
}

// TestGoldenKarateExactBC cross-checks exact Brandes betweenness on the
// bundled karate-club graph against the published values, through both
// the core.ExactBC facade and the engine's /exact HTTP path.
func TestGoldenKarateExactBC(t *testing.T) {
	g := graph.KarateClub()
	n := g.N()
	exact, err := core.ExactBC(g)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(e))
	defer srv.Close()
	for v, nx := range karateGoldenNX {
		want := repoFromNX(nx, n)
		if diff := math.Abs(exact[v] - want); diff > karateGoldenTol {
			t.Errorf("core.ExactBC: vertex %d = %.12f, published %.12f (diff %g)", v, exact[v], want, diff)
		}
		var resp ExactResponse
		if code := getJSON(t, fmt.Sprintf("%s/exact/%d", srv.URL, v), &resp); code != 200 {
			t.Fatalf("GET /exact/%d: status %d", v, code)
		}
		if diff := math.Abs(resp.BC - want); diff > karateGoldenTol {
			t.Errorf("engine /exact: vertex %d = %.12f, published %.12f (diff %g)", v, resp.BC, want, diff)
		}
		// The two exact paths must agree bit-for-bit is too strict
		// (different float summation orders); within tolerance they
		// must match each other too.
		if diff := math.Abs(resp.BC - exact[v]); diff > karateGoldenTol {
			t.Errorf("vertex %d: engine %.12f vs core %.12f", v, resp.BC, exact[v])
		}
	}
	// Sanity: the instructor (0) and administrator (33) dominate, in
	// that order — the well-known karate-club ranking.
	top, second := -1, -1
	for v := range exact {
		switch {
		case top < 0 || exact[v] > exact[top]:
			second, top = top, v
		case second < 0 || exact[v] > exact[second]:
			second = v
		}
	}
	if top != 0 || second != 33 {
		t.Errorf("karate top-2 ranking = (%d, %d), want (0, 33)", top, second)
	}
}

// TestGoldenKarateExactOf pins core.ExactBCOf (the single-vertex exact
// path the engine's μ-cache mirrors) to the same published values.
func TestGoldenKarateExactOf(t *testing.T) {
	g := graph.KarateClub()
	for _, v := range []int{0, 32, 33} {
		got, err := core.ExactBCOf(g, v)
		if err != nil {
			t.Fatal(err)
		}
		want := repoFromNX(karateGoldenNX[v], g.N())
		if math.Abs(got-want) > karateGoldenTol {
			t.Errorf("ExactBCOf(%d) = %.12f, published %.12f", v, got, want)
		}
	}
}
