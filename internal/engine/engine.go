// Package engine is the batch estimation subsystem: one prepared graph
// handle serving many concurrent betweenness-estimation requests with
// shared per-graph state. Where core.EstimateBC re-derives everything
// per call — connectivity validation, the O(nm) exact μ(r) used to plan
// the chain length, and O(n) traversal buffers per chain — an Engine
// pays each cost once:
//
//   - the graph is validated and prepared a single time in New;
//   - μ(r) (and with it the exact BC(r)) is computed at most once per
//     target vertex and reused by every subsequent request, with
//     concurrent first requests deduplicated to one computation;
//   - completed estimates are kept in a bounded LRU keyed by
//     (vertex, normalized options), so repeated requests are served
//     from cache (duplicates inside one batch are dispatched once);
//   - chain traversal buffers are pooled, so concurrent chains stop
//     re-allocating per run;
//   - the target-side shortest-path snapshot the fast dependency
//     oracle reads (see internal/mcmc's oracle routes) is cached in
//     the pool per target, so the μ computation and every chain —
//     batch requests for the same vertex included — share one
//     target-side BFS.
//
// Engine.Estimate serves one target; Engine.EstimateBatch fans a target
// list over a bounded worker pool with per-target seeds derived
// deterministically from one request seed, so batch results are
// reproducible and independent of scheduling. Engine.Stats exposes the
// cache and in-flight counters; server.go wraps it all in the HTTP/JSON
// surface cmd/bcserve serves.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"bcmh/internal/core"
	"bcmh/internal/graph"
	"bcmh/internal/mcmc"
)

// DefaultCacheSize is the default capacity of the completed-estimate
// LRU.
const DefaultCacheSize = 1024

// Config tunes engine construction.
type Config struct {
	// ResultCacheSize bounds the LRU of completed estimates. Zero means
	// DefaultCacheSize; negative disables result caching entirely
	// (μ caching and buffer pooling are always on).
	ResultCacheSize int
	// Lifecycle, when non-nil, bounds the background work the engine
	// spawns on its own behalf — the detached μ computations behind
	// MuStatsContext. Cancelling it aborts those computations within
	// one traversal per worker; internal/store passes each session's
	// lifecycle context here so an evicted graph stops consuming CPU.
	// Nil means context.Background (background work always completes).
	Lifecycle context.Context
}

// Engine owns the shared state for estimating betweenness on one
// prepared graph. Safe for concurrent use.
type Engine struct {
	g         *graph.Graph
	mapping   []int
	lifecycle context.Context

	pool *mcmc.BufferPool

	// μ-cache: one entry per requested target, computed once in a
	// detached goroutine so concurrent first requests share the O(nm)
	// MuExact evaluation and every waiter stays cancellable.
	muMtx sync.Mutex
	mu    map[int]*muEntry

	results *lruCache

	muHits, muMisses         atomic.Uint64
	resultHits, resultMisses atomic.Uint64
	inFlight                 atomic.Int64
	estimates                atomic.Uint64
	batches                  atomic.Uint64
}

// muEntry is one target's μ computation: done closes when stats/err are
// final. The computation runs detached from any request so it always
// completes and warms the cache, while every requester — the initiator
// included — waits cancellably.
type muEntry struct {
	done  chan struct{}
	stats mcmc.MuStats
	err   error
}

// New prepares g for estimation (validating it and extracting the
// largest connected component if necessary, via core.Prepare) and
// returns an engine over the prepared graph with default configuration.
func New(g *graph.Graph) (*Engine, error) {
	return NewWithConfig(g, Config{})
}

// NewWithConfig is New with explicit engine configuration.
func NewWithConfig(g *graph.Graph, cfg Config) (*Engine, error) {
	prepared, mapping, err := core.Prepare(g)
	if err != nil {
		return nil, err
	}
	size := cfg.ResultCacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	lifecycle := cfg.Lifecycle
	if lifecycle == nil {
		lifecycle = context.Background()
	}
	return &Engine{
		g:         prepared,
		mapping:   mapping,
		lifecycle: lifecycle,
		pool:      mcmc.NewBufferPool(prepared),
		mu:        make(map[int]*muEntry),
		results:   newLRUCache(size),
	}, nil
}

// Graph returns the prepared graph the engine estimates on.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Mapping returns the prepared-vertex → original-vertex mapping from
// core.Prepare, or nil when the input graph was usable as-is.
func (e *Engine) Mapping() []int { return e.mapping }

// Pool returns the engine's shared chain-buffer pool. Workloads that
// run chains beside the engine's own estimate traffic (internal/rank's
// whole-graph rankings) draw their buffers from it so they share the
// per-target shortest-path snapshot LRU with the μ-cache and every
// concurrent estimate on the same graph.
func (e *Engine) Pool() *mcmc.BufferPool { return e.pool }

// ErrUnknownVertex is wrapped by every "no such vertex" failure —
// out-of-range engine ids and labels absent from the serving table —
// so the HTTP layer can map them to 404 with errors.Is.
var ErrUnknownVertex = errors.New("unknown vertex")

func (e *Engine) checkVertex(r int) error {
	if r < 0 || r >= e.g.N() {
		return fmt.Errorf("engine: vertex %d out of range [0,%d): %w", r, e.g.N(), ErrUnknownVertex)
	}
	return nil
}

// MuStats returns the exact concentration profile μ(r) (and with it the
// exact BC(r)) of target r, computing it at most once per engine
// lifetime. Concurrent first calls for the same target block on a
// single computation; every later call is a cache hit.
func (e *Engine) MuStats(r int) (mcmc.MuStats, error) {
	return e.MuStatsContext(context.Background(), r)
}

// MuStatsContext is MuStats under a context. The O(nm) computation
// itself is shared across requesters and runs to completion in a
// detached goroutine (abandoned work still warms the cache), but a
// requester whose ctx is cancelled stops waiting and returns ctx's
// error immediately — so exact-BC and planned-steps requests are
// cancellable even while μ is being derived.
func (e *Engine) MuStatsContext(ctx context.Context, r int) (mcmc.MuStats, error) {
	if err := e.checkVertex(r); err != nil {
		return mcmc.MuStats{}, err
	}
	e.muMtx.Lock()
	ent, ok := e.mu[r]
	if !ok {
		ent = &muEntry{done: make(chan struct{})}
		e.mu[r] = ent
		go func() {
			// Pooled: the target-side BFS snapshot this derives the
			// column from is cached in the buffer pool, where the same
			// target's chain oracles will find it (and vice versa).
			// Bounded by the engine lifecycle, not the requester's ctx:
			// abandoned requests still warm the cache, but an engine
			// whose session died stops computing.
			ent.stats, ent.err = mcmc.MuExactPooledContext(e.lifecycle, e.g, r, e.pool)
			close(ent.done)
		}()
	}
	e.muMtx.Unlock()
	if ok {
		e.muHits.Add(1)
	} else {
		e.muMisses.Add(1)
	}
	select {
	case <-ent.done:
		return ent.stats, ent.err
	case <-ctx.Done():
		return mcmc.MuStats{}, ctx.Err()
	}
}

// ExactBCOf returns the exact betweenness of r, served from the μ-cache
// (MuExact's dependency column yields BC(r) as a by-product), so
// repeated exact queries for one vertex cost one O(nm) evaluation
// total. This is the engine's /exact path.
func (e *Engine) ExactBCOf(r int) (float64, error) {
	return e.ExactBCOfContext(context.Background(), r)
}

// ExactBCOfContext is ExactBCOf under a context (see MuStatsContext for
// the cancellation semantics).
func (e *Engine) ExactBCOfContext(ctx context.Context, r int) (float64, error) {
	ms, err := e.MuStatsContext(ctx, r)
	if err != nil {
		return 0, err
	}
	return ms.BC, nil
}

// Estimate estimates the betweenness of vertex r under opts, sharing
// the engine's μ-cache, result cache, and buffer pool. Results are
// bit-identical to core.EstimateBC with the same options and seed.
func (e *Engine) Estimate(r int, opts core.Options) (core.Estimate, error) {
	return e.EstimateContext(context.Background(), r, opts)
}

// EstimateContext is Estimate under a context: a cancelled ctx aborts
// the in-flight chains promptly with ctx's error instead of letting
// them run to their full step budget (the serving layer passes each
// request's context here, so a disconnected client or an evicted
// session stops consuming CPU). Cache lookups are unaffected — a hit is
// served even under a cancelled context — and aborted runs are never
// cached.
func (e *Engine) EstimateContext(ctx context.Context, r int, opts core.Options) (core.Estimate, error) {
	if err := e.checkVertex(r); err != nil {
		return core.Estimate{}, err
	}
	o := opts.Normalized()
	key := resultKey{vertex: r, opts: o}
	if est, ok := e.results.get(key); ok {
		e.resultHits.Add(1)
		return est, nil
	}
	e.resultMisses.Add(1)
	e.inFlight.Add(1)
	defer e.inFlight.Add(-1)
	mu := o.MuBound
	if o.Steps <= 0 && mu <= 0 {
		ms, err := e.MuStatsContext(ctx, r)
		if err != nil {
			return core.Estimate{}, err
		}
		mu = ms.Mu
	}
	est, err := core.EstimateBCPreparedContext(ctx, e.g, r, o, mu, e.pool)
	if err != nil {
		return core.Estimate{}, err
	}
	e.estimates.Add(1)
	e.results.add(key, est)
	return est, nil
}

// Stats is a point-in-time snapshot of the engine's shared-state
// counters (served by bcserve's GET /stats).
type Stats struct {
	// MuHits and MuMisses count μ-cache lookups; a miss is one O(nm)
	// MuExact computation, a hit reuses (or waits on) a prior one.
	MuHits   uint64 `json:"mu_hits"`
	MuMisses uint64 `json:"mu_misses"`
	// MuCached is the number of targets with a cached μ profile.
	MuCached int `json:"mu_cached"`
	// ResultHits and ResultMisses count completed-estimate LRU lookups.
	ResultHits   uint64 `json:"result_hits"`
	ResultMisses uint64 `json:"result_misses"`
	// ResultCached is the number of estimates currently in the LRU.
	ResultCached int `json:"result_cached"`
	// InFlight is the number of estimations running right now.
	InFlight int64 `json:"in_flight"`
	// Estimates counts completed chain estimations (cache hits
	// excluded); Batches counts EstimateBatch requests.
	Estimates uint64 `json:"estimates"`
	Batches   uint64 `json:"batches"`
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.muMtx.Lock()
	muCached := len(e.mu)
	e.muMtx.Unlock()
	return Stats{
		MuHits:       e.muHits.Load(),
		MuMisses:     e.muMisses.Load(),
		MuCached:     muCached,
		ResultHits:   e.resultHits.Load(),
		ResultMisses: e.resultMisses.Load(),
		ResultCached: e.results.len(),
		InFlight:     e.inFlight.Load(),
		Estimates:    e.estimates.Load(),
		Batches:      e.batches.Load(),
	}
}
