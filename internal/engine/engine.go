// Package engine is the batch estimation subsystem: one prepared graph
// handle serving many concurrent betweenness-estimation requests with
// shared per-graph state. Where core.EstimateBC re-derives everything
// per call — connectivity validation, the O(nm) exact μ(r) used to plan
// the chain length, and O(n) traversal buffers per chain — an Engine
// pays each cost once:
//
//   - the graph is validated and prepared a single time in New;
//   - μ(r) (and with it the exact BC(r)) is computed at most once per
//     target vertex and reused by every subsequent request, with
//     concurrent first requests deduplicated to one computation;
//   - completed estimates are kept in a bounded LRU keyed by
//     (graph version, vertex, normalized options), so repeated
//     requests are served from cache (duplicates inside one batch are
//     dispatched once);
//   - chain traversal buffers are pooled, so concurrent chains stop
//     re-allocating per run;
//   - the target-side shortest-path snapshot the fast dependency
//     oracle reads (see internal/mcmc's oracle routes) is cached in
//     the pool per target, so the μ computation and every chain —
//     batch requests for the same vertex included — share one
//     target-side BFS.
//
// # Dynamic graphs
//
// The engine serves a *versioned* graph: SwapGraph atomically installs
// a mutated CSR (built by graph.ApplyEdits) as the new current
// snapshot. Snapshots are immutable — a request captures exactly one
// (graph, pool, μ-cache, version) tuple at entry and runs on it to
// completion, so an estimate in flight across a swap finishes
// bit-identically to a run with no mutation at all, while the next
// request sees the new graph. Result-cache keys carry the version, so
// a stale entry can never answer a post-mutation request. μ-cache
// entries survive a swap when the edit batch provably cannot have
// changed the target's dependency column: the biconnected-component
// retention rule of graph.AffectedByEdits (targets outside every
// edited block's block-cut-tree span keep their exact μ, BC, and
// concentration profile); all other entries are invalidated.
//
// Engine.Estimate serves one target; Engine.EstimateBatch fans a target
// list over a bounded worker pool with per-target seeds derived
// deterministically from one request seed, so batch results are
// reproducible and independent of scheduling (the whole batch runs on
// the one snapshot captured at entry). Engine.Stats exposes the cache,
// version, and in-flight counters; server.go wraps it all in the
// HTTP/JSON surface cmd/bcserve serves.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"bcmh/internal/core"
	"bcmh/internal/graph"
	"bcmh/internal/mcmc"
	"bcmh/internal/measure"
)

// DefaultCacheSize is the default capacity of the completed-estimate
// LRU.
const DefaultCacheSize = 1024

// Config tunes engine construction.
type Config struct {
	// ResultCacheSize bounds the LRU of completed estimates. Zero means
	// DefaultCacheSize; negative disables result caching entirely
	// (μ caching and buffer pooling are always on).
	ResultCacheSize int
	// Lifecycle, when non-nil, bounds the background work the engine
	// spawns on its own behalf — the detached μ computations behind
	// MuStatsContext. Cancelling it aborts those computations within
	// one traversal per worker; internal/store passes each session's
	// lifecycle context here so an evicted graph stops consuming CPU.
	// Nil means context.Background (background work always completes).
	Lifecycle context.Context
	// DegreeRelabel, when true, renumbers the prepared graph's vertices
	// in degree-descending order (graph.RelabelByDegree) before
	// serving, so the public CSR itself — not just the traversal
	// kernels' private layouts — streams hub rows first. The relabeling
	// composes with the largest-component extraction through Mapping(),
	// which keeps translating engine ids back to the caller's original
	// ids; requests address engine ids either way. Estimates on a
	// relabeled engine are the same graph isomorphism-invariantly but
	// not bit-identically (chain targets and seeds land on renumbered
	// vertices), so leave it off where golden reproducibility against
	// an unrelabeled run matters.
	DegreeRelabel bool
}

// snapshot is one immutable serving state: a graph version, the CSR it
// serves, the buffer pool sized to it, and the version's μ-cache.
// Requests capture one snapshot at entry and never re-read the current
// pointer, which is what makes estimation snapshot-isolated across
// SwapGraph.
type snapshot struct {
	g       *graph.Graph
	pool    *mcmc.BufferPool
	version uint64

	// μ-cache: one entry per requested (measure, target) pair, computed
	// once in a detached goroutine so concurrent first requests share
	// the exact-column evaluation and every waiter stays cancellable.
	// BC entries (the zero-spec key) may be carried over from the
	// previous snapshot when retention proves them unaffected.
	muMtx sync.Mutex
	mu    map[muKey]*muEntry
}

// muKey identifies one μ-cache entry: the measure and the target
// vertex. The zero-spec key is plain BC, so pre-measure callers hit
// exactly the entries they always did.
type muKey struct {
	spec   measure.Spec
	vertex int
}

// Engine owns the shared state for estimating betweenness on one
// prepared graph lineage. Safe for concurrent use.
type Engine struct {
	mapping   []int
	lifecycle context.Context

	snap    atomic.Pointer[snapshot]
	swapMtx sync.Mutex // serializes SwapGraph/StreamSwap/InstallCompacted

	// tracker amortizes affected-set computation across StreamSwap
	// batches (guarded by swapMtx; nil until the first stream batch,
	// reset by a full-CSR SwapGraph).
	tracker *graph.AffectedTracker

	results *lruCache

	muHits, muMisses         atomic.Uint64
	resultHits, resultMisses atomic.Uint64
	inFlight                 atomic.Int64
	estimates                atomic.Uint64
	batches                  atomic.Uint64
	swaps                    atomic.Uint64
	muRetained               atomic.Uint64
	muInvalidated            atomic.Uint64
}

// muEntry is one target's μ computation: done closes when stats/err are
// final. The computation runs detached from any request so it always
// completes and warms the cache, while every requester — the initiator
// included — waits cancellably.
type muEntry struct {
	done  chan struct{}
	stats mcmc.MuStats
	err   error
}

// New prepares g for estimation (validating it and extracting the
// largest connected component if necessary, via core.Prepare) and
// returns an engine over the prepared graph with default configuration.
func New(g *graph.Graph) (*Engine, error) {
	return NewWithConfig(g, Config{})
}

// NewWithConfig is New with explicit engine configuration.
func NewWithConfig(g *graph.Graph, cfg Config) (*Engine, error) {
	prepared, mapping, err := core.Prepare(g)
	if err != nil {
		return nil, err
	}
	if cfg.DegreeRelabel {
		rel, newToOld, rerr := graph.RelabelByDegree(prepared)
		if rerr != nil {
			return nil, rerr
		}
		if mapping == nil {
			mapping = newToOld
		} else {
			composed := make([]int, len(newToOld))
			for v, p := range newToOld {
				composed[v] = mapping[p]
			}
			mapping = composed
		}
		prepared = rel
	}
	size := cfg.ResultCacheSize
	if size == 0 {
		size = DefaultCacheSize
	}
	lifecycle := cfg.Lifecycle
	if lifecycle == nil {
		lifecycle = context.Background()
	}
	e := &Engine{
		mapping:   mapping,
		lifecycle: lifecycle,
		results:   newLRUCache(size),
	}
	e.snap.Store(&snapshot{
		g:       prepared,
		pool:    mcmc.NewBufferPool(prepared),
		version: prepared.Version(),
		mu:      make(map[muKey]*muEntry),
	})
	return e, nil
}

// current returns the serving snapshot. Callers that need consistency
// across several reads (graph + pool + μ-cache) must hold one snapshot
// rather than calling the individual accessors repeatedly.
func (e *Engine) current() *snapshot { return e.snap.Load() }

// Graph returns the prepared graph the engine currently estimates on.
func (e *Engine) Graph() *graph.Graph { return e.current().g }

// Version returns the graph version the engine currently serves.
func (e *Engine) Version() uint64 { return e.current().version }

// Mapping returns the prepared-vertex → original-vertex mapping from
// core.Prepare, or nil when the input graph was usable as-is.
func (e *Engine) Mapping() []int { return e.mapping }

// Pool returns the current snapshot's chain-buffer pool. A pool is
// only valid for the graph of the snapshot it came from — callers that
// run chains beside the engine's own traffic must take Graph and Pool
// from one Snapshot call, never from separate Graph()/Pool() reads
// that a concurrent SwapGraph could split across versions.
func (e *Engine) Pool() *mcmc.BufferPool { return e.current().pool }

// Snapshot is an exported consistent view of one serving state.
type Snapshot struct {
	// Graph is the snapshot's immutable CSR.
	Graph *graph.Graph
	// Pool is the buffer pool sized to (and caching target SPDs of)
	// exactly that graph.
	Pool *mcmc.BufferPool
	// Version is the snapshot's graph version.
	Version uint64
}

// Snapshot returns the current (graph, pool, version) tuple,
// guaranteed mutually consistent. Work started on a snapshot (e.g. a
// ranking job) keeps running on it bit-identically across any number
// of subsequent SwapGraph calls.
func (e *Engine) Snapshot() Snapshot {
	sn := e.current()
	return Snapshot{Graph: sn.g, Pool: sn.pool, Version: sn.version}
}

// ErrUnknownVertex is wrapped by every "no such vertex" failure —
// out-of-range engine ids and labels absent from the serving table —
// so the HTTP layer can map them to 404 with errors.Is.
var ErrUnknownVertex = errors.New("unknown vertex")

// ErrVersionRegression is wrapped by SwapGraph when the candidate
// graph's version does not advance past the serving snapshot's.
var ErrVersionRegression = errors.New("graph version must advance")

func (sn *snapshot) checkVertex(r int) error {
	if r < 0 || r >= sn.g.N() {
		return fmt.Errorf("engine: vertex %d out of range [0,%d): %w", r, sn.g.N(), ErrUnknownVertex)
	}
	return nil
}

// SwapReport describes one SwapGraph outcome.
type SwapReport struct {
	// Version is the version now being served.
	Version uint64
	// Affected is the number of vertices inside the edit's affected
	// region (see graph.AffectedByEdits).
	Affected int
	// MuRetained and MuInvalidated count μ-cache entries carried over
	// versus dropped.
	MuRetained, MuInvalidated int
}

// SwapGraph atomically replaces the serving graph with next — a
// mutated CSR produced by graph.ApplyEdits on the current one — and
// edited is the applied batch's endpoint pairs (EditReport.Pairs).
//
// Requirements: next must be undirected, connected, have the same
// vertex count as the current graph (vertex ids are stable across a
// mutation lineage; that stability is what lets caches and label
// tables survive), and carry a strictly greater Version.
//
// In-flight estimates are untouched: they hold the previous snapshot
// and complete on it bit-identically. The result LRU needs no sweep —
// its keys carry the version, so old entries can never answer
// new-version requests and simply age out. μ-cache entries (including
// ones still being computed) are carried into the new snapshot exactly
// when the target lies outside the edit's affected region, where the
// dependency column is provably unchanged; retained exact values are
// mathematically exact for the new graph, though not necessarily
// bit-identical to what a cold recomputation on the new CSR would
// produce (shortest-path counts may regroup floating-point sums).
// Passing nil edited pairs invalidates every entry — the safe call
// when the mutation's provenance is unknown.
func (e *Engine) SwapGraph(next *graph.Graph, edited [][2]int) (SwapReport, error) {
	if next == nil {
		return SwapReport{}, fmt.Errorf("engine: SwapGraph on nil graph")
	}
	if next.Directed() {
		return SwapReport{}, fmt.Errorf("engine: SwapGraph requires an undirected graph")
	}
	e.swapMtx.Lock()
	defer e.swapMtx.Unlock()
	cur := e.current()
	if next.N() != cur.g.N() {
		return SwapReport{}, fmt.Errorf("engine: SwapGraph changes the vertex count (%d -> %d); mutations must keep vertex ids stable", cur.g.N(), next.N())
	}
	if next.Version() <= cur.version {
		return SwapReport{}, fmt.Errorf("engine: %w (serving %d, offered %d)", ErrVersionRegression, cur.version, next.Version())
	}
	if !graph.IsConnected(next) {
		return SwapReport{}, fmt.Errorf("engine: SwapGraph rejects a disconnected graph (the estimators require connectivity)")
	}
	affected := graph.AffectedByEdits(next, edited)
	nAffected := 0
	for _, a := range affected {
		if a {
			nAffected++
		}
	}
	// An overlay descendant keeps the current pool: kernels reseat in
	// O(overlay) and warm chain memos survive where the affected set
	// allows. A fresh CSR gets a fresh pool (old buffers would rebuild on
	// every checkout anyway) and invalidates the stream tracker's forest
	// baseline.
	var pool *mcmc.BufferPool
	if graph.SameStorage(cur.g, next) {
		pool = cur.pool
		pool.Advance(next, affected)
		if e.tracker != nil {
			e.tracker.Absorb(affected)
		}
	} else {
		pool = mcmc.NewBufferPool(next)
		e.tracker = nil
	}
	fresh := &snapshot{
		g:       next,
		pool:    pool,
		version: next.Version(),
		mu:      make(map[muKey]*muEntry),
	}
	report := SwapReport{Version: next.Version(), Affected: nAffected}
	cur.muMtx.Lock()
	for k, ent := range cur.mu {
		// The block-cut retention proof covers the bc dependency column;
		// non-bc profiles (coverage/kpath share its shortest-path
		// structure, rwbc's currents are global) are conservatively
		// recomputed after any mutation.
		if !k.spec.IsBC() || affected[k.vertex] {
			report.MuInvalidated++
			continue
		}
		// Unaffected bc target: the entry (finished or still computing
		// on the old snapshot, which stays immutable) is exact for the
		// new graph too.
		fresh.mu[k] = ent
		report.MuRetained++
	}
	cur.muMtx.Unlock()
	e.snap.Store(fresh)
	e.swaps.Add(1)
	e.muRetained.Add(uint64(report.MuRetained))
	e.muInvalidated.Add(uint64(report.MuInvalidated))
	return report, nil
}

// StreamSwap is SwapGraph's streaming fast path: next must be an
// overlay descendant of the serving graph (graph.ApplyEditsOverlay on
// it — same backing storage), and pairs the batch's endpoint pairs.
// Instead of the full O(n+m) swap pipeline it runs in O(batch + caches):
// the affected set comes from an amortized block-forest tracker rather
// than a fresh decomposition, the connectivity check is skipped (the
// caller vets removals with graph.PairConnected before applying them —
// an overlay edit batch that passes cannot disconnect the graph, since
// additions never disconnect and vetted removals by definition leave
// their endpoints connected), and the buffer pool is the same object
// carried forward, so warm chain memos and kernels survive per the
// carry rules in internal/mcmc. Nil pairs mark every vertex affected.
func (e *Engine) StreamSwap(next *graph.Graph, pairs [][2]int) (SwapReport, error) {
	if next == nil {
		return SwapReport{}, fmt.Errorf("engine: StreamSwap on nil graph")
	}
	if next.Directed() {
		return SwapReport{}, fmt.Errorf("engine: StreamSwap requires an undirected graph")
	}
	e.swapMtx.Lock()
	defer e.swapMtx.Unlock()
	cur := e.current()
	if !graph.SameStorage(cur.g, next) {
		return SwapReport{}, fmt.Errorf("engine: StreamSwap requires an overlay descendant of the serving graph (use SwapGraph for a rebuilt CSR)")
	}
	if next.Version() <= cur.version {
		return SwapReport{}, fmt.Errorf("engine: %w (serving %d, offered %d)", ErrVersionRegression, cur.version, next.Version())
	}
	if e.tracker == nil {
		e.tracker = graph.NewAffectedTracker(cur.g)
	}
	affected := e.tracker.Affected(next, pairs)
	nAffected := 0
	for _, a := range affected {
		if a {
			nAffected++
		}
	}
	cur.pool.Advance(next, affected)
	fresh := &snapshot{
		g:       next,
		pool:    cur.pool,
		version: next.Version(),
		mu:      make(map[muKey]*muEntry),
	}
	report := SwapReport{Version: next.Version(), Affected: nAffected}
	cur.muMtx.Lock()
	for k, ent := range cur.mu {
		// Same retention rule as SwapGraph: bc-only (see there).
		if !k.spec.IsBC() || affected[k.vertex] {
			report.MuInvalidated++
			continue
		}
		fresh.mu[k] = ent
		report.MuRetained++
	}
	cur.muMtx.Unlock()
	e.snap.Store(fresh)
	e.swaps.Add(1)
	e.muRetained.Add(uint64(report.MuRetained))
	e.muInvalidated.Add(uint64(report.MuInvalidated))
	return report, nil
}

// InstallCompacted replaces the serving graph with an equivalent
// compacted representation of the *same version* — the tail end of
// background overlay compaction (graph.Compact + graph.RebaseCompacted
// run off-lock, then the result lands here). Nothing logical changes:
// the version, the μ-cache, and the buffer pool all carry over intact
// (pool caches are version-keyed, and Compact preserves adjacency
// order, so even cached target snapshots stay bit-identical). The
// stream tracker survives too — its soundness ledger tracks the
// logical graph, not its storage. In-flight estimates keep their old
// snapshot; later stream batches chain off the compacted storage.
func (e *Engine) InstallCompacted(next *graph.Graph) error {
	if next == nil {
		return fmt.Errorf("engine: InstallCompacted on nil graph")
	}
	e.swapMtx.Lock()
	defer e.swapMtx.Unlock()
	cur := e.current()
	if next.Version() != cur.version {
		return fmt.Errorf("engine: InstallCompacted must keep the serving version (serving %d, offered %d)", cur.version, next.Version())
	}
	if next.N() != cur.g.N() || next.Directed() != cur.g.Directed() {
		return fmt.Errorf("engine: InstallCompacted changes the graph shape")
	}
	fresh := &snapshot{
		g:       next,
		pool:    cur.pool,
		version: cur.version,
		mu:      make(map[muKey]*muEntry),
	}
	cur.muMtx.Lock()
	for r, ent := range cur.mu {
		fresh.mu[r] = ent
	}
	cur.muMtx.Unlock()
	e.snap.Store(fresh)
	return nil
}

// MuStats returns the exact concentration profile μ(r) (and with it the
// exact BC(r)) of target r, computing it at most once per graph
// version (less, when retention carries entries across versions).
// Concurrent first calls for the same target block on a single
// computation; every later call is a cache hit.
func (e *Engine) MuStats(r int) (mcmc.MuStats, error) {
	return e.MuStatsContext(context.Background(), r)
}

// MuStatsContext is MuStats under a context. The O(nm) computation
// itself is shared across requesters and runs to completion in a
// detached goroutine (abandoned work still warms the cache), but a
// requester whose ctx is cancelled stops waiting and returns ctx's
// error immediately — so exact-BC and planned-steps requests are
// cancellable even while μ is being derived.
func (e *Engine) MuStatsContext(ctx context.Context, r int) (mcmc.MuStats, error) {
	return e.muStatsOn(ctx, e.current(), measure.Spec{}, r)
}

// MeasureStatsContext is MuStatsContext for an arbitrary measure: the
// exact concentration profile of spec at r (MuStats.BC holds the exact
// value under the shared Σd/(n(n−1)) normalisation), cached per
// (measure, vertex) with the same single-computation semantics. The
// zero spec is exactly MuStatsContext.
func (e *Engine) MeasureStatsContext(ctx context.Context, spec measure.Spec, r int) (mcmc.MuStats, error) {
	return e.muStatsOn(ctx, e.current(), spec, r)
}

// muStatsOn is MeasureStatsContext pinned to one snapshot.
func (e *Engine) muStatsOn(ctx context.Context, sn *snapshot, spec measure.Spec, r int) (mcmc.MuStats, error) {
	if err := sn.checkVertex(r); err != nil {
		return mcmc.MuStats{}, err
	}
	if err := spec.Supports(sn.g); err != nil {
		return mcmc.MuStats{}, err
	}
	key := muKey{spec: spec, vertex: r}
	sn.muMtx.Lock()
	ent, ok := sn.mu[key]
	if !ok {
		ent = &muEntry{done: make(chan struct{})}
		sn.mu[key] = ent
		go func() {
			// Pooled: for bc (and the shortest-path measures sharing its
			// snapshot cache) the target-side BFS this derives the column
			// from is cached in the buffer pool, where the same target's
			// chain oracles will find it (and vice versa). Bounded by the
			// engine lifecycle, not the requester's ctx: abandoned
			// requests still warm the cache, but an engine whose session
			// died stops computing.
			ent.stats, ent.err = measure.Stats(e.lifecycle, sn.g, spec, r, sn.pool)
			close(ent.done)
		}()
	}
	sn.muMtx.Unlock()
	if ok {
		e.muHits.Add(1)
	} else {
		e.muMisses.Add(1)
	}
	select {
	case <-ent.done:
		return ent.stats, ent.err
	case <-ctx.Done():
		return mcmc.MuStats{}, ctx.Err()
	}
}

// ExactBCOf returns the exact betweenness of r, served from the μ-cache
// (MuExact's dependency column yields BC(r) as a by-product), so
// repeated exact queries for one vertex cost one O(nm) evaluation
// total. This is the engine's /exact path.
func (e *Engine) ExactBCOf(r int) (float64, error) {
	return e.ExactBCOfContext(context.Background(), r)
}

// ExactBCOfContext is ExactBCOf under a context (see MuStatsContext for
// the cancellation semantics).
func (e *Engine) ExactBCOfContext(ctx context.Context, r int) (float64, error) {
	ms, err := e.MuStatsContext(ctx, r)
	if err != nil {
		return 0, err
	}
	return ms.BC, nil
}

// ExactMeasureOfContext returns the exact value of spec's centrality at
// r, served from the (measure, vertex) μ-cache exactly like
// ExactBCOfContext serves bc — the exact column derived for planning
// yields the value as a by-product, so repeated exact queries cost one
// evaluation total.
func (e *Engine) ExactMeasureOfContext(ctx context.Context, spec measure.Spec, r int) (float64, error) {
	ms, err := e.MeasureStatsContext(ctx, spec, r)
	if err != nil {
		return 0, err
	}
	return ms.BC, nil
}

// Estimate estimates the betweenness of vertex r under opts, sharing
// the engine's μ-cache, result cache, and buffer pool. Results are
// bit-identical to core.EstimateBC with the same options and seed on
// the snapshot's graph.
func (e *Engine) Estimate(r int, opts core.Options) (core.Estimate, error) {
	return e.EstimateContext(context.Background(), r, opts)
}

// EstimateContext is Estimate under a context: a cancelled ctx aborts
// the in-flight chains promptly with ctx's error instead of letting
// them run to their full step budget (the serving layer passes each
// request's context here, so a disconnected client or an evicted
// session stops consuming CPU). Cache lookups are unaffected — a hit is
// served even under a cancelled context — and aborted runs are never
// cached. The request runs entirely on the snapshot current at entry:
// a SwapGraph mid-estimate neither perturbs nor aborts it.
func (e *Engine) EstimateContext(ctx context.Context, r int, opts core.Options) (core.Estimate, error) {
	return e.estimateOn(ctx, e.current(), measure.Spec{}, r, opts)
}

// EstimateMeasureContext is EstimateContext for an arbitrary measure:
// identical caching, planning, snapshot-isolation, and cancellation
// semantics, with the result LRU and μ-cache keyed by (measure,
// vertex) so measures never answer each other's requests. The zero
// spec routes through the bc fast path bit-identically to
// EstimateContext.
func (e *Engine) EstimateMeasureContext(ctx context.Context, spec measure.Spec, r int, opts core.Options) (core.Estimate, error) {
	return e.estimateOn(ctx, e.current(), spec, r, opts)
}

// estimateOn is EstimateMeasureContext pinned to one snapshot.
func (e *Engine) estimateOn(ctx context.Context, sn *snapshot, spec measure.Spec, r int, opts core.Options) (core.Estimate, error) {
	if err := sn.checkVertex(r); err != nil {
		return core.Estimate{}, err
	}
	if err := spec.Supports(sn.g); err != nil {
		return core.Estimate{}, err
	}
	o := opts.Normalized()
	key := resultKey{version: sn.version, vertex: r, spec: spec, opts: o}
	if est, ok := e.results.get(key); ok {
		e.resultHits.Add(1)
		return est, nil
	}
	e.resultMisses.Add(1)
	e.inFlight.Add(1)
	defer e.inFlight.Add(-1)
	mu := o.MuBound
	if !o.Adaptive && o.Steps <= 0 && mu <= 0 {
		ms, err := e.muStatsOn(ctx, sn, spec, r)
		if err != nil {
			return core.Estimate{}, err
		}
		mu = ms.Mu
	}
	est, err := measure.EstimatePrepared(ctx, sn.g, spec, r, o, mu, sn.pool)
	if err != nil {
		return core.Estimate{}, err
	}
	e.estimates.Add(1)
	e.results.add(key, est)
	return est, nil
}

// Stats is a point-in-time snapshot of the engine's shared-state
// counters (served by bcserve's GET /stats).
type Stats struct {
	// Version is the graph version currently being served; Swaps counts
	// completed SwapGraph calls.
	Version uint64 `json:"version"`
	Swaps   uint64 `json:"swaps"`
	// MuHits and MuMisses count μ-cache lookups; a miss is one O(nm)
	// MuExact computation, a hit reuses (or waits on) a prior one.
	MuHits   uint64 `json:"mu_hits"`
	MuMisses uint64 `json:"mu_misses"`
	// MuCached is the number of targets with a cached μ profile on the
	// current version. MuRetained/MuInvalidated count entries carried
	// across swaps versus dropped by them, cumulatively.
	MuCached      int    `json:"mu_cached"`
	MuRetained    uint64 `json:"mu_retained"`
	MuInvalidated uint64 `json:"mu_invalidated"`
	// ResultHits and ResultMisses count completed-estimate LRU lookups.
	ResultHits   uint64 `json:"result_hits"`
	ResultMisses uint64 `json:"result_misses"`
	// ResultCached is the number of estimates currently in the LRU
	// (entries of superseded versions age out under capacity pressure).
	ResultCached int `json:"result_cached"`
	// InFlight is the number of estimations running right now.
	InFlight int64 `json:"in_flight"`
	// Estimates counts completed chain estimations (cache hits
	// excluded); Batches counts EstimateBatch requests.
	Estimates uint64 `json:"estimates"`
	Batches   uint64 `json:"batches"`
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	sn := e.current()
	sn.muMtx.Lock()
	muCached := len(sn.mu)
	sn.muMtx.Unlock()
	return Stats{
		Version:       sn.version,
		Swaps:         e.swaps.Load(),
		MuHits:        e.muHits.Load(),
		MuMisses:      e.muMisses.Load(),
		MuCached:      muCached,
		MuRetained:    e.muRetained.Load(),
		MuInvalidated: e.muInvalidated.Load(),
		ResultHits:    e.resultHits.Load(),
		ResultMisses:  e.resultMisses.Load(),
		ResultCached:  e.results.len(),
		InFlight:      e.inFlight.Load(),
		Estimates:     e.estimates.Load(),
		Batches:       e.batches.Load(),
	}
}
