package engine

import (
	"sync"
	"testing"

	"bcmh/internal/core"
	"bcmh/internal/graph"
	"bcmh/internal/rng"
)

// plannedOpts is a cheap planned-mode request: steps come from μ via
// Eq. 14 but are clamped low so tests stay fast.
func plannedOpts() core.Options {
	return core.Options{Epsilon: 0.05, Delta: 0.1, MaxSteps: 512}
}

func newKarateEngine(t testing.TB) *Engine {
	t.Helper()
	e, err := New(graph.KarateClub())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEstimateMatchesCore(t *testing.T) {
	// The engine must be a pure cache in front of core.EstimateBC:
	// same options and seed, bit-identical estimate — pooled buffers
	// and the cached μ change where memory lives and who computes μ,
	// never the chain itself.
	g := graph.KarateClub()
	e := newKarateEngine(t)
	for _, r := range []int{0, 2, 33} {
		for _, opts := range []core.Options{
			{Steps: 400, Seed: 7},
			{Epsilon: 0.05, Delta: 0.1, MaxSteps: 512, Seed: 9},
			{Steps: 300, Chains: 4, Seed: 11},
		} {
			want, err := core.EstimateBC(g, r, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.Estimate(r, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got.Value != want.Value || got.PlannedSteps != want.PlannedSteps || got.MuUsed != want.MuUsed {
				t.Fatalf("vertex %d opts %+v: engine %+v != core %+v", r, opts, got, want)
			}
		}
	}
}

func TestEstimateZeroBCVertex(t *testing.T) {
	// Karate vertex 11 hangs off vertex 0 alone: BC = 0, and the
	// planned path must short-circuit without running a chain.
	e := newKarateEngine(t)
	est, err := e.Estimate(11, plannedOpts())
	if err != nil {
		t.Fatal(err)
	}
	if est.Value != 0 || est.PlannedSteps != 0 {
		t.Fatalf("zero-BC vertex estimate %+v", est)
	}
}

func TestEstimateVertexOutOfRange(t *testing.T) {
	e := newKarateEngine(t)
	if _, err := e.Estimate(34, plannedOpts()); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	if _, err := e.Estimate(-1, plannedOpts()); err == nil {
		t.Fatal("negative vertex accepted")
	}
	if _, err := e.EstimateBatch([]int{0, 99}, BatchOptions{Estimation: plannedOpts()}); err == nil {
		t.Fatal("batch with out-of-range target accepted")
	}
}

func TestResultCacheServesRepeats(t *testing.T) {
	e := newKarateEngine(t)
	opts := plannedOpts()
	opts.Seed = 3
	first, err := e.Estimate(0, opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Estimate(0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Value != second.Value {
		t.Fatalf("cache returned different value: %v vs %v", first.Value, second.Value)
	}
	st := e.Stats()
	if st.ResultHits != 1 || st.ResultMisses != 1 || st.Estimates != 1 {
		t.Fatalf("stats after repeat: %+v", st)
	}
	// Explicit defaults and zero-valued fields are the same request.
	explicit := core.Options{Epsilon: 0.05, Delta: 0.1, MaxSteps: 512, Chains: 1, Seed: 3}
	if _, err := e.Estimate(0, explicit); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.ResultHits != 2 {
		t.Fatalf("normalized-options request missed the cache: %+v", st)
	}
	// A different seed is a different request.
	opts.Seed = 4
	if _, err := e.Estimate(0, opts); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Estimates != 2 {
		t.Fatalf("different seed should re-estimate: %+v", st)
	}
}

func TestConcurrentEstimatesShareOneMu(t *testing.T) {
	// The μ-cache singleflight: many concurrent planned requests for
	// one target must trigger exactly one O(nm) MuExact computation.
	// Distinct seeds keep every request out of the result LRU so each
	// one reaches the μ lookup.
	e := newKarateEngine(t)
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := plannedOpts()
			opts.Seed = uint64(i + 1)
			_, errs[i] = e.Estimate(0, opts)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.MuMisses != 1 {
		t.Fatalf("expected exactly one μ computation, got %d (stats %+v)", st.MuMisses, st)
	}
	if st.MuHits != goroutines-1 {
		t.Fatalf("expected %d μ-cache hits, got %d", goroutines-1, st.MuHits)
	}
	if st.Estimates != goroutines {
		t.Fatalf("expected %d estimates, got %d", goroutines, st.Estimates)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight counter leaked: %d", st.InFlight)
	}
}

func batchValues(t *testing.T, targets []int, opts BatchOptions) []float64 {
	t.Helper()
	// A fresh engine per run: determinism must come from seeds, not
	// from cache state left by a previous run.
	e := newKarateEngine(t)
	results, err := e.EstimateBatch(targets, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(targets) {
		t.Fatalf("got %d results for %d targets", len(results), len(targets))
	}
	vals := make([]float64, len(results))
	for i, br := range results {
		if br.Target != targets[i] {
			t.Fatalf("result %d is for target %d, want %d", i, br.Target, targets[i])
		}
		vals[i] = br.Estimate.Value
	}
	return vals
}

func TestBatchDeterministicAcrossConcurrency(t *testing.T) {
	// Same request seed → bit-identical batch results, across repeated
	// runs and across worker-pool widths; duplicate targets agree with
	// each other and with their first occurrence.
	targets := []int{0, 33, 2, 0, 31, 33, 8, 0, 1, 13}
	base := BatchOptions{Estimation: plannedOpts(), Seed: 42, Concurrency: 1}
	want := batchValues(t, targets, base)
	for _, conc := range []int{1, 2, 4, 8} {
		opts := base
		opts.Concurrency = conc
		got := batchValues(t, targets, opts)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("concurrency %d: result %d = %v, want %v", conc, i, got[i], want[i])
			}
		}
	}
	// Order independence: each target's estimate is a function of
	// (request seed, target) alone.
	reversed := make([]int, len(targets))
	for i, r := range targets {
		reversed[len(targets)-1-i] = r
	}
	opts := base
	opts.Concurrency = 4
	rev := batchValues(t, reversed, opts)
	for i := range want {
		if rev[len(want)-1-i] != want[i] {
			t.Fatalf("target %d: reversed batch gives %v, want %v", targets[i], rev[len(want)-1-i], want[i])
		}
	}
}

func TestBatchEntryReproducibleViaEstimate(t *testing.T) {
	// Any batch entry can be replayed through a single Estimate with
	// the SeedFor-derived seed.
	e := newKarateEngine(t)
	targets := []int{0, 2, 33}
	opts := BatchOptions{Estimation: plannedOpts(), Seed: 5}
	results, err := e.EstimateBatch(targets, opts)
	if err != nil {
		t.Fatal(err)
	}
	single := newKarateEngine(t)
	for i, r := range targets {
		o := plannedOpts()
		o.Seed = SeedFor(opts.Seed, r)
		est, err := single.Estimate(r, o)
		if err != nil {
			t.Fatal(err)
		}
		if est.Value != results[i].Estimate.Value {
			t.Fatalf("target %d: replay %v != batch %v", r, est.Value, results[i].Estimate.Value)
		}
	}
}

func TestEstimateMatchesCoreWeighted(t *testing.T) {
	// The weighted (Dijkstra identity) oracle route under the engine:
	// same pure-cache contract as TestEstimateMatchesCore, and batch
	// entries replay through single Estimates, on a weighted graph.
	g := graph.WithUniformWeights(graph.KarateClub(), 1, 9, rng.New(91))
	e, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{0, 2, 33} {
		opts := core.Options{Steps: 400, Seed: 7}
		want, err := core.EstimateBC(g, r, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Estimate(r, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Value != want.Value || got.MuUsed != want.MuUsed {
			t.Fatalf("vertex %d: engine %+v != core %+v", r, got, want)
		}
	}
	targets := []int{0, 2, 33, 0, 2, 33}
	results, err := e.EstimateBatch(targets, BatchOptions{Estimation: plannedOpts(), Seed: 5, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	single, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range targets {
		o := plannedOpts()
		o.Seed = SeedFor(5, r)
		est, err := single.Estimate(r, o)
		if err != nil {
			t.Fatal(err)
		}
		if est.Value != results[i].Estimate.Value {
			t.Fatalf("target %d: replay %v != batch %v", r, est.Value, results[i].Estimate.Value)
		}
	}
}

func TestBatchSharesWorkAcrossDuplicates(t *testing.T) {
	// 4 distinct vertices requested 4× each: μ computed once per
	// distinct vertex and each chain run once — duplicates are
	// dispatched once regardless of concurrency (the finding a naive
	// LRU-only design misses: racing workers would recompute them).
	targets := []int{0, 2, 31, 33, 0, 2, 31, 33, 0, 2, 31, 33, 0, 2, 31, 33}
	e := newKarateEngine(t)
	results, err := e.EstimateBatch(targets, BatchOptions{Estimation: plannedOpts(), Seed: 1, Concurrency: 8})
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.MuMisses != 4 {
		t.Fatalf("expected 4 μ computations for 4 distinct targets, got %d", st.MuMisses)
	}
	if st.Estimates != 4 {
		t.Fatalf("duplicates were recomputed: %+v", st)
	}
	if st.Batches != 1 {
		t.Fatalf("batch counter %d", st.Batches)
	}
	for i, br := range results {
		if br.Estimate.Value != results[i%4].Estimate.Value {
			t.Fatalf("duplicate occurrence %d disagrees with first: %v vs %v", i, br.Estimate.Value, results[i%4].Estimate.Value)
		}
	}
	// A second identical batch is all result-cache hits.
	if _, err := e.EstimateBatch(targets, BatchOptions{Estimation: plannedOpts(), Seed: 1, Concurrency: 8}); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Estimates != 4 || st.ResultHits != 4 {
		t.Fatalf("repeat batch was not cache-served: %+v", st)
	}
}

func TestOptionsNormalizationUnifiesCacheKeys(t *testing.T) {
	// Negative "use the default" spellings must share a cache entry
	// with their canonical form.
	e := newKarateEngine(t)
	canonical := plannedOpts()
	canonical.Seed = 6
	if _, err := e.Estimate(0, canonical); err != nil {
		t.Fatal(err)
	}
	odd := canonical
	odd.Steps = -1
	odd.Chains = -2
	odd.MuBound = -0.5
	est, err := e.Estimate(0, odd)
	if err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Estimates != 1 || st.ResultHits != 1 {
		t.Fatalf("negative-default options missed the cache: %+v", st)
	}
	if est.Chains != 1 {
		t.Fatalf("normalized chains %d, want 1", est.Chains)
	}
}

func TestCachedPerChainIsDetached(t *testing.T) {
	// Mutating a returned estimate's PerChain must not poison the
	// cache.
	e := newKarateEngine(t)
	opts := core.Options{Steps: 200, Chains: 3, Seed: 8}
	first, err := e.Estimate(0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.PerChain) != 3 {
		t.Fatalf("PerChain %d, want 3", len(first.PerChain))
	}
	want := first.PerChain[0].Estimate
	first.PerChain[0].Estimate = -42
	second, err := e.Estimate(0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.PerChain[0].Estimate != want {
		t.Fatalf("cache entry was mutated through the returned slice: %v", second.PerChain[0].Estimate)
	}
}

func TestEmptyBatch(t *testing.T) {
	e := newKarateEngine(t)
	results, err := e.EstimateBatch(nil, BatchOptions{Estimation: plannedOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("empty batch returned %d results", len(results))
	}
}

func TestSeedForIsStablePerTarget(t *testing.T) {
	if SeedFor(1, 5) != SeedFor(1, 5) {
		t.Fatal("SeedFor not deterministic")
	}
	if SeedFor(1, 5) == SeedFor(1, 6) {
		t.Fatal("SeedFor collides across targets")
	}
	if SeedFor(1, 5) == SeedFor(2, 5) {
		t.Fatal("SeedFor ignores the request seed")
	}
}

func TestNewPreparesLargestComponent(t *testing.T) {
	// A two-component graph: New must keep the largest component and
	// expose the vertex mapping.
	b := graph.NewBuilder(7)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 5}, {5, 6}} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	if e.Graph().N() != 4 {
		t.Fatalf("largest component has %d vertices, want 4", e.Graph().N())
	}
	if e.Mapping() == nil {
		t.Fatal("mapping missing after component extraction")
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	k := func(v int) resultKey { return resultKey{vertex: v} }
	est := func(x float64) core.Estimate { return core.Estimate{Value: x} }
	c.add(k(1), est(1))
	c.add(k(2), est(2))
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("entry 1 evicted too early")
	}
	// 1 is now most recent; adding 3 evicts 2.
	c.add(k(3), est(3))
	if _, ok := c.get(k(2)); ok {
		t.Fatal("LRU kept the least-recently-used entry")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("recently used entry evicted")
	}
	if got, _ := c.get(k(3)); got.Value != 3 {
		t.Fatalf("entry 3 = %v", got.Value)
	}
	if c.len() != 2 {
		t.Fatalf("len %d, want 2", c.len())
	}
	// Disabled cache.
	d := newLRUCache(-1)
	d.add(k(1), est(1))
	if _, ok := d.get(k(1)); ok {
		t.Fatal("disabled cache stored an entry")
	}
}

func TestPooledBuffersDoNotPerturbChains(t *testing.T) {
	// Interleave estimations of different targets on one engine and
	// compare each against a fresh engine: recycled buffers (cleared
	// memo maps, reused scratch) must never leak state across targets.
	shared := newKarateEngine(t)
	order := []int{0, 33, 0, 2, 33, 31, 2, 0}
	rnd := rng.New(99)
	for i, r := range order {
		opts := plannedOpts()
		opts.Seed = rnd.Uint64()
		got, err := shared.Estimate(r, opts)
		if err != nil {
			t.Fatal(err)
		}
		fresh := newKarateEngine(t)
		want, err := fresh.Estimate(r, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Value != want.Value {
			t.Fatalf("step %d target %d: shared-engine %v != fresh-engine %v", i, r, got.Value, want.Value)
		}
	}
}
