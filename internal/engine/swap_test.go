package engine

import (
	"fmt"
	"testing"
	"time"

	"bcmh/internal/brandes"
	"bcmh/internal/core"
	"bcmh/internal/graph"
)

// twoRingsGraph builds two cycles sharing one articulation vertex:
// ring A = 0..a-1, cut vertex a-1, ring B = a-1 with a..a+b-2. Edits
// confined to one ring provably leave the other ring's dependency
// columns unchanged — the retention scenario.
func twoRingsGraph(a, b int) *graph.Graph {
	bld := graph.NewBuilder(a + b - 1)
	for i := 0; i < a; i++ {
		bld.AddEdge(i, (i+1)%a)
	}
	ring := []int{a - 1}
	for i := 0; i < b-1; i++ {
		ring = append(ring, a+i)
	}
	for i := range ring {
		bld.AddEdge(ring[i], ring[(i+1)%len(ring)])
	}
	return bld.MustBuild()
}

func mustApply(t *testing.T, g *graph.Graph, edits []graph.Edit) (*graph.Graph, *graph.EditReport) {
	t.Helper()
	next, rep, err := graph.ApplyEdits(g, edits)
	if err != nil {
		t.Fatal(err)
	}
	return next, rep
}

func TestSwapGraphRetainsProvablyUnaffectedMu(t *testing.T) {
	g := twoRingsGraph(8, 8) // A = 0..7, cut = 7, B = 7..14
	e, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	const inA, inB = 2, 10
	// Warm both μ entries.
	msA, err := e.MuStats(inA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.MuStats(inB); err != nil {
		t.Fatal(err)
	}
	missesBefore := e.Stats().MuMisses

	// Chord inside ring B.
	next, rep := mustApply(t, g, []graph.Edit{{Op: graph.EditAdd, U: 8, V: 12}})
	swap, err := e.SwapGraph(next, rep.Pairs)
	if err != nil {
		t.Fatal(err)
	}
	if swap.Version != 1 {
		t.Fatalf("swap version = %d, want 1", swap.Version)
	}
	if swap.MuRetained != 1 || swap.MuInvalidated != 1 {
		t.Fatalf("retained/invalidated = %d/%d, want 1/1", swap.MuRetained, swap.MuInvalidated)
	}
	if e.Version() != 1 || e.Graph() != next {
		t.Fatal("snapshot not swapped")
	}

	// The ring-A entry must be served without a new computation and
	// stay exact for the NEW graph.
	msA2, err := e.MuStats(inA)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().MuMisses; got != missesBefore {
		t.Fatalf("retained μ entry recomputed: misses %d -> %d", missesBefore, got)
	}
	if msA2 != msA {
		t.Fatalf("retained μ entry changed: %+v vs %+v", msA2, msA)
	}
	wantA := brandes.BCOfVertexExact(next, inA)
	if diff := msA2.BC - wantA; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("retained BC(%d) = %v, exact on new graph = %v", inA, msA2.BC, wantA)
	}

	// The ring-B entry must be recomputed and match the new graph.
	msB2, err := e.MuStats(inB)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().MuMisses; got != missesBefore+1 {
		t.Fatalf("invalidated μ entry not recomputed: misses %d -> %d", missesBefore, got)
	}
	wantB := brandes.BCOfVertexExact(next, inB)
	if diff := msB2.BC - wantB; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("recomputed BC(%d) = %v, exact on new graph = %v", inB, msB2.BC, wantB)
	}
}

func TestSwapGraphResultCacheIsVersionTagged(t *testing.T) {
	g := twoRingsGraph(8, 8)
	e, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Steps: 512, Seed: 7}
	const target = 10 // in ring B, where the edit lands
	before, err := e.Estimate(target, opts)
	if err != nil {
		t.Fatal(err)
	}

	next, rep := mustApply(t, g, []graph.Edit{{Op: graph.EditAdd, U: 8, V: 12}})
	if _, err := e.SwapGraph(next, rep.Pairs); err != nil {
		t.Fatal(err)
	}
	after, err := e.Estimate(target, opts)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh engine over the mutated graph is the reference: the
	// post-swap estimate must be bit-identical to it, proving the
	// pre-mutation cache entry was not served.
	ref, err := New(next)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Estimate(target, opts)
	if err != nil {
		t.Fatal(err)
	}
	if after.Value != want.Value {
		t.Fatalf("post-swap estimate %v != fresh-engine reference %v", after.Value, want.Value)
	}
	if before.Value == after.Value {
		t.Fatalf("estimate did not react to the mutation (both %v); the rewire should perturb the chain", before.Value)
	}
	// The old version's entry is still served to old-version keys only;
	// a repeat of the new request is a cache hit.
	hitsBefore := e.Stats().ResultHits
	again, err := e.Estimate(target, opts)
	if err != nil {
		t.Fatal(err)
	}
	if again.Value != after.Value || e.Stats().ResultHits != hitsBefore+1 {
		t.Fatal("post-swap repeat not served from the versioned result cache")
	}
}

// TestSwapGraphInFlightEstimateIsBitIdentical pins snapshot isolation:
// an estimate that is mid-chain when SwapGraph lands completes
// bit-identically to a run with no mutation at all.
func TestSwapGraphInFlightEstimateIsBitIdentical(t *testing.T) {
	g := graph.Grid(40, 40)
	e, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	const target = 820
	opts := core.Options{Steps: 400000, Seed: 3}

	// Reference: same request on an engine that never mutates.
	refEng, err := New(graph.Grid(40, 40))
	if err != nil {
		t.Fatal(err)
	}
	want, err := refEng.Estimate(target, opts)
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		est core.Estimate
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		est, err := e.Estimate(target, opts)
		done <- outcome{est, err}
	}()
	// estimateOn captures its snapshot before InFlight increments, so
	// once InFlight is visible the chain is pinned to the old graph.
	deadline := time.Now().Add(10 * time.Second)
	for e.Stats().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("estimate never became in-flight")
		}
		select {
		case out := <-done:
			// The chain finished before we could swap mid-flight; the
			// bit-identity claim still holds trivially.
			if out.err != nil {
				t.Fatal(out.err)
			}
			if out.est.Value != want.Value {
				t.Fatalf("estimate %v != reference %v", out.est.Value, want.Value)
			}
			return
		default:
		}
		time.Sleep(time.Millisecond)
	}
	next, rep := mustApply(t, g, []graph.Edit{
		{Op: graph.EditAdd, U: 0, V: 41},
		{Op: graph.EditAdd, U: 100, V: 141},
	})
	if _, err := e.SwapGraph(next, rep.Pairs); err != nil {
		t.Fatal(err)
	}
	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.est.Value != want.Value {
		t.Fatalf("in-flight estimate %v != no-mutation reference %v", out.est.Value, want.Value)
	}
	// And a post-swap request sees the new graph.
	after, err := e.Estimate(target, opts)
	if err != nil {
		t.Fatal(err)
	}
	if after.Value == want.Value {
		t.Fatal("post-swap estimate identical to pre-swap; mutation not visible")
	}
}

func TestSwapGraphValidation(t *testing.T) {
	g := twoRingsGraph(6, 6)
	e, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	// Same version (0): regression.
	if _, err := e.SwapGraph(twoRingsGraph(6, 6), nil); err == nil {
		t.Fatal("version regression accepted")
	}
	// Vertex-count change.
	bigger, rep := mustApply(t, twoRingsGraph(6, 7), []graph.Edit{{Op: graph.EditAdd, U: 0, V: 2}})
	if _, err := e.SwapGraph(bigger, rep.Pairs); err == nil {
		t.Fatal("vertex-count change accepted")
	}
	// Disconnecting removal.
	disc, rep2 := mustApply(t, g, []graph.Edit{
		{Op: graph.EditRemove, U: 4, V: 5},
		{Op: graph.EditRemove, U: 5, V: 0},
	})
	if graph.IsConnected(disc) {
		t.Fatal("test setup: expected a disconnected graph")
	}
	if _, err := e.SwapGraph(disc, rep2.Pairs); err == nil {
		t.Fatal("disconnected graph accepted")
	}
	if _, err := e.SwapGraph(nil, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	if e.Version() != 0 {
		t.Fatalf("failed swaps advanced the version to %d", e.Version())
	}
}

// TestSwapGraphNilPairsInvalidatesAll pins the conservative fallback:
// with unknown edit provenance every μ entry is dropped.
func TestSwapGraphNilPairsInvalidatesAll(t *testing.T) {
	g := twoRingsGraph(6, 6)
	e, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{1, 2, 9} {
		if _, err := e.MuStats(r); err != nil {
			t.Fatal(err)
		}
	}
	next, _ := mustApply(t, g, []graph.Edit{{Op: graph.EditAdd, U: 8, V: 10}})
	swap, err := e.SwapGraph(next, nil)
	if err != nil {
		t.Fatal(err)
	}
	if swap.MuRetained != 0 || swap.MuInvalidated != 3 {
		t.Fatalf("retained/invalidated = %d/%d, want 0/3", swap.MuRetained, swap.MuInvalidated)
	}
}

// TestSwapGraphSequence walks several mutation generations and checks
// exact values track the current graph at every step.
func TestSwapGraphSequence(t *testing.T) {
	g := twoRingsGraph(7, 7)
	e, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	cur := g
	for gen := 1; gen <= 4; gen++ {
		u, v := 7+gen-1, 7+((gen+2)%6) // chords inside ring B
		if cur.HasEdge(u, v) || u == v {
			continue
		}
		next, rep := mustApply(t, cur, []graph.Edit{{Op: graph.EditAdd, U: u, V: v}})
		if !graph.IsConnected(next) {
			t.Fatal("setup: disconnected")
		}
		if _, err := e.SwapGraph(next, rep.Pairs); err != nil {
			t.Fatal(err)
		}
		if e.Version() != uint64(gen) {
			t.Fatalf("version = %d, want %d", e.Version(), gen)
		}
		for _, r := range []int{2, 9} {
			got, err := e.ExactBCOf(r)
			if err != nil {
				t.Fatal(err)
			}
			want := brandes.BCOfVertexExact(next, r)
			if diff := got - want; diff > 1e-12 || diff < -1e-12 {
				t.Fatal(fmt.Sprintf("gen %d: ExactBCOf(%d) = %v, want %v", gen, r, got, want))
			}
		}
		cur = next
	}
}
