package engine

import (
	"container/list"
	"sync"

	"bcmh/internal/core"
	"bcmh/internal/mcmc"
	"bcmh/internal/measure"
)

// resultKey identifies one completed estimate: the graph version it
// ran on, the target vertex, the measure, and the normalized options
// (which include the seed) — so two requests that differ only in
// defaulted-vs-explicit fields share an entry, two requests with
// different seeds or measures never collide, and an entry computed
// before a mutation can never answer a request on the mutated graph.
// The zero spec is bc, so pre-measure requests key exactly as before.
type resultKey struct {
	version uint64
	vertex  int
	spec    measure.Spec
	opts    core.Options
}

type lruEntry struct {
	key resultKey
	est core.Estimate
}

// lruCache is a fixed-capacity least-recently-used map of completed
// estimates. A capacity <= 0 disables caching (every get misses, add is
// a no-op). Safe for concurrent use.
type lruCache struct {
	mtx   sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *lruEntry
	byKey map[resultKey]*list.Element
}

func newLRUCache(capacity int) *lruCache {
	c := &lruCache{cap: capacity}
	if capacity > 0 {
		c.order = list.New()
		c.byKey = make(map[resultKey]*list.Element, capacity)
	}
	return c
}

// detach gives the estimate its own PerChain backing array, so cached
// entries, the values handed to callers, and the values callers handed
// in never alias: a caller sorting or editing est.PerChain must not
// rewrite cache contents.
func detach(est core.Estimate) core.Estimate {
	if est.PerChain != nil {
		est.PerChain = append([]mcmc.Result(nil), est.PerChain...)
	}
	return est
}

func (c *lruCache) get(key resultKey) (core.Estimate, bool) {
	if c.cap <= 0 {
		return core.Estimate{}, false
	}
	c.mtx.Lock()
	defer c.mtx.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return core.Estimate{}, false
	}
	c.order.MoveToFront(el)
	return detach(el.Value.(*lruEntry).est), true
}

func (c *lruCache) add(key resultKey, est core.Estimate) {
	if c.cap <= 0 {
		return
	}
	est = detach(est)
	c.mtx.Lock()
	defer c.mtx.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*lruEntry).est = est
		c.order.MoveToFront(el)
		return
	}
	c.byKey[key] = c.order.PushFront(&lruEntry{key: key, est: est})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int {
	if c.cap <= 0 {
		return 0
	}
	c.mtx.Lock()
	defer c.mtx.Unlock()
	return c.order.Len()
}
