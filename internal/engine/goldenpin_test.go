package engine

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// TestGoldenBCPayloads pins the HTTP payloads of default-measure (bc)
// requests to fixtures captured before the measure-generic API
// redesign. The redesign's contract is that a request not mentioning a
// measure — or naming "bc" explicitly — is served by the exact same
// code path and returns byte-identical JSON; any drift here is a
// regression, not a fixture to refresh. Regenerate (only for an
// intentional, documented payload change) with GOLDEN_UPDATE=1.
func TestGoldenBCPayloads(t *testing.T) {
	_, srv := newKarateServer(t)

	// Batch replies carry a wall-clock elapsed_ms; pin the Results
	// array alone, re-marshaled (deterministic field order).
	pinBatchResults := func(raw []byte) []byte {
		var resp BatchResponse
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatalf("decoding batch reply: %v", err)
		}
		out, err := json.Marshal(resp.Results)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	cases := []struct {
		name string
		do   func() []byte
	}{
		{"estimate_fixed_steps", func() []byte {
			return postRaw(t, srv.URL+"/estimate",
				`{"vertex":0,"steps":512,"seed":7}`)
		}},
		{"estimate_planned", func() []byte {
			return postRaw(t, srv.URL+"/estimate",
				`{"vertex":33,"epsilon":0.1,"delta":0.2,"max_steps":4096,"seed":11}`)
		}},
		{"estimate_chains", func() []byte {
			return postRaw(t, srv.URL+"/estimate",
				`{"vertex":2,"steps":256,"chains":3,"seed":5}`)
		}},
		{"estimate_measure_bc_explicit", func() []byte {
			// Post-redesign alias: naming the default measure must not
			// change a single byte. (Pre-redesign servers ignore unknown
			// fields, so the fixture equals estimate_fixed_steps's body
			// with the other vertex/seed.)
			return postRaw(t, srv.URL+"/estimate",
				`{"vertex":5,"steps":384,"seed":13,"measure":"bc"}`)
		}},
		{"estimate_eq7", func() []byte {
			return postRaw(t, srv.URL+"/estimate",
				`{"vertex":0,"steps":512,"seed":7,"estimator":"eq7-literal"}`)
		}},
		{"estimate_proposal_side", func() []byte {
			return postRaw(t, srv.URL+"/estimate",
				`{"vertex":0,"steps":512,"seed":7,"estimator":"proposal-side"}`)
		}},
		{"batch_results", func() []byte {
			return pinBatchResults(postRaw(t, srv.URL+"/estimate/batch",
				`{"targets":[0,33,2,0,13],"steps":256,"seed":99,"concurrency":2}`))
		}},
		{"exact_0", func() []byte { return getRaw(t, srv.URL+"/exact/0") }},
		{"exact_33", func() []byte { return getRaw(t, srv.URL+"/exact/33") }},
	}

	path := filepath.Join("testdata", "measure_bc_golden.json")
	if os.Getenv("GOLDEN_UPDATE") != "" {
		got := make(map[string]string, len(cases))
		for _, c := range cases {
			got[c.name] = string(c.do())
		}
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var buf bytes.Buffer
		buf.WriteString("{\n")
		for i, k := range keys {
			kb, _ := json.Marshal(k)
			vb, _ := json.Marshal(got[k])
			buf.Write(kb)
			buf.WriteString(": ")
			buf.Write(vb)
			if i < len(keys)-1 {
				buf.WriteString(",")
			}
			buf.WriteString("\n")
		}
		buf.WriteString("}\n")
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden payloads to %s", len(got), path)
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden fixture (run with GOLDEN_UPDATE=1 to create): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parsing golden fixture: %v", err)
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			w, ok := want[c.name]
			if !ok {
				t.Fatalf("fixture missing case %q (regenerate with GOLDEN_UPDATE=1)", c.name)
			}
			if got := string(c.do()); got != w {
				t.Errorf("payload drifted from pre-redesign golden\n got: %s\nwant: %s", got, w)
			}
		})
	}
}

func postRaw(t *testing.T, url, body string) []byte {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d body %s", url, resp.StatusCode, raw)
	}
	return raw
}

func getRaw(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d body %s", url, resp.StatusCode, raw)
	}
	return raw
}
