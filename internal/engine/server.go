package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"bcmh/internal/core"
	"bcmh/internal/mcmc"
	"bcmh/internal/measure"
)

// EstimateRequest is the JSON body of POST /estimate. Vertex is an
// input-file label when the server was built with labels (see
// NewServerWithLabels), an engine vertex id otherwise. Zero-valued
// fields take the core.Options defaults (epsilon 0.01, delta 0.1,
// planned steps, one chain). Measure selects the centrality measure
// ("bc" default, "coverage", "kpath" with MeasureK, "rwbc"); Adaptive
// replaces the fixed Eq. 14 plan with the empirical-Bernstein stopping
// rule at (Epsilon, Delta), bounded by Steps/MaxSteps.
type EstimateRequest struct {
	Vertex    int64   `json:"vertex"`
	Steps     int     `json:"steps,omitempty"`
	Epsilon   float64 `json:"epsilon,omitempty"`
	Delta     float64 `json:"delta,omitempty"`
	MuBound   float64 `json:"mu_bound,omitempty"`
	MaxSteps  int     `json:"max_steps,omitempty"`
	Chains    int     `json:"chains,omitempty"`
	Seed      uint64  `json:"seed,omitempty"`
	Estimator string  `json:"estimator,omitempty"`
	Measure   string  `json:"measure,omitempty"`
	MeasureK  int     `json:"measure_k,omitempty"`
	Adaptive  bool    `json:"adaptive,omitempty"`
}

// EstimateResponse is the JSON reply of POST /estimate and each entry
// of POST /estimate/batch. The measure and adaptive fields are present
// only on requests that used them — a plain bc request's reply is
// byte-identical to the pre-measure API (the golden-payload tests pin
// this).
type EstimateResponse struct {
	Vertex         int64   `json:"vertex"`
	Value          float64 `json:"value"`
	PlannedSteps   int     `json:"planned_steps"`
	Chains         int     `json:"chains"`
	MuUsed         float64 `json:"mu_used,omitempty"`
	Seed           uint64  `json:"seed"`
	AcceptanceRate float64 `json:"acceptance_rate"`
	Evals          int     `json:"evals"`
	CacheHits      int     `json:"cache_hits"`
	Measure        string  `json:"measure,omitempty"`
	MeasureK       int     `json:"measure_k,omitempty"`
	Adaptive       bool    `json:"adaptive,omitempty"`
	StepsRun       int     `json:"steps_run,omitempty"`
	Converged      bool    `json:"converged,omitempty"`
	EBHalfWidth    float64 `json:"eb_half_width,omitempty"`
}

// BatchRequest is the JSON body of POST /estimate/batch: one set of
// estimation knobs applied to every target, a request seed the
// per-target seeds derive from, and the worker-pool width.
type BatchRequest struct {
	Targets     []int64 `json:"targets"`
	Seed        uint64  `json:"seed,omitempty"`
	Concurrency int     `json:"concurrency,omitempty"`
	Steps       int     `json:"steps,omitempty"`
	Epsilon     float64 `json:"epsilon,omitempty"`
	Delta       float64 `json:"delta,omitempty"`
	MuBound     float64 `json:"mu_bound,omitempty"`
	MaxSteps    int     `json:"max_steps,omitempty"`
	Chains      int     `json:"chains,omitempty"`
	Estimator   string  `json:"estimator,omitempty"`
	Measure     string  `json:"measure,omitempty"`
	MeasureK    int     `json:"measure_k,omitempty"`
	Adaptive    bool    `json:"adaptive,omitempty"`
}

// BatchResponse is the JSON reply of POST /estimate/batch; Results is
// in request-target order.
type BatchResponse struct {
	Results   []EstimateResponse `json:"results"`
	ElapsedMS float64            `json:"elapsed_ms"`
}

// ExactResponse is the JSON reply of GET /exact/{v} for the default
// measure (no query parameters, or ?measure=bc) — unchanged from the
// pre-measure API.
type ExactResponse struct {
	Vertex int64   `json:"vertex"`
	BC     float64 `json:"bc"`
}

// MeasureExactResponse is the JSON reply of GET /exact/{v}?measure=…
// for a non-bc measure.
type MeasureExactResponse struct {
	Vertex  int64   `json:"vertex"`
	Measure string  `json:"measure"`
	K       int     `json:"k,omitempty"`
	Value   float64 `json:"value"`
}

// StatsResponse is the JSON reply of GET /stats.
type StatsResponse struct {
	N int `json:"n"`
	M int `json:"m"`
	Stats
}

// Request guards: explicitly requested steps and chains reach the
// chain loop unclamped (Options.MaxSteps only caps *planned* steps),
// so the HTTP surface bounds them — otherwise one request with an
// enormous budget pins a worker indefinitely.
const (
	// MaxRequestSteps caps the per-chain step budget one HTTP request
	// may demand (matches the planner's own cap, core.DefaultMaxSteps).
	MaxRequestSteps = core.DefaultMaxSteps
	// MaxRequestChains caps parallel chains per request.
	MaxRequestChains = 256
	// MaxBatchTargets caps the target-list length of one batch request.
	MaxBatchTargets = 4096
)

func checkRequestBudget(steps, maxSteps, chains int) error {
	if steps > MaxRequestSteps {
		return fmt.Errorf("steps %d exceeds the per-request limit %d", steps, MaxRequestSteps)
	}
	if maxSteps > MaxRequestSteps {
		return fmt.Errorf("max_steps %d exceeds the per-request limit %d", maxSteps, MaxRequestSteps)
	}
	if chains > MaxRequestChains {
		return fmt.Errorf("chains %d exceeds the per-request limit %d", chains, MaxRequestChains)
	}
	return nil
}

func parseEstimator(name string) (mcmc.EstimatorKind, error) {
	switch name {
	case "", mcmc.EstimatorChainAverage.String():
		return mcmc.EstimatorChainAverage, nil
	case mcmc.EstimatorPaperEq7.String():
		return mcmc.EstimatorPaperEq7, nil
	case mcmc.EstimatorProposalSide.String():
		return mcmc.EstimatorProposalSide, nil
	case mcmc.EstimatorHarmonic.String():
		return mcmc.EstimatorHarmonic, nil
	default:
		return 0, fmt.Errorf("unknown estimator %q", name)
	}
}

// NewServer returns the HTTP handler cmd/bcserve mounts over e:
//
//	POST /estimate        estimate one vertex (EstimateRequest)
//	POST /estimate/batch  estimate a target list (BatchRequest)
//	GET  /exact/{v}       exact betweenness of v (μ-cache by-product)
//	GET  /stats           engine counters and graph size
//
// Request and response vertices are the prepared graph's ids, [0, n).
func NewServer(e *Engine) http.Handler {
	return NewServerWithLabels(e, nil)
}

// NewServerWithLabels is NewServer with requests addressed by original
// input labels instead of engine vertex ids: labels[i] is the original
// label of engine vertex i (the composition of edge-list compaction and
// largest-component extraction). Responses report the same labels.
// Edge-list readers compact labels in first-appearance order, so even a
// file whose labels are already 0..n-1 usually ends up relabelled —
// cmd/bcserve always serves labels so "vertex": 33 means the file's
// vertex 33.
func NewServerWithLabels(e *Engine, labels []int64) http.Handler {
	s := &server{e: e, labelOf: labels}
	if labels != nil {
		s.byLabel = make(map[int64]int, len(labels))
		for v, l := range labels {
			s.byLabel[l] = v
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /estimate", s.handleEstimate)
	mux.HandleFunc("POST /estimate/batch", s.handleBatch)
	mux.HandleFunc("GET /exact/{v}", s.handleExact)
	mux.HandleFunc("GET /stats", s.handleStats)
	return JSONMux(mux)
}

type server struct {
	e       *Engine
	labelOf []int64       // engine vertex -> original label (nil: identity)
	byLabel map[int64]int // original label -> engine vertex
}

// vertexOf resolves a request vertex (label or raw id) to an engine
// vertex id.
func (s *server) vertexOf(v int64) (int, error) {
	if s.byLabel == nil {
		return int(v), nil
	}
	id, ok := s.byLabel[v]
	if !ok {
		return 0, fmt.Errorf("engine: %w label %d (dropped with a smaller component, or absent from the input)", ErrUnknownVertex, v)
	}
	return id, nil
}

// labelFor is vertexOf's inverse, for responses.
func (s *server) labelFor(v int) int64 {
	if s.labelOf == nil {
		return int64(v)
	}
	return s.labelOf[v]
}

// StatusClientClosedRequest is the (de-facto standard, nginx-origin)
// status reported when an estimate aborts because the request's own
// context was cancelled — the client hung up, so nobody reads the reply,
// but logs and tests still see an honest code.
const StatusClientClosedRequest = 499

// WriteJSON writes v as the JSON response body with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// WriteError writes the error-shape reply every endpoint of this
// serving stack uses: {"error": "<message>"} with the given status.
func WriteError(w http.ResponseWriter, status int, err error) {
	WriteJSON(w, status, map[string]string{"error": err.Error()})
}

// JSONMux wraps a ServeMux so its built-in plain-text replies — 404
// for unknown routes, 405 (with the Allow header) for method
// mismatches — take the {"error": ...} shape every handler-written
// reply uses. Matched requests pass through untouched; the mux's own
// status and Allow decisions are replayed against a probe writer, so
// routing semantics are exactly the stock ServeMux's.
func JSONMux(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, pattern := mux.Handler(r); pattern != "" {
			mux.ServeHTTP(w, r)
			return
		}
		probe := muxProbe{header: http.Header{}}
		mux.ServeHTTP(&probe, r)
		status := probe.status
		if status == 0 {
			status = http.StatusNotFound
		}
		if allow := probe.header.Get("Allow"); allow != "" {
			w.Header().Set("Allow", allow)
		}
		if status == http.StatusMethodNotAllowed {
			WriteError(w, status, fmt.Errorf("engine: method %s not allowed for %s", r.Method, r.URL.Path))
			return
		}
		WriteError(w, status, fmt.Errorf("engine: no such route %s", r.URL.Path))
	})
}

// muxProbe captures the status and headers ServeMux's internal error
// handler would have written, discarding the plain-text body.
type muxProbe struct {
	header http.Header
	status int
}

func (p *muxProbe) Header() http.Header { return p.header }

func (p *muxProbe) Write(b []byte) (int, error) { return len(b), nil }

func (p *muxProbe) WriteHeader(code int) {
	if p.status == 0 {
		p.status = code
	}
}

// StatusForError maps an estimation-path error to its pinned HTTP
// status:
//
//   - context cancellation/deadline → 499 when the request's own
//     context fired, 503 when a custom cancellation cause (e.g. a graph
//     session being evicted or the server draining) aborted it — the
//     cause's message is what the client should see, so it is returned
//     alongside;
//   - ErrUnknownVertex (out-of-range ids, labels not in the serving
//     table) → 404;
//   - everything else (malformed options, over-budget requests) → 400.
func StatusForError(ctx context.Context, err error) (int, error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		if cause := context.Cause(ctx); cause != nil &&
			!errors.Is(cause, context.Canceled) && !errors.Is(cause, context.DeadlineExceeded) {
			return http.StatusServiceUnavailable, cause
		}
		return StatusClientClosedRequest, err
	}
	if errors.Is(err, ErrUnknownVertex) {
		return http.StatusNotFound, err
	}
	return http.StatusBadRequest, err
}

func writeRequestError(w http.ResponseWriter, ctx context.Context, err error) {
	status, mapped := StatusForError(ctx, err)
	WriteError(w, status, mapped)
}

func toResponse(label int64, seed uint64, spec measure.Spec, adaptive bool, est core.Estimate) EstimateResponse {
	resp := EstimateResponse{
		Vertex:         label,
		Value:          est.Value,
		PlannedSteps:   est.PlannedSteps,
		Chains:         est.Chains,
		MuUsed:         est.MuUsed,
		Seed:           seed,
		AcceptanceRate: est.Diagnostics.AcceptanceRate,
		Evals:          est.Diagnostics.Evals,
		CacheHits:      est.Diagnostics.CacheHits,
	}
	// Opt-in fields only: a plain bc request's reply must stay
	// byte-identical to the pre-measure API.
	if !spec.IsBC() {
		resp.Measure = spec.Kind.String()
		if spec.Kind == measure.KPath {
			resp.MeasureK = spec.K
		}
	}
	if adaptive {
		resp.Adaptive = true
		resp.StepsRun = est.Diagnostics.StepsRun
		resp.Converged = est.Diagnostics.Converged
		resp.EBHalfWidth = est.Diagnostics.EBHalfWidth
	}
	return resp
}

func (s *server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %v", err))
		return
	}
	kind, err := parseEstimator(req.Estimator)
	if err != nil {
		writeRequestError(w, r.Context(), err)
		return
	}
	spec, err := measure.Parse(req.Measure, req.MeasureK)
	if err != nil {
		writeRequestError(w, r.Context(), err)
		return
	}
	if err := checkRequestBudget(req.Steps, req.MaxSteps, req.Chains); err != nil {
		writeRequestError(w, r.Context(), err)
		return
	}
	vertex, err := s.vertexOf(req.Vertex)
	if err != nil {
		writeRequestError(w, r.Context(), err)
		return
	}
	opts := core.Options{
		Steps:     req.Steps,
		Epsilon:   req.Epsilon,
		Delta:     req.Delta,
		MuBound:   req.MuBound,
		MaxSteps:  req.MaxSteps,
		Chains:    req.Chains,
		Seed:      req.Seed,
		Estimator: kind,
		Adaptive:  req.Adaptive,
	}
	est, err := s.e.EstimateMeasureContext(r.Context(), spec, vertex, opts)
	if err != nil {
		writeRequestError(w, r.Context(), err)
		return
	}
	WriteJSON(w, http.StatusOK, toResponse(req.Vertex, req.Seed, spec, req.Adaptive, est))
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %v", err))
		return
	}
	kind, err := parseEstimator(req.Estimator)
	if err != nil {
		writeRequestError(w, r.Context(), err)
		return
	}
	spec, err := measure.Parse(req.Measure, req.MeasureK)
	if err != nil {
		writeRequestError(w, r.Context(), err)
		return
	}
	if err := checkRequestBudget(req.Steps, req.MaxSteps, req.Chains); err != nil {
		writeRequestError(w, r.Context(), err)
		return
	}
	if len(req.Targets) > MaxBatchTargets {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("batch of %d targets exceeds the limit %d", len(req.Targets), MaxBatchTargets))
		return
	}
	targets := make([]int, len(req.Targets))
	for i, label := range req.Targets {
		if targets[i], err = s.vertexOf(label); err != nil {
			writeRequestError(w, r.Context(), err)
			return
		}
	}
	opts := BatchOptions{
		Estimation: core.Options{
			Steps:     req.Steps,
			Epsilon:   req.Epsilon,
			Delta:     req.Delta,
			MuBound:   req.MuBound,
			MaxSteps:  req.MaxSteps,
			Chains:    req.Chains,
			Estimator: kind,
			Adaptive:  req.Adaptive,
		},
		Seed:        req.Seed,
		Concurrency: req.Concurrency,
		Measure:     spec,
	}
	start := time.Now()
	results, err := s.e.EstimateBatchContext(r.Context(), targets, opts)
	if err != nil {
		writeRequestError(w, r.Context(), err)
		return
	}
	resp := BatchResponse{
		Results:   make([]EstimateResponse, len(results)),
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	for i, br := range results {
		resp.Results[i] = toResponse(s.labelFor(br.Target), SeedFor(req.Seed, br.Target), spec, req.Adaptive, br.Estimate)
	}
	WriteJSON(w, http.StatusOK, resp)
}

func (s *server) handleExact(w http.ResponseWriter, r *http.Request) {
	label, err := strconv.ParseInt(r.PathValue("v"), 10, 64)
	if err != nil {
		WriteError(w, http.StatusBadRequest, fmt.Errorf("bad vertex %q", r.PathValue("v")))
		return
	}
	q := r.URL.Query()
	k := 0
	if ks := q.Get("k"); ks != "" {
		if k, err = strconv.Atoi(ks); err != nil {
			WriteError(w, http.StatusBadRequest, fmt.Errorf("bad k %q", ks))
			return
		}
	}
	spec, err := measure.Parse(q.Get("measure"), k)
	if err != nil {
		writeRequestError(w, r.Context(), err)
		return
	}
	v, err := s.vertexOf(label)
	if err != nil {
		writeRequestError(w, r.Context(), err)
		return
	}
	if spec.IsBC() {
		bc, err := s.e.ExactBCOfContext(r.Context(), v)
		if err != nil {
			writeRequestError(w, r.Context(), err)
			return
		}
		WriteJSON(w, http.StatusOK, ExactResponse{Vertex: label, BC: bc})
		return
	}
	val, err := s.e.ExactMeasureOfContext(r.Context(), spec, v)
	if err != nil {
		writeRequestError(w, r.Context(), err)
		return
	}
	resp := MeasureExactResponse{Vertex: label, Measure: spec.Kind.String(), Value: val}
	if spec.Kind == measure.KPath {
		resp.K = spec.K
	}
	WriteJSON(w, http.StatusOK, resp)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	// One snapshot for n/m/version (a concurrent SwapGraph must not
	// produce a reply pairing the new version with the old edge count).
	snap := s.e.Snapshot()
	stats := s.e.Stats()
	stats.Version = snap.Version
	WriteJSON(w, http.StatusOK, StatsResponse{
		N:     snap.Graph.N(),
		M:     snap.Graph.M(),
		Stats: stats,
	})
}
