package engine

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"bcmh/internal/core"
	"bcmh/internal/measure"
)

// TestServerEstimateMeasures pins the measure-generic estimate route:
// each non-bc measure answers 200, echoes its name, and agrees exactly
// with the direct engine call under the same options.
func TestServerEstimateMeasures(t *testing.T) {
	e, srv := newKarateServer(t)
	cases := []struct {
		name  string
		k     int
		spec  measure.Spec
		wantK int
	}{
		{name: "coverage", spec: measure.Spec{Kind: measure.Coverage}},
		{name: "kpath", k: 3, spec: measure.Spec{Kind: measure.KPath, K: 3}, wantK: 3},
		{name: "rwbc", spec: measure.Spec{Kind: measure.RWBC}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := EstimateRequest{Vertex: 0, Steps: 256, Seed: 5, Measure: tc.name, MeasureK: tc.k}
			var resp EstimateResponse
			if code := postJSON(t, srv.URL+"/estimate", req, &resp); code != http.StatusOK {
				t.Fatalf("status %d", code)
			}
			if resp.Measure != tc.name || resp.MeasureK != tc.wantK {
				t.Fatalf("measure echo %q/%d, want %q/%d", resp.Measure, resp.MeasureK, tc.name, tc.wantK)
			}
			want, err := e.EstimateMeasureContext(context.Background(), tc.spec, 0, core.Options{Steps: 256, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			if resp.Value != want.Value {
				t.Fatalf("HTTP value %v, direct %v", resp.Value, want.Value)
			}
			if resp.Value < 0 || resp.Value >= 1 {
				t.Fatalf("value %v outside [0,1)", resp.Value)
			}
		})
	}
}

// TestServerEstimateMeasureErrors pins the 400 paths of the measure
// parameters: unknown names, and a k bound on a measure that has none.
func TestServerEstimateMeasureErrors(t *testing.T) {
	_, srv := newKarateServer(t)
	var errResp map[string]string
	if code := postJSON(t, srv.URL+"/estimate", EstimateRequest{Vertex: 0, Measure: "pagerank"}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("unknown measure: status %d", code)
	}
	if errResp["error"] == "" {
		t.Fatal("error body missing")
	}
	if code := postJSON(t, srv.URL+"/estimate", EstimateRequest{Vertex: 0, Measure: "coverage", MeasureK: 4}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("k on a non-kpath measure: status %d", code)
	}
	if code := postJSON(t, srv.URL+"/estimate/batch", BatchRequest{Targets: []int64{0}, Steps: 64, Measure: "bogus"}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("batch unknown measure: status %d", code)
	}
}

// TestServerEstimateAdaptive pins the adaptive-stopping surface: the
// response carries the adaptive diagnostics, the chain stops within the
// budget, and a non-adaptive bc reply exposes none of the new fields
// (raw-body check, complementing the golden pin).
func TestServerEstimateAdaptive(t *testing.T) {
	_, srv := newKarateServer(t)
	req := EstimateRequest{Vertex: 0, Adaptive: true, Epsilon: 0.05, Delta: 0.1, MaxSteps: 1 << 20, Seed: 3}
	var resp EstimateResponse
	if code := postJSON(t, srv.URL+"/estimate", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !resp.Adaptive || resp.StepsRun <= 0 {
		t.Fatalf("adaptive diagnostics missing: %+v", resp)
	}
	if resp.StepsRun > 1<<20 {
		t.Fatalf("steps_run %d exceeds the hard budget", resp.StepsRun)
	}
	if !resp.Converged {
		t.Fatalf("adaptive chain did not converge within 2^20 steps on karate (half-width %v)", resp.EBHalfWidth)
	}

	// A plain bc request must serialize without any measure/adaptive key.
	body, err := json.Marshal(EstimateRequest{Vertex: 0, Steps: 128, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	hresp, err := http.Post(srv.URL+"/estimate", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(hresp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"measure", "measure_k", "adaptive", "steps_run", "converged", "eb_half_width"} {
		if _, present := raw[key]; present {
			t.Fatalf("plain bc reply leaked %q: %v", key, raw)
		}
	}
}

// TestServerExactMeasure pins GET /exact/{v}?measure=…: the value
// matches the engine's exact measure computation, kpath echoes its k,
// and bad parameters answer 400.
func TestServerExactMeasure(t *testing.T) {
	e, srv := newKarateServer(t)
	var resp MeasureExactResponse
	if code := getJSON(t, srv.URL+"/exact/0?measure=coverage", &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	want, err := e.ExactMeasureOfContext(context.Background(), measure.Spec{Kind: measure.Coverage}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Value != want || resp.Measure != "coverage" || resp.K != 0 {
		t.Fatalf("coverage exact %+v, want value %v", resp, want)
	}

	if code := getJSON(t, srv.URL+"/exact/0?measure=kpath&k=3", &resp); code != http.StatusOK {
		t.Fatalf("kpath status %d", code)
	}
	if resp.Measure != "kpath" || resp.K != 3 {
		t.Fatalf("kpath echo %+v", resp)
	}

	// ?measure=bc keeps the legacy reply shape.
	var legacy ExactResponse
	if code := getJSON(t, srv.URL+"/exact/0?measure=bc", &legacy); code != http.StatusOK {
		t.Fatalf("bc exact status %d", code)
	}
	exact, err := e.ExactBCOf(0)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.BC != exact {
		t.Fatalf("bc exact %v, want %v", legacy.BC, exact)
	}

	var errResp map[string]string
	if code := getJSON(t, srv.URL+"/exact/0?measure=nope", &errResp); code != http.StatusBadRequest {
		t.Fatalf("unknown measure: status %d", code)
	}
	if code := getJSON(t, srv.URL+"/exact/0?measure=kpath&k=oops", &errResp); code != http.StatusBadRequest {
		t.Fatalf("bad k: status %d", code)
	}
}

// TestServerBatchMeasure pins the batch route under a non-bc measure:
// every entry carries the measure and matches the single-estimate
// route under the derived per-target seed.
func TestServerBatchMeasure(t *testing.T) {
	_, srv := newKarateServer(t)
	req := BatchRequest{Targets: []int64{0, 33}, Seed: 11, Steps: 256, Measure: "coverage"}
	var resp BatchResponse
	if code := postJSON(t, srv.URL+"/estimate/batch", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("results %+v", resp.Results)
	}
	for i, r := range resp.Results {
		if r.Measure != "coverage" {
			t.Fatalf("entry %d measure %q", i, r.Measure)
		}
		var single EstimateResponse
		sreq := EstimateRequest{Vertex: r.Vertex, Steps: 256, Seed: r.Seed, Measure: "coverage"}
		if code := postJSON(t, srv.URL+"/estimate", sreq, &single); code != http.StatusOK {
			t.Fatalf("single replay status %d", code)
		}
		if single.Value != r.Value {
			t.Fatalf("entry %d: batch %v, single replay %v", i, r.Value, single.Value)
		}
	}
}
