package engine

import (
	"context"
	"runtime"
	"strconv"
	"sync"

	"bcmh/internal/core"
	"bcmh/internal/measure"
	"bcmh/internal/rng"
)

// BatchOptions configures EstimateBatch.
type BatchOptions struct {
	// Estimation carries the per-target estimation options. Its Seed
	// field is ignored: each target's chain seed is derived from the
	// request Seed below.
	Estimation core.Options
	// Seed is the request seed. Target r's chain seed is SeedFor(Seed,
	// r) — a deterministic function of the pair alone — so a batch is
	// reproducible and its per-target results are independent of target
	// order, duplicate grouping, and Concurrency.
	Seed uint64
	// Concurrency bounds the worker pool (default GOMAXPROCS).
	Concurrency int
	// Measure selects the centrality measure every target is estimated
	// under (the zero spec is bc, bit-identical to the pre-measure
	// batch path).
	Measure measure.Spec
}

// BatchResult pairs one requested target with its estimate, in request
// order.
type BatchResult struct {
	Target   int
	Estimate core.Estimate
}

// SeedFor returns the chain seed EstimateBatch uses for one target
// under a request seed. Exported so a single Estimate call can
// reproduce any batch entry exactly.
func SeedFor(seed uint64, target int) uint64 {
	return rng.New(seed).Split("target-" + strconv.Itoa(target)).Uint64()
}

// EstimateBatch estimates every target in targets over a worker pool,
// sharing the engine's μ-cache, result cache, and buffer pool across
// workers. Duplicate targets are dispatched once — they would use the
// same derived seed anyway, and fanning the one estimate to every
// occurrence avoids racing workers redundantly computing the same
// chain. Results come back in request order; the first estimation
// error (if any) aborts with that error.
func (e *Engine) EstimateBatch(targets []int, opts BatchOptions) ([]BatchResult, error) {
	return e.EstimateBatchContext(context.Background(), targets, opts)
}

// EstimateBatchContext is EstimateBatch under a context: cancellation
// aborts the in-flight per-target chains (each worker estimates through
// the snapshot-pinned estimation path) and stops dispatching queued
// targets, returning ctx's error. A batch that completes is
// bit-identical to EstimateBatch. The whole batch runs on the one
// graph snapshot current at entry: a SwapGraph landing mid-batch
// affects no target of it, so a batch's results are always mutually
// consistent (one version).
func (e *Engine) EstimateBatchContext(ctx context.Context, targets []int, opts BatchOptions) ([]BatchResult, error) {
	sn := e.current()
	for _, r := range targets {
		if err := sn.checkVertex(r); err != nil {
			return nil, err
		}
	}
	e.batches.Add(1)
	out := make([]BatchResult, len(targets))
	if len(targets) == 0 {
		return out, nil
	}
	// positions[r] lists every request index asking for target r; it is
	// read-only once built.
	positions := make(map[int][]int, len(targets))
	distinct := make([]int, 0, len(targets))
	for i, r := range targets {
		if _, seen := positions[r]; !seen {
			distinct = append(distinct, r)
		}
		positions[r] = append(positions[r], i)
	}
	workers := opts.Concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(distinct) {
		workers = len(distinct)
	}
	errs := make([]error, len(distinct))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for di := range work {
				r := distinct[di]
				o := opts.Estimation
				o.Seed = SeedFor(opts.Seed, r)
				est, err := e.estimateOn(ctx, sn, opts.Measure, r, o)
				if err != nil {
					errs[di] = err
					continue
				}
				for _, i := range positions[r] {
					out[i] = BatchResult{Target: r, Estimate: est}
				}
			}
		}()
	}
	done := ctx.Done()
dispatch:
	for di := range distinct {
		select {
		case work <- di:
		case <-done:
			// Stop feeding the pool; in-flight estimates abort on their
			// own cancellation checks.
			break dispatch
		}
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
