package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"bcmh/internal/core"
	"bcmh/internal/graph"
	"bcmh/internal/rng"
)

// newBigEngine builds an engine whose chains cost a real BFS per step
// (memoisation disabled), so cancellation timing is observable.
func newBigEngine(t testing.TB) *Engine {
	t.Helper()
	e, err := New(graph.BarabasiAlbert(3000, 3, rng.New(21)))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// hugeOpts is a step budget that would run for minutes uncancelled.
func hugeOpts(chains int) core.Options {
	return core.Options{Steps: 100_000, Chains: chains, Seed: 11, DisableCache: true}
}

func TestEstimateContextAbortsPromptly(t *testing.T) {
	e := newBigEngine(t)
	for _, chains := range []int{1, 4} {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		start := time.Now()
		_, err := e.EstimateContext(ctx, 0, hugeOpts(chains))
		elapsed := time.Since(start)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("chains=%d: err = %v, want context.DeadlineExceeded", chains, err)
		}
		if elapsed > 10*time.Second {
			t.Fatalf("chains=%d: cancelled estimate ran for %v", chains, elapsed)
		}
	}
	// Aborted runs must not be cached.
	if st := e.Stats(); st.Estimates != 0 || st.ResultCached != 0 {
		t.Fatalf("aborted estimates leaked into the caches: %+v", st)
	}
}

func TestEstimateBatchContextAbortsPromptly(t *testing.T) {
	e := newBigEngine(t)
	targets := make([]int, 32)
	for i := range targets {
		targets[i] = i
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.EstimateBatchContext(ctx, targets, BatchOptions{Estimation: hugeOpts(1), Seed: 2, Concurrency: 4})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancelled batch ran for %v", elapsed)
	}
}

func TestExactBCOfContextCancellableWhileMuComputes(t *testing.T) {
	// The O(nm) μ derivation behind /exact and planned-steps requests
	// must not pin a cancelled requester: the waiter returns with the
	// context error while the shared computation completes in the
	// background and still warms the cache.
	e := newBigEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := e.ExactBCOfContext(ctx, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled exact query waited %v", elapsed)
	}
	// The abandoned computation still lands in the μ-cache.
	if _, err := e.ExactBCOf(0); err != nil {
		t.Fatalf("background μ computation failed: %v", err)
	}
	if st := e.Stats(); st.MuMisses != 1 || st.MuHits != 1 {
		t.Fatalf("abandoned μ computation not shared: %+v", st)
	}
}

func TestLifecycleCancelAbortsDetachedMuComputation(t *testing.T) {
	// The detached μ computation is bounded by the engine's lifecycle
	// context (the store passes the session context): killing the
	// lifecycle mid-computation stops the O(nm) work instead of letting
	// it warm a cache nobody can reach.
	lctx, lcancel := context.WithCancel(context.Background())
	e, err := NewWithConfig(graph.BarabasiAlbert(3000, 3, rng.New(21)), Config{Lifecycle: lctx})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := e.MuStats(0)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the computation start
	lcancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("μ computation survived lifecycle cancellation")
	}
}

func TestEstimateContextCacheHitSurvivesCancelledContext(t *testing.T) {
	// A result already in the LRU is served even under a dead context:
	// the lookup costs nothing, and callers retrying after a timeout
	// should benefit from work that did complete earlier.
	e := newKarateEngine(t)
	opts := plannedOpts()
	opts.Seed = 12
	want, err := e.Estimate(0, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := e.EstimateContext(ctx, 0, opts)
	if err != nil {
		t.Fatalf("cache hit under cancelled context errored: %v", err)
	}
	if got.Value != want.Value {
		t.Fatalf("cache hit differs: %v vs %v", got.Value, want.Value)
	}
}
