package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"bcmh/internal/core"
)

func newKarateServer(t *testing.T) (*Engine, *httptest.Server) {
	t.Helper()
	e := newKarateEngine(t)
	srv := httptest.NewServer(NewServer(e))
	t.Cleanup(srv.Close)
	return e, srv
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s response: %v", url, err)
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s response: %v", url, err)
	}
	return resp.StatusCode
}

func TestServerEstimate(t *testing.T) {
	e, srv := newKarateServer(t)
	req := EstimateRequest{Vertex: 0, Epsilon: 0.05, MaxSteps: 512, Seed: 7}
	var resp EstimateResponse
	if code := postJSON(t, srv.URL+"/estimate", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	// The HTTP path must agree with the direct engine call (which is
	// a result-cache hit now).
	want, err := e.Estimate(0, core.Options{Epsilon: 0.05, MaxSteps: 512, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Value != want.Value || resp.PlannedSteps != want.PlannedSteps || resp.Vertex != 0 {
		t.Fatalf("response %+v, want value %v planned %d", resp, want.Value, want.PlannedSteps)
	}
	if resp.Seed != 7 {
		t.Fatalf("response seed %d", resp.Seed)
	}
}

func TestServerEstimateErrors(t *testing.T) {
	_, srv := newKarateServer(t)
	var errResp map[string]string
	if code := postJSON(t, srv.URL+"/estimate", EstimateRequest{Vertex: 99}, &errResp); code != http.StatusNotFound {
		t.Fatalf("out-of-range vertex: status %d", code)
	}
	if errResp["error"] == "" {
		t.Fatal("error body missing")
	}
	if code := postJSON(t, srv.URL+"/estimate", EstimateRequest{Vertex: 0, Estimator: "bogus"}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("bad estimator: status %d", code)
	}
	resp, err := http.Post(srv.URL+"/estimate", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}
}

func TestServerRejectsOversizedBudgets(t *testing.T) {
	// Explicit steps/chains bypass the planner's MaxSteps clamp, so the
	// HTTP surface must refuse budgets that would pin a worker.
	_, srv := newKarateServer(t)
	var errResp map[string]string
	if code := postJSON(t, srv.URL+"/estimate", EstimateRequest{Vertex: 0, Steps: MaxRequestSteps + 1}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("oversized steps: status %d", code)
	}
	if code := postJSON(t, srv.URL+"/estimate", EstimateRequest{Vertex: 0, Steps: 10, Chains: MaxRequestChains + 1}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("oversized chains: status %d", code)
	}
	if code := postJSON(t, srv.URL+"/estimate", EstimateRequest{Vertex: 0, MaxSteps: MaxRequestSteps * 2}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("oversized max_steps: status %d", code)
	}
	big := BatchRequest{Targets: make([]int64, MaxBatchTargets+1), Steps: 10}
	if code := postJSON(t, srv.URL+"/estimate/batch", big, &errResp); code != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d", code)
	}
}

func TestServerBatch(t *testing.T) {
	_, srv := newKarateServer(t)
	req := BatchRequest{
		Targets:     []int64{0, 33, 0, 2},
		Seed:        9,
		Concurrency: 2,
		Epsilon:     0.05,
		MaxSteps:    512,
	}
	var resp BatchResponse
	if code := postJSON(t, srv.URL+"/estimate/batch", req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	for i, r := range resp.Results {
		if r.Vertex != req.Targets[i] {
			t.Fatalf("result %d for vertex %d, want %d", i, r.Vertex, req.Targets[i])
		}
		if r.Seed != SeedFor(req.Seed, int(r.Vertex)) {
			t.Fatalf("result %d seed %d, want %d", i, r.Seed, SeedFor(req.Seed, int(r.Vertex)))
		}
	}
	// Duplicate target, same derived seed, same value.
	if resp.Results[0].Value != resp.Results[2].Value {
		t.Fatalf("duplicate targets disagree: %v vs %v", resp.Results[0].Value, resp.Results[2].Value)
	}
	// The whole batch is reproducible over HTTP.
	var again BatchResponse
	if code := postJSON(t, srv.URL+"/estimate/batch", req, &again); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for i := range resp.Results {
		if again.Results[i].Value != resp.Results[i].Value {
			t.Fatalf("replayed batch differs at %d", i)
		}
	}
}

func TestServerStats(t *testing.T) {
	e, srv := newKarateServer(t)
	if _, err := e.Estimate(0, plannedOpts()); err != nil {
		t.Fatal(err)
	}
	var resp StatsResponse
	if code := getJSON(t, srv.URL+"/stats", &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.N != 34 || resp.M != 78 {
		t.Fatalf("graph size %d/%d", resp.N, resp.M)
	}
	if resp.Estimates != 1 || resp.MuMisses != 1 {
		t.Fatalf("stats %+v", resp.Stats)
	}
}

func TestServerExactErrors(t *testing.T) {
	_, srv := newKarateServer(t)
	var errResp map[string]string
	if code := getJSON(t, srv.URL+"/exact/99", &errResp); code != http.StatusNotFound {
		t.Fatalf("out-of-range: status %d", code)
	}
	if code := getJSON(t, srv.URL+"/exact/zzz", &errResp); code != http.StatusBadRequest {
		t.Fatalf("non-numeric: status %d", code)
	}
}

func TestServerWithLabels(t *testing.T) {
	// A label table mimicking what edge-list compaction produces:
	// engine vertex i carries original label 100+i. Requests use the
	// labels; responses echo them; unknown labels are rejected.
	e := newKarateEngine(t)
	labels := make([]int64, 34)
	for i := range labels {
		labels[i] = int64(100 + i)
	}
	srv := httptest.NewServer(NewServerWithLabels(e, labels))
	defer srv.Close()

	var exact ExactResponse
	if code := getJSON(t, srv.URL+"/exact/100", &exact); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	want, err := e.ExactBCOf(0)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Vertex != 100 || exact.BC != want {
		t.Fatalf("labelled exact %+v, want vertex 100 bc %v", exact, want)
	}

	var est EstimateResponse
	req := EstimateRequest{Vertex: 133, Steps: 200, Seed: 3}
	if code := postJSON(t, srv.URL+"/estimate", req, &est); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	direct, err := e.Estimate(33, core.Options{Steps: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if est.Vertex != 133 || est.Value != direct.Value {
		t.Fatalf("labelled estimate %+v, want vertex 133 value %v", est, direct.Value)
	}

	var batch BatchResponse
	breq := BatchRequest{Targets: []int64{100, 133}, Seed: 5, Steps: 200}
	if code := postJSON(t, srv.URL+"/estimate/batch", breq, &batch); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if batch.Results[0].Vertex != 100 || batch.Results[1].Vertex != 133 {
		t.Fatalf("batch labels %+v", batch.Results)
	}

	// Engine id 0 is not a known label here; nor is an arbitrary one.
	// Unknown labels are 404s: the resource (the vertex) does not exist.
	var errResp map[string]string
	if code := getJSON(t, srv.URL+"/exact/0", &errResp); code != http.StatusNotFound {
		t.Fatalf("unknown label accepted: status %d", code)
	}
	if code := postJSON(t, srv.URL+"/estimate", EstimateRequest{Vertex: 7}, &errResp); code != http.StatusNotFound {
		t.Fatalf("unknown label accepted: status %d", code)
	}
}

func TestServerExactUsesMuCache(t *testing.T) {
	e, srv := newKarateServer(t)
	var first, second ExactResponse
	url := fmt.Sprintf("%s/exact/%d", srv.URL, 0)
	if code := getJSON(t, url, &first); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if code := getJSON(t, url, &second); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if first.BC != second.BC {
		t.Fatalf("exact value unstable: %v vs %v", first.BC, second.BC)
	}
	st := e.Stats()
	if st.MuMisses != 1 || st.MuHits != 1 {
		t.Fatalf("second exact query recomputed μ: %+v", st)
	}
}

// TestServerMuxErrorsAreJSON pins the {"error": ...} shape on the
// replies the stock ServeMux would write as plain text: 404 for an
// unknown route, 405 (with Allow preserved) for a method mismatch.
func TestServerMuxErrorsAreJSON(t *testing.T) {
	_, srv := newKarateServer(t)

	var errBody struct {
		Error string `json:"error"`
	}
	if code := getJSON(t, srv.URL+"/nosuch", &errBody); code != http.StatusNotFound {
		t.Fatalf("GET /nosuch: status %d, want 404", code)
	}
	if errBody.Error == "" {
		t.Fatal("GET /nosuch: empty error message")
	}

	resp, err := http.Get(srv.URL + "/estimate") // registered as POST-only
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /estimate: status %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "POST" {
		t.Fatalf("GET /estimate: Allow %q, want POST", allow)
	}
	errBody.Error = ""
	if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil {
		t.Fatalf("GET /estimate: non-JSON 405 body: %v", err)
	}
	if errBody.Error == "" {
		t.Fatal("GET /estimate: empty error message in 405 body")
	}
}
