package engine

import (
	"errors"
	"testing"

	"bcmh/internal/brandes"
	"bcmh/internal/core"
	"bcmh/internal/graph"
)

func mustOverlay(t *testing.T, g *graph.Graph, edits []graph.Edit) (*graph.Graph, *graph.EditReport) {
	t.Helper()
	next, rep, err := graph.ApplyEditsOverlay(g, edits)
	if err != nil {
		t.Fatal(err)
	}
	return next, rep
}

// TestStreamSwapReusesPoolAndRetainsMu pins the fast path's two
// promises: the buffer pool object survives the swap (no rebuild), and
// μ retention matches SwapGraph's block rule (the tracker is exact on
// its first batch, when the forest is fresh).
func TestStreamSwapReusesPoolAndRetainsMu(t *testing.T) {
	g := twoRingsGraph(8, 8) // A = 0..7, cut = 7, B = 7..14
	e, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	const inA, inB = 2, 10
	msA, err := e.MuStats(inA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.MuStats(inB); err != nil {
		t.Fatal(err)
	}
	missesBefore := e.Stats().MuMisses
	pool := e.Pool()

	next, rep := mustOverlay(t, e.Graph(), []graph.Edit{{Op: graph.EditAdd, U: 8, V: 12}})
	swap, err := e.StreamSwap(next, rep.Pairs)
	if err != nil {
		t.Fatal(err)
	}
	if swap.Version != 1 || e.Version() != 1 || e.Graph() != next {
		t.Fatalf("stream swap not installed: %+v, serving %d", swap, e.Version())
	}
	if e.Pool() != pool {
		t.Fatal("StreamSwap rebuilt the buffer pool; the fast path must carry it over")
	}
	if swap.MuRetained != 1 || swap.MuInvalidated != 1 {
		t.Fatalf("retained/invalidated = %d/%d, want 1/1", swap.MuRetained, swap.MuInvalidated)
	}

	// The ring-A entry serves without recomputation and stays exact.
	msA2, err := e.MuStats(inA)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().MuMisses; got != missesBefore {
		t.Fatalf("retained μ entry recomputed: misses %d -> %d", missesBefore, got)
	}
	if msA2 != msA {
		t.Fatalf("retained μ entry changed: %+v vs %+v", msA2, msA)
	}
	wantA := brandes.BCOfVertexExact(next, inA)
	if diff := msA2.BC - wantA; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("retained BC(%d) = %v, exact on new graph = %v", inA, msA2.BC, wantA)
	}
	// The ring-B entry recomputes against the overlay graph.
	msB2, err := e.MuStats(inB)
	if err != nil {
		t.Fatal(err)
	}
	wantB := brandes.BCOfVertexExact(next, inB)
	if diff := msB2.BC - wantB; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("recomputed BC(%d) = %v, exact on new graph = %v", inB, msB2.BC, wantB)
	}

	// Estimates on the streamed snapshot are bit-identical to a fresh
	// engine over the same logical graph.
	opts := core.Options{Steps: 2048, Seed: 11}
	got, err := e.Estimate(inB, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(next.Compact())
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Estimate(inB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != want.Value {
		t.Fatalf("streamed estimate %v != fresh-engine reference %v", got.Value, want.Value)
	}
}

// TestStreamSwapChained walks several overlay generations through one
// engine and pool, checking exactness at every step.
func TestStreamSwapChained(t *testing.T) {
	e, err := New(twoRingsGraph(7, 7))
	if err != nil {
		t.Fatal(err)
	}
	pool := e.Pool()
	edits := [][2]int{{7, 9}, {8, 10}, {9, 11}, {10, 12}}
	for gen, uv := range edits {
		cur := e.Graph()
		next, rep := mustOverlay(t, cur, []graph.Edit{{Op: graph.EditAdd, U: uv[0], V: uv[1]}})
		if _, err := e.StreamSwap(next, rep.Pairs); err != nil {
			t.Fatalf("gen %d: %v", gen, err)
		}
		if e.Pool() != pool {
			t.Fatalf("gen %d: pool replaced", gen)
		}
		for _, r := range []int{2, 9} {
			got, err := e.ExactBCOf(r)
			if err != nil {
				t.Fatal(err)
			}
			want := brandes.BCOfVertexExact(next, r)
			if diff := got - want; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("gen %d: ExactBCOf(%d) = %v, want %v", gen, r, got, want)
			}
		}
	}
}

// TestSwapGraphOverlayDescendantReusesPool: the classic SwapGraph entry
// point also keeps the pool when handed an overlay descendant (the two
// entry points share the storage test, not the affected-set machinery).
func TestSwapGraphOverlayDescendantReusesPool(t *testing.T) {
	e, err := New(twoRingsGraph(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	pool := e.Pool()
	next, rep := mustOverlay(t, e.Graph(), []graph.Edit{{Op: graph.EditAdd, U: 8, V: 12}})
	if _, err := e.SwapGraph(next, rep.Pairs); err != nil {
		t.Fatal(err)
	}
	if e.Pool() != pool {
		t.Fatal("SwapGraph should reuse the pool for an overlay descendant")
	}
	// A rebuilt CSR drops it.
	rebuilt, rep2 := mustApply(t, next.Compact(), []graph.Edit{{Op: graph.EditAdd, U: 9, V: 13}})
	if _, err := e.SwapGraph(rebuilt, rep2.Pairs); err != nil {
		t.Fatal(err)
	}
	if e.Pool() == pool {
		t.Fatal("SwapGraph must rebuild the pool for a fresh CSR")
	}
}

// TestStreamSwapValidation pins the fast path's preconditions.
func TestStreamSwapValidation(t *testing.T) {
	e, err := New(twoRingsGraph(6, 6))
	if err != nil {
		t.Fatal(err)
	}
	g := e.Graph()
	// A rebuilt CSR is not an overlay descendant.
	rebuilt, _ := mustApply(t, g, []graph.Edit{{Op: graph.EditAdd, U: 0, V: 2}})
	if _, err := e.StreamSwap(rebuilt, [][2]int{{0, 2}}); err == nil {
		t.Fatal("StreamSwap accepted a rebuilt CSR")
	}
	if _, err := e.StreamSwap(nil, nil); err == nil {
		t.Fatal("StreamSwap accepted a nil graph")
	}
	// Version must advance: install an overlay bump, then offer it again.
	next, rep := mustOverlay(t, g, []graph.Edit{{Op: graph.EditAdd, U: 0, V: 2}})
	if _, err := e.StreamSwap(next, rep.Pairs); err != nil {
		t.Fatal(err)
	}
	if _, err := e.StreamSwap(next, rep.Pairs); !errors.Is(err, ErrVersionRegression) {
		t.Fatalf("replayed version not rejected: %v", err)
	}
	if e.Version() != 1 {
		t.Fatalf("failed stream swaps moved the version to %d", e.Version())
	}
}

// TestInstallCompacted pins the compaction handoff: same version, same
// pool, μ-cache intact, and later stream batches chain off the new
// storage.
func TestInstallCompacted(t *testing.T) {
	e, err := New(twoRingsGraph(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	next, rep := mustOverlay(t, e.Graph(), []graph.Edit{{Op: graph.EditAdd, U: 8, V: 12}})
	if _, err := e.StreamSwap(next, rep.Pairs); err != nil {
		t.Fatal(err)
	}
	if _, err := e.MuStats(2); err != nil {
		t.Fatal(err)
	}
	missesBefore := e.Stats().MuMisses
	pool := e.Pool()

	c := e.Graph().Compact()
	// Wrong version is refused.
	stale := twoRingsGraph(8, 8)
	if err := e.InstallCompacted(stale); err == nil {
		t.Fatal("InstallCompacted accepted a version mismatch")
	}
	if err := e.InstallCompacted(c); err != nil {
		t.Fatal(err)
	}
	if e.Version() != 1 || e.Graph() != c {
		t.Fatal("compacted graph not installed at the serving version")
	}
	if e.Pool() != pool {
		t.Fatal("InstallCompacted must keep the buffer pool")
	}
	if _, err := e.MuStats(2); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().MuMisses; got != missesBefore {
		t.Fatalf("μ-cache lost across compaction: misses %d -> %d", missesBefore, got)
	}

	// The stream keeps flowing on the compacted storage.
	next2, rep2 := mustOverlay(t, c, []graph.Edit{{Op: graph.EditAdd, U: 9, V: 13}})
	if _, err := e.StreamSwap(next2, rep2.Pairs); err != nil {
		t.Fatal(err)
	}
	got, err := e.ExactBCOf(10)
	if err != nil {
		t.Fatal(err)
	}
	want := brandes.BCOfVertexExact(next2, 10)
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("post-compaction ExactBCOf = %v, want %v", got, want)
	}
}
