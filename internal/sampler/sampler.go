// Package sampler implements the prior betweenness estimators the paper
// compares against (§3.2): uniform source sampling (Bader et al. [2]),
// distance-proportional source sampling and the exact-optimal oracle
// sampler (Chehreghani [13]), shortest-path pair sampling
// (Riondato–Kornaropoulos [30]), and a bidirectional-BFS path sampler in
// the spirit of KADABRA [7].
//
// Budget semantics: every estimator's `samples` argument counts
// traversal-shaped units of work — one BFS/Dijkstra + dependency
// accumulation for the source samplers, one path-sampling traversal for
// the pair samplers — so an equal-budget comparison (experiment F1) is
// an equal-work comparison to within constant factors, with bb-BFS's
// cheaper traversals measured separately (T7).
//
// All estimates target the paper's Eq. 1 normalisation: BC(v) ∈ [0,1].
package sampler

import (
	"fmt"

	"bcmh/internal/brandes"
	"bcmh/internal/graph"
	"bcmh/internal/rng"
	"bcmh/internal/sssp"
)

// PointEstimator estimates the betweenness of one fixed target vertex.
type PointEstimator interface {
	// Name identifies the estimator in experiment tables.
	Name() string
	// Estimate returns an estimate of BC(target) using the given number
	// of samples and randomness source.
	Estimate(samples int, r *rng.RNG) float64
}

// AllEstimator estimates betweenness for every vertex at once.
type AllEstimator interface {
	// EstimateAll returns a length-n estimate vector.
	EstimateAll(samples int, r *rng.RNG) []float64
}

// UniformSource is the uniform source sampler of Bader et al. [2]: draw
// sources uniformly, average δ_s•(target)/(n−1). Unbiased; Hoeffding
// gives its (ε,δ) sample size (the f-values lie in [0,1]).
type UniformSource struct {
	g      *graph.Graph
	c      *sssp.Computer
	delta  []float64
	target int
}

// NewUniformSource returns a uniform source sampler for BC(target).
func NewUniformSource(g *graph.Graph, target int) (*UniformSource, error) {
	if target < 0 || target >= g.N() {
		return nil, fmt.Errorf("sampler: target %d out of range", target)
	}
	return &UniformSource{
		g:      g,
		c:      sssp.NewComputer(g),
		delta:  make([]float64, g.N()),
		target: target,
	}, nil
}

// Name implements PointEstimator.
func (u *UniformSource) Name() string { return "uniform[2]" }

// Estimate implements PointEstimator.
func (u *UniformSource) Estimate(samples int, r *rng.RNG) float64 {
	if samples <= 0 {
		return 0
	}
	n := u.g.N()
	var sum float64
	for i := 0; i < samples; i++ {
		s := r.Intn(n)
		sum += brandes.DependencyOnTarget(u.c, u.delta, s, u.target) / float64(n-1)
	}
	return sum / float64(samples)
}

// EstimateAll implements AllEstimator: each sampled source's full
// dependency vector updates every vertex, so one budget estimates all
// of V(G) — the form used for rankings (experiment T6).
func (u *UniformSource) EstimateAll(samples int, r *rng.RNG) []float64 {
	n := u.g.N()
	out := make([]float64, n)
	if samples <= 0 {
		return out
	}
	for i := 0; i < samples; i++ {
		s := r.Intn(n)
		spd := u.c.Run(s)
		brandes.Accumulate(u.g, spd, u.delta)
		for v := 0; v < n; v++ {
			out[v] += u.delta[v]
		}
	}
	scale := 1 / (float64(samples) * float64(n-1))
	for v := range out {
		out[v] *= scale
	}
	return out
}

// DistanceSource is the distance-proportional sampler of Chehreghani
// [13]: sources are drawn with P[s] ∝ d(target, s) and each sample is
// importance-weighted back to an unbiased estimate of BC(target). The
// intuition is that far-away sources carry more dependency mass on
// average than near ones, so this lowers variance versus uniform on
// high-diameter graphs.
type DistanceSource struct {
	g       *graph.Graph
	c       *sssp.Computer
	delta   []float64
	target  int
	dist    []float64 // d(target, ·)
	total   float64   // Σ_s d(target, s)
	alias   *rng.Alias
	nFactor float64 // 1/(n(n-1))
}

// NewDistanceSource returns a distance-proportional sampler for
// BC(target). The graph must be connected (the sampler's distribution
// is undefined on unreachable sources).
func NewDistanceSource(g *graph.Graph, target int) (*DistanceSource, error) {
	n := g.N()
	if target < 0 || target >= n {
		return nil, fmt.Errorf("sampler: target %d out of range", target)
	}
	c := sssp.NewComputer(g)
	spd := c.Run(target)
	d := &DistanceSource{
		g:       g,
		c:       c,
		delta:   make([]float64, n),
		target:  target,
		dist:    append([]float64(nil), spd.Dist...),
		nFactor: 1 / (float64(n) * float64(n-1)),
	}
	weights := make([]float64, n)
	for v := 0; v < n; v++ {
		if spd.Dist[v] == sssp.Unreachable {
			return nil, fmt.Errorf("sampler: graph disconnected (vertex %d unreachable from target %d)", v, target)
		}
		weights[v] = spd.Dist[v] // 0 at the target itself
		d.total += weights[v]
	}
	if d.total == 0 {
		return nil, fmt.Errorf("sampler: degenerate graph (all distances zero)")
	}
	d.alias = rng.NewAlias(weights)
	return d, nil
}

// Name implements PointEstimator.
func (d *DistanceSource) Name() string { return "distance[13]" }

// Estimate implements PointEstimator.
func (d *DistanceSource) Estimate(samples int, r *rng.RNG) float64 {
	if samples <= 0 {
		return 0
	}
	var sum float64
	for i := 0; i < samples; i++ {
		s := d.alias.Draw(r)
		dep := brandes.DependencyOnTarget(d.c, d.delta, s, d.target)
		// Importance weight: δ_s(r) / (n(n-1) P[s]), P[s] = d(r,s)/total.
		sum += dep * d.total / d.dist[s] * d.nFactor
	}
	return sum / float64(samples)
}

// OptimalOracle is the zero-variance sampler of [13]: sources drawn
// with P[s] ∝ δ_s•(target). Building it requires the exact dependency
// column (O(nm)), whose sum already is the answer — the paper's point
// is precisely that this distribution is unattainable, motivating the
// MH chain that converges to it. It exists here as ground-truth
// machinery: every sample must equal BC(target) exactly.
type OptimalOracle struct {
	target int
	bc     float64
	alias  *rng.Alias
	dep    []float64
	total  float64
	n      int
}

// NewOptimalOracle precomputes the exact dependency column for target.
func NewOptimalOracle(g *graph.Graph, target int) (*OptimalOracle, error) {
	n := g.N()
	if target < 0 || target >= n {
		return nil, fmt.Errorf("sampler: target %d out of range", target)
	}
	dep := brandes.DependencyVector(g, target)
	var total float64
	for _, v := range dep {
		total += v
	}
	o := &OptimalOracle{
		target: target,
		dep:    dep,
		total:  total,
		n:      n,
		bc:     total / (float64(n) * float64(n-1)),
	}
	if total > 0 {
		o.alias = rng.NewAlias(dep)
	}
	return o, nil
}

// Name implements PointEstimator.
func (o *OptimalOracle) Name() string { return "optimal[13]" }

// BC returns the exact betweenness the oracle was built from.
func (o *OptimalOracle) BC() float64 { return o.bc }

// Dependencies exposes the exact dependency column δ_·•(target); the
// experiments reuse it for μ(r) and bias ground truth.
func (o *OptimalOracle) Dependencies() []float64 { return o.dep }

// Estimate implements PointEstimator. Every sample evaluates the [13]
// estimator δ_s/(n(n-1)P[s]) at P[s] = δ_s/total, which is constant —
// the "error 0" property of optimal sampling.
func (o *OptimalOracle) Estimate(samples int, r *rng.RNG) float64 {
	if samples <= 0 || o.alias == nil {
		return o.bc // BC = 0 graphs: the estimate is exactly 0 too
	}
	var sum float64
	for i := 0; i < samples; i++ {
		s := o.alias.Draw(r)
		sum += o.dep[s] / (float64(o.n) * float64(o.n-1)) * o.total / o.dep[s]
	}
	return sum / float64(samples)
}

// RK is the Riondato–Kornaropoulos shortest-path sampler [30]: draw a
// uniform ordered pair (s,t), sample one uniform shortest s→t path, and
// credit 1/samples to every interior vertex. E[estimate_v] = BC(v)
// under Eq. 1's normalisation. The VC-dimension sample size for a
// uniform guarantee over all vertices is stats.RKSampleSize.
type RK struct {
	g      *graph.Graph
	c      *sssp.Computer
	target int
}

// NewRK returns an RK sampler for BC(target) on g.
func NewRK(g *graph.Graph, target int) (*RK, error) {
	if target < 0 || target >= g.N() {
		return nil, fmt.Errorf("sampler: target %d out of range", target)
	}
	return &RK{g: g, c: sssp.NewComputer(g), target: target}, nil
}

// Name implements PointEstimator.
func (k *RK) Name() string { return "RK[30]" }

// Estimate implements PointEstimator.
func (k *RK) Estimate(samples int, r *rng.RNG) float64 {
	if samples <= 0 {
		return 0
	}
	hits := 0
	n := k.g.N()
	for i := 0; i < samples; i++ {
		s := r.Intn(n)
		t := r.Intn(n)
		if s == t {
			continue // (s,s) carries no interior vertices; keep budget accounting simple
		}
		spd := k.c.Run(s)
		path := sssp.SamplePath(k.g, spd, t, r)
		if len(path) > 2 {
			for _, v := range path[1 : len(path)-1] {
				if v == k.target {
					hits++
					break
				}
			}
		}
	}
	// Correct for the 1/n chance of drawing s == t, which the estimator
	// treats as "no interior vertex": scale back to pairs s≠t.
	return float64(hits) / float64(samples) * float64(n) / float64(n-1)
}

// EstimateAll implements AllEstimator.
func (k *RK) EstimateAll(samples int, r *rng.RNG) []float64 {
	n := k.g.N()
	out := make([]float64, n)
	if samples <= 0 {
		return out
	}
	for i := 0; i < samples; i++ {
		s := r.Intn(n)
		t := r.Intn(n)
		if s == t {
			continue
		}
		spd := k.c.Run(s)
		path := sssp.SamplePath(k.g, spd, t, r)
		if len(path) > 2 {
			for _, v := range path[1 : len(path)-1] {
				out[v]++
			}
		}
	}
	scale := float64(n) / (float64(samples) * float64(n-1))
	for v := range out {
		out[v] *= scale
	}
	return out
}

// KadabraLite replaces RK's full-BFS path sampling with balanced
// bidirectional BFS, the core trick of KADABRA [7]. Identical estimator
// distribution, far less work per sample on low-diameter graphs; the
// adaptive stopping rule of the full KADABRA is out of scope (the paper
// compares sampling strategies, not stopping rules).
type KadabraLite struct {
	g      *graph.Graph
	bb     *sssp.BBPathSampler
	target int
}

// NewKadabraLite returns a bb-BFS pair sampler for BC(target) on the
// unweighted graph g.
func NewKadabraLite(g *graph.Graph, target int) (*KadabraLite, error) {
	if target < 0 || target >= g.N() {
		return nil, fmt.Errorf("sampler: target %d out of range", target)
	}
	if g.Weighted() {
		return nil, fmt.Errorf("sampler: KadabraLite requires an unweighted graph")
	}
	return &KadabraLite{g: g, bb: sssp.NewBBPathSampler(g), target: target}, nil
}

// Name implements PointEstimator.
func (k *KadabraLite) Name() string { return "bb-BFS[7]" }

// EdgesTouched reports total adjacency entries scanned so far, the work
// measure T7 compares against full-BFS samplers.
func (k *KadabraLite) EdgesTouched() int { return k.bb.EdgesTouched }

// Estimate implements PointEstimator.
func (k *KadabraLite) Estimate(samples int, r *rng.RNG) float64 {
	if samples <= 0 {
		return 0
	}
	hits := 0
	n := k.g.N()
	for i := 0; i < samples; i++ {
		s := r.Intn(n)
		t := r.Intn(n)
		if s == t {
			continue
		}
		path := k.bb.Sample(s, t, r)
		if len(path) > 2 {
			for _, v := range path[1 : len(path)-1] {
				if v == k.target {
					hits++
					break
				}
			}
		}
	}
	return float64(hits) / float64(samples) * float64(n) / float64(n-1)
}

// EstimateAll implements AllEstimator.
func (k *KadabraLite) EstimateAll(samples int, r *rng.RNG) []float64 {
	n := k.g.N()
	out := make([]float64, n)
	if samples <= 0 {
		return out
	}
	for i := 0; i < samples; i++ {
		s := r.Intn(n)
		t := r.Intn(n)
		if s == t {
			continue
		}
		path := k.bb.Sample(s, t, r)
		if len(path) > 2 {
			for _, v := range path[1 : len(path)-1] {
				out[v]++
			}
		}
	}
	scale := float64(n) / (float64(samples) * float64(n-1))
	for v := range out {
		out[v] *= scale
	}
	return out
}
