package sampler

import (
	"math"
	"testing"

	"bcmh/internal/brandes"
	"bcmh/internal/graph"
	"bcmh/internal/rng"
	"bcmh/internal/stats"
)

// testTargets returns interesting vertices (top BC, median, low) of g.
func testTargets(g *graph.Graph) (exact []float64, targets []int) {
	exact = brandes.BC(g)
	top, median := 0, 0
	for v := range exact {
		if exact[v] > exact[top] {
			top = v
		}
	}
	med := stats.Median(exact)
	bestGap := math.Inf(1)
	for v := range exact {
		if gap := math.Abs(exact[v] - med); gap < bestGap {
			bestGap = gap
			median = v
		}
	}
	return exact, []int{top, median}
}

func TestUniformSourceConverges(t *testing.T) {
	g := graph.BarabasiAlbert(300, 3, rng.New(1))
	exact, targets := testTargets(g)
	for _, tgt := range targets {
		u, err := NewUniformSource(g, tgt)
		if err != nil {
			t.Fatal(err)
		}
		est := u.Estimate(3000, rng.New(2))
		if math.Abs(est-exact[tgt]) > 0.02+0.25*exact[tgt] {
			t.Fatalf("uniform target %d: est %v exact %v", tgt, est, exact[tgt])
		}
	}
}

func TestUniformSourceUnbiased(t *testing.T) {
	// Mean over many small-budget runs approaches exact: unbiasedness.
	g := graph.KarateClub()
	exact := brandes.BC(g)
	tgt := 0
	u, err := NewUniformSource(g, tgt)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	var acc stats.Welford
	for rep := 0; rep < 400; rep++ {
		acc.Add(u.Estimate(5, r))
	}
	if math.Abs(acc.Mean()-exact[tgt]) > 4*acc.StdErr()+1e-9 {
		t.Fatalf("uniform bias: mean %v exact %v (stderr %v)", acc.Mean(), exact[tgt], acc.StdErr())
	}
}

func TestUniformSourceEstimateAll(t *testing.T) {
	g := graph.KarateClub()
	exact := brandes.BC(g)
	u, _ := NewUniformSource(g, 0)
	est := u.EstimateAll(2000, rng.New(5))
	if stats.MeanAbsError(est, exact) > 0.01 {
		t.Fatalf("EstimateAll MAE %v", stats.MeanAbsError(est, exact))
	}
	// Sampling all n sources repeatedly should correlate strongly in rank.
	if stats.Spearman(est, exact) < 0.95 {
		t.Fatalf("EstimateAll rank correlation %v", stats.Spearman(est, exact))
	}
}

func TestDistanceSourceConverges(t *testing.T) {
	g := graph.Grid(12, 12) // high diameter: the regime [13] targets
	exact := brandes.BC(g)
	tgt := 5*12 + 6 // central-ish vertex
	d, err := NewDistanceSource(g, tgt)
	if err != nil {
		t.Fatal(err)
	}
	est := d.Estimate(4000, rng.New(7))
	if math.Abs(est-exact[tgt]) > 0.02+0.25*exact[tgt] {
		t.Fatalf("distance: est %v exact %v", est, exact[tgt])
	}
}

func TestDistanceSourceUnbiased(t *testing.T) {
	g := graph.KarateClub()
	exact := brandes.BC(g)
	tgt := 2
	d, err := NewDistanceSource(g, tgt)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	var acc stats.Welford
	for rep := 0; rep < 400; rep++ {
		acc.Add(d.Estimate(5, r))
	}
	if math.Abs(acc.Mean()-exact[tgt]) > 4*acc.StdErr()+1e-9 {
		t.Fatalf("distance bias: mean %v exact %v (stderr %v)", acc.Mean(), exact[tgt], acc.StdErr())
	}
}

func TestDistanceSourceRejectsDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if _, err := NewDistanceSource(b.MustBuild(), 0); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestOptimalOracleZeroVariance(t *testing.T) {
	// The [13] optimal sampler computes BC exactly with every sample —
	// the paper's §4.1 claim verbatim.
	g := graph.KarateClub()
	exact := brandes.BC(g)
	for _, tgt := range []int{0, 8, 33} {
		o, err := NewOptimalOracle(g, tgt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(o.BC()-exact[tgt]) > 1e-12 {
			t.Fatalf("oracle BC %v exact %v", o.BC(), exact[tgt])
		}
		r := rng.New(13)
		for _, k := range []int{1, 2, 10} {
			if got := o.Estimate(k, r); math.Abs(got-exact[tgt]) > 1e-12 {
				t.Fatalf("oracle estimate with %d samples: %v want %v", k, got, exact[tgt])
			}
		}
	}
}

func TestOptimalOracleZeroBCVertex(t *testing.T) {
	// A star leaf has BC 0 and an all-zero dependency column.
	o, err := NewOptimalOracle(graph.Star(6), 3)
	if err != nil {
		t.Fatal(err)
	}
	if o.BC() != 0 || o.Estimate(10, rng.New(1)) != 0 {
		t.Fatalf("zero-BC oracle: %v / %v", o.BC(), o.Estimate(10, rng.New(1)))
	}
	if len(o.Dependencies()) != 6 {
		t.Fatal("dependencies not exposed")
	}
}

func TestRKConverges(t *testing.T) {
	g := graph.BarabasiAlbert(300, 3, rng.New(17))
	exact, targets := testTargets(g)
	for _, tgt := range targets {
		k, err := NewRK(g, tgt)
		if err != nil {
			t.Fatal(err)
		}
		est := k.Estimate(6000, rng.New(19))
		if math.Abs(est-exact[tgt]) > 0.02+0.3*exact[tgt] {
			t.Fatalf("RK target %d: est %v exact %v", tgt, est, exact[tgt])
		}
	}
}

func TestRKUnbiased(t *testing.T) {
	g := graph.KarateClub()
	exact := brandes.BC(g)
	tgt := 0
	k, _ := NewRK(g, tgt)
	r := rng.New(23)
	var acc stats.Welford
	for rep := 0; rep < 500; rep++ {
		acc.Add(k.Estimate(20, r))
	}
	if math.Abs(acc.Mean()-exact[tgt]) > 4*acc.StdErr()+1e-9 {
		t.Fatalf("RK bias: mean %v exact %v (stderr %v)", acc.Mean(), exact[tgt], acc.StdErr())
	}
}

func TestRKEstimateAll(t *testing.T) {
	g := graph.KarateClub()
	exact := brandes.BC(g)
	k, _ := NewRK(g, 0)
	est := k.EstimateAll(20000, rng.New(29))
	if stats.MeanAbsError(est, exact) > 0.01 {
		t.Fatalf("RK EstimateAll MAE %v", stats.MeanAbsError(est, exact))
	}
}

func TestKadabraLiteMatchesRK(t *testing.T) {
	// Same estimator through bb-BFS sampling: distributions agree.
	g := graph.BarabasiAlbert(200, 3, rng.New(31))
	exact := brandes.BC(g)
	tgt := 0
	for v := range exact {
		if exact[v] > exact[tgt] {
			tgt = v
		}
	}
	kl, err := NewKadabraLite(g, tgt)
	if err != nil {
		t.Fatal(err)
	}
	est := kl.Estimate(6000, rng.New(37))
	if math.Abs(est-exact[tgt]) > 0.02+0.3*exact[tgt] {
		t.Fatalf("bb-BFS est %v exact %v", est, exact[tgt])
	}
	if kl.EdgesTouched() == 0 {
		t.Fatal("work accounting missing")
	}
}

func TestKadabraLiteEstimateAll(t *testing.T) {
	g := graph.KarateClub()
	exact := brandes.BC(g)
	kl, _ := NewKadabraLite(g, 0)
	est := kl.EstimateAll(20000, rng.New(41))
	if stats.MeanAbsError(est, exact) > 0.01 {
		t.Fatalf("bb-BFS EstimateAll MAE %v", stats.MeanAbsError(est, exact))
	}
}

func TestKadabraLiteRejectsWeighted(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddWeightedEdge(0, 1, 2)
	b.AddWeightedEdge(1, 2, 2)
	if _, err := NewKadabraLite(b.MustBuild(), 0); err == nil {
		t.Fatal("weighted graph accepted")
	}
}

func TestConstructorsRejectBadTarget(t *testing.T) {
	g := graph.Path(4)
	if _, err := NewUniformSource(g, -1); err == nil {
		t.Fatal("uniform accepted bad target")
	}
	if _, err := NewDistanceSource(g, 99); err == nil {
		t.Fatal("distance accepted bad target")
	}
	if _, err := NewOptimalOracle(g, 99); err == nil {
		t.Fatal("oracle accepted bad target")
	}
	if _, err := NewRK(g, -3); err == nil {
		t.Fatal("RK accepted bad target")
	}
	if _, err := NewKadabraLite(g, 99); err == nil {
		t.Fatal("kadabra accepted bad target")
	}
}

func TestZeroSampleBudgets(t *testing.T) {
	g := graph.Path(5)
	u, _ := NewUniformSource(g, 2)
	if u.Estimate(0, rng.New(1)) != 0 {
		t.Fatal("zero budget should estimate 0")
	}
	k, _ := NewRK(g, 2)
	if k.Estimate(0, rng.New(1)) != 0 {
		t.Fatal("zero budget should estimate 0")
	}
	all := k.EstimateAll(0, rng.New(1))
	for _, v := range all {
		if v != 0 {
			t.Fatal("zero budget EstimateAll should be zeros")
		}
	}
}

func TestWeightedGraphSourceSamplers(t *testing.T) {
	// Uniform and distance samplers must work on weighted graphs
	// (Dijkstra SPDs under the hood).
	g := graph.WithUniformWeights(graph.Grid(8, 8), 1, 5, rng.New(43))
	exact := brandes.BC(g)
	tgt := 3*8 + 4
	u, err := NewUniformSource(g, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if est := u.Estimate(3000, rng.New(47)); math.Abs(est-exact[tgt]) > 0.02+0.3*exact[tgt] {
		t.Fatalf("weighted uniform est %v exact %v", est, exact[tgt])
	}
	d, err := NewDistanceSource(g, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if est := d.Estimate(3000, rng.New(53)); math.Abs(est-exact[tgt]) > 0.02+0.3*exact[tgt] {
		t.Fatalf("weighted distance est %v exact %v", est, exact[tgt])
	}
}

func TestEstimatorNames(t *testing.T) {
	g := graph.Path(4)
	u, _ := NewUniformSource(g, 1)
	d, _ := NewDistanceSource(g, 1)
	o, _ := NewOptimalOracle(g, 1)
	k, _ := NewRK(g, 1)
	kl, _ := NewKadabraLite(g, 1)
	names := map[string]bool{}
	for _, e := range []PointEstimator{u, d, o, k, kl} {
		if e.Name() == "" {
			t.Fatal("empty estimator name")
		}
		if names[e.Name()] {
			t.Fatalf("duplicate estimator name %q", e.Name())
		}
		names[e.Name()] = true
	}
}

func BenchmarkUniformSample(b *testing.B) {
	g := graph.BarabasiAlbert(5000, 3, rng.New(1))
	u, _ := NewUniformSource(g, 0)
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Estimate(1, r)
	}
}

func BenchmarkRKSample(b *testing.B) {
	g := graph.BarabasiAlbert(5000, 3, rng.New(1))
	k, _ := NewRK(g, 0)
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Estimate(1, r)
	}
}

func BenchmarkKadabraSample(b *testing.B) {
	g := graph.BarabasiAlbert(5000, 3, rng.New(1))
	k, _ := NewKadabraLite(g, 0)
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Estimate(1, r)
	}
}
