package sampler

import (
	"fmt"
	"math"

	"bcmh/internal/brandes"
	"bcmh/internal/graph"
	"bcmh/internal/rng"
	"bcmh/internal/sssp"
	"bcmh/internal/stats"
)

// Adaptive is a progressive uniform source sampler with an empirical
// Bernstein stopping rule, in the spirit of ABRA (Riondato & Upfal
// [31]): rather than fixing the sample size a priori from a worst-case
// bound, it draws until the data itself certifies the target accuracy.
// Each sample is a uniform source's dependency statistic
// f(s) = δ_s•(r)/(n−1) ∈ [0,1]; after t samples the empirical
// Bernstein deviation bound
//
//	rad(t) = sqrt(2·V̂_t·ln(3/δ_t)/t) + 3·ln(3/δ_t)/t
//
// with δ_t = δ/(t(t+1)) (union bound over stopping times) guarantees
// P[|mean − BC(r)| > rad(t)] ≤ δ simultaneously for every t, so
// stopping at the first t with rad(t) ≤ ε yields an (ε,δ)-estimate.
// Low-variance targets stop far earlier than the Hoeffding-planned
// budget — the adaptivity ABRA [31] and KADABRA [7] made standard.
type Adaptive struct {
	g      *graph.Graph
	c      *sssp.Computer
	delta  []float64
	target int
}

// NewAdaptive returns an adaptive sampler for BC(target).
func NewAdaptive(g *graph.Graph, target int) (*Adaptive, error) {
	if target < 0 || target >= g.N() {
		return nil, fmt.Errorf("sampler: target %d out of range", target)
	}
	return &Adaptive{
		g:      g,
		c:      sssp.NewComputer(g),
		delta:  make([]float64, g.N()),
		target: target,
	}, nil
}

// Name implements PointEstimator-style labelling.
func (a *Adaptive) Name() string { return "adaptive[31]" }

// AdaptiveResult reports the estimate and how much work certification
// took.
type AdaptiveResult struct {
	// Estimate is the sample mean at stopping time.
	Estimate float64
	// Samples is the number of traversals drawn.
	Samples int
	// Radius is the certified deviation bound at stopping time
	// (≤ eps unless MaxSamples hit first).
	Radius float64
	// Certified reports whether the eps target was met before
	// MaxSamples.
	Certified bool
}

// Run draws until the empirical Bernstein radius is ≤ eps (with
// confidence 1−delta) or maxSamples is reached. minSamples guards the
// early noisy regime (default 16 when ≤ 0).
func (a *Adaptive) Run(eps, delta float64, minSamples, maxSamples int, r *rng.RNG) (AdaptiveResult, error) {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		return AdaptiveResult{}, fmt.Errorf("sampler: Run requires eps > 0 and delta in (0,1)")
	}
	if maxSamples <= 0 {
		return AdaptiveResult{}, fmt.Errorf("sampler: Run requires positive maxSamples")
	}
	if minSamples <= 0 {
		minSamples = 16
	}
	n := a.g.N()
	var acc stats.Welford
	var res AdaptiveResult
	for t := 1; t <= maxSamples; t++ {
		s := r.Intn(n)
		f := brandes.DependencyOnTarget(a.c, a.delta, s, a.target) / float64(n-1)
		acc.Add(f)
		if t < minSamples {
			continue
		}
		deltaT := delta / (float64(t) * float64(t+1))
		logTerm := math.Log(3 / deltaT)
		rad := math.Sqrt(2*acc.PopVariance()*logTerm/float64(t)) + 3*logTerm/float64(t)
		if rad <= eps {
			res.Estimate = acc.Mean()
			res.Samples = t
			res.Radius = rad
			res.Certified = true
			return res, nil
		}
	}
	deltaT := delta / (float64(maxSamples) * float64(maxSamples+1))
	logTerm := math.Log(3 / deltaT)
	res.Estimate = acc.Mean()
	res.Samples = maxSamples
	res.Radius = math.Sqrt(2*acc.PopVariance()*logTerm/float64(maxSamples)) + 3*logTerm/float64(maxSamples)
	res.Certified = res.Radius <= eps
	return res, nil
}
