package sampler

import (
	"math"
	"testing"

	"bcmh/internal/brandes"
	"bcmh/internal/graph"
	"bcmh/internal/rng"
	"bcmh/internal/stats"
)

func TestAdaptiveCertifies(t *testing.T) {
	g := graph.KarateClub()
	exact := brandes.BC(g)
	a, err := NewAdaptive(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run(0.05, 0.1, 0, 1<<20, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Certified {
		t.Fatalf("failed to certify: %+v", res)
	}
	if math.Abs(res.Estimate-exact[0]) > 0.05 {
		t.Fatalf("certified estimate %v exceeds eps from exact %v", res.Estimate, exact[0])
	}
	if res.Radius > 0.05 {
		t.Fatalf("radius %v above eps", res.Radius)
	}
}

func TestAdaptiveStopsEarlierForEasyTargets(t *testing.T) {
	// At equal eps, a low-variance target (star center: f is constant
	// (n-2)/(n-1) on the 99% of draws that hit a leaf) certifies with
	// far fewer samples than a high-variance one (BA hub, whose f
	// values are heavily dispersed), and undercuts the
	// distribution-free Hoeffding plan — the whole point of the
	// variance-adaptive stopping rule of ABRA [31].
	if testing.Short() {
		t.Skip("tight-epsilon certification comparison skipped in -short mode")
	}
	const eps, delta = 0.01, 0.1
	star := graph.Star(100)
	aStar, _ := NewAdaptive(star, 0)
	resStar, err := aStar.Run(eps, delta, 0, 1<<20, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	ba := graph.BarabasiAlbert(300, 3, rng.New(7))
	bc := brandes.BC(ba)
	top := 0
	for v := range bc {
		if bc[v] > bc[top] {
			top = v
		}
	}
	aBA, _ := NewAdaptive(ba, top)
	resBA, err := aBA.Run(eps, delta, 0, 1<<20, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if !resStar.Certified || !resBA.Certified {
		t.Fatalf("certification failed: star %+v ba %+v", resStar, resBA)
	}
	if resStar.Samples >= resBA.Samples {
		t.Fatalf("easy target took %d samples vs hard target %d", resStar.Samples, resBA.Samples)
	}
	// The low-variance target must undercut Hoeffding; the
	// high-variance one may legitimately exceed it (Bernstein's 2σ²
	// beats Hoeffding's 1/2 only when variance is small).
	if resStar.Samples >= stats.HoeffdingN(eps, delta) {
		t.Fatalf("adaptive on easy target (%d) did not beat Hoeffding (%d)",
			resStar.Samples, stats.HoeffdingN(eps, delta))
	}
}

func TestAdaptiveMaxSamplesCap(t *testing.T) {
	g := graph.KarateClub()
	a, _ := NewAdaptive(g, 0)
	res, err := a.Run(1e-9, 0.1, 0, 50, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if res.Certified || res.Samples != 50 {
		t.Fatalf("cap not honoured: %+v", res)
	}
}

func TestAdaptiveCoverage(t *testing.T) {
	// The (eps,delta) guarantee: violations in at most ~delta of runs.
	g := graph.Grid(8, 8)
	exact := brandes.BC(g)
	target := 3*8 + 4
	a, _ := NewAdaptive(g, target)
	eps, delta := 0.04, 0.2
	r := rng.New(17)
	violations := 0
	reps := 60
	if testing.Short() {
		// Fewer repetitions loosen the empirical rate estimate but keep
		// the guarantee checkable; the full 60 run without -short.
		reps = 12
	}
	for i := 0; i < reps; i++ {
		res, err := a.Run(eps, delta, 0, 1<<20, r)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Estimate-exact[target]) > eps {
			violations++
		}
	}
	if frac := float64(violations) / float64(reps); frac > delta {
		t.Fatalf("violation rate %v exceeds delta %v", frac, delta)
	}
}

func TestAdaptiveValidation(t *testing.T) {
	g := graph.Path(4)
	if _, err := NewAdaptive(g, 9); err == nil {
		t.Fatal("bad target accepted")
	}
	a, _ := NewAdaptive(g, 1)
	if _, err := a.Run(0, 0.1, 0, 10, rng.New(1)); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := a.Run(0.1, 2, 0, 10, rng.New(1)); err == nil {
		t.Fatal("delta=2 accepted")
	}
	if _, err := a.Run(0.1, 0.1, 0, 0, rng.New(1)); err == nil {
		t.Fatal("maxSamples=0 accepted")
	}
}
