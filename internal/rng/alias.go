package rng

import "math"

// Alias is a Walker/Vose alias table for O(1) sampling from a fixed
// discrete distribution. Build once with NewAlias, then Draw repeatedly.
// It is the right tool when the same non-uniform distribution is sampled
// many times (e.g. the distance-proportional source sampler of
// Chehreghani [13], which fixes P[s] ∝ d(r, s) for the whole run).
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table from the given non-negative weights.
// It returns nil if weights is empty or sums to zero or contains a
// negative/NaN entry is a panic, mirroring WeightedIndex.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		return nil
	}
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: NewAlias with negative or NaN weight")
		}
		total += w
	}
	if total <= 0 {
		return nil
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int, n)}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Whatever remains has probability numerically equal to 1.
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// Draw samples an index with the table's probabilities using r.
func (a *Alias) Draw(r *RNG) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// Len returns the support size of the table.
func (a *Alias) Len() int { return len(a.prob) }
