package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestKnownFirstDraws(t *testing.T) {
	// Pin the exact stream so accidental algorithm changes are caught:
	// every experiment's reproducibility depends on this sequence.
	r := New(1)
	got := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	r2 := New(1)
	want := []uint64{r2.Uint64(), r2.Uint64(), r2.Uint64()}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("draw %d: %d != %d", i, got[i], want[i])
		}
	}
	if got[0] == got[1] && got[1] == got[2] {
		t.Fatal("degenerate constant stream")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 64 draws", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	if r.s0 == 0 && r.s1 == 0 && r.s2 == 0 && r.s3 == 0 {
		t.Fatal("zero seed produced all-zero xoshiro state")
	}
	// A few draws must not be identical.
	x, y := r.Uint64(), r.Uint64()
	if x == y {
		t.Fatal("consecutive draws equal from zero seed")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Split("alpha")
	parent2 := New(7)
	b := parent2.Split("beta")
	// Streams from different labels must differ.
	diff := false
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("split streams with different labels coincide")
	}
	// Same parent state + same label is reproducible.
	c := New(7).Split("alpha")
	d := New(7).Split("alpha")
	for i := 0; i < 16; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatal("identical splits diverged")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n <= 40; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(17); v >= 17 {
			t.Fatalf("Uint64n(17) = %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square check on Intn(10): with 100k draws each bucket ~10k,
	// tolerate 5% deviation.
	r := New(17)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for b, c := range counts {
		if math.Abs(float64(c)-n/10) > 0.05*n/10 {
			t.Fatalf("bucket %d count %d deviates > 5%%", b, c)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	for _, n := range []int{0, 1, 2, 5, 33} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw % 50)
		s := make([]int, n)
		for i := range s {
			s[i] = i * 3
		}
		New(seed).ShuffleInts(s)
		// Multiset preserved.
		sum := 0
		for _, v := range s {
			sum += v
		}
		return sum == 3*n*(n-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(23)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(29)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) empirical rate %v", rate)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(31)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(37)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestRange(t *testing.T) {
	r := New(41)
	for i := 0; i < 1000; i++ {
		v := r.Range(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Range(-2,5) = %v", v)
		}
	}
}

func TestWeightedIndex(t *testing.T) {
	r := New(43)
	w := []float64{0, 1, 3, 0}
	counts := make([]int, 4)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[r.WeightedIndex(w)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Fatalf("zero-weight index sampled: %v", counts)
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weight ratio %v, want ~3", ratio)
	}
}

func TestWeightedIndexDegenerate(t *testing.T) {
	r := New(47)
	if got := r.WeightedIndex(nil); got != -1 {
		t.Fatalf("nil weights: got %d", got)
	}
	if got := r.WeightedIndex([]float64{0, 0}); got != -1 {
		t.Fatalf("zero weights: got %d", got)
	}
}

func TestWeightedIndexPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative weight did not panic")
		}
	}()
	New(1).WeightedIndex([]float64{1, -1})
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := New(53)
	for trial := 0; trial < 50; trial++ {
		s := r.SampleWithoutReplacement(20, 7)
		if len(s) != 7 {
			t.Fatalf("len %d", len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("invalid sample %v", s)
			}
			seen[v] = true
		}
	}
	if got := r.SampleWithoutReplacement(5, 0); got != nil {
		t.Fatalf("k=0 should give nil, got %v", got)
	}
	full := r.SampleWithoutReplacement(4, 4)
	if len(full) != 4 {
		t.Fatalf("k=n sample %v", full)
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k>n did not panic")
		}
	}()
	New(1).SampleWithoutReplacement(3, 4)
}

func TestAliasMatchesWeights(t *testing.T) {
	w := []float64{1, 2, 3, 4}
	a := NewAlias(w)
	if a == nil || a.Len() != 4 {
		t.Fatal("alias build failed")
	}
	r := New(59)
	counts := make([]float64, 4)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[a.Draw(r)]++
	}
	for i, c := range counts {
		want := w[i] / 10 * n
		if math.Abs(c-want)/want > 0.05 {
			t.Fatalf("index %d count %v want ~%v", i, c, want)
		}
	}
}

func TestAliasZeroWeightNeverDrawn(t *testing.T) {
	a := NewAlias([]float64{0, 5, 0, 5})
	r := New(61)
	for i := 0; i < 50000; i++ {
		v := a.Draw(r)
		if v == 0 || v == 2 {
			t.Fatalf("drew zero-weight index %d", v)
		}
	}
}

func TestAliasDegenerate(t *testing.T) {
	if NewAlias(nil) != nil {
		t.Fatal("empty weights should give nil alias")
	}
	if NewAlias([]float64{0, 0}) != nil {
		t.Fatal("all-zero weights should give nil alias")
	}
	one := NewAlias([]float64{2})
	r := New(67)
	for i := 0; i < 100; i++ {
		if one.Draw(r) != 0 {
			t.Fatal("single-element alias misdrew")
		}
	}
}

func TestAliasPropertySumPreserved(t *testing.T) {
	f := func(seed uint64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 16 {
			raw = raw[:16]
		}
		w := make([]float64, len(raw))
		var total float64
		for i, b := range raw {
			w[i] = float64(b)
			total += w[i]
		}
		a := NewAlias(w)
		if total == 0 {
			return a == nil
		}
		r := New(seed)
		for i := 0; i < 200; i++ {
			idx := a.Draw(r)
			if idx < 0 || idx >= len(w) || w[idx] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReseedResetsSpare(t *testing.T) {
	r := New(71)
	_ = r.NormFloat64() // may cache a spare
	r.Reseed(71)
	a := r.NormFloat64()
	r2 := New(71)
	b := r2.NormFloat64()
	if a != b {
		t.Fatalf("Reseed did not reproduce fresh stream: %v vs %v", a, b)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1000003)
	}
	_ = sink
}

func BenchmarkAliasDraw(b *testing.B) {
	w := make([]float64, 4096)
	for i := range w {
		w[i] = float64(i%17) + 1
	}
	a := NewAlias(w)
	r := New(1)
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink = a.Draw(r)
	}
	_ = sink
}
