// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by every randomized component in this repository.
//
// The generator is xoshiro256** seeded through SplitMix64. Unlike
// math/rand, its output is stable across Go releases, which makes every
// experiment in EXPERIMENTS.md exactly reproducible from its seed. Streams
// can be split by label (see Split) so that independent components draw
// from statistically independent sequences regardless of the order in
// which they are invoked.
//
// RNG is not safe for concurrent use; give each goroutine its own stream
// via Split or NewSeeded.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator
// (xoshiro256** 1.0, Blackman & Vigna). The zero value is not usable;
// construct instances with New, NewSeeded, or Split.
type RNG struct {
	s0, s1, s2, s3 uint64
	// cached spare normal variate for NormFloat64 (Marsaglia polar).
	haveSpare bool
	spare     float64
}

// splitMix64 advances the given state and returns the next SplitMix64
// output. It is used both to seed xoshiro and to hash stream labels.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded with seed. Any seed, including zero, is
// valid: seeding goes through SplitMix64, which maps every input to a
// well-distributed nonzero xoshiro state.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// NewSeeded is an alias of New kept for call-site readability when the
// seed is derived rather than user-provided.
func NewSeeded(seed uint64) *RNG { return New(seed) }

// Reseed resets the generator to the state produced by seed, discarding
// any cached state.
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	r.s0 = splitMix64(&sm)
	r.s1 = splitMix64(&sm)
	r.s2 = splitMix64(&sm)
	r.s3 = splitMix64(&sm)
	r.haveSpare = false
	r.spare = 0
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Split returns a new generator whose stream is a deterministic function
// of the parent's current state and the label, and advances the parent by
// one draw. Two Splits with different labels, or from different parent
// states, yield independent streams. Use it to hand sub-components their
// own reproducible randomness.
func (r *RNG) Split(label string) *RNG {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return New(r.Uint64() ^ h)
}

// Int63 returns a non-negative int64 with 63 uniform bits.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Bias is removed by rejection sampling (Lemire-style threshold check is
// unnecessary at these call rates; a simple modulo-rejection loop keeps
// the code obviously correct).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	un := uint64(n)
	// Largest multiple of n that fits in 64 bits; values at or above it
	// would bias the modulo and are rejected.
	limit := (^uint64(0)) - (^uint64(0))%un
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % un)
		}
	}
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	limit := (^uint64(0)) - (^uint64(0))%n
	for {
		v := r.Uint64()
		if v < limit {
			return v % n
		}
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability 1/2.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniform random permutation of [0, n) as a fresh slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes s uniformly in place (Fisher–Yates).
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle permutes n elements in place using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1
// (mean 1), via inversion.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
		// u == 0 happens with probability 2^-53; redraw.
	}
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method,
// caching the spare deviate).
func (r *RNG) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		factor := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * factor
		r.haveSpare = true
		return u * factor
	}
}

// Range returns a uniform float64 in [lo, hi). It panics if hi < lo.
func (r *RNG) Range(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Range with hi < lo")
	}
	return lo + (hi-lo)*r.Float64()
}

// WeightedIndex draws an index in [0, len(weights)) with probability
// proportional to weights[i]. Negative weights panic; an all-zero or
// empty weight vector returns -1. Linear scan; intended for small or
// rarely-sampled weight vectors (use an alias table for hot loops).
func (r *RNG) WeightedIndex(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("rng: WeightedIndex with negative or NaN weight")
		}
		total += w
	}
	if total <= 0 {
		return -1
	}
	x := r.Float64() * total
	var cum float64
	for i, w := range weights {
		cum += w
		if x < cum {
			return i
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return -1
}

// SampleWithoutReplacement returns k distinct uniform values from [0, n)
// in selection order. It panics if k > n or k < 0.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: SampleWithoutReplacement with k out of range")
	}
	if k == 0 {
		return nil
	}
	// Partial Fisher–Yates over a dense index array. O(n) memory but
	// exact and simple; n here is a vertex count, always affordable.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	out := make([]int, k)
	copy(out, idx[:k])
	return out
}
