package brandes

import (
	"bcmh/internal/graph"
	"bcmh/internal/sssp"
)

// Stress centrality (Shimbel 1953): Stress(v) = Σ_{s≠v≠t} σ_st(v), the
// raw count of shortest paths through v over ordered pairs. The paper's
// conclusion proposes extending its MH technique to other indices;
// stress is the natural first candidate because its dependency scores
// factor over the same SPDs (Brandes 2008, generic accumulation):
//
//	δS_s(v) = σ_sv · g_s(v),  g_s(v) = Σ_{w: v ∈ P_s(w)} (g_s(w) + 1)
//
// where g_s(v) counts SPD paths from v to every descendant.

// AccumulateStress computes stress dependency scores δS_source•(v) for
// every v from an SPD, writing them into delta (length n, zeroed
// first). delta[v] = Σ_t σ_source,t(v) for v ≠ source.
func AccumulateStress(g *graph.Graph, spd *sssp.SPD, delta []float64) {
	if len(delta) != g.N() {
		panic("brandes: AccumulateStress delta length mismatch")
	}
	for i := range delta {
		delta[i] = 0
	}
	// First pass (reverse distance order): g-counts into delta.
	order := spd.Order
	for i := len(order) - 1; i >= 0; i-- {
		w := order[i]
		if spd.Sigma[w] == 0 {
			continue
		}
		ns := g.Neighbors(w)
		ws := g.NeighborWeights(w)
		for j, u := range ns {
			wt := 1.0
			if ws != nil {
				wt = ws[j]
			}
			if spd.OnShortestPath(u, w, wt) {
				delta[u] += delta[w] + 1
			}
		}
	}
	// Second pass: δS = σ · g, with endpoints zeroed.
	for _, v := range order {
		delta[v] *= spd.Sigma[v]
	}
	delta[spd.Source] = 0
}

// StressAll computes exact stress centrality for every vertex (ordered
// pair counts; halve for unordered on undirected graphs).
func StressAll(g *graph.Graph) []float64 {
	n := g.N()
	out := make([]float64, n)
	c := sssp.NewComputer(g)
	delta := make([]float64, n)
	for s := 0; s < n; s++ {
		spd := c.Run(s)
		AccumulateStress(g, spd, delta)
		for v := 0; v < n; v++ {
			out[v] += delta[v]
		}
	}
	return out
}

// StressDependencyOnTarget returns δS_source•(target): one traversal.
func StressDependencyOnTarget(c *sssp.Computer, scratch []float64, source, target int) float64 {
	spd := c.Run(source)
	AccumulateStress(c.Graph(), spd, scratch)
	return scratch[target]
}

// StressOfVertexExact returns Stress(r) via its dependency column.
func StressOfVertexExact(g *graph.Graph, r int) float64 {
	n := g.N()
	c := sssp.NewComputer(g)
	delta := make([]float64, n)
	var sum float64
	for v := 0; v < n; v++ {
		sum += StressDependencyOnTarget(c, delta, v, r)
	}
	return sum
}
