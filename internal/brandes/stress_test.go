package brandes

import (
	"math"
	"testing"
	"testing/quick"

	"bcmh/internal/graph"
	"bcmh/internal/rng"
	"bcmh/internal/sssp"
)

// naiveStress computes Stress(v) = Σ_{s≠v≠t} σ_st(v) by the O(n³)
// definition, for cross-checking the accumulation.
func naiveStress(g *graph.Graph) []float64 {
	n := g.N()
	dist := make([][]float64, n)
	sigma := make([][]float64, n)
	c := sssp.NewComputer(g)
	for s := 0; s < n; s++ {
		spd := c.Run(s)
		dist[s] = append([]float64(nil), spd.Dist...)
		sigma[s] = append([]float64(nil), spd.Sigma...)
	}
	out := make([]float64, n)
	const eps = 1e-9
	for v := 0; v < n; v++ {
		for s := 0; s < n; s++ {
			if s == v {
				continue
			}
			for t := 0; t < n; t++ {
				if t == s || t == v || sigma[s][t] == 0 {
					continue
				}
				if dist[s][v] == sssp.Unreachable || dist[v][t] == sssp.Unreachable {
					continue
				}
				if math.Abs(dist[s][v]+dist[v][t]-dist[s][t]) <= eps*(1+math.Abs(dist[s][t])) {
					out[v] += sigma[s][v] * sigma[v][t]
				}
			}
		}
	}
	return out
}

func TestStressPath(t *testing.T) {
	// P4: vertex 1 is interior to ordered pairs (0,2),(0,3),(2,0),(3,0):
	// stress 4. Vertex 2 symmetric.
	s := StressAll(graph.Path(4))
	want := []float64{0, 4, 4, 0}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("P4 stress %v want %v", s, want)
		}
	}
}

func TestStressDiamond(t *testing.T) {
	// C4 (diamond 0-1-3-2-0): each of the two 0↔3 geodesics passes one
	// middle vertex: stress(1) = stress(2) = 2 (ordered pairs 0→3, 3→0
	// contribute one path each).
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	s := StressAll(g)
	if s[1] != 2 || s[2] != 2 || s[0] != 2 || s[3] != 2 {
		t.Fatalf("diamond stress %v", s)
	}
}

func TestStressMatchesNaive(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.KarateClub(),
		graph.Grid(4, 5),
		graph.Wheel(8),
		graph.Barbell(4, 4, 2),
	} {
		got := StressAll(g)
		want := naiveStress(g)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-9 {
				t.Fatalf("%v: stress[%d] = %v want %v", g, v, got[v], want[v])
			}
		}
	}
}

func TestStressMatchesNaiveProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%25) + 5
		g := graph.ErdosRenyiGNP(n, 4/float64(n), rng.New(seed))
		got := StressAll(g)
		want := naiveStress(g)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStressVsBetweennessRelation(t *testing.T) {
	// On trees σ_st = 1 everywhere, so stress = n(n-1)·BC exactly.
	g := graph.KaryTree(15, 2)
	stress := StressAll(g)
	bc := BC(g)
	n := float64(g.N())
	for v := range bc {
		if math.Abs(stress[v]-bc[v]*n*(n-1)) > 1e-9 {
			t.Fatalf("tree relation broken at %d: %v vs %v", v, stress[v], bc[v]*n*(n-1))
		}
	}
}

func TestStressOfVertexExact(t *testing.T) {
	g := graph.KarateClub()
	all := StressAll(g)
	for _, r := range []int{0, 5, 33} {
		if got := StressOfVertexExact(g, r); math.Abs(got-all[r]) > 1e-9 {
			t.Fatalf("single-vertex stress %v want %v", got, all[r])
		}
	}
}

func TestAccumulateStressPanics(t *testing.T) {
	g := graph.Path(3)
	spd := sssp.NewComputer(g).Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("bad delta length did not panic")
		}
	}()
	AccumulateStress(g, spd, make([]float64, 1))
}
