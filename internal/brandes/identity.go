package brandes

import (
	"context"
	"math"
	"runtime"
	"sync"

	"bcmh/internal/graph"
	"bcmh/internal/sssp"
)

// Identity-based dependency evaluation — the fast oracle behind the MH
// hot path. For an undirected graph and a fixed target r, the
// pair-dependency identity
//
//	δ_v•(r) = Σ_{t ≠ v,r} [d(v,r)+d(r,t) = d(v,t)] · σ_vr·σ_rt / σ_vt
//
// turns one dependency query into a single forward traversal from v
// plus an O(n) scan against the shortest-path data rooted at r — no
// Brandes backward accumulation, no per-edge shortest-path-membership
// checks. Since r is fixed for an entire MH chain, its side of the
// identity (sssp.TargetSPD / sssp.WeightedTargetSPD) is computed once
// and read on every step. Unweighted graphs use the BFS kernel with
// exact integer distance tests; weighted graphs use the Dijkstra
// kernel with the shared sssp.WeightEps relative tolerance, the same
// rule the reference traversal classifies ties with.
//
// DependencyOnTarget in brandes.go remains the reference evaluator: it
// is the route directed graphs take, and the baseline the equivalence
// tests (internal/mcmc) hold both identity paths to.

// DependencyOnTargetIdentity returns δ_v•(ts.Target) evaluated via the
// pair-dependency identity. vb must already hold the traversal from v
// (vb.Run(v) was the last run); ts is the cached target-side snapshot.
// The graph must be undirected and unweighted — the identity reads
// σ_vr and d(v,r) from v's traversal, which equal σ_rv and d(r,v) only
// under symmetry. Callers (internal/mcmc's oracle selection) enforce
// this; the function itself only assumes it.
func DependencyOnTargetIdentity(vb *sssp.BFS, ts *sssp.TargetSPD, v int) float64 {
	r := ts.Target
	if v == r || !vb.Reached(r) {
		// δ_r•(r) = 0 by definition; an unreachable target lies on no
		// path from v at all.
		return 0
	}
	dvr := vb.DistOf(r)
	svr := vb.SigmaOf(r)
	var sum float64
	if ord := vb.Ordering(); ord != nil {
		// Tag-compare fast path for relabeled kernels: the three per-t
		// tests (reached, distance identity, t ≠ r) collapse to one
		// uint64 compare — tag[Perm[t]] == epoch<<32 | (dvr+drt) holds
		// exactly when t was reached this run at distance dvr+drt, and
		// no stale tag can alias a current-epoch value (epochs only
		// grow between the wrap's full clears). Iteration and
		// accumulation stay in external index order, so the sum is
		// bit-identical to the reference scan below for any kernel
		// layout — only the per-t reads gather through the permutation.
		tag, sigma, ep := vb.Raw()
		base := uint64(ep)<<32 + uint64(uint32(dvr))
		for t, drt := range ts.Dist {
			if drt < 0 || t == r {
				continue
			}
			if s := ord.Perm[t]; tag[s] == base+uint64(uint32(drt)) {
				sum += svr * ts.Sigma[t] / sigma[s]
			}
		}
		return sum
	}
	// Sequential scan over all t: every array is read in index order
	// (the prefetcher's best case), with unreached t filtered by their
	// stale epoch tag. t == v never passes the distance test (dvr ≥ 1,
	// drt ≥ 0 versus dist(v,v) = 0); t == r always passes it (drt = 0)
	// and is excluded explicitly.
	for t, drt := range ts.Dist {
		if drt >= 0 && vb.Reached(t) && dvr+drt == vb.DistOf(t) && t != r {
			sum += svr * ts.Sigma[t] / vb.SigmaOf(t)
		}
	}
	return sum
}

// DependencyColumnIdentity fills out[v] = δ_v•(ts.Target) for every
// vertex, running one BFS per source on vb. It is the identity-path
// equivalent of n DependencyOnTarget calls sharing one target snapshot
// — the kernel DependencyVectorParallel uses on unweighted undirected
// graphs.
func DependencyColumnIdentity(vb *sssp.BFS, ts *sssp.TargetSPD, out []float64, from, to, stride int) {
	for v := from; v < to; v += stride {
		vb.Run(v)
		out[v] = DependencyOnTargetIdentity(vb, ts, v)
	}
}

// dependencyColumnIdentityContext is DependencyColumnIdentity polling
// ctx before every source traversal (each is a full BFS, so the check
// is free by comparison); on cancellation it stops with ctx's error and
// out left partially filled.
func dependencyColumnIdentityContext(ctx context.Context, vb *sssp.BFS, ts *sssp.TargetSPD, out []float64, from, to, stride int) error {
	for v := from; v < to; v += stride {
		if err := ctx.Err(); err != nil {
			return err
		}
		vb.Run(v)
		out[v] = DependencyOnTargetIdentity(vb, ts, v)
	}
	return nil
}

// DependencyVectorWithTarget is the identity-route dependency column
// for a prebuilt target-side snapshot: callers that already hold ts —
// the per-target cache inside mcmc.BufferPool — skip even the one
// target-side BFS. g must be the unweighted undirected graph ts was
// built on; workers as in DependencyVectorParallel.
func DependencyVectorWithTarget(g *graph.Graph, ts *sssp.TargetSPD, workers int) []float64 {
	out, _ := DependencyVectorWithTargetContext(context.Background(), g, ts, workers)
	return out
}

// DependencyVectorWithTargetContext is DependencyVectorWithTarget under
// a context: every worker polls ctx between source traversals, so a
// cancelled O(nm) column computation stops within one BFS per worker
// instead of running to completion. On cancellation the returned slice
// is nil and the error is ctx's.
func DependencyVectorWithTargetContext(ctx context.Context, g *graph.Graph, ts *sssp.TargetSPD, workers int) ([]float64, error) {
	n := g.N()
	out := make([]float64, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if err := dependencyColumnIdentityContext(ctx, sssp.NewBFS(g), ts, out, 0, n, 1); err != nil {
			return nil, err
		}
		return out, nil
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = dependencyColumnIdentityContext(ctx, sssp.NewBFS(g), ts, out, w, n, workers) // disjoint writes
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DependencyOnTargetIdentityWeighted returns δ_v•(ts.Target) evaluated
// via the pair-dependency identity on a weighted undirected graph. vd
// must already hold the traversal from v (vd.Run(v) was the last run);
// ts is the cached target-side snapshot. The distance test uses the
// shared sssp.WeightEps relative tolerance, so an edge tie classified
// as shortest by the reference traversal is classified identically
// here. As with the unweighted variant, the graph must be undirected:
// the identity reads σ_vr and d(v,r) from v's traversal, which equal
// σ_rv and d(r,v) only under symmetry.
func DependencyOnTargetIdentityWeighted(vd *sssp.Dijkstra, ts *sssp.WeightedTargetSPD, v int) float64 {
	r := ts.Target
	if v == r || !vd.Reached(r) {
		// δ_r•(r) = 0 by definition; an unreachable target lies on no
		// path from v at all.
		return 0
	}
	dvr := vd.DistOf(r)
	svr := vd.SigmaOf(r)
	var sum float64
	// Sequential scan over all t, arrays read in index order. t == v
	// never passes the distance test (dvr ≥ the minimum edge weight,
	// drt ≥ 0 versus dist(v,v) = 0, far outside the tolerance); t == r
	// always passes it (drt = 0) and is excluded explicitly.
	for t, drt := range ts.Dist {
		if drt < 0 || t == r || !vd.Reached(t) {
			continue
		}
		dvt := vd.DistOf(t)
		if math.Abs(dvr+drt-dvt) <= sssp.WeightEps*(1+math.Abs(dvt)) {
			sum += svr * ts.Sigma[t] / vd.SigmaOf(t)
		}
	}
	return sum
}

// DependencyColumnIdentityWeighted fills out[v] = δ_v•(ts.Target) for
// every vertex, running one Dijkstra per source on vd — the weighted
// identity-path equivalent of n DependencyOnTarget calls sharing one
// target snapshot.
func DependencyColumnIdentityWeighted(vd *sssp.Dijkstra, ts *sssp.WeightedTargetSPD, out []float64, from, to, stride int) {
	for v := from; v < to; v += stride {
		vd.Run(v)
		out[v] = DependencyOnTargetIdentityWeighted(vd, ts, v)
	}
}

// dependencyColumnIdentityWeightedContext is
// DependencyColumnIdentityWeighted polling ctx before every source
// traversal; on cancellation it stops with ctx's error and out left
// partially filled.
func dependencyColumnIdentityWeightedContext(ctx context.Context, vd *sssp.Dijkstra, ts *sssp.WeightedTargetSPD, out []float64, from, to, stride int) error {
	for v := from; v < to; v += stride {
		if err := ctx.Err(); err != nil {
			return err
		}
		vd.Run(v)
		out[v] = DependencyOnTargetIdentityWeighted(vd, ts, v)
	}
	return nil
}

// DependencyVectorWithWeightedTarget is the weighted identity-route
// dependency column for a prebuilt target-side snapshot — the analog of
// DependencyVectorWithTarget for weighted undirected graphs. g must be
// the graph ts was built on; workers as in DependencyVectorParallel.
func DependencyVectorWithWeightedTarget(g *graph.Graph, ts *sssp.WeightedTargetSPD, workers int) []float64 {
	out, _ := DependencyVectorWithWeightedTargetContext(context.Background(), g, ts, workers)
	return out
}

// DependencyVectorWithWeightedTargetContext is
// DependencyVectorWithWeightedTarget under a context: every worker
// polls ctx between source traversals, so a cancelled column
// computation stops within one Dijkstra per worker. On cancellation the
// returned slice is nil and the error is ctx's.
func DependencyVectorWithWeightedTargetContext(ctx context.Context, g *graph.Graph, ts *sssp.WeightedTargetSPD, workers int) ([]float64, error) {
	n := g.N()
	out := make([]float64, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if err := dependencyColumnIdentityWeightedContext(ctx, sssp.NewDijkstra(g), ts, out, 0, n, 1); err != nil {
			return nil, err
		}
		return out, nil
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = dependencyColumnIdentityWeightedContext(ctx, sssp.NewDijkstra(g), ts, out, w, n, workers) // disjoint writes
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
