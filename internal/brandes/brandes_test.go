package brandes

import (
	"math"
	"testing"
	"testing/quick"

	"bcmh/internal/graph"
	"bcmh/internal/rng"
	"bcmh/internal/sssp"
)

// naiveBC is an independent O(n³) reference: σ_st from per-source SPDs,
// σ_st(v) = σ_sv·σ_vt when d(s,v)+d(v,t) = d(s,t). Works for weighted
// graphs too (tolerant distance comparison).
func naiveBC(g *graph.Graph) []float64 {
	n := g.N()
	dist := make([][]float64, n)
	sigma := make([][]float64, n)
	c := sssp.NewComputer(g)
	for s := 0; s < n; s++ {
		spd := c.Run(s)
		dist[s] = append([]float64(nil), spd.Dist...)
		sigma[s] = append([]float64(nil), spd.Sigma...)
	}
	bc := make([]float64, n)
	const eps = 1e-9
	for v := 0; v < n; v++ {
		var sum float64
		for s := 0; s < n; s++ {
			if s == v {
				continue
			}
			for t := 0; t < n; t++ {
				if t == s || t == v || sigma[s][t] == 0 {
					continue
				}
				if dist[s][v] == sssp.Unreachable || dist[v][t] == sssp.Unreachable {
					continue
				}
				if math.Abs(dist[s][v]+dist[v][t]-dist[s][t]) <= eps*(1+math.Abs(dist[s][t])) {
					sum += sigma[s][v] * sigma[v][t] / sigma[s][t]
				}
			}
		}
		bc[v] = sum / (float64(n) * float64(n-1))
	}
	return bc
}

func maxDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestBCPath(t *testing.T) {
	// P5: BC(i) = 2·i·(4-i)/20.
	bc := BC(graph.Path(5))
	want := []float64{0, 6.0 / 20, 8.0 / 20, 6.0 / 20, 0}
	for i := range want {
		if math.Abs(bc[i]-want[i]) > 1e-12 {
			t.Fatalf("P5 bc %v want %v", bc, want)
		}
	}
}

func TestBCStar(t *testing.T) {
	// Star on n: center (n-2)/n, leaves 0.
	n := 9
	bc := BC(graph.Star(n))
	if math.Abs(bc[0]-float64(n-2)/float64(n)) > 1e-12 {
		t.Fatalf("star center %v", bc[0])
	}
	for v := 1; v < n; v++ {
		if bc[v] != 0 {
			t.Fatalf("leaf %d bc %v", v, bc[v])
		}
	}
}

func TestBCComplete(t *testing.T) {
	for _, v := range BC(graph.Complete(7)) {
		if v != 0 {
			t.Fatal("complete graph should have zero betweenness")
		}
	}
}

func TestBCMatchesNaive(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Cycle(9),
		graph.Grid(4, 5),
		graph.Wheel(8),
		graph.KarateClub(),
		graph.Barbell(4, 5, 2),
		graph.StarOfCliques(3, 4),
	}
	for i, g := range graphs {
		if d := maxDiff(BC(g), naiveBC(g)); d > 1e-10 {
			t.Fatalf("graph %d: Brandes vs naive diff %v", i, d)
		}
	}
}

func TestBCMatchesNaiveProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 5
		g := graph.ErdosRenyiGNP(n, 4/float64(n), rng.New(seed))
		return maxDiff(BC(g), naiveBC(g)) <= 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBCWeightedMatchesNaive(t *testing.T) {
	g := graph.WithUniformWeights(graph.ErdosRenyiGNP(30, 0.15, rng.New(5)), 1, 10, rng.New(7))
	if d := maxDiff(BC(g), naiveBC(g)); d > 1e-9 {
		t.Fatalf("weighted Brandes vs naive diff %v", d)
	}
}

func TestBCWeightedUnitEqualsUnweighted(t *testing.T) {
	base := graph.KarateClub()
	b := graph.NewBuilder(base.N())
	base.ForEachEdge(func(u, v int, _ float64) { b.AddWeightedEdge(u, v, 2) })
	wg := b.MustBuild()
	if d := maxDiff(BC(base), BC(wg)); d > 1e-10 {
		t.Fatalf("uniform-weight BC differs from unweighted: %v", d)
	}
}

func TestBCParallelMatchesSerial(t *testing.T) {
	g := graph.BarabasiAlbert(400, 3, rng.New(11))
	serial := BC(g)
	for _, workers := range []int{1, 2, 4, 7} {
		par := BCParallel(g, workers)
		if d := maxDiff(serial, par); d > 1e-12 {
			t.Fatalf("workers=%d diff %v", workers, d)
		}
	}
	// Default worker count path.
	if d := maxDiff(serial, BCParallel(g, 0)); d > 1e-12 {
		t.Fatalf("default workers diff %v", d)
	}
}

func TestBCParallelDeterministic(t *testing.T) {
	g := graph.WattsStrogatz(300, 6, 0.2, rng.New(13))
	a := BCParallel(g, 4)
	b := BCParallel(g, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("parallel BC not bit-deterministic across runs")
		}
	}
}

func TestBCSymmetryOnVertexTransitiveGraphs(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Cycle(10), graph.Complete(6)} {
		bc := BC(g)
		for v := 1; v < g.N(); v++ {
			if math.Abs(bc[v]-bc[0]) > 1e-12 {
				t.Fatalf("vertex-transitive graph has non-constant BC: %v", bc)
			}
		}
	}
}

func TestDependenciesStar(t *testing.T) {
	// Star center 0, n=6: δ_leaf•(0) counts the other 4 leaves.
	g := graph.Star(6)
	c := sssp.NewComputer(g)
	dep := Dependencies(c, 1)
	if dep[0] != 4 {
		t.Fatalf("δ_1•(0) = %v want 4", dep[0])
	}
	for v := 2; v < 6; v++ {
		if dep[v] != 0 {
			t.Fatalf("δ_1•(%d) = %v want 0", v, dep[v])
		}
	}
	if dep[1] != 0 {
		t.Fatal("self dependency must be 0")
	}
}

func TestDependenciesSumIdentity(t *testing.T) {
	// Σ_v δ_s•(v) over sources s equals n(n-1)·BC summed appropriately:
	// per-source, Σ_v δ_s•(v) = Σ_t (number of interior vertices on
	// s→t geodesics weighted) — cross-check against naive pairwise sum.
	g := graph.KarateClub()
	c := sssp.NewComputer(g)
	bc := BC(g)
	n := g.N()
	acc := make([]float64, n)
	for s := 0; s < n; s++ {
		dep := Dependencies(c, s)
		for v := 0; v < n; v++ {
			acc[v] += dep[v]
		}
	}
	for v := 0; v < n; v++ {
		if math.Abs(acc[v]/(float64(n)*float64(n-1))-bc[v]) > 1e-10 {
			t.Fatalf("dependency sum identity broken at %d", v)
		}
	}
}

func TestDependencyOnTarget(t *testing.T) {
	g := graph.Path(5)
	c := sssp.NewComputer(g)
	scratch := make([]float64, 5)
	// On P5, δ_0•(2) = #targets beyond 2 from 0 = 2 (vertices 3,4).
	if got := DependencyOnTarget(c, scratch, 0, 2); got != 2 {
		t.Fatalf("δ_0•(2) = %v", got)
	}
	if got := DependencyOnTarget(c, scratch, 0, 4); got != 0 {
		t.Fatalf("δ_0•(4) = %v (endpoint carries nothing)", got)
	}
}

func TestDependencyVector(t *testing.T) {
	g := graph.Star(6)
	dep := DependencyVector(g, 0)
	// Every leaf has dependency 4 on the center.
	for v := 1; v < 6; v++ {
		if dep[v] != 4 {
			t.Fatalf("dep[%d] = %v", v, dep[v])
		}
	}
	if dep[0] != 0 {
		t.Fatal("center's own entry must be 0")
	}
	// Parallel agrees with serial.
	depP := DependencyVectorParallel(g, 0, 3)
	for v := range dep {
		if dep[v] != depP[v] {
			t.Fatal("parallel dependency vector differs")
		}
	}
}

func TestBCOfVertexExactMatchesBC(t *testing.T) {
	g := graph.KarateClub()
	bc := BC(g)
	for _, r := range []int{0, 5, 16, 33} {
		if math.Abs(BCOfVertexExact(g, r)-bc[r]) > 1e-10 {
			t.Fatalf("single-vertex exact differs at %d", r)
		}
	}
}

func TestEdgeBCPath(t *testing.T) {
	// P3: both edges carry 2 unordered pairs each.
	ebc, err := EdgeBC(graph.Path(3))
	if err != nil {
		t.Fatal(err)
	}
	if ebc[EdgeKey(0, 1)] != 2 || ebc[EdgeKey(1, 2)] != 2 {
		t.Fatalf("P3 edge bc %v", ebc)
	}
}

func TestEdgeBCStar(t *testing.T) {
	// Star n=5: each spoke carries its leaf's pairs: to 3 other leaves
	// + to center = 4... pairs through edge (0,i): {i,j} for j≠i (3
	// leaf pairs) + {i,0} (1) = 4.
	ebc, err := EdgeBC(graph.Star(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 5; i++ {
		if ebc[EdgeKey(0, i)] != 4 {
			t.Fatalf("star spoke bc %v", ebc)
		}
	}
}

func TestEdgeBCBridge(t *testing.T) {
	// Barbell(3,3,0): the bridge edge carries all 9 cross pairs.
	g := graph.Barbell(3, 3, 0)
	ebc, err := EdgeBC(g)
	if err != nil {
		t.Fatal(err)
	}
	bridge := ebc[EdgeKey(2, 3)]
	for k, v := range ebc {
		if k != EdgeKey(2, 3) && v >= bridge {
			t.Fatalf("bridge %v not strictly maximal (%v=%v)", bridge, k, v)
		}
	}
	if bridge < 9 {
		t.Fatalf("bridge bc %v, want >= 9", bridge)
	}
}

func TestEdgeBCTotalIdentity(t *testing.T) {
	// Σ_edges ebc(e) = Σ_{unordered pairs s,t} avg path length... each
	// unordered pair {s,t} contributes d(s,t) (its paths cross d(s,t)
	// edges, weight split across paths sums to d). Verify on a tree
	// where σ=1 everywhere.
	g := graph.KaryTree(15, 2)
	ebc, err := EdgeBC(g)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range ebc {
		total += v
	}
	// Sum of pairwise distances (unordered) on the tree.
	var wantTotal float64
	dist := make([]int, g.N())
	for s := 0; s < g.N(); s++ {
		graph.BFSDistances(g, s, dist)
		for tt := s + 1; tt < g.N(); tt++ {
			wantTotal += float64(dist[tt])
		}
	}
	if math.Abs(total-wantTotal) > 1e-9 {
		t.Fatalf("edge bc total %v want %v", total, wantTotal)
	}
}

func TestEdgeBCDirectedRejected(t *testing.T) {
	b := graph.NewDirectedBuilder(3)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	if _, err := EdgeBC(g); err == nil {
		t.Fatal("directed graph accepted")
	}
}

func TestGroupBCStarCenter(t *testing.T) {
	g := graph.Star(7)
	got, err := GroupBC(g, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("group {center} bc %v want 1", got)
	}
}

func TestGroupBCSingletonRelation(t *testing.T) {
	// GBC({v}) = BC(v)·n/(n-2) (normalisation difference: pairs
	// involving v are excluded from the group denominator).
	g := graph.KarateClub()
	bc := BC(g)
	n := float64(g.N())
	for _, v := range []int{0, 2, 33, 8} {
		got, err := GroupBC(g, []int{v})
		if err != nil {
			t.Fatal(err)
		}
		want := bc[v] * n / (n - 2)
		if math.Abs(got-want) > 1e-10 {
			t.Fatalf("GBC({%d}) = %v want %v", v, got, want)
		}
	}
}

func TestGroupBCMonotone(t *testing.T) {
	// Adding a vertex to a group cannot decrease the raw covered-path
	// count; with the pair-set shrinking the normalised value can move
	// either way, so test the clean case: supersets on a path cover at
	// least as many of the remaining pairs.
	g := graph.Path(6)
	a, err := GroupBC(g, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GroupBC(g, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if b < a-1e-12 {
		t.Fatalf("group {2,3}=%v < {2}=%v on path", b, a)
	}
}

func TestGroupBCComplete(t *testing.T) {
	got, err := GroupBC(graph.Complete(6), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("complete graph group bc %v", got)
	}
}

func TestGroupBCErrors(t *testing.T) {
	g := graph.Path(4)
	if _, err := GroupBC(g, []int{9}); err == nil {
		t.Fatal("out-of-range member accepted")
	}
	if _, err := GroupBC(g, []int{1, 1}); err == nil {
		t.Fatal("duplicate member accepted")
	}
	// Degenerate: fewer than 2 outside vertices.
	if v, err := GroupBC(g, []int{0, 1, 2}); err != nil || v != 0 {
		t.Fatalf("degenerate group: %v %v", v, err)
	}
}

func TestAccumulatePanicsOnBadLength(t *testing.T) {
	g := graph.Path(3)
	c := sssp.NewComputer(g)
	spd := c.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("bad delta length did not panic")
		}
	}()
	Accumulate(g, spd, make([]float64, 2))
}

func BenchmarkBCKarate(b *testing.B) {
	g := graph.KarateClub()
	for i := 0; i < b.N; i++ {
		BC(g)
	}
}

func BenchmarkBC2000(b *testing.B) {
	g := graph.BarabasiAlbert(2000, 3, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BC(g)
	}
}

func BenchmarkBCParallel2000(b *testing.B) {
	g := graph.BarabasiAlbert(2000, 3, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BCParallel(g, 0)
	}
}

func BenchmarkDependencyOnTarget(b *testing.B) {
	g := graph.BarabasiAlbert(5000, 3, rng.New(1))
	c := sssp.NewComputer(g)
	scratch := make([]float64, g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DependencyOnTarget(c, scratch, i%g.N(), 0)
	}
}

// BenchmarkDependencyOnTargetIdentity is the fast-oracle counterpart of
// BenchmarkDependencyOnTarget: same workload, identity route (one
// specialized BFS + O(n) scan against a prebuilt target snapshot).
func BenchmarkDependencyOnTargetIdentity(b *testing.B) {
	g := graph.BarabasiAlbert(5000, 3, rng.New(1))
	vb := sssp.NewBFS(g)
	ts := sssp.NewTargetSPD(vb, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := i % g.N()
		vb.Run(v)
		DependencyOnTargetIdentity(vb, ts, v)
	}
}
