// Package brandes implements Brandes' exact betweenness-centrality
// algorithm [8] and the exact dependency-score machinery the paper's
// samplers are defined in terms of: single-source dependency vectors
// δ_s•(·) (Eq. 2/4), per-target dependency columns δ_·•(r) (the MH
// chain's unnormalised stationary distribution, Eq. 5), edge betweenness
// (the Girvan–Newman substrate [19]), and group betweenness for small
// vertex sets (§3.1 of the paper).
//
// All betweenness values use the paper's Eq. 1 normalisation,
// BC(v) = (1/(n(n-1))) Σ_{s≠t≠v} σ_st(v)/σ_st ∈ [0,1]; dependency
// scores are raw (unnormalised) as in Eq. 2.
package brandes

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"bcmh/internal/graph"
	"bcmh/internal/sssp"
)

// Accumulate computes Brandes' dependency scores δ_source•(v) for every
// v from an SPD, writing them into delta (which must have length n; it
// is zeroed first). After the call delta[v] = δ_source•(v) for v ≠
// source and delta[source] = 0.
//
// The recursion is Eq. 4: δ_s•(u) = Σ_{w: u ∈ P_s(w)} σ_su/σ_sw (1 +
// δ_s•(w)), evaluated by scanning vertices in reverse distance order
// and, for each w, distributing to every SPD parent u. Cost O(m)
// unweighted / O(m) after the SPD is built for weighted graphs.
func Accumulate(g *graph.Graph, spd *sssp.SPD, delta []float64) {
	if len(delta) != g.N() {
		panic("brandes: Accumulate delta length mismatch")
	}
	for i := range delta {
		delta[i] = 0
	}
	order := spd.Order
	for i := len(order) - 1; i >= 0; i-- {
		w := order[i]
		if spd.Sigma[w] == 0 {
			continue
		}
		coeff := (1 + delta[w]) / spd.Sigma[w]
		ns := g.Neighbors(w)
		ws := g.NeighborWeights(w)
		for j, u := range ns {
			wt := 1.0
			if ws != nil {
				wt = ws[j]
			}
			if spd.OnShortestPath(u, w, wt) {
				delta[u] += spd.Sigma[u] * coeff
			}
		}
	}
	delta[spd.Source] = 0
}

// Dependencies returns δ_source•(·) as a fresh slice, running one
// traversal + accumulation on c.
func Dependencies(c *sssp.Computer, source int) []float64 {
	spd := c.Run(source)
	delta := make([]float64, c.Graph().N())
	Accumulate(c.Graph(), spd, delta)
	return delta
}

// DependencyOnTarget returns δ_source•(target): the dependency of
// source on target, the quantity one MH acceptance test needs. Same
// O(m) cost as Dependencies (the full vector is computed and one entry
// read) — exactly the per-sample cost the paper states.
func DependencyOnTarget(c *sssp.Computer, scratch []float64, source, target int) float64 {
	spd := c.Run(source)
	Accumulate(c.Graph(), spd, scratch)
	return scratch[target]
}

// BC computes exact betweenness centrality for every vertex with
// Brandes' algorithm: n traversals with dependency accumulation,
// O(nm) unweighted / O(nm + n² log n) weighted.
func BC(g *graph.Graph) []float64 {
	n := g.N()
	bc := make([]float64, n)
	c := sssp.NewComputer(g)
	delta := make([]float64, n)
	for s := 0; s < n; s++ {
		spd := c.Run(s)
		Accumulate(g, spd, delta)
		for v := 0; v < n; v++ {
			bc[v] += delta[v]
		}
	}
	normalize(bc, n)
	return bc
}

// BCParallel computes exact betweenness with sources fanned out over
// `workers` goroutines (0 means GOMAXPROCS). The result is identical to
// BC: each worker accumulates into a private vector and the vectors are
// summed in worker order, so only the float addition order over a
// deterministic partition differs — with non-negative dependency terms
// this stays bit-reproducible across runs with the same worker count.
func BCParallel(g *graph.Graph, workers int) []float64 {
	n := g.N()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 0 {
		return BC(g)
	}
	partial := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := sssp.NewComputer(g)
			delta := make([]float64, n)
			acc := make([]float64, n)
			// Strided partition: worker w handles sources w, w+workers, ...
			for s := w; s < n; s += workers {
				spd := c.Run(s)
				Accumulate(g, spd, delta)
				for v := 0; v < n; v++ {
					acc[v] += delta[v]
				}
			}
			partial[w] = acc
		}(w)
	}
	wg.Wait()
	bc := make([]float64, n)
	for w := 0; w < workers; w++ {
		for v := 0; v < n; v++ {
			bc[v] += partial[w][v]
		}
	}
	normalize(bc, n)
	return bc
}

func normalize(bc []float64, n int) {
	if n < 2 {
		return
	}
	scale := 1 / (float64(n) * float64(n-1))
	for i := range bc {
		bc[i] *= scale
	}
}

// DependencyVector returns the column δ_v•(r) for all sources v — the
// unnormalised stationary distribution of the paper's MH chain (Eq. 5).
// Cost: n traversals (O(nm)); this is ground-truth machinery for the
// experiments, not part of any estimator's hot path.
func DependencyVector(g *graph.Graph, r int) []float64 {
	return DependencyVectorParallel(g, r, 0)
}

// DependencyVectorParallel is DependencyVector with sources fanned out
// over `workers` goroutines (0 = GOMAXPROCS). Undirected graphs take
// the identity fast path (one shared target-side traversal, then a
// forward BFS/Dijkstra plus O(n) scan per source — see identity.go);
// directed graphs run the reference Brandes accumulation per source.
func DependencyVectorParallel(g *graph.Graph, r int, workers int) []float64 {
	out, _ := DependencyVectorParallelContext(context.Background(), g, r, workers)
	return out
}

// DependencyVectorParallelContext is DependencyVectorParallel under a
// context: workers poll ctx between source traversals (each a full
// BFS/Dijkstra, so the check is free by comparison) and the whole
// computation stops within one traversal per worker of a cancellation.
// On cancellation the returned slice is nil and the error is ctx's.
func DependencyVectorParallelContext(ctx context.Context, g *graph.Graph, r int, workers int) ([]float64, error) {
	n := g.N()
	if r < 0 || r >= n {
		panic("brandes: DependencyVector target out of range")
	}
	if !g.Directed() {
		if g.Weighted() {
			return DependencyVectorWithWeightedTargetContext(ctx, g, sssp.NewWeightedTargetSPD(sssp.NewDijkstra(g), r), workers)
		}
		return DependencyVectorWithTargetContext(ctx, g, sssp.NewTargetSPD(sssp.NewBFS(g), r), workers)
	}
	out := make([]float64, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	column := func(from int) error {
		c := sssp.NewComputer(g)
		delta := make([]float64, n)
		for v := from; v < n; v += workers {
			if err := ctx.Err(); err != nil {
				return err
			}
			out[v] = DependencyOnTarget(c, delta, v, r) // disjoint writes
		}
		return nil
	}
	if workers <= 1 {
		workers = 1
		if err := column(0); err != nil {
			return nil, err
		}
		return out, nil
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = column(w)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// BCOfVertexExact returns the exact betweenness of r via its dependency
// column: BC(r) = (1/(n(n-1))) Σ_v δ_v•(r).
func BCOfVertexExact(g *graph.Graph, r int) float64 {
	dep := DependencyVector(g, r)
	var sum float64
	for _, d := range dep {
		sum += d
	}
	n := g.N()
	if n < 2 {
		return 0
	}
	return sum / (float64(n) * float64(n-1))
}

// EdgeKey canonicalises an undirected edge as [2]int{min, max}.
func EdgeKey(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// EdgeBC computes exact edge betweenness for every edge: the number of
// shortest paths crossing the edge, summed over unordered vertex pairs
// (each ordered-pair contribution is halved). This is the quantity the
// Girvan–Newman community algorithm [19] removes edges by.
func EdgeBC(g *graph.Graph) (map[[2]int]float64, error) {
	if g.Directed() {
		return nil, fmt.Errorf("brandes: EdgeBC requires an undirected graph")
	}
	n := g.N()
	ebc := make(map[[2]int]float64, g.M())
	c := sssp.NewComputer(g)
	delta := make([]float64, n)
	for s := 0; s < n; s++ {
		spd := c.Run(s)
		for i := range delta {
			delta[i] = 0
		}
		order := spd.Order
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			if spd.Sigma[w] == 0 {
				continue
			}
			coeff := (1 + delta[w]) / spd.Sigma[w]
			ns := g.Neighbors(w)
			ws := g.NeighborWeights(w)
			for j, u := range ns {
				wt := 1.0
				if ws != nil {
					wt = ws[j]
				}
				if spd.OnShortestPath(u, w, wt) {
					contrib := spd.Sigma[u] * coeff
					delta[u] += contrib
					ebc[EdgeKey(u, w)] += contrib
				}
			}
		}
	}
	// Each unordered pair {s,t} was counted from both endpoints.
	for k := range ebc {
		ebc[k] /= 2
	}
	return ebc, nil
}

// GroupBC computes the group betweenness centrality of set (Everett &
// Borgatti [15]): the normalised fraction of shortest paths between
// pairs outside the set that pass through at least one member. Computed
// exactly in O(nm) by counting, per source, the shortest paths that
// avoid the set (a DP over the SPD) and subtracting.
func GroupBC(g *graph.Graph, set []int) (float64, error) {
	n := g.N()
	inSet := make([]bool, n)
	for _, v := range set {
		if v < 0 || v >= n {
			return 0, fmt.Errorf("brandes: GroupBC vertex %d out of range", v)
		}
		if inSet[v] {
			return 0, fmt.Errorf("brandes: GroupBC vertex %d repeated", v)
		}
		inSet[v] = true
	}
	outside := n - len(set)
	if outside < 2 {
		return 0, nil
	}
	c := sssp.NewComputer(g)
	avoid := make([]float64, n) // σ̃: shortest paths from s avoiding the set
	var total float64
	for s := 0; s < n; s++ {
		if inSet[s] {
			continue
		}
		spd := c.Run(s)
		for i := range avoid {
			avoid[i] = 0
		}
		avoid[s] = 1
		// Forward DP in distance order: σ̃_v = Σ_{parents u} σ̃_u,
		// zeroed at set members.
		for _, v := range spd.Order {
			if v == s {
				continue
			}
			if inSet[v] {
				avoid[v] = 0
				continue
			}
			ns := g.Neighbors(v)
			ws := g.NeighborWeights(v)
			var sum float64
			for j, u := range ns {
				wt := 1.0
				if ws != nil {
					wt = ws[j]
				}
				if spd.OnShortestPath(u, v, wt) {
					sum += avoid[u]
				}
			}
			avoid[v] = sum
		}
		for t := 0; t < n; t++ {
			if t == s || inSet[t] || spd.Sigma[t] == 0 {
				continue
			}
			total += 1 - avoid[t]/spd.Sigma[t]
		}
	}
	return total / (float64(outside) * float64(outside-1)), nil
}
