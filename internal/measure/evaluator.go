package measure

import (
	"fmt"

	"bcmh/internal/graph"
	"bcmh/internal/sssp"
)

// Evaluator is one chain's view of a measure: it computes the
// per-vertex statistic d_v(r) on demand and implements
// mcmc.StatOracle, so the single-space chain drives it exactly like
// the BC identity oracle. It owns the mutable traversal state (a BFS
// kernel for coverage/kpath — kernels are not concurrency-safe) plus a
// dense memo mirroring the BC oracle's cache, so each chain needs its
// own Evaluator; the expensive read-only state is shared through the
// Target.
type Evaluator struct {
	t     *Target
	bfs   *sssp.BFS // coverage, kpath (nil for rwbc)
	memo  []float64 // -1 = unevaluated; statistics are ≥ 0
	cache bool
	evals int
	hits  int
}

// NewEvaluator returns an evaluator for t over g (the graph t was
// built on). cache enables the dense per-state memo — the analogue of
// the BC oracle's dependency cache, and like it the reason chain cost
// collapses to unique states visited rather than steps run.
func NewEvaluator(g *graph.Graph, t *Target, cache bool) (*Evaluator, error) {
	if t == nil {
		return nil, fmt.Errorf("measure: nil target")
	}
	e := &Evaluator{t: t, cache: cache}
	switch t.Spec.Kind {
	case Coverage, KPath:
		e.bfs = sssp.NewBFS(g)
	case RWBC:
		// Evaluation reads only the immutable flow tables.
	default:
		return nil, fmt.Errorf("measure: no evaluator for %s", t.Spec)
	}
	if cache {
		e.memo = make([]float64, t.n)
		for v := range e.memo {
			e.memo[v] = -1
		}
	}
	return e, nil
}

// Dep returns d_v(r), memoised when the cache is enabled. It is the
// mcmc.StatOracle hook the chain calls once per proposal.
func (e *Evaluator) Dep(v int) float64 {
	if e.cache && e.memo[v] >= 0 {
		e.hits++
		return e.memo[v]
	}
	e.evals++
	d := e.eval(v)
	if e.cache {
		e.memo[v] = d
	}
	return d
}

// Work reports (fresh evaluations, memo hits) — the mcmc.StatOracle
// accounting hook.
func (e *Evaluator) Work() (evals, hits int) { return e.evals, e.hits }

func (e *Evaluator) eval(v int) float64 {
	switch e.t.Spec.Kind {
	case Coverage:
		return e.pathDep(v, false)
	case KPath:
		return e.pathDep(v, true)
	default: // RWBC
		return e.t.flow.dep(v)
	}
}

// pathDep runs one BFS from v and scans the target-side snapshot with
// the shortest-path identity d(v,r) + d(r,t) = d(v,t) — the same loop
// as brandes.DependencyOnTargetIdentity, with the measure's twist:
// coverage replaces the σ-ratio by an indicator (count the covered
// t), kpath keeps the σ-ratio but admits only pairs within K hops
// (d(v,t) ≤ K). Both are 0 at v = r by the endpoint convention the
// stack shares with betweenness.
func (e *Evaluator) pathDep(v int, bounded bool) float64 {
	r := e.t.R
	if v == r {
		return 0
	}
	b := e.bfs
	b.Run(v)
	if !b.Reached(r) {
		return 0
	}
	dvr := b.DistOf(r)
	kCap := int32(0)
	if bounded {
		kCap = int32(e.t.Spec.K)
		if dvr > kCap {
			// d(v,t) = d(v,r) + d(r,t) ≥ d(v,r) > K for every
			// admissible t: nothing to scan.
			return 0
		}
	}
	ts := e.t.tspd
	svr := b.SigmaOf(r)
	var sum float64
	if ord := b.Ordering(); ord != nil {
		// Tag-compare fast path, mirroring brandes.DependencyOnTarget-
		// Identity: reached + distance-identity + t ≠ r collapse to a
		// single uint64 tag compare per t, while iteration and
		// accumulation stay in external index order so the sum is
		// bit-identical to the reference scan below. d(v,t) = dvr + drt
		// whenever the identity holds, so the kpath bound needs no
		// separate distance read.
		tag, sigma, ep := b.Raw()
		base := uint64(ep)<<32 + uint64(uint32(dvr))
		for t, drt := range ts.Dist {
			if drt < 0 || t == r {
				continue
			}
			s := ord.Perm[t]
			if tag[s] != base+uint64(uint32(drt)) {
				continue
			}
			if bounded {
				if dvr+drt > kCap {
					continue
				}
				sum += svr * ts.Sigma[t] / sigma[s]
			} else {
				sum++
			}
		}
		return sum
	}
	for t, drt := range ts.Dist {
		if drt < 0 || !b.Reached(t) || t == r {
			continue
		}
		dvt := b.DistOf(t)
		if dvr+drt != dvt {
			continue
		}
		if bounded {
			if dvt > kCap {
				continue
			}
			sum += svr * ts.Sigma[t] / b.SigmaOf(t)
		} else {
			sum++
		}
	}
	return sum
}
