package measure

import (
	"context"
	"fmt"
	"math"
	"sort"

	"bcmh/internal/graph"
	"bcmh/internal/linalg"
	"bcmh/internal/mcmc"
	"bcmh/internal/sssp"
)

// Target is the per-(graph, measure, vertex) read-only state shared by
// every chain and every exact-column worker estimating one vertex: the
// target-side shortest-path snapshot for coverage/kpath (the same
// TargetSPD the BC oracles read, drawn from the mcmc pool so the two
// measures share one BFS per vertex), or the current-flow tables for
// rwbc. Immutable after construction and safe to share across
// goroutines; per-chain mutable state lives in Evaluator.
type Target struct {
	Spec Spec
	R    int

	n    int
	tspd *sssp.TargetSPD // coverage, kpath
	flow *flowTarget     // rwbc
}

// NewTarget builds the shared per-target state for spec at vertex r.
// BC is rejected: its target state is owned by the mcmc fast path and
// never goes through this package. For rwbc this is the expensive step
// — deg(r) Laplacian CG solves plus an O(deg(r)·n log n) table build —
// and ctx is polled between solves so a cancelled request stops paying
// promptly. For coverage/kpath it is one BFS, shared with the pool's
// per-target snapshot cache when pool is non-nil.
func NewTarget(ctx context.Context, g *graph.Graph, spec Spec, r int, pool *mcmc.BufferPool) (*Target, error) {
	if spec.IsBC() {
		return nil, fmt.Errorf("measure: bc targets are served by the core fast path, not measure.NewTarget")
	}
	if err := spec.Supports(g); err != nil {
		return nil, err
	}
	if r < 0 || r >= g.N() {
		return nil, fmt.Errorf("measure: target vertex %d out of range [0,%d)", r, g.N())
	}
	t := &Target{Spec: spec, R: r, n: g.N()}
	switch spec.Kind {
	case Coverage, KPath:
		if pool != nil {
			t.tspd = pool.TargetSnapshot(g, r)
		}
		if t.tspd == nil {
			t.tspd = sssp.NewTargetSPD(sssp.NewBFS(g), r)
		}
	case RWBC:
		flow, err := newFlowTarget(ctx, g, r)
		if err != nil {
			return nil, err
		}
		t.flow = flow
	}
	return t, nil
}

// flowTarget holds everything rwbc evaluation needs about vertex r:
// for each neighbor j of r, the potential column a_j = L⁺(e_r − e_j)
// and the precomputed absolute-deviation sums S_j(v) = Σ_t |a_j(v) −
// a_j(t)|. With those, Newman's throughput statistic is closed-form
// per vertex (see dep): a_j(v) − a_j(t) is the potential drop across
// the edge (r,j) for a unit v→t flow, so |·| summed over r's edges and
// halved is the current through r, and summing the t-side analytically
// via S_j turns the O(n) per-pair sum into O(deg(r)) per vertex.
type flowTarget struct {
	r    int
	n    int
	cols [][]float64 // cols[i][v] = a_j(v) for the i-th neighbor j of r
	sAbs [][]float64 // sAbs[i][v] = Σ_t |cols[i][v] − cols[i][t]|
	atR  []float64   // cols[i][r]
}

// newFlowTarget runs the deg(r) CG solves and builds the S tables.
func newFlowTarget(ctx context.Context, g *graph.Graph, r int) (*flowTarget, error) {
	lap, err := linalg.NewLaplacian(g)
	if err != nil {
		return nil, err
	}
	solver := linalg.NewSolver(lap)
	n := g.N()
	nbrs := g.Neighbors(r)
	ft := &flowTarget{
		r:    r,
		n:    n,
		cols: make([][]float64, len(nbrs)),
		sAbs: make([][]float64, len(nbrs)),
		atR:  make([]float64, len(nbrs)),
	}
	b := make([]float64, n)
	for i, j := range nbrs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b[r], b[j] = 1, -1
		x := make([]float64, n)
		if err := solver.Solve(b, x); err != nil {
			return nil, fmt.Errorf("measure: rwbc solve for edge (%d,%d): %w", r, j, err)
		}
		b[r], b[j] = 0, 0
		ft.cols[i] = x
		ft.atR[i] = x[r]
		ft.sAbs[i] = absDeviationSums(x)
	}
	return ft, nil
}

// absDeviationSums returns S with S[v] = Σ_t |col[v] − col[t]|, in
// O(n log n) via one sort + prefix sums: for the value x at ascending
// rank i (prefix P_i = sum of the i smaller values, total T = Σcol),
// Σ_t |x − col_t| = T − 2·P_i + x·(2i − n). Ties are indifferent — a
// tied term contributes 0 on either side of the rank.
func absDeviationSums(col []float64) []float64 {
	n := len(col)
	idx := make([]int, n)
	for v := range idx {
		idx[v] = v
	}
	sort.Slice(idx, func(a, b int) bool { return col[idx[a]] < col[idx[b]] })
	s := make([]float64, n)
	var total float64
	for _, v := range idx {
		total += col[v]
	}
	var prefix float64
	for i, v := range idx {
		x := col[v]
		s[v] = total - 2*prefix + x*float64(2*i-n)
		prefix += x
	}
	return s
}

// dep evaluates the rwbc statistic d_v(r) = Σ_{t≠v} T_r(v,t), where
// T_r(v,t) is the current through r for a unit v→t flow (endpoint
// convention T_r = 1 when r ∈ {v,t}):
//
//	d_r(r) = n − 1,
//	d_v(r) = 1 + (1/2) Σ_{j∼r} [ S_j(v) − |a_j(v) − a_j(r)| ]  (v ≠ r).
//
// The bracket is Σ_{t∉{v,r}} |a_j(v) − a_j(t)| — the t = r term is
// peeled off S_j(v) because the pair (v,r) contributes through the
// endpoint convention (the leading 1) instead of through current. The
// result is clamped at 0 against rounding in the S tables (each
// bracket is ≥ 0 exactly, since S_j(v) contains the peeled term).
func (ft *flowTarget) dep(v int) float64 {
	if v == ft.r {
		return float64(ft.n - 1)
	}
	var s float64
	for i, col := range ft.cols {
		s += ft.sAbs[i][v] - math.Abs(col[v]-ft.atR[i])
	}
	d := 1 + 0.5*s
	if d < 0 {
		d = 0
	}
	return d
}
