package measure

import (
	"context"
	"math"
	"testing"

	"bcmh/internal/brandes"
	"bcmh/internal/core"
	"bcmh/internal/graph"
	"bcmh/internal/mcmc"
	"bcmh/internal/rng"
)

// --- independent brute-force reference implementations ---

// naiveBFS computes hop distances and shortest-path counts from s with
// a plain queue — deliberately independent of the sssp kernels the
// evaluators use.
func naiveBFS(g *graph.Graph, s int) (dist []int, sigma []float64) {
	n := g.N()
	dist = make([]int, n)
	sigma = make([]float64, n)
	for v := range dist {
		dist[v] = -1
	}
	dist[s] = 0
	sigma[s] = 1
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(u) {
			if dist[w] < 0 {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
			if dist[w] == dist[u]+1 {
				sigma[w] += sigma[u]
			}
		}
	}
	return dist, sigma
}

// bruteColumn computes the coverage or kpath statistic column at r by
// enumerating ordered pairs over per-source naive BFS runs.
func bruteColumn(g *graph.Graph, spec Spec, r int) []float64 {
	n := g.N()
	dist := make([][]int, n)
	sigma := make([][]float64, n)
	for v := 0; v < n; v++ {
		dist[v], sigma[v] = naiveBFS(g, v)
	}
	deps := make([]float64, n)
	for v := 0; v < n; v++ {
		if v == r {
			continue
		}
		for t := 0; t < n; t++ {
			if t == v || t == r || dist[v][t] < 0 || dist[v][r] < 0 || dist[r][t] < 0 {
				continue
			}
			if dist[v][r]+dist[r][t] != dist[v][t] {
				continue
			}
			switch spec.Kind {
			case Coverage:
				deps[v]++
			case KPath:
				if dist[v][t] <= spec.K {
					deps[v] += sigma[v][r] * sigma[r][t] / sigma[v][t]
				}
			}
		}
	}
	return deps
}

// denseLaplacianSolve solves L·x = b on the grounded system (vertex 0
// struck) by Gaussian elimination and recenters to the sum-zero
// representative — independent of internal/linalg.
func denseLaplacianSolve(g *graph.Graph, b []float64) []float64 {
	n := g.N()
	m := n - 1 // grounded system over vertices 1..n-1
	a := make([][]float64, m)
	rhs := make([]float64, m)
	for i := 0; i < m; i++ {
		a[i] = make([]float64, m)
		v := i + 1
		a[i][i] = float64(len(g.Neighbors(v)))
		for _, w := range g.Neighbors(v) {
			if w != 0 {
				a[i][w-1] -= 1
			}
		}
		rhs[i] = b[v]
	}
	for col := 0; col < m; col++ {
		piv := col
		for rr := col + 1; rr < m; rr++ {
			if math.Abs(a[rr][col]) > math.Abs(a[piv][col]) {
				piv = rr
			}
		}
		a[col], a[piv] = a[piv], a[col]
		rhs[col], rhs[piv] = rhs[piv], rhs[col]
		for rr := col + 1; rr < m; rr++ {
			f := a[rr][col] / a[col][col]
			if f == 0 {
				continue
			}
			for cc := col; cc < m; cc++ {
				a[rr][cc] -= f * a[col][cc]
			}
			rhs[rr] -= f * rhs[col]
		}
	}
	x := make([]float64, n)
	for rr := m - 1; rr >= 0; rr-- {
		s := rhs[rr]
		for cc := rr + 1; cc < m; cc++ {
			s -= a[rr][cc] * x[cc+1]
		}
		x[rr+1] = s / a[rr][rr]
	}
	var mean float64
	for _, xi := range x {
		mean += xi
	}
	mean /= float64(n)
	for i := range x {
		x[i] -= mean
	}
	return x
}

// bruteRWBCColumn computes d_·(r) straight from the definition: one
// dense Laplacian solve per ordered pair, current through r read off
// r's incident potential drops, endpoint convention T = 1.
func bruteRWBCColumn(g *graph.Graph, r int) []float64 {
	n := g.N()
	deps := make([]float64, n)
	b := make([]float64, n)
	for v := 0; v < n; v++ {
		for t := 0; t < n; t++ {
			if t == v {
				continue
			}
			if v == r || t == r {
				deps[v]++
				continue
			}
			b[v], b[t] = 1, -1
			p := denseLaplacianSolve(g, b)
			b[v], b[t] = 0, 0
			var cur float64
			for _, j := range g.Neighbors(r) {
				cur += math.Abs(p[r] - p[j])
			}
			deps[v] += cur / 2
		}
	}
	return deps
}

func connectedER(t *testing.T, n int, p float64, seed uint64) *graph.Graph {
	t.Helper()
	g := graph.ErdosRenyiGNP(n, p, rng.New(seed))
	if !graph.IsConnected(g) {
		lc, _, err := graph.LargestComponent(g)
		if err != nil {
			t.Fatalf("LargestComponent: %v", err)
		}
		g = lc
	}
	return g
}

// --- Spec surface ---

func TestParseSpec(t *testing.T) {
	cases := []struct {
		name    string
		k       int
		want    Spec
		wantErr bool
	}{
		{"", 0, Spec{Kind: BC}, false},
		{"bc", 0, Spec{Kind: BC}, false},
		{"coverage", 0, Spec{Kind: Coverage}, false},
		{"kpath", 0, Spec{Kind: KPath, K: DefaultKPathK}, false},
		{"kpath", 3, Spec{Kind: KPath, K: 3}, false},
		{"rwbc", 0, Spec{Kind: RWBC}, false},
		{"betweenness", 0, Spec{}, true}, // unknown name
		{"bc", 4, Spec{}, true},          // misplaced k
		{"rwbc", 2, Spec{}, true},        // misplaced k
		{"kpath", -1, Spec{}, true},      // invalid k
	}
	for _, c := range cases {
		got, err := Parse(c.name, c.k)
		if c.wantErr {
			if err == nil {
				t.Errorf("Parse(%q,%d): want error, got %+v", c.name, c.k, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q,%d): %v", c.name, c.k, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q,%d) = %+v, want %+v", c.name, c.k, got, c.want)
		}
	}
	if s := (Spec{Kind: KPath, K: 8}).String(); s != "kpath(k=8)" {
		t.Errorf("String() = %q", s)
	}
	if !(Spec{}).IsBC() {
		t.Error("zero Spec must be bc")
	}
}

func TestSupports(t *testing.T) {
	wb := graph.NewBuilder(3)
	wb.AddWeightedEdge(0, 1, 2.5)
	wb.AddWeightedEdge(1, 2, 1.5)
	weighted, err := wb.Build()
	if err != nil {
		t.Fatal(err)
	}
	db := graph.NewDirectedBuilder(3)
	db.AddEdge(0, 1)
	db.AddEdge(1, 2)
	directed, err := db.Build()
	if err != nil {
		t.Fatal(err)
	}
	karate := graph.KarateClub()
	for _, spec := range []Spec{{Kind: Coverage}, {Kind: KPath, K: 4}, {Kind: RWBC}} {
		if err := spec.Supports(karate); err != nil {
			t.Errorf("%s on karate: %v", spec, err)
		}
		if err := spec.Supports(weighted); err == nil {
			t.Errorf("%s must reject weighted graphs", spec)
		}
		if err := spec.Supports(directed); err == nil {
			t.Errorf("%s must reject directed graphs", spec)
		}
	}
	if err := (Spec{}).Supports(weighted); err != nil {
		t.Errorf("bc must accept weighted graphs: %v", err)
	}
}

// --- exact cross-checks ---

func TestCoverageExactBruteForce(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"karate": graph.KarateClub(),
		"er30":   connectedER(t, 30, 0.15, 99),
		"ba40":   graph.BarabasiAlbert(40, 2, rng.New(7)),
	}
	ctx := context.Background()
	for name, g := range graphs {
		for _, r := range []int{0, g.N() / 2, g.N() - 1} {
			got, err := ExactColumn(ctx, g, Spec{Kind: Coverage}, r, nil)
			if err != nil {
				t.Fatalf("%s r=%d: %v", name, r, err)
			}
			want := bruteColumn(g, Spec{Kind: Coverage}, r)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s r=%d: coverage[%d] = %g, brute force %g", name, r, v, got[v], want[v])
				}
			}
		}
	}
}

func TestKPathExactBruteForce(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"karate": graph.KarateClub(),
		"er30":   connectedER(t, 30, 0.15, 99),
	}
	ctx := context.Background()
	for name, g := range graphs {
		for _, k := range []int{1, 2, 3, DefaultKPathK} {
			spec := Spec{Kind: KPath, K: k}
			for _, r := range []int{0, g.N() - 1} {
				got, err := ExactColumn(ctx, g, spec, r, nil)
				if err != nil {
					t.Fatalf("%s k=%d r=%d: %v", name, k, r, err)
				}
				want := bruteColumn(g, spec, r)
				for v := range want {
					if math.Abs(got[v]-want[v]) > 1e-9*(1+math.Abs(want[v])) {
						t.Fatalf("%s k=%d r=%d: kpath[%d] = %g, brute force %g", name, k, r, v, got[v], want[v])
					}
				}
			}
		}
	}
}

// Once K reaches the diameter, kpath is betweenness exactly — pin the
// degeneration against the Brandes exact column.
func TestKPathDegeneratesToBC(t *testing.T) {
	g := graph.KarateClub() // diameter 5
	ctx := context.Background()
	for _, r := range []int{0, 2, 33} {
		got, err := ExactColumn(ctx, g, Spec{Kind: KPath, K: 64}, r, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := brandes.DependencyVector(g, r)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-9*(1+math.Abs(want[v])) {
				t.Fatalf("r=%d v=%d: kpath(64) %g vs bc %g", r, v, got[v], want[v])
			}
		}
	}
}

func TestRWBCExactDense(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"karate": graph.KarateClub(),
		"er20":   connectedER(t, 20, 0.2, 3),
	}
	ctx := context.Background()
	for name, g := range graphs {
		for _, r := range []int{0, g.N() / 2} {
			got, err := ExactColumn(ctx, g, Spec{Kind: RWBC}, r, nil)
			if err != nil {
				t.Fatalf("%s r=%d: %v", name, r, err)
			}
			want := bruteRWBCColumn(g, r)
			for v := range want {
				if math.Abs(got[v]-want[v]) > 1e-9*(1+math.Abs(want[v])) {
					t.Fatalf("%s r=%d: rwbc[%d] = %.12g, dense %.12g", name, r, v, got[v], want[v])
				}
			}
		}
	}
}

// The shared normalisation contract: 0 ≤ d ≤ n−1 (f ∈ [0,1]) and the
// endpoint conventions each measure documents.
func TestColumnRangeContract(t *testing.T) {
	g := graph.KarateClub()
	n := g.N()
	ctx := context.Background()
	for _, spec := range []Spec{{Kind: Coverage}, {Kind: KPath, K: 3}, {Kind: RWBC}} {
		deps, err := ExactColumn(ctx, g, spec, 33, nil)
		if err != nil {
			t.Fatal(err)
		}
		for v, d := range deps {
			if d < 0 || d > float64(n-1)+1e-9 {
				t.Fatalf("%s: d[%d] = %g outside [0, n-1]", spec, v, d)
			}
		}
		if spec.Kind == RWBC {
			if deps[33] != float64(n-1) {
				t.Fatalf("rwbc: d_r(r) = %g, want n-1", deps[33])
			}
		} else if deps[33] != 0 {
			t.Fatalf("%s: d_r(r) = %g, want 0", spec, deps[33])
		}
	}
}

func TestStatsMatchesColumn(t *testing.T) {
	g := graph.KarateClub()
	ctx := context.Background()
	spec := Spec{Kind: Coverage}
	ms, err := Stats(ctx, g, spec, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	deps, err := ExactColumn(ctx, g, spec, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := mcmc.MuFromDeps(deps)
	if ms != want {
		t.Fatalf("Stats = %+v, MuFromDeps(column) = %+v", ms, want)
	}
	// BC spec routes to the pooled μ derivation.
	bcStats, err := Stats(ctx, g, Spec{}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	bcWant, err := mcmc.MuExact(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bcStats != bcWant {
		t.Fatalf("bc Stats = %+v, MuExact = %+v", bcStats, bcWant)
	}
}

// --- estimation ---

func TestEstimateBCDelegatesToCore(t *testing.T) {
	g := graph.KarateClub()
	opts := core.Options{Steps: 512, Seed: 7}
	want, err := core.EstimateBCPreparedContext(context.Background(), g, 0, opts, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EstimatePrepared(context.Background(), g, Spec{}, 0, opts, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != want.Value ||
		got.Diagnostics.ChainAverage != want.Diagnostics.ChainAverage ||
		got.Diagnostics.PaperEq7 != want.Diagnostics.PaperEq7 ||
		got.Diagnostics.AcceptanceRate != want.Diagnostics.AcceptanceRate ||
		got.Diagnostics.Evals != want.Diagnostics.Evals {
		t.Fatalf("bc spec diverged from core fast path: %+v vs %+v", got, want)
	}
}

func TestEstimateConvergesToExactValue(t *testing.T) {
	g := graph.KarateClub()
	ctx := context.Background()
	pool := mcmc.NewBufferPool(g)
	for _, spec := range []Spec{{Kind: Coverage}, {Kind: KPath, K: 4}, {Kind: RWBC}} {
		ms, err := Stats(ctx, g, spec, 33, pool)
		if err != nil {
			t.Fatal(err)
		}
		// The chain average converges to ChainLimit (DESIGN.md §1.1);
		// compare against it, and sanity-check it sits near the value.
		est, err := Estimate(ctx, g, spec, 33, core.Options{Steps: 60000, Seed: 11}, pool)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if ms.ChainLimit <= 0 {
			t.Fatalf("%s: degenerate ChainLimit %g", spec, ms.ChainLimit)
		}
		rel := math.Abs(est.Value-ms.ChainLimit) / ms.ChainLimit
		if rel > 0.10 {
			t.Errorf("%s: estimate %g vs chain limit %g (rel err %.3f)", spec, est.Value, ms.ChainLimit, rel)
		}
	}
}

func TestEstimatePlannedFromMeasureMu(t *testing.T) {
	g := graph.KarateClub()
	ctx := context.Background()
	spec := Spec{Kind: Coverage}
	est, err := Estimate(ctx, g, spec, 33, core.Options{Epsilon: 0.1, Delta: 0.2, MaxSteps: 4096, Seed: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if est.MuUsed <= 0 {
		t.Fatalf("planned run must report the μ used, got %g", est.MuUsed)
	}
	ms, err := Stats(ctx, g, spec, 33, nil)
	if err != nil {
		t.Fatal(err)
	}
	if est.MuUsed != ms.Mu {
		t.Fatalf("MuUsed = %g, coverage μ = %g", est.MuUsed, ms.Mu)
	}
	if est.PlannedSteps != core.PlanFromMu(core.Options{Epsilon: 0.1, Delta: 0.2, MaxSteps: 4096}, ms.Mu) {
		t.Fatalf("PlannedSteps = %d disagrees with PlanFromMu", est.PlannedSteps)
	}
}

func TestEstimateParallelChainsDeterministic(t *testing.T) {
	g := graph.KarateClub()
	ctx := context.Background()
	spec := Spec{Kind: RWBC}
	opts := core.Options{Steps: 400, Chains: 3, Seed: 17}
	a, err := EstimatePrepared(ctx, g, spec, 2, opts, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimatePrepared(ctx, g, spec, 2, opts, 0, mcmc.NewBufferPool(g))
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || len(a.PerChain) != 3 {
		t.Fatalf("parallel measure estimation not deterministic: %g vs %g (%d chains)", a.Value, b.Value, len(a.PerChain))
	}
}

func TestEstimateAdaptiveStopsWithinBudget(t *testing.T) {
	g := graph.KarateClub()
	ctx := context.Background()
	spec := Spec{Kind: Coverage}
	est, err := Estimate(ctx, g, spec, 33, core.Options{Adaptive: true, Epsilon: 0.05, Delta: 0.1, MaxSteps: 1 << 20, Seed: 9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Diagnostics.Converged {
		t.Fatalf("adaptive run did not converge within budget (half-width %g)", est.Diagnostics.EBHalfWidth)
	}
	if est.Diagnostics.StepsRun >= 1<<20 {
		t.Fatalf("adaptive run used the whole budget (%d steps)", est.Diagnostics.StepsRun)
	}
	if est.MuUsed != 0 {
		t.Fatalf("adaptive run must not consume μ, got %g", est.MuUsed)
	}
}

func TestExactColumnRejectsBC(t *testing.T) {
	if _, err := ExactColumn(context.Background(), graph.KarateClub(), Spec{}, 0, nil); err == nil {
		t.Fatal("ExactColumn must reject the bc spec")
	}
	if _, err := NewTarget(context.Background(), graph.KarateClub(), Spec{}, 0, nil); err == nil {
		t.Fatal("NewTarget must reject the bc spec")
	}
}
