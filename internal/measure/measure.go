// Package measure is the first-class centrality-measure abstraction
// behind the serving stack's measure-generic estimation API. The
// paper's MH estimator is one instance of a family: any per-vertex
// statistic d_v(r) ≥ 0 can drive the same single-space chain
// (stationary distribution ∝ d, estimators reading f = d/(n−1)), the
// same μ = max d / mean d concentration planning, and the same
// adaptive stopping rule, as long as it shares betweenness's
// normalisation
//
//	Value(r) = Σ_v d_v(r) / (n·(n−1)),  f(v) = d_v(r)/(n−1) ∈ [0,1].
//
// Every measure in this package is defined to satisfy exactly that, so
// internal/mcmc, the Eq. 14 planner, and the estimator variants apply
// verbatim. A measure contributes four things: a name (Kind/Spec), a
// per-vertex statistic evaluator (Evaluator, an mcmc.StatOracle), its
// exact column for μ/ground-truth derivation (ExactColumn/Stats), and
// a supported-graph-class predicate (Spec.Supports).
//
// The measures:
//
//   - BC: the paper's betweenness, d_v(r) = δ_v•(r). Not re-implemented
//     here — Spec{Kind: BC} routes to the existing core/mcmc fast path
//     (identity oracles, pooled buffers), bit-identical to the
//     pre-measure API.
//   - Coverage: d_v(r) counts the vertices t with d(v,r) + d(r,t) =
//     d(v,t), t ∉ {v,r} — how many ordered pairs (v,·) have r on some
//     shortest path. Value(r) is the covered-pair fraction of
//     arXiv:1810.10094's coverage centrality. Same BFS + target-side
//     snapshot kernel as betweenness, with the σ-ratio replaced by an
//     indicator.
//   - KPath: bounded-radius betweenness, the betweenness identity
//     restricted to pairs within K hops (d(v,t) ≤ K): local centrality
//     in the spirit of k-path/k-bounded variants, on the same kernels.
//     K defaults to DefaultKPathK; as K reaches the diameter it
//     degenerates to BC exactly (a property the tests pin).
//   - RWBC: Newman's random-walk (current-flow) betweenness
//     (cond-mat/0309045), d_v(r) = Σ_{t≠v} T_r(v,t) where T_r(v,t) is
//     r's current throughput for a unit v→t flow (endpoint convention
//     T_r = 1 when r ∈ {v,t}). Needs no shortest paths at all: the
//     per-target state is deg(r) Laplacian solves (internal/linalg's
//     CG kernel), after which one evaluation is O(deg(r)·log n) via
//     sorted prefix sums.
package measure

import (
	"fmt"

	"bcmh/internal/graph"
)

// Kind enumerates the supported centrality measures.
type Kind uint8

const (
	// BC is shortest-path betweenness — the default, served by the
	// pre-existing fast path.
	BC Kind = iota
	// Coverage is shortest-path coverage centrality.
	Coverage
	// KPath is betweenness restricted to pairs within K hops.
	KPath
	// RWBC is Newman's random-walk (current-flow) betweenness.
	RWBC
)

// String returns the wire name of the kind ("bc", "coverage", "kpath",
// "rwbc") — the values the measure= API parameter accepts.
func (k Kind) String() string {
	switch k {
	case BC:
		return "bc"
	case Coverage:
		return "coverage"
	case KPath:
		return "kpath"
	case RWBC:
		return "rwbc"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// DefaultKPathK is the hop bound a kpath request gets when it names
// none. Diameters of the sparse social/web-like graphs this repo
// targets sit around 2·ln n / ln ln n; 8 keeps the measure genuinely
// local on them without collapsing to triviality.
const DefaultKPathK = 8

// Spec is one fully parameterised measure: the kind plus its
// parameters (only KPath has one). The zero value is plain BC, which
// is what makes Spec a drop-in extension of every cache key and
// request struct in the serving stack: pre-measure requests normalise
// to the zero Spec and hit exactly the entries they used to.
type Spec struct {
	Kind Kind
	// K is the KPath hop bound (0 for every other kind).
	K int
}

// Parse resolves a wire name and optional k parameter to a Spec. An
// empty name is the default (bc). Unknown names and misplaced k are
// errors — the serving layer maps them to its pinned 400.
func Parse(name string, k int) (Spec, error) {
	var s Spec
	switch name {
	case "", "bc":
		s.Kind = BC
	case "coverage":
		s.Kind = Coverage
	case "kpath":
		s.Kind = KPath
		if k == 0 {
			k = DefaultKPathK
		}
		s.K = k
	case "rwbc":
		s.Kind = RWBC
	default:
		return Spec{}, fmt.Errorf("measure: unknown measure %q (want bc, coverage, kpath, or rwbc)", name)
	}
	if s.Kind != KPath && k != 0 {
		return Spec{}, fmt.Errorf("measure: measure_k only applies to kpath, not %q", s.Kind)
	}
	return s, s.Validate()
}

// String returns the canonical request form: the kind name, with the
// hop bound for kpath ("kpath(k=8)").
func (s Spec) String() string {
	if s.Kind == KPath {
		return fmt.Sprintf("kpath(k=%d)", s.K)
	}
	return s.Kind.String()
}

// Validate checks internal consistency (known kind, k where — and only
// where — it belongs).
func (s Spec) Validate() error {
	switch s.Kind {
	case BC, Coverage, RWBC:
		if s.K != 0 {
			return fmt.Errorf("measure: %s takes no k parameter", s.Kind)
		}
	case KPath:
		if s.K < 1 {
			return fmt.Errorf("measure: kpath requires k >= 1, got %d", s.K)
		}
	default:
		return fmt.Errorf("measure: unknown kind %d", int(s.Kind))
	}
	return nil
}

// IsBC reports whether s is the default measure, whose requests are
// served by the pre-measure fast path bit-identically.
func (s Spec) IsBC() bool { return s.Kind == BC }

// Supports is the measure's graph-class predicate: a nil error means
// the measure is defined (and implemented) on g. The serving layers
// (engine/store) call this before dispatching and map failures to
// their pinned 400. Connectivity and undirectedness are the stack-wide
// requirements enforced at graph preparation; this predicate adds the
// per-measure restrictions on top:
//
//   - bc: any prepared graph (the weighted Dijkstra identity route and
//     the directed Brandes route exist);
//   - coverage, kpath: unweighted only — the hop-count semantics of
//     both measures read BFS levels, and the weighted generalisation
//     has genuinely different (tolerance-laden) tie rules this package
//     does not pretend to settle;
//   - rwbc: unweighted only — this repo's edge weights are
//     shortest-path lengths, and silently reinterpreting a length as
//     an electrical conductance (its reciprocal, if anything) would be
//     a semantic trap.
func (s Spec) Supports(g *graph.Graph) error {
	if g == nil {
		return fmt.Errorf("measure: nil graph")
	}
	switch s.Kind {
	case BC:
		return nil
	case Coverage, KPath, RWBC:
		if g.Directed() {
			return fmt.Errorf("measure: %s requires an undirected graph", s.Kind)
		}
		if g.Weighted() {
			return fmt.Errorf("measure: %s is only defined on unweighted graphs (edge weights here are path lengths, which %s semantics do not consume)", s.Kind, s.Kind)
		}
		return nil
	default:
		return fmt.Errorf("measure: unknown kind %d", int(s.Kind))
	}
}
