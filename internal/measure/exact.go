package measure

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"bcmh/internal/graph"
	"bcmh/internal/mcmc"
)

// ExactColumn computes the exact statistic column d_·(r) of spec —
// the measure-generic analogue of brandes.DependencyVector, and the
// input to μ derivation and ground-truth cross-checks. BC is rejected
// (its exact column lives in internal/brandes). Coverage/kpath cost
// one BFS per vertex and are striped across GOMAXPROCS workers, each
// polling ctx per traversal; rwbc's column is O(deg(r)·n) table reads
// after the Target's solves, done inline.
func ExactColumn(ctx context.Context, g *graph.Graph, spec Spec, r int, pool *mcmc.BufferPool) ([]float64, error) {
	if spec.IsBC() {
		return nil, fmt.Errorf("measure: exact bc columns are served by internal/brandes, not measure.ExactColumn")
	}
	t, err := NewTarget(ctx, g, spec, r, pool)
	if err != nil {
		return nil, err
	}
	n := g.N()
	deps := make([]float64, n)
	if spec.Kind == RWBC {
		for v := 0; v < n; v++ {
			deps[v] = t.flow.dep(v)
		}
		return deps, nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ev, err := NewEvaluator(g, t, false)
			if err != nil {
				errs[w] = err
				return
			}
			for v := w; v < n; v += workers {
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				deps[v] = ev.eval(v)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return deps, nil
}

// Stats computes the exact concentration profile of spec at r — μ,
// max/mean statistic, the exact value (MuStats.BC holds it under the
// shared Σd/(n(n−1)) normalisation regardless of measure), positive
// support, and the chain-average limit. BC routes to the existing
// pooled μ derivation (warming the pool's snapshot cache exactly as
// before); other measures go through ExactColumn. This is what the
// engine's μ-cache stores per (measure, vertex).
func Stats(ctx context.Context, g *graph.Graph, spec Spec, r int, pool *mcmc.BufferPool) (mcmc.MuStats, error) {
	if spec.IsBC() {
		return mcmc.MuExactPooledContext(ctx, g, r, pool)
	}
	deps, err := ExactColumn(ctx, g, spec, r, pool)
	if err != nil {
		return mcmc.MuStats{}, err
	}
	return mcmc.MuFromDeps(deps), nil
}
