package measure

import (
	"context"
	"fmt"

	"bcmh/internal/core"
	"bcmh/internal/graph"
	"bcmh/internal/mcmc"
	"bcmh/internal/rng"
)

// EstimatePrepared estimates spec's centrality of vertex r with the
// single-space MH sampler — the measure-generic twin of
// core.EstimateBCPreparedContext, and the entry point the serving
// engine dispatches every measured request through. The contract is
// identical: g is already valid for estimation (connected,
// undirected), μ is the caller's cached Stats(…).Mu when the plan
// needs one (ignored for fixed Steps and under opts.Adaptive), and
// pool supplies chain buffers. The bc spec delegates verbatim to the
// core fast path, so a measure=bc request is bit-identical to the
// pre-measure API; other specs build the shared Target once, then run
// one chain (or opts.Chains split-stream chains) of per-chain
// Evaluators with the exact planning, seeding, and estimator
// semantics of the BC path.
func EstimatePrepared(ctx context.Context, g *graph.Graph, spec Spec, r int, opts core.Options, mu float64, pool *mcmc.BufferPool) (core.Estimate, error) {
	if spec.IsBC() {
		return core.EstimateBCPreparedContext(ctx, g, r, opts, mu, pool)
	}
	if err := spec.Supports(g); err != nil {
		return core.Estimate{}, err
	}
	if r < 0 || r >= g.N() {
		return core.Estimate{}, fmt.Errorf("measure: vertex %d out of range [0,%d)", r, g.N())
	}
	o := opts.Normalized()
	var est core.Estimate
	cfg, muUsed, exactZero := core.ChainConfig(o, mu)
	if exactZero {
		// All-zero statistic column: the value is exactly 0.
		return est, nil
	}
	est.MuUsed = muUsed
	est.PlannedSteps = cfg.Steps
	est.Chains = o.Chains
	t, err := NewTarget(ctx, g, spec, r, pool)
	if err != nil {
		return core.Estimate{}, err
	}
	if o.Chains > 1 {
		newOracle := func() (mcmc.StatOracle, error) {
			return NewEvaluator(g, t, !o.DisableCache)
		}
		multi, err := mcmc.EstimateStatParallelPooledContext(ctx, g, newOracle, cfg, o.Seed, o.Chains, pool)
		if err != nil {
			return core.Estimate{}, err
		}
		est.Value = multi.Combined.Estimate
		est.Diagnostics = multi.Combined
		est.PerChain = multi.PerChain
		return est, nil
	}
	ev, err := NewEvaluator(g, t, !o.DisableCache)
	if err != nil {
		return core.Estimate{}, err
	}
	res, err := mcmc.EstimateStatPooledContext(ctx, g, ev, cfg, rng.New(o.Seed), pool)
	if err != nil {
		return core.Estimate{}, err
	}
	est.Value = res.Estimate
	est.Diagnostics = res
	return est, nil
}

// Estimate is the standalone front door: it validates, derives μ
// itself when the plan needs one (exactly like core.EstimateBCContext
// does for bc), and estimates. Callers with a μ-cache — the engine —
// use EstimatePrepared directly.
func Estimate(ctx context.Context, g *graph.Graph, spec Spec, r int, opts core.Options, pool *mcmc.BufferPool) (core.Estimate, error) {
	if err := spec.Validate(); err != nil {
		return core.Estimate{}, err
	}
	if spec.IsBC() {
		return core.EstimateBCContext(ctx, g, r, opts)
	}
	if err := spec.Supports(g); err != nil {
		return core.Estimate{}, err
	}
	if !graph.IsConnected(g) {
		return core.Estimate{}, fmt.Errorf("measure: graph is not connected; call core.Prepare to extract the largest component")
	}
	o := opts.Normalized()
	mu := o.MuBound
	if !o.Adaptive && o.Steps <= 0 && mu <= 0 {
		ms, err := Stats(ctx, g, spec, r, pool)
		if err != nil {
			return core.Estimate{}, err
		}
		mu = ms.Mu
	}
	return EstimatePrepared(ctx, g, spec, r, o, mu, pool)
}
