package rank

import (
	"context"
	"errors"
	"testing"
	"time"

	"bcmh/internal/core"
	"bcmh/internal/graph"
	"bcmh/internal/mcmc"
	"bcmh/internal/rng"
	"bcmh/internal/stats"
)

// exactTopK returns the exact top-k vertex set of g (ties by lower id)
// plus the full exact BC vector.
func exactTopK(t *testing.T, g *graph.Graph, k int) (map[int]bool, []float64) {
	t.Helper()
	bc, err := core.ExactBC(g)
	if err != nil {
		t.Fatal(err)
	}
	top := make(map[int]bool, k)
	for _, v := range stats.TopKIndices(bc, k) {
		top[v] = true
	}
	return top, bc
}

func topSet(entries []Entry) map[int]bool {
	s := make(map[int]bool, len(entries))
	for _, e := range entries {
		s[e.Vertex] = true
	}
	return s
}

func sameSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

// TestRankKarateTop5 is the golden-graph acceptance test: ranking the
// karate club with default options must recover the exact top-5 set,
// and the full estimate vector must correlate strongly with exact BC
// (the ranking-quality metrics of internal/stats applied end to end).
func TestRankKarateTop5(t *testing.T) {
	g := graph.KarateClub()
	exact, bc := exactTopK(t, g, 5)
	res, err := Run(context.Background(), g, nil, Options{K: 5, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := topSet(res.TopK); !sameSet(got, exact) {
		t.Fatalf("top-5 mismatch: got %v want %v (full: %+v)", got, exact, res.TopK)
	}
	// Ranking-quality metrics over the full candidate set: estimates in
	// vertex order vs exact BC.
	est := make([]float64, g.N())
	for _, e := range res.All {
		est[e.Vertex] = e.Estimate
	}
	if rho := stats.Spearman(est, bc); rho < 0.8 {
		t.Fatalf("Spearman(est, exact) = %v, want ≥ 0.8", rho)
	}
	if ov := stats.TopKOverlap(est, bc, 5); ov != 1 {
		t.Fatalf("TopKOverlap@5 = %v, want 1", ov)
	}
	if res.Pruned == 0 {
		t.Fatalf("expected progressive pruning to eliminate candidates, got none (rounds=%d)", res.Rounds)
	}
	t.Logf("karate: rounds=%d totalSteps=%d pruned=%d/%d inversions(vs exact)=%d",
		res.Rounds, res.TotalSteps, res.Pruned, len(res.All), stats.Inversions(est, bc))
}

// TestRankDeterministic pins that two runs with equal options are
// identical entry for entry — chain seeds depend only on
// (seed, round, vertex), never on worker scheduling.
func TestRankDeterministic(t *testing.T) {
	g := graph.BarabasiAlbert(300, 3, rng.New(7))
	opts := Options{K: 5, InitialSteps: 64, MaxRounds: 4, Seed: 42, Concurrency: 8}
	a, err := Run(context.Background(), g, nil, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	opts.Concurrency = 2
	b, err := Run(context.Background(), g, nil, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.All) != len(b.All) || a.TotalSteps != b.TotalSteps || a.Rounds != b.Rounds {
		t.Fatalf("shape mismatch: %+v vs %+v", a, b)
	}
	for i := range a.All {
		if a.All[i] != b.All[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a.All[i], b.All[i])
		}
	}
}

// TestRankChainSeedReplay pins that one candidate's round chain is
// replayable through the public seed derivation.
func TestRankChainSeedReplay(t *testing.T) {
	g := graph.KarateClub()
	pool := mcmc.NewBufferPool(g)
	cfg := mcmc.Config{Steps: 64, InitState: -1, CollectProposalTrace: true}
	r1, err := mcmc.EstimateBCPooled(g, 0, cfg, rng.New(ChainSeed(9, 1, 0)), pool)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := mcmc.EstimateBCPooled(g, 0, cfg, rng.New(ChainSeed(9, 1, 0)), pool)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ProposalSide != r2.ProposalSide {
		t.Fatalf("replayed chain differs: %v vs %v", r1.ProposalSide, r2.ProposalSide)
	}
}

// TestRankCancellation pins prompt abort: a ranking with a huge budget
// must return with the context's error well before finishing once
// cancelled.
func TestRankCancellation(t *testing.T) {
	g := graph.BarabasiAlbert(1000, 3, rng.New(11))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := Run(ctx, g, nil, Options{K: 5, InitialSteps: 1 << 18, MaxRounds: 1, Seed: 1}, nil)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("cancellation took %v", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ranking did not abort after cancellation")
	}
}

// TestRankTotalBudget pins the budget cap: total steps spent never
// exceed TotalBudget, and the run still produces a full ranking.
func TestRankTotalBudget(t *testing.T) {
	g := graph.KarateClub()
	budget := 3000
	res, err := Run(context.Background(), g, nil,
		Options{K: 3, InitialSteps: 32, MaxRounds: 20, TotalBudget: budget, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSteps > budget {
		t.Fatalf("spent %d steps, budget %d", res.TotalSteps, budget)
	}
	if len(res.All) != g.N() || len(res.TopK) != 3 {
		t.Fatalf("ranking shape: all=%d top=%d", len(res.All), len(res.TopK))
	}
}

// TestRankStarvedBudgetErrors pins that a budget too small to fund one
// step per candidate fails loudly instead of returning an empty
// ranking with infinite (and unmarshalable) interval bounds.
func TestRankStarvedBudgetErrors(t *testing.T) {
	g := graph.KarateClub()
	if _, err := Run(context.Background(), g, nil, Options{K: 3, TotalBudget: 1, Seed: 1}, nil); err == nil {
		t.Fatal("want an error for a budget below the candidate count")
	}
}

// TestRankMaxCandidates pins the degree-biased screen: only the
// MaxCandidates highest-degree vertices are ranked, and the returned
// candidate count says so.
func TestRankMaxCandidates(t *testing.T) {
	g := graph.BarabasiAlbert(500, 3, rng.New(13))
	res, err := Run(context.Background(), g, nil,
		Options{K: 5, InitialSteps: 64, MaxRounds: 3, MaxCandidates: 50, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.All) != 50 {
		t.Fatalf("candidates = %d, want 50", len(res.All))
	}
	vs := Candidates(g, 50)
	degFloor := g.Degree(vs[0])
	for _, v := range vs {
		if g.Degree(v) < degFloor {
			degFloor = g.Degree(v)
		}
	}
	// Every non-candidate must have degree ≤ the lowest candidate degree.
	in := make(map[int]bool, len(vs))
	for _, v := range vs {
		in[v] = true
	}
	for v := 0; v < g.N(); v++ {
		if !in[v] && g.Degree(v) > degFloor {
			t.Fatalf("vertex %d (deg %d) excluded despite beating the floor %d", v, g.Degree(v), degFloor)
		}
	}
}

// TestRankProgress pins the per-round progress stream: rounds ascend,
// step counts grow, and the partial top list is populated.
func TestRankProgress(t *testing.T) {
	g := graph.KarateClub()
	var rounds []int
	var steps []int
	_, err := Run(context.Background(), g, nil, Options{K: 5, Seed: 1}, func(p Progress) {
		rounds = append(rounds, p.Round)
		steps = append(steps, p.TotalSteps)
		if len(p.Top) == 0 || len(p.Top) > 5 {
			t.Fatalf("round %d: partial top has %d entries", p.Round, len(p.Top))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) == 0 {
		t.Fatal("no progress reported")
	}
	for i := range rounds {
		if rounds[i] != i+1 {
			t.Fatalf("rounds %v not consecutive", rounds)
		}
		if i > 0 && steps[i] <= steps[i-1] {
			t.Fatalf("steps %v not increasing", steps)
		}
	}
}

// TestProgressiveBeatsUniform is the efficiency acceptance test:
// progressive refinement must reach the exact top-5 set with fewer
// total MH steps than the cheapest uniform allocation that does the
// same. Fully deterministic (fixed seeds); the logged numbers are the
// ones README quotes.
func TestProgressiveBeatsUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical allocation comparison (~12s); run without -short")
	}
	g := graph.BarabasiAlbert(400, 3, rng.New(31))
	exact, _ := exactTopK(t, g, 5)
	pool := mcmc.NewBufferPool(g)

	prog, err := Run(context.Background(), g, pool, Options{K: 5, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := topSet(prog.TopK); !sameSet(got, exact) {
		t.Fatalf("progressive top-5 %v != exact %v", got, exact)
	}

	// Smallest power-of-two uniform per-candidate budget that recovers
	// the same set.
	uniformTotal := 0
	for per := 64; per <= 1<<16; per *= 2 {
		res, err := Uniform(context.Background(), g, pool, 5, per, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if sameSet(topSet(res.TopK), exact) {
			uniformTotal = res.TotalSteps
			break
		}
	}
	if uniformTotal == 0 {
		t.Fatal("uniform allocation never matched the exact top-5")
	}
	if prog.TotalSteps >= uniformTotal {
		t.Fatalf("progressive spent %d steps, uniform needed only %d", prog.TotalSteps, uniformTotal)
	}
	t.Logf("BA(400,3) top-5: progressive %d steps (%d rounds, %d pruned) vs uniform %d steps — %.1fx fewer",
		prog.TotalSteps, prog.Rounds, prog.Pruned, uniformTotal,
		float64(uniformTotal)/float64(prog.TotalSteps))
}
